
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/p4_switch.cc" "src/CMakeFiles/emu.dir/baseline/p4_switch.cc.o" "gcc" "src/CMakeFiles/emu.dir/baseline/p4_switch.cc.o.d"
  "/root/repo/src/baseline/reference_switch.cc" "src/CMakeFiles/emu.dir/baseline/reference_switch.cc.o" "gcc" "src/CMakeFiles/emu.dir/baseline/reference_switch.cc.o.d"
  "/root/repo/src/common/bit_util.cc" "src/CMakeFiles/emu.dir/common/bit_util.cc.o" "gcc" "src/CMakeFiles/emu.dir/common/bit_util.cc.o.d"
  "/root/repo/src/common/hexdump.cc" "src/CMakeFiles/emu.dir/common/hexdump.cc.o" "gcc" "src/CMakeFiles/emu.dir/common/hexdump.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/emu.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/emu.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/emu.dir/common/status.cc.o" "gcc" "src/CMakeFiles/emu.dir/common/status.cc.o.d"
  "/root/repo/src/common/wide_word.cc" "src/CMakeFiles/emu.dir/common/wide_word.cc.o" "gcc" "src/CMakeFiles/emu.dir/common/wide_word.cc.o.d"
  "/root/repo/src/core/protocol_wrappers.cc" "src/CMakeFiles/emu.dir/core/protocol_wrappers.cc.o" "gcc" "src/CMakeFiles/emu.dir/core/protocol_wrappers.cc.o.d"
  "/root/repo/src/core/service.cc" "src/CMakeFiles/emu.dir/core/service.cc.o" "gcc" "src/CMakeFiles/emu.dir/core/service.cc.o.d"
  "/root/repo/src/core/targets.cc" "src/CMakeFiles/emu.dir/core/targets.cc.o" "gcc" "src/CMakeFiles/emu.dir/core/targets.cc.o.d"
  "/root/repo/src/debug/casp_machine.cc" "src/CMakeFiles/emu.dir/debug/casp_machine.cc.o" "gcc" "src/CMakeFiles/emu.dir/debug/casp_machine.cc.o.d"
  "/root/repo/src/debug/command_compiler.cc" "src/CMakeFiles/emu.dir/debug/command_compiler.cc.o" "gcc" "src/CMakeFiles/emu.dir/debug/command_compiler.cc.o.d"
  "/root/repo/src/debug/command_parser.cc" "src/CMakeFiles/emu.dir/debug/command_parser.cc.o" "gcc" "src/CMakeFiles/emu.dir/debug/command_parser.cc.o.d"
  "/root/repo/src/debug/controller.cc" "src/CMakeFiles/emu.dir/debug/controller.cc.o" "gcc" "src/CMakeFiles/emu.dir/debug/controller.cc.o.d"
  "/root/repo/src/debug/direction_packet.cc" "src/CMakeFiles/emu.dir/debug/direction_packet.cc.o" "gcc" "src/CMakeFiles/emu.dir/debug/direction_packet.cc.o.d"
  "/root/repo/src/debug/extension_point.cc" "src/CMakeFiles/emu.dir/debug/extension_point.cc.o" "gcc" "src/CMakeFiles/emu.dir/debug/extension_point.cc.o.d"
  "/root/repo/src/hdl/fifo.cc" "src/CMakeFiles/emu.dir/hdl/fifo.cc.o" "gcc" "src/CMakeFiles/emu.dir/hdl/fifo.cc.o.d"
  "/root/repo/src/hdl/module.cc" "src/CMakeFiles/emu.dir/hdl/module.cc.o" "gcc" "src/CMakeFiles/emu.dir/hdl/module.cc.o.d"
  "/root/repo/src/hdl/process.cc" "src/CMakeFiles/emu.dir/hdl/process.cc.o" "gcc" "src/CMakeFiles/emu.dir/hdl/process.cc.o.d"
  "/root/repo/src/hdl/resource_model.cc" "src/CMakeFiles/emu.dir/hdl/resource_model.cc.o" "gcc" "src/CMakeFiles/emu.dir/hdl/resource_model.cc.o.d"
  "/root/repo/src/hdl/simulator.cc" "src/CMakeFiles/emu.dir/hdl/simulator.cc.o" "gcc" "src/CMakeFiles/emu.dir/hdl/simulator.cc.o.d"
  "/root/repo/src/hdl/vcd_tracer.cc" "src/CMakeFiles/emu.dir/hdl/vcd_tracer.cc.o" "gcc" "src/CMakeFiles/emu.dir/hdl/vcd_tracer.cc.o.d"
  "/root/repo/src/hostnet/host_services.cc" "src/CMakeFiles/emu.dir/hostnet/host_services.cc.o" "gcc" "src/CMakeFiles/emu.dir/hostnet/host_services.cc.o.d"
  "/root/repo/src/hostnet/host_stack_model.cc" "src/CMakeFiles/emu.dir/hostnet/host_stack_model.cc.o" "gcc" "src/CMakeFiles/emu.dir/hostnet/host_stack_model.cc.o.d"
  "/root/repo/src/ip/bram.cc" "src/CMakeFiles/emu.dir/ip/bram.cc.o" "gcc" "src/CMakeFiles/emu.dir/ip/bram.cc.o.d"
  "/root/repo/src/ip/cam.cc" "src/CMakeFiles/emu.dir/ip/cam.cc.o" "gcc" "src/CMakeFiles/emu.dir/ip/cam.cc.o.d"
  "/root/repo/src/ip/checksum_unit.cc" "src/CMakeFiles/emu.dir/ip/checksum_unit.cc.o" "gcc" "src/CMakeFiles/emu.dir/ip/checksum_unit.cc.o.d"
  "/root/repo/src/ip/dram_model.cc" "src/CMakeFiles/emu.dir/ip/dram_model.cc.o" "gcc" "src/CMakeFiles/emu.dir/ip/dram_model.cc.o.d"
  "/root/repo/src/ip/hash_cam.cc" "src/CMakeFiles/emu.dir/ip/hash_cam.cc.o" "gcc" "src/CMakeFiles/emu.dir/ip/hash_cam.cc.o.d"
  "/root/repo/src/ip/logic_cam.cc" "src/CMakeFiles/emu.dir/ip/logic_cam.cc.o" "gcc" "src/CMakeFiles/emu.dir/ip/logic_cam.cc.o.d"
  "/root/repo/src/ip/naughty_q.cc" "src/CMakeFiles/emu.dir/ip/naughty_q.cc.o" "gcc" "src/CMakeFiles/emu.dir/ip/naughty_q.cc.o.d"
  "/root/repo/src/ip/pearson_hash.cc" "src/CMakeFiles/emu.dir/ip/pearson_hash.cc.o" "gcc" "src/CMakeFiles/emu.dir/ip/pearson_hash.cc.o.d"
  "/root/repo/src/ip/speck_cipher.cc" "src/CMakeFiles/emu.dir/ip/speck_cipher.cc.o" "gcc" "src/CMakeFiles/emu.dir/ip/speck_cipher.cc.o.d"
  "/root/repo/src/kiwi/hw_scheduler.cc" "src/CMakeFiles/emu.dir/kiwi/hw_scheduler.cc.o" "gcc" "src/CMakeFiles/emu.dir/kiwi/hw_scheduler.cc.o.d"
  "/root/repo/src/kiwi/sw_scheduler.cc" "src/CMakeFiles/emu.dir/kiwi/sw_scheduler.cc.o" "gcc" "src/CMakeFiles/emu.dir/kiwi/sw_scheduler.cc.o.d"
  "/root/repo/src/net/arp.cc" "src/CMakeFiles/emu.dir/net/arp.cc.o" "gcc" "src/CMakeFiles/emu.dir/net/arp.cc.o.d"
  "/root/repo/src/net/checksum.cc" "src/CMakeFiles/emu.dir/net/checksum.cc.o" "gcc" "src/CMakeFiles/emu.dir/net/checksum.cc.o.d"
  "/root/repo/src/net/dns.cc" "src/CMakeFiles/emu.dir/net/dns.cc.o" "gcc" "src/CMakeFiles/emu.dir/net/dns.cc.o.d"
  "/root/repo/src/net/ethernet.cc" "src/CMakeFiles/emu.dir/net/ethernet.cc.o" "gcc" "src/CMakeFiles/emu.dir/net/ethernet.cc.o.d"
  "/root/repo/src/net/icmp.cc" "src/CMakeFiles/emu.dir/net/icmp.cc.o" "gcc" "src/CMakeFiles/emu.dir/net/icmp.cc.o.d"
  "/root/repo/src/net/ipv4.cc" "src/CMakeFiles/emu.dir/net/ipv4.cc.o" "gcc" "src/CMakeFiles/emu.dir/net/ipv4.cc.o.d"
  "/root/repo/src/net/mac_address.cc" "src/CMakeFiles/emu.dir/net/mac_address.cc.o" "gcc" "src/CMakeFiles/emu.dir/net/mac_address.cc.o.d"
  "/root/repo/src/net/memcached.cc" "src/CMakeFiles/emu.dir/net/memcached.cc.o" "gcc" "src/CMakeFiles/emu.dir/net/memcached.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/emu.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/emu.dir/net/packet.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/CMakeFiles/emu.dir/net/tcp.cc.o" "gcc" "src/CMakeFiles/emu.dir/net/tcp.cc.o.d"
  "/root/repo/src/net/udp.cc" "src/CMakeFiles/emu.dir/net/udp.cc.o" "gcc" "src/CMakeFiles/emu.dir/net/udp.cc.o.d"
  "/root/repo/src/net/vlan.cc" "src/CMakeFiles/emu.dir/net/vlan.cc.o" "gcc" "src/CMakeFiles/emu.dir/net/vlan.cc.o.d"
  "/root/repo/src/netfpga/axis.cc" "src/CMakeFiles/emu.dir/netfpga/axis.cc.o" "gcc" "src/CMakeFiles/emu.dir/netfpga/axis.cc.o.d"
  "/root/repo/src/netfpga/dataplane.cc" "src/CMakeFiles/emu.dir/netfpga/dataplane.cc.o" "gcc" "src/CMakeFiles/emu.dir/netfpga/dataplane.cc.o.d"
  "/root/repo/src/netfpga/input_arbiter.cc" "src/CMakeFiles/emu.dir/netfpga/input_arbiter.cc.o" "gcc" "src/CMakeFiles/emu.dir/netfpga/input_arbiter.cc.o.d"
  "/root/repo/src/netfpga/output_queues.cc" "src/CMakeFiles/emu.dir/netfpga/output_queues.cc.o" "gcc" "src/CMakeFiles/emu.dir/netfpga/output_queues.cc.o.d"
  "/root/repo/src/netfpga/pipeline.cc" "src/CMakeFiles/emu.dir/netfpga/pipeline.cc.o" "gcc" "src/CMakeFiles/emu.dir/netfpga/pipeline.cc.o.d"
  "/root/repo/src/netfpga/port.cc" "src/CMakeFiles/emu.dir/netfpga/port.cc.o" "gcc" "src/CMakeFiles/emu.dir/netfpga/port.cc.o.d"
  "/root/repo/src/services/crypto_tunnel_service.cc" "src/CMakeFiles/emu.dir/services/crypto_tunnel_service.cc.o" "gcc" "src/CMakeFiles/emu.dir/services/crypto_tunnel_service.cc.o.d"
  "/root/repo/src/services/dns_service.cc" "src/CMakeFiles/emu.dir/services/dns_service.cc.o" "gcc" "src/CMakeFiles/emu.dir/services/dns_service.cc.o.d"
  "/root/repo/src/services/icmp_echo_service.cc" "src/CMakeFiles/emu.dir/services/icmp_echo_service.cc.o" "gcc" "src/CMakeFiles/emu.dir/services/icmp_echo_service.cc.o.d"
  "/root/repo/src/services/iptables_cli.cc" "src/CMakeFiles/emu.dir/services/iptables_cli.cc.o" "gcc" "src/CMakeFiles/emu.dir/services/iptables_cli.cc.o.d"
  "/root/repo/src/services/l3l4_filter.cc" "src/CMakeFiles/emu.dir/services/l3l4_filter.cc.o" "gcc" "src/CMakeFiles/emu.dir/services/l3l4_filter.cc.o.d"
  "/root/repo/src/services/learning_switch.cc" "src/CMakeFiles/emu.dir/services/learning_switch.cc.o" "gcc" "src/CMakeFiles/emu.dir/services/learning_switch.cc.o.d"
  "/root/repo/src/services/lru_cache.cc" "src/CMakeFiles/emu.dir/services/lru_cache.cc.o" "gcc" "src/CMakeFiles/emu.dir/services/lru_cache.cc.o.d"
  "/root/repo/src/services/memcached_service.cc" "src/CMakeFiles/emu.dir/services/memcached_service.cc.o" "gcc" "src/CMakeFiles/emu.dir/services/memcached_service.cc.o.d"
  "/root/repo/src/services/nat_service.cc" "src/CMakeFiles/emu.dir/services/nat_service.cc.o" "gcc" "src/CMakeFiles/emu.dir/services/nat_service.cc.o.d"
  "/root/repo/src/services/reply_util.cc" "src/CMakeFiles/emu.dir/services/reply_util.cc.o" "gcc" "src/CMakeFiles/emu.dir/services/reply_util.cc.o.d"
  "/root/repo/src/services/tcp_ping_service.cc" "src/CMakeFiles/emu.dir/services/tcp_ping_service.cc.o" "gcc" "src/CMakeFiles/emu.dir/services/tcp_ping_service.cc.o.d"
  "/root/repo/src/sim/event_scheduler.cc" "src/CMakeFiles/emu.dir/sim/event_scheduler.cc.o" "gcc" "src/CMakeFiles/emu.dir/sim/event_scheduler.cc.o.d"
  "/root/repo/src/sim/latency_probe.cc" "src/CMakeFiles/emu.dir/sim/latency_probe.cc.o" "gcc" "src/CMakeFiles/emu.dir/sim/latency_probe.cc.o.d"
  "/root/repo/src/sim/link.cc" "src/CMakeFiles/emu.dir/sim/link.cc.o" "gcc" "src/CMakeFiles/emu.dir/sim/link.cc.o.d"
  "/root/repo/src/sim/loadgen.cc" "src/CMakeFiles/emu.dir/sim/loadgen.cc.o" "gcc" "src/CMakeFiles/emu.dir/sim/loadgen.cc.o.d"
  "/root/repo/src/sim/memaslap.cc" "src/CMakeFiles/emu.dir/sim/memaslap.cc.o" "gcc" "src/CMakeFiles/emu.dir/sim/memaslap.cc.o.d"
  "/root/repo/src/sim/sim_host.cc" "src/CMakeFiles/emu.dir/sim/sim_host.cc.o" "gcc" "src/CMakeFiles/emu.dir/sim/sim_host.cc.o.d"
  "/root/repo/src/sim/topology.cc" "src/CMakeFiles/emu.dir/sim/topology.cc.o" "gcc" "src/CMakeFiles/emu.dir/sim/topology.cc.o.d"
  "/root/repo/src/sim/trace_dump.cc" "src/CMakeFiles/emu.dir/sim/trace_dump.cc.o" "gcc" "src/CMakeFiles/emu.dir/sim/trace_dump.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
