file(REMOVE_RECURSE
  "libemu.a"
)
