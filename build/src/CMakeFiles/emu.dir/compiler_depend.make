# Empty compiler generated dependencies file for emu.
# This may be replaced when dependencies are built.
