# Empty dependencies file for emu.
# This may be replaced when dependencies are built.
