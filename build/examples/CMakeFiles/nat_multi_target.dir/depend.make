# Empty dependencies file for nat_multi_target.
# This may be replaced when dependencies are built.
