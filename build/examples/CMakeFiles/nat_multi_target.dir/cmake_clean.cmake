file(REMOVE_RECURSE
  "CMakeFiles/nat_multi_target.dir/nat_multi_target.cc.o"
  "CMakeFiles/nat_multi_target.dir/nat_multi_target.cc.o.d"
  "nat_multi_target"
  "nat_multi_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_multi_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
