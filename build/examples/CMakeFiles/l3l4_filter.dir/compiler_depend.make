# Empty compiler generated dependencies file for l3l4_filter.
# This may be replaced when dependencies are built.
