file(REMOVE_RECURSE
  "CMakeFiles/l3l4_filter.dir/l3l4_filter.cc.o"
  "CMakeFiles/l3l4_filter.dir/l3l4_filter.cc.o.d"
  "l3l4_filter"
  "l3l4_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l3l4_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
