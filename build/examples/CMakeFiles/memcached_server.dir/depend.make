# Empty dependencies file for memcached_server.
# This may be replaced when dependencies are built.
