file(REMOVE_RECURSE
  "CMakeFiles/microbench_kernel.dir/bench/microbench_kernel.cc.o"
  "CMakeFiles/microbench_kernel.dir/bench/microbench_kernel.cc.o.d"
  "bench/microbench_kernel"
  "bench/microbench_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
