file(REMOVE_RECURSE
  "CMakeFiles/ablation_cam_variants.dir/bench/ablation_cam_variants.cc.o"
  "CMakeFiles/ablation_cam_variants.dir/bench/ablation_cam_variants.cc.o.d"
  "bench/ablation_cam_variants"
  "bench/ablation_cam_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cam_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
