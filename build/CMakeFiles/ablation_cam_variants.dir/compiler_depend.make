# Empty compiler generated dependencies file for ablation_cam_variants.
# This may be replaced when dependencies are built.
