file(REMOVE_RECURSE
  "CMakeFiles/table5_debug_overhead.dir/bench/table5_debug_overhead.cc.o"
  "CMakeFiles/table5_debug_overhead.dir/bench/table5_debug_overhead.cc.o.d"
  "bench/table5_debug_overhead"
  "bench/table5_debug_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_debug_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
