# Empty compiler generated dependencies file for table5_debug_overhead.
# This may be replaced when dependencies are built.
