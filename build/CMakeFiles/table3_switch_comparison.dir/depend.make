# Empty dependencies file for table3_switch_comparison.
# This may be replaced when dependencies are built.
