file(REMOVE_RECURSE
  "CMakeFiles/table3_switch_comparison.dir/bench/table3_switch_comparison.cc.o"
  "CMakeFiles/table3_switch_comparison.dir/bench/table3_switch_comparison.cc.o.d"
  "bench/table3_switch_comparison"
  "bench/table3_switch_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_switch_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
