file(REMOVE_RECURSE
  "CMakeFiles/ablation_pipeline_depth.dir/bench/ablation_pipeline_depth.cc.o"
  "CMakeFiles/ablation_pipeline_depth.dir/bench/ablation_pipeline_depth.cc.o.d"
  "bench/ablation_pipeline_depth"
  "bench/ablation_pipeline_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pipeline_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
