file(REMOVE_RECURSE
  "CMakeFiles/ablation_bus_width.dir/bench/ablation_bus_width.cc.o"
  "CMakeFiles/ablation_bus_width.dir/bench/ablation_bus_width.cc.o.d"
  "bench/ablation_bus_width"
  "bench/ablation_bus_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bus_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
