file(REMOVE_RECURSE
  "CMakeFiles/ablation_memcached_cores.dir/bench/ablation_memcached_cores.cc.o"
  "CMakeFiles/ablation_memcached_cores.dir/bench/ablation_memcached_cores.cc.o.d"
  "bench/ablation_memcached_cores"
  "bench/ablation_memcached_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memcached_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
