# Empty dependencies file for ablation_memcached_cores.
# This may be replaced when dependencies are built.
