# Empty compiler generated dependencies file for table4_service_comparison.
# This may be replaced when dependencies are built.
