file(REMOVE_RECURSE
  "CMakeFiles/table4_service_comparison.dir/bench/table4_service_comparison.cc.o"
  "CMakeFiles/table4_service_comparison.dir/bench/table4_service_comparison.cc.o.d"
  "bench/table4_service_comparison"
  "bench/table4_service_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_service_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
