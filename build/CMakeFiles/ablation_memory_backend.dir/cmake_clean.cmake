file(REMOVE_RECURSE
  "CMakeFiles/ablation_memory_backend.dir/bench/ablation_memory_backend.cc.o"
  "CMakeFiles/ablation_memory_backend.dir/bench/ablation_memory_backend.cc.o.d"
  "bench/ablation_memory_backend"
  "bench/ablation_memory_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_memory_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
