# Empty compiler generated dependencies file for ablation_memory_backend.
# This may be replaced when dependencies are built.
