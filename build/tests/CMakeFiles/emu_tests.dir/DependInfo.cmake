
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_test.cc" "tests/CMakeFiles/emu_tests.dir/baseline_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/baseline_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/emu_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_kiwi_test.cc" "tests/CMakeFiles/emu_tests.dir/core_kiwi_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/core_kiwi_test.cc.o.d"
  "/root/repo/tests/crypto_tunnel_test.cc" "tests/CMakeFiles/emu_tests.dir/crypto_tunnel_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/crypto_tunnel_test.cc.o.d"
  "/root/repo/tests/debug_test.cc" "tests/CMakeFiles/emu_tests.dir/debug_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/debug_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/emu_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/hdl_test.cc" "tests/CMakeFiles/emu_tests.dir/hdl_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/hdl_test.cc.o.d"
  "/root/repo/tests/hostnet_test.cc" "tests/CMakeFiles/emu_tests.dir/hostnet_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/hostnet_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/emu_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/ip_test.cc" "tests/CMakeFiles/emu_tests.dir/ip_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/ip_test.cc.o.d"
  "/root/repo/tests/net_dns_test.cc" "tests/CMakeFiles/emu_tests.dir/net_dns_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/net_dns_test.cc.o.d"
  "/root/repo/tests/net_memcached_test.cc" "tests/CMakeFiles/emu_tests.dir/net_memcached_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/net_memcached_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/emu_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/netfpga_test.cc" "tests/CMakeFiles/emu_tests.dir/netfpga_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/netfpga_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/emu_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/emu_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/services_filter_nat_test.cc" "tests/CMakeFiles/emu_tests.dir/services_filter_nat_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/services_filter_nat_test.cc.o.d"
  "/root/repo/tests/services_l1_cache_test.cc" "tests/CMakeFiles/emu_tests.dir/services_l1_cache_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/services_l1_cache_test.cc.o.d"
  "/root/repo/tests/services_memcached_test.cc" "tests/CMakeFiles/emu_tests.dir/services_memcached_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/services_memcached_test.cc.o.d"
  "/root/repo/tests/services_test.cc" "tests/CMakeFiles/emu_tests.dir/services_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/services_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/emu_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/emu_tests.dir/sim_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/emu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
