// §4.1 ablation: MAC table as a native CAM IP block vs a CAM written in
// plain high-level code.
//
// "While the first option does not burden developers with implementation
// details, the latter provides better resource usage and timing performance"
// — i.e. the IP block is cheaper and faster; the logic CAM trades fabric for
// independence from vendor IP.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/services/learning_switch.h"

namespace emu {
namespace {

void Run() {
  PrintHeader("Ablation (4.1): learning-switch MAC table — CAM IP block vs high-level-code CAM");
  std::printf("%-14s %10s %8s %8s %12s %12s %8s\n", "Variant", "Logic", "Regs", "BRAM",
              "Core latency", "Throughput", "Loss");
  for (CamKind kind : {CamKind::kIpBlock, CamKind::kLogic}) {
    LearningSwitchConfig config;
    config.cam = kind;
    Cycle latency;
    ResourceUsage resources;
    {
      LearningSwitch service(config);
      FpgaTarget target(service);
      resources = target.pipeline().CoreResources();
      latency = MeasureSwitchCoreLatency(target);
    }
    SwitchThroughputResult throughput;
    {
      LearningSwitch service(config);
      FpgaTarget target(service);
      throughput = MeasureSwitchThroughput(target, 2500, 64);
    }
    std::printf("%-14s %10llu %8llu %8llu %9llu cy %9.2f Mpps %6.2f%%\n",
                kind == CamKind::kIpBlock ? "CAM IP block" : "logic CAM",
                static_cast<unsigned long long>(resources.luts),
                static_cast<unsigned long long>(resources.regs),
                static_cast<unsigned long long>(resources.bram_units),
                static_cast<unsigned long long>(latency), throughput.achieved_mpps,
                throughput.loss_rate * 100.0);
  }
  PrintRule();
  std::printf(
      "Shape checks: the IP block uses fewer LUTs and one lookup cycle less; the\n"
      "logic CAM needs no vendor IP but burns fabric registers for the whole table.\n");
}

}  // namespace
}  // namespace emu

int main() {
  emu::Run();
  return 0;
}
