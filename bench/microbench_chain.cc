// In-network compute pipeline (emu-chain) throughput benchmark.
//
// Sweeps ScenarioSpec-built chains over pipeline x threads: a memaslap-style
// 90/10 GET/SET stream is paced through each pipeline from the source host,
// and the wall time, executed events, conservative epochs, and
// parallel-vs-serial speedup are printed per cell. As in microbench_gossip,
// correctness gates timing: each parallel run must reproduce the bit-exact
// chain counter digest of its serial twin, and every admitted request must
// return exactly one reply, or the binary exits nonzero regardless of speed.
//
//   --threads N,N,... thread counts (default 1,2,4)
//   --requests N      workload requests per cell (default 400)
//   --gap-us N        inter-request gap in simulated us (default 25)
//   --seed N          workload + fault seed (default 1)
//   --json PATH       additionally write the sweep as BENCH_chain.json
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/chain/scenario_build.h"
#include "src/chain/stage_factory.h"
#include "src/fault/fault_registry.h"
#include "src/sim/memaslap.h"

namespace emu {
namespace {

struct Pipeline {
  const char* name;
  const char* spec;
};

// The two canonical shapes: the minimal two-stage chain and the chain_soak
// four-stage pipeline (filter on the cycle-accurate FPGA target).
constexpr Pipeline kPipelines[] = {
    {"nat-pool",
     "topology hub link_delay=1us\n"
     "host client mac=0x020000000c01 ip=192.168.1.10\n"
     "host h1\nhost h2\n"
     "stage nat  kind=nat       host=h1 target=cpu queue=16\n"
     "stage pool kind=memcached host=h2 target=cpu queue=32\n"
     "chain client -> nat -> pool\n"},
    {"filter-nat-cache-pool",
     "topology hub link_delay=2us\n"
     "host client mac=0x020000000c01 ip=192.168.1.10\n"
     "host h1\nhost h2\nhost h3\nhost h4\n"
     "stage filter kind=filter    host=h1 target=fpga queue=16\n"
     "stage nat    kind=nat       host=h2 target=cpu  queue=16\n"
     "stage cache  kind=l1cache   host=h3 target=cpu  queue=32 capacity=64\n"
     "stage pool   kind=memcached host=h4 target=cpu  queue=32\n"
     "chain client -> filter -> nat -> cache -> pool\n"},
};

constexpr usize kPrewarmKeys = 100;

struct CellResult {
  bool ok = true;
  double wall_seconds = 0;
  u64 events = 0;
  u64 epochs = 0;
  u64 digest = 0;
  u64 attempts = 0;
  u64 shed = 0;
  u64 replies = 0;
};

CellResult RunCell(const Pipeline& pipeline, usize threads, usize requests,
                   u64 gap_us, u64 seed) {
  CellResult out;
  FaultRegistry registry(seed);
  Expected<std::unique_ptr<Scenario>> built =
      BuildScenarioFromText(pipeline.spec, &registry);
  if (!built.ok() || !(*built)->has_chain) {
    std::fprintf(stderr, "pipeline '%s' rejected: %s\n", pipeline.name,
                 built.ok() ? "no chain" : built.status().ToString().c_str());
    std::exit(2);
  }
  Scenario& scenario = **built;
  ChainRuntime& chain = scenario.chain;

  MemaslapConfig mc;
  const MemcachedConfig server = CanonicalMemcachedConfig();
  mc.server_mac = server.mac;
  mc.server_ip = server.ip;
  mc.client_ip = Ipv4Address(192, 168, 1, 10);
  mc.key_space = kPrewarmKeys;
  mc.seed = seed;
  MemaslapLoadgen gen(mc);
  std::vector<Packet> frames;
  for (usize i = 0; i < gen.prewarm_count(); ++i) {
    frames.push_back(gen.PrewarmFrame(i));
  }
  for (usize i = 0; i < requests; ++i) {
    frames.push_back(gen.WorkloadFrame(i));
  }
  out.attempts = frames.size();

  EventScheduler& clock = scenario.topology.host(scenario.source_host).scheduler();
  const Picoseconds gap = static_cast<Picoseconds>(gap_us) * kPicosPerMicro;
  for (usize i = 0; i < frames.size(); ++i) {
    clock.At(static_cast<Picoseconds>(i + 1) * gap,
             [&chain, frame = std::move(frames[i])]() mutable {
               chain.SourceSend(std::move(frame));
             });
  }

  ParallelRunOptions opts;
  opts.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  out.events = scenario.Run(opts);
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.epochs = scenario.topology.runner().epochs();
  out.digest = chain.Digest();
  out.shed = chain.source_shed();
  out.replies = chain.source_replies();

  std::vector<Finding> findings;
  chain.CollectFindings(findings);
  for (const Finding& f : findings) {
    std::fprintf(stderr, "%s\n", f.ToString().c_str());
    out.ok = false;
  }
  if (out.replies != out.attempts - out.shed) {
    std::fprintf(stderr, "FLOW pipeline=%s threads=%zu: %llu admitted, %llu replies\n",
                 pipeline.name, threads,
                 static_cast<unsigned long long>(out.attempts - out.shed),
                 static_cast<unsigned long long>(out.replies));
    out.ok = false;
  }
  return out;
}

std::vector<usize> ParseList(const char* text) {
  std::vector<usize> values;
  usize current = 0;
  bool have = false;
  for (const char* p = text;; ++p) {
    if (*p >= '0' && *p <= '9') {
      current = current * 10 + static_cast<usize>(*p - '0');
      have = true;
    } else {
      if (have) {
        values.push_back(current);
      }
      current = 0;
      have = false;
      if (*p == '\0') {
        break;
      }
    }
  }
  return values;
}

int Main(int argc, char** argv) {
  std::vector<usize> thread_counts = {1, 2, 4};
  usize requests = 400;
  u64 gap_us = 25;
  u64 seed = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = ParseList(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--gap-us") == 0 && i + 1 < argc) {
      gap_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads 1,4] [--requests N] [--gap-us N] [--seed N]"
                   " [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("# chain pipelines, %zu requests (+%zu prewarm), gap %llu us, seed %llu\n",
              requests, kPrewarmKeys, static_cast<unsigned long long>(gap_us),
              static_cast<unsigned long long>(seed));
  std::printf("%-24s %-8s %12s %10s %12s %10s %10s\n", "pipeline", "threads", "events",
              "epochs", "wall_s", "Mev/s", "speedup");
  bool ok = true;
  std::string cells_json;
  for (const Pipeline& pipeline : kPipelines) {
    double serial_wall = 0;
    u64 serial_digest = 0;
    bool have_serial = false;
    for (usize threads : thread_counts) {
      const CellResult cell = RunCell(pipeline, threads, requests, gap_us, seed);
      ok = ok && cell.ok;
      if (!have_serial) {
        if (threads == 1) {
          serial_wall = cell.wall_seconds;
          serial_digest = cell.digest;
        } else {
          // threads=1 absent from the sweep: measure the serial twin just
          // for the digest gate and the speedup denominator.
          const CellResult serial = RunCell(pipeline, 1, requests, gap_us, seed);
          ok = ok && serial.ok;
          serial_wall = serial.wall_seconds;
          serial_digest = serial.digest;
        }
        have_serial = true;
      }
      if (cell.digest != serial_digest) {
        std::fprintf(stderr,
                     "DIGEST DIVERGENCE pipeline=%s threads=%zu: %016llx != serial %016llx\n",
                     pipeline.name, threads, static_cast<unsigned long long>(cell.digest),
                     static_cast<unsigned long long>(serial_digest));
        ok = false;
      }
      const double events_per_sec =
          cell.wall_seconds > 0 ? static_cast<double>(cell.events) / cell.wall_seconds : 0.0;
      const double speedup = cell.wall_seconds > 0 ? serial_wall / cell.wall_seconds : 0.0;
      std::printf("%-24s %-8zu %12llu %10llu %12.4f %10.2f %10.2f\n", pipeline.name,
                  threads, static_cast<unsigned long long>(cell.events),
                  static_cast<unsigned long long>(cell.epochs), cell.wall_seconds,
                  events_per_sec / 1e6, speedup);
      if (!cells_json.empty()) {
        cells_json += ",\n";
      }
      cells_json += "    {\"pipeline\": \"" + std::string(pipeline.name) +
                    "\", \"threads\": " + std::to_string(threads) +
                    ", \"events\": " + std::to_string(cell.events) +
                    ", \"epochs\": " + std::to_string(cell.epochs) +
                    ", \"wall_seconds\": " + bench::FormatJsonNumber(cell.wall_seconds) +
                    ", \"events_per_sec\": " + bench::FormatJsonNumber(events_per_sec) +
                    ", \"speedup\": " + bench::FormatJsonNumber(speedup) + "}";
    }
  }
  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << "{\n  \"benchmark\": \"chain_pipelines\",\n"
            "  \"workload\": {\"requests\": " +
                std::to_string(requests) + ", \"prewarm\": " + std::to_string(kPrewarmKeys) +
                ", \"gap_us\": " + std::to_string(gap_us) +
                ", \"seed\": " + std::to_string(seed) +
                "},\n  \"cells\": [\n" + cells_json + "\n  ]\n}\n";
    if (!file) {
      std::fprintf(stderr, "FAIL: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!ok) {
    std::fprintf(stderr, "FAIL: chain pipeline diverged or lost flow\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace emu

int main(int argc, char** argv) { return emu::Main(argc, argv); }
