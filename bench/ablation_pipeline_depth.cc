// §2/§5.3 ablation: "increasing parallelism adds to latency".
//
// Vivado-HLS-style optimization counts latency as pipeline parallelism, but
// every added match-action stage is another register boundary the packet
// must cross: throughput stays flat while network latency climbs. Sweep the
// number of stages in the match-action pipeline and measure both.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/p4_switch.h"

namespace emu {
namespace {

void Run() {
  PrintHeader("Ablation (2/5.3): pipeline depth vs network latency (match-action switch)");
  std::printf("%-8s %14s %16s %14s\n", "Stages", "Core latency", "Latency @250MHz",
              "Achieved Mpps");
  for (usize stages : {1u, 2u, 4u, 8u}) {
    P4SwitchConfig config;
    config.match_stages = stages;
    // Parser (12) + stages x 15 + deparser (13): the paper's 85-cycle design
    // corresponds to 4 stages.
    config.pipeline_latency = 12 + 15 * stages + 13;
    Cycle latency;
    {
      P4Switch service(config);
      FpgaTarget target(service, PipelineConfig{}, 250'000'000);
      latency = MeasureSwitchCoreLatency(target);
    }
    double mpps;
    {
      P4Switch service(config);
      FpgaTarget target(service, PipelineConfig{}, 250'000'000);
      mpps = MeasureSwitchThroughput(target, 2500, 64).achieved_mpps;
    }
    std::printf("%-8zu %11llu cy %13.2f ns %14.2f\n", stages,
                static_cast<unsigned long long>(latency),
                static_cast<double>(latency) * 4.0, mpps);
  }
  PrintRule();
  std::printf(
      "Shape checks: throughput is pinned by the initiation interval (flat across\n"
      "depths) while latency grows linearly with stage count — \"latency\" as an HLS\n"
      "parallelism metric is not network latency (Table 1 footnote, 5.3).\n");
}

}  // namespace
}  // namespace emu

int main() {
  emu::Run();
  return 0;
}
