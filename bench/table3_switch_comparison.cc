// Regenerates Table 3: Emu switch (C#) vs NetFPGA reference switch (Verilog)
// vs P4FPGA switch (P4) — logic resources, memory resources, module latency,
// and throughput for 64-byte packets at 4x10G.
//
// Paper values: Emu 3509 / 118 / 8 cycles / 59.52 Mpps;
//               reference 2836 / 87 / 6 / 59.52;
//               P4FPGA 24161 / 236 / 85 / 53 (250 MHz clock).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/p4_switch.h"
#include "src/baseline/reference_switch.h"
#include "src/services/learning_switch.h"

namespace emu {
namespace {

struct Row {
  const char* design;
  ResourceUsage resources;
  Cycle latency;
  double mpps;
  double loss;
  const char* paper;
};

// NOTE: a Service must be destroyed before the FpgaTarget that instantiated
// it is gone (its IP blocks unregister from the target's simulator), so each
// measurement builds a fresh service + target pair in one scope.
template <typename ServiceT>
Row MeasureDesign(const char* name, u64 clock_hz, const char* paper) {
  Row row{};
  row.design = name;
  row.paper = paper;
  {
    ServiceT service;
    FpgaTarget target(service, PipelineConfig{}, clock_hz);
    row.resources = target.pipeline().CoreResources();
    row.latency = MeasureSwitchCoreLatency(target);
  }
  {
    ServiceT service;
    FpgaTarget target(service, PipelineConfig{}, clock_hz);
    const SwitchThroughputResult result = MeasureSwitchThroughput(target, 3000, 64);
    row.mpps = result.achieved_mpps;
    row.loss = result.loss_rate;
  }
  return row;
}

void Run() {
  PrintHeader(
      "Table 3: Emu switch vs NetFPGA reference switch vs P4FPGA switch (64 B packets)");

  std::vector<Row> rows;
  rows.push_back(MeasureDesign<LearningSwitch>(
      "Emu switch (C#-style)", Simulator::kNetFpgaClockHz, "3509 / 118 / 8 / 59.52"));
  rows.push_back(MeasureDesign<ReferenceSwitch>(
      "NetFPGA reference (Verilog)", Simulator::kNetFpgaClockHz, "2836 /  87 / 6 / 59.52"));
  rows.push_back(
      MeasureDesign<P4Switch>("P4FPGA (match-action)", 250'000'000, "24161 / 236 / 85 / 53"));

  std::printf("%-28s %10s %8s %10s %12s %8s   %s\n", "Design", "Logic", "Memory",
              "Latency", "Throughput", "Loss", "Paper (logic/mem/lat/Mpps)");
  PrintRule();
  for (const Row& row : rows) {
    std::printf("%-28s %10llu %8llu %7llu cy %9.2f Mpps %7.2f%%   %s\n", row.design,
                static_cast<unsigned long long>(row.resources.luts),
                static_cast<unsigned long long>(row.resources.bram_units),
                static_cast<unsigned long long>(row.latency), row.mpps, row.loss * 100.0,
                row.paper);
  }
  PrintRule();
  std::printf(
      "Shape checks: Emu ~= reference in resources and latency (modest overhead);\n"
      "P4FPGA roughly an order of magnitude more logic, 10x the pipeline latency,\n"
      "and below the 59.52 Mpps line rate. Memory units here are RAMB18-equivalents\n"
      "from the structural model, not Vivado report units (see EXPERIMENTS.md).\n");

  const double emu_over_ref = static_cast<double>(rows[0].resources.luts) /
                              static_cast<double>(rows[1].resources.luts);
  std::printf("\nEmu/reference logic ratio: %.2fx (paper: 1.24x)\n", emu_over_ref);
  const double p4_over_ref = static_cast<double>(rows[2].resources.luts) /
                             static_cast<double>(rows[1].resources.luts);
  std::printf("P4FPGA/reference logic ratio: %.1fx (paper: 8.5x)\n", p4_over_ref);
}

}  // namespace
}  // namespace emu

int main() {
  emu::Run();
  return 0;
}
