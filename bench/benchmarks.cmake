# Benchmark targets, included from the top-level CMakeLists (not
# add_subdirectory) so that build/bench/ contains exactly the bench binaries
# and `for b in build/bench/*; do $b; done` runs them all cleanly.

function(emu_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE emu)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

emu_add_bench(table3_switch_comparison)
emu_add_bench(table4_service_comparison)
emu_add_bench(table5_debug_overhead)
emu_add_bench(ablation_memcached_cores)
emu_add_bench(ablation_memory_backend)
emu_add_bench(ablation_cam_variants)
emu_add_bench(ablation_bus_width)
emu_add_bench(ablation_pipeline_depth)
emu_add_bench(ablation_l1_cache)
emu_add_bench(microbench_kernel)
target_link_libraries(microbench_kernel PRIVATE benchmark::benchmark)
emu_add_bench(microbench_parallel)
emu_add_bench(microbench_gossip)
emu_add_bench(microbench_chain)
