// §5.4 ablation: Memcached throughput scaling with multiple Emu cores.
//
// "using four Emu cores (one per port) further increases [throughput] by
// 3.7x when considering a workload of 90% GET and 10% SET requests. SET
// requests must be applied to all instances, thus their relative ratio in
// performance cannot improve."
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/services/memcached_service.h"
#include "src/sim/loadgen.h"
#include "src/sim/memaslap.h"

namespace emu {
namespace {

double MeasureThroughput(usize cores, double get_fraction) {
  MemcachedConfig config;
  config.cores = cores;
  MemcachedService service(config);
  FpgaTarget target(service);

  MemaslapConfig workload;
  workload.server_mac = config.mac;
  workload.server_ip = config.ip;
  workload.get_fraction = get_fraction;
  workload.key_space = 256;
  MemaslapLoadgen loadgen(workload);

  // Prewarm through port 0 (SETs replicate to every core).
  for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
    target.SendAndCollect(0, loadgen.PrewarmFrame(i));
  }
  target.TakeEgress();

  OsntLoadgen::FixedRateConfig rate;
  rate.offered_mqps = 16.0;
  rate.frames = 16000;
  rate.ports = {0, 1, 2, 3};  // one client stream per port = per core
  rate.drain_limit = 120'000'000;
  const auto factory = [&loadgen](usize i, u8) { return loadgen.WorkloadFrame(i); };
  const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, rate);
  return report.achieved_mqps;
}

void Run() {
  PrintHeader("Ablation (5.4): Memcached multi-core scaling, 90/10 GET/SET via memaslap");
  std::printf("%-8s %16s %12s\n", "Cores", "Throughput Mq/s", "vs 1 core");
  double base = 0;
  for (usize cores : {1u, 2u, 4u}) {
    const double mqps = MeasureThroughput(cores, 0.9);
    if (cores == 1) {
      base = mqps;
    }
    std::printf("%-8zu %16.3f %11.2fx\n", cores, mqps, mqps / base);
  }
  PrintRule();

  std::printf("\nSET-only workload (0%% GET): replication to every core voids scaling\n");
  std::printf("%-8s %16s %12s\n", "Cores", "Throughput Mq/s", "vs 1 core");
  double set_base = 0;
  for (usize cores : {1u, 4u}) {
    const double mqps = MeasureThroughput(cores, 0.0);
    if (cores == 1) {
      set_base = mqps;
    }
    std::printf("%-8zu %16.3f %11.2fx\n", cores, mqps, mqps / set_base);
  }
  PrintRule();
  std::printf(
      "Shape checks (paper): ~3.7x at 4 cores for the 90/10 mix; SET throughput does\n"
      "not scale because every SET is applied to all replicas.\n");
}

}  // namespace
}  // namespace emu

int main() {
  emu::Run();
  return 0;
}
