// §5.4 ablation: Memcached memory backends.
//
// "On-board memory [DRAM] has a size advantage, but the disadvantage of
// increased and variable latency (e.g., due to DRAM refreshes); on-chip
// memory has the benefit of low, constant latency, but is of smaller size."
#include <cstdio>

#include "bench/bench_util.h"
#include "src/services/memcached_service.h"
#include "src/sim/loadgen.h"
#include "src/sim/memaslap.h"

namespace emu {
namespace {

LatencyStats MeasureGetLatency(McBackend backend) {
  MemcachedConfig config;
  config.backend = backend;
  MemcachedService service(config);
  FpgaTarget target(service);

  MemaslapConfig workload;
  workload.server_mac = config.mac;
  workload.server_ip = config.ip;
  workload.get_fraction = 1.0;  // pure GETs after prewarm
  workload.key_space = 128;
  workload.value_bytes = 64;
  MemaslapLoadgen loadgen(workload);
  for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
    target.SendAndCollect(0, loadgen.PrewarmFrame(i));
  }
  target.TakeEgress();

  const auto factory = [&loadgen](usize i, u8) { return loadgen.WorkloadFrame(i); };
  return OsntLoadgen::MeasureUnloadedRtt(target, factory, 1500);
}

void Run() {
  PrintHeader("Ablation (5.4): Memcached value-store backend — on-chip BRAM vs on-board DRAM");
  std::printf("%-10s %10s %10s %10s %10s %12s\n", "Backend", "avg us", "99th us", "max us",
              "stddev us", "99th-avg ns");
  for (McBackend backend : {McBackend::kOnChip, McBackend::kDram}) {
    const LatencyStats stats = MeasureGetLatency(backend);
    std::printf("%-10s %10.3f %10.3f %10.3f %10.4f %12.1f\n",
                backend == McBackend::kOnChip ? "on-chip" : "DRAM", stats.MeanUs(),
                stats.PercentileUs(99.0), stats.MaxUs(), stats.StdDevUs(),
                (stats.PercentileUs(99.0) - stats.MeanUs()) * 1000.0);
  }
  PrintRule();
  std::printf(
      "Shape checks (paper): on-chip is faster with near-zero variance; DRAM adds\n"
      "latency and a visible tail from row misses and periodic refresh stalls.\n");
}

}  // namespace
}  // namespace emu

int main() {
  emu::Run();
  return 0;
}
