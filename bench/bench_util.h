// Shared helpers for the table-regeneration benches: canonical test frames,
// switch-throughput saturation runs, and fixed-width table printing.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/targets.h"
#include "src/net/ethernet.h"
#include "src/sim/latency_probe.h"

namespace emu {

inline const MacAddress kBenchHostMac[4] = {
    MacAddress::FromU48(0x020000000001), MacAddress::FromU48(0x020000000002),
    MacAddress::FromU48(0x020000000003), MacAddress::FromU48(0x020000000004)};

inline Packet MakeSwitchFrame(MacAddress dst, MacAddress src, usize size = 64) {
  std::vector<u8> payload(size > kEthernetHeaderSize ? size - kEthernetHeaderSize : 0, 0xa5);
  Packet frame = MakeEthernetFrame(dst, src, EtherType::kIpv4, payload);
  frame.Resize(size);
  return frame;
}

// Teaches all four host MACs to a switch target (flood-free steady state).
inline void WarmSwitch(FpgaTarget& target) {
  for (u8 port = 0; port < 4; ++port) {
    target.Inject(port, MakeSwitchFrame(MacAddress::Broadcast(), kBenchHostMac[port]));
  }
  target.Run(60'000);
  target.TakeEgress();
}

struct SwitchThroughputResult {
  double offered_mpps = 0.0;
  double achieved_mpps = 0.0;
  double loss_rate = 0.0;
};

// Saturates all four ports with `frames_per_port` back-to-back frames of
// `size` bytes (per-port line rate enforced by the port model) and measures
// the achieved egress rate — the OSNT methodology at the line-rate point.
inline SwitchThroughputResult MeasureSwitchThroughput(FpgaTarget& target,
                                                      usize frames_per_port,
                                                      usize size = 64) {
  WarmSwitch(target);
  for (usize i = 0; i < frames_per_port; ++i) {
    for (u8 port = 0; port < 4; ++port) {
      target.Inject(port,
                    MakeSwitchFrame(kBenchHostMac[(port + 1) % 4], kBenchHostMac[port], size));
    }
  }
  const usize total = frames_per_port * 4;
  // Run until all frames egressed or the egress count stalls (lossy designs
  // never reach `total`).
  usize last_count = 0;
  Cycle stable_since = target.sim().now();
  while (target.egress().size() < total) {
    target.Run(2048);
    const usize count = target.egress().size();
    if (count != last_count) {
      last_count = count;
      stable_since = target.sim().now();
    } else if (target.sim().now() - stable_since > 100'000) {
      break;
    }
  }
  target.Run(50'000);  // drain stragglers
  const auto egress = target.TakeEgress();

  SwitchThroughputResult result;
  if (egress.empty()) {
    return result;
  }
  Picoseconds first = egress.front().frame.ingress_time();
  Picoseconds last = egress.front().frame.egress_time();
  for (const auto& e : egress) {
    first = std::min(first, e.frame.ingress_time());
    last = std::max(last, e.frame.egress_time());
  }
  const double window_s = static_cast<double>(last - first) / 1e12;
  result.achieved_mpps = static_cast<double>(egress.size()) / window_s / 1e6;
  result.loss_rate = 1.0 - static_cast<double>(egress.size()) / static_cast<double>(total);
  const Picoseconds per_frame = SerializationPs(size);
  result.offered_mpps = 4.0 * 1e6 / static_cast<double>(per_frame);
  return result;
}

// Core latency (cycles) of a warmed switch for a unicast 64 B frame.
inline Cycle MeasureSwitchCoreLatency(FpgaTarget& target) {
  WarmSwitch(target);
  target.Inject(0, MakeSwitchFrame(kBenchHostMac[1], kBenchHostMac[0], 64));
  target.RunUntilEgressCount(1, 500'000);
  const auto egress = target.TakeEgress();
  if (egress.empty()) {
    return 0;
  }
  return egress[0].frame.core_egress_cycle() - egress[0].frame.core_ingress_cycle();
}

// --- Table printing ----------------------------------------------------------

inline void PrintRule(usize width = 100) {
  std::string rule(width, '-');
  std::printf("%s\n", rule.c_str());
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n");
  PrintRule();
  std::printf("%s\n", title.c_str());
  PrintRule();
}

}  // namespace emu

#endif  // BENCH_BENCH_UTIL_H_
