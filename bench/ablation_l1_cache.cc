// §5.4 extension bench: the Emu Memcached as an L1 cache tier in front of a
// host memcached ("cache misses are sent to a host", citing the in-NIC /
// in-kernel multilevel NOSQL cache design [46]).
//
// Sweeps the fraction of the keyspace resident in the FPGA tier and reports
// the client-observed latency profile: hits are answered at Emu latency
// (~1.2 us), misses pay the full host stack (~25 us) plus two extra wire
// crossings — so average latency moves between the two extremes with the
// hit rate while the 99th percentile stays pinned at the host tier until
// the cache covers (almost) everything.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/hostnet/host_services.h"
#include "src/hostnet/host_stack_model.h"
#include "src/net/udp.h"
#include "src/services/memcached_service.h"
#include "src/sim/memaslap.h"

namespace emu {
namespace {

constexpr u8 kHostPort = 0;
constexpr usize kKeySpace = 400;
constexpr usize kRequests = 1200;

struct TierResult {
  LatencyStats latency;
  double hit_rate = 0.0;
};

TierResult RunWithResidency(double resident_fraction) {
  MemcachedConfig config;
  config.l1_cache_mode = true;
  config.host_port = kHostPort;
  MemcachedService service(config);
  FpgaTarget target(service);

  HostMemcached host(config.mac, config.ip, config.protocol, kKeySpace * 2);
  HostStackModel host_model(HostMemcachedParams(), 77);

  MemaslapConfig workload;
  workload.server_mac = config.mac;
  workload.server_ip = config.ip;
  workload.get_fraction = 1.0;  // pure GET read path
  workload.key_space = kKeySpace;
  MemaslapLoadgen loadgen(workload);

  // Every key lives in the host tier; `resident_fraction` of them are also
  // pre-filled into the FPGA tier (via local SETs).
  const usize resident = static_cast<usize>(resident_fraction * kKeySpace);
  for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
    Packet frame = loadgen.PrewarmFrame(i);
    if (i < resident) {
      target.SendAndCollect(2, std::move(frame));  // fills the FPGA tier
      Packet again = loadgen.PrewarmFrame(i);
      host.HandleRequest(again);  // host tier gets everything too
    } else {
      host.HandleRequest(frame);
    }
  }
  target.TakeEgress();

  TierResult result;
  usize hits = 0;
  for (usize i = 0; i < kRequests; ++i) {
    target.Inject(2, loadgen.WorkloadFrame(i));
    target.RunUntilEgressCount(1, 500'000);
    auto egress = target.TakeEgress();
    if (egress.empty()) {
      continue;
    }
    if (egress[0].port != kHostPort) {
      // L1 hit: answered by the FPGA tier.
      ++hits;
      result.latency.AddPacket(egress[0].frame);
      continue;
    }
    // Miss: the host tier serves it after its kernel-stack latency, then the
    // reply flows back through the FPGA to the client.
    auto reply = host.HandleRequest(egress[0].frame);
    const Picoseconds host_delay = host_model.SampleUnloadedRtt(128);
    const Cycle resume = target.sim().now() +
                         static_cast<Cycle>(host_delay / target.sim().cycle_period_ps());
    if (reply.has_value()) {
      Packet frame = std::move(*reply);
      const Picoseconds t0 = egress[0].frame.ingress_time();
      target.Inject(kHostPort, std::move(frame), resume);
      target.RunUntilEgressCount(1, 2'000'000);
      auto back = target.TakeEgress();
      if (!back.empty()) {
        result.latency.Add(back[0].frame.egress_time() - t0);
      }
    }
  }
  result.hit_rate = static_cast<double>(hits) / static_cast<double>(kRequests);
  return result;
}

void Run() {
  PrintHeader(
      "Extension (5.4): Emu Memcached as an L1 cache, misses served by a host tier");
  std::printf("%-12s %10s %10s %10s %10s\n", "Resident", "Hit rate", "avg us", "median us",
              "99th us");
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const TierResult result = RunWithResidency(fraction);
    std::printf("%10.0f%% %9.1f%% %10.2f %10.2f %10.2f\n", fraction * 100.0,
                result.hit_rate * 100.0, result.latency.MeanUs(), result.latency.MedianUs(),
                result.latency.PercentileUs(99.0));
  }
  PrintRule();
  std::printf(
      "Shape checks: average latency slides from host-tier (~26 us) to Emu-tier\n"
      "(~1.2 us) with residency; the median collapses once most keys are resident,\n"
      "while the 99th percentile stays pinned at the host tier until residency is\n"
      "complete — the multilevel-cache profile of [46] with Emu as the L1.\n");
}

}  // namespace
}  // namespace emu

int main() {
  emu::Run();
  return 0;
}
