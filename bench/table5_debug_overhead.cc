// Regenerates Table 5: utilization and performance of DNS and Memcached
// extended with controller features (+R read, +W write, +I increment a
// program variable), relative to the undirected baseline.
//
// Paper values (relative %): DNS +R 103.4/100.0/100.0, +W 115.1/99.5/100.0,
// +I 109.8/99.5/100.0; Memcached +R 99.2/100.0/100.0, +W 99.8/100.5/100.0,
// +I 100.6/100.0/100.0. Latency compared at the 99th percentile.
#include <cstdio>
#include <memory>
#include <optional>

#include "bench/bench_util.h"
#include "src/debug/controller.h"
#include "src/net/dns.h"
#include "src/net/udp.h"
#include "src/services/dns_service.h"
#include "src/services/memcached_service.h"
#include "src/sim/loadgen.h"
#include "src/sim/memaslap.h"

namespace emu {
namespace {

constexpr usize kLatencySamples = 600;
constexpr usize kThroughputFrames = 6000;

const MacAddress kClientMac = MacAddress::FromU48(0x02'00'00'00'cc'98);
const Ipv4Address kClientIp(10, 0, 0, 8);

struct Measurement {
  double luts = 0;
  double p99_us = 0;
  double mqps = 0;
};

struct Variant {
  const char* label;
  std::optional<ControllerFeature> feature;
};

constexpr Variant kVariants[] = {
    {"baseline", std::nullopt},
    {"+R", ControllerFeature::kRead},
    {"+W", ControllerFeature::kWrite},
    {"+I", ControllerFeature::kIncrement},
};

// Generic measurement: build the (possibly directed) service, take core
// resources, unloaded p99, and saturated throughput.
template <typename MakeService>
Measurement Measure(MakeService make_service, const FrameFactory& factory,
                    std::optional<ControllerFeature> feature) {
  Measurement out;
  {
    auto service = make_service();
    std::unique_ptr<DirectionController> controller;
    std::unique_ptr<DirectedService> directed;
    Service* top = service.get();
    if (feature.has_value()) {
      controller = std::make_unique<DirectionController>("main_loop");
      controller->EnableFeature(*feature);
      service->AttachController(controller.get());
      directed = std::make_unique<DirectedService>(*service, *controller);
      top = directed.get();
    }
    FpgaTarget target(*top);
    out.luts = static_cast<double>(target.pipeline().CoreResources().luts);
    const LatencyStats latency =
        OsntLoadgen::MeasureUnloadedRtt(target, factory, kLatencySamples);
    out.p99_us = latency.PercentileUs(99.0);
  }
  {
    auto service = make_service();
    std::unique_ptr<DirectionController> controller;
    std::unique_ptr<DirectedService> directed;
    Service* top = service.get();
    if (feature.has_value()) {
      controller = std::make_unique<DirectionController>("main_loop");
      controller->EnableFeature(*feature);
      service->AttachController(controller.get());
      directed = std::make_unique<DirectedService>(*service, *controller);
      top = directed.get();
    }
    FpgaTarget target(*top);
    OsntLoadgen::FixedRateConfig rate;
    rate.offered_mqps = 10.0;
    rate.frames = kThroughputFrames;
    rate.ports = {0, 1, 2, 3};
    rate.drain_limit = 80'000'000;
    const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, rate);
    out.mqps = report.achieved_mqps;
  }
  return out;
}

template <typename MakeService>
void RunArtefact(const char* name, MakeService make_service, const FrameFactory& factory,
                 const char* paper_rows) {
  std::printf("\n%s (paper rows: %s)\n", name, paper_rows);
  std::printf("%-10s %12s %14s %14s\n", "Variant", "Logic (%)", "99th lat (%)",
              "Queries/s (%)");
  Measurement baseline;
  for (const Variant& variant : kVariants) {
    const Measurement m = Measure(make_service, factory, variant.feature);
    if (!variant.feature.has_value()) {
      baseline = m;
      std::printf("%-10s %12.1f %14.1f %14.1f\n", variant.label, 100.0, 100.0, 100.0);
    } else {
      std::printf("%-10s %12.1f %14.1f %14.1f\n", variant.label,
                  100.0 * m.luts / baseline.luts, 100.0 * m.p99_us / baseline.p99_us,
                  100.0 * m.mqps / baseline.mqps);
    }
  }
}

void Run() {
  PrintHeader("Table 5: profile of utilization and performance with controller features");

  {
    DnsServiceConfig config;
    const auto make_service = [config] {
      auto service = std::make_unique<DnsService>(config);
      service->AddRecord("svc.lab", Ipv4Address(10, 1, 0, 1));
      return service;
    };
    const auto factory = [config](usize i, u8) {
      return MakeUdpPacket({config.mac, kClientMac, kClientIp, config.ip,
                            static_cast<u16>(5000 + i % 1000), kDnsPort},
                           BuildDnsQuery(static_cast<u16>(i), "svc.lab"));
    };
    RunArtefact("DNS", make_service, factory,
                "+R 103.4/100.0/100.0  +W 115.1/99.5/100.0  +I 109.8/99.5/100.0");
  }

  {
    MemcachedConfig config;
    MemaslapConfig workload;
    workload.server_mac = config.mac;
    workload.server_ip = config.ip;
    workload.key_space = 64;
    const auto make_service = [config] { return std::make_unique<MemcachedService>(config); };
    // Self-contained workload: SET-heavy enough that misses do not dominate.
    auto loadgen = std::make_shared<MemaslapLoadgen>(workload);
    const auto factory = [loadgen](usize i, u8) {
      if (i < 64) {
        return loadgen->PrewarmFrame(i);
      }
      return loadgen->WorkloadFrame(i);
    };
    RunArtefact("Memcached", make_service, factory,
                "+R 99.2/100.0/100.0  +W 99.8/100.5/100.0  +I 100.6/100.0/100.0");
  }

  PrintRule();
  std::printf(
      "Shape checks (paper): every feature costs within ~ -1%%..+15%% utilization and\n"
      "within 0.5%% of baseline latency/throughput — the controller is close to free,\n"
      "and place-and-route noise sometimes makes a directed build *smaller*.\n");
}

}  // namespace
}  // namespace emu

int main() {
  emu::Run();
  return 0;
}
