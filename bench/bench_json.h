// Minimal JSON number I/O shared by the bench tools (microbench_kernel,
// microbench_parallel) and their baseline-gate parsing.
//
// The first generation of these helpers had two quiet bugs this header
// fixes for good:
//   * the writer went through iostream formatting, whose decimal separator
//     follows the global C++ locale — a baseline written under a comma
//     locale was unreadable everywhere else;
//   * the reader used strtod (same locale trap) and the section-scoped
//     lookup matched the first '}' after the section opened, so a section
//     containing a nested object was silently truncated at the inner close
//     brace and keys after it were never found.
// Both directions now use std::to_chars/std::from_chars (locale-independent,
// round-trip exact, full JSON number grammar including exponents) and the
// section scanner is brace-depth aware.
#ifndef BENCH_BENCH_JSON_H_
#define BENCH_BENCH_JSON_H_

#include <charconv>
#include <string>
#include <string_view>
#include <system_error>

#include "src/common/types.h"

namespace emu::bench {

// Shortest round-trip decimal representation (may use exponent notation —
// valid JSON, and ExtractJsonNumber reads it back bit-exactly).
inline std::string FormatJsonNumber(double value) {
  char buf[64];
  const std::to_chars_result res = std::to_chars(buf, buf + sizeof(buf), value);
  if (res.ec != std::errc{}) {
    return "0";
  }
  return std::string(buf, res.ptr);
}

// Parses the JSON number starting at text[pos] (after optional whitespace).
// Accepts the full JSON grammar: -?int[.frac][eE[+-]exp].
inline bool ParseJsonNumberAt(std::string_view text, usize pos, double* value) {
  while (pos < text.size() &&
         (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' || text[pos] == '\r')) {
    ++pos;
  }
  if (pos >= text.size()) {
    return false;
  }
  const std::from_chars_result res =
      std::from_chars(text.data() + pos, text.data() + text.size(), *value);
  return res.ec == std::errc{} && res.ptr != text.data() + pos;
}

// Pulls `"key": <number>` out of a flat JSON document (first occurrence).
inline bool ExtractJsonNumber(std::string_view text, std::string_view key, double* value) {
  const std::string quoted = "\"" + std::string(key) + "\"";
  const auto pos = text.find(quoted);
  if (pos == std::string_view::npos) {
    return false;
  }
  const auto colon = text.find(':', pos + quoted.size());
  if (colon == std::string_view::npos) {
    return false;
  }
  return ParseJsonNumberAt(text, colon + 1, value);
}

// The full `{...}` object (brace-matched, so nested objects are kept) that
// follows `"section"`: — or empty view when absent/malformed.
inline std::string_view ExtractJsonSection(std::string_view text, std::string_view section) {
  const std::string quoted = "\"" + std::string(section) + "\"";
  const auto start = text.find(quoted);
  if (start == std::string_view::npos) {
    return {};
  }
  const auto open = text.find('{', start + quoted.size());
  if (open == std::string_view::npos) {
    return {};
  }
  usize depth = 0;
  for (usize i = open; i < text.size(); ++i) {
    if (text[i] == '{') {
      ++depth;
    } else if (text[i] == '}') {
      if (--depth == 0) {
        return text.substr(open, i - open + 1);
      }
    }
  }
  return {};
}

// Like ExtractJsonNumber, but scoped to one (possibly nested) section
// object. "cycles_per_sec" appears under both "exact" and "fast", so a flat
// first-match search would silently read the wrong one.
inline bool ExtractJsonNumberInSection(std::string_view text, std::string_view section,
                                       std::string_view key, double* value) {
  const std::string_view scoped = ExtractJsonSection(text, section);
  if (scoped.empty()) {
    return false;
  }
  return ExtractJsonNumber(scoped, key, value);
}

}  // namespace emu::bench

#endif  // BENCH_BENCH_JSON_H_
