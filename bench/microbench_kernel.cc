// Google-benchmark microbenchmarks of the simulation substrate's hot paths:
// how fast the reproduction itself runs (not a paper table, but what bounds
// every table's wall-clock time).
#include <benchmark/benchmark.h>

#include "src/common/wide_word.h"
#include "src/hdl/fifo.h"
#include "src/hdl/signal.h"
#include "src/ip/cam.h"
#include "src/ip/pearson_hash.h"
#include "src/net/checksum.h"
#include "src/net/ethernet.h"
#include "src/netfpga/axis.h"
#include "src/services/learning_switch.h"
#include "src/core/targets.h"

namespace emu {
namespace {

void BM_WideWordAdd(benchmark::State& state) {
  Word256 a(0x123456789abcdefULL);
  Word256 b = Word256::Max() >> 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a += b);
  }
}
BENCHMARK(BM_WideWordAdd);

void BM_WideWordShift(benchmark::State& state) {
  Word512 w = Word512::Max() >> 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w << 13);
  }
}
BENCHMARK(BM_WideWordShift);

void BM_PearsonHash64(benchmark::State& state) {
  std::vector<u8> key(static_cast<usize>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PearsonHash64(key));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PearsonHash64)->Arg(6)->Arg(64);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<u8> data(static_cast<usize>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InternetChecksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1514);

void BM_CamLookup(benchmark::State& state) {
  Simulator sim;
  Cam cam(sim, "cam", static_cast<usize>(state.range(0)), 48, 8);
  for (usize i = 0; i < cam.entries(); ++i) {
    cam.Write(i, 0x1000 + i, i);
  }
  sim.Step();
  u64 key = 0x1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.Lookup(key));
    key = 0x1000 + ((key + 1) % cam.entries());
  }
}
BENCHMARK(BM_CamLookup)->Arg(16)->Arg(256);

void BM_SimulatorStep(benchmark::State& state) {
  Simulator sim;
  Reg<u64> counter(sim, 0);
  struct Counter {
    static HwProcess Run(Reg<u64>& reg) {
      for (;;) {
        reg.Write(reg.Read() + 1);
        co_await Pause();
      }
    }
  };
  for (int i = 0; i < state.range(0); ++i) {
    sim.AddProcess(Counter::Run(counter), "p");
  }
  for (auto _ : state) {
    sim.Step();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorStep)->Arg(1)->Arg(16);

void BM_AxisRoundTrip(benchmark::State& state) {
  Packet packet(static_cast<usize>(state.range(0)));
  for (auto _ : state) {
    auto words = PacketToAxis(packet);
    benchmark::DoNotOptimize(AxisToPacket(words));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AxisRoundTrip)->Arg(64)->Arg(1514);

void BM_SwitchForwardOneFrame(benchmark::State& state) {
  LearningSwitch service;
  FpgaTarget target(service);
  const MacAddress a = MacAddress::FromU48(0x020000000001);
  const MacAddress b = MacAddress::FromU48(0x020000000002);
  // Teach both MACs.
  target.Inject(0, MakeEthernetFrame(MacAddress::Broadcast(), a, EtherType::kIpv4, {}));
  target.Inject(1, MakeEthernetFrame(MacAddress::Broadcast(), b, EtherType::kIpv4, {}));
  target.Run(50'000);
  target.TakeEgress();
  for (auto _ : state) {
    auto reply =
        target.SendAndCollect(0, MakeEthernetFrame(b, a, EtherType::kIpv4, {}), 500'000);
    benchmark::DoNotOptimize(reply);
    target.TakeEgress();
  }
}
BENCHMARK(BM_SwitchForwardOneFrame);

}  // namespace
}  // namespace emu

BENCHMARK_MAIN();
