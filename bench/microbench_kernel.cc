// Google-benchmark microbenchmarks of the simulation substrate's hot paths:
// how fast the reproduction itself runs (not a paper table, but what bounds
// every table's wall-clock time).
//
// Besides the google-benchmark suite, `--throughput` runs the quiescence
// kernel's end-to-end throughput mode: one idle-heavy soak workload twice —
// exact per-edge stepping vs the fast path — verifying bit-exact egress and
// reporting cycles/sec for both plus the speedup. `--json <path>` writes the
// result as BENCH_kernel.json; `--check <baseline.json>` compares the
// speedup ratio (machine-independent) against a committed baseline and fails
// on a >20% regression. `--compare <other.json>` compares absolute fast-path
// throughput against a same-machine run (e.g. an EMU_TRACE=OFF build) and
// fails on a regression beyond `--tolerance <pct>` (default 3%).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/wide_word.h"
#include "src/hdl/fifo.h"
#include "src/hdl/signal.h"
#include "src/ip/cam.h"
#include "src/ip/pearson_hash.h"
#include "src/net/checksum.h"
#include "src/net/ethernet.h"
#include "src/netfpga/axis.h"
#include "src/services/learning_switch.h"
#include "src/core/targets.h"

namespace emu {
namespace {

void BM_WideWordAdd(benchmark::State& state) {
  Word256 a(0x123456789abcdefULL);
  Word256 b = Word256::Max() >> 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a += b);
  }
}
BENCHMARK(BM_WideWordAdd);

void BM_WideWordShift(benchmark::State& state) {
  Word512 w = Word512::Max() >> 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w << 13);
  }
}
BENCHMARK(BM_WideWordShift);

void BM_PearsonHash64(benchmark::State& state) {
  std::vector<u8> key(static_cast<usize>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PearsonHash64(key));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PearsonHash64)->Arg(6)->Arg(64);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<u8> data(static_cast<usize>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InternetChecksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1514);

void BM_CamLookup(benchmark::State& state) {
  Simulator sim;
  Cam cam(sim, "cam", static_cast<usize>(state.range(0)), 48, 8);
  for (usize i = 0; i < cam.entries(); ++i) {
    cam.Write(i, 0x1000 + i, i);
  }
  sim.Step();
  u64 key = 0x1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.Lookup(key));
    key = 0x1000 + ((key + 1) % cam.entries());
  }
}
BENCHMARK(BM_CamLookup)->Arg(16)->Arg(256);

void BM_SimulatorStep(benchmark::State& state) {
  Simulator sim;
  Reg<u64> counter(sim, 0);
  struct Counter {
    static HwProcess Run(Reg<u64>& reg) {
      for (;;) {
        reg.Write(reg.Read() + 1);
        co_await Pause();
      }
    }
  };
  for (int i = 0; i < state.range(0); ++i) {
    sim.AddProcess(Counter::Run(counter), "p");
  }
  for (auto _ : state) {
    sim.Step();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorStep)->Arg(1)->Arg(16);

void BM_AxisRoundTrip(benchmark::State& state) {
  Packet packet(static_cast<usize>(state.range(0)));
  for (auto _ : state) {
    auto words = PacketToAxis(packet);
    benchmark::DoNotOptimize(AxisToPacket(words));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AxisRoundTrip)->Arg(64)->Arg(1514);

void BM_SwitchForwardOneFrame(benchmark::State& state) {
  LearningSwitch service;
  FpgaTarget target(service);
  const MacAddress a = MacAddress::FromU48(0x020000000001);
  const MacAddress b = MacAddress::FromU48(0x020000000002);
  // Teach both MACs.
  target.Inject(0, MakeEthernetFrame(MacAddress::Broadcast(), a, EtherType::kIpv4, {}));
  target.Inject(1, MakeEthernetFrame(MacAddress::Broadcast(), b, EtherType::kIpv4, {}));
  target.Run(50'000);
  target.TakeEgress();
  for (auto _ : state) {
    auto reply =
        target.SendAndCollect(0, MakeEthernetFrame(b, a, EtherType::kIpv4, {}), 500'000);
    benchmark::DoNotOptimize(reply);
    target.TakeEgress();
  }
}
BENCHMARK(BM_SwitchForwardOneFrame);

// --- Quiescence-kernel throughput mode (--throughput) -----------------------------

constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

struct ThroughputResult {
  double wall_seconds = 0;
  double cycles_per_sec = 0;
  u64 edges_run = 0;
  u64 cycles_fast_forwarded = 0;
  u64 egress_count = 0;
  u64 egress_digest = 0;
};

// The idle-heavy soak shape: sparse frames through the learning switch, long
// quiescent gaps between them — the pattern chaos soaks and long-horizon
// integration runs spend most of their cycles in.
ThroughputResult RunSoakWorkload(bool fast_path, u64 total_cycles, u64 frame_gap) {
  LearningSwitch service;
  FpgaTarget target(service);
  target.sim().SetFastPath(fast_path);
  const MacAddress a = MacAddress::FromU48(0x020000000001);
  const MacAddress b = MacAddress::FromU48(0x020000000002);
  target.Inject(0, MakeEthernetFrame(MacAddress::Broadcast(), a, EtherType::kIpv4, {}));
  target.Inject(1, MakeEthernetFrame(MacAddress::Broadcast(), b, EtherType::kIpv4, {}));
  target.Run(50'000);
  target.TakeEgress();

  const auto start = std::chrono::steady_clock::now();
  for (u64 cycle = 0; cycle < total_cycles; cycle += frame_gap) {
    target.Inject(0, MakeEthernetFrame(b, a, EtherType::kIpv4, {}));
    target.Run(std::min(frame_gap, total_cycles - cycle));
  }
  const auto stop = std::chrono::steady_clock::now();

  ThroughputResult result;
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.cycles_per_sec =
      result.wall_seconds > 0 ? static_cast<double>(total_cycles) / result.wall_seconds : 0;
  const SimProfile profile = target.sim().ProfileReport();
  result.edges_run = profile.edges_run;
  result.cycles_fast_forwarded = profile.cycles_fast_forwarded;
  u64 digest = kFnvOffset;
  for (const EgressFrame& frame : target.TakeEgress()) {
    digest = (digest ^ frame.port) * kFnvPrime;
    for (u8 byte : frame.frame.bytes()) {
      digest = (digest ^ byte) * kFnvPrime;
    }
    ++result.egress_count;
  }
  result.egress_digest = digest;
  return result;
}

std::string ThroughputJson(const ThroughputResult& exact, const ThroughputResult& fast,
                           u64 total_cycles, u64 frame_gap) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "{\n"
      << "  \"benchmark\": \"kernel_throughput\",\n"
      << "  \"workload\": {\"service\": \"learning_switch\", \"cycles\": " << total_cycles
      << ", \"frame_gap\": " << frame_gap << "},\n"
      << "  \"exact\": {\"cycles_per_sec\": " << exact.cycles_per_sec
      << ", \"wall_seconds\": " << exact.wall_seconds << ", \"edges_run\": " << exact.edges_run
      << "},\n"
      << "  \"fast\": {\"cycles_per_sec\": " << fast.cycles_per_sec
      << ", \"wall_seconds\": " << fast.wall_seconds << ", \"edges_run\": " << fast.edges_run
      << ", \"cycles_fast_forwarded\": " << fast.cycles_fast_forwarded << "},\n"
      << "  \"speedup\": " << (exact.cycles_per_sec > 0
                                   ? fast.cycles_per_sec / exact.cycles_per_sec
                                   : 0)
      << "\n}\n";
  return out.str();
}

// Pulls `"key": <number>` out of a flat JSON document; the baseline files are
// emitted by ThroughputJson above, so no general parser is needed.
bool ExtractJsonNumber(const std::string& text, const std::string& key, double* value) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) {
    return false;
  }
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) {
    return false;
  }
  *value = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

// Like ExtractJsonNumber, but scoped to one section object. "cycles_per_sec"
// appears under both "exact" and "fast", so a flat first-match search would
// silently read the wrong one.
bool ExtractJsonNumberInSection(const std::string& text, const std::string& section,
                                const std::string& key, double* value) {
  const auto start = text.find("\"" + section + "\"");
  if (start == std::string::npos) {
    return false;
  }
  const auto open = text.find('{', start);
  if (open == std::string::npos) {
    return false;
  }
  const auto close = text.find('}', open);
  if (close == std::string::npos) {
    return false;
  }
  return ExtractJsonNumber(text.substr(open, close - open), key, value);
}

int ThroughputMain(u64 total_cycles, u64 frame_gap, const std::string& json_path,
                   const std::string& baseline_path, const std::string& compare_path,
                   double tolerance_pct) {
  std::printf("kernel throughput: %llu cycles, one frame per %llu cycles\n",
              static_cast<unsigned long long>(total_cycles),
              static_cast<unsigned long long>(frame_gap));
  const ThroughputResult exact = RunSoakWorkload(false, total_cycles, frame_gap);
  const ThroughputResult fast = RunSoakWorkload(true, total_cycles, frame_gap);

  if (fast.egress_digest != exact.egress_digest || fast.egress_count != exact.egress_count) {
    std::printf("FAIL: fast path diverged from exact (egress %llu/%016llx vs %llu/%016llx)\n",
                static_cast<unsigned long long>(fast.egress_count),
                static_cast<unsigned long long>(fast.egress_digest),
                static_cast<unsigned long long>(exact.egress_count),
                static_cast<unsigned long long>(exact.egress_digest));
    return 1;
  }

  const double speedup =
      exact.cycles_per_sec > 0 ? fast.cycles_per_sec / exact.cycles_per_sec : 0;
  std::printf("  exact: %.3g cycles/sec (%llu edges)\n", exact.cycles_per_sec,
              static_cast<unsigned long long>(exact.edges_run));
  std::printf("  fast:  %.3g cycles/sec (%llu edges + %llu fast-forwarded)\n",
              fast.cycles_per_sec, static_cast<unsigned long long>(fast.edges_run),
              static_cast<unsigned long long>(fast.cycles_fast_forwarded));
  std::printf("  speedup: %.2fx (egress bit-exact, %llu frames)\n", speedup,
              static_cast<unsigned long long>(fast.egress_count));

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << ThroughputJson(exact, fast, total_cycles, frame_gap);
    if (!file) {
      std::printf("FAIL: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream file(baseline_path);
    if (!file) {
      std::printf("FAIL: could not read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    double baseline_speedup = 0;
    if (!ExtractJsonNumber(buffer.str(), "speedup", &baseline_speedup)) {
      std::printf("FAIL: no \"speedup\" in baseline %s\n", baseline_path.c_str());
      return 1;
    }
    // The speedup ratio is machine-independent (both runs share the host),
    // so it is the number a perf gate can hold steady across CI runners.
    const double floor = baseline_speedup * 0.8;
    std::printf("  baseline speedup %.2fx, regression floor %.2fx\n", baseline_speedup, floor);
    if (speedup < floor) {
      std::printf("FAIL: speedup %.2fx regressed more than 20%% from baseline %.2fx\n", speedup,
                  baseline_speedup);
      return 1;
    }
    std::printf("  perf gate passed\n");
  }

  if (!compare_path.empty()) {
    // Absolute-throughput comparison against a same-machine baseline JSON,
    // e.g. an EMU_TRACE=OFF build vs a compiled-in-but-detached build. Unlike
    // --check's speedup ratio, this gate only makes sense when both runs
    // executed on the same host within the same CI job.
    std::ifstream file(compare_path);
    if (!file) {
      std::printf("FAIL: could not read comparison baseline %s\n", compare_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    double base_fast = 0;
    if (!ExtractJsonNumberInSection(buffer.str(), "fast", "cycles_per_sec", &base_fast) ||
        base_fast <= 0) {
      std::printf("FAIL: no fast.cycles_per_sec in %s\n", compare_path.c_str());
      return 1;
    }
    const double floor = base_fast * (1.0 - tolerance_pct / 100.0);
    std::printf("  compare: fast path %.3g cycles/sec vs baseline %.3g (floor %.3g, -%g%%)\n",
                fast.cycles_per_sec, base_fast, floor, tolerance_pct);
    if (fast.cycles_per_sec < floor) {
      std::printf("FAIL: fast-path throughput regressed more than %g%% vs %s\n", tolerance_pct,
                  compare_path.c_str());
      return 1;
    }
    std::printf("  overhead gate passed\n");
  }
  return 0;
}

}  // namespace
}  // namespace emu

int main(int argc, char** argv) {
  bool throughput = false;
  emu::u64 cycles = 2'000'000;
  emu::u64 gap = 1'000;
  std::string json_path;
  std::string baseline_path;
  std::string compare_path;
  double tolerance_pct = 3.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--throughput") == 0) {
      throughput = true;
    } else if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--gap") == 0 && i + 1 < argc) {
      gap = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--compare") == 0 && i + 1 < argc) {
      compare_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance_pct = std::strtod(argv[++i], nullptr);
    }
  }
  if (throughput) {
    if (gap == 0) {
      gap = 1;
    }
    return emu::ThroughputMain(cycles, gap, json_path, baseline_path, compare_path,
                               tolerance_pct);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
