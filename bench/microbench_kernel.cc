// Google-benchmark microbenchmarks of the simulation substrate's hot paths:
// how fast the reproduction itself runs (not a paper table, but what bounds
// every table's wall-clock time).
//
// Besides the google-benchmark suite, `--throughput` runs the quiescence
// kernel's end-to-end throughput mode: one idle-heavy soak workload twice —
// exact per-edge stepping vs the fast path — verifying bit-exact egress and
// reporting cycles/sec for both plus the speedup. `--saturated` instead pins
// the loadgen at line rate (default one frame per 10 cycles, so fast-forward
// never fires) and runs the workload three ways — exact, dynamic dispatch,
// and the flat scheduled loop (Simulator::EnableFlatSchedule) — verifying
// bit-exact egress across all three and reporting the flat-over-exact
// speedup, the busy-path number emu-speed gates. `--json <path>` writes the
// result as BENCH_kernel.json; `--check <baseline.json>` compares the
// speedup ratio (machine-independent) against a committed baseline and fails
// on a >20% regression (`--saturated --check` reads the baseline's
// "saturated" section). `--compare <other.json>` compares absolute fast-path
// throughput against a same-machine run (e.g. an EMU_TRACE=OFF build) and
// fails on a regression beyond `--tolerance <pct>` (default 3%).
// `--profile-overhead` runs the saturated workload with kernel phase
// profiling off vs sampled (emu-pulse), verifies bit-exact egress, and fails
// when the sampled profiler costs more than `--tolerance <pct>` (default 5%)
// of throughput — the gate that keeps "profiling is cheap enough to leave
// on" true.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "bench/bench_json.h"
#include "src/common/wide_word.h"
#include "src/hdl/fifo.h"
#include "src/hdl/signal.h"
#include "src/ip/cam.h"
#include "src/ip/pearson_hash.h"
#include "src/net/checksum.h"
#include "src/net/ethernet.h"
#include "src/netfpga/axis.h"
#include "src/services/learning_switch.h"
#include "src/core/targets.h"

namespace emu {
namespace {

void BM_WideWordAdd(benchmark::State& state) {
  Word256 a(0x123456789abcdefULL);
  Word256 b = Word256::Max() >> 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a += b);
  }
}
BENCHMARK(BM_WideWordAdd);

void BM_WideWordShift(benchmark::State& state) {
  Word512 w = Word512::Max() >> 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w << 13);
  }
}
BENCHMARK(BM_WideWordShift);

void BM_PearsonHash64(benchmark::State& state) {
  std::vector<u8> key(static_cast<usize>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PearsonHash64(key));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PearsonHash64)->Arg(6)->Arg(64);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<u8> data(static_cast<usize>(state.range(0)), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(InternetChecksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1514);

void BM_CamLookup(benchmark::State& state) {
  Simulator sim;
  Cam cam(sim, "cam", static_cast<usize>(state.range(0)), 48, 8);
  for (usize i = 0; i < cam.entries(); ++i) {
    cam.Write(i, 0x1000 + i, i);
  }
  sim.Step();
  u64 key = 0x1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cam.Lookup(key));
    key = 0x1000 + ((key + 1) % cam.entries());
  }
}
BENCHMARK(BM_CamLookup)->Arg(16)->Arg(256);

void BM_SimulatorStep(benchmark::State& state) {
  Simulator sim;
  Reg<u64> counter(sim, 0);
  struct Counter {
    static HwProcess Run(Reg<u64>& reg) {
      for (;;) {
        reg.Write(reg.Read() + 1);
        co_await Pause();
      }
    }
  };
  for (int i = 0; i < state.range(0); ++i) {
    sim.AddProcess(Counter::Run(counter), "p");
  }
  for (auto _ : state) {
    sim.Step();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorStep)->Arg(1)->Arg(16);

void BM_AxisRoundTrip(benchmark::State& state) {
  Packet packet(static_cast<usize>(state.range(0)));
  for (auto _ : state) {
    auto words = PacketToAxis(packet);
    benchmark::DoNotOptimize(AxisToPacket(words));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AxisRoundTrip)->Arg(64)->Arg(1514);

void BM_SwitchForwardOneFrame(benchmark::State& state) {
  LearningSwitch service;
  FpgaTarget target(service);
  const MacAddress a = MacAddress::FromU48(0x020000000001);
  const MacAddress b = MacAddress::FromU48(0x020000000002);
  // Teach both MACs.
  target.Inject(0, MakeEthernetFrame(MacAddress::Broadcast(), a, EtherType::kIpv4, {}));
  target.Inject(1, MakeEthernetFrame(MacAddress::Broadcast(), b, EtherType::kIpv4, {}));
  target.Run(50'000);
  target.TakeEgress();
  for (auto _ : state) {
    auto reply =
        target.SendAndCollect(0, MakeEthernetFrame(b, a, EtherType::kIpv4, {}), 500'000);
    benchmark::DoNotOptimize(reply);
    target.TakeEgress();
  }
}
BENCHMARK(BM_SwitchForwardOneFrame);

// --- Quiescence-kernel throughput mode (--throughput) -----------------------------

constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

struct ThroughputResult {
  double wall_seconds = 0;
  double cycles_per_sec = 0;
  u64 edges_run = 0;
  u64 cycles_fast_forwarded = 0;
  u64 egress_count = 0;
  u64 egress_digest = 0;
};

// Scheduler flavor for one workload run. kExact is the reference semantics
// (per-edge stepping, every parked predicate evaluated every edge); kFast is
// the quiescence fast path with dynamic dispatch; kFlat additionally adopts
// the statically elaborated schedule and routed wakes
// (Simulator::EnableFlatSchedule).
enum class RunMode { kExact, kFast, kFlat };

// The soak shape: frames through the learning switch every `frame_gap`
// cycles. A large gap is the idle-heavy pattern chaos soaks spend their
// cycles in; a small gap (--saturated) keeps the pipeline busy so
// fast-forward never fires and the per-edge cost dominates.
ThroughputResult RunSoakWorkload(RunMode mode, u64 total_cycles, u64 frame_gap,
                                 ProfilingMode profiling = ProfilingMode::kOff) {
  LearningSwitch service;
  FpgaTarget target(service);
  if (mode == RunMode::kExact) {
    target.sim().SetFastPath(false);
  } else if (mode == RunMode::kFlat) {
    if (!target.EnableFlatSchedule()) {
      std::fprintf(stderr,
                   "microbench_kernel: EnableFlatSchedule() failed on the stock pipeline\n");
      std::abort();
    }
  }
  target.sim().SetProfilingMode(profiling);
  const MacAddress a = MacAddress::FromU48(0x020000000001);
  const MacAddress b = MacAddress::FromU48(0x020000000002);
  target.Inject(0, MakeEthernetFrame(MacAddress::Broadcast(), a, EtherType::kIpv4, {}));
  target.Inject(1, MakeEthernetFrame(MacAddress::Broadcast(), b, EtherType::kIpv4, {}));
  target.Run(50'000);
  target.TakeEgress();

  const auto start = std::chrono::steady_clock::now();
  for (u64 cycle = 0; cycle < total_cycles; cycle += frame_gap) {
    target.Inject(0, MakeEthernetFrame(b, a, EtherType::kIpv4, {}));
    target.Run(std::min(frame_gap, total_cycles - cycle));
  }
  const auto stop = std::chrono::steady_clock::now();

  ThroughputResult result;
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.cycles_per_sec =
      result.wall_seconds > 0 ? static_cast<double>(total_cycles) / result.wall_seconds : 0;
  const SimProfile profile = target.sim().ProfileReport();
  result.edges_run = profile.edges_run;
  result.cycles_fast_forwarded = profile.cycles_fast_forwarded;
  u64 digest = kFnvOffset;
  for (const EgressFrame& frame : target.TakeEgress()) {
    digest = (digest ^ frame.port) * kFnvPrime;
    for (u8 byte : frame.frame.bytes()) {
      digest = (digest ^ byte) * kFnvPrime;
    }
    ++result.egress_count;
  }
  result.egress_digest = digest;
  return result;
}

// One mode's result object: `{"cycles_per_sec": ..., "wall_seconds": ...,
// "edges_run": ...[, "cycles_fast_forwarded": ...]}`. Doubles go through
// std::to_chars (bench_json.h) and integers through std::to_string, so the
// output is locale-independent — the iostream formatting this replaces
// followed the global locale's decimal separator and digit grouping.
std::string ResultJson(const ThroughputResult& result, bool with_fast_forward) {
  std::string out = "{\"cycles_per_sec\": " + bench::FormatJsonNumber(result.cycles_per_sec) +
                    ", \"wall_seconds\": " + bench::FormatJsonNumber(result.wall_seconds) +
                    ", \"edges_run\": " + std::to_string(result.edges_run);
  if (with_fast_forward) {
    out += ", \"cycles_fast_forwarded\": " + std::to_string(result.cycles_fast_forwarded);
  }
  out += "}";
  return out;
}

std::string ThroughputJson(const ThroughputResult& exact, const ThroughputResult& fast,
                           u64 total_cycles, u64 frame_gap) {
  const double speedup =
      exact.cycles_per_sec > 0 ? fast.cycles_per_sec / exact.cycles_per_sec : 0;
  return "{\n"
         "  \"benchmark\": \"kernel_throughput\",\n"
         "  \"workload\": {\"service\": \"learning_switch\", \"cycles\": " +
         std::to_string(total_cycles) + ", \"frame_gap\": " + std::to_string(frame_gap) +
         "},\n"
         "  \"exact\": " + ResultJson(exact, false) +
         ",\n"
         "  \"fast\": " + ResultJson(fast, true) +
         ",\n"
         "  \"speedup\": " + bench::FormatJsonNumber(speedup) + "\n}\n";
}

// The saturated busy-path flavor: same schema shape, one section per
// scheduler mode, keyed so a combined baseline file can hold both the idle
// ("kernel_throughput") and saturated sections side by side.
std::string SaturatedJson(const ThroughputResult& exact, const ThroughputResult& dynamic,
                          const ThroughputResult& flat, u64 total_cycles, u64 frame_gap) {
  const double speedup = exact.cycles_per_sec > 0 ? flat.cycles_per_sec / exact.cycles_per_sec : 0;
  return "{\n"
         "  \"benchmark\": \"kernel_throughput_saturated\",\n"
         "  \"saturated\": {\n"
         "    \"workload\": {\"service\": \"learning_switch\", \"cycles\": " +
         std::to_string(total_cycles) + ", \"frame_gap\": " + std::to_string(frame_gap) +
         "},\n"
         "    \"exact\": " + ResultJson(exact, false) +
         ",\n"
         "    \"dynamic\": " + ResultJson(dynamic, true) +
         ",\n"
         "    \"flat\": " + ResultJson(flat, true) +
         ",\n"
         "    \"speedup\": " + bench::FormatJsonNumber(speedup) +
         "\n  }\n}\n";
}

int ThroughputMain(u64 total_cycles, u64 frame_gap, const std::string& json_path,
                   const std::string& baseline_path, const std::string& compare_path,
                   double tolerance_pct) {
  std::printf("kernel throughput: %llu cycles, one frame per %llu cycles\n",
              static_cast<unsigned long long>(total_cycles),
              static_cast<unsigned long long>(frame_gap));
  const ThroughputResult exact = RunSoakWorkload(RunMode::kExact, total_cycles, frame_gap);
  const ThroughputResult fast = RunSoakWorkload(RunMode::kFast, total_cycles, frame_gap);

  if (fast.egress_digest != exact.egress_digest || fast.egress_count != exact.egress_count) {
    std::printf("FAIL: fast path diverged from exact (egress %llu/%016llx vs %llu/%016llx)\n",
                static_cast<unsigned long long>(fast.egress_count),
                static_cast<unsigned long long>(fast.egress_digest),
                static_cast<unsigned long long>(exact.egress_count),
                static_cast<unsigned long long>(exact.egress_digest));
    return 1;
  }

  const double speedup =
      exact.cycles_per_sec > 0 ? fast.cycles_per_sec / exact.cycles_per_sec : 0;
  std::printf("  exact: %.3g cycles/sec (%llu edges)\n", exact.cycles_per_sec,
              static_cast<unsigned long long>(exact.edges_run));
  std::printf("  fast:  %.3g cycles/sec (%llu edges + %llu fast-forwarded)\n",
              fast.cycles_per_sec, static_cast<unsigned long long>(fast.edges_run),
              static_cast<unsigned long long>(fast.cycles_fast_forwarded));
  std::printf("  speedup: %.2fx (egress bit-exact, %llu frames)\n", speedup,
              static_cast<unsigned long long>(fast.egress_count));

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << ThroughputJson(exact, fast, total_cycles, frame_gap);
    if (!file) {
      std::printf("FAIL: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream file(baseline_path);
    if (!file) {
      std::printf("FAIL: could not read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    double baseline_speedup = 0;
    if (!bench::ExtractJsonNumber(buffer.str(), "speedup", &baseline_speedup)) {
      std::printf("FAIL: no \"speedup\" in baseline %s\n", baseline_path.c_str());
      return 1;
    }
    // The speedup ratio is machine-independent (both runs share the host),
    // so it is the number a perf gate can hold steady across CI runners.
    const double floor = baseline_speedup * 0.8;
    std::printf("  baseline speedup %.2fx, regression floor %.2fx\n", baseline_speedup, floor);
    if (speedup < floor) {
      std::printf("FAIL: speedup %.2fx regressed more than 20%% from baseline %.2fx\n", speedup,
                  baseline_speedup);
      return 1;
    }
    std::printf("  perf gate passed\n");
  }

  if (!compare_path.empty()) {
    // Absolute-throughput comparison against a same-machine baseline JSON,
    // e.g. an EMU_TRACE=OFF build vs a compiled-in-but-detached build. Unlike
    // --check's speedup ratio, this gate only makes sense when both runs
    // executed on the same host within the same CI job.
    std::ifstream file(compare_path);
    if (!file) {
      std::printf("FAIL: could not read comparison baseline %s\n", compare_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    double base_fast = 0;
    if (!bench::ExtractJsonNumberInSection(buffer.str(), "fast", "cycles_per_sec", &base_fast) ||
        base_fast <= 0) {
      std::printf("FAIL: no fast.cycles_per_sec in %s\n", compare_path.c_str());
      return 1;
    }
    const double floor = base_fast * (1.0 - tolerance_pct / 100.0);
    std::printf("  compare: fast path %.3g cycles/sec vs baseline %.3g (floor %.3g, -%g%%)\n",
                fast.cycles_per_sec, base_fast, floor, tolerance_pct);
    if (fast.cycles_per_sec < floor) {
      std::printf("FAIL: fast-path throughput regressed more than %g%% vs %s\n", tolerance_pct,
                  compare_path.c_str());
      return 1;
    }
    std::printf("  overhead gate passed\n");
  }
  return 0;
}

// --- Saturated busy-path mode (--saturated) ---------------------------------------

bool DigestsMatch(const char* name, const ThroughputResult& got, const ThroughputResult& want) {
  if (got.egress_digest == want.egress_digest && got.egress_count == want.egress_count) {
    return true;
  }
  std::printf("FAIL: %s diverged from exact (egress %llu/%016llx vs %llu/%016llx)\n", name,
              static_cast<unsigned long long>(got.egress_count),
              static_cast<unsigned long long>(got.egress_digest),
              static_cast<unsigned long long>(want.egress_count),
              static_cast<unsigned long long>(want.egress_digest));
  return false;
}

int SaturatedMain(u64 total_cycles, u64 frame_gap, const std::string& json_path,
                  const std::string& baseline_path) {
  std::printf("kernel saturated throughput: %llu cycles, one frame per %llu cycles\n",
              static_cast<unsigned long long>(total_cycles),
              static_cast<unsigned long long>(frame_gap));
  const ThroughputResult exact = RunSoakWorkload(RunMode::kExact, total_cycles, frame_gap);
  const ThroughputResult dynamic = RunSoakWorkload(RunMode::kFast, total_cycles, frame_gap);
  const ThroughputResult flat = RunSoakWorkload(RunMode::kFlat, total_cycles, frame_gap);

  if (!DigestsMatch("dynamic fast path", dynamic, exact) ||
      !DigestsMatch("flat scheduled loop", flat, exact)) {
    return 1;
  }
  // Executed-edge accounting must also agree: every cycle is either run or
  // provably quiescent, in every mode.
  if (dynamic.edges_run + dynamic.cycles_fast_forwarded != exact.edges_run ||
      flat.edges_run + flat.cycles_fast_forwarded != exact.edges_run) {
    std::printf("FAIL: edge accounting diverged (exact %llu, dynamic %llu+%llu, flat %llu+%llu)\n",
                static_cast<unsigned long long>(exact.edges_run),
                static_cast<unsigned long long>(dynamic.edges_run),
                static_cast<unsigned long long>(dynamic.cycles_fast_forwarded),
                static_cast<unsigned long long>(flat.edges_run),
                static_cast<unsigned long long>(flat.cycles_fast_forwarded));
    return 1;
  }

  const double speedup =
      exact.cycles_per_sec > 0 ? flat.cycles_per_sec / exact.cycles_per_sec : 0;
  std::printf("  exact:   %.3g cycles/sec (%llu edges)\n", exact.cycles_per_sec,
              static_cast<unsigned long long>(exact.edges_run));
  std::printf("  dynamic: %.3g cycles/sec (%llu edges + %llu fast-forwarded)\n",
              dynamic.cycles_per_sec, static_cast<unsigned long long>(dynamic.edges_run),
              static_cast<unsigned long long>(dynamic.cycles_fast_forwarded));
  std::printf("  flat:    %.3g cycles/sec (%llu edges + %llu fast-forwarded)\n",
              flat.cycles_per_sec, static_cast<unsigned long long>(flat.edges_run),
              static_cast<unsigned long long>(flat.cycles_fast_forwarded));
  std::printf("  speedup: %.2fx flat over exact (egress bit-exact, %llu frames)\n", speedup,
              static_cast<unsigned long long>(flat.egress_count));

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << SaturatedJson(exact, dynamic, flat, total_cycles, frame_gap);
    if (!file) {
      std::printf("FAIL: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!baseline_path.empty()) {
    std::ifstream file(baseline_path);
    if (!file) {
      std::printf("FAIL: could not read baseline %s\n", baseline_path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    double baseline_speedup = 0;
    if (!bench::ExtractJsonNumberInSection(buffer.str(), "saturated", "speedup",
                                           &baseline_speedup)) {
      std::printf("FAIL: no saturated.speedup in baseline %s\n", baseline_path.c_str());
      return 1;
    }
    // Same machine-independent gate as --check for the idle workload: the
    // flat-over-exact ratio, held within 20% of the committed baseline.
    const double floor = baseline_speedup * 0.8;
    std::printf("  baseline saturated speedup %.2fx, regression floor %.2fx\n", baseline_speedup,
                floor);
    if (speedup < floor) {
      std::printf("FAIL: saturated speedup %.2fx regressed more than 20%% from baseline %.2fx\n",
                  speedup, baseline_speedup);
      return 1;
    }
    std::printf("  saturated perf gate passed\n");
  }
  return 0;
}

// --- Profiler overhead gate (--profile-overhead) ----------------------------------
//
// Saturated workload (per-edge cost dominates, the worst case for a per-edge
// profiler), best-of-3 per configuration to damp scheduler noise, profiling
// off vs sampled. The sampled mode times 1-in-64 edges, so its cost should
// amortize to noise; the gate fails when it exceeds `tolerance_pct`.
int ProfileOverheadMain(u64 total_cycles, u64 frame_gap, double tolerance_pct,
                        const std::string& json_path) {
  std::printf("profiler overhead: %llu cycles, one frame per %llu cycles, best of 3\n",
              static_cast<unsigned long long>(total_cycles),
              static_cast<unsigned long long>(frame_gap));
  ThroughputResult off, sampled;
  for (int round = 0; round < 3; ++round) {
    const ThroughputResult o =
        RunSoakWorkload(RunMode::kFast, total_cycles, frame_gap, ProfilingMode::kOff);
    const ThroughputResult s =
        RunSoakWorkload(RunMode::kFast, total_cycles, frame_gap, ProfilingMode::kSampled);
    if (round == 0) {
      off = o;
      sampled = s;
    } else {
      if (o.cycles_per_sec > off.cycles_per_sec) off = o;
      if (s.cycles_per_sec > sampled.cycles_per_sec) sampled = s;
    }
  }
  if (!DigestsMatch("sampled profiling run", sampled, off)) {
    return 1;
  }
  const double overhead_pct =
      off.cycles_per_sec > 0
          ? (1.0 - sampled.cycles_per_sec / off.cycles_per_sec) * 100.0
          : 0.0;
  std::printf("  profiling off:     %.3g cycles/sec\n", off.cycles_per_sec);
  std::printf("  profiling sampled: %.3g cycles/sec\n", sampled.cycles_per_sec);
  std::printf("  overhead: %.2f%% (gate: <= %g%%)\n", overhead_pct, tolerance_pct);

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << "{\n  \"benchmark\": \"kernel_profile_overhead\",\n"
            "  \"workload\": {\"service\": \"learning_switch\", \"cycles\": " +
                std::to_string(total_cycles) +
                ", \"frame_gap\": " + std::to_string(frame_gap) +
                "},\n"
                "  \"off\": " + ResultJson(off, true) +
                ",\n"
                "  \"sampled\": " + ResultJson(sampled, true) +
                ",\n"
                "  \"overhead_pct\": " + bench::FormatJsonNumber(overhead_pct) + "\n}\n";
    if (!file) {
      std::printf("FAIL: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 2) {
    // Bit-exactness was still enforced above; only the wall-clock ratio is
    // unreliable when the runner shares its single core with the CI agent.
    // Same rule as the parallel perf gate: shout, don't whisper.
    std::printf(
        "::warning::PROFILER OVERHEAD GATE SKIPPED — host has %u hardware threads (< 2); "
        "the measured %.2f%% overhead was NOT gated on this run\n",
        hw, overhead_pct);
    return 0;
  }
  if (overhead_pct > tolerance_pct) {
    std::printf("FAIL: sampled profiling costs %.2f%% > %g%% of throughput\n", overhead_pct,
                tolerance_pct);
    return 1;
  }
  std::printf("  profiler overhead gate passed\n");
  return 0;
}

}  // namespace
}  // namespace emu

int main(int argc, char** argv) {
  bool throughput = false;
  bool saturated = false;
  bool profile_overhead = false;
  emu::u64 cycles = 2'000'000;
  emu::u64 gap = 1'000;
  bool gap_set = false;
  bool tolerance_set = false;
  std::string json_path;
  std::string baseline_path;
  std::string compare_path;
  double tolerance_pct = 3.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--throughput") == 0) {
      throughput = true;
    } else if (std::strcmp(argv[i], "--saturated") == 0) {
      saturated = true;
    } else if (std::strcmp(argv[i], "--profile-overhead") == 0) {
      profile_overhead = true;
    } else if (std::strcmp(argv[i], "--cycles") == 0 && i + 1 < argc) {
      cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--gap") == 0 && i + 1 < argc) {
      gap = std::strtoull(argv[++i], nullptr, 10);
      gap_set = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--compare") == 0 && i + 1 < argc) {
      compare_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance_pct = std::strtod(argv[++i], nullptr);
      tolerance_set = true;
    }
  }
  if (profile_overhead) {
    // Saturated shape by default (worst case for a per-edge profiler); the
    // overhead gate defaults to 5% rather than --compare's 3%.
    if (!gap_set) {
      gap = 10;
    }
    if (gap == 0) {
      gap = 1;
    }
    return emu::ProfileOverheadMain(cycles, gap, tolerance_set ? tolerance_pct : 5.0, json_path);
  }
  if (saturated) {
    // Saturated busy path: frames arrive fast enough that quiescent windows
    // are rare, so the per-edge cost (not fast-forward) dominates.
    if (!gap_set) {
      gap = 10;
    }
    if (gap == 0) {
      gap = 1;
    }
    return emu::SaturatedMain(cycles, gap, json_path, baseline_path);
  }
  if (throughput) {
    if (gap == 0) {
      gap = 1;
    }
    return emu::ThroughputMain(cycles, gap, json_path, baseline_path, compare_path,
                               tolerance_pct);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
