// Parallel sharded-runner (emu-par) benchmark and CI gate.
//
// Default mode sweeps a Table-4-style memcached cluster (one ServiceNode +
// memaslap client per shard group) over nodes x threads and prints wall
// time, events, epochs, and the parallel-vs-serial speedup. Every parallel
// run is checked bit-exact against its serial twin before timing counts —
// a divergence fails the binary regardless of speed.
//
//   --json <path>    write the 4-node serial-vs-parallel measurement as
//                    BENCH_parallel.json
//   --check <path>   perf gate against a committed baseline: on hosts with
//                    >= 4 hardware threads the threads=4 speedup must reach
//                    2x (and stay within 20% of the baseline ratio when the
//                    baseline itself was measured on a multicore host).
//                    Single-core hosts skip the gate: conservative epochs
//                    still run there, but wall-clock parallelism cannot.
//   --soak           3-seed mini chaos soak: the NAT ping-pong topology
//                    under an armed fault plan, threads=4 vs threads=1,
//                    requiring identical fault logs and arrival digests.
//   --requests N     workload requests per host (default 512)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fault_registry.h"
#include "src/net/ipv4.h"
#include "src/net/udp.h"
#include "src/services/memcached_service.h"
#include "src/services/nat_service.h"
#include "src/sim/memaslap.h"
#include "src/sim/topology.h"

namespace emu {
namespace {

constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

void FoldU64(u64& h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
  }
}

void FoldFrame(u64& h, Picoseconds at, const Packet& frame) {
  FoldU64(h, static_cast<u64>(at));
  for (u8 b : frame.bytes()) {
    h = (h ^ b) * kFnvPrime;
  }
}

struct ClusterResult {
  double wall_seconds = 0;
  u64 events = 0;
  u64 epochs = 0;
  u64 replies = 0;
  u64 digest = kFnvOffset;
};

// The Table-4 memcached setup, clustered: `nodes` independent memcached
// service nodes, each with its own memaslap client host. The inter-shard
// link delay is a cluster-interconnect 20 us, which is also the runner's
// lookahead — big windows, so each epoch carries many request FSM
// executions and the barrier cost amortizes.
ClusterResult RunCluster(usize nodes, usize threads, usize requests_per_host) {
  constexpr usize kKeySpace = 64;
  StarTopologyConfig topo_config;
  topo_config.link_delay = 20 * kPicosPerMicro;

  std::vector<std::unique_ptr<MemcachedService>> services;
  std::vector<Service*> service_ptrs;
  std::vector<HostSpec> specs;
  std::vector<MemcachedConfig> configs;
  for (usize i = 0; i < nodes; ++i) {
    MemcachedConfig config;
    config.mac = MacAddress::FromU48(0x02'00'00'00'ee'00ULL + i);
    config.ip = Ipv4Address(10, 0, 0, static_cast<u8>(200 + i));
    configs.push_back(config);
    services.push_back(std::make_unique<MemcachedService>(config));
    service_ptrs.push_back(services.back().get());
    specs.push_back({"c" + std::to_string(i),
                     MacAddress::FromU48(0x02'00'00'00'c1'00ULL + i),
                     Ipv4Address(10, 0, 0, static_cast<u8>(50 + i))});
  }
  ShardedTopology topo(service_ptrs, specs, topo_config);

  std::vector<u64> digests(nodes, kFnvOffset);
  std::vector<u64> replies(nodes, 0);
  for (usize i = 0; i < nodes; ++i) {
    topo.host(i).SetApp([&digests, &replies, i](SimHost& h, Packet frame) {
      FoldFrame(digests[i], h.scheduler().now(), frame);
      ++replies[i];
    });
  }

  for (usize i = 0; i < nodes; ++i) {
    MemaslapConfig mc;
    mc.server_mac = configs[i].mac;
    mc.server_ip = configs[i].ip;
    mc.client_mac = specs[i].mac;
    mc.client_ip = specs[i].ip;
    mc.key_space = kKeySpace;
    mc.seed = 1000 + 17 * i;
    MemaslapLoadgen loadgen(mc);
    for (usize k = 0; k < loadgen.prewarm_count(); ++k) {
      const Picoseconds at =
          5 * kPicosPerMicro + static_cast<Picoseconds>(k) * kPicosPerMicro;
      Packet frame = loadgen.PrewarmFrame(k);
      topo.host(i).scheduler().At(at, [&topo, i, frame] { topo.host(i).Send(frame); });
    }
    for (usize k = 0; k < requests_per_host; ++k) {
      const Picoseconds at = (100 + kKeySpace) * kPicosPerMicro +
                             static_cast<Picoseconds>(k) * kPicosPerMicro;
      Packet frame = loadgen.WorkloadFrame(k);
      topo.host(i).scheduler().At(at, [&topo, i, frame] { topo.host(i).Send(frame); });
    }
  }

  ClusterResult result;
  const auto start = std::chrono::steady_clock::now();
  result.events = topo.Run({.threads = threads, .max_events = 100'000'000});
  const auto stop = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(stop - start).count();
  result.epochs = topo.runner().epochs();
  for (usize i = 0; i < nodes; ++i) {
    FoldU64(result.digest, digests[i]);
    FoldU64(result.digest, replies[i]);
    result.replies += replies[i];
  }
  FoldU64(result.digest, result.events);
  return result;
}

bool SameResults(const ClusterResult& a, const ClusterResult& b) {
  return a.digest == b.digest && a.replies == b.replies && a.events == b.events &&
         a.epochs == b.epochs;
}

// --- Sweep + JSON + gate -------------------------------------------------------------

struct Measurement {
  usize nodes = 4;
  usize requests = 512;
  ClusterResult serial;
  ClusterResult parallel;  // threads=4
  double speedup = 0;
};

bool MeasureGatePoint(usize requests, Measurement* out) {
  out->requests = requests;
  out->serial = RunCluster(out->nodes, 1, requests);
  out->parallel = RunCluster(out->nodes, 4, requests);
  if (!SameResults(out->serial, out->parallel)) {
    std::printf("FAIL: threads=4 diverged from serial (digest %016llx vs %016llx)\n",
                static_cast<unsigned long long>(out->parallel.digest),
                static_cast<unsigned long long>(out->serial.digest));
    return false;
  }
  out->speedup = out->parallel.wall_seconds > 0
                     ? out->serial.wall_seconds / out->parallel.wall_seconds
                     : 0;
  return true;
}

// True when this host cannot exercise wall-clock parallelism: the speedup
// number exists but means nothing, so the perf gate must not judge it.
bool GateSkippedOnHost() { return std::thread::hardware_concurrency() < 4; }

std::string MeasurementJson(const Measurement& m) {
  const unsigned hw = std::thread::hardware_concurrency();
  const bool skipped = GateSkippedOnHost();
  std::string out;
  out += "{\n";
  out += "  \"benchmark\": \"parallel_sharded_runner\",\n";
  out += "  \"workload\": {\"service\": \"memcached_cluster\", \"nodes\": " +
         std::to_string(m.nodes) + ", \"requests_per_host\": " + std::to_string(m.requests) +
         "},\n";
  out += "  \"host_threads\": " + std::to_string(hw) + ",\n";
  out += "  \"gate_skipped\": " + std::string(skipped ? "true" : "false") + ",\n";
  out += "  \"gate_skip_reason\": \"" +
         std::string(skipped ? "host has fewer than 4 hardware threads" : "") + "\",\n";
  out += "  \"serial\": {\"wall_seconds\": " + bench::FormatJsonNumber(m.serial.wall_seconds) +
         ", \"events\": " + std::to_string(m.serial.events) +
         ", \"epochs\": " + std::to_string(m.serial.epochs) + "},\n";
  out += "  \"parallel\": {\"threads\": 4, \"wall_seconds\": " +
         bench::FormatJsonNumber(m.parallel.wall_seconds) +
         ", \"events\": " + std::to_string(m.parallel.events) +
         ", \"epochs\": " + std::to_string(m.parallel.epochs) + "},\n";
  out += "  \"speedup\": " + bench::FormatJsonNumber(m.speedup) + "\n}\n";
  return out;
}

int SweepMain(usize requests) {
  std::printf("parallel sharded runner: memcached cluster, %zu requests/host, %u hw threads\n",
              requests, std::thread::hardware_concurrency());
  std::printf("%-6s %-8s %-10s %-10s %-10s %-8s\n", "nodes", "threads", "wall_ms", "events",
              "epochs", "speedup");
  for (usize nodes : {1u, 2u, 4u}) {
    ClusterResult serial;
    for (usize threads : {1u, 2u, 4u}) {
      if (threads > 1 && threads > nodes * 2) {
        continue;  // more workers than shards: clamped, nothing new to report
      }
      const ClusterResult r = RunCluster(nodes, threads, requests);
      if (threads == 1) {
        serial = r;
      } else if (!SameResults(serial, r)) {
        std::printf("FAIL: nodes=%zu threads=%zu diverged from serial\n", nodes, threads);
        return 1;
      }
      std::printf("%-6zu %-8zu %-10.2f %-10llu %-10llu %-8.2f\n", nodes, threads,
                  r.wall_seconds * 1e3, static_cast<unsigned long long>(r.events),
                  static_cast<unsigned long long>(r.epochs),
                  r.wall_seconds > 0 ? serial.wall_seconds / r.wall_seconds : 0.0);
    }
  }
  std::printf("all parallel runs bit-exact against serial\n");
  return 0;
}

int GateMain(const Measurement& m, const std::string& baseline_path) {
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("  threads=4 speedup %.2fx on %u hardware threads\n", m.speedup, hw);
  if (GateSkippedOnHost()) {
    // Bit-exactness was still enforced above; only the wall-clock ratio is
    // meaningless without cores to run the shards on. Shout, don't whisper:
    // a silently-skipped gate looks identical to a passing one in CI logs,
    // which is how a real speedup regression once hid for several runs.
    std::printf(
        "::warning::PARALLEL PERF GATE SKIPPED — host has %u hardware threads (< 4); "
        "the threads=4 speedup floor was NOT enforced on this run\n",
        hw);
    std::printf("  ==============================================================\n");
    std::printf("  ==  PERF GATE SKIPPED: %u hardware threads (< 4 required)  ==\n", hw);
    std::printf("  ==  bit-exactness was checked; the speedup floor was not.  ==\n");
    std::printf("  ==============================================================\n");
    return 0;
  }
  double floor = 2.0;
  std::ifstream file(baseline_path);
  if (!file) {
    std::printf("FAIL: could not read baseline %s\n", baseline_path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  double baseline_speedup = 0;
  double baseline_hw = 0;
  if (!bench::ExtractJsonNumber(buffer.str(), "speedup", &baseline_speedup) ||
      !bench::ExtractJsonNumber(buffer.str(), "host_threads", &baseline_hw)) {
    std::printf("FAIL: no \"speedup\"/\"host_threads\" in baseline %s\n",
                baseline_path.c_str());
    return 1;
  }
  // A baseline captured on a multicore host tightens the absolute 2x floor
  // to within 20% of its measured ratio; a single-core baseline (speedup
  // ~1x by construction) contributes nothing beyond the floor.
  if (baseline_hw >= 4) {
    floor = std::max(floor, baseline_speedup * 0.8);
  }
  std::printf("  baseline speedup %.2fx (on %.0f threads), gate floor %.2fx\n",
              baseline_speedup, baseline_hw, floor);
  if (m.speedup < floor) {
    std::printf("FAIL: parallel speedup %.2fx below gate floor %.2fx\n", m.speedup, floor);
    return 1;
  }
  std::printf("  perf gate passed\n");
  return 0;
}

// --- Mini chaos soak (--soak): fault plans under threads=4 ---------------------------

struct SoakDigest {
  u64 arrivals = kFnvOffset;
  u64 faults_fired = 0;
  u64 fault_digest = 0;
  u64 events = 0;
};

// The NAT ping-pong chain from tests/parallel_equiv_test.cc, under a seeded
// fault plan: every frame is causally downstream of a cross-shard delivery,
// and the armed registry must fire identically at any thread count.
SoakDigest RunNatSoak(u64 seed, usize threads) {
  NatConfig config;
  NatService service(config);
  const std::vector<HostSpec> specs = {
      {"ext", MacAddress::FromU48(0x02ffffffff01), Ipv4Address(8, 8, 8, 8)},
      {"int", MacAddress::FromU48(0x020000001110), Ipv4Address(192, 168, 1, 10)}};
  ShardedTopology topo(service, specs);

  FaultRegistry registry(seed);
  service.RegisterFaultPoints(registry);
  topo.node(0).target().sim().AttachFaultRegistry(&registry);
  std::ostringstream plan_text;
  plan_text << "nat.table_full burst " << (2000 + 700 * seed) << " " << (6000 + 700 * seed)
            << " 0.5; nat.flows bernoulli 0.0001";
  const Expected<FaultPlan> plan = ParseFaultPlan(plan_text.str());
  if (!plan.ok()) {
    std::printf("FAIL: bad soak plan: %s\n", plan.status().ToString().c_str());
    return {};
  }
  registry.ArmPlan(*plan);

  SoakDigest digest;
  constexpr usize kPings = 16;
  topo.host(0).SetApp([&digest, &topo, &config](SimHost& h, Packet frame) {
    FoldFrame(digest.arrivals, h.scheduler().now(), frame);
    Ipv4View ip(frame);
    if (!ip.Valid() || !ip.ProtocolIs(IpProtocol::kUdp)) {
      return;
    }
    UdpView udp(frame, ip.payload_offset());
    Packet reply = MakeUdpPacket({config.external_mac, h.mac(), h.ip(), ip.source(),
                                  udp.destination_port(), udp.source_port()},
                                 std::vector<u8>{'r'});
    h.scheduler().After(3 * kPicosPerMicro, [&topo, reply] { topo.host(0).Send(reply); });
  });
  auto pings_sent = std::make_shared<usize>(1);
  topo.host(1).SetApp([&digest, &topo, &config, &specs, pings_sent](SimHost& h, Packet frame) {
    FoldFrame(digest.arrivals, h.scheduler().now(), frame);
    if (*pings_sent >= kPings) {
      return;
    }
    const usize i = (*pings_sent)++;
    Packet next = MakeUdpPacket({config.internal_mac, specs[1].mac, specs[1].ip, specs[0].ip,
                                 static_cast<u16>(4000 + i), 53},
                                std::vector<u8>{static_cast<u8>('a' + i)});
    h.scheduler().After(5 * kPicosPerMicro, [&topo, next] { topo.host(1).Send(next); });
  });
  topo.host(1).scheduler().At(10 * kPicosPerMicro, [&topo, &config, &specs] {
    topo.host(1).Send(MakeUdpPacket(
        {config.internal_mac, specs[1].mac, specs[1].ip, specs[0].ip, 4000, 53},
        std::vector<u8>{'a'}));
  });

  digest.events = topo.Run({.threads = threads});
  digest.faults_fired = registry.fired_total();
  digest.fault_digest = registry.LogDigest();
  return digest;
}

int SoakMain() {
  int failures = 0;
  for (u64 seed : {1ull, 2ull, 3ull}) {
    const SoakDigest serial = RunNatSoak(seed, 1);
    const SoakDigest parallel = RunNatSoak(seed, 4);
    const bool same = serial.arrivals == parallel.arrivals &&
                      serial.faults_fired == parallel.faults_fired &&
                      serial.fault_digest == parallel.fault_digest &&
                      serial.events == parallel.events;
    std::printf("seed %llu: %s (faults %llu, log %016llx, events %llu)\n",
                static_cast<unsigned long long>(seed), same ? "bit-exact" : "DIVERGED",
                static_cast<unsigned long long>(serial.faults_fired),
                static_cast<unsigned long long>(serial.fault_digest),
                static_cast<unsigned long long>(serial.events));
    failures += same ? 0 : 1;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace emu

int main(int argc, char** argv) {
  std::string json_path;
  std::string baseline_path;
  bool soak = false;
  emu::usize requests = 512;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--soak") == 0) {
      soak = true;
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<emu::usize>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::printf(
          "usage: microbench_parallel [--json <path>] [--check <baseline.json>]\n"
          "                           [--soak] [--requests N]\n");
      return 2;
    }
  }

  if (soak) {
    return emu::SoakMain();
  }
  if (json_path.empty() && baseline_path.empty()) {
    return emu::SweepMain(requests);
  }

  emu::Measurement m;
  if (!emu::MeasureGatePoint(requests, &m)) {
    return 1;
  }
  std::printf("4-node cluster: serial %.2f ms, threads=4 %.2f ms, speedup %.2fx\n",
              m.serial.wall_seconds * 1e3, m.parallel.wall_seconds * 1e3, m.speedup);
  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << emu::MeasurementJson(m);
    if (!file) {
      std::printf("FAIL: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!baseline_path.empty()) {
    return emu::GateMain(m, baseline_path);
  }
  return 0;
}
