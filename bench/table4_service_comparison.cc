// Regenerates Table 4: Emu services vs host (Linux-native) services —
// average latency, 99th-percentile latency, and maximum throughput for ICMP
// echo, TCP ping, DNS, NAT, and Memcached.
//
// Methodology mirrors §5.2: unloaded request/response RTTs captured at the
// wire (DAG substitute), throughput by saturating offered load (OSNT
// substitute); the host column runs the same workloads against the
// calibrated host-stack model.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "src/hostnet/host_stack_model.h"
#include "src/net/dns.h"
#include "src/net/icmp.h"
#include "src/net/memcached.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/services/dns_service.h"
#include "src/services/icmp_echo_service.h"
#include "src/services/memcached_service.h"
#include "src/services/nat_service.h"
#include "src/services/tcp_ping_service.h"
#include "src/sim/loadgen.h"
#include "src/sim/memaslap.h"

namespace emu {
namespace {

constexpr usize kLatencySamples = 2000;   // paper: 100K; scaled for runtime
constexpr usize kThroughputFrames = 20000;
constexpr double kSaturationMqps = 12.0;  // above every service's capacity

const MacAddress kClientMac = MacAddress::FromU48(0x02'00'00'00'cc'99);
const Ipv4Address kClientIp(10, 0, 0, 9);

struct ServiceRow {
  const char* name;
  LatencyStats emu_latency;
  double emu_mqps = 0.0;
  LatencyStats host_latency;
  double host_mqps = 0.0;
  const char* paper;
};

// Emu side: unloaded latency on one fresh target, throughput on another.
template <typename MakeService>
void MeasureEmu(ServiceRow& row, MakeService make_service, const FrameFactory& factory) {
  {
    auto service = make_service();
    FpgaTarget target(*service);
    row.emu_latency = OsntLoadgen::MeasureUnloadedRtt(target, factory, kLatencySamples);
  }
  {
    auto service = make_service();
    FpgaTarget target(*service);
    OsntLoadgen::FixedRateConfig config;
    config.offered_mqps = kSaturationMqps;
    config.frames = kThroughputFrames;
    config.ports = {0, 1, 2, 3};
    config.drain_limit = 80'000'000;
    const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, config);
    row.emu_mqps = report.achieved_mqps;
  }
}

// Host side: latency from unloaded samples, throughput from queue saturation.
void MeasureHost(ServiceRow& row, HostStackParams params, usize request_bytes) {
  HostStackModel latency_model(params, 42);
  for (usize i = 0; i < 20000; ++i) {
    row.host_latency.Add(latency_model.SampleUnloadedRtt(request_bytes));
  }
  HostStackModel throughput_model(params, 43);
  const double offered_qps = 8e6;
  const Picoseconds gap = static_cast<Picoseconds>(1e12 / offered_qps);
  usize served = 0;
  Picoseconds last = 0;
  for (Picoseconds t = 0; t < 40 * kPicosPerMilli; t += gap) {
    last = throughput_model.ServeRequest(t, request_bytes);
    ++served;
  }
  row.host_mqps = static_cast<double>(served) / (static_cast<double>(last) / 1e12) / 1e6;
}

void PrintRow(const ServiceRow& row) {
  std::printf("%-10s | %9.2f %9.2f %8.3f | %9.2f %9.2f %8.3f | %s\n", row.name,
              row.emu_latency.MeanUs(), row.emu_latency.PercentileUs(99.0), row.emu_mqps,
              row.host_latency.MeanUs(), row.host_latency.PercentileUs(99.0), row.host_mqps,
              row.paper);
}

void Run() {
  PrintHeader("Table 4: services on Emu (FPGA) vs host software");
  std::printf("%-10s | %9s %9s %8s | %9s %9s %8s | paper (E-avg E-99 E-Mqps / H-avg H-99 H-Mqps)\n",
              "Service", "avg us", "99th us", "Mq/s", "avg us", "99th us", "Mq/s");
  PrintRule(120);

  // --- ICMP Echo ---
  {
    ServiceRow row{};
    row.name = "ICMP Echo";
    row.paper = "1.09 1.11 3.226 / 12.28 22.63 1.068";
    IcmpEchoConfig config;
    const auto factory = [config](usize i, u8) {
      return MakeIcmpEchoRequest(
          {config.mac, kClientMac, kClientIp, config.ip, static_cast<u16>(i), 0}, {});
    };
    MeasureEmu(row, [&] { return std::make_unique<IcmpEchoService>(config); }, factory);
    MeasureHost(row, HostIcmpEchoParams(), 64);
    PrintRow(row);
  }

  // --- TCP Ping ---
  {
    ServiceRow row{};
    row.name = "TCP Ping";
    row.paper = "1.27 1.29 2.105 / 21.79 65.00 1.012";
    TcpPingConfig config;
    const auto factory = [config](usize i, u8) {
      TcpSegmentSpec spec{config.mac,
                          kClientMac,
                          kClientIp,
                          config.ip,
                          static_cast<u16>(20000 + (i % 20000)),
                          80,
                          static_cast<u32>(i),
                          0,
                          TcpFlags::kSyn};
      return MakeTcpSegment(spec);
    };
    MeasureEmu(row, [&] { return std::make_unique<TcpPingService>(config); }, factory);
    MeasureHost(row, HostTcpPingParams(), 64);
    PrintRow(row);
  }

  // --- DNS ---
  {
    ServiceRow row{};
    row.name = "DNS";
    row.paper = "1.82 1.86 1.176 / 126.46 138.33 0.226";
    DnsServiceConfig config;
    const auto make_service = [&] {
      auto service = std::make_unique<DnsService>(config);
      service->AddRecord("svc0.lab", Ipv4Address(10, 1, 0, 1));
      service->AddRecord("svc1.lab", Ipv4Address(10, 1, 0, 2));
      service->AddRecord("svc2.lab", Ipv4Address(10, 1, 0, 3));
      service->AddRecord("svc3.lab", Ipv4Address(10, 1, 0, 4));
      return service;
    };
    const auto factory = [config](usize i, u8) {
      const std::string name = "svc" + std::to_string(i % 4) + ".lab";
      return MakeUdpPacket({config.mac, kClientMac, kClientIp, config.ip,
                            static_cast<u16>(5000 + i % 1000), kDnsPort},
                           BuildDnsQuery(static_cast<u16>(i), name));
    };
    MeasureEmu(row, make_service, factory);
    MeasureHost(row, HostDnsParams(), 80);
    PrintRow(row);
  }

  // --- NAT ---
  {
    ServiceRow row{};
    row.name = "NAT";
    row.paper = "1.32 1.34 2.439 / 2444.76 6185.27 1.037";
    NatConfig config;
    const MacAddress internal_mac = MacAddress::FromU48(0x02'00'00'00'11'10);
    const auto factory = [config, internal_mac](usize i, u8 port) {
      // Outbound flows from internal hosts (injected on ports 1-3).
      const u8 in_port = static_cast<u8>(1 + port % 3);
      Packet frame = MakeUdpPacket(
          {config.internal_mac, internal_mac,
           Ipv4Address(192, 168, 1, static_cast<u8>(2 + i % 200)),
           Ipv4Address(8, 8, 8, 8), static_cast<u16>(1024 + i % 30000), 53},
          std::vector<u8>{'q'});
      frame.set_src_port(in_port);
      return frame;
    };
    // NAT traffic enters on internal ports only.
    {
      NatService service(config);
      FpgaTarget target(service);
      row.emu_latency = OsntLoadgen::MeasureUnloadedRtt(target, factory, kLatencySamples, 1);
    }
    {
      NatService service(config);
      FpgaTarget target(service);
      OsntLoadgen::FixedRateConfig rate;
      rate.offered_mqps = kSaturationMqps;
      rate.frames = kThroughputFrames;
      rate.ports = {1, 2, 3};
      rate.drain_limit = 80'000'000;
      const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, rate);
      row.emu_mqps = report.achieved_mqps;
    }
    MeasureHost(row, HostNatParams(), 64);
    PrintRow(row);
  }

  // --- Memcached (UDP, ASCII, 90/10 GET/SET via memaslap) ---
  {
    ServiceRow row{};
    row.name = "Memcached";
    row.paper = "1.21 1.26 1.932 / 24.29 28.65 0.876";
    MemcachedConfig config;
    MemaslapConfig workload;
    workload.server_mac = config.mac;
    workload.server_ip = config.ip;
    const auto make_loaded = [&]() {
      auto service = std::make_unique<MemcachedService>(config);
      return service;
    };
    {
      auto service = make_loaded();
      FpgaTarget target(*service);
      MemaslapLoadgen loadgen(workload);
      // Prewarm the store through the dataplane.
      for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
        target.SendAndCollect(0, loadgen.PrewarmFrame(i));
      }
      target.TakeEgress();
      const auto factory = [&loadgen](usize i, u8) { return loadgen.WorkloadFrame(i); };
      row.emu_latency = OsntLoadgen::MeasureUnloadedRtt(target, factory, kLatencySamples);
    }
    {
      auto service = make_loaded();
      FpgaTarget target(*service);
      MemaslapLoadgen loadgen(workload);
      for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
        target.SendAndCollect(0, loadgen.PrewarmFrame(i));
      }
      target.TakeEgress();
      const auto factory = [&loadgen](usize i, u8) { return loadgen.WorkloadFrame(i); };
      OsntLoadgen::FixedRateConfig rate;
      rate.offered_mqps = kSaturationMqps;
      rate.frames = kThroughputFrames;
      rate.ports = {0, 1, 2, 3};
      rate.drain_limit = 120'000'000;
      const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, rate);
      row.emu_mqps = report.achieved_mqps;
    }
    MeasureHost(row, HostMemcachedParams(), 100);
    PrintRow(row);
  }

  PrintRule(120);
  std::printf(
      "Shape checks (paper): Emu latency is 1-3 orders of magnitude below host latency;\n"
      "Emu tail-to-average stays within ~1.02-1.04 while the host ranges 1.09-2.98;\n"
      "Emu throughput beats the host by roughly 2.1x-5.2x per service.\n"
      "(Emu latency column measured over %zu RTTs; paper used 100K.)\n",
      kLatencySamples);
}

}  // namespace
}  // namespace emu

int main() {
  emu::Run();
  return 0;
}
