// SWIM membership (emu-gossip) throughput benchmark.
//
// Sweeps a gossip cluster over hosts x threads: every host of a HubTopology
// runs a SwimPeer for a fixed span of simulated time under a small chaos
// plan (one crash + restart, one partition window), and the wall time,
// executed events, conservative epochs, and parallel-vs-serial speedup are
// printed per cell. As in microbench_parallel, correctness gates timing:
// each parallel run must produce the bit-exact membership-event digest of
// its serial twin, or the binary exits nonzero regardless of speed.
//
//   --hosts N,N,...   cluster sizes to sweep (default 8,16,32)
//   --threads N,N,... thread counts (default 1,2,4)
//   --run-ms N        simulated span per cell (default 100)
//   --seed N          base seed (default 1)
//   --json PATH       additionally write the sweep as BENCH_gossip.json
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fault_registry.h"
#include "src/services/swim_service.h"
#include "src/sim/chaos.h"
#include "src/sim/topology.h"

namespace emu {
namespace {

constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

struct CellResult {
  double wall_seconds = 0;
  u64 events = 0;
  u64 epochs = 0;
  u64 digest = 0;
};

std::string ChaosPlan(usize hosts) {
  // Scale the campaign with the cluster: crash/restart the second host and
  // cut the first quarter off from the second quarter for 20 ms.
  std::string plan = "crash host=h1 at=20ms; restart host=h1 at=60ms";
  if (hosts >= 8) {
    const usize quarter = hosts / 4;
    std::string a;
    std::string b;
    for (usize i = 0; i < quarter; ++i) {
      a += (i == 0 ? "" : ",") + ("h" + std::to_string(2 + i));
      b += (i == 0 ? "" : ",") + ("h" + std::to_string(2 + quarter + i));
    }
    plan += "; partition {" + a + "}|{" + b + "} from=30ms to=50ms";
  }
  return plan;
}

CellResult RunCell(usize hosts, usize threads, u64 run_ms, u64 seed) {
  std::vector<SwimMember> members;
  std::vector<HostSpec> specs;
  for (usize i = 0; i < hosts; ++i) {
    SwimMember m{"h" + std::to_string(i),
                 MacAddress::FromU48(0x02'00'00'00'd0'00ull + i),
                 Ipv4Address(10, 0, static_cast<u8>(i >> 8), static_cast<u8>(i & 0xff))};
    specs.push_back(HostSpec{m.name, m.mac, m.ip});
    members.push_back(std::move(m));
  }
  StarTopologyConfig net;
  net.link_delay = 50 * kPicosPerMicro;
  HubTopology topo(specs, net);

  FaultRegistry registry(seed);
  ChaosDirector director(topo, &registry);
  const Expected<FaultPlan> plan = ParseFaultPlan(ChaosPlan(hosts));
  if (!plan.ok() || !director.Apply(*plan).ok()) {
    std::fprintf(stderr, "chaos plan rejected\n");
    std::exit(2);
  }

  SwimConfig config;
  config.run_until = static_cast<Picoseconds>(run_ms) * kPicosPerMilli;
  std::vector<std::unique_ptr<SwimPeer>> peers;
  for (usize i = 0; i < hosts; ++i) {
    peers.push_back(std::make_unique<SwimPeer>(
        topo.host(i), static_cast<u16>(i), members, config,
        seed ^ (0x9E37'79B9'7F4A'7C15ull * (i + 1))));
    peers.back()->Start();
  }

  ParallelRunOptions opts;
  opts.threads = threads;
  CellResult out;
  const auto t0 = std::chrono::steady_clock::now();
  out.events = topo.Run(opts);
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.epochs = topo.runner().epochs();
  out.digest = kFnvOffset;
  for (const auto& peer : peers) {
    out.digest = (out.digest ^ peer->EventsDigest()) * kFnvPrime;
  }
  return out;
}

std::vector<usize> ParseList(const char* text) {
  std::vector<usize> values;
  usize current = 0;
  bool have = false;
  for (const char* p = text;; ++p) {
    if (*p >= '0' && *p <= '9') {
      current = current * 10 + static_cast<usize>(*p - '0');
      have = true;
    } else {
      if (have) {
        values.push_back(current);
      }
      current = 0;
      have = false;
      if (*p == '\0') {
        break;
      }
    }
  }
  return values;
}

int Main(int argc, char** argv) {
  std::vector<usize> host_counts = {8, 16, 32};
  std::vector<usize> thread_counts = {1, 2, 4};
  u64 run_ms = 100;
  u64 seed = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hosts") == 0 && i + 1 < argc) {
      host_counts = ParseList(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts = ParseList(argv[++i]);
    } else if (std::strcmp(argv[i], "--run-ms") == 0 && i + 1 < argc) {
      run_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--hosts 8,16] [--threads 1,4] [--run-ms N] [--seed N]"
                   " [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::printf("# SWIM gossip cluster, %llu ms simulated, seed %llu\n",
              static_cast<unsigned long long>(run_ms),
              static_cast<unsigned long long>(seed));
  std::printf("%-8s %-8s %12s %10s %12s %10s %10s\n", "hosts", "threads", "events",
              "epochs", "wall_s", "Mev/s", "speedup");
  bool ok = true;
  std::string cells_json;
  for (usize hosts : host_counts) {
    double serial_wall = 0;
    u64 serial_digest = 0;
    for (usize threads : thread_counts) {
      const CellResult cell = RunCell(hosts, threads, run_ms, seed);
      if (threads == 1 || serial_wall == 0) {
        if (threads != 1) {
          // threads=1 absent from the sweep: measure the serial twin just
          // for the digest gate and the speedup denominator.
          const CellResult serial = RunCell(hosts, 1, run_ms, seed);
          serial_wall = serial.wall_seconds;
          serial_digest = serial.digest;
        } else {
          serial_wall = cell.wall_seconds;
          serial_digest = cell.digest;
        }
      }
      if (cell.digest != serial_digest) {
        std::fprintf(stderr,
                     "DIGEST DIVERGENCE hosts=%zu threads=%zu: %016llx != serial %016llx\n",
                     hosts, threads, static_cast<unsigned long long>(cell.digest),
                     static_cast<unsigned long long>(serial_digest));
        ok = false;
      }
      const double events_per_sec =
          cell.wall_seconds > 0 ? static_cast<double>(cell.events) / cell.wall_seconds : 0.0;
      const double speedup = cell.wall_seconds > 0 ? serial_wall / cell.wall_seconds : 0.0;
      std::printf("%-8zu %-8zu %12llu %10llu %12.4f %10.2f %10.2f\n", hosts, threads,
                  static_cast<unsigned long long>(cell.events),
                  static_cast<unsigned long long>(cell.epochs), cell.wall_seconds,
                  events_per_sec / 1e6, speedup);
      if (!cells_json.empty()) {
        cells_json += ",\n";
      }
      cells_json += "    {\"hosts\": " + std::to_string(hosts) +
                    ", \"threads\": " + std::to_string(threads) +
                    ", \"events\": " + std::to_string(cell.events) +
                    ", \"epochs\": " + std::to_string(cell.epochs) +
                    ", \"wall_seconds\": " + bench::FormatJsonNumber(cell.wall_seconds) +
                    ", \"events_per_sec\": " + bench::FormatJsonNumber(events_per_sec) +
                    ", \"speedup\": " + bench::FormatJsonNumber(speedup) + "}";
    }
  }
  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << "{\n  \"benchmark\": \"gossip_cluster\",\n"
            "  \"workload\": {\"run_ms\": " +
                std::to_string(run_ms) + ", \"seed\": " + std::to_string(seed) +
                "},\n  \"cells\": [\n" + cells_json + "\n  ]\n}\n";
    if (!file) {
      std::fprintf(stderr, "FAIL: could not write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (!ok) {
    std::fprintf(stderr, "FAIL: parallel membership history diverged from serial\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace emu

int main(int argc, char** argv) { return emu::Main(argc, argv); }
