// §3.2/§3.6 ablation: datapath bus width vs line rate.
//
// "The largest primitive datatype in C# is the 64-bit word. To achieve
// higher performance, we require wider I/O busses" and "for a given
// throughput, a wider I/O bus may be required". Sweep the bus from 64 to
// 512 bits and measure the switch's achieved rate at 4x10G line-rate load.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/services/learning_switch.h"

namespace emu {
namespace {

void Run() {
  PrintHeader("Ablation (3.2/3.6): datapath bus width vs 4x10G line rate (64 B packets)");
  std::printf("%-10s %14s %14s %8s %14s\n", "Bus bits", "Offered Mpps", "Achieved Mpps",
              "Loss", "Line rate?");
  for (usize bus_bytes : {8u, 16u, 32u, 64u}) {
    LearningSwitchConfig service_config;
    service_config.bus_bytes = bus_bytes;
    PipelineConfig pipeline_config;
    pipeline_config.bus_bytes = bus_bytes;
    LearningSwitch service(service_config);
    FpgaTarget target(service, pipeline_config);
    const SwitchThroughputResult result = MeasureSwitchThroughput(target, 2500, 64);
    std::printf("%-10zu %14.2f %14.2f %7.2f%% %14s\n", bus_bytes * 8, result.offered_mpps,
                result.achieved_mpps, result.loss_rate * 100.0,
                result.loss_rate < 0.001 ? "yes" : "NO");
  }
  PrintRule();
  std::printf(
      "Shape checks: a 64-bit bus (one C# word per cycle) cannot carry 4x10G of\n"
      "minimum-size packets at 200 MHz; the SUME-native 256-bit datapath can, which\n"
      "is exactly why Emu defines user types wider than C#'s largest primitive.\n");
}

}  // namespace
}  // namespace emu

int main() {
  emu::Run();
  return 0;
}
