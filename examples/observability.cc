// Observability: hardware waveforms and wire captures from a running design.
//
// Runs the encrypting tunnel (the §4 "bespoke encryption" use case) while
// recording (a) a VCD waveform of service state — what an RTL simulator
// would give you, here for application-level signals — and (b) a libpcap
// capture of both sides of the tunnel, openable in wireshark. Artifacts land
// in /tmp/emu_observability.{vcd,pcap}.
#include <cstdio>

#include "src/core/metrics.h"
#include "src/core/targets.h"
#include "src/hdl/vcd_tracer.h"
#include "src/net/udp.h"
#include "src/services/crypto_tunnel_service.h"
#include "src/sim/trace_dump.h"

namespace {

using namespace emu;  // example code; library code never does this

Packet PlainDatagram(const std::string& message) {
  return MakeUdpPacket({MacAddress::FromU48(0x02000000000b), MacAddress::FromU48(0x02000000000a),
                        Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 4000, 7},
                       std::vector<u8>(message.begin(), message.end()));
}

}  // namespace

int main() {
  std::printf("== Observability: waveforms + wire captures of the crypto tunnel ==\n\n");

  CryptoTunnelConfig config;
  CryptoTunnelService service(config);
  FpgaTarget target(service);

  // The service's counters through the canonical metrics surface.
  MetricsRegistry metrics;
  service.RegisterMetrics(metrics);

  VcdTracer tracer(target.sim());
  tracer.AddSignal("encrypted", 16, [&] { return metrics.Get("crypto.encrypted"); });
  tracer.AddSignal("dropped", 16, [&] { return metrics.Get("crypto.dropped"); });
  tracer.Sample();
  // While attached the tracer samples after every committed edge, however the
  // clock is advanced — no batch-stepping loop, no missed cycles.
  tracer.Attach();

  TraceDump capture;
  const char* messages[] = {"first secret", "second secret", "third, longer secret payload"};
  for (const char* message : messages) {
    Packet request = PlainDatagram(message);
    capture.Capture(target.sim().NowPs(), "plain_in", request);
    target.Inject(config.plain_port, std::move(request));
    if (!target.RunUntilEgress()) {
      std::printf("tunnel produced no ciphertext frame\n");
      return 1;
    }
    const auto egress = target.TakeEgress();
    capture.Capture(egress[0].frame.egress_time(), "cipher_out", egress[0].frame);
  }
  tracer.Detach();

  std::printf("%s\n", capture.Summary().c_str());
  std::printf("%s", metrics.Format().c_str());
  const bool vcd_ok = tracer.WriteToFile("/tmp/emu_observability.vcd");
  const bool pcap_ok = capture.WritePcap("/tmp/emu_observability.pcap");
  std::printf("encrypted %llu datagrams; %zu waveform changes recorded\n",
              static_cast<unsigned long long>(service.encrypted()), tracer.change_count());
  std::printf("wrote /tmp/emu_observability.vcd (%s) — open with gtkwave\n",
              vcd_ok ? "ok" : "FAILED");
  std::printf("wrote /tmp/emu_observability.pcap (%s) — open with wireshark/tcpdump\n",
              pcap_ok ? "ok" : "FAILED");
  return vcd_ok && pcap_ok ? 0 : 1;
}
