// gossip_soak: SWIM membership under node-level chaos (emu-gossip).
//
// Builds an N-host hub world from a ScenarioSpec (emu-chain's declarative
// scenario layer), runs one SwimPeer per host, and applies a
// topology-scoped fault plan through a ChaosDirector: host crashes, restarts
// with a boot window, and partition windows realized as hub port-pair
// blocks. For each seed the soak runs three times — threads=1, threads=T,
// and a threads=T replay — and checks that the membership protocol kept its
// promises:
//
//   - completeness: every host that was up for a crashed member's whole
//     detection window declared it dead within SwimDetectionBound();
//   - accuracy: a Dead declaration is a false positive unless its subject
//     was actually down within the preceding bound, or a partition window
//     naming the subject overlapped it (partition-induced deaths spread by
//     gossip, so the rule is subject-based, not observer-based);
//   - rejoin: after a restart's boot window every up observer re-admitted
//     the member with a bumped incarnation within the bound;
//   - agreement: once the last chaos event plus the bound has passed, every
//     pair of up hosts agrees the other is alive;
//   - determinism: the per-peer membership-event digests and the fault
//     registry's injection-log digest are bit-exact across thread counts and
//     across a same-seed replay.
//
// Any violation exits nonzero. --prom writes the harness metrics (including
// the cross-seed detection-latency histogram) in Prometheus text format;
// --log-dir writes one file per seed with the plan, the injection log, and
// the digests — the CI uploads that directory as a failure artifact.
//
// emu-pulse additions: every run samples host-0's SWIM telemetry (probe
// rate, suspect/dead declarations, live-member view) into a bounded
// TimeSeriesRecorder and records the parallel runner's per-epoch wall-clock
// profile; --log-dir then also gets, per seed, the soak dashboard HTML,
// series JSON, and epoch profile JSON + wall-clock trace. The sampler runs
// on host 0's scheduler and reads only peer-0 state, so the runs stay
// bit-exact for any thread count. --slo CLAUSES evaluates declarative gates
// over the cross-seed harness metrics at end of soak (e.g.
// "gossip.detection_latency_us.p99 <= 5000; gossip.violations_total <= 0")
// and makes a breach exit nonzero.
//
// Usage:
//   gossip_soak [--seed N] [--seeds N] [--hosts N] [--threads N]
//               [--run-ms N] [--plan "<topo plan>"] [--prom FILE]
//               [--log-dir DIR] [--slo CLAUSES] [--verbose]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/chain/scenario_build.h"
#include "src/core/histogram.h"
#include "src/core/metrics.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fault_registry.h"
#include "src/obs/dashboard.h"
#include "src/obs/pulse.h"
#include "src/obs/sampler.h"
#include "src/obs/slo.h"
#include "src/obs/timeseries.h"
#include "src/services/swim_service.h"
#include "src/sim/chaos.h"
#include "src/sim/topology.h"

namespace emu {
namespace {

// Crash early enough that detection completes before the partition ends,
// restart late enough that the cluster has settled; the partition window
// exercises indirect probes, partition-induced suspicion, and refutation.
constexpr char kDefaultPlan[] =
    "crash host=h2 at=20ms; restart host=h2 at=120ms; "
    "partition {h0,h1}|{h3,h4} from=40ms to=70ms";

// --impair adds ambient link chaos on top of the plan: loss on h0's uplink
// and reordering on h1's, both directions, at rates SWIM's indirect probes
// must absorb without false positives.
constexpr char kImpairClauses[] =
    "; link.h0.up.drop bernoulli 0.02; link.h0.down.drop bernoulli 0.02"
    "; link.h1.up.reorder bernoulli 0.02; link.h1.down.reorder bernoulli 0.02";

constexpr Picoseconds kBootDelay = 5 * kPicosPerMilli;
constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

struct SoakOptions {
  u64 first_seed = 1;
  u64 seed_count = 5;
  usize hosts = 8;
  usize threads = 4;
  u64 run_ms = 200;
  std::string plan_text = kDefaultPlan;
  std::string prom_path;
  std::string log_dir;
  std::string slo_spec;  // evaluated over the cross-seed harness metrics
  u64 sample_interval_us = 1000;
  bool impair = false;
  bool verbose = false;
};

std::string HostName(usize i) { return "h" + std::to_string(i); }

// The SWIM membership list mirrors the spec's auto-host convention — one
// definition of "host i's addresses" (AutoHost) for both layers.
std::vector<SwimMember> ClusterMembers(usize hosts) {
  std::vector<SwimMember> members;
  for (usize i = 0; i < hosts; ++i) {
    const SpecHost host = AutoHost(i);
    members.push_back(SwimMember{host.name, host.mac, host.ip});
  }
  return members;
}

// The soak topology as a spec (specs/gossip_hub.spec parameterized by host
// count): 50 us links because SWIM's timescale is the 1 ms protocol period,
// and the larger conservative lookahead keeps the parallel epoch count (and
// so the soak's wall-clock) three orders of magnitude below cable-accurate
// delay.
std::string SoakSpecText(usize hosts) {
  return "topology hub hosts=" + std::to_string(hosts) + " link_delay=50us";
}

SwimConfig SoakSwimConfig(u64 run_ms) {
  SwimConfig config;
  config.run_until = static_cast<Picoseconds>(run_ms) * kPicosPerMilli;
  return config;
}

// Everything one run produces that the invariant checker and the digest
// comparisons need, copied out before the topology is torn down.
struct RunOutcome {
  bool ok = true;
  std::string detail;
  u64 events_executed = 0;
  u64 epochs = 0;
  u64 swim_digest = 0;  // per-peer EventsDigest folded in id order
  u64 log_digest = 0;   // FaultRegistry::LogDigest
  std::vector<std::vector<SwimEvent>> events;      // [observer]
  std::vector<std::vector<SwimState>> final_state;  // [observer][subject]
  std::vector<std::vector<u32>> final_inc;
  std::vector<bool> host_up;
  std::string injection_log;
  std::string prom_text;  // filled when want_prom
  // emu-pulse artifacts (wall-clock / telemetry; orthogonal to the digests):
  obs::TimeSeriesRecorder series{1024};
  std::string pulse_summary_json;
  std::string pulse_trace_json;
};

RunOutcome RunOnce(u64 seed, usize threads, const SoakOptions& opt, bool want_prom) {
  RunOutcome out;
  const std::vector<SwimMember> members = ClusterMembers(opt.hosts);
  FaultRegistry registry(seed);
  Expected<std::unique_ptr<Scenario>> built =
      BuildScenarioFromText(SoakSpecText(opt.hosts), &registry);
  if (!built.ok()) {
    out.ok = false;
    out.detail = "bad scenario spec: " + built.status().ToString();
    return out;
  }
  TopologyBuilder& topo = (*built)->topology;

  // Every hub uplink carries per-direction impairment points
  // (`link.<host>.up/.down.{drop,corrupt,dup,reorder,delay}`), so plans can
  // put loss or reordering on the membership traffic itself. Unarmed points
  // draw no randomness — a plan without link clauses runs untouched.
  topo.EnableAllUplinkImpairment(registry, "link");

  ChaosDirector director(topo, &registry);
  director.set_boot_delay(kBootDelay);
  const Expected<FaultPlan> plan = ParseFaultPlan(opt.plan_text);
  if (!plan.ok()) {
    out.ok = false;
    out.detail = "bad fault plan: " + plan.status().ToString();
    return out;
  }
  if (Status applied = director.Apply(*plan); !applied.ok()) {
    out.ok = false;
    out.detail = "chaos apply failed: " + applied.ToString();
    return out;
  }
  // The director schedules the topo events; point entries (link impairment)
  // arm directly on the registry.
  registry.ArmPlan(*plan);

  const SwimConfig swim_config = SoakSwimConfig(opt.run_ms);
  std::vector<std::unique_ptr<SwimPeer>> peers;
  for (usize i = 0; i < opt.hosts; ++i) {
    peers.push_back(std::make_unique<SwimPeer>(
        topo.host(i), static_cast<u16>(i), members, swim_config,
        seed ^ (0x9E37'79B9'7F4A'7C15ull * (i + 1))));
    peers.back()->Start();
  }

  // emu-pulse: sample host 0's SWIM telemetry on host 0's own scheduler.
  // Every value read is mutated only by events on that shard (peer 0's
  // counters and membership view), so mid-run sampling is shard-safe and the
  // sampled series — like the digests — is bit-exact for any thread count.
  MetricsRegistry h0_metrics;
  peers[0]->RegisterMetrics(h0_metrics, "swim.h0");
  h0_metrics.RegisterGauge("swim.h0.alive_members", [&peers, hosts = opt.hosts] {
    u64 alive = 0;
    for (usize s = 0; s < hosts; ++s) {
      if (peers[0]->StateOf(static_cast<u16>(s)) == SwimState::kAlive) ++alive;
    }
    return alive;
  });
  MetricsSampler sampler(h0_metrics,
                         static_cast<Picoseconds>(opt.sample_interval_us) * kPicosPerMicro);
  sampler.AttachRecorder(&out.series);
  sampler.SchedulePeriodic(topo.host(0).scheduler(), swim_config.run_until);

  obs::RunnerPulse pulse;
  topo.runner().AttachPulse(&pulse);

  ParallelRunOptions run_opts;
  run_opts.threads = threads;
  out.events_executed = topo.Run(run_opts);
  out.epochs = topo.runner().epochs();
  out.pulse_summary_json = pulse.SummaryJson();
  out.pulse_trace_json = pulse.WallClockTraceJson();

  u64 combined = kFnvOffset;
  for (const auto& peer : peers) {
    combined = (combined ^ peer->EventsDigest()) * kFnvPrime;
  }
  out.swim_digest = combined;
  out.log_digest = registry.LogDigest();
  out.injection_log = registry.Summary();
  for (usize o = 0; o < opt.hosts; ++o) {
    out.events.push_back(peers[o]->events());
    out.host_up.push_back(topo.host(o).up());
    std::vector<SwimState> states;
    std::vector<u32> incs;
    for (usize s = 0; s < opt.hosts; ++s) {
      states.push_back(peers[o]->StateOf(static_cast<u16>(s)));
      incs.push_back(peers[o]->IncarnationOf(static_cast<u16>(s)));
    }
    out.final_state.push_back(std::move(states));
    out.final_inc.push_back(std::move(incs));
  }
  if (want_prom || opt.verbose) {
    MetricsRegistry metrics;
    registry.RegisterMetrics(metrics, "faults");
    for (usize i = 0; i < opt.hosts; ++i) {
      topo.host(i).RegisterMetrics(metrics, "host." + HostName(i));
      peers[i]->RegisterMetrics(metrics, "swim." + HostName(i));
    }
    topo.hub().RegisterMetrics(metrics, "hub");
    out.prom_text = metrics.PrometheusText();
    if (opt.verbose) {
      std::printf("%s", metrics.Format().c_str());
    }
  }
  return out;
}

// --- Invariant checking -----------------------------------------------------
//
// The checker reconstructs each host's lifecycle and the partition windows
// from the parsed plan, then audits the per-peer membership-event logs.

struct Violation {
  std::string message;
};

class InvariantChecker {
 public:
  InvariantChecker(const FaultPlan& plan, const SoakOptions& opt, Picoseconds bound)
      : opt_(opt), bound_(bound), horizon_(static_cast<Picoseconds>(opt.run_ms) * kPicosPerMilli),
        lossy_(!plan.entries.empty()) {
    for (const TopoFault& event : plan.topo_events) {
      switch (event.kind) {
        case TopoFault::Kind::kCrash:
          crashes_.push_back({HostIndex(event.host), static_cast<Picoseconds>(event.at)});
          break;
        case TopoFault::Kind::kRestart:
          restarts_.push_back({HostIndex(event.host), static_cast<Picoseconds>(event.at)});
          break;
        case TopoFault::Kind::kPartition: {
          Window w;
          w.from = static_cast<Picoseconds>(event.from);
          w.until = static_cast<Picoseconds>(event.until);
          for (const std::string& h : event.group_a) w.named.push_back(HostIndex(h));
          for (const std::string& h : event.group_b) w.named.push_back(HostIndex(h));
          windows_.push_back(std::move(w));
          break;
        }
      }
    }
  }

  // Runs every invariant over one outcome; detection latencies are observed
  // into `latency_us` (microseconds) for the Prometheus artifact.
  std::vector<Violation> Check(const RunOutcome& run, Histogram& latency_us) const {
    std::vector<Violation> violations;
    CheckCompleteness(run, latency_us, violations);
    // Accuracy, rejoin, and agreement are SWIM's *probabilistic* promises:
    // under armed link impairment a lost probe response legitimately looks
    // like a death, and the resulting (correct-protocol) false positive
    // gossips cluster-wide. With loss in the plan only the hard guarantees
    // are enforced — completeness above, determinism in the caller.
    if (!lossy_) {
      CheckAccuracy(run, violations);
      CheckRejoin(run, violations);
      CheckAgreement(run, violations);
    }
    return violations;
  }

  Picoseconds bound() const { return bound_; }
  bool lossy() const { return lossy_; }

 private:
  struct LifeEvent {
    usize host = 0;
    Picoseconds at = 0;
  };
  struct Window {
    Picoseconds from = 0;
    Picoseconds until = 0;
    std::vector<usize> named;
  };

  usize HostIndex(const std::string& name) const {
    for (usize i = 0; i < opt_.hosts; ++i) {
      if (HostName(i) == name) return i;
    }
    return opt_.hosts;  // ChaosDirector::Apply already rejected unknowns
  }

  // Host lifecycle replay: up unless a crash (or power-cycle restart window)
  // has it down at `t`. Mirrors SimHost's state machine.
  bool UpAt(usize host, Picoseconds t) const {
    bool up = true;
    Picoseconds cursor = 0;
    // Events in plan order are already time-ordered per host in practice;
    // scan both lists merged by time for robustness.
    std::vector<std::pair<Picoseconds, bool>> timeline;  // (time, is_crash)
    for (const LifeEvent& c : crashes_) {
      if (c.host == host) timeline.push_back({c.at, true});
    }
    for (const LifeEvent& r : restarts_) {
      if (r.host == host) timeline.push_back({r.at, false});
    }
    std::sort(timeline.begin(), timeline.end());
    for (const auto& [at, is_crash] : timeline) {
      if (at > t) break;
      if (is_crash) {
        up = false;
      } else {
        // Restart: down for the boot window, then up.
        up = at + kBootDelay <= t;
      }
      cursor = at;
    }
    (void)cursor;
    return up;
  }

  bool CrashedWithin(usize host, Picoseconds t0, Picoseconds t1) const {
    for (const LifeEvent& c : crashes_) {
      if (c.host == host && c.at >= t0 && c.at <= t1) return true;
    }
    for (const LifeEvent& r : restarts_) {
      // A restart is a power-cycle: the host is down for the boot window.
      if (r.host == host && r.at >= t0 && r.at <= t1) return true;
    }
    return false;
  }

  bool UpThroughout(usize host, Picoseconds t0, Picoseconds t1) const {
    return UpAt(host, t0) && !CrashedWithin(host, t0, t1);
  }

  // True when some partition window naming `host` overlaps [t0, t1].
  bool PartitionNamed(usize host, Picoseconds t0, Picoseconds t1) const {
    for (const Window& w : windows_) {
      if (w.from >= t1 || w.until <= t0) continue;
      for (usize named : w.named) {
        if (named == host) return true;
      }
    }
    return false;
  }

  // First Dead(subject) logged by `observer` in [t0, t1], or -1.
  Picoseconds FirstDead(const RunOutcome& run, usize observer, usize subject,
                        Picoseconds t0, Picoseconds t1) const {
    for (const SwimEvent& e : run.events[observer]) {
      if (e.subject == subject && e.state == SwimState::kDead && e.at >= t0 && e.at <= t1) {
        return e.at;
      }
    }
    return static_cast<Picoseconds>(-1);
  }

  void CheckCompleteness(const RunOutcome& run, Histogram& latency_us,
                         std::vector<Violation>& out) const {
    for (const LifeEvent& crash : crashes_) {
      const Picoseconds deadline = crash.at + bound_;
      if (deadline > horizon_) continue;  // window does not fit the run
      bool interrupted = false;
      for (const LifeEvent& r : restarts_) {
        if (r.host == crash.host && r.at >= crash.at && r.at < deadline) interrupted = true;
      }
      if (interrupted) continue;
      for (usize o = 0; o < opt_.hosts; ++o) {
        if (o == crash.host || !UpThroughout(o, crash.at, deadline)) continue;
        const Picoseconds at = FirstDead(run, o, crash.host, crash.at, deadline);
        if (at == static_cast<Picoseconds>(-1)) {
          out.push_back({"completeness: " + HostName(o) + " never declared " +
                         HostName(crash.host) + " dead within " +
                         std::to_string(bound_ / kPicosPerMilli) + "ms of its crash"});
        } else {
          latency_us.Observe((at - crash.at) / kPicosPerMicro);
        }
      }
    }
  }

  void CheckAccuracy(const RunOutcome& run, std::vector<Violation>& out) const {
    for (usize o = 0; o < opt_.hosts; ++o) {
      for (const SwimEvent& e : run.events[o]) {
        if (e.state != SwimState::kDead) continue;
        const usize s = e.subject;
        const Picoseconds window_start = e.at > bound_ ? e.at - bound_ : 0;
        // Justified if the subject was actually down at some point in the
        // preceding bound (detection lag applies to true deaths too) ...
        if (!UpAt(s, e.at) || CrashedWithin(s, window_start, e.at)) continue;
        // ... or a partition naming the subject overlapped that window
        // (gossip spreads partition-induced deaths to every observer).
        if (PartitionNamed(s, window_start, e.at)) continue;
        out.push_back({"accuracy: false positive — " + HostName(o) + " declared " +
                       HostName(s) + " dead at " + std::to_string(e.at / kPicosPerMilli) +
                       "ms with no crash or partition to justify it"});
      }
    }
  }

  void CheckRejoin(const RunOutcome& run, std::vector<Violation>& out) const {
    for (const LifeEvent& restart : restarts_) {
      const Picoseconds completion = restart.at + kBootDelay;
      const Picoseconds deadline = completion + bound_;
      if (deadline > horizon_) continue;
      bool crashed_again = false;
      for (const LifeEvent& c : crashes_) {
        if (c.host == restart.host && c.at >= restart.at) crashed_again = true;
      }
      if (crashed_again) continue;
      for (usize o = 0; o < opt_.hosts; ++o) {
        if (o == restart.host || !UpThroughout(o, completion, deadline)) continue;
        if (PartitionNamed(o, completion, deadline) ||
            PartitionNamed(restart.host, completion, deadline)) {
          continue;  // rejoin traffic may be blocked; agreement covers the tail
        }
        bool readmitted = false;
        for (const SwimEvent& e : run.events[o]) {
          if (e.subject == restart.host && e.state == SwimState::kAlive &&
              e.incarnation >= 1 && e.at >= completion && e.at <= deadline) {
            readmitted = true;
            break;
          }
        }
        if (!readmitted) {
          out.push_back({"rejoin: " + HostName(o) + " never re-admitted " +
                         HostName(restart.host) + " (alive, incarnation >= 1) within " +
                         std::to_string(bound_ / kPicosPerMilli) + "ms of its reboot"});
        } else if (run.host_up[o] &&
                   run.final_state[o][restart.host] != SwimState::kAlive) {
          out.push_back({"rejoin: " + HostName(o) + " re-admitted " +
                         HostName(restart.host) + " but ended the run with it non-alive"});
        }
      }
    }
  }

  // Once the last chaos event (plus detection bound and boot window) has
  // passed, every pair of up hosts must agree the other is alive.
  void CheckAgreement(const RunOutcome& run, std::vector<Violation>& out) const {
    Picoseconds settle = 0;
    for (const LifeEvent& c : crashes_) settle = std::max(settle, c.at);
    for (const LifeEvent& r : restarts_) settle = std::max(settle, r.at + kBootDelay);
    for (const Window& w : windows_) settle = std::max(settle, w.until);
    if (settle + bound_ > horizon_) {
      return;  // the run ends before the cluster can have settled
    }
    for (usize o = 0; o < opt_.hosts; ++o) {
      if (!run.host_up[o]) continue;
      for (usize s = 0; s < opt_.hosts; ++s) {
        if (s == o || !run.host_up[s]) continue;
        if (run.final_state[o][s] != SwimState::kAlive) {
          out.push_back({"agreement: " + HostName(o) + " ended the run believing " +
                         HostName(s) + " is " +
                         SwimStateName(run.final_state[o][s])});
        }
      }
    }
  }

  SoakOptions opt_;
  Picoseconds bound_ = 0;
  Picoseconds horizon_ = 0;
  bool lossy_ = false;
  std::vector<LifeEvent> crashes_;
  std::vector<LifeEvent> restarts_;
  std::vector<Window> windows_;
};

// --- Artifacts --------------------------------------------------------------

bool WriteFileOrWarn(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "gossip_soak: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

void WriteSeedArtifact(const SoakOptions& opt, u64 seed, const RunOutcome& serial,
                       const RunOutcome& parallel, const RunOutcome& replay,
                       const std::vector<Violation>& violations) {
  char digest_lines[256];
  std::snprintf(digest_lines, sizeof(digest_lines),
                "swim digest: serial=%016llx threads=%016llx replay=%016llx\n"
                "log digest:  serial=%016llx threads=%016llx replay=%016llx\n",
                static_cast<unsigned long long>(serial.swim_digest),
                static_cast<unsigned long long>(parallel.swim_digest),
                static_cast<unsigned long long>(replay.swim_digest),
                static_cast<unsigned long long>(serial.log_digest),
                static_cast<unsigned long long>(parallel.log_digest),
                static_cast<unsigned long long>(replay.log_digest));
  std::string text = "seed " + std::to_string(seed) + "\nplan: " + opt.plan_text + "\n" +
                     digest_lines + "\ninjection log:\n" + serial.injection_log;
  if (!violations.empty()) {
    text += "\nviolations:\n";
    for (const Violation& v : violations) {
      text += "  " + v.message + "\n";
    }
  }
  const std::string base = opt.log_dir + "/seed" + std::to_string(seed);
  WriteFileOrWarn(base + ".txt", text);

  // emu-pulse artifacts (threads run): dashboard + series + epoch profile.
  obs::DashboardOptions dash;
  dash.title = "gossip_soak seed " + std::to_string(seed);
  dash.subtitle = std::to_string(opt.hosts) + " hosts, threads run; host-0 SWIM telemetry";
  const std::vector<obs::ChartSpec> charts = {
      {"Probe rate", "pings/s", {"swim.h0.pings_sent"}, true},
      {"Live members (h0 view)", "members", {"swim.h0.alive_members"}, false},
      {"Failure declarations", "cumulative",
       {"swim.h0.suspects_declared", "swim.h0.deads_declared"}, false},
      {"Gossip fanout", "entries", {"swim.h0.gossip_fanout.p50", "swim.h0.gossip_fanout.p99"},
       false},
  };
  obs::WriteSoakDashboardHtml(base + ".dashboard.html", dash, parallel.series, charts,
                              obs::SloReport{});
  WriteFileOrWarn(base + ".series.json", parallel.series.SeriesJson());
  WriteFileOrWarn(base + ".pulse.json", parallel.pulse_summary_json);
  WriteFileOrWarn(base + ".pulse.trace.json", parallel.pulse_trace_json);
}

int Usage() {
  std::printf(
      "usage: gossip_soak [--seed N] [--seeds N] [--hosts N] [--threads N]\n"
      "                   [--run-ms N] [--plan \"<topo plan>\"] [--prom FILE]\n"
      "                   [--log-dir DIR] [--slo CLAUSES] [--sample-us N]\n"
      "                   [--impair] [--verbose]\n"
      "--slo gates the cross-seed harness metrics at end of soak, e.g.\n"
      "  \"gossip.detection_latency_us.p99 <= 5000; gossip.violations_total <= 0\"\n"
      "plan grammar: crash host=<h> at=<t>; restart host=<h> at=<t>;\n"
      "              partition {a,b}|{c,d} from=<t> to=<t> [oneway];\n"
      "              link.<h>.{up,down}.{drop,corrupt,dup,reorder,delay} <schedule>\n"
      "--impair appends default loss/reorder clauses to the plan.\n"
      "--log-dir must already exist; one artifact file is written per seed.\n");
  return 2;
}

int Main(int argc, char** argv) {
  SoakOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      opt.first_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seeds" && i + 1 < argc) {
      opt.seed_count = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--hosts" && i + 1 < argc) {
      opt.hosts = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      opt.threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--run-ms" && i + 1 < argc) {
      opt.run_ms = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--plan" && i + 1 < argc) {
      opt.plan_text = argv[++i];
    } else if (arg == "--prom" && i + 1 < argc) {
      opt.prom_path = argv[++i];
    } else if (arg == "--log-dir" && i + 1 < argc) {
      opt.log_dir = argv[++i];
    } else if (arg == "--slo" && i + 1 < argc) {
      opt.slo_spec = argv[++i];
    } else if (arg == "--sample-us" && i + 1 < argc) {
      opt.sample_interval_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--impair") {
      opt.impair = true;
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      return Usage();
    }
  }
  if (opt.hosts < 3 || opt.hosts > 64 || opt.threads == 0 || opt.seed_count == 0 ||
      opt.sample_interval_us == 0) {
    return Usage();
  }
  if (opt.impair) {
    opt.plan_text += kImpairClauses;
  }

  // Parse the SLO gate before any run so a malformed spec fails fast.
  const obs::SloParseResult slo_spec = obs::ParseSloSpec(opt.slo_spec);
  if (!slo_spec.ok) {
    std::fprintf(stderr, "gossip_soak: %s\n", slo_spec.error.c_str());
    return 2;
  }

  const Expected<FaultPlan> plan = ParseFaultPlan(opt.plan_text);
  if (!plan.ok()) {
    std::fprintf(stderr, "gossip_soak: bad plan: %s\n", plan.status().ToString().c_str());
    return 2;
  }
  const SwimConfig swim_config = SoakSwimConfig(opt.run_ms);
  const Picoseconds bound = SwimDetectionBound(swim_config, opt.hosts);
  const InvariantChecker checker(*plan, opt, bound);

  std::printf("gossip_soak: hosts=%zu seeds=[%llu..%llu] threads={1,%zu} run=%llums "
              "detection-bound=%llums\n",
              opt.hosts, static_cast<unsigned long long>(opt.first_seed),
              static_cast<unsigned long long>(opt.first_seed + opt.seed_count - 1),
              opt.threads, static_cast<unsigned long long>(opt.run_ms),
              static_cast<unsigned long long>(bound / kPicosPerMilli));
  std::printf("plan: %s\n", opt.plan_text.c_str());
  if (checker.lossy()) {
    std::printf("link impairment armed: enforcing completeness + determinism only "
                "(accuracy/rejoin/agreement are probabilistic under loss)\n");
  }

  Histogram detection_latency_us;
  u64 runs_total = 0;
  u64 violations_total = 0;
  std::string last_prom;
  bool all_ok = true;

  for (u64 k = 0; k < opt.seed_count; ++k) {
    const u64 seed = opt.first_seed + k;
    const bool want_prom = !opt.prom_path.empty() && k + 1 == opt.seed_count;
    const RunOutcome serial = RunOnce(seed, 1, opt, /*want_prom=*/false);
    const RunOutcome parallel = RunOnce(seed, opt.threads, opt, want_prom);
    const RunOutcome replay = RunOnce(seed, opt.threads, opt, /*want_prom=*/false);
    runs_total += 3;
    if (want_prom) {
      last_prom = parallel.prom_text;
    }

    std::vector<Violation> violations;
    for (const RunOutcome* run : {&serial, &parallel, &replay}) {
      if (!run->ok) {
        violations.push_back({run->detail});
      }
    }
    if (violations.empty()) {
      // Invariants on the parallel run (the shipping configuration); the
      // digest cross-checks make the serial and replay runs equivalent.
      violations = checker.Check(parallel, detection_latency_us);
      if (serial.swim_digest != parallel.swim_digest ||
          serial.log_digest != parallel.log_digest) {
        violations.push_back({"determinism: threads=1 vs threads=" +
                              std::to_string(opt.threads) + " digests diverged"});
      }
      if (replay.swim_digest != parallel.swim_digest ||
          replay.log_digest != parallel.log_digest) {
        violations.push_back({"determinism: same-seed replay digests diverged"});
      }
    }
    violations_total += violations.size();
    all_ok = all_ok && violations.empty();

    std::printf("seed=%llu  events=%llu epochs=%llu  swim=%016llx log=%016llx  %s\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(parallel.events_executed),
                static_cast<unsigned long long>(parallel.epochs),
                static_cast<unsigned long long>(parallel.swim_digest),
                static_cast<unsigned long long>(parallel.log_digest),
                violations.empty() ? "ok" : "VIOLATIONS");
    for (const Violation& v : violations) {
      std::printf("  %s\n", v.message.c_str());
    }
    if (!opt.log_dir.empty()) {
      WriteSeedArtifact(opt, seed, serial, parallel, replay, violations);
    }
  }

  if (detection_latency_us.count() > 0) {
    std::printf("detection latency: p50=%lluus p99=%lluus over %llu observations\n",
                static_cast<unsigned long long>(detection_latency_us.PercentileEstimate(50.0)),
                static_cast<unsigned long long>(detection_latency_us.PercentileEstimate(99.0)),
                static_cast<unsigned long long>(detection_latency_us.count()));
  }
  MetricsRegistry harness;
  harness.Register("gossip.runs_total", &runs_total);
  harness.Register("gossip.violations_total", &violations_total);
  harness.RegisterHistogram("gossip.detection_latency_us", &detection_latency_us);

  // The SLO gate runs over the cross-seed harness metrics (TryGet resolves
  // histogram `.p50`/`.p99` views) — a breach is a soak failure on its own.
  const obs::SloReport slo = obs::EvaluateSlo(slo_spec.clauses, obs::MakeRegistryLookup(harness));
  if (!slo.checks.empty()) {
    std::printf("%s", obs::FormatSloReport(slo).c_str());
  }
  all_ok = all_ok && slo.ok;

  if (!opt.prom_path.empty()) {
    const std::string prom_text = harness.PrometheusText() + last_prom;
    std::string lint_error;
    if (!PrometheusLint(prom_text, &lint_error)) {
      std::printf("prom lint: %s\n", lint_error.c_str());
      all_ok = false;
    }
    WriteFileOrWarn(opt.prom_path, prom_text);
  }
  std::printf("gossip_soak: %s\n", all_ok ? "all invariants held" : "FAILURES");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace emu

int main(int argc, char** argv) { return emu::Main(argc, argv); }
