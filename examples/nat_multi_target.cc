// One codebase, three targets (§3.3, §4.4).
//
// The paper's NAT is its portability test case: "compiling it to three
// different targets: software, Mininet, and hardware." This example runs the
// same NatService source on all three and shows the identical translation
// decision on each:
//   1. CpuTarget      — plain software semantics (the x86 dev/test loop)
//   2. StarTopology   — the event-driven network simulator (Mininet stand-in)
//   3. FpgaTarget     — the cycle-accurate NetFPGA pipeline
#include <cstdio>

#include "src/core/targets.h"
#include "src/net/udp.h"
#include "src/services/nat_service.h"
#include "src/sim/topology.h"

namespace {

using namespace emu;  // example code; library code never does this

Packet OutboundUdp(const NatConfig& config, MacAddress host_mac, Ipv4Address host_ip) {
  return MakeUdpPacket(
      {config.internal_mac, host_mac, host_ip, Ipv4Address(8, 8, 8, 8), 5000, 53},
      std::vector<u8>{'p', 'i', 'n', 'g'});
}

void Describe(const char* target, const Packet& frame) {
  Packet copy = frame;
  Ipv4View ip(copy);
  UdpView udp(copy, ip.payload_offset());
  std::printf("%-22s %s:%u -> %s:%u  (IP csum %s, UDP csum %s)\n", target,
              ip.source().ToString().c_str(), udp.source_port(),
              ip.destination().ToString().c_str(), udp.destination_port(),
              ip.ChecksumValid() ? "ok" : "BAD", udp.ChecksumValid(ip) ? "ok" : "BAD");
}

}  // namespace

int main() {
  NatConfig config;
  const MacAddress host_mac = MacAddress::Parse("02:00:00:00:11:10").value();
  const Ipv4Address host_ip(192, 168, 1, 10);

  std::printf("== The same NAT source on three execution targets ==\n\n");
  std::printf("internal host %s sends UDP to 8.8.8.8:53 through the gateway\n\n",
              host_ip.ToString().c_str());

  // --- Target 1: CPU (software semantics) ---
  {
    NatService service(config);
    CpuTarget target(service);
    Packet frame = OutboundUdp(config, host_mac, host_ip);
    frame.set_src_port(1);
    const auto out = target.Deliver(std::move(frame));
    Describe("CpuTarget:", out.at(0));
  }

  // --- Target 2: event-driven network simulator (Mininet substitute) ---
  {
    NatService service(config);
    std::vector<HostSpec> hosts = {
        {"external", MacAddress::Parse("02:ff:ff:ff:ff:01").value(), Ipv4Address(8, 8, 8, 8)},
        {"internal", host_mac, host_ip}};
    StarTopology topo(service, hosts);
    Packet seen;
    topo.host(0).SetApp([&](SimHost&, Packet frame) { seen = std::move(frame); });
    topo.host(1).Send(OutboundUdp(config, host_mac, host_ip));
    topo.Run();
    Describe("SimTarget (Mininet):", seen);
  }

  // --- Target 3: cycle-accurate NetFPGA pipeline ---
  {
    NatService service(config);
    FpgaTarget target(service);
    auto out = target.SendAndCollect(1, OutboundUdp(config, host_mac, host_ip));
    Describe("FpgaTarget:", *out);
    std::printf("\nFPGA-only extras: one-way DUT latency %.2f us, %zu active mapping(s)\n",
                ToMicroseconds(out->egress_time() - out->ingress_time()),
                service.active_mappings());
  }

  std::printf("\nSame source, same rewrite, three substrates — §4.4's portability claim.\n");
  return 0;
}
