// Re-enactment of the paper's §5.5 debugging story, end to end.
//
// "The Memcached service running on hardware replied with an error message,
// while no problem was detected in simulation. Using directed packets, we
// examined the Memcached service: directing the packets to report the
// checksum calculated within Emu revealed a bug in the checksum
// implementation..."
//
// Here the hardware checksum unit carries the classic fold bug (correct
// until the one's-complement sum overflows 16 bits — which is why short
// simulation payloads never caught it). A director drives the running
// service with direction packets: print the computed checksum, compare with
// the software stack's answer, trace it across requests, and finally
// hot-fix the bug through a writable controller variable.
#include <cstdio>

#include "src/core/targets.h"
#include "src/debug/controller.h"
#include "src/net/checksum.h"
#include "src/net/udp.h"
#include "src/services/memcached_service.h"

namespace {

using namespace emu;  // example code; library code never does this

const MacAddress kDirectorMac = MacAddress::Parse("02:00:00:00:d0:01").value();
const MacAddress kClientMac = MacAddress::Parse("02:00:00:00:cc:01").value();
const Ipv4Address kClientIp(10, 0, 0, 9);

Packet McFrame(const MemcachedConfig& config, const McRequest& request) {
  McRequest copy = request;
  copy.protocol = config.protocol;
  return MakeUdpPacket({config.mac, kClientMac, kClientIp, config.ip, 31000, kMemcachedPort},
                       BuildMcRequest(copy));
}

std::string Direct(FpgaTarget& target, const MemcachedConfig& config, u16 seq,
                   const std::string& command) {
  Packet packet = MakeDirectionPacket(config.mac, kDirectorMac,
                                      DirectionPacketKind::kCommand, seq, command);
  auto reply = target.SendAndCollect(0, std::move(packet));
  auto payload = ParseDirectionPacket(*reply);
  std::printf("  director> %-28s  controller> %s\n", command.c_str(),
              payload->text.c_str());
  return payload->text;
}

}  // namespace

int main() {
  std::printf("== 5.5 re-enactment: hunting a hardware checksum bug with direction packets ==\n\n");

  MemcachedConfig config;
  MemcachedService service(config);
  DirectionController controller("main_loop");
  service.AttachController(&controller);
  DirectedService directed(service, controller);
  FpgaTarget target(directed);

  // The latent bug ships in the "hardware" checksum unit.
  service.InjectChecksumBug(true);

  // Store a long value: its GET replies have carry-heavy checksums.
  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "image";
  set.value = std::string(64, 'x');
  target.SendAndCollect(0, McFrame(config, set));
  target.TakeEgress();

  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "image";
  auto reply = target.SendAndCollect(0, McFrame(config, get));
  Packet frame = *reply;
  Ipv4View ip(frame);
  UdpView udp(frame, ip.payload_offset());
  std::printf("symptom: GET reply UDP checksum 0x%04x — verification %s on the client\n\n",
              udp.checksum(), udp.ChecksumValid(ip) ? "passes" : "FAILS");

  std::printf("step 1: direct the running program to report its checksum register\n");
  Direct(target, config, 1, "print checksum");

  // What the checksum SHOULD be, from the trusted software stack.
  udp.set_checksum(0);
  u16 expected = TransportChecksum(ip.source(), ip.destination(),
                                   static_cast<u8>(IpProtocol::kUdp),
                                   frame.View(ip.payload_offset(), udp.length()));
  std::printf("  software stack computes 0x%04x for the same reply -> hardware disagrees\n\n",
              expected);

  std::printf("step 2: trace the checksum across a few requests to confirm it is systematic\n");
  Direct(target, config, 2, "trace start checksum 4");
  for (int i = 0; i < 3; ++i) {
    target.SendAndCollect(0, McFrame(config, get));
    target.TakeEgress();
  }
  Direct(target, config, 3, "trace print checksum");
  Direct(target, config, 4, "count calls handle_request");

  // Done tracing: stop it before it fills (a full buffer breaks the program,
  // Fig. 7) and clear the samples.
  Direct(target, config, 5, "trace stop checksum");
  Direct(target, config, 6, "trace clear checksum");

  std::printf("\nstep 3: the fold bug identified; hot-fix it through the +W feature\n");
  Direct(target, config, 7, "print inject_bug");
  auto var = controller.machine().VariableId("inject_bug");
  CaspProgram fix = {{CaspOp::kPushConst, 0, 0}, {CaspOp::kStoreVar, 0, var.value()}};
  controller.machine().InstallProcedure("main_loop", "hotfix", fix);
  target.SendAndCollect(0, McFrame(config, get));  // next request applies the fix
  target.TakeEgress();
  controller.machine().RemoveProcedure("main_loop", "hotfix");
  Direct(target, config, 8, "print inject_bug");

  auto fixed = target.SendAndCollect(0, McFrame(config, get));
  Packet fixed_frame = *fixed;
  Ipv4View fixed_ip(fixed_frame);
  UdpView fixed_udp(fixed_frame, fixed_ip.payload_offset());
  std::printf("\nverification: GET reply checksum 0x%04x — verification now %s\n",
              fixed_udp.checksum(), fixed_udp.ChecksumValid(fixed_ip) ? "passes" : "FAILS");

  std::printf("\ncontroller handled %llu direction packets; normal traffic flowed throughout.\n",
              static_cast<unsigned long long>(directed.direction_packets()));
  return 0;
}
