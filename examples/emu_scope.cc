// emu-scope: cycle-timestamped tracing + the telemetry pipeline, end to end.
//
// Builds one mixed topology — an L2 learning switch with two stations, a NAT
// gateway between an internal and an external host, and a memcached server
// under a memaslap client — with every node and host on its own shard of the
// parallel runner. A TraceSession records the packet flight of every frame
// (link transit, FIFO residency, service stage spans, per-node service time)
// while a MetricsSampler snapshots the memcached node's counters in-run.
//
// Artifacts:
//   /tmp/emu_scope.trace.json   — Chrome/Perfetto trace; open in
//                                 https://ui.perfetto.dev
//   /tmp/emu_scope.prom         — Prometheus text exposition of every counter,
//                                 gauge and latency histogram in the run
//   /tmp/emu_scope.profile.json — emu-pulse kernel phase profile of the
//                                 memcached node (sampled profiling mode)
//
// The driver then re-runs the identical workload at threads=4 and checks the
// exported trace is byte-identical — the emu-par determinism contract
// extended to observability. Kernel profiling is wall-clock-only state, so
// it stays enabled across both runs without perturbing the comparison.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/metrics.h"
#include "src/net/ethernet.h"
#include "src/net/ipv4.h"
#include "src/net/udp.h"
#include "src/obs/pulse.h"
#include "src/obs/sampler.h"
#include "src/obs/trace.h"
#include "src/services/learning_switch.h"
#include "src/services/memcached_service.h"
#include "src/services/nat_service.h"
#include "src/sim/memaslap.h"
#include "src/sim/parallel_runner.h"
#include "src/sim/sim_host.h"

namespace {

using namespace emu;  // example code; library code never does this

// A hand-built sharded topology: unlike ShardedTopology's star/cluster
// shapes, nodes here run different services AND have different host counts.
class MixedTopology {
 public:
  usize AddNode(Service& service) {
    schedulers_.push_back(std::make_unique<EventScheduler>());
    node_shards_.push_back(runner_.AddShard(*schedulers_.back()));
    node_schedulers_.push_back(schedulers_.back().get());
    nodes_.push_back(std::make_unique<ServiceNode>(*schedulers_.back(), service));
    return nodes_.size() - 1;
  }

  SimHost& AddHost(usize node, u8 port, const std::string& name, MacAddress mac,
                   Ipv4Address ip) {
    schedulers_.push_back(std::make_unique<EventScheduler>());
    EventScheduler& host_scheduler = *schedulers_.back();
    const usize host_shard = runner_.AddShard(host_scheduler);
    links_.push_back(std::make_unique<Link>(host_scheduler, 10'000'000'000ULL, 500'000));
    Link& link = *links_.back();
    hosts_.push_back(std::make_unique<SimHost>(host_scheduler, name, mac, ip));
    hosts_.back()->AttachUplink(&link, /*is_end_a=*/true);
    nodes_[node]->AttachPort(port, &link, /*is_end_a=*/false);
    runner_.ConnectDirection(link, /*to_b=*/true, host_shard, node_shards_[node]);
    runner_.ConnectDirection(link, /*to_b=*/false, node_shards_[node], host_shard);
    return *hosts_.back();
  }

  ServiceNode& node(usize i) { return *nodes_[i]; }
  EventScheduler& node_scheduler(usize i) { return *node_schedulers_[i]; }
  Link& link(usize i) { return *links_[i]; }
  usize link_count() const { return links_.size(); }
  u64 Run(usize threads) { return runner_.Run({.threads = threads}); }

 private:
  ParallelRunner runner_;
  std::vector<std::unique_ptr<EventScheduler>> schedulers_;
  std::vector<usize> node_shards_;
  std::vector<EventScheduler*> node_schedulers_;
  std::vector<std::unique_ptr<ServiceNode>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
};

struct RunResult {
  // The session outlives the run so MergedEvents' string views stay valid.
  std::unique_ptr<obs::TraceSession> session;
  std::string trace_json;
  std::string prom_text;
  std::string sampler_csv;
  usize sampler_rows = 0;
  u64 events = 0;
  u64 trace_events_dropped = 0;
  std::vector<obs::MergedEvent> merged;
  SimProfile profile;  // memcached node's kernel phase profile (sampled mode)
};

// One full traced run of the mixed workload. Fresh everything per call so
// the determinism comparison runs on identical initial state.
RunResult RunOnce(usize threads) {
  RunResult result;
  result.session = std::make_unique<obs::TraceSession>();
  result.session->Install();

  LearningSwitch switch_service;
  NatConfig nat_config;
  NatService nat_service(nat_config);
  MemcachedConfig mc_config;
  MemcachedService mc_service(mc_config);

  MixedTopology topo;
  const usize sw = topo.AddNode(switch_service);
  const usize nat = topo.AddNode(nat_service);
  const usize mc = topo.AddNode(mc_service);

  const MacAddress s0_mac = MacAddress::FromU48(0x02'00'00'00'0a'01);
  const MacAddress s1_mac = MacAddress::FromU48(0x02'00'00'00'0a'02);
  SimHost& s0 = topo.AddHost(sw, 0, "s0", s0_mac, Ipv4Address(10, 0, 0, 1));
  SimHost& s1 = topo.AddHost(sw, 1, "s1", s1_mac, Ipv4Address(10, 0, 0, 2));
  // NAT convention: port 0 faces the external network, port 1 the internal.
  SimHost& ext = topo.AddHost(nat, 0, "ext", MacAddress::FromU48(0x02'ff'ff'ff'ff'01),
                              Ipv4Address(8, 8, 8, 8));
  SimHost& internal = topo.AddHost(nat, 1, "int", MacAddress::FromU48(0x02'00'00'00'11'10),
                                   Ipv4Address(192, 168, 1, 10));
  const MacAddress client_mac = MacAddress::FromU48(0x02'00'00'00'c1'00);
  SimHost& client = topo.AddHost(mc, 0, "client", client_mac, Ipv4Address(10, 0, 0, 50));

  for (SimHost* h : {&s0, &s1, &internal, &client}) {
    h->SetApp([](SimHost&, Packet) {});
  }
  // The external host echoes every translated datagram back at its source —
  // each NAT ping becomes a full out-and-back flight.
  ext.SetApp([&ext, &nat_config](SimHost& h, Packet frame) {
    Ipv4View ip(frame);
    if (!ip.Valid() || !ip.ProtocolIs(IpProtocol::kUdp)) {
      return;
    }
    UdpView udp(frame, ip.payload_offset());
    Packet reply = MakeUdpPacket({nat_config.external_mac, h.mac(), h.ip(), ip.source(),
                                  udp.destination_port(), udp.source_port()},
                                 std::vector<u8>{'r'});
    ext.scheduler().After(3 * kPicosPerMicro, [&ext, reply] { ext.Send(reply); });
  });

  // Switch traffic: both stations announce themselves, then exchange unicasts.
  s0.scheduler().At(10 * kPicosPerMicro, [&s0] {
    s0.Send(MakeEthernetFrame(MacAddress::Broadcast(), s0.mac(), EtherType::kIpv4,
                              std::vector<u8>{0}));
  });
  s1.scheduler().At(20 * kPicosPerMicro, [&s1] {
    s1.Send(MakeEthernetFrame(MacAddress::Broadcast(), s1.mac(), EtherType::kIpv4,
                              std::vector<u8>{1}));
  });
  for (usize i = 0; i < 6; ++i) {
    const Picoseconds at = (100 + static_cast<Picoseconds>(i) * 40) * kPicosPerMicro;
    s0.scheduler().At(at, [&s0, &s1, i] {
      s0.Send(MakeUdpPacket({s1.mac(), s0.mac(), s0.ip(), s1.ip(),
                             static_cast<u16>(5000 + i), 6000},
                            std::vector<u8>{static_cast<u8>(i)}));
    });
    s1.scheduler().At(at + 15 * kPicosPerMicro, [&s0, &s1, i] {
      s1.Send(MakeUdpPacket({s0.mac(), s1.mac(), s1.ip(), s0.ip(),
                             static_cast<u16>(7000 + i), 8000},
                            std::vector<u8>{static_cast<u8>(i)}));
    });
  }

  // NAT traffic: staggered pings out of the internal network.
  for (usize i = 0; i < 5; ++i) {
    const Picoseconds at = (30 + static_cast<Picoseconds>(i) * 60) * kPicosPerMicro;
    internal.scheduler().At(at, [&internal, &ext, &nat_config, i] {
      internal.Send(MakeUdpPacket({nat_config.internal_mac, internal.mac(), internal.ip(),
                                   ext.ip(), static_cast<u16>(4000 + i), 53},
                                  std::vector<u8>{static_cast<u8>('a' + i)}));
    });
  }

  // Memcached traffic: seeded memaslap prewarm SETs then a 90/10 workload.
  MemaslapConfig workload;
  workload.server_mac = mc_config.mac;
  workload.server_ip = mc_config.ip;
  workload.client_mac = client_mac;
  workload.client_ip = client.ip();
  workload.key_space = 16;
  workload.seed = 424242;
  MemaslapLoadgen loadgen(workload);
  for (usize k = 0; k < loadgen.prewarm_count(); ++k) {
    const Picoseconds at = (5 + static_cast<Picoseconds>(k) * 2) * kPicosPerMicro;
    Packet frame = loadgen.PrewarmFrame(k);
    client.scheduler().At(at, [&client, frame] { client.Send(frame); });
  }
  for (usize k = 0; k < 12; ++k) {
    const Picoseconds at = (150 + static_cast<Picoseconds>(k) * 20) * kPicosPerMicro;
    Packet frame = loadgen.WorkloadFrame(k);
    client.scheduler().At(at, [&client, frame] { client.Send(frame); });
  }

  // Telemetry. The sampled registry holds only memcached-node state (service
  // counters + its kernel), so in-run sampling on that node's scheduler never
  // reads across a shard boundary; the full registry is read post-run only.
  MetricsRegistry mc_metrics;
  mc_service.RegisterMetrics(mc_metrics);
  topo.node(mc).target().sim().RegisterMetrics(mc_metrics, "kernel.memcached");
  MetricsSampler sampler(mc_metrics, 100 * kPicosPerMicro);
  sampler.SchedulePeriodic(topo.node_scheduler(mc), 400 * kPicosPerMicro);

  // Sampled kernel profiling on the memcached node: wall-clock accounting
  // only, so the deterministic trace bytes are untouched by it.
  topo.node(mc).target().sim().SetProfilingMode(ProfilingMode::kSampled);

  result.events = topo.Run(threads);
  result.profile = topo.node(mc).target().sim().ProfileReport();

  MetricsRegistry metrics;
  switch_service.RegisterMetrics(metrics);
  nat_service.RegisterMetrics(metrics);
  mc_service.RegisterMetrics(metrics);
  topo.node(sw).target().sim().RegisterMetrics(metrics, "kernel.switch");
  topo.node(nat).target().sim().RegisterMetrics(metrics, "kernel.nat");
  topo.node(mc).target().sim().RegisterMetrics(metrics, "kernel.memcached");
  for (usize i = 0; i < topo.link_count(); ++i) {
    topo.link(i).RegisterMetrics(metrics, "link" + std::to_string(i));
  }

  result.trace_json = result.session->ExportChromeJson();
  result.prom_text = metrics.PrometheusText();
  result.sampler_csv = sampler.Csv();
  result.sampler_rows = sampler.rows().size();
  result.trace_events_dropped = result.session->dropped();
  result.merged = result.session->MergedEvents();
  obs::TraceSession::Detach();
  return result;
}

// Table-4-style decomposition, read off the trace: mean duration of every
// complete span plus mean end-to-end flight time from the async pairs.
void PrintDecomposition(const std::vector<obs::MergedEvent>& events) {
  struct Acc {
    u64 count = 0;
    Picoseconds total = 0;
  };
  std::map<std::string, Acc> stages;
  std::map<u64, Picoseconds> flight_begin;
  Acc flight;
  for (const obs::MergedEvent& e : events) {
    switch (e.phase) {
      case obs::Phase::kComplete: {
        Acc& acc = stages[std::string(e.name)];
        ++acc.count;
        acc.total += e.dur;
        break;
      }
      case obs::Phase::kAsyncBegin:
        if (e.name == "pkt.flight") {
          flight_begin.emplace(e.id, e.ts);
        }
        break;
      case obs::Phase::kAsyncEnd:
        if (e.name == "pkt.flight") {
          // A broadcast ends its flight at several hosts; count the first.
          auto it = flight_begin.find(e.id);
          if (it != flight_begin.end()) {
            ++flight.count;
            flight.total += e.ts - it->second;
            flight_begin.erase(it);
          }
        }
        break;
      default:
        break;
    }
  }
  std::printf("stage decomposition (mean over the run):\n");
  for (const auto& [name, acc] : stages) {
    std::printf("  %-18s %6llu spans   %10.3f ns mean\n", name.c_str(),
                static_cast<unsigned long long>(acc.count),
                static_cast<double>(acc.total) / static_cast<double>(acc.count) / 1000.0);
  }
  if (flight.count > 0) {
    std::printf("  %-18s %6llu flights %10.3f us mean end-to-end\n", "pkt.flight",
                static_cast<unsigned long long>(flight.count),
                static_cast<double>(flight.total) / static_cast<double>(flight.count) /
                    static_cast<double>(kPicosPerMicro));
  }
}

bool WriteText(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return ok && std::fclose(f) == 0;
}

}  // namespace

int main() {
  std::printf("== emu-scope: flight recorder + telemetry over a mixed topology ==\n\n");
#ifndef EMU_TRACE
  std::printf("(built with EMU_TRACE=OFF: trace hooks fold away; the exported trace\n"
              " is empty but telemetry and the Prometheus pipeline still work)\n\n");
#endif

  RunResult run = RunOnce(/*threads=*/1);
  std::printf("executed %llu events; %zu trace events captured (%llu dropped)\n\n",
              static_cast<unsigned long long>(run.events), run.merged.size(),
              static_cast<unsigned long long>(run.trace_events_dropped));
  PrintDecomposition(run.merged);

  std::string error;
  const bool json_valid = obs::ValidateChromeTraceJson(run.trace_json, &error);
  std::printf("\ntrace JSON schema check: %s%s%s\n", json_valid ? "ok" : "FAILED — ",
              json_valid ? "" : error.c_str(), "");
  const bool prom_valid = PrometheusLint(run.prom_text, &error);
  std::printf("prometheus exposition lint: %s%s%s\n", prom_valid ? "ok" : "FAILED — ",
              prom_valid ? "" : error.c_str(), "");

  // The observability determinism contract: a 4-thread run of the same
  // workload exports the same bytes.
  RunResult parallel = RunOnce(/*threads=*/4);
  const bool deterministic = parallel.trace_json == run.trace_json;
  std::printf("threads=4 trace byte-identical to threads=1: %s\n",
              deterministic ? "yes" : "NO");

  // Kernel phase profile: the table prints only when the report actually
  // carries wall data — a disabled or never-sampled profiler says so
  // explicitly instead of rendering an all-zero table.
  if (run.profile.populated()) {
    std::printf("\nkernel phase profile (memcached node, sampled 1/%llu):\n%s",
                static_cast<unsigned long long>(run.profile.sample_stride),
                obs::FormatSimProfileTable(run.profile).c_str());
  } else {
    std::printf("\nkernel phase profile: %s\n",
                run.profile.profiling_enabled
                    ? "enabled, but no edges were timed (run too short for the stride)"
                    : "profiling disabled (Simulator::SetProfilingMode to enable)");
  }

  const bool json_written = WriteText("/tmp/emu_scope.trace.json", run.trace_json);
  const bool prom_written = WriteText("/tmp/emu_scope.prom", run.prom_text);
  const bool profile_written =
      WriteText("/tmp/emu_scope.profile.json", obs::SimProfileJson(run.profile));
  std::printf("\nwrote /tmp/emu_scope.trace.json (%s) — open in ui.perfetto.dev\n",
              json_written ? "ok" : "FAILED");
  std::printf("wrote /tmp/emu_scope.prom (%s) — scrape-ready Prometheus text\n",
              prom_written ? "ok" : "FAILED");
  std::printf("wrote /tmp/emu_scope.profile.json (%s) — kernel phase profile\n",
              profile_written ? "ok" : "FAILED");
  std::printf("in-run sampler captured %zu snapshots of the memcached node\n",
              run.sampler_rows);

  return json_valid && prom_valid && deterministic && json_written && prom_written &&
                 profile_written
             ? 0
             : 1;
}
