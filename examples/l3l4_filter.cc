// L3-L4 filtering with the iptables-style CLI (§4.1).
//
// Parses an iptables-like ruleset, slots the generated filter in front of
// the learning switch, and runs a traffic mix through it — the paper's tool
// "emulates the command-line parameter interface of IP tables" and
// "generates code that slots into our learning switch".
//
// Pass rules on the command line to override the built-in demo ruleset:
//   ./l3l4_filter "-A FORWARD -p udp --dport 53 -j ACCEPT" "-P FORWARD DROP"
#include <cstdio>
#include <string>

#include "src/core/targets.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/services/iptables_cli.h"

namespace {

using namespace emu;  // example code; library code never does this

const MacAddress kMacA = MacAddress::Parse("02:00:00:00:00:0a").value();
const MacAddress kMacB = MacAddress::Parse("02:00:00:00:00:0b").value();

struct Flow {
  const char* label;
  Packet frame;
};

std::vector<Flow> DemoTraffic() {
  std::vector<Flow> flows;
  flows.push_back({"ssh   10.0.0.5 -> 10.0.1.1:22/tcp",
                   MakeTcpSegment({kMacB, kMacA, Ipv4Address(10, 0, 0, 5),
                                   Ipv4Address(10, 0, 1, 1), 50001, 22, 1, 0,
                                   TcpFlags::kSyn})});
  flows.push_back({"http  10.0.0.5 -> 10.0.1.1:80/tcp",
                   MakeTcpSegment({kMacB, kMacA, Ipv4Address(10, 0, 0, 5),
                                   Ipv4Address(10, 0, 1, 1), 50002, 80, 1, 0,
                                   TcpFlags::kSyn})});
  flows.push_back({"https 192.168.9.9 -> 10.0.1.1:443/tcp",
                   MakeTcpSegment({kMacB, kMacA, Ipv4Address(192, 168, 9, 9),
                                   Ipv4Address(10, 0, 1, 1), 50003, 443, 1, 0,
                                   TcpFlags::kSyn})});
  flows.push_back({"dns   10.0.0.5 -> 10.0.1.1:53/udp",
                   MakeUdpPacket({kMacB, kMacA, Ipv4Address(10, 0, 0, 5),
                                  Ipv4Address(10, 0, 1, 1), 50004, 53},
                                 std::vector<u8>{1})});
  flows.push_back({"ntp   10.0.0.6 -> 10.0.1.1:123/udp",
                   MakeUdpPacket({kMacB, kMacA, Ipv4Address(10, 0, 0, 6),
                                  Ipv4Address(10, 0, 1, 1), 50005, 123},
                                 std::vector<u8>{1})});
  return flows;
}

}  // namespace

int main(int argc, char** argv) {
  std::string script;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      script += std::string(argv[i]) + "\n";
    }
  } else {
    script =
        "# demo policy: drop web traffic, drop everything from 192.168.0.0/16\n"
        "-A FORWARD -p tcp --dport 80:443 -j DROP\n"
        "-A FORWARD -s 192.168.0.0/16 -j DROP\n";
  }

  auto ruleset = ParseIptablesScript(script);
  if (!ruleset.ok()) {
    std::fprintf(stderr, "bad ruleset: %s\n", ruleset.status().ToString().c_str());
    return 1;
  }

  std::printf("== L3-L4 filter in front of the learning switch ==\n\nactive rules:\n");
  for (const FilterRule& rule : ruleset->rules) {
    std::printf("  %s\n", rule.ToString().c_str());
  }
  std::printf("  default: %s\n\n",
              ruleset->default_action == FilterRule::Action::kAccept ? "ACCEPT" : "DROP");

  L3L4FilterConfig config;
  config.rules = ruleset->rules;
  config.default_action = ruleset->default_action;
  L3L4Filter service(config);
  FpgaTarget target(service);

  for (auto& flow : DemoTraffic()) {
    const u64 accepted_before = service.accepted();
    target.Inject(0, std::move(flow.frame));
    target.Run(100'000);
    target.TakeEgress();
    std::printf("  %-42s %s\n", flow.label,
                service.accepted() > accepted_before ? "forwarded" : "DROPPED by filter");
  }

  std::printf("\nfilter stats: %llu accepted, %llu filtered; filter core: %s\n",
              static_cast<unsigned long long>(service.accepted()),
              static_cast<unsigned long long>(service.filtered()),
              service.Resources().ToString().c_str());
  return 0;
}
