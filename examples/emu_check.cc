// emu-check: run every example design plus the full NetFPGA pipeline under
// the hazard monitor and report design-rule violations.
//
//   ./build/examples/emu_check             # run all designs, exit 1 on findings
//   ./build/examples/emu_check --list      # list designs and checks
//   ./build/examples/emu_check --dot nat   # also dump nat's dependency graph
//
// Each scenario instantiates a real design (the same construction as the
// corresponding example binary), attaches a HazardMonitor to its Simulator,
// drives representative traffic, then runs the static combinational-ordering
// analysis over the observed dependency graph. Findings — multi-driven
// register, combinational race, read-of-uninitialized, lost backpressure,
// runaway process, post-mortem Step, combinational loop — are reported in
// the shared emu-lint finding shape. A clean exit is the repo's design-rule
// gate, wired into CI.
//
// Exit codes (the shared lint contract, src/analysis/finding.h):
//   0  clean — no Severity::kError finding anywhere
//   1  at least one error finding (warnings alone never fail the run)
//   2  usage/configuration error: bad flag, unparsable --faults plan, or the
//      binary was built with -DEMU_ANALYSIS=OFF and cannot analyze at all
#include <cstdio>
#include <cstring>
#include <functional>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "src/analysis/finding.h"
#include "src/analysis/hazard.h"
#include "src/analysis/hazard_monitor.h"

#ifdef EMU_ANALYSIS

#include "src/core/targets.h"
#include "src/debug/controller.h"
#include "src/fault/fault_registry.h"
#include "src/fault/frame_impairer.h"
#include "src/hdl/simulator.h"
#include "src/ip/pearson_hash.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/services/iptables_cli.h"
#include "src/services/learning_switch.h"
#include "src/services/memcached_service.h"
#include "src/services/nat_service.h"
#include "src/sim/memaslap.h"

namespace {

using namespace emu;  // example code; library code never does this

struct ScenarioResult {
  std::vector<Finding> findings;
  std::string summary;
  bool usage_error = false;  // bad CLI input (e.g. --faults plan): exit 2
};

// Runs `drive` against a monitor attached to `sim`, then the static pass.
// Every scenario funnels through here so the reporting shape is identical:
// each HazardReport becomes a shared Finding tagged with the design name.
ScenarioResult Observe(const std::string& design, Simulator& sim, bool dot,
                       const std::function<void()>& drive) {
  HazardMonitor monitor(sim);
  monitor.set_echo(true);
  drive();
  monitor.AnalyzeCombinationalGraph();
  if (dot) {
    monitor.DumpDot(std::cout);
  }
  std::string summary = monitor.Summary();
  while (!summary.empty() && summary.back() == '\n') {
    summary.pop_back();
  }
  ScenarioResult result;
  result.summary = std::move(summary);
  for (const HazardReport& report : monitor.reports()) {
    result.findings.push_back(FindingFromReport(report, design));
  }
  return result;
}

void Merge(ScenarioResult& into, ScenarioResult from) {
  into.findings.insert(into.findings.end(),
                       std::make_move_iterator(from.findings.begin()),
                       std::make_move_iterator(from.findings.end()));
  into.usage_error = into.usage_error || from.usage_error;
}

// --- Scenario: L2 learning switch (quickstart) on the full pipeline ---
ScenarioResult CheckLearningSwitch(bool dot) {
  const MacAddress alice = MacAddress::Parse("02:00:00:00:00:0a").value();
  const MacAddress bob = MacAddress::Parse("02:00:00:00:00:0b").value();
  const auto frame = [](MacAddress dst, MacAddress src) {
    return MakeUdpPacket(
        {dst, src, Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 4000, 9},
        std::vector<u8>{'h', 'i'});
  };
  LearningSwitch service;
  FpgaTarget target(service);
  return Observe("learning_switch", target.sim(), dot, [&] {
    target.Inject(0, frame(bob, alice));  // flood
    target.RunUntilEgressCount(3, 100'000);
    target.Inject(2, frame(alice, bob));  // learn + unicast back
    target.RunUntilEgressCount(4, 100'000);
    target.Inject(0, frame(bob, alice));  // unicast
    target.RunUntilEgressCount(5, 100'000);
  });
}

// --- Scenario: iptables-style L3-L4 filter in front of the switch ---
ScenarioResult CheckL3L4Filter(bool dot) {
  auto ruleset = ParseIptablesScript(
      "-A FORWARD -p tcp --dport 80:443 -j DROP\n"
      "-A FORWARD -s 192.168.0.0/16 -j DROP\n");
  L3L4FilterConfig config;
  config.rules = ruleset->rules;
  config.default_action = ruleset->default_action;
  L3L4Filter service(config);
  FpgaTarget target(service);
  const MacAddress a = MacAddress::Parse("02:00:00:00:00:0a").value();
  const MacAddress b = MacAddress::Parse("02:00:00:00:00:0b").value();
  return Observe("l3l4_filter", target.sim(), dot, [&] {
    target.Inject(0, MakeTcpSegment({b, a, Ipv4Address(10, 0, 0, 5),
                                     Ipv4Address(10, 0, 1, 1), 50001, 22, 1, 0,
                                     TcpFlags::kSyn}));
    target.Inject(0, MakeTcpSegment({b, a, Ipv4Address(10, 0, 0, 5),
                                     Ipv4Address(10, 0, 1, 1), 50002, 80, 1, 0,
                                     TcpFlags::kSyn}));
    target.Inject(0, MakeUdpPacket({b, a, Ipv4Address(10, 0, 0, 5),
                                    Ipv4Address(10, 0, 1, 1), 50004, 53},
                                   std::vector<u8>{1}));
    target.Run(100'000);
    target.TakeEgress();
  });
}

// --- Scenario: NAT on both the hardware and software kernels (§3.3) ---
ScenarioResult CheckNat(bool dot) {
  NatConfig config;
  const MacAddress host_mac = MacAddress::Parse("02:00:00:00:11:10").value();
  const Ipv4Address host_ip(192, 168, 1, 10);
  const auto outbound = [&] {
    return MakeUdpPacket(
        {config.internal_mac, host_mac, host_ip, Ipv4Address(8, 8, 8, 8), 5000, 53},
        std::vector<u8>{'p', 'i', 'n', 'g'});
  };

  ScenarioResult result;
  {
    NatService service(config);
    FpgaTarget target(service);
    ScenarioResult fpga = Observe("nat.fpga", target.sim(), dot, [&] {
      Packet frame = outbound();
      frame.set_src_port(1);
      target.SendAndCollect(1, std::move(frame));
    });
    result.summary = "fpga: " + fpga.summary;
    Merge(result, std::move(fpga));
  }
  {
    NatService service(config);
    CpuTarget target(service);
    ScenarioResult cpu = Observe("nat.cpu", target.sim(), false, [&] {
      Packet frame = outbound();
      frame.set_src_port(1);
      target.Deliver(std::move(frame));
    });
    result.summary += " | cpu: " + cpu.summary;
    Merge(result, std::move(cpu));
  }
  return result;
}

// --- Scenario: four-core memcached under a memaslap-style workload ---
ScenarioResult CheckMemcached(bool dot) {
  MemcachedConfig config;
  config.cores = 4;
  MemcachedService service(config);
  FpgaTarget target(service);

  MemaslapConfig workload;
  workload.server_mac = config.mac;
  workload.server_ip = config.ip;
  workload.key_space = 64;
  MemaslapLoadgen loadgen(workload);

  return Observe("memcached", target.sim(), dot, [&] {
    for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
      target.SendAndCollect(0, loadgen.PrewarmFrame(i));
    }
    for (usize i = 0; i < 200; ++i) {
      target.SendAndCollect(static_cast<u8>(i % 4), loadgen.WorkloadFrame(i));
    }
    target.TakeEgress();
  });
}

// --- Scenario: directed memcached (the §5.5 debug session, sans bug) ---
ScenarioResult CheckDebugSession(bool dot) {
  const MacAddress director = MacAddress::Parse("02:00:00:00:d0:01").value();
  const MacAddress client = MacAddress::Parse("02:00:00:00:cc:01").value();

  MemcachedConfig config;
  MemcachedService service(config);
  DirectionController controller("main_loop");
  service.AttachController(&controller);
  DirectedService directed(service, controller);
  FpgaTarget target(directed);

  const auto mc_frame = [&](const McRequest& request) {
    McRequest copy = request;
    copy.protocol = config.protocol;
    return MakeUdpPacket({config.mac, client, Ipv4Address(10, 0, 0, 9), config.ip,
                          31000, kMemcachedPort},
                         BuildMcRequest(copy));
  };

  return Observe("debug_session", target.sim(), dot, [&] {
    McRequest set;
    set.op = McOpcode::kSet;
    set.key = "image";
    set.value = std::string(64, 'x');
    target.SendAndCollect(0, mc_frame(set));

    McRequest get;
    get.op = McOpcode::kGet;
    get.key = "image";
    target.SendAndCollect(0, mc_frame(get));

    // Mix direction packets in with normal traffic, as §5.5 does.
    target.SendAndCollect(
        0, MakeDirectionPacket(config.mac, director, DirectionPacketKind::kCommand,
                               1, "print checksum"));
    target.SendAndCollect(
        0, MakeDirectionPacket(config.mac, director, DirectionPacketKind::kCommand,
                               2, "count calls handle_request"));
    target.SendAndCollect(0, mc_frame(get));
    target.TakeEgress();
  });
}

// Client half of the Fig. 5 handshake, inlined as in ip_test.cc (coroutines
// cannot await sub-coroutines without an awaitable wrapper).
HwProcess SeedBytes(PearsonHashIp& core, std::span<const u8> data, Reg<bool>& done) {
  for (u8 byte : data) {
    while (!core.init_hash_ready().Read()) {
      co_await Pause();
    }
    core.data_in().Write(byte);
    core.init_hash_enable().Write(true);
    co_await Pause();
    core.init_hash_enable().Write(false);
    co_await Pause();
  }
  done.Write(true);
  for (;;) {
    co_await Pause();
  }
}

// --- Scenario: PearsonHashIp handshake micro-design (Fig. 5) ---
ScenarioResult CheckPearsonIp(bool dot) {
  Simulator sim;
  PearsonHashIp core(sim, "pearson");
  Reg<bool> done(sim, "pearson.done", false);
  const std::array<u8, 3> data = {'e', 'm', 'u'};
  sim.AddProcess(core.MakeProcess(), "pearson.core");
  sim.AddProcess(SeedBytes(core, data, done), "pearson.client");
  return Observe("pearson_ip", sim, dot, [&] {
    if (!sim.RunUntil([&] { return done.Read(); }, 200)) {
      std::fprintf(stderr, "emu_check: pearson handshake stalled\n");
    }
    sim.Run(2);
  });
}

// --- Scenario: services under an armed fault plan (emu-fault) ---
//
// The design rule being checked: injected faults must surface as degradation
// (drops, rejects, backpressure), never as kernel-rule violations. A service
// that turns a FIFO stall into a blind Push or an SEU into an uninitialized
// read fails here. `--faults <plan>` overrides the default plan.
std::string g_fault_plan_text;  // set by --faults

ScenarioResult CheckFaultInjection(bool dot) {
  const std::string plan_text =
      !g_fault_plan_text.empty()
          ? g_fault_plan_text
          : "ingress.drop bernoulli 0.02; ingress.corrupt bernoulli 0.02; "
            "nat.table_full burst 3000 9000 0.5; nat.flows bernoulli 0.001; "
            "memcached.queue* burst 3000 9000 0.02 150; "
            "memcached.csum.fold oneshot 5000";
  const auto plan = ParseFaultPlan(plan_text);
  if (!plan.ok()) {
    ScenarioResult bad;
    bad.usage_error = true;
    bad.summary = "bad --faults plan: " + plan.status().ToString();
    return bad;
  }

  // Drives frames through an impaired ingress tap with the registry attached
  // to the simulator (ticked per executed edge) — a miniature of
  // examples/chaos_soak.
  const auto soak = [&plan](FpgaTarget& target, Service& service,
                            const std::function<Packet(usize)>& factory, u8 port) {
    FaultRegistry registry(7);
    service.RegisterFaultPoints(registry);
    FrameImpairer tap(registry, "ingress");
    registry.ArmPlan(*plan);
    target.sim().AttachFaultRegistry(&registry);
    usize index = 0;
    constexpr Cycle kGap = 97;
    for (Cycle cycle = 0; cycle < 15'000; cycle += kGap) {
      Packet frame = factory(index++);
      const FrameImpairer::Decision d = tap.Decide(target.sim().now(), frame.size());
      if (!d.drop) {
        if (d.corrupt_bit != FrameImpairer::kNoCorrupt) {
          FrameImpairer::FlipBit(frame, d.corrupt_bit);
        }
        target.Inject(port, std::move(frame));
      }
      target.Run(std::min(kGap, 15'000 - cycle));
    }
    registry.DisarmAll();
    target.Run(100'000);
    target.TakeEgress();
    target.sim().AttachFaultRegistry(nullptr);
  };

  ScenarioResult result;
  {
    NatConfig config;
    const MacAddress host_mac = MacAddress::Parse("02:00:00:00:11:10").value();
    NatService service(config);
    FpgaTarget target(service);
    ScenarioResult nat = Observe("fault.nat", target.sim(), dot, [&] {
      soak(target, service, [&](usize i) {
        Packet frame = MakeUdpPacket(
            {config.internal_mac, host_mac, Ipv4Address(192, 168, 1, 10),
             Ipv4Address(8, 8, 8, 8), static_cast<u16>(5000 + i), 53},
            std::vector<u8>{'p'});
        frame.set_src_port(1);
        return frame;
      }, /*port=*/1);
    });
    result.summary = "nat: " + nat.summary;
    Merge(result, std::move(nat));
  }
  {
    MemcachedConfig config;
    config.cores = 4;
    MemcachedService service(config);
    FpgaTarget target(service);
    MemaslapConfig workload;
    workload.server_mac = config.mac;
    workload.server_ip = config.ip;
    workload.key_space = 64;
    MemaslapLoadgen loadgen(workload);
    ScenarioResult mc = Observe("fault.memcached", target.sim(), false, [&] {
      for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
        target.SendAndCollect(0, loadgen.PrewarmFrame(i));
      }
      soak(target, service, [&](usize i) { return loadgen.WorkloadFrame(i); }, 0);
    });
    result.summary += " | memcached: " + mc.summary;
    Merge(result, std::move(mc));
  }
  return result;
}

struct Scenario {
  const char* name;
  const char* description;
  ScenarioResult (*run)(bool dot);
};

constexpr Scenario kScenarios[] = {
    {"learning_switch", "L2 learning switch on the NetFPGA pipeline", CheckLearningSwitch},
    {"l3l4_filter", "iptables-style filter in front of the switch", CheckL3L4Filter},
    {"nat", "NAT on the hardware and software kernels", CheckNat},
    {"memcached", "four-core memcached under memaslap load", CheckMemcached},
    {"debug_session", "directed memcached with direction packets", CheckDebugSession},
    {"pearson_ip", "PearsonHashIp ready/enable handshake", CheckPearsonIp},
    {"fault_injection", "NAT + memcached under an armed fault plan", CheckFaultInjection},
};

}  // namespace

int main(int argc, char** argv) {
  std::string dot_target;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) {
      std::printf("designs:\n");
      for (const Scenario& s : kScenarios) {
        std::printf("  %-16s %s\n", s.name, s.description);
      }
      std::printf("checks:  (static = emu_lint pass, dynamic = this binary)\n");
      for (const CheckInfo& info : CheckRegistry()) {
        const char* passes = info.static_pass && info.dynamic_pass ? "static+dynamic"
                             : info.static_pass                    ? "static"
                                                                   : "dynamic";
        std::printf("  %-18s %-15s %s\n", info.name, passes, info.description);
      }
      return kLintExitClean;
    }
    if (std::strcmp(argv[i], "--dot") == 0 && i + 1 < argc) {
      dot_target = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--faults") == 0 && i + 1 < argc) {
      g_fault_plan_text = argv[++i];
      continue;
    }
    std::fprintf(stderr,
                 "usage: emu_check [--list] [--dot <design>] [--faults \"<plan>\"]\n");
    return kLintExitUsage;
  }

  std::printf("== emu-check: design-rule analysis over %zu designs ==\n\n",
              std::size(kScenarios));
  std::vector<Finding> all;
  for (const Scenario& s : kScenarios) {
    ScenarioResult result = s.run(dot_target == s.name);
    std::printf("%-16s %s\n", s.name, result.summary.c_str());
    if (result.usage_error) {
      std::fprintf(stderr, "emu-check: %s\n", result.summary.c_str());
      return kLintExitUsage;
    }
    all.insert(all.end(), std::make_move_iterator(result.findings.begin()),
               std::make_move_iterator(result.findings.end()));
  }
  if (!all.empty()) {
    std::printf("\n");
    FormatFindingsText(std::cout, all);
  }
  const usize errors = CountErrors(all);
  if (errors != 0) {
    std::printf("\nemu-check: FAILED with %zu error finding(s), %zu total\n", errors,
                all.size());
  } else if (!all.empty()) {
    std::printf("\nemu-check: %zu warning finding(s), no errors\n", all.size());
  } else {
    std::printf("\nemu-check: all designs clean\n");
  }
  return LintExitCode(all);
}

#else  // !EMU_ANALYSIS

int main() {
  std::fprintf(stderr,
               "emu_check: built with -DEMU_ANALYSIS=OFF; the kernel has no "
               "analysis hooks.\nReconfigure with -DEMU_ANALYSIS=ON (the "
               "default) to run the checker.\n");
  return emu::kLintExitUsage;
}

#endif  // EMU_ANALYSIS
