// emu-lint: whole-design static elaboration and compile-time checks.
//
// Where emu_check must *drive traffic* to observe hazards, emu_lint walks the
// constructed design before a single Step() runs: every example design is
// instantiated, its elab::Catalog (filled in by the Reg/Wire/SyncFifo/BRAM/
// CAM constructors and the services' IoDecl declarations) is materialized
// into an ElabGraph, and the static check suite runs over the graph. The
// zero-traffic pass catches the whole-design mistakes dynamic monitoring
// structurally cannot — dead signals no test pokes, FIFO backpressure rings
// that only close under load, fault-plan patterns that match nothing.
//
//   ./build/examples/emu_lint                 # lint every design
//   ./build/examples/emu_lint nat memcached   # just these designs
//   ./build/examples/emu_lint --list          # check table (static/dynamic)
//   ./build/examples/emu_lint --json          # findings as a JSON array
//   ./build/examples/emu_lint --dot nat       # dump nat's elaborated graph
//   ./build/examples/emu_lint --suppress "DEADSIGNAL:dbg_*,COMBRACE"
//   ./build/examples/emu_lint --faults "nat.flows bernoulli 0.1"
//   ./build/examples/emu_lint --spec specs/chain_soak.spec   # CHAINSPEC checks
//
// Exit codes (the shared lint contract, src/analysis/finding.h):
//   0  clean — no unsuppressed Severity::kError finding
//   1  at least one unsuppressed error finding (warnings never fail the run)
//   2  usage error (unknown flag/design, unparsable plan or suppression)
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/elab/elab_graph.h"
#include "src/analysis/finding.h"
#include "src/analysis/hazard.h"
#include "src/chain/chain_lint.h"
#include "src/core/targets.h"
#include "src/debug/controller.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fault_registry.h"
#include "src/hdl/signal.h"
#include "src/hdl/simulator.h"
#include "src/ip/pearson_hash.h"
#include "src/services/iptables_cli.h"
#include "src/services/l3l4_filter.h"
#include "src/services/learning_switch.h"
#include "src/services/memcached_service.h"
#include "src/services/nat_service.h"
#include "src/sim/topology.h"

namespace {

using namespace emu;  // example code; library code never does this

std::string g_fault_plan_text;  // set by --faults; also checked standalone

// Elaborates `sim` and runs the full static suite; appends findings. When
// `dot` is set the elaborated graph goes to stdout first.
std::vector<Finding> Elaborate(const Simulator& sim, const std::string& design, bool dot) {
  const elab::ElabGraph graph = elab::ElabGraph::FromSimulator(sim, design);
  if (dot) {
    graph.DumpDot(std::cout);
  }
  std::vector<Finding> findings = graph.Check();
  // A design that cannot be statically scheduled is COMBLOOP territory and
  // already reported; surface the schedule verdict only if it disagrees.
  const elab::ScheduleResult schedule = graph.StaticSchedule();
  if (!schedule.ok && findings.empty()) {
    Finding f;
    f.check = HazardKindName(HazardKind::kCombLoop);
    f.severity = Severity::kError;
    f.design = design;
    f.message = schedule.error;
    findings.push_back(std::move(f));
  }
  return findings;
}

// --- Designs -----------------------------------------------------------------
//
// Each lint target constructs the same design as the corresponding example
// binary and elaborates it without driving a single frame.

std::vector<Finding> LintLearningSwitch(bool dot) {
  LearningSwitch service;
  FpgaTarget target(service);
  return Elaborate(target.sim(), "learning_switch", dot);
}

std::vector<Finding> LintL3L4Filter(bool dot) {
  auto ruleset = ParseIptablesScript(
      "-A FORWARD -p tcp --dport 80:443 -j DROP\n"
      "-A FORWARD -s 192.168.0.0/16 -j DROP\n");
  L3L4FilterConfig config;
  config.rules = ruleset->rules;
  config.default_action = ruleset->default_action;
  L3L4Filter service(config);
  FpgaTarget target(service);
  return Elaborate(target.sim(), "l3l4_filter", dot);
}

std::vector<Finding> LintNat(bool dot) {
  std::vector<Finding> findings;
  {
    NatConfig config;
    NatService service(config);
    FpgaTarget target(service);
    std::vector<Finding> fpga = Elaborate(target.sim(), "nat.fpga", dot);
    findings.insert(findings.end(), std::make_move_iterator(fpga.begin()),
                    std::make_move_iterator(fpga.end()));
  }
  {
    NatConfig config;
    NatService service(config);
    CpuTarget target(service);
    std::vector<Finding> cpu = Elaborate(target.sim(), "nat.cpu", false);
    findings.insert(findings.end(), std::make_move_iterator(cpu.begin()),
                    std::make_move_iterator(cpu.end()));
  }
  return findings;
}

std::vector<Finding> LintMemcached(bool dot) {
  MemcachedConfig config;
  config.cores = 4;
  MemcachedService service(config);
  FpgaTarget target(service);
  return Elaborate(target.sim(), "memcached", dot);
}

std::vector<Finding> LintDebugSession(bool dot) {
  MemcachedConfig config;
  MemcachedService service(config);
  DirectionController controller("main_loop");
  service.AttachController(&controller);
  DirectedService directed(service, controller);
  FpgaTarget target(directed);
  return Elaborate(target.sim(), "debug_session", dot);
}

std::vector<Finding> LintPearsonIp(bool dot) {
  Simulator sim;
  PearsonHashIp core(sim, "pearson");
  core.DeclareIo(sim.AddProcess(core.MakeProcess(), "pearson.core"));
  // The Fig. 5 seeding client is the other half of the handshake: without it
  // the core's enable/data_in registers have no producer and DEADPROCESS
  // fires (correctly — a core with no client can never receive work).
  const usize client = sim.AddProcess(PearsonHashIp::Seed(core, 0x5a), "pearson.client");
  elab::IoDecl(sim.catalog(), client)
      .Reads(&core.init_hash_ready())
      .Writes(&core.init_hash_enable())
      .Writes(&core.data_in())
      .Reads(&core.hash_out());
  return Elaborate(sim, "pearson_ip", dot);
}

// SHARDCUT: a sharded star around the NAT. Every host-node link direction
// crosses a shard boundary; the check validates each recorded cut's
// conservative lookahead. The per-shard simulators elaborate too.
std::vector<Finding> LintShardedNat(bool dot) {
  NatConfig config;
  NatService service(config);
  const std::vector<HostSpec> specs = {
      {"ext", MacAddress::FromU48(0x02ffffffff01), Ipv4Address(8, 8, 8, 8)},
      {"int", MacAddress::FromU48(0x020000001110), Ipv4Address(192, 168, 1, 10)}};
  ShardedTopology topo(service, specs);
  std::vector<Finding> findings =
      Elaborate(topo.node(0).target().sim(), "sharded_nat.node0", dot);
  elab::CheckShardCuts(topo.runner(), "sharded_nat", findings);
  return findings;
}

// FAULTTARGET: the default chaos plan (or --faults) validated against the
// points the NAT + memcached designs actually register.
std::vector<Finding> LintFaultPlan(bool dot) {
  (void)dot;
  const std::string plan_text =
      !g_fault_plan_text.empty()
          ? g_fault_plan_text
          : "nat.table_full burst 3000 9000 0.5; nat.flows bernoulli 0.001; "
            "memcached.queue* burst 3000 9000 0.02 150; "
            "memcached.csum.fold oneshot 5000";
  const auto plan = ParseFaultPlan(plan_text);
  std::vector<Finding> findings;
  if (!plan.ok()) {
    Finding f;
    f.check = HazardKindName(HazardKind::kFaultTarget);
    f.severity = Severity::kError;
    f.design = "fault_plan";
    f.message = plan.status().ToString();
    findings.push_back(std::move(f));
    return findings;
  }
  // Points are created when the service instantiates onto a target, so the
  // registry must see fully-built designs (same construction as emu_check).
  FaultRegistry registry(1);
  NatConfig nat_config;
  NatService nat(nat_config);
  FpgaTarget nat_target(nat);
  nat.RegisterFaultPoints(registry);
  MemcachedConfig mc_config;
  mc_config.cores = 4;
  MemcachedService memcached(mc_config);
  FpgaTarget mc_target(memcached);
  memcached.RegisterFaultPoints(registry);
  elab::CheckFaultPlanTargets(*plan, registry, "fault_plan", findings);
  return findings;
}

// FAULTTARGET over topology-scoped events: the default gossip chaos plan
// (or --faults) validated against the gossip_soak cluster's host names —
// unknown hosts are errors, lifecycle-order oddities (restart without crash,
// double crash, crash inside a partition window naming the host) warnings.
std::vector<Finding> LintGossipPlan(bool dot) {
  (void)dot;
  const std::string plan_text =
      !g_fault_plan_text.empty()
          ? g_fault_plan_text
          : "crash host=h2 at=20ms; restart host=h2 at=120ms; "
            "partition {h0,h1}|{h3,h4} from=40ms to=70ms";
  const auto plan = ParseFaultPlan(plan_text);
  std::vector<Finding> findings;
  if (!plan.ok()) {
    Finding f;
    f.check = HazardKindName(HazardKind::kFaultTarget);
    f.severity = Severity::kError;
    f.design = "gossip_plan";
    f.message = plan.status().ToString();
    findings.push_back(std::move(f));
    return findings;
  }
  // The gossip_soak example names its cluster h0..h7 (examples/gossip_soak.cc).
  std::vector<std::string> hosts;
  for (int i = 0; i < 8; ++i) {
    hosts.push_back("h" + std::to_string(i));
  }
  elab::CheckTopoFaults(*plan, hosts, "gossip_plan", findings);
  return findings;
}

struct LintDesign {
  const char* name;
  const char* description;
  std::vector<Finding> (*run)(bool dot);
};

constexpr LintDesign kDesigns[] = {
    {"learning_switch", "L2 learning switch on the NetFPGA pipeline", LintLearningSwitch},
    {"l3l4_filter", "iptables-style filter in front of the switch", LintL3L4Filter},
    {"nat", "NAT elaborated on the hardware and software kernels", LintNat},
    {"memcached", "four-core memcached pipeline", LintMemcached},
    {"debug_session", "directed memcached with the CASP filter", LintDebugSession},
    {"pearson_ip", "PearsonHashIp core handshake registers", LintPearsonIp},
    {"sharded_nat", "sharded NAT star: cut lookahead + node elaboration", LintShardedNat},
    {"fault_plan", "chaos plan patterns vs registered fault points", LintFaultPlan},
    {"gossip_plan", "topology chaos events vs the gossip cluster's hosts", LintGossipPlan},
};

void PrintCheckTable() {
  std::printf("%-18s %-8s %-7s %-8s %s\n", "check", "severity", "static", "dynamic",
              "description");
  for (const CheckInfo& info : CheckRegistry()) {
    std::printf("%-18s %-8s %-7s %-8s %s\n", info.name,
                info.default_severity == Severity::kError ? "error" : "warning",
                info.static_pass ? "yes" : "-", info.dynamic_pass ? "yes" : "-",
                info.description);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string dot_target;
  std::string suppress_text;
  std::vector<std::string> selected;
  std::vector<std::string> spec_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      PrintCheckTable();
      return kLintExitClean;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--dot" && i + 1 < argc) {
      dot_target = argv[++i];
      continue;
    }
    if (arg == "--suppress" && i + 1 < argc) {
      if (!suppress_text.empty()) {
        suppress_text += '\n';
      }
      suppress_text += argv[++i];
      continue;
    }
    if (arg == "--faults" && i + 1 < argc) {
      g_fault_plan_text = argv[++i];
      continue;
    }
    if (arg == "--spec" && i + 1 < argc) {
      spec_paths.push_back(argv[++i]);
      continue;
    }
    if (!arg.empty() && arg[0] != '-') {
      selected.push_back(arg);
      continue;
    }
    std::fprintf(stderr,
                 "usage: emu_lint [--list] [--json] [--dot <design>] "
                 "[--suppress \"SPEC\"] [--faults \"<plan>\"] "
                 "[--spec <file>]... [design...]\n");
    return kLintExitUsage;
  }
  for (const std::string& name : selected) {
    const bool known = std::any_of(std::begin(kDesigns), std::end(kDesigns),
                                   [&](const LintDesign& d) { return name == d.name; });
    if (!known) {
      std::fprintf(stderr, "emu_lint: unknown design '%s' (see --list)\n", name.c_str());
      return kLintExitUsage;
    }
  }

  // --faults also scopes the CHAINSPEC placement-vs-crash check when --spec
  // files are given; an unparsable plan is a usage error in that mode.
  FaultPlan spec_plan;
  bool has_spec_plan = false;
  if (!spec_paths.empty() && !g_fault_plan_text.empty()) {
    const auto plan = ParseFaultPlan(g_fault_plan_text);
    if (!plan.ok()) {
      std::fprintf(stderr, "emu_lint: --faults: %s\n", plan.status().ToString().c_str());
      return kLintExitUsage;
    }
    spec_plan = *plan;
    has_spec_plan = true;
  }

  std::vector<Finding> all;
  // `--spec` alone lints only the spec files; designs still run when named.
  const bool run_designs = spec_paths.empty() || !selected.empty();
  for (const LintDesign& design : kDesigns) {
    if (!run_designs) {
      break;
    }
    if (!selected.empty() &&
        std::find(selected.begin(), selected.end(), design.name) == selected.end()) {
      continue;
    }
    std::vector<Finding> findings = design.run(dot_target == design.name);
    if (!json) {
      std::printf("%-16s %zu finding(s)\n", design.name, findings.size());
    }
    all.insert(all.end(), std::make_move_iterator(findings.begin()),
               std::make_move_iterator(findings.end()));
  }
  for (const std::string& path : spec_paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "emu_lint: cannot read spec file '%s'\n", path.c_str());
      return kLintExitUsage;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<Finding> findings =
        CheckChainSpecText(text.str(), path, has_spec_plan ? &spec_plan : nullptr);
    if (!json) {
      std::printf("%-16s %zu finding(s)\n", path.c_str(), findings.size());
    }
    all.insert(all.end(), std::make_move_iterator(findings.begin()),
               std::make_move_iterator(findings.end()));
  }

  usize suppressed = 0;
  if (!suppress_text.empty()) {
    all = ApplySuppressions(std::move(all), ParseSuppressions(suppress_text), &suppressed);
  }

  if (json) {
    FormatFindingsJson(std::cout, all);
  } else {
    if (!all.empty()) {
      std::printf("\n");
      FormatFindingsText(std::cout, all);
    }
    const usize errors = CountErrors(all);
    std::printf("\nemu-lint: %zu finding(s), %zu error(s), %zu suppressed\n", all.size(),
                errors, suppressed);
  }
  return LintExitCode(all);
}
