// Quickstart: an L2 learning switch on the simulated NetFPGA, in ~60 lines
// of user code.
//
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
//
// Builds the Emu learning switch (Fig. 2), drops it into the NetFPGA SUME
// reference pipeline (Fig. 10), and shows the classic flood -> learn ->
// unicast progression plus the core's resource bill.
#include <cstdio>

#include "src/core/targets.h"
#include "src/net/ethernet.h"
#include "src/net/udp.h"
#include "src/services/learning_switch.h"
#include "src/sim/trace_dump.h"

namespace {

using namespace emu;  // example code; library code never does this

Packet Frame(MacAddress dst, MacAddress src) {
  // A small, well-formed UDP datagram so the trace decoder has something to say.
  return MakeUdpPacket({dst, src, Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 4000, 9},
                       std::vector<u8>{'h', 'i'});
}

}  // namespace

int main() {
  const MacAddress alice = MacAddress::Parse("02:00:00:00:00:0a").value();
  const MacAddress bob = MacAddress::Parse("02:00:00:00:00:0b").value();

  // One service, one target: the same LearningSwitch source would also run
  // on CpuTarget or inside the event-driven simulator.
  LearningSwitch service;
  FpgaTarget target(service);
  TraceDump trace;

  std::printf("== Emu quickstart: learning switch on the simulated NetFPGA ==\n\n");

  // 1. Alice (port 0) talks to Bob, whom the switch has never seen: flood.
  target.Inject(0, Frame(bob, alice));
  target.RunUntilEgressCount(3, 100'000);
  auto egress = target.TakeEgress();
  std::printf("1. alice->bob with an empty MAC table: flooded to %zu ports\n", egress.size());
  for (const auto& e : egress) {
    trace.Capture(e.frame.egress_time(), "flood:p" + std::to_string(e.port), e.frame);
  }

  // 2. Bob (port 2) replies: the switch learned Alice's port, so unicast.
  target.Inject(2, Frame(alice, bob));
  target.RunUntilEgressCount(1, 100'000);
  egress = target.TakeEgress();
  std::printf("2. bob->alice: unicast to port %u (learned)\n", egress[0].port);
  trace.Capture(egress[0].frame.egress_time(), "unicast", egress[0].frame);

  // 3. Alice again: now both MACs are learned.
  target.Inject(0, Frame(bob, alice));
  target.RunUntilEgressCount(1, 100'000);
  egress = target.TakeEgress();
  std::printf("3. alice->bob again: unicast to port %u\n\n", egress[0].port);

  std::printf("MAC table: %llu learned, %llu lookups, %llu hits\n",
              static_cast<unsigned long long>(service.learned()),
              static_cast<unsigned long long>(service.lookups()),
              static_cast<unsigned long long>(service.hits()));

  const ResourceUsage core = target.pipeline().CoreResources();
  std::printf("Main logical core: %s (paper's Table 3 row: 3509 LUTs)\n",
              core.ToString().c_str());
  std::printf("Module latency (declared): %llu cycles @ 200 MHz\n\n",
              static_cast<unsigned long long>(service.ModuleLatency()));

  std::printf("Packet trace:\n%s", trace.Summary().c_str());
  return 0;
}
