// chaos_soak: every Table-4 service under randomized, seeded fault schedules.
//
// For each service (ICMP echo, TCP ping, DNS, NAT, Memcached) the harness
// builds a fresh FpgaTarget, registers the service's fault points with a
// FaultRegistry seeded from --seed, arms a fault plan (randomized from the
// seed unless --faults overrides it), and drives seeded traffic through an
// impaired ingress tap for --cycles cycles. The plan spans the fault classes
// the subsystem supports: link drop/corrupt/duplicate/reorder/delay at the
// tap, SEU bit flips in table state, FIFO stalls in the Memcached worker
// queues, NAT table exhaustion, and the §5.5 checksum fold bug.
//
// Invariants checked per service run (any violation exits nonzero):
//   - no crash and, under a sanitizer build, no sanitizer finding;
//   - no hazard report from the attached HazardMonitor (faults must surface
//     as degradation or counted drops, never as kernel-rule violations);
//   - counters balance: frames injected == egressed + pipeline drops +
//     service drops (nothing vanishes unaccounted);
//   - bounded recovery: after the plan is disarmed and the pipeline drains,
//     fresh requests are answered again within a bounded cycle budget.
//
// Determinism: with the same --seed every injection (site, cycle, detail)
// and every response byte replays exactly; --replay runs each soak twice and
// compares the fault-log and egress digests.
//
// emu-pulse additions: the soak loop samples each case's registry every
// ~1/256th of the run into a bounded TimeSeriesRecorder (the FpgaTarget has
// no EventScheduler, so sampling is manual, keyed to the cycle clock at the
// nominal 1 cycle = 1 ns the dashboards assume); --log-dir gets a dashboard
// HTML + series JSON per case. --slo CLAUSES gates each case's end-of-run
// metrics (e.g. "chaos.loss_rate <= 0.05; chaos.hazards <= 0"); --prom
// writes the last case's registry in Prometheus format, self-linted.
//
// Usage:
//   chaos_soak [--seed N] [--cycles N] [--faults "<plan>"] [--replay]
//              [--service <name>] [--slo CLAUSES] [--prom FILE] [--verbose]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/chain/stage_factory.h"
#include "src/common/rng.h"
#include "src/core/metrics.h"
#include "src/core/targets.h"
#include "src/fault/fault_registry.h"
#include "src/fault/frame_impairer.h"
#include "src/obs/dashboard.h"
#include "src/obs/slo.h"
#include "src/obs/timeseries.h"
#include "src/net/dns.h"
#include "src/net/icmp.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/sim/loadgen.h"
#include "src/sim/memaslap.h"

#ifdef EMU_ANALYSIS
#include "src/analysis/hazard_monitor.h"
#endif

namespace emu {
namespace {

const MacAddress kClientMac = MacAddress::FromU48(0x02'00'00'00'cc'99);
const Ipv4Address kClientIp(10, 0, 0, 9);

// One service under soak: construction, optional prewarm, traffic factory,
// and the metrics name of its drop counter (read through MetricsRegistry —
// the uniform counter surface, so no per-service getter plumbing).
//
// Services come from the stage factory (src/chain/stage_factory.h) and the
// traffic factories read addresses from the same Canonical*Config getters
// that configured them — one definition of each service's identity, shared
// with the chain scenarios.
struct SoakCase {
  std::string name;
  std::unique_ptr<Service> service;
  std::function<void(FpgaTarget&)> prewarm;
  FrameFactory factory;
  std::vector<u8> ports;
  std::string dropped_metric;
};

// The kinds and attrs below are compile-time constants the factory always
// accepts; a failure is a programming error, not an input error.
std::unique_ptr<Service> MustMakeService(const std::string& kind, const StageAttrs& attrs) {
  Expected<std::unique_ptr<Service>> service = MakeStageService(kind, attrs);
  if (!service.ok()) {
    std::fprintf(stderr, "chaos_soak: cannot build %s: %s\n", kind.c_str(),
                 service.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(*service);
}

SoakCase MakeIcmpCase() {
  SoakCase c;
  c.name = "icmp_echo";
  c.service = MustMakeService("icmp_echo", {});
  c.dropped_metric = "icmp.dropped";
  const IcmpEchoConfig config = CanonicalIcmpEchoConfig();
  c.factory = [config](usize i, u8) {
    return MakeIcmpEchoRequest(
        {config.mac, kClientMac, kClientIp, config.ip, static_cast<u16>(i), 0}, {});
  };
  c.ports = {0, 1, 2, 3};
  return c;
}

SoakCase MakeTcpPingCase() {
  SoakCase c;
  c.name = "tcp_ping";
  c.service = MustMakeService("tcp_ping", {});
  c.dropped_metric = "tcp_ping.dropped";
  const TcpPingConfig config = CanonicalTcpPingConfig();
  c.factory = [config](usize i, u8) {
    TcpSegmentSpec spec{config.mac,
                        kClientMac,
                        kClientIp,
                        config.ip,
                        static_cast<u16>(20000 + (i % 20000)),
                        80,
                        static_cast<u32>(i),
                        0,
                        TcpFlags::kSyn};
    return MakeTcpSegment(spec);
  };
  c.ports = {0, 1, 2, 3};
  return c;
}

SoakCase MakeDnsCase() {
  SoakCase c;
  c.name = "dns";
  // records=4 installs the same svc<i>.lab -> 10.1.0.<1+i> records the
  // factory below queries.
  c.service = MustMakeService("dns", {{"records", "4"}});
  c.dropped_metric = "dns.dropped";
  const DnsServiceConfig config = CanonicalDnsConfig();
  c.factory = [config](usize i, u8) {
    const std::string name = "svc" + std::to_string(i % 4) + ".lab";
    return MakeUdpPacket({config.mac, kClientMac, kClientIp, config.ip,
                          static_cast<u16>(5000 + i % 1000), kDnsPort},
                         BuildDnsQuery(static_cast<u16>(i), name));
  };
  c.ports = {0, 1, 2, 3};
  return c;
}

SoakCase MakeNatCase() {
  SoakCase c;
  c.name = "nat";
  // max_mappings=256: reachable exhaustion within one soak;
  // evict_idle=10000: evict-idle-first under pressure.
  c.service = MustMakeService("nat", {{"max_mappings", "256"}, {"evict_idle", "10000"}});
  c.dropped_metric = "nat.dropped";
  const NatConfig config = CanonicalNatConfig();
  const MacAddress internal_mac = MacAddress::FromU48(0x02'00'00'00'11'10);
  c.factory = [config, internal_mac](usize i, u8 port) {
    const u8 in_port = static_cast<u8>(1 + port % 3);
    Packet frame = MakeUdpPacket(
        {config.internal_mac, internal_mac,
         Ipv4Address(192, 168, 1, static_cast<u8>(2 + i % 200)),
         Ipv4Address(8, 8, 8, 8), static_cast<u16>(1024 + i % 30000), 53},
        std::vector<u8>{'q'});
    frame.set_src_port(in_port);
    return frame;
  };
  c.ports = {1, 2, 3};
  return c;
}

SoakCase MakeMemcachedCase() {
  SoakCase c;
  c.name = "memcached";
  c.service = MustMakeService("memcached", {});
  c.dropped_metric = "memcached.dropped";
  MemaslapConfig workload;
  const MemcachedConfig config = CanonicalMemcachedConfig();
  workload.server_mac = config.mac;
  workload.server_ip = config.ip;
  auto loadgen = std::make_shared<MemaslapLoadgen>(workload);
  c.prewarm = [loadgen](FpgaTarget& target) {
    for (usize i = 0; i < loadgen->prewarm_count(); ++i) {
      target.SendAndCollect(0, loadgen->PrewarmFrame(i));
    }
    target.TakeEgress();
  };
  c.factory = [loadgen](usize i, u8) { return loadgen->WorkloadFrame(i); };
  c.ports = {0, 1, 2, 3};
  return c;
}

// Randomized per-seed plan covering every fault class the services expose.
// Probabilities stay modest so most traffic flows and recovery is checkable;
// the burst window (table exhaustion + queue stalls) sits mid-run so the
// tail of the soak exercises recovery.
std::string RandomPlanText(u64 seed, u64 cycles) {
  Rng rng(seed ^ 0xC7A0'55ED'FA17'0001ull);
  const u64 burst_from = cycles / 4 + rng.NextBelow(cycles / 8 + 1);
  const u64 burst_until = burst_from + cycles / 8 + rng.NextBelow(cycles / 8 + 1);
  char buffer[1024];
  std::snprintf(
      buffer, sizeof(buffer),
      "ingress.drop bernoulli %.4f; "
      "ingress.corrupt bernoulli %.4f; "
      "ingress.dup bernoulli %.4f; "
      "ingress.reorder bernoulli %.4f; "
      "ingress.delay bernoulli %.4f %llu; "
      "nat.table_full burst %llu %llu 0.8; "
      "nat.flows bernoulli 0.00001; "
      "dns.table bernoulli 0.00001; "
      "memcached.queue* burst %llu %llu %.4f %llu; "
      "memcached.csum.fold oneshot %llu",
      0.002 + rng.NextDouble() * 0.008, 0.002 + rng.NextDouble() * 0.008,
      rng.NextDouble() * 0.004, rng.NextDouble() * 0.004,
      0.005 + rng.NextDouble() * 0.01,
      static_cast<unsigned long long>(1 + rng.NextBelow(40)),  // delay, cycles
      static_cast<unsigned long long>(burst_from),
      static_cast<unsigned long long>(burst_until),
      static_cast<unsigned long long>(burst_from),
      static_cast<unsigned long long>(burst_until),
      0.001 + rng.NextDouble() * 0.002,
      static_cast<unsigned long long>(200 + rng.NextBelow(1800)),  // stall len
      static_cast<unsigned long long>(cycles / 2));
  return buffer;
}

constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

u64 DigestBytes(u64 h, const u8* data, usize size) {
  for (usize i = 0; i < size; ++i) {
    h = (h ^ data[i]) * kFnvPrime;
  }
  return h;
}

struct SoakOutcome {
  bool ok = true;
  u64 generated = 0;
  u64 tap_dropped = 0;
  u64 injected = 0;
  u64 egressed = 0;
  u64 pipeline_drops = 0;
  u64 service_dropped = 0;
  u64 faults_fired = 0;
  u64 fault_digest = 0;
  u64 egress_digest = 0;
  usize hazards = 0;
  bool balanced = false;
  bool recovered = false;
  std::string detail;
  // Carried for --log-dir artifacts: the exact plan that ran and the
  // registry's injection log, so a CI failure is replayable from the
  // uploaded file alone.
  std::string plan_used;
  std::string injection_log;
  // emu-pulse: sampled case telemetry + the end-of-run snapshot the SLO
  // gate evaluates, and the registry's Prometheus exposition.
  obs::TimeSeriesRecorder series{512};
  std::vector<std::pair<std::string, u64>> final_metrics;
  std::string prom_text;
};

struct SoakOptions {
  u64 seed = 1;
  u64 cycles = 1'000'000;
  std::string plan_text;  // empty: randomized from seed
  std::string log_dir;    // when set: write per-case artifacts on failure
  std::string slo_spec;   // per-case end-of-run gates
  std::string prom_path;  // Prometheus exposition of the last case's registry
  bool verbose = false;
};

SoakOutcome RunSoak(SoakCase c, const SoakOptions& opt) {
  SoakOutcome out;
  FpgaTarget target(*c.service);

#ifdef EMU_ANALYSIS
  HazardMonitor monitor(target.sim());
#endif

  if (c.prewarm) {
    c.prewarm(target);
  }

  FaultRegistry registry(opt.seed);
  c.service->RegisterFaultPoints(registry);
  FrameImpairer tap(registry, "ingress");
  // The simulator ticks the registry once per executed edge (and books
  // skipped-tick opportunities across quiescent jumps), so the soak loop no
  // longer single-steps the clock.
  target.sim().AttachFaultRegistry(&registry);

  MetricsRegistry metrics;
  c.service->RegisterMetrics(metrics);
  metrics.Register("faults.fired", [&registry] { return registry.fired_total(); });

  const std::string plan_text =
      opt.plan_text.empty() ? RandomPlanText(opt.seed, opt.cycles) : opt.plan_text;
  out.plan_used = plan_text;
  const Expected<FaultPlan> plan = ParseFaultPlan(plan_text);
  if (!plan.ok()) {
    out.ok = false;
    out.detail = "bad fault plan: " + plan.status().ToString();
    return out;
  }
  registry.ArmPlan(*plan);
  if (opt.verbose) {
    std::printf("  plan: %s\n", plan_text.c_str());
  }

  // Baselines so prewarm traffic does not enter the balance.
  NetFpgaPipeline& pipe = target.pipeline();
  const u64 base_in = pipe.injected();
  const u64 base_out = pipe.egressed();
  const u64 base_pipe_drop = pipe.rx_drops() + pipe.tx_drops();
  // TryGet: a typo'd drop-counter name must fail the case, not silently read
  // 0 and let an unbalanced soak pass.
  const std::optional<u64> base_svc_drop = metrics.TryGet(c.dropped_metric);
  if (!base_svc_drop.has_value()) {
    out.ok = false;
    out.detail = "unknown drop metric: " + c.dropped_metric;
    return out;
  }

  // --- Soak loop: traffic through the impaired tap; the attached registry
  // samples the SEU/stall callback targets per edge inside Run(). ---
  constexpr u64 kFrameGap = 197;  // prime, avoids beating with burst windows
  usize frame_index = 0;
  std::optional<std::pair<u8, Packet>> held;  // reorder: overtaken frame
  const auto emit = [&](u8 port, Packet frame, Cycle at) {
    target.Inject(port, std::move(frame), at);
    ++out.injected;
  };
  // Manual telemetry sampling (no EventScheduler on an FpgaTarget): one
  // registry snapshot every ~1/256th of the soak, timestamped at the
  // nominal 1 cycle = 1 ns so the dashboard's per-second rates read as
  // per-gigacycle. The extra getters make the flow visible alongside the
  // service counters.
  metrics.Register("chaos.injected", [&pipe] { return pipe.injected(); });
  metrics.Register("chaos.egressed", [&pipe] { return pipe.egressed(); });
  const u64 sample_every = std::max<u64>(kFrameGap, opt.cycles / 256);
  u64 next_sample = 0;
  for (u64 cycle = 0; cycle < opt.cycles; cycle += kFrameGap) {
    const Cycle now = target.sim().now();
    if (cycle >= next_sample) {
      out.series.Record(static_cast<Picoseconds>(now) * kPicosPerNano, metrics.Snapshot());
      next_sample += sample_every;
    }
    {
      const u8 port = c.ports[frame_index % c.ports.size()];
      Packet frame = c.factory(frame_index, port);
      ++frame_index;
      ++out.generated;
      const FrameImpairer::Decision d = tap.Decide(now, frame.size());
      if (d.drop) {
        ++out.tap_dropped;
      } else {
        if (d.corrupt_bit != FrameImpairer::kNoCorrupt) {
          FrameImpairer::FlipBit(frame, d.corrupt_bit);
        }
        // The tap runs on the cycle clock, so delay magnitudes are cycles.
        const Cycle at = now + static_cast<Cycle>(d.extra_delay_ps);
        if (d.duplicate) {
          emit(port, frame, at);
        }
        if (d.reorder && !held.has_value()) {
          held = {port, std::move(frame)};  // next frame overtakes this one
        } else {
          emit(port, std::move(frame), at);
          if (held.has_value()) {
            emit(held->first, std::move(held->second), at);
            held.reset();
          }
        }
      }
    }
    target.Run(std::min(kFrameGap, opt.cycles - cycle));
  }
  if (held.has_value()) {
    emit(held->first, std::move(held->second), target.sim().now());
  }

  // --- Recovery: disarm everything, drain, then fresh requests must flow. ---
  registry.DisarmAll();
  target.Run(300'000);  // covers the longest stall magnitude plus queue drain

  const u64 in = pipe.injected() - base_in;
  const u64 egress_count = pipe.egressed() - base_out;
  out.egressed = egress_count;
  out.pipeline_drops = pipe.rx_drops() + pipe.tx_drops() - base_pipe_drop;
  out.service_dropped =
      metrics.TryGet(c.dropped_metric).value_or(*base_svc_drop) - *base_svc_drop;
  out.faults_fired = registry.fired_total();
  out.fault_digest = registry.LogDigest();
  out.injection_log = registry.Summary();
  out.series.Record(static_cast<Picoseconds>(target.sim().now()) * kPicosPerNano,
                    metrics.Snapshot());
  out.final_metrics = metrics.Snapshot();
  out.prom_text = metrics.PrometheusText();
  out.balanced =
      in == out.injected &&
      in == egress_count + out.pipeline_drops + out.service_dropped;

  u64 digest = kFnvOffset;
  for (const EgressFrame& frame : target.TakeEgress()) {
    digest = (digest ^ frame.port) * kFnvPrime;
    digest = DigestBytes(digest, frame.frame.bytes().data(), frame.frame.size());
  }
  out.egress_digest = digest;

  usize probe_ok = 0;
  constexpr usize kProbes = 10;
  for (usize i = 0; i < kProbes; ++i) {
    const u8 port = c.ports[i % c.ports.size()];
    if (target.SendAndCollect(port, c.factory(frame_index + i, port), 100'000).ok()) {
      ++probe_ok;
    }
  }
  out.recovered = probe_ok >= 8;

#ifdef EMU_ANALYSIS
  out.hazards = monitor.reports().size();
  if (out.hazards != 0) {
    out.detail = monitor.Summary();
  }
#endif

  out.ok = out.balanced && out.recovered && out.hazards == 0;
  if (!out.balanced) {
    out.detail += "counter imbalance: injected=" + std::to_string(in) +
                  " egressed=" + std::to_string(egress_count) +
                  " pipeline_drops=" + std::to_string(out.pipeline_drops) +
                  " service_dropped=" + std::to_string(out.service_dropped) + "\n";
  }
  if (!out.recovered) {
    out.detail += "recovery failed: " + std::to_string(probe_ok) + "/" +
                  std::to_string(kProbes) + " probes answered\n";
  }
  if (opt.verbose) {
    std::printf("%s", registry.Summary().c_str());
    std::printf("%s", metrics.Format().c_str());
  }
  return out;
}

// SLO lookup per case: harness-derived values first, then the end-of-run
// registry snapshot (histogram derived views already expanded).
obs::SloLookup MakeCaseLookup(const SoakOutcome& out) {
  return [&out](const std::string& name) -> std::optional<double> {
    if (name == "chaos.loss_rate") {
      const u64 lost = out.tap_dropped + out.pipeline_drops + out.service_dropped;
      return out.generated == 0 ? 0.0
                                : static_cast<double>(lost) / static_cast<double>(out.generated);
    }
    if (name == "chaos.recovered") return out.recovered ? 1.0 : 0.0;
    if (name == "chaos.hazards") return static_cast<double>(out.hazards);
    if (name == "chaos.faults_fired") return static_cast<double>(out.faults_fired);
    for (const auto& [metric, value] : out.final_metrics) {
      if (metric == name) return static_cast<double>(value);
    }
    return std::nullopt;
  };
}

// Dashboard + series JSON for one case (written for every case when
// --log-dir is set, not just failures — a green soak's telemetry is the
// baseline the red one is diffed against).
void WriteCaseDashboard(const SoakOptions& opt, const std::string& name,
                        const SoakOutcome& out, const obs::SloReport& slo) {
  obs::DashboardOptions dash;
  dash.title = "chaos_soak " + name + " seed " + std::to_string(opt.seed);
  dash.subtitle = std::to_string(opt.cycles) + " cycles; plan: " + out.plan_used;
  const std::vector<obs::ChartSpec> charts = {
      {"Flow", "frames/s (1 cyc = 1 ns)", {"chaos.injected", "chaos.egressed"}, true},
      {"Faults fired (cumulative)", "injections", {"faults.fired"}, false},
  };
  const std::string base = opt.log_dir + "/" + name + "_seed" + std::to_string(opt.seed);
  obs::WriteSoakDashboardHtml(base + ".dashboard.html", dash, out.series, charts, slo);
  out.series.WriteSeriesJson(base + ".series.json");
}

void PrintOutcome(const std::string& name, const SoakOutcome& out, u64 seed) {
  std::printf(
      "%-10s seed=%llu  frames=%llu (tap-dropped %llu)  egress=%llu  "
      "drops[pipe %llu, svc %llu]  faults=%llu  hazards=%zu  %s%s\n",
      name.c_str(), static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(out.generated),
      static_cast<unsigned long long>(out.tap_dropped),
      static_cast<unsigned long long>(out.egressed),
      static_cast<unsigned long long>(out.pipeline_drops),
      static_cast<unsigned long long>(out.service_dropped),
      static_cast<unsigned long long>(out.faults_fired), out.hazards,
      out.balanced ? "balanced" : "IMBALANCED",
      out.ok ? (out.recovered ? ", recovered" : "") : " -- FAIL");
  if (!out.detail.empty()) {
    std::printf("%s", out.detail.c_str());
  }
}

// One file per failing case under opt.log_dir (the directory must exist; CI
// creates it and uploads it as an artifact): the plan, both digests, the
// injection log, and the failure detail — everything a replay needs.
void WriteFailureArtifact(const SoakOptions& opt, const std::string& name,
                          const SoakOutcome& out, const SoakOutcome* replay) {
  char digests[160];
  std::snprintf(digests, sizeof(digests), "fault digest: %016llx\negress digest: %016llx\n",
                static_cast<unsigned long long>(out.fault_digest),
                static_cast<unsigned long long>(out.egress_digest));
  std::string text = "case " + name + " seed " + std::to_string(opt.seed) + " cycles " +
                     std::to_string(opt.cycles) + "\nplan: " + out.plan_used + "\n" +
                     digests;
  if (replay != nullptr) {
    char replayed[160];
    std::snprintf(replayed, sizeof(replayed),
                  "REPLAY DIVERGED\nreplay fault digest: %016llx\nreplay egress digest: "
                  "%016llx\n",
                  static_cast<unsigned long long>(replay->fault_digest),
                  static_cast<unsigned long long>(replay->egress_digest));
    text += replayed;
  }
  if (!out.detail.empty()) {
    text += "detail:\n" + out.detail;
  }
  text += "\ninjection log:\n" + out.injection_log;
  const std::string path = opt.log_dir + "/" + name + "_seed" +
                           std::to_string(opt.seed) + ".txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "chaos_soak: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

int Usage() {
  std::printf(
      "usage: chaos_soak [--seed N] [--cycles N] [--faults \"<plan>\"]\n"
      "                  [--replay] [--service <name>] [--log-dir DIR]\n"
      "                  [--slo CLAUSES] [--prom FILE] [--verbose]\n"
      "services: icmp_echo tcp_ping dns nat memcached (default: all)\n"
      "--slo gates every case's end-of-run metrics, e.g.\n"
      "  \"chaos.loss_rate <= 0.05; chaos.hazards <= 0; chaos.recovered >= 1\"\n"
      "plan: \"<point> oneshot <tick> | bernoulli <p> | burst <from> <until> <p>"
      " [magnitude]\" entries, ';'-separated\n");
  return 2;
}

int Main(int argc, char** argv) {
  SoakOptions opt;
  bool replay = false;
  std::string only_service;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--cycles" && i + 1 < argc) {
      opt.cycles = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--faults" && i + 1 < argc) {
      opt.plan_text = argv[++i];
    } else if (arg == "--replay") {
      replay = true;
    } else if (arg == "--service" && i + 1 < argc) {
      only_service = argv[++i];
    } else if (arg == "--log-dir" && i + 1 < argc) {
      opt.log_dir = argv[++i];
    } else if (arg == "--slo" && i + 1 < argc) {
      opt.slo_spec = argv[++i];
    } else if (arg == "--prom" && i + 1 < argc) {
      opt.prom_path = argv[++i];
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      return Usage();
    }
  }

  const obs::SloParseResult slo_spec = obs::ParseSloSpec(opt.slo_spec);
  if (!slo_spec.ok) {
    std::fprintf(stderr, "chaos_soak: %s\n", slo_spec.error.c_str());
    return 2;
  }

  using CaseMaker = SoakCase (*)();
  const std::pair<const char*, CaseMaker> cases[] = {
      {"icmp_echo", MakeIcmpCase}, {"tcp_ping", MakeTcpPingCase},
      {"dns", MakeDnsCase},        {"nat", MakeNatCase},
      {"memcached", MakeMemcachedCase},
  };

  std::printf("chaos_soak: seed=%llu cycles=%llu%s\n",
              static_cast<unsigned long long>(opt.seed),
              static_cast<unsigned long long>(opt.cycles),
              replay ? " (replay check)" : "");
  bool all_ok = true;
  bool matched = false;
  for (const auto& [name, make] : cases) {
    if (!only_service.empty() && only_service != name) {
      continue;
    }
    matched = true;
    const SoakOutcome first = RunSoak(make(), opt);
    PrintOutcome(name, first, opt.seed);
    all_ok = all_ok && first.ok;

    const obs::SloReport slo = obs::EvaluateSlo(slo_spec.clauses, MakeCaseLookup(first));
    if (!slo.checks.empty()) {
      std::printf("%s", obs::FormatSloReport(slo).c_str());
    }
    all_ok = all_ok && slo.ok;

    if (!opt.log_dir.empty()) {
      WriteCaseDashboard(opt, name, first, slo);
    }
    if (!first.ok && !opt.log_dir.empty()) {
      WriteFailureArtifact(opt, name, first, nullptr);
    }
    if (!opt.prom_path.empty()) {
      std::string lint_error;
      if (!PrometheusLint(first.prom_text, &lint_error)) {
        std::printf("%-10s prom lint: %s\n", name, lint_error.c_str());
        all_ok = false;
      }
      std::FILE* f = std::fopen(opt.prom_path.c_str(), "w");
      if (f != nullptr) {
        std::fwrite(first.prom_text.data(), 1, first.prom_text.size(), f);
        std::fclose(f);
      } else {
        std::fprintf(stderr, "chaos_soak: cannot write %s\n", opt.prom_path.c_str());
      }
    }
    if (replay && first.ok) {
      const SoakOutcome second = RunSoak(make(), opt);
      const bool same = second.fault_digest == first.fault_digest &&
                        second.egress_digest == first.egress_digest;
      std::printf("%-10s replay: %s (faults %016llx, egress %016llx)\n", name,
                  same ? "bit-exact" : "DIVERGED",
                  static_cast<unsigned long long>(second.fault_digest),
                  static_cast<unsigned long long>(second.egress_digest));
      all_ok = all_ok && same;
      if (!same && !opt.log_dir.empty()) {
        WriteFailureArtifact(opt, name, first, &second);
      }
    }
  }
  if (!matched) {
    return Usage();
  }
  std::printf("chaos_soak: %s\n", all_ok ? "all invariants held" : "FAILURES");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace emu

int main(int argc, char** argv) { return emu::Main(argc, argv); }
