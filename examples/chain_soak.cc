// chain_soak: an in-network compute pipeline behind a ScenarioSpec (emu-chain).
//
// Builds filter -> NAT -> L1 cache -> memcached pool from a declarative
// scenario spec (specs/chain_soak.spec is the default, embedded below), each
// stage on its own simulated host and PDES shard, and drives a memaslap-style
// 90/10 GET/SET workload through the whole chain from the source host. For
// each seed the soak runs three times — threads=1, threads=T, and a
// threads=T replay — and gates on:
//
//   - flow integrity: every admitted request produced exactly one reply at
//     the source; the head stage serviced exactly the admitted count; no
//     stage lost backpressure (LOSTBACKPRESSURE / CHAINMISROUTE findings
//     from ChainRuntime::CollectFindings are failures);
//   - determinism: the chain counter digest, the fault registry's injection
//     log digest, and the exported Perfetto trace are bit-exact across
//     thread counts and across a same-seed replay — the trace comparison is
//     byte equality of the JSON;
//   - decomposition: the trace recovers a per-stage latency decomposition
//     (Table 4 shape) with a populated queue and service row for every
//     stage on the chain.
//
// --log-dir writes one artifact per seed (digests, per-stage counters, the
// decomposition table) plus the threads=T Perfetto trace — the CI uploads
// the directory.
//
// emu-pulse additions: every run samples source-side telemetry (reply
// throughput, shed, in-flight window, FIFO-matched source RTT p50/p99) into
// a bounded TimeSeriesRecorder and records the parallel runner's per-epoch
// wall-clock profile. --log-dir then also gets, per seed, the soak
// dashboard HTML, the series JSON, and the epoch profile JSON + wall-clock
// trace. All of these are separate artifacts from the deterministic trace —
// the byte-compare below still covers the deterministic stream only, and
// still passes with pulse attached. --slo CLAUSES evaluates declarative SLO
// gates (e.g. "chain.source.rtt_us.p99 <= 400; chain.loss_rate <= 0.01")
// against the threads=T run of every seed and makes a breach exit nonzero.
//
// Usage:
//   chain_soak [--seed N] [--seeds N] [--threads N] [--requests N]
//              [--spec FILE] [--log-dir DIR] [--slo CLAUSES] [--prom FILE]
//              [--verbose]
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/chain/scenario_build.h"
#include "src/chain/stage_factory.h"
#include "src/core/histogram.h"
#include "src/core/metrics.h"
#include "src/fault/fault_registry.h"
#include "src/obs/dashboard.h"
#include "src/obs/decompose.h"
#include "src/obs/pulse.h"
#include "src/obs/sampler.h"
#include "src/obs/slo.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"
#include "src/sim/memaslap.h"

namespace emu {
namespace {

// The default scenario (kept in lockstep with specs/chain_soak.spec): the
// paper's service portfolio composed into one pipeline, the filter on the
// cycle-accurate FPGA target, everything else on the CPU target.
constexpr char kDefaultSpec[] =
    "topology hub link_delay=2us\n"
    "host client mac=0x020000000c01 ip=192.168.1.10\n"
    "host h1\nhost h2\nhost h3\nhost h4\n"
    "stage filter kind=filter    host=h1 target=fpga queue=16\n"
    "stage nat    kind=nat       host=h2 target=cpu  queue=16\n"
    "stage cache  kind=l1cache   host=h3 target=cpu  queue=32 capacity=64\n"
    "stage pool   kind=memcached host=h4 target=cpu  queue=32\n"
    "chain client -> filter -> nat -> cache -> pool\n";

constexpr usize kPrewarmKeys = 200;

struct SoakOptions {
  u64 first_seed = 1;
  u64 seed_count = 3;
  usize threads = 4;
  usize requests = 300;
  // Four stages each serve a request twice (forward and reply), so 25 us
  // between requests puts per-stage load at ~80% of the 10 us CPU service
  // time: queues visibly fill (nonzero decomposition queue rows) while the
  // source's credit window keeps it from shedding in steady state.
  u64 gap_us = 25;
  std::string spec_text = kDefaultSpec;
  std::string log_dir;
  std::string slo_spec;   // parsed up front; evaluated on every threads=T run
  std::string prom_path;  // Prometheus exposition of the harness registry
  u64 sample_interval_us = 100;
  bool verbose = false;
};

// What the decomposition gate needs per stage: did both rows populate?
struct StageDecompositionCheck {
  std::string stage;
  u64 queue_count = 0;
  u64 service_count = 0;
};

struct RunOutcome {
  bool ok = true;
  std::string detail;
  u64 events_executed = 0;
  u64 chain_digest = 0;
  u64 log_digest = 0;
  u64 attempts = 0;
  u64 source_shed = 0;
  u64 source_replies = 0;
  std::vector<Finding> findings;
  std::string counters;       // per-stage counter table
  std::string decomposition;  // per-stage latency table
  std::string trace_json;     // Perfetto export (byte-compared across runs)
  std::vector<StageDecompositionCheck> stage_rows;
  // emu-pulse artifacts (wall-clock / telemetry; NOT byte-compared):
  obs::TimeSeriesRecorder series{2048};
  std::vector<std::pair<std::string, u64>> final_metrics;  // end-of-run snapshot
  std::string prom_text;          // source telemetry registry exposition
  std::string pulse_summary_json; // per-shard/per-epoch runner profile
  std::string pulse_trace_json;   // wall-clock Chrome trace (separate artifact)
};

RunOutcome RunOnce(u64 seed, usize threads, const SoakOptions& opt) {
  RunOutcome out;
  FaultRegistry registry(seed);
  Expected<std::unique_ptr<Scenario>> built =
      BuildScenarioFromText(opt.spec_text, &registry);
  if (!built.ok()) {
    out.ok = false;
    out.detail = built.status().ToString();
    return out;
  }
  Scenario& scenario = **built;
  if (!scenario.has_chain) {
    out.ok = false;
    out.detail = "spec declares no chain";
    return out;
  }

  obs::TraceSession trace;
  trace.Install();

  // The workload addresses the memcached VIP (both cache tiers answer to
  // it); the client IP must sit in the NAT's internal subnet.
  MemaslapConfig mc;
  const MemcachedConfig mc_service = CanonicalMemcachedConfig();
  mc.server_mac = mc_service.mac;
  mc.server_ip = mc_service.ip;
  mc.client_ip = Ipv4Address(192, 168, 1, 10);
  mc.key_space = kPrewarmKeys;
  mc.seed = seed;
  MemaslapLoadgen gen(mc);

  std::vector<Packet> frames;
  for (usize i = 0; i < gen.prewarm_count(); ++i) {
    frames.push_back(gen.PrewarmFrame(i));
  }
  for (usize i = 0; i < opt.requests; ++i) {
    frames.push_back(gen.WorkloadFrame(i));
  }
  out.attempts = frames.size();

  ChainRuntime& chain = scenario.chain;
  EventScheduler& clock = scenario.topology.host(scenario.source_host).scheduler();
  const Picoseconds gap = static_cast<Picoseconds>(opt.gap_us) * kPicosPerMicro;

  // --- emu-pulse telemetry (source shard only) ---
  // Everything sampled here is mutated exclusively by events on the source
  // host's scheduler (sends, the reply handler, the sampler itself), so the
  // mid-run sampling is shard-safe and its values — including the counter
  // events it adds to the deterministic trace — are bit-identical for any
  // thread count. RTT is FIFO-matched at the source: memaslap frames carry
  // no request id (fixed UDP ports), so each reply is paired with the oldest
  // outstanding send. Sums and means are exact under any matching; the p50/
  // p99 are the standard passive-measurement approximation.
  Histogram rtt_us;
  std::deque<Picoseconds> in_flight;
  u64 sent = 0;
  MetricsRegistry source_metrics;
  source_metrics.Register("chain.source.sent", &sent);
  source_metrics.Register("chain.source.shed", [&chain] { return chain.source_shed(); });
  source_metrics.Register("chain.source.replies", [&chain] { return chain.source_replies(); });
  source_metrics.RegisterGauge("chain.source.in_flight",
                               [&in_flight] { return static_cast<u64>(in_flight.size()); });
  source_metrics.RegisterHistogram("chain.source.rtt_us", &rtt_us);
  chain.SetSourceReplyHandler([&in_flight, &rtt_us, &clock](Packet) {
    if (!in_flight.empty()) {
      const Picoseconds sent_at = in_flight.front();
      in_flight.pop_front();
      rtt_us.Observe(static_cast<u64>((clock.now() - sent_at) / kPicosPerMicro));
    }
  });

  for (usize i = 0; i < frames.size(); ++i) {
    const Picoseconds at = static_cast<Picoseconds>(i + 1) * gap;
    clock.At(at, [&chain, &in_flight, &sent, at, frame = std::move(frames[i])]() mutable {
      if (chain.SourceSend(std::move(frame))) {
        ++sent;
        in_flight.push_back(at);
      }
    });
  }

  MetricsSampler sampler(source_metrics,
                         static_cast<Picoseconds>(opt.sample_interval_us) * kPicosPerMicro);
  sampler.AttachRecorder(&out.series);
  // Sample through the send schedule plus a drain tail for the last replies.
  const Picoseconds sample_until =
      static_cast<Picoseconds>(frames.size() + 1) * gap + 500 * kPicosPerMicro;
  sampler.SchedulePeriodic(clock, sample_until);

  obs::RunnerPulse pulse;
  scenario.topology.runner().AttachPulse(&pulse);

  ParallelRunOptions run_opts;
  run_opts.threads = threads;
  out.events_executed = scenario.Run(run_opts);

  out.final_metrics = source_metrics.Snapshot();
  out.prom_text = source_metrics.PrometheusText();
  out.pulse_summary_json = pulse.SummaryJson();
  out.pulse_trace_json = pulse.WallClockTraceJson();

  out.chain_digest = chain.Digest();
  out.log_digest = registry.LogDigest();
  out.source_shed = chain.source_shed();
  out.source_replies = chain.source_replies();
  chain.CollectFindings(out.findings);
  out.trace_json = trace.ExportChromeJson();

  std::vector<std::string> stage_order;
  for (usize i = 0; i < chain.stage_count(); ++i) {
    stage_order.push_back(chain.stage(i).name());
  }
  const std::vector<obs::StageDecomposition> rows =
      obs::DecomposeChainLatency(trace.MergedEvents(), stage_order);
  out.decomposition = obs::FormatDecompositionTable(rows);
  for (const obs::StageDecomposition& row : rows) {
    out.stage_rows.push_back({row.stage, row.queue.count, row.service.count});
  }

  std::ostringstream counters;
  for (usize i = 0; i < chain.stage_count(); ++i) {
    ChainStageNode& stage = chain.stage(i);
    counters << stage.name() << ": fwd=" << stage.serviced_forward()
             << " reply=" << stage.serviced_reply()
             << " lost_bp=" << stage.lost_backpressure()
             << " misrouted=" << stage.misrouted()
             << " flood_dropped=" << stage.flood_dropped()
             << " ignored=" << stage.ignored()
             << " stalls=" << stage.egress_stalls() << "\n";
  }
  counters << "source: attempts=" << out.attempts << " shed=" << out.source_shed
           << " replies=" << out.source_replies << "\n";
  out.counters = counters.str();

  if (opt.verbose) {
    MetricsRegistry metrics;
    chain.RegisterMetrics(metrics, "chain");
    registry.RegisterMetrics(metrics, "faults");
    std::printf("%s", metrics.Format().c_str());
  }
  obs::TraceSession::Detach();
  return out;
}

std::vector<std::string> CheckInvariants(const RunOutcome& run) {
  std::vector<std::string> violations;
  if (!run.ok) {
    violations.push_back(run.detail);
    return violations;
  }
  for (const Finding& f : run.findings) {
    violations.push_back(f.ToString());
  }
  const u64 admitted = run.attempts - run.source_shed;
  if (run.source_replies != admitted) {
    violations.push_back("flow: " + std::to_string(admitted) + " requests admitted but " +
                         std::to_string(run.source_replies) + " replies returned");
  }
  for (const StageDecompositionCheck& row : run.stage_rows) {
    if (row.queue_count == 0 || row.service_count == 0) {
      violations.push_back("decomposition: stage '" + row.stage +
                           "' has an empty queue or service row (queue=" +
                           std::to_string(row.queue_count) +
                           " service=" + std::to_string(row.service_count) + ")");
    }
  }
  return violations;
}

bool WriteFileOrWarn(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "chain_soak: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

// Lookup for the SLO gate: harness-derived values first (loss_rate), then the
// end-of-run snapshot of the source telemetry registry (which already expands
// histogram `.count/.sum/.p50/.p99` views).
obs::SloLookup MakeSoakLookup(const RunOutcome& run) {
  return [&run](const std::string& name) -> std::optional<double> {
    if (name == "chain.loss_rate") {
      return run.attempts == 0 ? 0.0
                               : static_cast<double>(run.source_shed) /
                                     static_cast<double>(run.attempts);
    }
    for (const auto& [metric, value] : run.final_metrics) {
      if (metric == name) {
        return static_cast<double>(value);
      }
    }
    return std::nullopt;
  };
}

void WriteSeedArtifacts(const SoakOptions& opt, u64 seed, const RunOutcome& serial,
                        const RunOutcome& parallel, const RunOutcome& replay,
                        const std::vector<std::string>& violations,
                        const obs::SloReport& slo) {
  char digests[256];
  std::snprintf(digests, sizeof(digests),
                "chain digest: serial=%016llx threads=%016llx replay=%016llx\n"
                "log digest:   serial=%016llx threads=%016llx replay=%016llx\n"
                "trace bytes:  serial=%zu threads=%zu replay=%zu identical=%s\n",
                static_cast<unsigned long long>(serial.chain_digest),
                static_cast<unsigned long long>(parallel.chain_digest),
                static_cast<unsigned long long>(replay.chain_digest),
                static_cast<unsigned long long>(serial.log_digest),
                static_cast<unsigned long long>(parallel.log_digest),
                static_cast<unsigned long long>(replay.log_digest),
                serial.trace_json.size(), parallel.trace_json.size(),
                replay.trace_json.size(),
                (serial.trace_json == parallel.trace_json &&
                 parallel.trace_json == replay.trace_json)
                    ? "yes"
                    : "NO");
  std::string text = "seed " + std::to_string(seed) + "\n" + digests +
                     "\nper-stage counters (threads run):\n" + parallel.counters +
                     "\nlatency decomposition (threads run):\n" + parallel.decomposition;
  if (!violations.empty()) {
    text += "\nviolations:\n";
    for (const std::string& v : violations) {
      text += "  " + v + "\n";
    }
  }
  const std::string base = opt.log_dir + "/seed" + std::to_string(seed);
  WriteFileOrWarn(base + ".txt", text);
  WriteFileOrWarn(base + ".trace.json", parallel.trace_json);

  // emu-pulse artifacts (threads run): soak dashboard + raw series, the
  // runner's epoch profile, and the wall-clock trace. Separate files from the
  // deterministic trace above by design.
  obs::DashboardOptions dash;
  dash.title = "chain_soak seed " + std::to_string(seed);
  dash.subtitle = "filter->nat->cache->pool, threads run; source-side telemetry";
  const std::vector<obs::ChartSpec> charts = {
      {"Reply throughput", "replies/s", {"chain.source.replies"}, true},
      {"Source shed (cumulative)", "frames", {"chain.source.shed"}, false},
      {"In-flight window", "requests", {"chain.source.in_flight"}, false},
      {"Source RTT", "us", {"chain.source.rtt_us.p50", "chain.source.rtt_us.p99"}, false},
  };
  obs::WriteSoakDashboardHtml(base + ".dashboard.html", dash, parallel.series, charts, slo);
  WriteFileOrWarn(base + ".series.json", parallel.series.SeriesJson());
  WriteFileOrWarn(base + ".pulse.json", parallel.pulse_summary_json);
  WriteFileOrWarn(base + ".pulse.trace.json", parallel.pulse_trace_json);
}

int Usage() {
  std::printf(
      "usage: chain_soak [--seed N] [--seeds N] [--threads N] [--requests N]\n"
      "                  [--gap-us N] [--spec FILE] [--log-dir DIR]\n"
      "                  [--slo CLAUSES] [--prom FILE] [--sample-us N] [--verbose]\n"
      "--spec replaces the built-in filter->nat->cache->pool scenario;\n"
      "--log-dir must already exist; per-seed artifacts (digests, counters,\n"
      "latency decomposition, Perfetto trace, soak dashboard HTML, series +\n"
      "epoch-profile JSON) are written there.\n"
      "--slo takes ';'-separated clauses like \"chain.source.rtt_us.p99 <= 400;\n"
      "chain.loss_rate <= 0.02\"; any breach on any seed's threads run makes\n"
      "the exit status nonzero. --prom writes the source telemetry registry\n"
      "of the last seed's threads run in Prometheus exposition format.\n");
  return 2;
}

int Main(int argc, char** argv) {
  SoakOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      opt.first_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seeds" && i + 1 < argc) {
      opt.seed_count = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--threads" && i + 1 < argc) {
      opt.threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--requests" && i + 1 < argc) {
      opt.requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--gap-us" && i + 1 < argc) {
      opt.gap_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--spec" && i + 1 < argc) {
      std::ifstream in(argv[++i]);
      if (!in) {
        std::fprintf(stderr, "chain_soak: cannot read %s\n", argv[i]);
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      opt.spec_text = text.str();
    } else if (arg == "--log-dir" && i + 1 < argc) {
      opt.log_dir = argv[++i];
    } else if (arg == "--slo" && i + 1 < argc) {
      opt.slo_spec = argv[++i];
    } else if (arg == "--prom" && i + 1 < argc) {
      opt.prom_path = argv[++i];
    } else if (arg == "--sample-us" && i + 1 < argc) {
      opt.sample_interval_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      return Usage();
    }
  }
  if (opt.threads == 0 || opt.seed_count == 0 || opt.requests == 0 || opt.gap_us == 0 ||
      opt.sample_interval_us == 0) {
    return Usage();
  }

  // Parse the SLO spec before any run: a malformed gate must fail fast, not
  // after minutes of soak.
  const obs::SloParseResult slo_spec = obs::ParseSloSpec(opt.slo_spec);
  if (!slo_spec.ok) {
    std::fprintf(stderr, "chain_soak: %s\n", slo_spec.error.c_str());
    return 2;
  }

  std::printf("chain_soak: seeds=[%llu..%llu] threads={1,%zu} requests=%zu (+%zu prewarm)\n",
              static_cast<unsigned long long>(opt.first_seed),
              static_cast<unsigned long long>(opt.first_seed + opt.seed_count - 1),
              opt.threads, opt.requests, kPrewarmKeys);

  bool all_ok = true;
  for (u64 k = 0; k < opt.seed_count; ++k) {
    const u64 seed = opt.first_seed + k;
    const RunOutcome serial = RunOnce(seed, 1, opt);
    const RunOutcome parallel = RunOnce(seed, opt.threads, opt);
    const RunOutcome replay = RunOnce(seed, opt.threads, opt);

    std::vector<std::string> violations = CheckInvariants(parallel);
    if (serial.ok && replay.ok && violations.empty()) {
      if (serial.chain_digest != parallel.chain_digest ||
          serial.log_digest != parallel.log_digest) {
        violations.push_back("determinism: threads=1 vs threads=" +
                             std::to_string(opt.threads) + " digests diverged");
      }
      if (replay.chain_digest != parallel.chain_digest ||
          replay.log_digest != parallel.log_digest) {
        violations.push_back("determinism: same-seed replay digests diverged");
      }
      if (serial.trace_json != parallel.trace_json) {
        violations.push_back("determinism: threads=1 vs threads=" +
                             std::to_string(opt.threads) + " traces are not byte-identical");
      }
      if (replay.trace_json != parallel.trace_json) {
        violations.push_back("determinism: replay trace is not byte-identical");
      }
    } else if (!serial.ok) {
      violations.push_back(serial.detail);
    } else if (!replay.ok) {
      violations.push_back(replay.detail);
    }
    // SLO gate on the threads run: a breach is a failure in its own right,
    // even with every determinism/flow invariant intact.
    const obs::SloReport slo = obs::EvaluateSlo(slo_spec.clauses, MakeSoakLookup(parallel));
    if (!slo.ok) {
      violations.push_back("slo: breach (see clause report)");
    }
    all_ok = all_ok && violations.empty();

    std::printf("seed=%llu  events=%llu  chain=%016llx log=%016llx  %s\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(parallel.events_executed),
                static_cast<unsigned long long>(parallel.chain_digest),
                static_cast<unsigned long long>(parallel.log_digest),
                violations.empty() ? "ok" : "VIOLATIONS");
    for (const std::string& v : violations) {
      std::printf("  %s\n", v.c_str());
    }
    if (!slo.checks.empty()) {
      std::printf("%s", obs::FormatSloReport(slo).c_str());
    }
    if (k == 0 || !violations.empty()) {
      std::printf("%s", parallel.decomposition.c_str());
    }
    if (!opt.log_dir.empty()) {
      WriteSeedArtifacts(opt, seed, serial, parallel, replay, violations, slo);
    }
    if (!opt.prom_path.empty() && k + 1 == opt.seed_count) {
      std::string lint_error;
      if (!PrometheusLint(parallel.prom_text, &lint_error)) {
        std::printf("  prom lint: %s\n", lint_error.c_str());
        all_ok = false;
      }
      WriteFileOrWarn(opt.prom_path, parallel.prom_text);
    }
  }
  std::printf("chain_soak: %s\n", all_ok ? "all invariants held" : "FAILURES");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace emu

int main(int argc, char** argv) { return emu::Main(argc, argv); }
