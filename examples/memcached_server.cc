// Memcached-on-FPGA (§4.3/§5.4): serve a memaslap-style 90/10 GET/SET
// workload through the NetFPGA pipeline and report the latency/throughput
// profile the paper's Table 4 row comes from — then repeat with four cores.
#include <cstdio>

#include "src/core/targets.h"
#include "src/net/udp.h"
#include "src/services/memcached_service.h"
#include "src/sim/loadgen.h"
#include "src/sim/memaslap.h"

namespace {

using namespace emu;  // example code; library code never does this

void RunProfile(usize cores) {
  MemcachedConfig config;
  config.cores = cores;
  MemcachedService service(config);
  FpgaTarget target(service);

  MemaslapConfig workload;
  workload.server_mac = config.mac;
  workload.server_ip = config.ip;
  workload.key_space = 512;
  MemaslapLoadgen loadgen(workload);

  // Prewarm every key through the dataplane (SETs replicate to all cores).
  for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
    target.SendAndCollect(0, loadgen.PrewarmFrame(i));
  }
  target.TakeEgress();

  // Unloaded request/response latency.
  const auto factory = [&loadgen](usize i, u8) { return loadgen.WorkloadFrame(i); };
  const LatencyStats latency = OsntLoadgen::MeasureUnloadedRtt(target, factory, 500);

  // Saturated throughput.
  MemcachedService fresh_service(config);
  FpgaTarget fresh_target(fresh_service);
  MemaslapLoadgen fresh_loadgen(workload);
  for (usize i = 0; i < fresh_loadgen.prewarm_count(); ++i) {
    fresh_target.SendAndCollect(0, fresh_loadgen.PrewarmFrame(i));
  }
  fresh_target.TakeEgress();
  OsntLoadgen::FixedRateConfig rate;
  rate.offered_mqps = 16.0;
  rate.frames = 12000;
  rate.ports = {0, 1, 2, 3};
  rate.drain_limit = 120'000'000;
  const auto fresh_factory = [&fresh_loadgen](usize i, u8) {
    return fresh_loadgen.WorkloadFrame(i);
  };
  const LoadgenReport report = OsntLoadgen::RunFixedRate(fresh_target, fresh_factory, rate);

  std::printf("%zu core(s): avg %.2f us | 99th %.2f us | tail/avg %.3f | %.2f Mq/s"
              " | GET hit rate %.1f%%\n",
              cores, latency.MeanUs(), latency.PercentileUs(99.0), latency.TailToAverage(),
              report.achieved_mqps,
              100.0 * static_cast<double>(fresh_service.get_hits()) /
                  static_cast<double>(fresh_service.gets()));
}

}  // namespace

int main() {
  std::printf("== Memcached over UDP/ASCII on the simulated NetFPGA ==\n");
  std::printf("workload: memaslap-style 90%% GET / 10%% SET, 6 B keys, 8 B values\n\n");
  for (usize cores : {1u, 4u}) {
    RunProfile(cores);
  }
  std::printf(
      "\nPaper (Table 4 + 5.4): 1.21 us avg, 1.26 us 99th, 1.932 Mq/s single-core;\n"
      "four cores raise the 90/10 throughput ~3.7x while SETs cannot scale.\n");
  return 0;
}
