// emu-pulse unit tests: the kernel phase profiler (SimProfile under
// off/sampled/full modes, JSON + table exports), the RunnerPulse epoch
// recorder (exact aggregates under a capped detail ring, a real multi-shard
// run, and the no-perturbation guarantee), the bounded TimeSeriesRecorder
// (halve-and-double downsampling), SLO clause parsing and evaluation, the
// soak dashboard renderer, and MetricsSampler edge cases.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/histogram.h"
#include "src/core/metrics.h"
#include "src/core/targets.h"
#include "src/net/udp.h"
#include "src/obs/dashboard.h"
#include "src/obs/pulse.h"
#include "src/obs/sampler.h"
#include "src/obs/slo.h"
#include "src/obs/timeseries.h"
#include "src/services/learning_switch.h"
#include "src/sim/event_scheduler.h"
#include "src/sim/link.h"
#include "src/sim/parallel_runner.h"

namespace emu {
namespace {

constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

void FoldU64(u64& h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
  }
}

// --- Kernel phase profiler -------------------------------------------------

const MacAddress kMacs[4] = {
    MacAddress::FromU48(0x02'00'00'00'00'01), MacAddress::FromU48(0x02'00'00'00'00'02),
    MacAddress::FromU48(0x02'00'00'00'00'03), MacAddress::FromU48(0x02'00'00'00'00'04)};
const Ipv4Address kIps[4] = {Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                             Ipv4Address(10, 0, 0, 3), Ipv4Address(10, 0, 0, 4)};

struct ProfiledRun {
  SimProfile profile;
  u64 egress_digest = kFnvOffset;
};

// The kernel_equiv_test learning-switch workload, shortened: teach the MACs,
// then unicast a few bursts. Returns the profile and an egress digest so a
// test can assert profiling never perturbs behavior.
ProfiledRun RunProfiledSwitch(ProfilingMode mode,
                              u64 stride = Simulator::kDefaultProfilingStride) {
  LearningSwitch service;
  FpgaTarget target(service);
  target.sim().SetProfilingMode(mode, stride);
  for (u8 port = 0; port < 4; ++port) {
    target.Inject(port, MakeUdpPacket({MacAddress::Broadcast(), kMacs[port], kIps[port],
                                       Ipv4Address(10, 0, 0, 99), 1, 2},
                                      std::vector<u8>{port}));
    target.Run(20'000);
  }
  for (usize burst = 0; burst < 3; ++burst) {
    for (usize i = 0; i < 8; ++i) {
      const u8 src = static_cast<u8>(i % 4);
      const u8 dst = static_cast<u8>((i + 1 + burst) % 4);
      target.Inject(src, MakeUdpPacket({kMacs[dst], kMacs[src], kIps[src], kIps[dst],
                                        1000, 2000},
                                       std::vector<u8>(1 + i, static_cast<u8>(burst))));
    }
    target.Run(50'000);
  }
  ProfiledRun out;
  out.profile = target.sim().ProfileReport();
  for (const EgressFrame& entry : target.TakeEgress()) {
    FoldU64(out.egress_digest, entry.port);
    for (u8 byte : entry.frame.bytes()) {
      out.egress_digest = (out.egress_digest ^ byte) * kFnvPrime;
    }
  }
  return out;
}

TEST(SimProfilePulse, OffModeCountsButNeverPopulates) {
  const ProfiledRun run = RunProfiledSwitch(ProfilingMode::kOff);
  EXPECT_FALSE(run.profile.profiling_enabled);
  EXPECT_FALSE(run.profile.populated());
  EXPECT_GT(run.profile.edges_run, 0u);  // scalar counters stay valid
  EXPECT_EQ(run.profile.edges_timed, 0u);
  EXPECT_EQ(run.profile.resume_dispatch.wall_ns, 0u);
}

TEST(SimProfilePulse, FullModeTimesEveryEdge) {
  const ProfiledRun run = RunProfiledSwitch(ProfilingMode::kFull);
  ASSERT_TRUE(run.profile.profiling_enabled);
  EXPECT_EQ(run.profile.mode, ProfilingMode::kFull);
  EXPECT_EQ(run.profile.sample_stride, 1u);
  EXPECT_TRUE(run.profile.populated());
  EXPECT_EQ(run.profile.edges_timed, run.profile.edges_run);
  EXPECT_EQ(run.profile.resume_dispatch.timed_calls, run.profile.resume_dispatch.calls);
  // Under full profiling the estimate IS the measured total.
  EXPECT_DOUBLE_EQ(run.profile.resume_dispatch.EstimatedTotalNs(),
                   static_cast<double>(run.profile.resume_dispatch.wall_ns));
}

TEST(SimProfilePulse, SampledModeTimesOneInStride) {
  const ProfiledRun run = RunProfiledSwitch(ProfilingMode::kSampled, /*stride=*/4);
  ASSERT_TRUE(run.profile.profiling_enabled);
  EXPECT_EQ(run.profile.mode, ProfilingMode::kSampled);
  EXPECT_EQ(run.profile.sample_stride, 4u);
  EXPECT_TRUE(run.profile.populated());
  EXPECT_GT(run.profile.edges_timed, 0u);
  EXPECT_LT(run.profile.edges_timed, run.profile.edges_run);
  // The 1-in-4 sample should land within a factor of two of the exact rate
  // (the stride grid is deterministic, not random, so this is not flaky).
  EXPECT_GE(run.profile.edges_timed * 8, run.profile.edges_run);
  // Sample-scaled estimate is bounded below by the raw timed wall time.
  EXPECT_GE(run.profile.resume_dispatch.EstimatedTotalNs(),
            static_cast<double>(run.profile.resume_dispatch.wall_ns));
}

TEST(SimProfilePulse, ProfilingDoesNotPerturbTheWorkload) {
  const ProfiledRun off = RunProfiledSwitch(ProfilingMode::kOff);
  const ProfiledRun sampled = RunProfiledSwitch(ProfilingMode::kSampled);
  const ProfiledRun full = RunProfiledSwitch(ProfilingMode::kFull);
  EXPECT_EQ(off.egress_digest, sampled.egress_digest);
  EXPECT_EQ(off.egress_digest, full.egress_digest);
  EXPECT_EQ(off.profile.edges_run, full.profile.edges_run);
  EXPECT_EQ(off.profile.cycles_fast_forwarded, full.profile.cycles_fast_forwarded);
}

TEST(SimProfilePulse, JsonAndTableExports) {
  const ProfiledRun run = RunProfiledSwitch(ProfilingMode::kSampled, /*stride=*/4);
  const std::string json = obs::SimProfileJson(run.profile);
  EXPECT_NE(json.find("\"profiling_enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"sampled\""), std::string::npos);
  EXPECT_NE(json.find("\"sample_stride\":4"), std::string::npos);
  EXPECT_NE(json.find("\"resume_dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"commit_sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"estimated_total_ns\""), std::string::npos);
  EXPECT_FALSE(obs::FormatSimProfileTable(run.profile).empty());

  // A disabled report exports with the flag down and renders no table —
  // the emu_scope all-zeros regression.
  const SimProfile empty;
  EXPECT_NE(obs::SimProfileJson(empty).find("\"profiling_enabled\":false"),
            std::string::npos);
  EXPECT_TRUE(obs::FormatSimProfileTable(empty).empty());
}

// --- RunnerPulse -----------------------------------------------------------

TEST(RunnerPulse, AggregatesStayExactWhenDetailRingCaps) {
  obs::RunnerPulse pulse(/*max_records=*/4);
  pulse.BeginRun(/*shard_count=*/2, /*threads=*/1);
  u64 want_executed[2] = {0, 0};
  u64 want_wait[2] = {0, 0};
  for (u64 epoch = 1; epoch <= 10; ++epoch) {
    obs::PlanRecord plan;
    plan.epoch = epoch;
    plan.relax_sweeps = 2;
    plan.relaxations = 3;
    plan.frames_drained = epoch;
    pulse.RecordPlan(plan);
    for (u32 shard = 0; shard < 2; ++shard) {
      obs::ShardEpochRecord rec;
      rec.epoch = epoch;
      rec.shard = shard;
      rec.executed = epoch * (shard + 1);
      rec.work_begin_ns = 10;
      rec.work_end_ns = 20;
      rec.barrier_wait_ns = 5 + shard;
      want_executed[shard] += rec.executed;
      want_wait[shard] += rec.barrier_wait_ns;
      pulse.RecordShardEpoch(rec);
    }
  }
  pulse.EndRun(/*total_events=*/123);

  // Detail rings hold only the prefix; the rest is counted, not lost silently.
  EXPECT_EQ(pulse.plans().size(), 4u);
  EXPECT_EQ(pulse.shard_epochs().size(), 4u);
  EXPECT_EQ(pulse.dropped_records(), (10u - 4u) + (20u - 4u));

  // Aggregates keep accumulating past the cap — totals are always exact.
  ASSERT_EQ(pulse.shard_aggregates().size(), 2u);
  for (u32 shard = 0; shard < 2; ++shard) {
    const obs::ShardAggregate& agg = pulse.shard_aggregates()[shard];
    EXPECT_EQ(agg.epochs, 10u);
    EXPECT_EQ(agg.executed, want_executed[shard]);
    EXPECT_EQ(agg.barrier_wait_ns, want_wait[shard]);
    EXPECT_EQ(agg.max_barrier_wait_ns, 5u + shard);
    EXPECT_EQ(agg.work_ns, 10u * 10u);
  }

  // Plan totals come from the exact accumulator, not the capped ring: the
  // ring kept 4 of 10 epochs, yet the totals cover all 10.
  EXPECT_EQ(pulse.plan_aggregate().relax_sweeps, 20u);
  EXPECT_EQ(pulse.plan_aggregate().relaxations, 30u);
  EXPECT_EQ(pulse.plan_aggregate().frames_drained, 55u);

  const std::string json = pulse.SummaryJson();
  EXPECT_NE(json.find("\"total_events\":123"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_records\":22"), std::string::npos);
  EXPECT_NE(json.find("\"relax_sweeps\":20"), std::string::npos);
  EXPECT_NE(json.find("\"null_message_relaxations\":30"), std::string::npos);
  EXPECT_NE(json.find("\"frames_drained\":55"), std::string::npos);
  EXPECT_NE(json.find("\"barrier_wait_ns\""), std::string::npos);
}

// Two independent link ping-pongs across four shards: every shard does real
// work and the conservative planner must relax horizons across the cut, so
// the pulse sees plans, per-shard epochs, and null-message relaxations.
u64 RunFourShardVolleys(usize threads, obs::RunnerPulse* pulse) {
  EventScheduler scheds[4];
  Link link_ab(scheds[0], 10'000'000'000ULL, 500'000);
  Link link_cd(scheds[2], 10'000'000'000ULL, 500'000);
  ParallelRunner runner;
  usize shard[4];
  for (usize i = 0; i < 4; ++i) {
    shard[i] = runner.AddShard(scheds[i]);
  }
  runner.ConnectDirection(link_ab, /*to_b=*/true, shard[0], shard[1]);
  runner.ConnectDirection(link_ab, /*to_b=*/false, shard[1], shard[0]);
  runner.ConnectDirection(link_cd, /*to_b=*/true, shard[2], shard[3]);
  runner.ConnectDirection(link_cd, /*to_b=*/false, shard[3], shard[2]);
  if (pulse != nullptr) {
    runner.AttachPulse(pulse);
  }

  // One digest per link: the two ping-pongs run on different shards, so
  // their handlers interleave in wall time — folding into shared state
  // would race. Each link's own arrival order IS deterministic.
  u64 digests[2] = {kFnvOffset, kFnvOffset};
  usize volleys[2] = {0, 0};
  const auto wire = [](Link& link, EventScheduler& a_clock, EventScheduler& b_clock,
                       u64& digest, usize& count) {
    link.AttachB([&link, &digest, &b_clock, &count](Packet frame) {
      FoldU64(digest, static_cast<u64>(b_clock.now()));
      if (++count < 12) {
        link.SendToA(std::move(frame));
      }
    });
    link.AttachA([&link, &digest, &a_clock](Packet frame) {
      FoldU64(digest, static_cast<u64>(a_clock.now()));
      link.SendToB(std::move(frame));
    });
  };
  wire(link_ab, scheds[0], scheds[1], digests[0], volleys[0]);
  wire(link_cd, scheds[2], scheds[3], digests[1], volleys[1]);
  scheds[0].At(1'000'000, [&link_ab] { link_ab.SendToB(Packet(64)); });
  scheds[2].At(1'500'000, [&link_cd] { link_cd.SendToB(Packet(64)); });

  const u64 events = runner.Run({.threads = threads});
  u64 digest = kFnvOffset;
  FoldU64(digest, digests[0]);
  FoldU64(digest, digests[1]);
  FoldU64(digest, events);
  FoldU64(digest, runner.epochs());
  FoldU64(digest, volleys[0]);
  FoldU64(digest, volleys[1]);
  return digest;
}

TEST(RunnerPulse, FourShardRunReportsPerShardDetail) {
  obs::RunnerPulse pulse;
  RunFourShardVolleys(/*threads=*/4, &pulse);

  EXPECT_EQ(pulse.shard_count(), 4u);
  EXPECT_EQ(pulse.threads(), 4u);
  EXPECT_GT(pulse.epochs(), 0u);
  EXPECT_GT(pulse.total_events(), 0u);
  ASSERT_EQ(pulse.shard_aggregates().size(), 4u);
  for (const obs::ShardAggregate& agg : pulse.shard_aggregates()) {
    EXPECT_GT(agg.epochs, 0u);
    EXPECT_GT(agg.executed, 0u);  // both ping-pongs touch both of their shards
  }
  EXPECT_EQ(pulse.plans().size(), pulse.epochs());
  u64 relaxations = 0;
  for (const obs::PlanRecord& plan : pulse.plans()) {
    relaxations += plan.relaxations;
  }
  EXPECT_GT(relaxations, 0u);  // cut edges force null-message relaxation

  const std::string json = pulse.SummaryJson();
  EXPECT_NE(json.find("\"shards\":4"), std::string::npos);
  EXPECT_NE(json.find("\"null_message_relaxations\""), std::string::npos);
  EXPECT_NE(json.find("\"barrier_wait_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"horizon_ps\""), std::string::npos);

  const std::string trace = pulse.WallClockTraceJson();
  EXPECT_NE(trace.find("epoch.plan"), std::string::npos);
  EXPECT_NE(trace.find("shard.work"), std::string::npos);
  EXPECT_NE(trace.find("barrier.wait"), std::string::npos);
}

TEST(RunnerPulse, AttachmentDoesNotPerturbTheRun) {
  const u64 bare = RunFourShardVolleys(/*threads=*/1, nullptr);
  obs::RunnerPulse pulse;
  EXPECT_EQ(RunFourShardVolleys(/*threads=*/1, &pulse), bare);
  obs::RunnerPulse pulse4;
  EXPECT_EQ(RunFourShardVolleys(/*threads=*/4, &pulse4), bare);
}

// --- TimeSeriesRecorder ----------------------------------------------------

TEST(TimeSeriesRecorder, CapacityHasAFloorOfEight) {
  obs::TimeSeriesRecorder tiny(1);
  EXPECT_EQ(tiny.capacity(), 8u);
}

TEST(TimeSeriesRecorder, HalveAndDoubleKeepsAUniformGrid) {
  obs::TimeSeriesRecorder rec(8);
  std::vector<std::pair<std::string, u64>> values = {{"m", 0}};
  for (u64 i = 0; i < 64; ++i) {
    values[0].second = i;
    rec.Record(static_cast<Picoseconds>(i) * 100, values);
  }
  EXPECT_EQ(rec.offered(), 64u);
  EXPECT_LE(rec.rows().size(), rec.capacity());
  EXPECT_GT(rec.stride(), 1u);
  EXPECT_EQ(rec.stride() & (rec.stride() - 1), 0u);  // power of two
  EXPECT_EQ(rec.dropped(), rec.offered() - rec.rows().size());
  // Retained rows sit on a uniform 1-in-stride grid over the offered samples.
  ASSERT_GE(rec.rows().size(), 2u);
  const Picoseconds step = static_cast<Picoseconds>(rec.stride()) * 100;
  EXPECT_EQ(rec.rows()[0].ts, 0);
  for (usize i = 1; i < rec.rows().size(); ++i) {
    EXPECT_EQ(rec.rows()[i].ts - rec.rows()[i - 1].ts, step) << "row " << i;
  }
}

TEST(TimeSeriesRecorder, SeriesJsonPivotsPerMetric) {
  obs::TimeSeriesRecorder rec(16);
  for (u64 i = 1; i <= 3; ++i) {
    rec.Record(static_cast<Picoseconds>(i) * 1000,
               {{"a.count", i}, {"b.p99", 10 * i}});
  }
  const std::string json = rec.SeriesJson();
  EXPECT_NE(json.find("\"stride\":1"), std::string::npos);
  EXPECT_NE(json.find("\"offered\":3"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"b.p99\""), std::string::npos);
  EXPECT_NE(json.find("[1000,1]"), std::string::npos);
  EXPECT_NE(json.find("[3000,30]"), std::string::npos);
}

// --- SLO gates ---------------------------------------------------------------

TEST(Slo, ParseAcceptsClauseSets) {
  const obs::SloParseResult parsed =
      obs::ParseSloSpec("rtt.p99 <= 400; loss_rate <= 0.02\nalive >= 7");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.clauses.size(), 3u);
  EXPECT_EQ(parsed.clauses[0].metric, "rtt.p99");
  EXPECT_TRUE(parsed.clauses[0].less_equal);
  EXPECT_DOUBLE_EQ(parsed.clauses[0].bound, 400.0);
  EXPECT_DOUBLE_EQ(parsed.clauses[1].bound, 0.02);
  EXPECT_FALSE(parsed.clauses[2].less_equal);
  EXPECT_DOUBLE_EQ(parsed.clauses[2].bound, 7.0);
}

TEST(Slo, ParseRejectsBadClauses) {
  EXPECT_FALSE(obs::ParseSloSpec("rtt.p99 == 400").ok);   // unsupported operator
  EXPECT_FALSE(obs::ParseSloSpec("rtt.p99 <= fast").ok);  // bound is not a number
  EXPECT_FALSE(obs::ParseSloSpec("<= 400").ok);           // no metric
  // The error names the offending clause ordinal for multi-clause specs.
  const obs::SloParseResult bad = obs::ParseSloSpec("a <= 1; b ~ 2");
  ASSERT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("2"), std::string::npos);
}

TEST(Slo, EvaluationPassesFailsAndTreatsMissingAsBreach) {
  const obs::SloParseResult parsed =
      obs::ParseSloSpec("good <= 10; tight <= 1; gone >= 0");
  ASSERT_TRUE(parsed.ok);
  const obs::SloLookup lookup = [](const std::string& name) -> std::optional<double> {
    if (name == "good") {
      return 5.0;
    }
    if (name == "tight") {
      return 2.0;
    }
    return std::nullopt;
  };
  const obs::SloReport report = obs::EvaluateSlo(parsed.clauses, lookup);
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.checks.size(), 3u);
  EXPECT_TRUE(report.checks[0].ok);
  EXPECT_FALSE(report.checks[1].ok);
  EXPECT_FALSE(report.checks[2].ok);
  EXPECT_TRUE(report.checks[2].missing);  // renamed metric must not pass silently

  const std::string text = obs::FormatSloReport(report);
  EXPECT_NE(text.find("PASS"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("missing"), std::string::npos);
  EXPECT_NE(text.find("BREACH"), std::string::npos);
}

TEST(Slo, RegistryLookupResolvesHistogramViews) {
  MetricsRegistry registry;
  u64 counter = 42;
  Histogram h;
  registry.Register("svc.requests", &counter);
  registry.RegisterHistogram("svc.latency_us", &h);
  for (u64 v = 1; v <= 100; ++v) {
    h.Observe(v);
  }
  const obs::SloLookup lookup = obs::MakeRegistryLookup(registry);
  ASSERT_TRUE(lookup("svc.requests").has_value());
  EXPECT_DOUBLE_EQ(*lookup("svc.requests"), 42.0);
  ASSERT_TRUE(lookup("svc.latency_us.count").has_value());
  EXPECT_DOUBLE_EQ(*lookup("svc.latency_us.count"), 100.0);
  ASSERT_TRUE(lookup("svc.latency_us.p99").has_value());
  EXPECT_GT(*lookup("svc.latency_us.p99"), 0.0);
  EXPECT_FALSE(lookup("svc.renamed").has_value());

  const obs::SloParseResult parsed = obs::ParseSloSpec("svc.latency_us.p99 <= 1000000");
  ASSERT_TRUE(parsed.ok);
  EXPECT_TRUE(obs::EvaluateSlo(parsed.clauses, lookup).ok);
}

// --- Soak dashboard ----------------------------------------------------------

TEST(Dashboard, RendersSeriesChartsAndSloTable) {
  obs::TimeSeriesRecorder rec(16);
  for (u64 i = 1; i <= 4; ++i) {
    rec.Record(static_cast<Picoseconds>(i) * kPicosPerMilli,
               {{"rtt_us.p99", 100 + i}, {"replies", 10 * i}});
  }
  obs::SloReport slo;
  slo.checks.push_back({{"rtt_us.p99", true, 400.0, "rtt_us.p99 <= 400"}, true, false, 104.0});
  slo.checks.push_back({{"loss", true, 0.0, "loss <= 0"}, false, false, 0.5});
  slo.ok = false;

  obs::DashboardOptions options;
  options.title = "soak";
  const std::vector<obs::ChartSpec> charts = {
      {"RTT", "us", {"rtt_us.p99"}, false},
      {"Throughput", "replies/s", {"replies"}, true},
  };
  const std::string html = obs::RenderSoakDashboardHtml(options, rec, charts, slo);
  EXPECT_NE(html.find("rtt_us.p99"), std::string::npos);  // p99 series is plotted
  EXPECT_NE(html.find("SLO gates"), std::string::npos);
  EXPECT_NE(html.find("PASS"), std::string::npos);
  EXPECT_NE(html.find("FAIL"), std::string::npos);
  // Self-contained by design: no external script or stylesheet references
  // (the only URLs allowed are XML namespaces inside the inline renderer).
  EXPECT_EQ(html.find("<script src"), std::string::npos);
  EXPECT_EQ(html.find("<link "), std::string::npos);

  // Without SLO checks the gate table is omitted entirely.
  const std::string bare =
      obs::RenderSoakDashboardHtml(options, rec, charts, obs::SloReport{});
  EXPECT_EQ(bare.find("SLO gates"), std::string::npos);
}

// --- MetricsSampler edge cases ------------------------------------------------

TEST(MetricsSamplerEdge, EmptyRegistryYieldsRowsButNoCsv) {
  MetricsRegistry registry;
  MetricsSampler sampler(registry, 10 * kPicosPerMicro);
  sampler.Sample(5 * kPicosPerMicro);
  ASSERT_EQ(sampler.rows().size(), 1u);
  EXPECT_TRUE(sampler.rows()[0].values.empty());
  EXPECT_EQ(sampler.Csv(), "ts_ps,name,value\n");  // header only, no data rows
}

TEST(MetricsSamplerEdge, HistogramViewsExpandInRowsAndCsv) {
  MetricsRegistry registry;
  Histogram h;
  registry.RegisterHistogram("rtt_us", &h);
  h.Observe(10);
  h.Observe(20);
  MetricsSampler sampler(registry, kPicosPerMilli);
  sampler.Sample(kPicosPerMilli);

  ASSERT_EQ(sampler.rows().size(), 1u);
  u64 count = 0;
  u64 sum = 0;
  bool saw_p99 = false;
  for (const auto& [name, value] : sampler.rows()[0].values) {
    if (name == "rtt_us.count") {
      count = value;
    } else if (name == "rtt_us.sum") {
      sum = value;
    } else if (name == "rtt_us.p99") {
      saw_p99 = true;
    }
  }
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(sum, 30u);
  EXPECT_TRUE(saw_p99);
  const std::string csv = sampler.Csv();
  EXPECT_NE(csv.find("rtt_us.count,2"), std::string::npos);
  EXPECT_NE(csv.find("rtt_us.sum,30"), std::string::npos);
}

TEST(MetricsSamplerEdge, FeedsAttachedRecorderAndPrometheusLints) {
  MetricsRegistry registry;
  u64 counter = 0;
  Histogram h;
  registry.Register("soak.frames", &counter);
  registry.RegisterHistogram("soak.rtt_us", &h);

  obs::TimeSeriesRecorder rec(16);
  EventScheduler scheduler;
  MetricsSampler sampler(registry, 10 * kPicosPerMicro);
  sampler.AttachRecorder(&rec);
  sampler.SchedulePeriodic(scheduler, 50 * kPicosPerMicro);
  for (int i = 1; i <= 5; ++i) {
    scheduler.At((i * 10 - 1) * kPicosPerMicro, [&counter, &h, i] {
      counter += 3;
      h.Observe(static_cast<u64>(i));
    });
  }
  scheduler.Run();

  EXPECT_EQ(sampler.rows().size(), 5u);
  EXPECT_EQ(rec.offered(), 5u);
  ASSERT_EQ(rec.rows().size(), 5u);
  EXPECT_EQ(rec.rows()[0].ts, 10 * kPicosPerMicro);
  EXPECT_EQ(rec.rows()[0].values, sampler.rows()[0].values);

  // The registry the soaks publish with --prom must pass the linter.
  std::string error;
  EXPECT_TRUE(PrometheusLint(registry.PrometheusText(), &error)) << error;
}

}  // namespace
}  // namespace emu
