// Event-driven network simulator (Mininet substitute), loadgens, and stats.
#include <gtest/gtest.h>

#include "src/services/icmp_echo_service.h"
#include "src/services/learning_switch.h"
#include "src/services/nat_service.h"
#include "src/sim/event_scheduler.h"
#include "src/sim/latency_probe.h"
#include "src/sim/link.h"
#include "src/sim/loadgen.h"
#include "src/sim/memaslap.h"
#include "src/sim/topology.h"
#include "src/sim/trace_dump.h"
#include "src/net/arp.h"
#include "src/net/icmp.h"
#include "src/net/udp.h"

#include <set>

namespace emu {
namespace {

// --- EventScheduler ------------------------------------------------------------

TEST(EventScheduler, RunsEventsInTimeOrder) {
  EventScheduler scheduler;
  std::vector<int> order;
  scheduler.At(300, [&] { order.push_back(3); });
  scheduler.At(100, [&] { order.push_back(1); });
  scheduler.At(200, [&] { order.push_back(2); });
  scheduler.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), 300);
}

TEST(EventScheduler, SimultaneousEventsFifo) {
  EventScheduler scheduler;
  std::vector<int> order;
  scheduler.At(100, [&] { order.push_back(1); });
  scheduler.At(100, [&] { order.push_back(2); });
  scheduler.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventScheduler, EventsCanScheduleMoreEvents) {
  EventScheduler scheduler;
  int fired = 0;
  scheduler.At(10, [&] {
    ++fired;
    scheduler.After(5, [&] { ++fired; });
  });
  scheduler.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(scheduler.now(), 15);
}

TEST(EventScheduler, RunUntilStopsAtDeadline) {
  EventScheduler scheduler;
  int fired = 0;
  scheduler.At(10, [&] { ++fired; });
  scheduler.At(100, [&] { ++fired; });
  scheduler.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(scheduler.now(), 50);
  EXPECT_EQ(scheduler.pending(), 1u);
}

TEST(EventScheduler, PastEventsClampToNow) {
  EventScheduler scheduler;
  scheduler.At(100, [] {});
  scheduler.Run();
  bool fired = false;
  scheduler.At(10, [&] { fired = true; });  // in the past
  scheduler.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(scheduler.now(), 100);
}

// --- Link -----------------------------------------------------------------------

TEST(Link, DeliversWithSerializationAndPropagation) {
  EventScheduler scheduler;
  Link link(scheduler, 10'000'000'000ULL, 1000);  // 10G, 1 ns propagation
  Picoseconds arrival = 0;
  link.AttachB([&](Packet) { arrival = scheduler.now(); });
  Packet frame(64);
  link.SendToB(std::move(frame));
  scheduler.Run();
  // (64+24)*8 bits at 10G = 70.4 ns + 1 ns propagation.
  EXPECT_EQ(arrival, 70'400 + 1000);
}

TEST(Link, BackToBackFramesQueueOnBandwidth) {
  EventScheduler scheduler;
  Link link(scheduler, 10'000'000'000ULL, 0);
  std::vector<Picoseconds> arrivals;
  link.AttachB([&](Packet) { arrivals.push_back(scheduler.now()); });
  link.SendToB(Packet(64));
  link.SendToB(Packet(64));
  scheduler.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], 70'400);
}

TEST(Link, DirectionsAreIndependent) {
  EventScheduler scheduler;
  Link link(scheduler, 10'000'000'000ULL, 0);
  int a_count = 0;
  int b_count = 0;
  link.AttachA([&](Packet) { ++a_count; });
  link.AttachB([&](Packet) { ++b_count; });
  link.SendToB(Packet(64));
  link.SendToA(Packet(64));
  scheduler.Run();
  EXPECT_EQ(a_count, 1);
  EXPECT_EQ(b_count, 1);
}

// --- Topology + SimTarget ----------------------------------------------------------

std::vector<HostSpec> TwoHosts() {
  return {{"h0", MacAddress::FromU48(0x020000000001), Ipv4Address(10, 0, 0, 1)},
          {"h1", MacAddress::FromU48(0x020000000002), Ipv4Address(10, 0, 0, 2)}};
}

TEST(SimTarget, SwitchFloodsThenUnicasts) {
  LearningSwitch service;
  StarTopology topo(service, TwoHosts());

  usize h1_received = 0;
  topo.host(1).SetApp([&](SimHost&, Packet) { ++h1_received; });
  usize h0_received = 0;
  topo.host(0).SetApp([&](SimHost&, Packet) { ++h0_received; });

  // h0 -> h1 (unknown: flooded, h1 gets it; h0 does not get a copy back).
  topo.host(0).Send(MakeEthernetFrame(topo.host(1).mac(), topo.host(0).mac(),
                                      EtherType::kIpv4, std::vector<u8>{1}));
  topo.Run();
  EXPECT_EQ(h1_received, 1u);
  EXPECT_EQ(h0_received, 0u);

  // h1 -> h0: now unicast thanks to learning.
  topo.host(1).Send(MakeEthernetFrame(topo.host(0).mac(), topo.host(1).mac(),
                                      EtherType::kIpv4, std::vector<u8>{2}));
  topo.Run();
  EXPECT_EQ(h0_received, 1u);
  EXPECT_EQ(h1_received, 1u);
}

TEST(SimTarget, IcmpEchoServiceAnswersInSimulator) {
  IcmpEchoConfig config;
  IcmpEchoService service(config);
  StarTopology topo(service, TwoHosts());

  bool got_reply = false;
  topo.host(0).SetApp([&](SimHost&, Packet frame) {
    Ipv4View ip(frame);
    if (ip.Valid() && ip.ProtocolIs(IpProtocol::kIcmp)) {
      IcmpView icmp(frame, ip.payload_offset());
      got_reply = icmp.TypeIs(IcmpType::kEchoReply);
    }
  });
  topo.host(0).Send(MakeIcmpEchoRequest(
      {config.mac, topo.host(0).mac(), topo.host(0).ip(), config.ip, 1, 1}, {}));
  topo.Run();
  EXPECT_TRUE(got_reply);
}

TEST(SimTarget, NatRunsInSimulatorToo) {
  // The paper's NAT test case compiles to software, Mininet, and hardware;
  // this is the Mininet leg (§4.4).
  NatConfig config;
  NatService service(config);
  std::vector<HostSpec> hosts = {
      {"ext", MacAddress::FromU48(0x02ffffffff01), Ipv4Address(8, 8, 8, 8)},
      {"int", MacAddress::FromU48(0x020000001110), Ipv4Address(192, 168, 1, 10)}};
  StarTopology topo(service, hosts);

  bool external_saw_translated = false;
  topo.host(0).SetApp([&](SimHost&, Packet frame) {
    Ipv4View ip(frame);
    external_saw_translated = ip.Valid() && ip.source() == config.external_ip;
  });
  topo.host(1).Send(MakeUdpPacket({config.internal_mac, hosts[1].mac, hosts[1].ip,
                                   hosts[0].ip, 4000, 53},
                                  std::vector<u8>{'x'}));
  topo.Run();
  EXPECT_TRUE(external_saw_translated);
}

// --- LatencyStats --------------------------------------------------------------------

TEST(LatencyStats, BasicMoments) {
  LatencyStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.Add(static_cast<Picoseconds>(i) * kPicosPerMicro);
  }
  EXPECT_NEAR(stats.MeanUs(), 50.5, 1e-9);
  EXPECT_NEAR(stats.MinUs(), 1.0, 1e-9);
  EXPECT_NEAR(stats.MaxUs(), 100.0, 1e-9);
  EXPECT_NEAR(stats.MedianUs(), 50.5, 0.6);
  EXPECT_NEAR(stats.PercentileUs(99.0), 99.0, 1.1);
}

TEST(LatencyStats, TailToAverage) {
  // 5% of requests are 10x slower: nearest-rank p99 lands inside the slow
  // tail and the ratio exposes it.
  LatencyStats stats;
  for (int i = 0; i < 95; ++i) {
    stats.Add(10 * kPicosPerMicro);
  }
  for (int i = 0; i < 5; ++i) {
    stats.Add(100 * kPicosPerMicro);
  }
  EXPECT_GT(stats.TailToAverage(), 1.0);
}

TEST(LatencyStats, EmptyIsZero) {
  LatencyStats stats;
  EXPECT_EQ(stats.MeanUs(), 0.0);
  EXPECT_EQ(stats.PercentileUs(99), 0.0);
}

// Nearest-rank percentiles at the edge cases the definition is usually got
// wrong on: empty, singleton, and two-sample sets, at p = 0/50/99/100.
TEST(LatencyStats, NearestRankSmallSampleCounts) {
  LatencyStats empty;
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(empty.PercentileUs(p), 0.0) << "p=" << p;
  }

  LatencyStats one;
  one.Add(7 * kPicosPerMicro);
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_NEAR(one.PercentileUs(p), 7.0, 1e-9) << "p=" << p;
  }

  LatencyStats two;
  two.Add(10 * kPicosPerMicro);
  two.Add(20 * kPicosPerMicro);
  EXPECT_NEAR(two.PercentileUs(0.0), 10.0, 1e-9);    // rank clamps to 1: the min
  EXPECT_NEAR(two.PercentileUs(50.0), 10.0, 1e-9);   // ceil(0.5 * 2) = rank 1
  EXPECT_NEAR(two.PercentileUs(99.0), 20.0, 1e-9);   // ceil(0.99 * 2) = rank 2
  EXPECT_NEAR(two.PercentileUs(100.0), 20.0, 1e-9);  // rank 2, not one past the end
}

TEST(LatencyStats, PercentileHundredIsMaxAtAnyCount) {
  LatencyStats stats;
  for (int i = 1; i <= 7; ++i) {
    stats.Add(static_cast<Picoseconds>(i) * kPicosPerMicro);
  }
  EXPECT_NEAR(stats.PercentileUs(100.0), stats.MaxUs(), 1e-9);
  EXPECT_NEAR(stats.PercentileUs(0.0), stats.MinUs(), 1e-9);
}

// Accessors must not mutate (the old lazy-sort flag was UB under the
// threaded engine): interleaving reads with writes keeps order-insensitive
// results consistent.
TEST(LatencyStats, ConstAccessorsDoNotReorderSamples) {
  LatencyStats stats;
  stats.Add(30 * kPicosPerMicro);
  stats.Add(10 * kPicosPerMicro);
  EXPECT_NEAR(stats.PercentileUs(100.0), 30.0, 1e-9);
  stats.Add(20 * kPicosPerMicro);  // appended after a percentile read
  EXPECT_NEAR(stats.MedianUs(), 20.0, 1e-9);
  EXPECT_NEAR(stats.MinUs(), 10.0, 1e-9);
  EXPECT_NEAR(stats.MaxUs(), 30.0, 1e-9);
}

// --- OsntLoadgen ---------------------------------------------------------------------

TEST(OsntLoadgen, UnloadedRttOnIcmpEcho) {
  IcmpEchoConfig config;
  IcmpEchoService service(config);
  FpgaTarget target(service);
  const MacAddress client = MacAddress::FromU48(0x02'00'00'00'cc'01);
  const auto factory = [&](usize i, u8) {
    return MakeIcmpEchoRequest(
        {config.mac, client, Ipv4Address(10, 0, 0, 9), config.ip, static_cast<u16>(i), 0}, {});
  };
  const LatencyStats stats = OsntLoadgen::MeasureUnloadedRtt(target, factory, 50);
  ASSERT_EQ(stats.count(), 50u);
  // Table 4 Emu row: ~1.09 us with a very flat tail.
  EXPECT_GT(stats.MeanUs(), 0.5);
  EXPECT_LT(stats.MeanUs(), 2.0);
  EXPECT_LT(stats.TailToAverage(), 1.1);
}

TEST(OsntLoadgen, FixedRateReportsLoss) {
  IcmpEchoConfig config;
  IcmpEchoService service(config);
  PipelineConfig pipe;
  pipe.rx_fifo_depth = 8;
  FpgaTarget target(service, pipe);
  const MacAddress client = MacAddress::FromU48(0x02'00'00'00'cc'01);
  const auto factory = [&](usize i, u8) {
    return MakeIcmpEchoRequest(
        {config.mac, client, Ipv4Address(10, 0, 0, 9), config.ip, static_cast<u16>(i), 0}, {});
  };
  OsntLoadgen::FixedRateConfig rate;
  rate.offered_mqps = 50.0;  // way beyond the echo service's capacity
  rate.frames = 4000;        // sustained long enough to defeat buffering
  rate.ports = {0, 1, 2, 3};
  const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, rate);
  EXPECT_EQ(report.injected, 4000u);
  EXPECT_GT(report.loss_rate, 0.05);
  EXPECT_GT(report.egressed, 0u);
}

TEST(OsntLoadgen, ZeroFramesHasZeroLossAndNoDivide) {
  IcmpEchoConfig config;
  IcmpEchoService service(config);
  FpgaTarget target(service);
  const MacAddress client = MacAddress::FromU48(0x02'00'00'00'cc'01);
  const auto factory = [&](usize i, u8) {
    return MakeIcmpEchoRequest(
        {config.mac, client, Ipv4Address(10, 0, 0, 9), config.ip, static_cast<u16>(i), 0}, {});
  };
  OsntLoadgen::FixedRateConfig rate;
  rate.frames = 0;
  rate.drain_limit = 10'000;
  // A nonzero drop counter with zero injected frames must not produce a
  // negative or divide-by-zero loss rate.
  rate.accounted_drops = [] { return u64{12}; };
  const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, rate);
  EXPECT_EQ(report.injected, 0u);
  EXPECT_EQ(report.accounted_drops, 0u);  // clamped to injected
  EXPECT_EQ(report.loss_rate, 0.0);
  EXPECT_EQ(report.raw_loss_rate, 0.0);
}

TEST(OsntLoadgen, AccountedDropsClampedToInjected) {
  IcmpEchoConfig config;
  IcmpEchoService service(config);
  FpgaTarget target(service);
  const MacAddress client = MacAddress::FromU48(0x02'00'00'00'cc'01);
  const auto factory = [&](usize i, u8) {
    return MakeIcmpEchoRequest(
        {config.mac, client, Ipv4Address(10, 0, 0, 9), config.ip, static_cast<u16>(i), 0}, {});
  };
  OsntLoadgen::FixedRateConfig rate;
  rate.offered_mqps = 1.0;
  rate.frames = 20;
  // A double-booking counter claims more drops than frames ever existed; the
  // report must clamp so downstream verdicts stay inside [0, 1].
  rate.accounted_drops = [] { return u64{1'000'000}; };
  const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, rate);
  EXPECT_EQ(report.injected, 20u);
  EXPECT_LE(report.accounted_drops, report.injected);
  EXPECT_GE(report.loss_rate, 0.0);
  EXPECT_LE(report.loss_rate, 1.0);
}

TEST(OsntLoadgen, RateSearchFindsCapacityOrder) {
  // A synthetic trial whose loss is zero below 2.0 Mqps and grows above it:
  // the search must land near 2.0.
  const auto trial = [](double offered) {
    LoadgenReport report;
    report.injected = 1000;
    report.offered_mqps = offered;
    if (offered <= 2.0) {
      report.egressed = 1000;
      report.achieved_mqps = offered;
    } else {
      report.egressed = static_cast<usize>(1000 * 2.0 / offered);
      report.achieved_mqps = 2.0;
    }
    report.loss_rate =
        1.0 - static_cast<double>(report.egressed) / static_cast<double>(report.injected);
    return report;
  };
  const double max = OsntLoadgen::FindMaxThroughputMqps(trial, 0.1, 10.0);
  EXPECT_NEAR(max, 2.0, 0.1);
}

// --- Memaslap ------------------------------------------------------------------------

TEST(Memaslap, MixIsNinetyTen) {
  MemaslapConfig config;
  config.server_mac = MacAddress::FromU48(0x02'00'00'00'ee'04);
  config.server_ip = Ipv4Address(10, 0, 0, 211);
  MemaslapLoadgen loadgen(config);
  usize gets = 0;
  const usize n = 5000;
  for (usize i = 0; i < n; ++i) {
    Packet frame = loadgen.WorkloadFrame(i);
    Ipv4View ip(frame);
    UdpView udp(frame, ip.payload_offset());
    auto request = ParseMcRequest(udp.Payload(), config.protocol);
    ASSERT_TRUE(request.ok());
    if (request->op == McOpcode::kGet) {
      ++gets;
    } else {
      EXPECT_EQ(request->op, McOpcode::kSet);
      EXPECT_EQ(request->value.size(), config.value_bytes);
    }
    EXPECT_EQ(request->key.size(), config.key_bytes);
  }
  EXPECT_NEAR(static_cast<double>(gets) / n, 0.9, 0.02);
  EXPECT_NEAR(loadgen.ObservedGetFraction(), 0.9, 0.02);
}

TEST(Memaslap, PrewarmCoversKeySpace) {
  MemaslapConfig config;
  config.server_mac = MacAddress::FromU48(0x02'00'00'00'ee'04);
  config.server_ip = Ipv4Address(10, 0, 0, 211);
  config.key_space = 50;
  MemaslapLoadgen loadgen(config);
  std::set<std::string> keys;
  for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
    Packet frame = loadgen.PrewarmFrame(i);
    Ipv4View ip(frame);
    UdpView udp(frame, ip.payload_offset());
    auto request = ParseMcRequest(udp.Payload(), config.protocol);
    ASSERT_TRUE(request.ok());
    EXPECT_EQ(request->op, McOpcode::kSet);
    keys.insert(request->key);
  }
  EXPECT_EQ(keys.size(), 50u);
}

TEST(Memaslap, DeterministicForSameSeed) {
  MemaslapConfig config;
  config.server_mac = MacAddress::FromU48(0x02'00'00'00'ee'04);
  config.server_ip = Ipv4Address(10, 0, 0, 211);
  MemaslapLoadgen a(config);
  MemaslapLoadgen b(config);
  for (usize i = 0; i < 100; ++i) {
    const Packet fa = a.WorkloadFrame(i);
    const Packet fb = b.WorkloadFrame(i);
    ASSERT_EQ(fa.size(), fb.size());
    for (usize j = 0; j < fa.size(); ++j) {
      ASSERT_EQ(fa[j], fb[j]);
    }
  }
}

// --- TraceDump -----------------------------------------------------------------------

TEST(TraceDump, SummarizesPackets) {
  TraceDump dump;
  Packet udp = MakeUdpPacket({MacAddress::FromU48(1), MacAddress::FromU48(2),
                              Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1, 2},
                             std::vector<u8>{1});
  dump.Capture(1 * kPicosPerMicro, "rx", udp);
  const std::string summary = dump.Summary();
  EXPECT_NE(summary.find("rx"), std::string::npos);
  EXPECT_NE(summary.find("10.0.0.1>10.0.0.2"), std::string::npos);
  EXPECT_NE(summary.find("proto=17"), std::string::npos);
}

TEST(TraceDump, DescribesArp) {
  const Packet arp = MakeArpRequest(MacAddress::FromU48(5), Ipv4Address(10, 0, 0, 1),
                                    Ipv4Address(10, 0, 0, 2));
  const std::string description = DescribePacket(arp);
  EXPECT_NE(description.find("ARP request"), std::string::npos);
  EXPECT_NE(description.find("asks 10.0.0.2"), std::string::npos);
}

TEST(TraceDump, FullIncludesHexdump) {
  TraceDump dump;
  dump.Capture(0, "tx", Packet(std::vector<u8>{0xde, 0xad}));
  EXPECT_NE(dump.Full().find("de ad"), std::string::npos);
}

TEST(TraceDump, WritesFile) {
  TraceDump dump;
  dump.Capture(0, "tx", Packet(4));
  EXPECT_TRUE(dump.WriteToFile("/tmp/emu_trace_test.txt"));
}

}  // namespace
}  // namespace emu
