// Event-driven network simulator (Mininet substitute), loadgens, and stats.
#include <gtest/gtest.h>

#include "src/services/icmp_echo_service.h"
#include "src/services/learning_switch.h"
#include "src/services/nat_service.h"
#include "src/sim/event_scheduler.h"
#include "src/sim/latency_probe.h"
#include "src/sim/link.h"
#include "src/sim/loadgen.h"
#include "src/sim/memaslap.h"
#include "src/sim/topology.h"
#include "src/sim/trace_dump.h"
#include "src/net/arp.h"
#include "src/net/ethernet.h"
#include "src/net/icmp.h"
#include "src/net/udp.h"

#include <set>

namespace emu {
namespace {

// --- EventScheduler ------------------------------------------------------------

TEST(EventScheduler, RunsEventsInTimeOrder) {
  EventScheduler scheduler;
  std::vector<int> order;
  scheduler.At(300, [&] { order.push_back(3); });
  scheduler.At(100, [&] { order.push_back(1); });
  scheduler.At(200, [&] { order.push_back(2); });
  scheduler.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), 300);
}

TEST(EventScheduler, SimultaneousEventsFifo) {
  EventScheduler scheduler;
  std::vector<int> order;
  scheduler.At(100, [&] { order.push_back(1); });
  scheduler.At(100, [&] { order.push_back(2); });
  scheduler.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventScheduler, EventsCanScheduleMoreEvents) {
  EventScheduler scheduler;
  int fired = 0;
  scheduler.At(10, [&] {
    ++fired;
    scheduler.After(5, [&] { ++fired; });
  });
  scheduler.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(scheduler.now(), 15);
}

TEST(EventScheduler, RunUntilStopsAtDeadline) {
  EventScheduler scheduler;
  int fired = 0;
  scheduler.At(10, [&] { ++fired; });
  scheduler.At(100, [&] { ++fired; });
  scheduler.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(scheduler.now(), 50);
  EXPECT_EQ(scheduler.pending(), 1u);
}

TEST(EventScheduler, PastEventsClampToNow) {
  EventScheduler scheduler;
  scheduler.At(100, [] {});
  scheduler.Run();
  bool fired = false;
  scheduler.At(10, [&] { fired = true; });  // in the past
  scheduler.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(scheduler.now(), 100);
}

// --- Link -----------------------------------------------------------------------

TEST(Link, DeliversWithSerializationAndPropagation) {
  EventScheduler scheduler;
  Link link(scheduler, 10'000'000'000ULL, 1000);  // 10G, 1 ns propagation
  Picoseconds arrival = 0;
  link.AttachB([&](Packet) { arrival = scheduler.now(); });
  Packet frame(64);
  link.SendToB(std::move(frame));
  scheduler.Run();
  // (64+24)*8 bits at 10G = 70.4 ns + 1 ns propagation.
  EXPECT_EQ(arrival, 70'400 + 1000);
}

TEST(Link, BackToBackFramesQueueOnBandwidth) {
  EventScheduler scheduler;
  Link link(scheduler, 10'000'000'000ULL, 0);
  std::vector<Picoseconds> arrivals;
  link.AttachB([&](Packet) { arrivals.push_back(scheduler.now()); });
  link.SendToB(Packet(64));
  link.SendToB(Packet(64));
  scheduler.Run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], 70'400);
}

TEST(Link, DirectionsAreIndependent) {
  EventScheduler scheduler;
  Link link(scheduler, 10'000'000'000ULL, 0);
  int a_count = 0;
  int b_count = 0;
  link.AttachA([&](Packet) { ++a_count; });
  link.AttachB([&](Packet) { ++b_count; });
  link.SendToB(Packet(64));
  link.SendToA(Packet(64));
  scheduler.Run();
  EXPECT_EQ(a_count, 1);
  EXPECT_EQ(b_count, 1);
}

// --- Topology + SimTarget ----------------------------------------------------------

std::vector<HostSpec> TwoHosts() {
  return {{"h0", MacAddress::FromU48(0x020000000001), Ipv4Address(10, 0, 0, 1)},
          {"h1", MacAddress::FromU48(0x020000000002), Ipv4Address(10, 0, 0, 2)}};
}

TEST(SimTarget, SwitchFloodsThenUnicasts) {
  LearningSwitch service;
  StarTopology topo(service, TwoHosts());

  usize h1_received = 0;
  topo.host(1).SetApp([&](SimHost&, Packet) { ++h1_received; });
  usize h0_received = 0;
  topo.host(0).SetApp([&](SimHost&, Packet) { ++h0_received; });

  // h0 -> h1 (unknown: flooded, h1 gets it; h0 does not get a copy back).
  topo.host(0).Send(MakeEthernetFrame(topo.host(1).mac(), topo.host(0).mac(),
                                      EtherType::kIpv4, std::vector<u8>{1}));
  topo.Run();
  EXPECT_EQ(h1_received, 1u);
  EXPECT_EQ(h0_received, 0u);

  // h1 -> h0: now unicast thanks to learning.
  topo.host(1).Send(MakeEthernetFrame(topo.host(0).mac(), topo.host(1).mac(),
                                      EtherType::kIpv4, std::vector<u8>{2}));
  topo.Run();
  EXPECT_EQ(h0_received, 1u);
  EXPECT_EQ(h1_received, 1u);
}

TEST(SimTarget, IcmpEchoServiceAnswersInSimulator) {
  IcmpEchoConfig config;
  IcmpEchoService service(config);
  StarTopology topo(service, TwoHosts());

  bool got_reply = false;
  topo.host(0).SetApp([&](SimHost&, Packet frame) {
    Ipv4View ip(frame);
    if (ip.Valid() && ip.ProtocolIs(IpProtocol::kIcmp)) {
      IcmpView icmp(frame, ip.payload_offset());
      got_reply = icmp.TypeIs(IcmpType::kEchoReply);
    }
  });
  topo.host(0).Send(MakeIcmpEchoRequest(
      {config.mac, topo.host(0).mac(), topo.host(0).ip(), config.ip, 1, 1}, {}));
  topo.Run();
  EXPECT_TRUE(got_reply);
}

TEST(SimTarget, NatRunsInSimulatorToo) {
  // The paper's NAT test case compiles to software, Mininet, and hardware;
  // this is the Mininet leg (§4.4).
  NatConfig config;
  NatService service(config);
  std::vector<HostSpec> hosts = {
      {"ext", MacAddress::FromU48(0x02ffffffff01), Ipv4Address(8, 8, 8, 8)},
      {"int", MacAddress::FromU48(0x020000001110), Ipv4Address(192, 168, 1, 10)}};
  StarTopology topo(service, hosts);

  bool external_saw_translated = false;
  topo.host(0).SetApp([&](SimHost&, Packet frame) {
    Ipv4View ip(frame);
    external_saw_translated = ip.Valid() && ip.source() == config.external_ip;
  });
  topo.host(1).Send(MakeUdpPacket({config.internal_mac, hosts[1].mac, hosts[1].ip,
                                   hosts[0].ip, 4000, 53},
                                  std::vector<u8>{'x'}));
  topo.Run();
  EXPECT_TRUE(external_saw_translated);
}

// --- LatencyStats --------------------------------------------------------------------

TEST(LatencyStats, BasicMoments) {
  LatencyStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.Add(static_cast<Picoseconds>(i) * kPicosPerMicro);
  }
  EXPECT_NEAR(stats.MeanUs(), 50.5, 1e-9);
  EXPECT_NEAR(stats.MinUs(), 1.0, 1e-9);
  EXPECT_NEAR(stats.MaxUs(), 100.0, 1e-9);
  EXPECT_NEAR(stats.MedianUs(), 50.5, 0.6);
  EXPECT_NEAR(stats.PercentileUs(99.0), 99.0, 1.1);
}

TEST(LatencyStats, TailToAverage) {
  // 5% of requests are 10x slower: nearest-rank p99 lands inside the slow
  // tail and the ratio exposes it.
  LatencyStats stats;
  for (int i = 0; i < 95; ++i) {
    stats.Add(10 * kPicosPerMicro);
  }
  for (int i = 0; i < 5; ++i) {
    stats.Add(100 * kPicosPerMicro);
  }
  EXPECT_GT(stats.TailToAverage(), 1.0);
}

TEST(LatencyStats, EmptyIsZero) {
  LatencyStats stats;
  EXPECT_EQ(stats.MeanUs(), 0.0);
  EXPECT_EQ(stats.PercentileUs(99), 0.0);
}

// Nearest-rank percentiles at the edge cases the definition is usually got
// wrong on: empty, singleton, and two-sample sets, at p = 0/50/99/100.
TEST(LatencyStats, NearestRankSmallSampleCounts) {
  LatencyStats empty;
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(empty.PercentileUs(p), 0.0) << "p=" << p;
  }

  LatencyStats one;
  one.Add(7 * kPicosPerMicro);
  for (double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_NEAR(one.PercentileUs(p), 7.0, 1e-9) << "p=" << p;
  }

  LatencyStats two;
  two.Add(10 * kPicosPerMicro);
  two.Add(20 * kPicosPerMicro);
  EXPECT_NEAR(two.PercentileUs(0.0), 10.0, 1e-9);    // rank clamps to 1: the min
  EXPECT_NEAR(two.PercentileUs(50.0), 10.0, 1e-9);   // ceil(0.5 * 2) = rank 1
  EXPECT_NEAR(two.PercentileUs(99.0), 20.0, 1e-9);   // ceil(0.99 * 2) = rank 2
  EXPECT_NEAR(two.PercentileUs(100.0), 20.0, 1e-9);  // rank 2, not one past the end
}

TEST(LatencyStats, PercentileHundredIsMaxAtAnyCount) {
  LatencyStats stats;
  for (int i = 1; i <= 7; ++i) {
    stats.Add(static_cast<Picoseconds>(i) * kPicosPerMicro);
  }
  EXPECT_NEAR(stats.PercentileUs(100.0), stats.MaxUs(), 1e-9);
  EXPECT_NEAR(stats.PercentileUs(0.0), stats.MinUs(), 1e-9);
}

// Accessors must not mutate (the old lazy-sort flag was UB under the
// threaded engine): interleaving reads with writes keeps order-insensitive
// results consistent.
TEST(LatencyStats, ConstAccessorsDoNotReorderSamples) {
  LatencyStats stats;
  stats.Add(30 * kPicosPerMicro);
  stats.Add(10 * kPicosPerMicro);
  EXPECT_NEAR(stats.PercentileUs(100.0), 30.0, 1e-9);
  stats.Add(20 * kPicosPerMicro);  // appended after a percentile read
  EXPECT_NEAR(stats.MedianUs(), 20.0, 1e-9);
  EXPECT_NEAR(stats.MinUs(), 10.0, 1e-9);
  EXPECT_NEAR(stats.MaxUs(), 30.0, 1e-9);
}

// --- OsntLoadgen ---------------------------------------------------------------------

TEST(OsntLoadgen, UnloadedRttOnIcmpEcho) {
  IcmpEchoConfig config;
  IcmpEchoService service(config);
  FpgaTarget target(service);
  const MacAddress client = MacAddress::FromU48(0x02'00'00'00'cc'01);
  const auto factory = [&](usize i, u8) {
    return MakeIcmpEchoRequest(
        {config.mac, client, Ipv4Address(10, 0, 0, 9), config.ip, static_cast<u16>(i), 0}, {});
  };
  const LatencyStats stats = OsntLoadgen::MeasureUnloadedRtt(target, factory, 50);
  ASSERT_EQ(stats.count(), 50u);
  // Table 4 Emu row: ~1.09 us with a very flat tail.
  EXPECT_GT(stats.MeanUs(), 0.5);
  EXPECT_LT(stats.MeanUs(), 2.0);
  EXPECT_LT(stats.TailToAverage(), 1.1);
}

TEST(OsntLoadgen, FixedRateReportsLoss) {
  IcmpEchoConfig config;
  IcmpEchoService service(config);
  PipelineConfig pipe;
  pipe.rx_fifo_depth = 8;
  FpgaTarget target(service, pipe);
  const MacAddress client = MacAddress::FromU48(0x02'00'00'00'cc'01);
  const auto factory = [&](usize i, u8) {
    return MakeIcmpEchoRequest(
        {config.mac, client, Ipv4Address(10, 0, 0, 9), config.ip, static_cast<u16>(i), 0}, {});
  };
  OsntLoadgen::FixedRateConfig rate;
  rate.offered_mqps = 50.0;  // way beyond the echo service's capacity
  rate.frames = 4000;        // sustained long enough to defeat buffering
  rate.ports = {0, 1, 2, 3};
  const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, rate);
  EXPECT_EQ(report.injected, 4000u);
  EXPECT_GT(report.loss_rate, 0.05);
  EXPECT_GT(report.egressed, 0u);
}

TEST(OsntLoadgen, ZeroFramesHasZeroLossAndNoDivide) {
  IcmpEchoConfig config;
  IcmpEchoService service(config);
  FpgaTarget target(service);
  const MacAddress client = MacAddress::FromU48(0x02'00'00'00'cc'01);
  const auto factory = [&](usize i, u8) {
    return MakeIcmpEchoRequest(
        {config.mac, client, Ipv4Address(10, 0, 0, 9), config.ip, static_cast<u16>(i), 0}, {});
  };
  OsntLoadgen::FixedRateConfig rate;
  rate.frames = 0;
  rate.drain_limit = 10'000;
  // A nonzero drop counter with zero injected frames must not produce a
  // negative or divide-by-zero loss rate.
  rate.accounted_drops = [] { return u64{12}; };
  const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, rate);
  EXPECT_EQ(report.injected, 0u);
  EXPECT_EQ(report.accounted_drops, 0u);  // clamped to injected
  EXPECT_EQ(report.loss_rate, 0.0);
  EXPECT_EQ(report.raw_loss_rate, 0.0);
}

TEST(OsntLoadgen, AccountedDropsClampedToInjected) {
  IcmpEchoConfig config;
  IcmpEchoService service(config);
  FpgaTarget target(service);
  const MacAddress client = MacAddress::FromU48(0x02'00'00'00'cc'01);
  const auto factory = [&](usize i, u8) {
    return MakeIcmpEchoRequest(
        {config.mac, client, Ipv4Address(10, 0, 0, 9), config.ip, static_cast<u16>(i), 0}, {});
  };
  OsntLoadgen::FixedRateConfig rate;
  rate.offered_mqps = 1.0;
  rate.frames = 20;
  // A double-booking counter claims more drops than frames ever existed; the
  // report must clamp so downstream verdicts stay inside [0, 1].
  rate.accounted_drops = [] { return u64{1'000'000}; };
  const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, rate);
  EXPECT_EQ(report.injected, 20u);
  EXPECT_LE(report.accounted_drops, report.injected);
  EXPECT_GE(report.loss_rate, 0.0);
  EXPECT_LE(report.loss_rate, 1.0);
}

TEST(OsntLoadgen, RateSearchFindsCapacityOrder) {
  // A synthetic trial whose loss is zero below 2.0 Mqps and grows above it:
  // the search must land near 2.0.
  const auto trial = [](double offered) {
    LoadgenReport report;
    report.injected = 1000;
    report.offered_mqps = offered;
    if (offered <= 2.0) {
      report.egressed = 1000;
      report.achieved_mqps = offered;
    } else {
      report.egressed = static_cast<usize>(1000 * 2.0 / offered);
      report.achieved_mqps = 2.0;
    }
    report.loss_rate =
        1.0 - static_cast<double>(report.egressed) / static_cast<double>(report.injected);
    return report;
  };
  const double max = OsntLoadgen::FindMaxThroughputMqps(trial, 0.1, 10.0);
  EXPECT_NEAR(max, 2.0, 0.1);
}

// --- Memaslap ------------------------------------------------------------------------

TEST(Memaslap, MixIsNinetyTen) {
  MemaslapConfig config;
  config.server_mac = MacAddress::FromU48(0x02'00'00'00'ee'04);
  config.server_ip = Ipv4Address(10, 0, 0, 211);
  MemaslapLoadgen loadgen(config);
  usize gets = 0;
  const usize n = 5000;
  for (usize i = 0; i < n; ++i) {
    Packet frame = loadgen.WorkloadFrame(i);
    Ipv4View ip(frame);
    UdpView udp(frame, ip.payload_offset());
    auto request = ParseMcRequest(udp.Payload(), config.protocol);
    ASSERT_TRUE(request.ok());
    if (request->op == McOpcode::kGet) {
      ++gets;
    } else {
      EXPECT_EQ(request->op, McOpcode::kSet);
      EXPECT_EQ(request->value.size(), config.value_bytes);
    }
    EXPECT_EQ(request->key.size(), config.key_bytes);
  }
  EXPECT_NEAR(static_cast<double>(gets) / n, 0.9, 0.02);
  EXPECT_NEAR(loadgen.ObservedGetFraction(), 0.9, 0.02);
}

TEST(Memaslap, PrewarmCoversKeySpace) {
  MemaslapConfig config;
  config.server_mac = MacAddress::FromU48(0x02'00'00'00'ee'04);
  config.server_ip = Ipv4Address(10, 0, 0, 211);
  config.key_space = 50;
  MemaslapLoadgen loadgen(config);
  std::set<std::string> keys;
  for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
    Packet frame = loadgen.PrewarmFrame(i);
    Ipv4View ip(frame);
    UdpView udp(frame, ip.payload_offset());
    auto request = ParseMcRequest(udp.Payload(), config.protocol);
    ASSERT_TRUE(request.ok());
    EXPECT_EQ(request->op, McOpcode::kSet);
    keys.insert(request->key);
  }
  EXPECT_EQ(keys.size(), 50u);
}

TEST(Memaslap, DeterministicForSameSeed) {
  MemaslapConfig config;
  config.server_mac = MacAddress::FromU48(0x02'00'00'00'ee'04);
  config.server_ip = Ipv4Address(10, 0, 0, 211);
  MemaslapLoadgen a(config);
  MemaslapLoadgen b(config);
  for (usize i = 0; i < 100; ++i) {
    const Packet fa = a.WorkloadFrame(i);
    const Packet fb = b.WorkloadFrame(i);
    ASSERT_EQ(fa.size(), fb.size());
    for (usize j = 0; j < fa.size(); ++j) {
      ASSERT_EQ(fa[j], fb[j]);
    }
  }
}

// --- TraceDump -----------------------------------------------------------------------

TEST(TraceDump, SummarizesPackets) {
  TraceDump dump;
  Packet udp = MakeUdpPacket({MacAddress::FromU48(1), MacAddress::FromU48(2),
                              Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1, 2},
                             std::vector<u8>{1});
  dump.Capture(1 * kPicosPerMicro, "rx", udp);
  const std::string summary = dump.Summary();
  EXPECT_NE(summary.find("rx"), std::string::npos);
  EXPECT_NE(summary.find("10.0.0.1>10.0.0.2"), std::string::npos);
  EXPECT_NE(summary.find("proto=17"), std::string::npos);
}

TEST(TraceDump, DescribesArp) {
  const Packet arp = MakeArpRequest(MacAddress::FromU48(5), Ipv4Address(10, 0, 0, 1),
                                    Ipv4Address(10, 0, 0, 2));
  const std::string description = DescribePacket(arp);
  EXPECT_NE(description.find("ARP request"), std::string::npos);
  EXPECT_NE(description.find("asks 10.0.0.2"), std::string::npos);
}

TEST(TraceDump, FullIncludesHexdump) {
  TraceDump dump;
  dump.Capture(0, "tx", Packet(std::vector<u8>{0xde, 0xad}));
  EXPECT_NE(dump.Full().find("de ad"), std::string::npos);
}

TEST(TraceDump, WritesFile) {
  TraceDump dump;
  dump.Capture(0, "tx", Packet(4));
  EXPECT_TRUE(dump.WriteToFile("/tmp/emu_trace_test.txt"));
}

// --- Node-level chaos plumbing (emu-gossip) -----------------------------------

namespace chaos_plumbing {

constexpr MacAddress kMacA = MacAddress::FromU48(0x02'00'00'00'00'0aULL);
constexpr MacAddress kMacB = MacAddress::FromU48(0x02'00'00'00'00'0bULL);
constexpr u8 kPayload[] = {1, 2, 3, 4};

// Two hosts on one link, app on each counting deliveries.
struct Pair {
  EventScheduler sched;
  Link link{sched, 10'000'000'000ULL, 1000};
  SimHost a{sched, "a", kMacA, Ipv4Address(10, 0, 0, 1)};
  SimHost b{sched, "b", kMacB, Ipv4Address(10, 0, 0, 2)};
  u64 a_got = 0;
  u64 b_got = 0;

  Pair() {
    a.AttachUplink(&link, /*is_end_a=*/true);
    b.AttachUplink(&link, /*is_end_a=*/false);
    a.SetApp([this](SimHost&, Packet) { ++a_got; });
    b.SetApp([this](SimHost&, Packet) { ++b_got; });
  }
  Packet Frame(MacAddress dst, MacAddress src) {
    return MakeEthernetFrame(dst, src, EtherType::kIpv4, kPayload);
  }
};

TEST(SimHostLifecycle, CrashDropsTrafficBothWaysAndRestartRecovers) {
  Pair p;
  p.a.Send(p.Frame(kMacB, kMacA));
  p.sched.Run();
  EXPECT_EQ(p.b_got, 1u);

  p.b.Crash();
  EXPECT_FALSE(p.b.up());
  EXPECT_EQ(p.b.lifecycle(), HostLifecycle::kCrashed);
  p.a.Send(p.Frame(kMacB, kMacA));  // dropped on arrival at the dead host
  p.b.Send(p.Frame(kMacA, kMacB));  // swallowed at the dead sender
  p.sched.Run();
  EXPECT_EQ(p.b_got, 1u);
  EXPECT_EQ(p.a_got, 0u);
  EXPECT_EQ(p.b.lifecycle_dropped(), 2u);
  EXPECT_EQ(p.b.crashes(), 1u);

  bool restarted = false;
  p.b.SetOnRestart([&] { restarted = true; });
  // Boot window far longer than one frame's transit (~49 ns on this link),
  // so the frame sent right after Restart() arrives at a still-deaf host.
  p.b.Restart(/*boot_delay=*/1'000'000);
  EXPECT_EQ(p.b.lifecycle(), HostLifecycle::kRestarting);
  p.a.Send(p.Frame(kMacB, kMacA));  // still deaf during the boot window
  p.sched.Run();
  EXPECT_TRUE(p.b.up());
  EXPECT_TRUE(restarted);
  EXPECT_EQ(p.b.restarts(), 1u);
  EXPECT_EQ(p.b_got, 1u);

  p.a.Send(p.Frame(kMacB, kMacA));
  p.sched.Run();
  EXPECT_EQ(p.b_got, 2u);
}

TEST(SimHostLifecycle, CrashIsIdempotentAndRestartOfUpHostPowerCycles) {
  Pair p;
  p.b.Crash();
  p.b.Crash();
  EXPECT_EQ(p.b.crashes(), 1u);

  // Restarting the (up) peer a is a power-cycle: deaf during the window.
  p.a.Restart(/*boot_delay=*/1'000'000);
  EXPECT_FALSE(p.a.up());
  p.sched.Run();
  EXPECT_TRUE(p.a.up());
  EXPECT_EQ(p.a.restarts(), 1u);
}

TEST(LinkGate, BlocksOneDirectionOnly) {
  Pair p;
  p.link.SetGate(/*to_b=*/true, /*blocked=*/true);
  EXPECT_TRUE(p.link.gated(true));
  EXPECT_FALSE(p.link.gated(false));
  p.a.Send(p.Frame(kMacB, kMacA));  // gated: dropped at the sender
  p.b.Send(p.Frame(kMacA, kMacB));  // reverse direction still open
  p.sched.Run();
  EXPECT_EQ(p.b_got, 0u);
  EXPECT_EQ(p.a_got, 1u);
  EXPECT_EQ(p.link.gated_dropped(), 1u);

  p.link.SetGate(/*to_b=*/true, /*blocked=*/false);
  p.a.Send(p.Frame(kMacB, kMacA));
  p.sched.Run();
  EXPECT_EQ(p.b_got, 1u);
}

std::vector<HostSpec> HubSpecs(usize n) {
  std::vector<HostSpec> specs;
  for (usize i = 0; i < n; ++i) {
    specs.push_back(HostSpec{"h" + std::to_string(i),
                             MacAddress::FromU48(0x02'00'00'00'c0'00ULL + i),
                             Ipv4Address(10, 0, 1, static_cast<u8>(1 + i))});
  }
  return specs;
}

TEST(HubTopologyTest, LearningSwitchFloodsUnknownThenForwardsLearned) {
  HubTopology topo(HubSpecs(3));
  std::vector<u64> got(3, 0);
  for (usize i = 0; i < 3; ++i) {
    topo.host(i).SetApp([&got, i](SimHost&, Packet) { ++got[i]; });
  }
  // h0 -> h1 before any learning: the hub floods to h1 AND h2.
  topo.host(0).Send(MakeEthernetFrame(topo.host(1).mac(), topo.host(0).mac(),
                                      EtherType::kIpv4, kPayload));
  topo.Run();
  EXPECT_EQ(got[1], 1u);
  EXPECT_EQ(got[2], 1u);
  EXPECT_EQ(topo.hub().flooded(), 1u);

  // h1 -> h0: the flood taught the hub h0's port, so this is a clean forward.
  const u64 flooded_before = topo.hub().flooded();
  topo.host(1).Send(MakeEthernetFrame(topo.host(0).mac(), topo.host(1).mac(),
                                      EtherType::kIpv4, kPayload));
  topo.Run();
  EXPECT_EQ(got[0], 1u);
  EXPECT_EQ(got[2], 1u);  // not flooded again
  EXPECT_EQ(topo.hub().flooded(), flooded_before);
  EXPECT_GT(topo.hub().forwarded(), 0u);
}

TEST(HubTopologyTest, CountedBlocksComposeAcrossOverlappingWindows) {
  HubTopology topo(HubSpecs(2));
  HubNode& hub = topo.hub();
  // Two overlapping partition windows cover the same pair: connectivity
  // returns only after BOTH close.
  hub.SetBlocked(0, 1, true);
  hub.SetBlocked(0, 1, true);
  EXPECT_TRUE(hub.Blocked(0, 1));
  EXPECT_FALSE(hub.Blocked(1, 0));  // directional
  hub.SetBlocked(0, 1, false);
  EXPECT_TRUE(hub.Blocked(0, 1));
  hub.SetBlocked(0, 1, false);
  EXPECT_FALSE(hub.Blocked(0, 1));
}

TEST(HubTopologyTest, PartitionDropsAreCounted) {
  HubTopology topo(HubSpecs(2));
  u64 got1 = 0;
  topo.host(1).SetApp([&](SimHost&, Packet) { ++got1; });
  // Block h0 -> h1 on the hub's own scheduler (shard safety contract).
  topo.hub().scheduler().At(0, [&] { topo.hub().SetBlocked(0, 1, true); });
  topo.host(0).Send(MakeEthernetFrame(topo.host(1).mac(), topo.host(0).mac(),
                                      EtherType::kIpv4, kPayload));
  topo.Run();
  EXPECT_EQ(got1, 0u);
  EXPECT_EQ(topo.hub().partition_dropped(), 1u);
}

TEST(HubTopologyTest, FindHostByName) {
  HubTopology topo(HubSpecs(3));
  EXPECT_EQ(topo.FindHost("h0"), 0u);
  EXPECT_EQ(topo.FindHost("h2"), 2u);
  EXPECT_EQ(topo.FindHost("nope"), topo.host_count());
}

}  // namespace chaos_plumbing

}  // namespace
}  // namespace emu
