// Hardware baselines: the hand-written reference switch and the P4FPGA-style
// match-action switch, compared structurally against the Emu switch (the
// relationships Table 3 reports).
#include <gtest/gtest.h>

#include "src/baseline/p4_switch.h"
#include "src/baseline/reference_switch.h"
#include "src/core/targets.h"
#include "src/net/ethernet.h"
#include "src/services/learning_switch.h"

namespace emu {
namespace {

const MacAddress kHostMac[4] = {
    MacAddress::FromU48(0x020000000001), MacAddress::FromU48(0x020000000002),
    MacAddress::FromU48(0x020000000003), MacAddress::FromU48(0x020000000004)};

Packet MakeTestFrame(MacAddress dst, MacAddress src, usize size = 64) {
  std::vector<u8> payload(size > kEthernetHeaderSize ? size - kEthernetHeaderSize : 0, 0xaa);
  Packet frame = MakeEthernetFrame(dst, src, EtherType::kIpv4, payload);
  frame.Resize(size);
  return frame;
}

// Teaches MAC->port bindings then measures the core latency of a unicast.
Cycle MeasureCoreLatency(FpgaTarget& target) {
  target.Inject(1, MakeTestFrame(kHostMac[0], kHostMac[1]));
  target.Run(50'000);
  target.TakeEgress();
  target.Inject(0, MakeTestFrame(kHostMac[1], kHostMac[0], 64));
  EXPECT_TRUE(target.RunUntilEgressCount(1, 200'000));
  const auto egress = target.TakeEgress();
  EXPECT_EQ(egress.size(), 1u);
  if (egress.empty()) {
    return 0;
  }
  return egress[0].frame.core_egress_cycle() - egress[0].frame.core_ingress_cycle();
}

// --- Reference switch ----------------------------------------------------------

TEST(ReferenceSwitch, ForwardsLikeALearningSwitch) {
  ReferenceSwitch service;
  FpgaTarget target(service);
  target.Inject(1, MakeTestFrame(kHostMac[0], kHostMac[1]));
  ASSERT_TRUE(target.RunUntilEgressCount(3, 100'000));  // flood
  target.TakeEgress();
  target.Inject(0, MakeTestFrame(kHostMac[1], kHostMac[0]));
  ASSERT_TRUE(target.RunUntilEgressCount(1, 100'000));
  target.Run(2000);
  const auto egress = target.TakeEgress();
  ASSERT_EQ(egress.size(), 1u);  // unicast after learning
  EXPECT_EQ(egress[0].port, 1);
  EXPECT_GT(service.hits(), 0u);
  EXPECT_GT(service.learned(), 0u);
}

TEST(ReferenceSwitch, CoreLatencyIsSixCycles) {
  ReferenceSwitch service;
  FpgaTarget target(service);
  const Cycle latency = MeasureCoreLatency(target);
  // Paper Table 3: 6 cycles.
  EXPECT_GE(latency, 5u);
  EXPECT_LE(latency, 7u);
}

TEST(ReferenceSwitch, CoreLatencyBelowEmuSwitch) {
  ReferenceSwitch reference;
  LearningSwitch emu_switch;
  FpgaTarget ref_target(reference);
  FpgaTarget emu_target(emu_switch);
  const Cycle ref_latency = MeasureCoreLatency(ref_target);
  const Cycle emu_latency = MeasureCoreLatency(emu_target);
  EXPECT_LT(ref_latency, emu_latency);
  // Paper: 6 vs 8 cycles — a small gap, not an order of magnitude.
  EXPECT_LE(emu_latency - ref_latency, 4u);
}

TEST(ReferenceSwitch, ResourcesNearPaperAndBelowEmu) {
  ReferenceSwitch reference;
  LearningSwitch emu_switch;
  FpgaTarget ref_target(reference);
  FpgaTarget emu_target(emu_switch);
  const ResourceUsage ref = ref_target.pipeline().CoreResources();
  const ResourceUsage emu_usage = emu_target.pipeline().CoreResources();
  EXPECT_NEAR(static_cast<double>(ref.luts), 2836.0, 300.0);  // Table 3
  EXPECT_LT(ref.luts, emu_usage.luts);
  // Emu overhead over hand-written RTL is modest (paper: ~24%).
  EXPECT_LT(static_cast<double>(emu_usage.luts) / static_cast<double>(ref.luts), 1.45);
}

TEST(ReferenceSwitch, SustainsLineRate) {
  ReferenceSwitch service;
  FpgaTarget target(service);
  for (u8 port = 0; port < 4; ++port) {
    target.Inject(port, MakeTestFrame(MacAddress::Broadcast(), kHostMac[port]));
  }
  target.Run(50'000);
  target.TakeEgress();
  for (usize i = 0; i < 100; ++i) {
    for (u8 port = 0; port < 4; ++port) {
      target.Inject(port, MakeTestFrame(kHostMac[(port + 1) % 4], kHostMac[port], 64));
    }
  }
  ASSERT_TRUE(target.RunUntilEgressCount(400, 2'000'000));
  EXPECT_EQ(target.pipeline().rx_drops(), 0u);
}

// --- P4 switch -------------------------------------------------------------------

TEST(P4Switch, ForwardsAndLearns) {
  P4Switch service;
  FpgaTarget target(service, PipelineConfig{}, 250'000'000);  // P4FPGA clock
  target.Inject(1, MakeTestFrame(kHostMac[0], kHostMac[1]));
  ASSERT_TRUE(target.RunUntilEgressCount(3, 100'000));
  target.TakeEgress();
  target.Inject(0, MakeTestFrame(kHostMac[1], kHostMac[0]));
  ASSERT_TRUE(target.RunUntilEgressCount(1, 100'000));
  target.Run(2000);
  const auto egress = target.TakeEgress();
  ASSERT_EQ(egress.size(), 1u);
  EXPECT_EQ(egress[0].port, 1);
  EXPECT_GT(service.hits(), 0u);
}

TEST(P4Switch, DeepPipelineLatency) {
  P4Switch service;
  FpgaTarget target(service, PipelineConfig{}, 250'000'000);
  const Cycle latency = MeasureCoreLatency(target);
  // Paper Table 3: 85 cycles through the match-action pipeline.
  EXPECT_GE(latency, 80u);
  EXPECT_LE(latency, 92u);
}

TEST(P4Switch, OrderOfMagnitudeMoreResources) {
  P4Switch p4;
  ReferenceSwitch reference;
  FpgaTarget p4_target(p4, PipelineConfig{}, 250'000'000);
  FpgaTarget ref_target(reference);
  const ResourceUsage p4_usage = p4_target.pipeline().CoreResources();
  const ResourceUsage ref_usage = ref_target.pipeline().CoreResources();
  EXPECT_NEAR(static_cast<double>(p4_usage.luts), 24161.0, 2500.0);  // Table 3
  EXPECT_GT(p4_usage.luts, 6 * ref_usage.luts);
  EXPECT_GT(p4_usage.bram_units, ref_usage.bram_units);
}

TEST(P4Switch, ThroughputBelowLineRate) {
  // At 250 MHz with II 4.7 the generated pipeline tops out near 53 Mpps,
  // under the 59.52 Mpps 4x10G line rate. Saturate and observe backlog:
  // offered line rate minus achieved must show up as rx drops.
  P4Switch service;
  PipelineConfig config;
  config.rx_fifo_depth = 16;  // small so saturation shows quickly
  FpgaTarget target(service, config, 250'000'000);
  for (u8 port = 0; port < 4; ++port) {
    target.Inject(port, MakeTestFrame(MacAddress::Broadcast(), kHostMac[port]));
  }
  target.Run(50'000);
  target.TakeEgress();
  const usize frames_per_port = 400;
  for (usize i = 0; i < frames_per_port; ++i) {
    for (u8 port = 0; port < 4; ++port) {
      target.Inject(port, MakeTestFrame(kHostMac[(port + 1) % 4], kHostMac[port], 64));
    }
  }
  target.Run(3'000'000);
  EXPECT_GT(target.pipeline().rx_drops(), 0u);  // cannot keep up with line rate
}

TEST(P4Switch, EmuSwitchDoesKeepUpUnderSameLoad) {
  LearningSwitch service;
  PipelineConfig config;
  config.rx_fifo_depth = 16;
  FpgaTarget target(service, config);
  for (u8 port = 0; port < 4; ++port) {
    target.Inject(port, MakeTestFrame(MacAddress::Broadcast(), kHostMac[port]));
  }
  target.Run(50'000);
  target.TakeEgress();
  const usize frames_per_port = 400;
  for (usize i = 0; i < frames_per_port; ++i) {
    for (u8 port = 0; port < 4; ++port) {
      target.Inject(port, MakeTestFrame(kHostMac[(port + 1) % 4], kHostMac[port], 64));
    }
  }
  ASSERT_TRUE(target.RunUntilEgressCount(4 * frames_per_port, 5'000'000));
  EXPECT_EQ(target.pipeline().rx_drops(), 0u);
}

}  // namespace
}  // namespace emu
