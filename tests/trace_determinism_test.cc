// emu-scope determinism: the trace a run exports is a pure function of the
// workload — independent of thread count, and stable against a checked-in
// golden file.
//
// The golden file (tests/golden/emu_scope_small.json) pins the exported
// Perfetto JSON of a small fixed-seed sharded learning-switch run. If an
// intentional change to the event model or exporter shifts the bytes,
// regenerate with:
//   EMU_REGEN_GOLDEN=1 ./build/tests/emu_tests \
//       --gtest_filter=TraceDeterminism.GoldenFileMatches
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/net/ethernet.h"
#include "src/net/udp.h"
#include "src/obs/trace.h"
#include "src/services/learning_switch.h"
#include "src/sim/topology.h"

namespace emu {
namespace {

#ifdef EMU_TRACE

// A small, fully deterministic workload: 3 hosts around a learning switch,
// one broadcast announcement each, then two unicast rounds.
std::string RunTracedSwitch(usize threads) {
  obs::TraceSession session;
  session.Install();

  LearningSwitch service;
  std::vector<HostSpec> specs = {
      {"h0", MacAddress::FromU48(0x020000000001), Ipv4Address(10, 0, 0, 1)},
      {"h1", MacAddress::FromU48(0x020000000002), Ipv4Address(10, 0, 0, 2)},
      {"h2", MacAddress::FromU48(0x020000000003), Ipv4Address(10, 0, 0, 3)}};
  ShardedTopology topo(service, specs);
  for (usize i = 0; i < specs.size(); ++i) {
    topo.host(i).SetApp([](SimHost&, Packet) {});
  }
  for (usize i = 0; i < specs.size(); ++i) {
    const Picoseconds at = static_cast<Picoseconds>(i + 1) * 10 * kPicosPerMicro;
    topo.host(i).scheduler().At(at, [&topo, i] {
      topo.host(i).Send(MakeEthernetFrame(MacAddress::Broadcast(), topo.host(i).mac(),
                                          EtherType::kIpv4,
                                          std::vector<u8>{static_cast<u8>(i)}));
    });
  }
  for (usize round = 0; round < 2; ++round) {
    for (usize i = 0; i < specs.size(); ++i) {
      const usize dst = (i + 1 + round) % specs.size();
      const Picoseconds at = 100 * kPicosPerMicro +
                             static_cast<Picoseconds>(round) * 50 * kPicosPerMicro +
                             static_cast<Picoseconds>(i) * 2 * kPicosPerMicro;
      Packet frame = MakeUdpPacket(
          {specs[dst].mac, specs[i].mac, specs[i].ip, specs[dst].ip,
           static_cast<u16>(5000 + i), static_cast<u16>(6000 + dst)},
          std::vector<u8>{static_cast<u8>(round), static_cast<u8>(i)});
      topo.host(i).scheduler().At(at, [&topo, i, frame] { topo.host(i).Send(frame); });
    }
  }
  topo.Run({.threads = threads});
  obs::TraceSession::Detach();
  return session.ExportChromeJson();
}

TEST(TraceDeterminism, ThreadCountDoesNotChangeTheTrace) {
  const std::string serial = RunTracedSwitch(1);
  // The workload must actually trace something, or the comparison is vacuous.
  EXPECT_NE(serial.find("pkt.flight"), std::string::npos);
  EXPECT_NE(serial.find("link.transit"), std::string::npos);
  for (usize threads : {2u, 4u}) {
    const std::string parallel = RunTracedSwitch(threads);
    EXPECT_EQ(parallel, serial) << "threads=" << threads
                                << " exported different trace bytes";
  }
}

TEST(TraceDeterminism, ExportIsSchemaValid) {
  const std::string json = RunTracedSwitch(1);
  std::string error;
  EXPECT_TRUE(obs::ValidateChromeTraceJson(json, &error)) << error;
}

TEST(TraceDeterminism, GoldenFileMatches) {
  const std::string path = std::string(EMU_TEST_SOURCE_DIR) + "/golden/emu_scope_small.json";
  const std::string json = RunTracedSwitch(4);

  if (std::getenv("EMU_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out.write(json.data(), static_cast<std::streamsize>(json.size()));
    ASSERT_TRUE(out);
    GTEST_SKIP() << "golden file regenerated at " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — regenerate with EMU_REGEN_GOLDEN=1";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(json, buffer.str())
      << "exported trace diverged from the golden file; if the change is "
         "intentional, regenerate with EMU_REGEN_GOLDEN=1";
}

#else  // !EMU_TRACE

TEST(TraceDeterminism, SkippedWithoutTracing) {
  GTEST_SKIP() << "built with EMU_TRACE=OFF";
}

#endif  // EMU_TRACE

}  // namespace
}  // namespace emu
