#include <gtest/gtest.h>

#include "src/net/dns.h"

namespace emu {
namespace {

TEST(DnsName, EncodeSimpleName) {
  auto wire = EncodeDnsName("www.ex");
  ASSERT_TRUE(wire.ok());
  const std::vector<u8> expected = {3, 'w', 'w', 'w', 2, 'e', 'x', 0};
  EXPECT_EQ(*wire, expected);
}

TEST(DnsName, EncodeSingleLabel) {
  auto wire = EncodeDnsName("localhost");
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ((*wire)[0], 9);
  EXPECT_EQ(wire->back(), 0);
}

TEST(DnsName, RejectsEmptyLabel) {
  EXPECT_FALSE(EncodeDnsName("a..b").ok());
  EXPECT_FALSE(EncodeDnsName(".a").ok());
  EXPECT_FALSE(EncodeDnsName("a.").ok());
  EXPECT_FALSE(EncodeDnsName("").ok());
}

TEST(DnsName, RejectsOversizedLabel) {
  EXPECT_FALSE(EncodeDnsName(std::string(64, 'x')).ok());
  EXPECT_TRUE(EncodeDnsName(std::string(63, 'x')).ok());
}

TEST(DnsQuery, BuildParseRoundTrip) {
  const std::vector<u8> wire = BuildDnsQuery(0x7777, "cache.lab.net");
  auto query = ParseDnsQuery(wire);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->header.id, 0x7777);
  EXPECT_FALSE(query->header.qr);
  EXPECT_EQ(query->header.qdcount, 1);
  EXPECT_EQ(query->question.name, "cache.lab.net");
  EXPECT_EQ(query->question.qtype, kDnsTypeA);
  EXPECT_EQ(query->question.qclass, kDnsClassIn);
}

TEST(DnsQuery, RejectsTruncatedHeader) {
  const std::vector<u8> wire = {1, 2, 3};
  EXPECT_FALSE(ParseDnsQuery(wire).ok());
}

TEST(DnsQuery, RejectsResponsesAsQueries) {
  std::vector<u8> wire = BuildDnsQuery(1, "a.b");
  wire[2] |= 0x80;  // set QR
  EXPECT_FALSE(ParseDnsQuery(wire).ok());
}

TEST(DnsQuery, RejectsMultiQuestion) {
  std::vector<u8> wire = BuildDnsQuery(1, "a.b");
  wire[5] = 2;  // qdcount = 2
  EXPECT_FALSE(ParseDnsQuery(wire).ok());
}

TEST(DnsQuery, RejectsTruncatedQuestion) {
  std::vector<u8> wire = BuildDnsQuery(1, "abcdef.gh");
  wire.resize(wire.size() - 3);
  EXPECT_FALSE(ParseDnsQuery(wire).ok());
}

TEST(DnsResponse, PositiveAnswerRoundTrip) {
  const std::vector<u8> qwire = BuildDnsQuery(0xbeef, "svc.lab");
  auto query = ParseDnsQuery(qwire);
  ASSERT_TRUE(query.ok());

  const Ipv4Address addr(10, 1, 2, 3);
  const std::vector<u8> rwire = BuildDnsResponse(*query, addr, 600);
  auto response = ParseDnsResponse(rwire);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->header.id, 0xbeef);
  EXPECT_TRUE(response->header.qr);
  EXPECT_TRUE(response->header.aa);
  EXPECT_EQ(response->header.rcode, DnsRcode::kNoError);
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(response->answers[0].address, addr);
  EXPECT_EQ(response->answers[0].ttl, 600u);
  // The answer name is a compression pointer back to the question.
  EXPECT_EQ(response->answers[0].name, "svc.lab");
}

TEST(DnsResponse, NxDomainHasNoAnswers) {
  auto query = ParseDnsQuery(BuildDnsQuery(5, "nope.lab"));
  ASSERT_TRUE(query.ok());
  const std::vector<u8> rwire = BuildDnsError(*query, DnsRcode::kNxDomain);
  auto response = ParseDnsResponse(rwire);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->header.rcode, DnsRcode::kNxDomain);
  EXPECT_TRUE(response->answers.empty());
  EXPECT_EQ(response->header.ancount, 0);
}

TEST(DnsResponse, EchoesQueryId) {
  for (u16 id : {u16{0}, u16{1}, u16{0xffff}}) {
    auto query = ParseDnsQuery(BuildDnsQuery(id, "x.y"));
    ASSERT_TRUE(query.ok());
    auto response = ParseDnsResponse(BuildDnsResponse(*query, Ipv4Address(1, 1, 1, 1)));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->header.id, id);
  }
}

TEST(DnsResponse, RejectsQueryAsResponse) {
  EXPECT_FALSE(ParseDnsResponse(BuildDnsQuery(1, "a.b")).ok());
}

TEST(DnsResponse, MalformedCompressionPointerRejected) {
  auto query = ParseDnsQuery(BuildDnsQuery(9, "a.b"));
  ASSERT_TRUE(query.ok());
  std::vector<u8> rwire = BuildDnsResponse(*query, Ipv4Address(1, 2, 3, 4));
  // Point the answer-name compression pointer past the end of the message.
  const usize answer_name = rwire.size() - 16;
  rwire[answer_name] = 0xc3;
  rwire[answer_name + 1] = 0xff;
  EXPECT_FALSE(ParseDnsResponse(rwire).ok());
}

TEST(DnsName, ParsesMaxPrototypeLength) {
  // The paper's prototype caps names at 26 bytes; make sure such names flow
  // through the codec untouched.
  const std::string name = "abcdefghij.klmnopqrst.uvwx";  // 26 chars
  ASSERT_EQ(name.size(), 26u);
  auto query = ParseDnsQuery(BuildDnsQuery(1, name));
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->question.name, name);
}

}  // namespace
}  // namespace emu
