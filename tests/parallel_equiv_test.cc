// Bit-exactness of the parallel sharded runner (emu-par).
//
// The contract under test (src/sim/parallel_runner.h): Run(threads=N) is
// bit-exact against Run(threads=1) — same per-host frame arrival digests,
// same counters, same service metrics, same fault logs, same event and
// epoch totals — for every topology shape the runner supports. Each
// scenario below runs the identical workload at threads 1/2/4/8 on fresh
// topologies and compares full digests, the same bar kernel_equiv_test.cc
// sets for the quiescence fast path.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/metrics.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fault_registry.h"
#include "src/net/ethernet.h"
#include "src/net/ipv4.h"
#include "src/net/udp.h"
#include "src/services/learning_switch.h"
#include "src/services/memcached_service.h"
#include "src/services/nat_service.h"
#include "src/sim/memaslap.h"
#include "src/sim/topology.h"

namespace emu {
namespace {

constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

void FoldU64(u64& h, u64 v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xff)) * kFnvPrime;
  }
}

void FoldBytes(u64& h, std::span<const u8> bytes) {
  for (u8 b : bytes) {
    h = (h ^ b) * kFnvPrime;
  }
}

// Per-host arrival log: folds (arrival time, frame bytes) in arrival order.
struct HostLog {
  u64 digest = kFnvOffset;
  u64 count = 0;

  void Note(Picoseconds at, const Packet& frame) {
    FoldU64(digest, static_cast<u64>(at));
    FoldBytes(digest, frame.bytes());
    ++count;
  }
};

// Everything a run can disagree on.
struct TopoDigest {
  std::vector<u64> host_digests;
  std::vector<u64> host_received;
  std::vector<u64> host_sent;
  std::vector<u64> node_forwarded;
  u64 metrics_digest = kFnvOffset;
  u64 faults_fired = 0;
  u64 fault_digest = 0;
  u64 events = 0;
  u64 epochs = 0;
};

void FoldMetrics(u64& h, const MetricsRegistry& metrics) {
  for (const auto& [name, value] : metrics.Snapshot()) {
    FoldBytes(h, std::span<const u8>(reinterpret_cast<const u8*>(name.data()), name.size()));
    FoldU64(h, value);
  }
}

void ExpectIdentical(const TopoDigest& serial, const TopoDigest& parallel, usize threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  EXPECT_EQ(parallel.host_digests, serial.host_digests);
  EXPECT_EQ(parallel.host_received, serial.host_received);
  EXPECT_EQ(parallel.host_sent, serial.host_sent);
  EXPECT_EQ(parallel.node_forwarded, serial.node_forwarded);
  EXPECT_EQ(parallel.metrics_digest, serial.metrics_digest);
  EXPECT_EQ(parallel.faults_fired, serial.faults_fired);
  EXPECT_EQ(parallel.fault_digest, serial.fault_digest);
  EXPECT_EQ(parallel.events, serial.events);
  EXPECT_EQ(parallel.epochs, serial.epochs);
}

void CaptureHosts(ShardedTopology& topo, std::vector<HostLog>& logs, TopoDigest& d) {
  for (usize i = 0; i < topo.host_count(); ++i) {
    d.host_digests.push_back(logs[i].digest);
    d.host_received.push_back(topo.host(i).received());
    d.host_sent.push_back(topo.host(i).sent());
  }
  for (usize i = 0; i < topo.node_count(); ++i) {
    d.node_forwarded.push_back(topo.node(i).forwarded());
  }
}

// --- Scenario 1: learning switch, 4-host star ---------------------------------------

std::vector<HostSpec> FourHosts() {
  return {{"h0", MacAddress::FromU48(0x020000000001), Ipv4Address(10, 0, 0, 1)},
          {"h1", MacAddress::FromU48(0x020000000002), Ipv4Address(10, 0, 0, 2)},
          {"h2", MacAddress::FromU48(0x020000000003), Ipv4Address(10, 0, 0, 3)},
          {"h3", MacAddress::FromU48(0x020000000004), Ipv4Address(10, 0, 0, 4)}};
}

TopoDigest RunShardedSwitch(usize threads) {
  LearningSwitch service;
  const std::vector<HostSpec> specs = FourHosts();
  ShardedTopology topo(service, specs);

  std::vector<HostLog> logs(specs.size());
  for (usize i = 0; i < specs.size(); ++i) {
    topo.host(i).SetApp(
        [&logs, i](SimHost& h, Packet frame) { logs[i].Note(h.scheduler().now(), frame); });
  }

  // Teach the switch every MAC: one broadcast per host, staggered.
  for (usize i = 0; i < specs.size(); ++i) {
    const Picoseconds at = static_cast<Picoseconds>(i + 1) * 10 * kPicosPerMicro;
    topo.host(i).scheduler().At(at, [&topo, i] {
      topo.host(i).Send(MakeEthernetFrame(MacAddress::Broadcast(), topo.host(i).mac(),
                                          EtherType::kIpv4,
                                          std::vector<u8>{static_cast<u8>(i)}));
    });
  }
  // Unicast rounds: every host talks to a rotating peer.
  for (usize round = 0; round < 6; ++round) {
    for (usize i = 0; i < specs.size(); ++i) {
      const usize dst = (i + 1 + round % 3) % specs.size();
      const Picoseconds at = 100 * kPicosPerMicro +
                             static_cast<Picoseconds>(round) * 50 * kPicosPerMicro +
                             static_cast<Picoseconds>(i) * 2 * kPicosPerMicro;
      Packet frame = MakeUdpPacket(
          {specs[dst].mac, specs[i].mac, specs[i].ip, specs[dst].ip,
           static_cast<u16>(5000 + i), static_cast<u16>(6000 + dst)},
          std::vector<u8>{static_cast<u8>(round), static_cast<u8>(i)});
      topo.host(i).scheduler().At(at, [&topo, i, frame] { topo.host(i).Send(frame); });
    }
  }

  MetricsRegistry metrics;
  service.RegisterMetrics(metrics);

  TopoDigest d;
  d.events = topo.Run({.threads = threads});
  d.epochs = topo.runner().epochs();
  CaptureHosts(topo, logs, d);
  FoldMetrics(d.metrics_digest, metrics);
  return d;
}

TEST(ParallelEquivalence, ShardedSwitchBitExactAcrossThreadCounts) {
  const TopoDigest serial = RunShardedSwitch(1);
  // Teach broadcasts flood to 3 peers each; 24 unicasts arrive once each.
  ASSERT_EQ(serial.host_received,
            (std::vector<u64>{9, 9, 9, 9}));
  EXPECT_GT(serial.epochs, 1u);
  for (usize threads : {2u, 4u, 8u}) {
    ExpectIdentical(serial, RunShardedSwitch(threads), threads);
  }
}

// The sharded build of the star is the same network as StarTopology: same
// links, same latencies, same service. Frame counts must agree.
TEST(ParallelEquivalence, ShardedStarMatchesUnshardedCounts) {
  const std::vector<HostSpec> specs = FourHosts();

  std::vector<u64> unsharded_received;
  {
    LearningSwitch service;
    StarTopology topo(service, specs);
    for (usize i = 0; i < specs.size(); ++i) {
      topo.host(i).SetApp([](SimHost&, Packet) {});
    }
    for (usize i = 0; i < specs.size(); ++i) {
      const Picoseconds at = static_cast<Picoseconds>(i + 1) * 10 * kPicosPerMicro;
      topo.scheduler().At(at, [&topo, i] {
        topo.host(i).Send(MakeEthernetFrame(MacAddress::Broadcast(), topo.host(i).mac(),
                                            EtherType::kIpv4,
                                            std::vector<u8>{static_cast<u8>(i)}));
      });
    }
    topo.Run();
    for (usize i = 0; i < specs.size(); ++i) {
      unsharded_received.push_back(topo.host(i).received());
    }
  }

  LearningSwitch service;
  ShardedTopology topo(service, specs);
  for (usize i = 0; i < specs.size(); ++i) {
    topo.host(i).SetApp([](SimHost&, Packet) {});
  }
  for (usize i = 0; i < specs.size(); ++i) {
    const Picoseconds at = static_cast<Picoseconds>(i + 1) * 10 * kPicosPerMicro;
    topo.host(i).scheduler().At(at, [&topo, i] {
      topo.host(i).Send(MakeEthernetFrame(MacAddress::Broadcast(), topo.host(i).mac(),
                                          EtherType::kIpv4,
                                          std::vector<u8>{static_cast<u8>(i)}));
    });
  }
  topo.Run({.threads = 4});
  for (usize i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(topo.host(i).received(), unsharded_received[i]) << "host " << i;
  }
}

// --- Scenario 2: NAT ping-pong (long cross-shard causal chains) ---------------------

// The external host echoes every UDP frame back at the translated source, and
// the internal host fires the next ping only when the previous reply lands —
// every frame in the run is causally downstream of a cross-shard delivery,
// so a single horizon miscalculation would reorder or drop the whole chain.
TopoDigest RunShardedNat(usize threads, bool with_faults) {
  NatConfig config;
  NatService service(config);
  const std::vector<HostSpec> specs = {
      {"ext", MacAddress::FromU48(0x02ffffffff01), Ipv4Address(8, 8, 8, 8)},
      {"int", MacAddress::FromU48(0x020000001110), Ipv4Address(192, 168, 1, 10)}};
  ShardedTopology topo(service, specs);

  FaultRegistry registry(7);
  if (with_faults) {
    service.RegisterFaultPoints(registry);
    topo.node(0).target().sim().AttachFaultRegistry(&registry);
    const Expected<FaultPlan> plan =
        ParseFaultPlan("nat.table_full burst 2000 4000 0.5; nat.flows bernoulli 0.00005");
    EXPECT_TRUE(plan.ok());
    registry.ArmPlan(*plan);
  }

  std::vector<HostLog> logs(specs.size());
  constexpr usize kPings = 8;

  topo.host(0).SetApp([&logs, &topo, &config](SimHost& h, Packet frame) {
    logs[0].Note(h.scheduler().now(), frame);
    Ipv4View ip(frame);
    if (!ip.Valid() || !ip.ProtocolIs(IpProtocol::kUdp)) {
      return;
    }
    UdpView udp(frame, ip.payload_offset());
    Packet reply = MakeUdpPacket({config.external_mac, h.mac(), h.ip(), ip.source(),
                                  udp.destination_port(), udp.source_port()},
                                 std::vector<u8>{'r'});
    h.scheduler().After(3 * kPicosPerMicro, [&topo, reply] { topo.host(0).Send(reply); });
  });

  auto pings_sent = std::make_shared<usize>(1);
  topo.host(1).SetApp([&logs, &topo, &config, &specs, pings_sent](SimHost& h, Packet frame) {
    logs[1].Note(h.scheduler().now(), frame);
    if (*pings_sent >= kPings) {
      return;
    }
    const usize i = (*pings_sent)++;
    Packet next = MakeUdpPacket({config.internal_mac, specs[1].mac, specs[1].ip, specs[0].ip,
                                 static_cast<u16>(4000 + i), 53},
                                std::vector<u8>{static_cast<u8>('a' + i)});
    h.scheduler().After(5 * kPicosPerMicro, [&topo, next] { topo.host(1).Send(next); });
  });

  topo.host(1).scheduler().At(10 * kPicosPerMicro, [&topo, &config, &specs] {
    topo.host(1).Send(MakeUdpPacket(
        {config.internal_mac, specs[1].mac, specs[1].ip, specs[0].ip, 4000, 53},
        std::vector<u8>{'a'}));
  });

  MetricsRegistry metrics;
  service.RegisterMetrics(metrics);

  TopoDigest d;
  d.events = topo.Run({.threads = threads});
  d.epochs = topo.runner().epochs();
  CaptureHosts(topo, logs, d);
  FoldMetrics(d.metrics_digest, metrics);
  d.faults_fired = registry.fired_total();
  d.fault_digest = registry.LogDigest();
  return d;
}

TEST(ParallelEquivalence, ShardedNatPingPongBitExact) {
  const TopoDigest serial = RunShardedNat(1, /*with_faults=*/false);
  // The full request/reply chain must actually run: 8 translated pings out,
  // 8 translated-back replies in.
  ASSERT_EQ(serial.host_received, (std::vector<u64>{8, 8}));
  EXPECT_GT(serial.epochs, 8u);  // each hop crosses at least one barrier
  for (usize threads : {2u, 4u, 8u}) {
    ExpectIdentical(serial, RunShardedNat(threads, /*with_faults=*/false), threads);
  }
}

TEST(ParallelEquivalence, ShardedNatWithArmedFaultPlanBitExact) {
  const TopoDigest serial = RunShardedNat(1, /*with_faults=*/true);
  EXPECT_GE(serial.host_received[0], 1u);  // at least the first ping got out
  for (usize threads : {2u, 4u, 8u}) {
    ExpectIdentical(serial, RunShardedNat(threads, /*with_faults=*/true), threads);
  }
}

// --- Scenario 3: memcached cluster (one service node per host) ----------------------

TopoDigest RunShardedMemcachedCluster(usize threads) {
  constexpr usize kNodes = 4;
  constexpr usize kKeySpace = 24;
  constexpr usize kWorkload = 24;

  std::vector<std::unique_ptr<MemcachedService>> services;
  std::vector<Service*> service_ptrs;
  std::vector<HostSpec> specs;
  std::vector<MemcachedConfig> configs;
  for (usize i = 0; i < kNodes; ++i) {
    MemcachedConfig config;
    config.mac = MacAddress::FromU48(0x02'00'00'00'ee'00ULL + i);
    config.ip = Ipv4Address(10, 0, 0, static_cast<u8>(200 + i));
    configs.push_back(config);
    services.push_back(std::make_unique<MemcachedService>(config));
    service_ptrs.push_back(services.back().get());
    specs.push_back({"c" + std::to_string(i),
                     MacAddress::FromU48(0x02'00'00'00'c1'00ULL + i),
                     Ipv4Address(10, 0, 0, static_cast<u8>(50 + i))});
  }
  ShardedTopology topo(service_ptrs, specs);

  std::vector<HostLog> logs(kNodes);
  for (usize i = 0; i < kNodes; ++i) {
    topo.host(i).SetApp(
        [&logs, i](SimHost& h, Packet frame) { logs[i].Note(h.scheduler().now(), frame); });
  }

  // Each client prewarms then runs its own seeded 90/10 memaslap stream
  // against its own server node.
  for (usize i = 0; i < kNodes; ++i) {
    MemaslapConfig mc;
    mc.server_mac = configs[i].mac;
    mc.server_ip = configs[i].ip;
    mc.client_mac = specs[i].mac;
    mc.client_ip = specs[i].ip;
    mc.key_space = kKeySpace;
    mc.seed = 1000 + 17 * i;
    MemaslapLoadgen loadgen(mc);
    for (usize k = 0; k < loadgen.prewarm_count(); ++k) {
      const Picoseconds at = 5 * kPicosPerMicro +
                             static_cast<Picoseconds>(k) * 2 * kPicosPerMicro;
      Packet frame = loadgen.PrewarmFrame(k);
      topo.host(i).scheduler().At(at, [&topo, i, frame] { topo.host(i).Send(frame); });
    }
    for (usize k = 0; k < kWorkload; ++k) {
      const Picoseconds at = 200 * kPicosPerMicro +
                             static_cast<Picoseconds>(k) * 3 * kPicosPerMicro +
                             static_cast<Picoseconds>(i) * kPicosPerMicro;
      Packet frame = loadgen.WorkloadFrame(k);
      topo.host(i).scheduler().At(at, [&topo, i, frame] { topo.host(i).Send(frame); });
    }
  }

  TopoDigest d;
  d.events = topo.Run({.threads = threads});
  d.epochs = topo.runner().epochs();
  CaptureHosts(topo, logs, d);
  for (usize i = 0; i < kNodes; ++i) {
    MetricsRegistry metrics;
    services[i]->RegisterMetrics(metrics);
    FoldMetrics(d.metrics_digest, metrics);
  }
  return d;
}

TEST(ParallelEquivalence, ShardedMemcachedClusterBitExact) {
  const TopoDigest serial = RunShardedMemcachedCluster(1);
  // Every prewarm SET and every workload request gets a reply.
  ASSERT_EQ(serial.host_received, (std::vector<u64>{48, 48, 48, 48}));
  for (usize threads : {2u, 4u, 8u}) {
    ExpectIdentical(serial, RunShardedMemcachedCluster(threads), threads);
  }
}

// --- Scenario 4: raw runner, no topology sugar --------------------------------------

// Two shards joined by one Link, ping-ponging a frame 20 times. Exercises
// ParallelRunner + Link::RouteRemote directly: sender-side serialization
// clocking, per-direction seq stamps, and horizon progress on a chain where
// each shard is quiescent until the other's frame lands.
TEST(ParallelEquivalence, RawRunnerPingPongBitExact) {
  auto run = [](usize threads) {
    EventScheduler a;
    EventScheduler b;
    Link link(a, 10'000'000'000ULL, 500'000);
    ParallelRunner runner;
    const usize shard_a = runner.AddShard(a);
    const usize shard_b = runner.AddShard(b);
    runner.ConnectDirection(link, /*to_b=*/true, shard_a, shard_b);
    runner.ConnectDirection(link, /*to_b=*/false, shard_b, shard_a);

    u64 digest = kFnvOffset;
    usize volleys = 0;
    link.AttachB([&](Packet frame) {
      FoldU64(digest, static_cast<u64>(b.now()));
      frame[0] = static_cast<u8>(++volleys);
      if (volleys < 20) {
        link.SendToA(std::move(frame));
      }
    });
    link.AttachA([&](Packet frame) {
      FoldU64(digest, static_cast<u64>(a.now()));
      link.SendToB(std::move(frame));
    });

    a.At(1'000'000, [&link] { link.SendToB(Packet(64)); });
    const u64 events = runner.Run({.threads = threads});
    FoldU64(digest, events);
    FoldU64(digest, runner.epochs());
    FoldU64(digest, link.delivered());
    return std::pair<u64, usize>{digest, volleys};
  };
  const auto serial = run(1);
  EXPECT_EQ(serial.second, 20u);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(4), serial);
}

}  // namespace
}  // namespace emu
