// Property-based tests: randomized sweeps (deterministic seeds, TEST_P)
// checking invariants rather than examples.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/core/targets.h"
#include "src/ip/checksum_unit.h"
#include "src/net/checksum.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/services/learning_switch.h"
#include "src/services/memcached_service.h"
#include "src/services/nat_service.h"

namespace emu {
namespace {

// --- Switch: payload integrity and reference-model agreement ------------------------

// Property: for any random frame stream, the switch (a) never corrupts a
// frame, and (b) forwards to exactly the ports a reference learning-switch
// model predicts.
class SwitchModelProperty : public ::testing::TestWithParam<u64> {};

TEST_P(SwitchModelProperty, MatchesReferenceModelAndPreservesBytes) {
  Rng rng(GetParam());
  LearningSwitch service;
  FpgaTarget target(service);

  std::map<u64, u8> model_table;  // the reference model's MAC table
  std::map<std::vector<u8>, std::set<u8>> expected;  // frame bytes -> ports

  const usize frames = 60;
  usize expected_total = 0;
  for (usize i = 0; i < frames; ++i) {
    const u8 src_port = static_cast<u8>(rng.NextBelow(4));
    // Small MAC pool so hits and floods both occur.
    const u64 src_mac = 0x020000000010 + rng.NextBelow(6);
    u64 dst_mac = 0x020000000010 + rng.NextBelow(6);
    if (rng.NextBool(0.2)) {
      dst_mac = 0xffffffffffff;  // occasional broadcast
    }
    const usize size = 60 + rng.NextBelow(200);
    std::vector<u8> payload(size - kEthernetHeaderSize);
    for (auto& b : payload) {
      b = static_cast<u8>(rng.NextU64());
    }
    Packet frame = MakeEthernetFrame(MacAddress::FromU48(dst_mac),
                                     MacAddress::FromU48(src_mac), EtherType::kIpv4, payload);

    // Reference model: forward decision against the current table...
    std::set<u8> ports;
    const auto hit = model_table.find(dst_mac);
    if (dst_mac != 0xffffffffffff && hit != model_table.end()) {
      ports.insert(hit->second);
    } else {
      for (u8 p = 0; p < 4; ++p) {
        if (p != src_port) {
          ports.insert(p);
        }
      }
    }
    // ...then learn the source.
    model_table[src_mac] = src_port;

    const std::vector<u8> bytes(frame.bytes().begin(), frame.bytes().end());
    for (u8 p : ports) {
      expected[bytes].insert(p);
    }
    expected_total += ports.size();

    // Serialize through the DUT one frame at a time so model and hardware
    // observe the same table state.
    target.Inject(src_port, std::move(frame));
    ASSERT_TRUE(target.RunUntilEgressCount(ports.size(), 500'000));
    const auto egress = target.TakeEgress();
    ASSERT_EQ(egress.size(), ports.size()) << "frame " << i;
    for (const auto& out : egress) {
      const std::vector<u8> out_bytes(out.frame.bytes().begin(), out.frame.bytes().end());
      ASSERT_EQ(out_bytes, bytes) << "frame " << i << " corrupted in flight";
      ASSERT_TRUE(ports.count(out.port)) << "frame " << i << " wrong port "
                                         << static_cast<int>(out.port);
    }
  }
  EXPECT_GT(expected_total, frames);  // sanity: some flooding happened
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchModelProperty, ::testing::Values(1u, 77u, 424242u));

// --- Checksum unit vs software over random inputs -------------------------------------

class ChecksumProperty : public ::testing::TestWithParam<u64> {};

TEST_P(ChecksumProperty, HardwareUnitMatchesSoftware) {
  Rng rng(GetParam());
  Simulator sim;
  for (int round = 0; round < 100; ++round) {
    std::vector<u8> data(1 + rng.NextBelow(300), 0);
    for (auto& b : data) {
      b = static_cast<u8>(rng.NextU64());
    }
    ChecksumUnit unit(sim, "csum");
    unit.AddBytes(data);
    ASSERT_EQ(unit.Result(), InternetChecksum(data)) << "round " << round;
  }
}

TEST_P(ChecksumProperty, FoldBugAlwaysDetectableOnLargeSums) {
  // Property: once the running sum carries past 16 bits, the injected fold
  // bug always diverges from the correct checksum.
  Rng rng(GetParam());
  Simulator sim;
  for (int round = 0; round < 50; ++round) {
    std::vector<u8> data(200 + rng.NextBelow(200), 0);
    for (auto& b : data) {
      b = static_cast<u8>(0x80 | rng.NextU64());  // high bytes force carries
    }
    ChecksumUnit good(sim, "good");
    ChecksumUnit bad(sim, "bad");
    bad.InjectFoldBug(true);
    good.AddBytes(data);
    bad.AddBytes(data);
    ASSERT_NE(good.Result(), bad.Result()) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumProperty, ::testing::Values(3u, 99u));

// --- NAT invariants over random flow sets ----------------------------------------------

class NatProperty : public ::testing::TestWithParam<u64> {};

TEST_P(NatProperty, DistinctFlowsDistinctPortsAndReversible) {
  Rng rng(GetParam());
  NatConfig config;
  NatService service(config);
  FpgaTarget target(service);
  const MacAddress host_mac = MacAddress::FromU48(0x02'00'00'00'11'10);

  struct FlowKey {
    u32 ip;
    u16 port;
    bool operator<(const FlowKey& other) const {
      return ip != other.ip ? ip < other.ip : port < other.port;
    }
  };
  std::map<FlowKey, u16> observed;  // flow -> external port

  for (int i = 0; i < 60; ++i) {
    const FlowKey key{Ipv4Address(192, 168, 1, static_cast<u8>(2 + rng.NextBelow(40))).value(),
                      static_cast<u16>(1024 + rng.NextBelow(2000))};
    Packet out = MakeUdpPacket({config.internal_mac, host_mac, Ipv4Address(key.ip),
                                Ipv4Address(8, 8, 8, 8), key.port, 53},
                               std::vector<u8>{'x'});
    auto translated = target.SendAndCollect(1, std::move(out));
    ASSERT_TRUE(translated.ok());
    Packet frame = *translated;
    Ipv4View ip(frame);
    UdpView udp(frame, ip.payload_offset());
    ASSERT_TRUE(ip.ChecksumValid());
    ASSERT_TRUE(udp.ChecksumValid(ip));
    const u16 ext_port = udp.source_port();

    const auto it = observed.find(key);
    if (it != observed.end()) {
      // Same flow: same mapping, every time.
      ASSERT_EQ(it->second, ext_port);
    } else {
      // New flow: a port no other flow owns.
      for (const auto& [other, port] : observed) {
        ASSERT_NE(port, ext_port);
      }
      observed[key] = ext_port;
    }
  }

  // Every observed mapping is reversible.
  for (const auto& [key, ext_port] : observed) {
    Packet in = MakeUdpPacket({config.external_mac, MacAddress::FromU48(0x02ffffffff02),
                               Ipv4Address(8, 8, 8, 8), config.external_ip, 53, ext_port},
                              std::vector<u8>{'y'});
    auto back = target.SendAndCollect(0, std::move(in));
    ASSERT_TRUE(back.ok());
    Packet frame = *back;
    Ipv4View ip(frame);
    UdpView udp(frame, ip.payload_offset());
    ASSERT_EQ(ip.destination().value(), key.ip);
    ASSERT_EQ(udp.destination_port(), key.port);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NatProperty, ::testing::Values(5u, 1234u));

// --- Memcached vs a reference map over random op sequences ------------------------------

class MemcachedModelProperty
    : public ::testing::TestWithParam<std::tuple<u64, McProtocol>> {};

TEST_P(MemcachedModelProperty, AgreesWithReferenceMapModel) {
  const auto [seed, protocol] = GetParam();
  Rng rng(seed);
  MemcachedConfig config;
  config.protocol = protocol;
  config.capacity = 4096;  // large enough that LRU eviction never fires:
                           // the reference model has no eviction
  MemcachedService service(config);
  FpgaTarget target(service);
  std::map<std::string, std::string> model;

  const MacAddress client = MacAddress::FromU48(0x02'00'00'00'cc'66);
  for (int i = 0; i < 120; ++i) {
    McRequest request;
    request.protocol = protocol;
    request.key = "key" + std::to_string(rng.NextBelow(12));
    const u64 dice = rng.NextBelow(10);
    if (dice < 5) {
      request.op = McOpcode::kGet;
    } else if (dice < 8) {
      request.op = McOpcode::kSet;
      request.value = "v" + std::to_string(rng.NextBelow(1000));
    } else {
      request.op = McOpcode::kDelete;
    }
    Packet frame = MakeUdpPacket(
        {config.mac, client, Ipv4Address(10, 0, 0, 9), config.ip, 31000, kMemcachedPort},
        BuildMcRequest(request));
    auto reply = target.SendAndCollect(static_cast<u8>(i % 4), std::move(frame));
    ASSERT_TRUE(reply.ok()) << "op " << i;
    Packet out = *reply;
    Ipv4View ip(out);
    UdpView udp(out, ip.payload_offset());
    auto response = ParseMcResponse(udp.Payload(), protocol);
    ASSERT_TRUE(response.ok()) << "op " << i;

    switch (request.op) {
      case McOpcode::kGet: {
        const auto it = model.find(request.key);
        if (it == model.end()) {
          ASSERT_EQ(response->status, McStatus::kKeyNotFound) << "op " << i;
        } else {
          ASSERT_EQ(response->status, McStatus::kNoError) << "op " << i;
          ASSERT_EQ(response->value, it->second) << "op " << i;
        }
        break;
      }
      case McOpcode::kSet:
        ASSERT_EQ(response->status, McStatus::kNoError) << "op " << i;
        model[request.key] = request.value;
        break;
      case McOpcode::kDelete: {
        const bool existed = model.erase(request.key) > 0;
        ASSERT_EQ(response->status,
                  existed ? McStatus::kNoError : McStatus::kKeyNotFound)
            << "op " << i;
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndProtocols, MemcachedModelProperty,
    ::testing::Combine(::testing::Values(11u, 222u),
                       ::testing::Values(McProtocol::kBinary, McProtocol::kAscii)));

// --- WideUInt<128> vs native __int128 differential ---------------------------------------

class WideWordDifferential : public ::testing::TestWithParam<u64> {};

TEST_P(WideWordDifferential, MatchesNativeInt128) {
  Rng rng(GetParam());
  const auto to_wide = [](unsigned __int128 v) {
    Word128 w;
    w.SetLimb(0, static_cast<u64>(v));
    w.SetLimb(1, static_cast<u64>(v >> 64));
    return w;
  };
  const auto to_native = [](const Word128& w) {
    return (static_cast<unsigned __int128>(w.Limb(1)) << 64) | w.Limb(0);
  };
  for (int round = 0; round < 500; ++round) {
    const unsigned __int128 a =
        (static_cast<unsigned __int128>(rng.NextU64()) << 64) | rng.NextU64();
    const unsigned __int128 b =
        (static_cast<unsigned __int128>(rng.NextU64()) << 64) | rng.NextU64();
    const Word128 wa = to_wide(a);
    const Word128 wb = to_wide(b);
    ASSERT_EQ(to_native(wa + wb), static_cast<unsigned __int128>(a + b));
    ASSERT_EQ(to_native(wa - wb), static_cast<unsigned __int128>(a - b));
    ASSERT_EQ(to_native(wa ^ wb), a ^ b);
    ASSERT_EQ(to_native(wa & wb), a & b);
    ASSERT_EQ(to_native(wa | wb), a | b);
    const usize shift = rng.NextBelow(128);
    ASSERT_EQ(to_native(wa << shift), static_cast<unsigned __int128>(a << shift));
    ASSERT_EQ(to_native(wa >> shift), static_cast<unsigned __int128>(a >> shift));
    ASSERT_EQ(wa < wb, a < b);
    ASSERT_EQ(wa == wb, a == b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideWordDifferential, ::testing::Values(21u, 2121u));

// --- Pipeline integrity across frame sizes -----------------------------------------------

class FrameSizeProperty : public ::testing::TestWithParam<usize> {};

TEST_P(FrameSizeProperty, SwitchForwardsAllSizesIntact) {
  const usize size = GetParam();
  Rng rng(size);
  LearningSwitch service;
  FpgaTarget target(service);
  const MacAddress a = MacAddress::FromU48(0x020000000001);
  const MacAddress b = MacAddress::FromU48(0x020000000002);
  target.Inject(1, MakeEthernetFrame(MacAddress::Broadcast(), b, EtherType::kIpv4, {}));
  target.Run(50'000);
  target.TakeEgress();

  std::vector<u8> payload(size - kEthernetHeaderSize);
  for (auto& byte : payload) {
    byte = static_cast<u8>(rng.NextU64());
  }
  Packet frame = MakeEthernetFrame(b, a, EtherType::kIpv4, payload);
  frame.Resize(size);
  const std::vector<u8> sent(frame.bytes().begin(), frame.bytes().end());
  auto out = target.SendAndCollect(0, std::move(frame));
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), size);
  for (usize i = 0; i < size; ++i) {
    ASSERT_EQ((*out)[i], sent[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FrameSizeProperty,
                         ::testing::Values(60u, 64u, 65u, 128u, 512u, 1024u, 1514u));

}  // namespace
}  // namespace emu
