// Cross-module integration scenarios: directed services inside the network
// simulator, filters in front of switches under load, NAT round trips
// between simulated hosts, and the same service checked bit-for-bit across
// all three targets.
#include <gtest/gtest.h>

#include "src/core/targets.h"
#include "src/debug/controller.h"
#include "src/hostnet/host_services.h"
#include "src/net/dns.h"
#include "src/net/icmp.h"
#include "src/net/udp.h"
#include "src/services/dns_service.h"
#include "src/services/icmp_echo_service.h"
#include "src/services/iptables_cli.h"
#include "src/services/l3l4_filter.h"
#include "src/services/memcached_service.h"
#include "src/services/nat_service.h"
#include "src/sim/loadgen.h"
#include "src/sim/memaslap.h"
#include "src/sim/topology.h"

namespace emu {
namespace {

const MacAddress kClientMac = MacAddress::FromU48(0x02'00'00'00'cc'77);
const Ipv4Address kClientIp(10, 0, 0, 9);

// --- Same service, three targets, identical wire bytes ----------------------------

TEST(CrossTarget, DnsReplyBytesIdenticalOnCpuAndFpga) {
  DnsServiceConfig config;
  const auto make_query = [&] {
    return MakeUdpPacket({config.mac, kClientMac, kClientIp, config.ip, 5555, kDnsPort},
                         BuildDnsQuery(0x77, "svc.lab"));
  };

  DnsService cpu_service(config);
  ASSERT_TRUE(cpu_service.AddRecord("svc.lab", Ipv4Address(10, 1, 1, 1)).ok());
  CpuTarget cpu(cpu_service);
  Packet cpu_query = make_query();
  cpu_query.set_src_port(1);
  const auto cpu_out = cpu.Deliver(std::move(cpu_query));
  ASSERT_EQ(cpu_out.size(), 1u);

  DnsService fpga_service(config);
  ASSERT_TRUE(fpga_service.AddRecord("svc.lab", Ipv4Address(10, 1, 1, 1)).ok());
  FpgaTarget fpga(fpga_service);
  auto fpga_out = fpga.SendAndCollect(1, make_query());
  ASSERT_TRUE(fpga_out.ok());

  ASSERT_EQ(cpu_out[0].size(), fpga_out->size());
  for (usize i = 0; i < cpu_out[0].size(); ++i) {
    ASSERT_EQ(cpu_out[0][i], (*fpga_out)[i]) << "byte " << i;
  }
}

TEST(CrossTarget, IcmpEchoAgreesWithHostImplementation) {
  // The Emu service and the host-software service implement the same
  // protocol; given the same request they must produce byte-identical
  // replies (modulo nothing: both recompute the same checksums).
  IcmpEchoConfig config;
  Packet request = MakeIcmpEchoRequest(
      {config.mac, kClientMac, kClientIp, config.ip, 7, 9}, std::vector<u8>{1, 2, 3, 4});

  IcmpEchoService emu_service(config);
  FpgaTarget target(emu_service);
  auto emu_reply = target.SendAndCollect(0, request);
  ASSERT_TRUE(emu_reply.ok());

  HostIcmpEcho host_service(config.mac, config.ip);
  auto host_reply = host_service.HandleRequest(request);
  ASSERT_TRUE(host_reply.has_value());

  ASSERT_EQ(emu_reply->size(), host_reply->size());
  for (usize i = 0; i < emu_reply->size(); ++i) {
    ASSERT_EQ((*emu_reply)[i], (*host_reply)[i]) << "byte " << i;
  }
}

// --- Directed service inside the event-driven simulator ----------------------------

TEST(DirectedInSimulator, DirectionPacketsWorkOverSimLinks) {
  DnsServiceConfig config;
  DnsService service(config);
  DirectionController controller("main_loop");
  service.AttachController(&controller);
  ASSERT_TRUE(service.AddRecord("svc.lab", Ipv4Address(10, 1, 1, 1)).ok());
  DirectedService directed(service, controller);

  std::vector<HostSpec> hosts = {
      {"client", kClientMac, kClientIp},
      {"director", MacAddress::FromU48(0x02'00'00'00'd0'02), Ipv4Address(10, 0, 0, 50)}};
  StarTopology topo(directed, hosts);

  // Client resolves a name through the simulator.
  bool resolved = false;
  topo.host(0).SetApp([&](SimHost&, Packet frame) {
    Ipv4View ip(frame);
    if (ip.Valid()) {
      UdpView udp(frame, ip.payload_offset());
      auto response = ParseDnsResponse(udp.Payload());
      resolved = response.ok() && !response->answers.empty();
    }
  });
  topo.host(0).Send(MakeUdpPacket({config.mac, kClientMac, kClientIp, config.ip, 5, kDnsPort},
                                  BuildDnsQuery(1, "svc.lab")));
  topo.Run();
  EXPECT_TRUE(resolved);

  // Director interrogates the service over the same network.
  std::string reply_text;
  topo.host(1).SetApp([&](SimHost&, Packet frame) {
    auto payload = ParseDirectionPacket(frame);
    if (payload.ok()) {
      reply_text = payload->text;
    }
  });
  topo.host(1).Send(MakeDirectionPacket(config.mac, hosts[1].mac,
                                        DirectionPacketKind::kCommand, 1, "print resolved"));
  topo.Run();
  EXPECT_EQ(reply_text, "resolved=1");
}

// --- Filter + switch under load ------------------------------------------------------

TEST(FilterUnderLoad, DropsDoNotDisturbAcceptedTraffic) {
  auto ruleset = ParseIptablesScript("-A FORWARD -p udp --dport 9999 -j DROP\n");
  ASSERT_TRUE(ruleset.ok());
  L3L4FilterConfig config;
  config.rules = ruleset->rules;
  L3L4Filter service(config);
  FpgaTarget target(service);

  const MacAddress macs[2] = {MacAddress::FromU48(0x02'00'00'00'00'01),
                              MacAddress::FromU48(0x02'00'00'00'00'02)};
  // Teach both MACs.
  target.Inject(0, MakeUdpPacket({MacAddress::Broadcast(), macs[0], kClientIp,
                                  Ipv4Address(10, 0, 0, 2), 1, 2},
                                 std::vector<u8>{1}));
  target.Inject(1, MakeUdpPacket({MacAddress::Broadcast(), macs[1], Ipv4Address(10, 0, 0, 2),
                                  kClientIp, 1, 2},
                                 std::vector<u8>{1}));
  target.Run(100'000);
  target.TakeEgress();

  // Interleave accepted (port 53) and filtered (port 9999) flows.
  const usize pairs = 100;
  for (usize i = 0; i < pairs; ++i) {
    target.Inject(0, MakeUdpPacket({macs[1], macs[0], kClientIp, Ipv4Address(10, 0, 0, 2),
                                    1000, 53},
                                   std::vector<u8>{1}));
    target.Inject(0, MakeUdpPacket({macs[1], macs[0], kClientIp, Ipv4Address(10, 0, 0, 2),
                                    1000, 9999},
                                   std::vector<u8>{1}));
  }
  ASSERT_TRUE(target.RunUntilEgressCount(pairs, 5'000'000));
  target.Run(100'000);
  const auto egress = target.TakeEgress();
  EXPECT_EQ(egress.size(), pairs);  // exactly the accepted half
  EXPECT_EQ(service.filtered(), pairs);
  for (const auto& frame : egress) {
    Packet copy = frame.frame;
    Ipv4View ip(copy);
    UdpView udp(copy, ip.payload_offset());
    EXPECT_EQ(udp.destination_port(), 53);
  }
}

// --- NAT between simulated hosts: full round trip -------------------------------------

TEST(NatRoundTrip, SimHostsExchangeThroughGateway) {
  NatConfig config;
  std::vector<HostSpec> hosts = {
      {"remote", MacAddress::FromU48(0x02'ff'ff'ff'ff'02), Ipv4Address(8, 8, 8, 8)},
      {"internal", MacAddress::FromU48(0x02'00'00'00'11'10), Ipv4Address(192, 168, 1, 10)}};
  NatService service(config);
  StarTopology topo(service, hosts);

  // The remote host echoes any UDP payload it receives back to the sender.
  topo.host(0).SetApp([&](SimHost& self, Packet frame) {
    Ipv4View ip(frame);
    if (!ip.Valid() || !ip.ProtocolIs(IpProtocol::kUdp)) {
      return;
    }
    UdpView udp(frame, ip.payload_offset());
    const auto payload = udp.Payload();
    EthernetView eth(frame);
    Packet reply = MakeUdpPacket({eth.source(), hosts[0].mac, Ipv4Address(8, 8, 8, 8),
                                  ip.source(), udp.destination_port(), udp.source_port()},
                                 std::vector<u8>(payload.begin(), payload.end()));
    self.Send(std::move(reply));
  });

  std::string received;
  topo.host(1).SetApp([&](SimHost&, Packet frame) {
    Ipv4View ip(frame);
    if (ip.Valid() && ip.ProtocolIs(IpProtocol::kUdp)) {
      UdpView udp(frame, ip.payload_offset());
      const auto payload = udp.Payload();
      received.assign(payload.begin(), payload.end());
    }
  });

  const std::string message = "hello-through-nat";
  topo.host(1).Send(MakeUdpPacket(
      {config.internal_mac, hosts[1].mac, hosts[1].ip, hosts[0].ip, 4000, 7},
      std::vector<u8>(message.begin(), message.end())));
  topo.Run();
  EXPECT_EQ(received, message);  // outbound SNAT + inbound DNAT both worked
  EXPECT_EQ(service.translated_out(), 1u);
  EXPECT_EQ(service.translated_in(), 1u);
}

// --- Memcached multi-core under sustained load ------------------------------------------

TEST(MemcachedLoad, MultiCoreServesMixWithoutLossAtModerateRate) {
  MemcachedConfig config;
  config.cores = 4;
  MemcachedService service(config);
  FpgaTarget target(service);

  MemaslapConfig workload;
  workload.server_mac = config.mac;
  workload.server_ip = config.ip;
  workload.key_space = 64;
  MemaslapLoadgen loadgen(workload);
  for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
    ASSERT_TRUE(target.SendAndCollect(0, loadgen.PrewarmFrame(i)).ok());
  }
  target.TakeEgress();

  OsntLoadgen::FixedRateConfig rate;
  rate.offered_mqps = 3.0;  // well under the 4-core capacity
  rate.frames = 2000;
  rate.ports = {0, 1, 2, 3};
  const auto factory = [&loadgen](usize i, u8) { return loadgen.WorkloadFrame(i); };
  const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, rate);
  EXPECT_EQ(report.injected, 2000u);
  EXPECT_LT(report.loss_rate, 0.001);
  EXPECT_EQ(report.egressed, 2000u);  // every request answered exactly once
}

// --- Directed memcached keeps serving while counting -------------------------------------

TEST(DirectedUnderLoad, CountersMatchServedRequests) {
  MemcachedConfig config;
  MemcachedService service(config);
  DirectionController controller("main_loop");
  service.AttachController(&controller);
  DirectedService directed(service, controller);
  FpgaTarget target(directed);

  controller.HandleCommandText("count calls handle_request");

  MemaslapConfig workload;
  workload.server_mac = config.mac;
  workload.server_ip = config.ip;
  workload.key_space = 32;
  MemaslapLoadgen loadgen(workload);
  usize served = 0;
  for (usize i = 0; i < 50; ++i) {
    Packet frame = i < 32 ? loadgen.PrewarmFrame(i) : loadgen.WorkloadFrame(i);
    if (target.SendAndCollect(0, std::move(frame)).ok()) {
      ++served;
    }
  }
  EXPECT_EQ(served, 50u);
  EXPECT_EQ(controller.machine().counter(CallCounterName("handle_request")), 50u);
}

}  // namespace
}  // namespace emu
