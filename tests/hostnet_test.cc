// Host-stack model calibration and host service functionality.
#include <gtest/gtest.h>

#include "src/hostnet/host_services.h"
#include "src/hostnet/host_stack_model.h"
#include "src/net/icmp.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/sim/latency_probe.h"

namespace emu {
namespace {

const MacAddress kServerMac = MacAddress::FromU48(0x02'00'00'00'bb'01);
const Ipv4Address kServerIp(10, 0, 0, 200);
const MacAddress kClientMac = MacAddress::FromU48(0x02'00'00'00'cc'03);
const Ipv4Address kClientIp(10, 0, 0, 7);

LatencyStats SampleModel(HostStackParams params, usize n = 20000, usize bytes = 64) {
  HostStackModel model(params, /*seed=*/99);
  LatencyStats stats;
  for (usize i = 0; i < n; ++i) {
    stats.Add(model.SampleUnloadedRtt(bytes));
  }
  return stats;
}

// --- Calibration against Table 4's host column -----------------------------------

TEST(HostModel, IcmpEchoMatchesTable4) {
  const LatencyStats stats = SampleModel(HostIcmpEchoParams());
  EXPECT_NEAR(stats.MeanUs(), 12.28, 1.5);
  EXPECT_NEAR(stats.PercentileUs(99.0), 22.63, 4.0);
}

TEST(HostModel, TcpPingMatchesTable4) {
  const LatencyStats stats = SampleModel(HostTcpPingParams());
  EXPECT_NEAR(stats.MeanUs(), 21.79, 3.0);
  EXPECT_NEAR(stats.PercentileUs(99.0), 65.0, 14.0);
}

TEST(HostModel, DnsMatchesTable4) {
  const LatencyStats stats = SampleModel(HostDnsParams());
  EXPECT_NEAR(stats.MeanUs(), 126.46, 8.0);
  EXPECT_NEAR(stats.PercentileUs(99.0), 138.33, 12.0);
}

TEST(HostModel, NatMatchesTable4) {
  const LatencyStats stats = SampleModel(HostNatParams());
  EXPECT_NEAR(stats.MeanUs(), 2444.76, 250.0);
  EXPECT_NEAR(stats.PercentileUs(99.0), 6185.27, 1300.0);
}

TEST(HostModel, MemcachedMatchesTable4) {
  const LatencyStats stats = SampleModel(HostMemcachedParams());
  EXPECT_NEAR(stats.MeanUs(), 24.29, 2.5);
  EXPECT_NEAR(stats.PercentileUs(99.0), 28.65, 4.0);
}

TEST(HostModel, TailHeavierThanEmu) {
  // The structural claim of §5.4: host tail-to-average 1.09-2.98, Emu's
  // 1.02-1.04.
  for (const auto& params : {HostIcmpEchoParams(), HostTcpPingParams(), HostDnsParams(),
                             HostNatParams(), HostMemcachedParams()}) {
    const LatencyStats stats = SampleModel(params, 10000);
    EXPECT_GT(stats.TailToAverage(), 1.05);
    EXPECT_LT(stats.TailToAverage(), 3.6);
  }
}

TEST(HostModel, DeterministicAcrossRuns) {
  HostStackModel a(HostDnsParams(), 5);
  HostStackModel b(HostDnsParams(), 5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.SampleUnloadedRtt(64), b.SampleUnloadedRtt(64));
  }
}

// --- Queueing / capacity -----------------------------------------------------------

TEST(HostModel, ThroughputCapsAtCoresOverServiceTime) {
  HostStackParams params = HostMemcachedParams();
  HostStackModel model(params, 7);
  // Offer far above capacity for 50 ms; departures cap at ~cores/service_us.
  const double offered_qps = 5e6;
  const Picoseconds horizon = 50 * kPicosPerMilli;
  const Picoseconds gap = static_cast<Picoseconds>(1e12 / offered_qps);
  usize served = 0;
  Picoseconds last_departure = 0;
  for (Picoseconds t = 0; t < horizon; t += gap) {
    last_departure = model.ServeRequest(t, 100);
    ++served;
  }
  const double seconds = static_cast<double>(last_departure) / 1e12;
  const double qps = static_cast<double>(served) / seconds;
  const double cap = params.cores / params.service_us * 1e6;
  EXPECT_NEAR(qps, cap, cap * 0.15);  // ~0.876 Mq/s for memcached params
}

TEST(HostModel, QueueingInflatesLatencyNearSaturation) {
  HostStackParams params = HostDnsParams();
  HostStackModel model(params, 11);
  // 95% of capacity.
  const double capacity = params.cores / params.service_us * 1e6;
  const Picoseconds gap = static_cast<Picoseconds>(1e12 / (0.95 * capacity));
  LatencyStats loaded;
  Picoseconds t = 0;
  for (int i = 0; i < 20000; ++i, t += gap) {
    loaded.Add(model.ServeRequest(t, 64) - t);
  }
  const LatencyStats unloaded = SampleModel(params, 5000);
  EXPECT_GT(loaded.PercentileUs(99.0), unloaded.PercentileUs(99.0));
}

// --- Host services (functional) ------------------------------------------------------

TEST(HostServices, IcmpEchoReplies) {
  HostIcmpEcho service(kServerMac, kServerIp);
  Packet request = MakeIcmpEchoRequest({kServerMac, kClientMac, kClientIp, kServerIp, 3, 4},
                                       std::vector<u8>{'p'});
  auto reply = service.HandleRequest(request);
  ASSERT_TRUE(reply.has_value());
  Ipv4View ip(*reply);
  IcmpView icmp(*reply, ip.payload_offset());
  EXPECT_TRUE(icmp.TypeIs(IcmpType::kEchoReply));
  EXPECT_EQ(ip.destination(), kClientIp);
}

TEST(HostServices, IcmpEchoIgnoresOtherHosts) {
  HostIcmpEcho service(kServerMac, kServerIp);
  Packet request = MakeIcmpEchoRequest(
      {kServerMac, kClientMac, kClientIp, Ipv4Address(1, 1, 1, 1), 3, 4}, {});
  EXPECT_FALSE(service.HandleRequest(request).has_value());
}

TEST(HostServices, TcpPingSynAckAndRst) {
  HostTcpPing service(kServerMac, kServerIp, {80});
  TcpSegmentSpec open{kServerMac, kClientMac, kClientIp, kServerIp, 9999, 80,
                      5,          0,          TcpFlags::kSyn};
  auto reply = service.HandleRequest(MakeTcpSegment(open));
  ASSERT_TRUE(reply.has_value());
  {
    Ipv4View ip(*reply);
    TcpView tcp(*reply, ip.payload_offset());
    EXPECT_TRUE(tcp.HasFlag(TcpFlags::kSyn));
    EXPECT_TRUE(tcp.HasFlag(TcpFlags::kAck));
    EXPECT_EQ(tcp.ack_number(), 6u);
  }
  TcpSegmentSpec closed = open;
  closed.dst_port = 81;
  reply = service.HandleRequest(MakeTcpSegment(closed));
  ASSERT_TRUE(reply.has_value());
  {
    Ipv4View ip(*reply);
    TcpView tcp(*reply, ip.payload_offset());
    EXPECT_TRUE(tcp.HasFlag(TcpFlags::kRst));
  }
}

TEST(HostServices, DnsResolvesAndNxdomains) {
  HostDns service(kServerMac, kServerIp);
  service.AddRecord("svc.lab", Ipv4Address(10, 2, 2, 2));
  Packet query = MakeUdpPacket({kServerMac, kClientMac, kClientIp, kServerIp, 5, kDnsPort},
                               BuildDnsQuery(1, "svc.lab"));
  auto reply = service.HandleRequest(query);
  ASSERT_TRUE(reply.has_value());
  Ipv4View ip(*reply);
  UdpView udp(*reply, ip.payload_offset());
  auto response = ParseDnsResponse(udp.Payload());
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(response->answers[0].address, Ipv4Address(10, 2, 2, 2));

  Packet unknown = MakeUdpPacket({kServerMac, kClientMac, kClientIp, kServerIp, 5, kDnsPort},
                                 BuildDnsQuery(2, "missing.lab"));
  reply = service.HandleRequest(unknown);
  ASSERT_TRUE(reply.has_value());
  Ipv4View ip2(*reply);
  UdpView udp2(*reply, ip2.payload_offset());
  auto nx = ParseDnsResponse(udp2.Payload());
  ASSERT_TRUE(nx.ok());
  EXPECT_EQ(nx->header.rcode, DnsRcode::kNxDomain);
}

TEST(HostServices, MemcachedSetGetDeleteAndLru) {
  HostMemcached service(kServerMac, kServerIp, McProtocol::kAscii, /*capacity=*/2);
  auto exchange = [&](const McRequest& request) -> McResponse {
    McRequest copy = request;
    copy.protocol = McProtocol::kAscii;
    Packet packet = MakeUdpPacket(
        {kServerMac, kClientMac, kClientIp, kServerIp, 5, kMemcachedPort},
        BuildMcRequest(copy));
    auto reply = service.HandleRequest(packet);
    EXPECT_TRUE(reply.has_value());
    Ipv4View ip(*reply);
    UdpView udp(*reply, ip.payload_offset());
    auto response = ParseMcResponse(udp.Payload(), McProtocol::kAscii);
    EXPECT_TRUE(response.ok());
    return *response;
  };

  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "a";
  set.value = "1";
  EXPECT_EQ(exchange(set).status, McStatus::kNoError);
  set.key = "b";
  EXPECT_EQ(exchange(set).status, McStatus::kNoError);

  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "a";
  EXPECT_EQ(exchange(get).status, McStatus::kNoError);  // touch a

  set.key = "c";  // capacity 2: evicts LRU = b
  EXPECT_EQ(exchange(set).status, McStatus::kNoError);
  get.key = "b";
  EXPECT_EQ(exchange(get).status, McStatus::kKeyNotFound);
  get.key = "a";
  EXPECT_EQ(exchange(get).status, McStatus::kNoError);

  McRequest del;
  del.op = McOpcode::kDelete;
  del.key = "a";
  EXPECT_EQ(exchange(del).status, McStatus::kNoError);
  get.key = "a";
  EXPECT_EQ(exchange(get).status, McStatus::kKeyNotFound);
}

TEST(HostServices, NatTranslatesBothDirections) {
  HostNat::Config config;
  HostNat service(config);
  const Ipv4Address internal(192, 168, 1, 5);
  const MacAddress internal_mac = MacAddress::FromU48(0x02'00'00'00'11'05);
  Packet out = MakeUdpPacket(
      {kServerMac, internal_mac, internal, Ipv4Address(8, 8, 8, 8), 1234, 53},
      std::vector<u8>{'q'});
  auto translated = service.HandleRequest(out);
  ASSERT_TRUE(translated.has_value());
  Ipv4View out_ip(*translated);
  EXPECT_EQ(out_ip.source(), config.external_ip);
  UdpView out_udp(*translated, out_ip.payload_offset());
  const u16 ext_port = out_udp.source_port();
  EXPECT_GE(ext_port, config.port_base);
  EXPECT_TRUE(out_udp.ChecksumValid(out_ip));

  Packet in = MakeUdpPacket({config.external_mac, MacAddress::FromU48(0x02ffffffff02),
                             Ipv4Address(8, 8, 8, 8), config.external_ip, 53, ext_port},
                            std::vector<u8>{'r'});
  auto back = service.HandleRequest(in);
  ASSERT_TRUE(back.has_value());
  Ipv4View in_ip(*back);
  EXPECT_EQ(in_ip.destination(), internal);
  UdpView in_udp(*back, in_ip.payload_offset());
  EXPECT_EQ(in_udp.destination_port(), 1234);
}

}  // namespace
}  // namespace emu
