// emu-fault: plans, registry determinism, impairment, hardware-state faults,
// NAT hardening under table pressure, loadgen loss accounting, and the
// emu-check integration (injected faults surfacing as hazard reports).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/targets.h"
#include "src/debug/controller.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fault_registry.h"
#include "src/fault/frame_impairer.h"
#include "src/hdl/fifo.h"
#include "src/hdl/signal.h"
#include "src/hdl/simulator.h"
#include "src/ip/bram.h"
#include "src/ip/cam.h"
#include "src/ip/checksum_unit.h"
#include "src/ip/hash_cam.h"
#include "src/net/udp.h"
#include "src/services/nat_service.h"
#include "src/sim/event_scheduler.h"
#include "src/sim/link.h"
#include "src/sim/loadgen.h"

#ifdef EMU_ANALYSIS
#include "src/analysis/hazard_monitor.h"
#endif

namespace emu {
namespace {

// --- Fault plan parsing ------------------------------------------------------------

TEST(FaultPlan, ParsesAllModesCommentsAndSeparators) {
  const auto plan = ParseFaultPlan(
      "# chaos plan\n"
      "ingress.drop bernoulli 0.01\n"
      "mc.csum.fold oneshot 5000; nat.* burst 100 200 0.5 8\n"
      "\n"
      "link.delay bernoulli 0.1 25000\n");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->entries.size(), 4u);
  EXPECT_EQ(plan->entries[0].pattern, "ingress.drop");
  EXPECT_EQ(plan->entries[0].schedule.mode, FaultSchedule::Mode::kBernoulli);
  EXPECT_DOUBLE_EQ(plan->entries[0].schedule.probability, 0.01);
  EXPECT_EQ(plan->entries[1].schedule.mode, FaultSchedule::Mode::kOneShot);
  EXPECT_EQ(plan->entries[1].schedule.at, 5000u);
  EXPECT_EQ(plan->entries[2].pattern, "nat.*");
  EXPECT_EQ(plan->entries[2].schedule.mode, FaultSchedule::Mode::kBurst);
  EXPECT_EQ(plan->entries[2].schedule.from, 100u);
  EXPECT_EQ(plan->entries[2].schedule.until, 200u);
  EXPECT_EQ(plan->entries[2].schedule.magnitude, 8u);
  EXPECT_EQ(plan->entries[3].schedule.magnitude, 25000u);
}

TEST(FaultPlan, RejectsMalformedEntries) {
  EXPECT_FALSE(ParseFaultPlan("p sometimes 0.1").ok());     // unknown mode
  EXPECT_FALSE(ParseFaultPlan("p oneshot").ok());           // missing operand
  EXPECT_FALSE(ParseFaultPlan("p bernoulli 1.5").ok());     // p out of range
  EXPECT_FALSE(ParseFaultPlan("p burst 200 100 0.5").ok()); // empty window
  EXPECT_FALSE(ParseFaultPlan("oneshot 5").ok());           // no point name
}

TEST(FaultPlan, RejectsDuplicatePointEntries) {
  const auto plan = ParseFaultPlan("p bernoulli 1.0; p oneshot 7");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().ToString().find("duplicate point entry 'p'"), std::string::npos)
      << plan.status().ToString();
  // Distinct patterns that merely overlap at arm time are fine.
  EXPECT_TRUE(ParseFaultPlan("p bernoulli 1.0; p.* oneshot 7").ok());
}

TEST(FaultPlan, ParseErrorsCarryLineNumbers) {
  // The bad entry sits on physical line 3 (line 2 is blank).
  const auto plan = ParseFaultPlan(
      "ingress.drop bernoulli 0.01\n"
      "\n"
      "mc.csum.fold oneshot\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().ToString().find("fault plan line 3"), std::string::npos)
      << plan.status().ToString();
}

TEST(FaultPlan, SemicolonEntriesShareTheLineNumber) {
  const auto plan = ParseFaultPlan(
      "ingress.drop bernoulli 0.01\n"
      "a oneshot 5; b sometimes 0.1\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().ToString().find("fault plan line 2"), std::string::npos)
      << plan.status().ToString();
  EXPECT_NE(plan.status().ToString().find("unknown schedule mode"), std::string::npos);
}

TEST(FaultPlan, PatternMatching) {
  EXPECT_TRUE(FaultPatternMatches("nat.table_full", "nat.table_full"));
  EXPECT_TRUE(FaultPatternMatches("nat.*", "nat.table_full"));
  EXPECT_TRUE(FaultPatternMatches("*", "anything.at_all"));
  EXPECT_FALSE(FaultPatternMatches("nat.*", "dns.table"));
  EXPECT_FALSE(FaultPatternMatches("nat.table", "nat.table_full"));
}

// --- Registry determinism ----------------------------------------------------------

std::vector<u64> FireTicks(const FaultRegistry& registry, const std::string& site) {
  std::vector<u64> ticks;
  for (const FaultEvent& event : registry.log()) {
    if (event.site == site) {
      ticks.push_back(event.tick);
    }
  }
  return ticks;
}

TEST(FaultRegistry, SameSeedReplaysBitExactly) {
  auto run = [] {
    FaultRegistry registry(1234);
    FaultPoint* p = registry.Register("tap.drop", FaultClass::kLinkDrop);
    registry.Arm("tap.drop", FaultSchedule::Bernoulli(0.1));
    for (u64 tick = 0; tick < 2000; ++tick) {
      p->Sample(tick);
    }
    return registry.LogDigest();
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultRegistry, DifferentSeedsDiverge) {
  auto digest = [](u64 seed) {
    FaultRegistry registry(seed);
    FaultPoint* p = registry.Register("tap.drop", FaultClass::kLinkDrop);
    registry.Arm("tap.drop", FaultSchedule::Bernoulli(0.1));
    for (u64 tick = 0; tick < 2000; ++tick) {
      p->Sample(tick);
    }
    return registry.LogDigest();
  };
  EXPECT_NE(digest(1), digest(2));
}

TEST(FaultRegistry, FiringsIndependentOfRegistrationOrder) {
  // The same point must fire at the same opportunities no matter what else
  // is registered around it or in which order.
  FaultRegistry forward(99);
  FaultPoint* fa = forward.Register("alpha", FaultClass::kLinkDrop);
  FaultPoint* fb = forward.Register("beta", FaultClass::kLinkDrop);
  FaultRegistry reversed(99);
  FaultPoint* rb = reversed.Register("beta", FaultClass::kLinkDrop);
  FaultPoint* ra = reversed.Register("alpha", FaultClass::kLinkDrop);
  for (FaultRegistry* r : {&forward, &reversed}) {
    r->Arm("*", FaultSchedule::Bernoulli(0.2));
  }
  for (u64 tick = 0; tick < 1000; ++tick) {
    fa->Sample(tick);
    fb->Sample(tick);
    rb->Sample(tick);  // interleaving differs too
    ra->Sample(tick);
  }
  EXPECT_EQ(FireTicks(forward, "alpha"), FireTicks(reversed, "alpha"));
  EXPECT_EQ(FireTicks(forward, "beta"), FireTicks(reversed, "beta"));
  EXPECT_GT(fa->fired(), 0u);
}

TEST(FaultRegistry, OneShotFiresExactlyOnceAtOrAfterTick) {
  FaultRegistry registry(5);
  FaultPoint* p = registry.Register("p", FaultClass::kFifoStall);
  registry.Arm("p", FaultSchedule::OneShot(100));
  EXPECT_FALSE(p->Sample(50));
  EXPECT_TRUE(p->Sample(150));  // first opportunity past the deadline
  EXPECT_FALSE(p->Sample(200));
  EXPECT_EQ(p->fired(), 1u);
  // Re-arming resets the latch.
  registry.Arm("p", FaultSchedule::OneShot(100));
  EXPECT_TRUE(p->Sample(300));
}

TEST(FaultRegistry, BurstFiresOnlyInsideWindow) {
  FaultRegistry registry(5);
  FaultPoint* p = registry.Register("p", FaultClass::kLinkDrop);
  registry.Arm("p", FaultSchedule::Burst(10, 20, 1.0));
  EXPECT_FALSE(p->Sample(9));
  EXPECT_TRUE(p->Sample(10));
  EXPECT_TRUE(p->Sample(19));
  EXPECT_FALSE(p->Sample(20));
}

TEST(FaultRegistry, ArmAppliesToFutureRegistrations) {
  FaultRegistry registry(5);
  EXPECT_EQ(registry.Arm("late.*", FaultSchedule::Bernoulli(1.0)), 0u);
  FaultPoint* p = registry.Register("late.drop", FaultClass::kLinkDrop);
  EXPECT_TRUE(p->armed());
  EXPECT_TRUE(p->Sample(0));
}

TEST(FaultRegistry, LaterPlanEntriesOverrideEarlier) {
  // Duplicate *patterns* are a parse error now, but two distinct patterns can
  // still both match one point; the later entry wins at arm time.
  FaultRegistry registry(5);
  FaultPoint* p = registry.Register("p", FaultClass::kLinkDrop);
  const auto plan = ParseFaultPlan("p bernoulli 1.0; p* oneshot 7");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  registry.ArmPlan(*plan);
  EXPECT_EQ(p->schedule().mode, FaultSchedule::Mode::kOneShot);
  EXPECT_EQ(p->schedule().at, 7u);
}

TEST(FaultRegistry, DisarmAllStopsFiringButKeepsLog) {
  FaultRegistry registry(5);
  FaultPoint* p = registry.Register("p", FaultClass::kLinkDrop);
  registry.Arm("p", FaultSchedule::Bernoulli(1.0));
  EXPECT_TRUE(p->Sample(0));
  registry.DisarmAll();
  EXPECT_FALSE(p->Sample(1));
  EXPECT_EQ(registry.fired_total(), 1u);
}

TEST(FaultRegistry, SeuTargetReceivesBitWithinBound) {
  FaultRegistry registry(11);
  std::vector<u64> flips;
  registry.RegisterSeuTarget("seu.t", 64, [&](u64 bit) { flips.push_back(bit); });
  registry.Arm("seu.t", FaultSchedule::Bernoulli(1.0));
  EXPECT_EQ(registry.Tick(0), 1u);
  ASSERT_EQ(flips.size(), 1u);
  EXPECT_LT(flips[0], 64u);
}

TEST(FaultRegistry, StallTargetReceivesMagnitude) {
  FaultRegistry registry(11);
  std::vector<u64> stalls;
  registry.RegisterStallTarget("q.stall", [&](u64 cycles) { stalls.push_back(cycles); });
  registry.Arm("q.stall", FaultSchedule::Bernoulli(1.0, 7));
  registry.Tick(0);
  ASSERT_EQ(stalls.size(), 1u);
  EXPECT_EQ(stalls[0], 7u);
}

TEST(FaultRegistry, DisarmedTargetsDrawNoRandomness) {
  FaultRegistry registry(11);
  FaultPoint* p =
      registry.RegisterSeuTarget("seu.t", 64, [](u64) { FAIL() << "must not fire"; });
  for (u64 tick = 0; tick < 1000; ++tick) {
    EXPECT_EQ(registry.Tick(tick), 0u);
  }
  // No opportunities consumed: arming later replays exactly as if the idle
  // period never happened (bench runs stay bit-identical).
  EXPECT_EQ(p->opportunities(), 0u);
  EXPECT_EQ(registry.fired_total(), 0u);
}

// --- FrameImpairer -----------------------------------------------------------------

TEST(FrameImpairer, DropPreemptsOtherImpairments) {
  FaultRegistry registry(3);
  FrameImpairer tap(registry, "tap");
  registry.Arm("tap.drop", FaultSchedule::Bernoulli(1.0));
  registry.Arm("tap.corrupt", FaultSchedule::Bernoulli(1.0));
  const auto d = tap.Decide(0, 64);
  EXPECT_TRUE(d.drop);
  EXPECT_EQ(d.corrupt_bit, FrameImpairer::kNoCorrupt);  // dropped frames stay whole
  EXPECT_EQ(tap.dropped(), 1u);
  EXPECT_EQ(tap.corrupted(), 0u);
}

TEST(FrameImpairer, CorruptNamesABitInsideTheFrame) {
  FaultRegistry registry(3);
  FrameImpairer tap(registry, "tap");
  registry.Arm("tap.corrupt", FaultSchedule::Bernoulli(1.0));
  for (u64 tick = 0; tick < 32; ++tick) {
    const auto d = tap.Decide(tick, 10);
    EXPECT_FALSE(d.drop);
    ASSERT_NE(d.corrupt_bit, FrameImpairer::kNoCorrupt);
    EXPECT_LT(d.corrupt_bit, 80u);
  }
  EXPECT_EQ(tap.corrupted(), 32u);
}

TEST(FrameImpairer, DelayBoundedByMagnitude) {
  FaultRegistry registry(3);
  FrameImpairer tap(registry, "tap");
  registry.Arm("tap.delay", FaultSchedule::Bernoulli(1.0, 40));
  for (u64 tick = 0; tick < 64; ++tick) {
    EXPECT_LE(tap.Decide(tick, 64).extra_delay_ps, 40u);
  }
  EXPECT_EQ(tap.delayed(), 64u);
}

TEST(FrameImpairer, FlipBitRoundTripsAndTruncateShortens) {
  Packet frame(8);
  frame.bytes()[1] = 0xA0;
  const std::vector<u8> before(frame.bytes().begin(), frame.bytes().end());
  FrameImpairer::FlipBit(frame, 13);  // byte 1, bit 5
  EXPECT_EQ(frame.bytes()[1], 0xA0 ^ (1u << 5));
  FrameImpairer::FlipBit(frame, 13);
  EXPECT_TRUE(std::equal(before.begin(), before.end(), frame.bytes().begin()));
  // Bit indices wrap modulo the frame size rather than over-reading.
  FrameImpairer::FlipBit(frame, 8 * 8 + 3);
  EXPECT_EQ(frame.bytes()[0], before[0] ^ (1u << 3));
  FrameImpairer::Truncate(frame, 5);
  EXPECT_EQ(frame.size(), 5u);
}

// --- Link impairment ---------------------------------------------------------------

TEST(LinkImpairment, DropsAndDuplicatesWithCounters) {
  EventScheduler scheduler;
  Link link(scheduler, 10'000'000'000ull, 5'000);
  std::vector<Packet> received;
  link.AttachB([&](Packet p) { received.push_back(std::move(p)); });

  FaultRegistry registry(21);
  link.EnableImpairment(registry, "wire");
  ASSERT_TRUE(link.impaired());

  registry.Arm("wire.drop", FaultSchedule::Bernoulli(1.0));
  link.SendToB(Packet(64));
  scheduler.Run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(link.dropped(), 1u);
  EXPECT_EQ(link.delivered(), 0u);

  registry.DisarmAll();
  registry.Arm("wire.dup", FaultSchedule::Bernoulli(1.0));
  link.SendToB(Packet(64));
  scheduler.Run();
  EXPECT_EQ(received.size(), 2u);  // original + duplicate
  EXPECT_EQ(link.duplicated(), 1u);
  EXPECT_EQ(link.delivered(), 2u);

  registry.DisarmAll();
  link.SendToB(Packet(64));
  scheduler.Run();
  EXPECT_EQ(received.size(), 3u);  // disarmed link delivers normally
  EXPECT_EQ(link.dropped(), 1u);
}

// --- Hardware-state faults ---------------------------------------------------------

TEST(SeuFault, RegBitFlipPersistsAcrossCommit) {
  Simulator sim;
  Reg<u32> reg(sim, 0);
  sim.Run(1);
  reg.InjectBitFlip(3);
  EXPECT_EQ(reg.Read(), 8u);
  sim.Run(1);  // a real upset survives the next clock edge
  EXPECT_EQ(reg.Read(), 8u);
  reg.InjectBitFlip(32 + 3);  // bit index wraps at the value width
  EXPECT_EQ(reg.Read(), 0u);
}

TEST(SeuFault, BramBitFlipTargetsOneWordBit) {
  Simulator sim;
  Bram bram(sim, "b", 8, 16);
  bram.Write(2, 0xABCD);
  sim.Run(1);
  bram.InjectBitFlip(2 * 16 + 0);  // word 2, bit 0
  EXPECT_EQ(bram.Read(2), 0xABCCu);
  bram.InjectBitFlip(2 * 16 + 0);
  EXPECT_EQ(bram.Read(2), 0xABCDu);
  EXPECT_EQ(bram.Read(3), 0u);  // neighbours untouched
}

TEST(SeuFault, CamValidBitFlipDropsAndResurrectsEntry) {
  Simulator sim;
  Cam cam(sim, "c", 4, 16, 8);
  cam.Write(0, 0x1234, 7);
  sim.Run(1);
  ASSERT_TRUE(cam.Lookup(0x1234).hit);
  cam.InjectBitFlip(0);  // slot 0, valid flag
  EXPECT_FALSE(cam.Lookup(0x1234).hit);
  cam.InjectBitFlip(0);
  EXPECT_TRUE(cam.Lookup(0x1234).hit);
  EXPECT_EQ(cam.state_bits(), 4u * 17u);
}

TEST(SeuFault, HashCamUpsetDegradesToMiss) {
  Simulator sim;
  HashCam cam(sim, "h", 4);
  cam.Write(0x42, 9);
  cam.Read(0x42);
  ASSERT_TRUE(cam.matched());
  // Some bit of the table holds this binding; flipping it must turn the hit
  // into a miss (degradation), never corrupt unrelated state or crash.
  bool missed = false;
  for (u64 bit = 0; bit < cam.state_bits() && !missed; ++bit) {
    cam.InjectBitFlip(bit);
    cam.Read(0x42);
    if (!cam.matched()) {
      missed = true;
    } else {
      cam.InjectBitFlip(bit);  // undo and keep scanning
    }
  }
  EXPECT_TRUE(missed);
}

TEST(FifoFault, StallFreezesBothPortsAndPreservesContents) {
  Simulator sim;
  SyncFifo<int> fifo(sim, "f", 4, 32);
  fifo.Push(1);
  fifo.Push(2);
  sim.Run(1);
  ASSERT_EQ(fifo.Size(), 2u);

  fifo.InjectStall(3);
  EXPECT_TRUE(fifo.Stalled());
  EXPECT_EQ(fifo.Size(), 0u);   // consumer sees empty
  EXPECT_FALSE(fifo.CanPush()); // producer sees full
  sim.Run(3);
  EXPECT_FALSE(fifo.Stalled());
  EXPECT_EQ(fifo.Size(), 2u);   // contents intact, in order
  EXPECT_EQ(fifo.Pop(), 1);
  EXPECT_EQ(fifo.Pop(), 2);
}

TEST(ChecksumFault, AttachedFoldPointReproducesTheSection55Bug) {
  Simulator sim;
  ChecksumUnit good(sim, "good");
  ChecksumUnit buggy(sim, "buggy");
  ChecksumUnit faulted(sim, "faulted");
  buggy.InjectFoldBug(true);
  FaultRegistry registry(7);
  faulted.AttachFault(registry, "csum");

  const u8 data[] = {0xFF, 0xFF, 0xFF, 0xFF};  // forces a carry fold
  for (ChecksumUnit* unit : {&good, &buggy, &faulted}) {
    unit->AddBytes(data);
  }
  EXPECT_EQ(faulted.Result(), good.Result());  // disarmed: bit-identical
  ASSERT_NE(buggy.Result(), good.Result());

  registry.Arm("csum.fold", FaultSchedule::OneShot(0));
  EXPECT_EQ(faulted.Result(), buggy.Result());  // armed: the §5.5 bug
  EXPECT_EQ(registry.fired_total(), 1u);
  EXPECT_EQ(faulted.Result(), good.Result());  // one-shot: healed afterwards
}

// --- NAT hardening under table pressure --------------------------------------------

class NatFaultTest : public ::testing::Test {
 protected:
  static constexpr u8 kInternalPort = 1;

  Packet OutboundUdp(const NatConfig& config, u16 sport) {
    return MakeUdpPacket({config.internal_mac, MacAddress::FromU48(0x02'00'00'00'11'10),
                          Ipv4Address(192, 168, 1, 10), Ipv4Address(8, 8, 8, 8), sport, 53},
                         std::vector<u8>{'x'});
  }
};

TEST_F(NatFaultTest, FullTableRejectsNewFlowsAndKeepsOldOnes) {
  NatConfig config;
  config.max_mappings = 2;
  config.exhaustion_evict_idle_cycles = 0;  // pure reject
  NatService service(config);
  FpgaTarget target(service);

  ASSERT_TRUE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 5000)).ok());
  ASSERT_TRUE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 5001)).ok());
  // Table full, every flow recently active: the third flow is rejected...
  EXPECT_FALSE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 5002), 300'000).ok());
  EXPECT_EQ(service.exhaustion_rejects(), 1u);
  EXPECT_EQ(service.active_mappings(), 2u);
  // ...and the existing translations still work, uncorrupted.
  target.TakeEgress();
  auto again = target.SendAndCollect(kInternalPort, OutboundUdp(config, 5000));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(service.active_mappings(), 2u);
  EXPECT_EQ(service.exhaustion_evictions(), 0u);
}

TEST_F(NatFaultTest, ExhaustionEvictsIdleFlowsFirst) {
  NatConfig config;
  config.max_mappings = 2;
  config.exhaustion_evict_idle_cycles = 1000;
  NatService service(config);
  FpgaTarget target(service);

  ASSERT_TRUE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 5000)).ok());
  ASSERT_TRUE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 5001)).ok());
  target.Run(2000);  // both flows go idle past the eviction threshold
  // Refresh flow 5001 so 5000 is the LRU victim.
  ASSERT_TRUE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 5001)).ok());

  ASSERT_TRUE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 5002)).ok());
  EXPECT_EQ(service.exhaustion_evictions(), 1u);
  EXPECT_EQ(service.active_mappings(), 2u);

  // The refreshed flow survived; the new flow plus 5001 are both active, so
  // another new flow finds no idle victim and is rejected, not installed over
  // a live translation.
  EXPECT_FALSE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 5003), 300'000).ok());
  EXPECT_EQ(service.exhaustion_rejects(), 1u);
  ASSERT_TRUE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 5001)).ok());
}

TEST_F(NatFaultTest, ExpiredMappingIsNotUsedMidPacket) {
  NatConfig config;
  config.mapping_timeout_cycles = 1000;
  NatService service(config);
  FpgaTarget target(service);

  auto out = target.SendAndCollect(kInternalPort, OutboundUdp(config, 5000));
  ASSERT_TRUE(out.ok());
  Ipv4View ip(*out);
  UdpView udp(*out, ip.payload_offset());
  const u16 ext_port = udp.source_port();
  target.TakeEgress();

  target.Run(5000);  // mapping expires
  Packet reply = MakeUdpPacket({config.external_mac, MacAddress::FromU48(0x02'00'00'00'99'99),
                                Ipv4Address(8, 8, 8, 8), config.external_ip, 53, ext_port},
                               std::vector<u8>{'r'});
  target.Inject(0, std::move(reply));
  target.Run(300'000);
  // The stale translation is reclaimed, never half-applied: the reply is
  // dropped and no inbound rewrite happens.
  EXPECT_EQ(service.translated_in(), 0u);
  EXPECT_GE(service.dropped(), 1u);
  // The flow can re-establish afterwards.
  EXPECT_TRUE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 5000)).ok());
}

TEST_F(NatFaultTest, TableFullFaultPointForcesRejectionWithoutRealPressure) {
  NatConfig config;
  NatService service(config);
  FpgaTarget target(service);
  FaultRegistry registry(13);
  service.RegisterFaultPoints(registry);

  ASSERT_TRUE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 5000)).ok());
  registry.Arm("nat.table_full", FaultSchedule::Bernoulli(1.0));
  target.TakeEgress();
  // New flows are rejected as if the table were full...
  EXPECT_FALSE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 6000), 300'000).ok());
  EXPECT_GE(service.exhaustion_rejects(), 1u);
  EXPECT_GE(registry.fired_total(), 1u);
  // ...but established flows use the fast path and keep translating.
  EXPECT_TRUE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 5000)).ok());
  registry.DisarmAll();
  EXPECT_TRUE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 6000)).ok());
}

TEST_F(NatFaultTest, FlowTableSeuDegradesWithoutCrashing) {
  NatConfig config;
  NatService service(config);
  FpgaTarget target(service);
  FaultRegistry registry(17);
  service.RegisterFaultPoints(registry);

  ASSERT_TRUE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 5000)).ok());
  registry.Arm("nat.flows", FaultSchedule::Bernoulli(1.0));
  for (u64 tick = 0; tick < 64; ++tick) {
    registry.Tick(tick);  // pepper the flow table with upsets
  }
  registry.DisarmAll();
  EXPECT_GE(registry.fired_total(), 64u);
  // Traffic after the upsets must still be handled — translated or cleanly
  // dropped — and new flows must be installable.
  target.TakeEgress();
  (void)target.SendAndCollect(kInternalPort, OutboundUdp(config, 5000), 300'000);
  EXPECT_TRUE(target.SendAndCollect(kInternalPort, OutboundUdp(config, 7000)).ok());
}

// --- Loadgen loss accounting (satellite: impairment-aware rate search) -------------

TEST(LoadgenFault, AccountedDropsDoNotCountAsLoss) {
  // A 1-mapping NAT with pure-reject exhaustion turns all but the first flow
  // into counted service drops: raw loss is huge, unexplained loss is zero.
  NatConfig config;
  config.max_mappings = 1;
  config.exhaustion_evict_idle_cycles = 0;
  NatService service(config);
  FpgaTarget target(service);

  FrameFactory factory = [&config](usize i, u8) {
    return MakeUdpPacket({config.internal_mac, MacAddress::FromU48(0x02'00'00'00'11'10),
                          Ipv4Address(192, 168, 1, 10), Ipv4Address(8, 8, 8, 8),
                          static_cast<u16>(5000 + i), 53},
                         std::vector<u8>{'x'});
  };
  OsntLoadgen::FixedRateConfig rate;
  rate.offered_mqps = 0.5;
  rate.frames = 50;
  rate.ports = {1};
  rate.accounted_drops = [&service] { return service.dropped(); };
  const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, rate);

  EXPECT_EQ(report.injected, 50u);
  EXPECT_GT(report.raw_loss_rate, 0.9);  // 49 of 50 flows rejected
  EXPECT_EQ(report.accounted_drops, 49u);
  EXPECT_DOUBLE_EQ(report.loss_rate, 0.0);  // nothing unexplained
  EXPECT_EQ(report.latency.lost(), 49u);
}

TEST(LoadgenFault, WithoutAccountingLossRateIsRaw) {
  NatConfig config;
  config.max_mappings = 1;
  config.exhaustion_evict_idle_cycles = 0;
  NatService service(config);
  FpgaTarget target(service);
  FrameFactory factory = [&config](usize i, u8) {
    return MakeUdpPacket({config.internal_mac, MacAddress::FromU48(0x02'00'00'00'11'10),
                          Ipv4Address(192, 168, 1, 10), Ipv4Address(8, 8, 8, 8),
                          static_cast<u16>(5000 + i), 53},
                         std::vector<u8>{'x'});
  };
  OsntLoadgen::FixedRateConfig rate;
  rate.offered_mqps = 0.5;
  rate.frames = 50;
  rate.ports = {1};
  const LoadgenReport report = OsntLoadgen::RunFixedRate(target, factory, rate);
  EXPECT_DOUBLE_EQ(report.loss_rate, report.raw_loss_rate);
  EXPECT_GT(report.loss_rate, 0.9);
}

// --- CASP observability ------------------------------------------------------------

TEST(ControllerFault, BindsSeedAndFiredCounters) {
  DirectionController controller;
  FaultRegistry registry(42);
  controller.AttachFaultRegistry(&registry);
  EXPECT_EQ(controller.HandleCommandText("print fault_seed"), "fault_seed=42");
  EXPECT_EQ(controller.HandleCommandText("print faults_fired"), "faults_fired=0");

  FaultPoint* p = registry.Register("p", FaultClass::kLinkDrop);
  registry.Arm("p", FaultSchedule::Bernoulli(1.0));
  p->Sample(0);
  EXPECT_EQ(controller.HandleCommandText("print faults_fired"), "faults_fired=1");
}

// --- emu-check integration: faults surface as hazards ------------------------------

#ifdef EMU_ANALYSIS

TEST(FaultHazard, BlindPushIntoStalledFifoIsLostBackpressure) {
  Simulator sim;
  HazardMonitor monitor(sim);
  SyncFifo<int> fifo(sim, "vuln", 4, 32);
  fifo.InjectStall(5);
  EXPECT_FALSE(fifo.Push(1));  // dropped, CanPush never consulted
  EXPECT_EQ(monitor.CountOf(HazardKind::kLostBackpressure), 1u);
}

TEST(FaultHazard, CanPushHonouringProducerRidesOutStallCleanly) {
  Simulator sim;
  HazardMonitor monitor(sim);
  SyncFifo<int> fifo(sim, "polite", 4, 32);
  fifo.InjectStall(5);
  if (fifo.CanPush()) {
    fifo.Push(1);
  }
  sim.Run(6);
  ASSERT_TRUE(fifo.CanPush());  // stall over
  fifo.Push(2);
  sim.Run(1);
  EXPECT_FALSE(monitor.HasFindings()) << monitor.Summary();
  EXPECT_EQ(fifo.Size(), 1u);
}

TEST(FaultHazard, SeuOnUnwrittenRegSurfacesAsUninitRead) {
  Simulator sim;
  HazardMonitor monitor(sim);
  Reg<u32> reg(sim, "cfg", no_init);
  reg.InjectBitFlip(2);  // the upset does not count as a design write
  (void)reg.Read();
  EXPECT_EQ(monitor.CountOf(HazardKind::kUninitRead), 1u);
}

#endif  // EMU_ANALYSIS

// --- Topology-scoped events (emu-gossip): grammar and diagnostics -------------

TEST(TopoFaultPlan, ParsesCrashRestartPartition) {
  const auto plan = ParseFaultPlan(
      "# node-level chaos\n"
      "crash host=h2 at=20ms; restart host=h2 at=120ms\n"
      "partition {h0,h1}|{h3,h4} from=40ms to=70ms oneway\n"
      "ingress.drop bernoulli 0.01\n");  // point entries still coexist
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->topo_events.size(), 3u);
  ASSERT_EQ(plan->entries.size(), 1u);

  const TopoFault& crash = plan->topo_events[0];
  EXPECT_EQ(crash.kind, TopoFault::Kind::kCrash);
  EXPECT_EQ(crash.host, "h2");
  EXPECT_EQ(crash.at, 20ull * kPicosPerMilli);
  EXPECT_EQ(crash.line, 2u);
  EXPECT_EQ(crash.cls(), FaultClass::kHostCrash);

  const TopoFault& restart = plan->topo_events[1];
  EXPECT_EQ(restart.kind, TopoFault::Kind::kRestart);
  EXPECT_EQ(restart.at, 120ull * kPicosPerMilli);
  EXPECT_EQ(restart.cls(), FaultClass::kHostRestart);

  const TopoFault& part = plan->topo_events[2];
  EXPECT_EQ(part.kind, TopoFault::Kind::kPartition);
  EXPECT_EQ(part.group_a, (std::vector<std::string>{"h0", "h1"}));
  EXPECT_EQ(part.group_b, (std::vector<std::string>{"h3", "h4"}));
  EXPECT_EQ(part.from, 40ull * kPicosPerMilli);
  EXPECT_EQ(part.until, 70ull * kPicosPerMilli);
  EXPECT_TRUE(part.oneway);
  EXPECT_EQ(part.line, 3u);
  EXPECT_EQ(part.cls(), FaultClass::kPartition);
}

TEST(TopoFaultPlan, TimeSuffixesNormalizeToPicoseconds) {
  const auto plan = ParseFaultPlan(
      "crash host=a at=1500\n"         // bare ps
      "crash host=b at=2ns\n"
      "crash host=c at=3us\n"
      "crash host=d at=4ms\n"
      "crash host=e at=1s\n");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->topo_events.size(), 5u);
  EXPECT_EQ(plan->topo_events[0].at, 1500u);
  EXPECT_EQ(plan->topo_events[1].at, 2'000u);
  EXPECT_EQ(plan->topo_events[2].at, 3'000'000u);
  EXPECT_EQ(plan->topo_events[3].at, 4ull * kPicosPerMilli);
  EXPECT_EQ(plan->topo_events[4].at, 1'000'000'000'000ull);
}

TEST(TopoFaultPlan, ToStringRoundTrips) {
  const std::string text =
      "crash host=h1 at=5000000; partition {h0}|{h1,h2} from=1000 to=2000 oneway";
  const auto plan = ParseFaultPlan(text);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string rendered;
  for (const TopoFault& event : plan->topo_events) {
    rendered += (rendered.empty() ? "" : "; ") + event.ToString();
  }
  const auto reparsed = ParseFaultPlan(rendered);
  ASSERT_TRUE(reparsed.ok()) << rendered << " -> " << reparsed.status().ToString();
  ASSERT_EQ(reparsed->topo_events.size(), plan->topo_events.size());
  for (usize i = 0; i < plan->topo_events.size(); ++i) {
    EXPECT_EQ(reparsed->topo_events[i].ToString(), plan->topo_events[i].ToString());
  }
}

TEST(TopoFaultPlan, DiagnosticsNameTheDefectAndLine) {
  const auto expect_error = [](const std::string& text, const std::string& needle) {
    const auto plan = ParseFaultPlan(text);
    ASSERT_FALSE(plan.ok()) << text;
    EXPECT_NE(plan.status().ToString().find(needle), std::string::npos)
        << text << " -> " << plan.status().ToString();
  };
  expect_error("crash host=h1 at=5xs", "bad time operand '5xs' (ps, or ns/us/ms/s suffix)");
  expect_error("crash host=h1 when=5ms", "unknown operand 'when=5ms' (expected host=<h> at=<t>)");
  expect_error("crash host=h1", "crash needs 'host=<h> at=<t>'");
  expect_error("restart at=5ms", "restart needs 'host=<h> at=<t>'");
  expect_error("crash host=h1 at=5ms; crash host=h1 at=5ms",
               "duplicate crash of host 'h1' at the same tick");
  expect_error("partition {h0}|{} from=1ms to=2ms",
               "bad partition groups '{h0}|{}' (expected {a,b}|{c,d}, both sides non-empty)");
  expect_error("partition {h0}|{h1} from=1ms", "partition needs '{A}|{B} from=<t> to=<t>'");
  expect_error("partition {h0}|{h1} from=2ms to=1ms", "partition window needs from < to");
  expect_error("partition {h0,h1}|{h1,h2} from=1ms to=2ms",
               "host 'h1' appears on both sides of the partition");
  expect_error("partition {h0}|{h1} from=1ms to=2ms twoway",
               "unknown operand 'twoway' (expected {A}|{B} from=<t> to=<t> [oneway])");
  // Diagnostics carry the physical line number (line 2 here).
  const auto plan = ParseFaultPlan("crash host=h1 at=1ms\ncrash host=h2 at=bad\n");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().ToString().find("fault plan line 2"), std::string::npos)
      << plan.status().ToString();
}

TEST(TopoFaultPlan, SameHostDifferentTickOrKindIsNotDuplicate) {
  EXPECT_TRUE(ParseFaultPlan("crash host=h1 at=5ms; crash host=h1 at=6ms").ok());
  EXPECT_TRUE(ParseFaultPlan("crash host=h1 at=5ms; restart host=h1 at=5ms").ok());
}

}  // namespace
}  // namespace emu
