// The Speck cipher IP block and the encrypting tunnel service (the §4
// "bespoke encryption" use case).
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/targets.h"
#include "src/ip/speck_cipher.h"
#include "src/net/udp.h"
#include "src/services/crypto_tunnel_service.h"

namespace emu {
namespace {

const MacAddress kMacA = MacAddress::FromU48(0x02'00'00'00'00'0a);
const MacAddress kMacB = MacAddress::FromU48(0x02'00'00'00'00'0b);
const Ipv4Address kIpA(10, 0, 0, 1);
const Ipv4Address kIpB(10, 0, 0, 2);

// --- SpeckCipher -------------------------------------------------------------------

TEST(Speck, OfficialTestVector) {
  // Speck64/128 reference vector (Speck paper appendix): key 1b1a1918
  // 13121110 0b0a0908 03020100, plaintext (x=3b726574, y=7475432d) ->
  // ciphertext (8c6fa548, 454e028b).
  Simulator sim;
  SpeckCipher cipher(sim, "speck",
                     SpeckCipher::Key{0x03020100, 0x0b0a0908, 0x13121110, 0x1b1a1918});
  u32 x = 0x3b726574;
  u32 y = 0x7475432d;
  cipher.EncryptBlock(x, y);
  EXPECT_EQ(x, 0x8c6fa548u);
  EXPECT_EQ(y, 0x454e028bu);
}

TEST(Speck, CtrIsAnInvolution) {
  Simulator sim;
  SpeckCipher cipher(sim, "speck", SpeckCipher::Key{1, 2, 3, 4});
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    std::vector<u8> data(1 + rng.NextBelow(100), 0);
    for (auto& b : data) {
      b = static_cast<u8>(rng.NextU64());
    }
    const std::vector<u8> original = data;
    const u64 nonce = rng.NextU64();
    cipher.CtrCrypt(nonce, data);
    EXPECT_NE(data, original);  // actually encrypted
    cipher.CtrCrypt(nonce, data);
    EXPECT_EQ(data, original);  // and restored
  }
}

TEST(Speck, DifferentNoncesGiveDifferentKeystreams) {
  Simulator sim;
  SpeckCipher cipher(sim, "speck", SpeckCipher::Key{1, 2, 3, 4});
  std::vector<u8> a(32, 0);
  std::vector<u8> b(32, 0);
  cipher.CtrCrypt(100, a);
  cipher.CtrCrypt(101, b);
  EXPECT_NE(a, b);
}

TEST(Speck, DifferentKeysGiveDifferentCiphertext) {
  Simulator sim;
  SpeckCipher k1(sim, "k1", SpeckCipher::Key{1, 2, 3, 4});
  SpeckCipher k2(sim, "k2", SpeckCipher::Key{5, 6, 7, 8});
  std::vector<u8> a(16, 0x42);
  std::vector<u8> b(16, 0x42);
  k1.CtrCrypt(9, a);
  k2.CtrCrypt(9, b);
  EXPECT_NE(a, b);
}

TEST(Speck, PipelineCostModel) {
  Simulator sim;
  SpeckCipher cipher(sim, "speck", SpeckCipher::Key{1, 2, 3, 4});
  EXPECT_EQ(cipher.CyclesForBytes(8), 1u + kSpeckRounds);
  EXPECT_EQ(cipher.CyclesForBytes(64), 8u + kSpeckRounds);
}

// --- CryptoTunnelService ---------------------------------------------------------------

Packet PlainDatagram(const std::string& message, u16 sport = 4000, u16 dport = 7) {
  return MakeUdpPacket({kMacB, kMacA, kIpA, kIpB, sport, dport},
                       std::vector<u8>(message.begin(), message.end()));
}

std::string PayloadOf(const Packet& frame) {
  Packet copy = frame;
  Ipv4View ip(copy);
  UdpView udp(copy, ip.payload_offset());
  const auto payload = udp.Payload();
  return std::string(payload.begin(), payload.end());
}

class CryptoTunnelTest : public ::testing::Test {
 protected:
  CryptoTunnelConfig config_;
  CryptoTunnelService service_{config_};
  FpgaTarget target_{service_};
};

TEST_F(CryptoTunnelTest, EncryptsOnTheWayOut) {
  const std::string message = "attack at dawn!!";
  auto out = target_.SendAndCollect(config_.plain_port, PlainDatagram(message));
  ASSERT_TRUE(out.ok());
  // Leaves the cipher port with a different (nonce-prefixed) payload but
  // valid checksums.
  Packet frame = *out;
  Ipv4View ip(frame);
  UdpView udp(frame, ip.payload_offset());
  EXPECT_TRUE(ip.ChecksumValid());
  EXPECT_TRUE(udp.ChecksumValid(ip));
  const std::string cipher_payload = PayloadOf(*out);
  EXPECT_EQ(cipher_payload.size(), message.size() + 8);  // + nonce header
  EXPECT_EQ(cipher_payload.find(message), std::string::npos);
  EXPECT_EQ(service_.encrypted(), 1u);
}

TEST_F(CryptoTunnelTest, RoundTripThroughTwoTunnels) {
  // Tunnel A encrypts; an identically keyed tunnel B decrypts — an
  // encrypted link between two FPGAs.
  CryptoTunnelService peer{config_};
  FpgaTarget peer_target{peer};

  const std::string message = "the quick brown fox jumps over 13 lazy dogs";
  auto encrypted = target_.SendAndCollect(config_.plain_port, PlainDatagram(message));
  ASSERT_TRUE(encrypted.ok());

  auto decrypted = peer_target.SendAndCollect(config_.cipher_port, *encrypted);
  ASSERT_TRUE(decrypted.ok());
  EXPECT_EQ(PayloadOf(*decrypted), message);
  Packet frame = *decrypted;
  Ipv4View ip(frame);
  UdpView udp(frame, ip.payload_offset());
  EXPECT_TRUE(udp.ChecksumValid(ip));
  EXPECT_EQ(peer.decrypted(), 1u);
}

TEST_F(CryptoTunnelTest, WrongKeyYieldsGarbage) {
  CryptoTunnelConfig wrong = config_;
  wrong.key = SpeckCipher::Key{0xdead, 0xbeef, 0xcafe, 0xf00d};
  CryptoTunnelService peer{wrong};
  FpgaTarget peer_target{peer};

  const std::string message = "secret payload 123";
  auto encrypted = target_.SendAndCollect(config_.plain_port, PlainDatagram(message));
  ASSERT_TRUE(encrypted.ok());
  auto decrypted = peer_target.SendAndCollect(config_.cipher_port, *encrypted);
  ASSERT_TRUE(decrypted.ok());
  EXPECT_NE(PayloadOf(*decrypted), message);  // decryption under wrong key
}

TEST_F(CryptoTunnelTest, DistinctNoncesPerPacket) {
  // The same plaintext twice must not produce the same ciphertext.
  const std::string message = "identical plaintext";
  auto first = target_.SendAndCollect(config_.plain_port, PlainDatagram(message));
  auto second = target_.SendAndCollect(config_.plain_port, PlainDatagram(message));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(PayloadOf(*first), PayloadOf(*second));
}

TEST_F(CryptoTunnelTest, NonUdpTrafficDropped) {
  Packet arp = MakeEthernetFrame(kMacB, kMacA, EtherType::kArp, std::vector<u8>(46, 0));
  target_.Inject(config_.plain_port, std::move(arp));
  target_.Run(100'000);
  EXPECT_TRUE(target_.egress().empty());
  EXPECT_EQ(service_.dropped(), 1u);
}

TEST_F(CryptoTunnelTest, TruncatedCipherFrameDropped) {
  // A cipher-side datagram shorter than the nonce header cannot decrypt.
  Packet bogus = MakeUdpPacket({kMacB, kMacA, kIpB, kIpA, 7, 4000}, std::vector<u8>{1, 2});
  target_.Inject(config_.cipher_port, std::move(bogus));
  target_.Run(100'000);
  EXPECT_TRUE(target_.egress().empty());
  EXPECT_EQ(service_.dropped(), 1u);
}

TEST_F(CryptoTunnelTest, EmptyPayloadRoundTrips) {
  CryptoTunnelService peer{config_};
  FpgaTarget peer_target{peer};
  auto encrypted = target_.SendAndCollect(config_.plain_port, PlainDatagram(""));
  ASSERT_TRUE(encrypted.ok());
  auto decrypted = peer_target.SendAndCollect(config_.cipher_port, *encrypted);
  ASSERT_TRUE(decrypted.ok());
  EXPECT_EQ(PayloadOf(*decrypted), "");
}

}  // namespace
}  // namespace emu
