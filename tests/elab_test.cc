// Static elaboration suite (emu-lint).
//
// Every check in the static pass gets a deliberately-broken micro-design and
// a minimally-different clean twin, so each finding is pinned to the exact
// property it claims to detect. The schedule-inference half is proven the
// only way that matters: adopt the inferred order on real designs (switch,
// NAT, memcached) and require bit-exact agreement with registration-order
// stepping.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/elab/elab_graph.h"
#include "src/analysis/elab/elaboration.h"
#include "src/analysis/finding.h"
#include "src/core/metrics.h"
#include "src/core/targets.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fault_registry.h"
#include "src/hdl/fifo.h"
#include "src/hdl/process.h"
#include "src/hdl/signal.h"
#include "src/hdl/simulator.h"
#include "src/net/udp.h"
#include "src/services/learning_switch.h"
#include "src/services/memcached_service.h"
#include "src/services/nat_service.h"
#include "src/sim/memaslap.h"
#include "src/sim/parallel_runner.h"

namespace emu {
namespace {

// The static pass never resumes a process; an idle body keeps the designs
// honest (every declaration belongs to a real registered process).
HwProcess Idle() {
  for (;;) {
    co_await Pause();
  }
}

usize CountCheck(const std::vector<Finding>& findings, const char* check) {
  usize count = 0;
  for (const Finding& f : findings) {
    count += f.check == check;
  }
  return count;
}

// --- Catalog: construction-time registration ---------------------------------

TEST(ElabCatalog, ElementsSelfRegister) {
  Simulator sim;
  Reg<int> reg(sim, "my_reg", 0);
  Wire<int> wire(sim, "my_wire", 0);
  SyncFifo<int> fifo(sim, "my_fifo", 8, 32);

  const auto graph = elab::ElabGraph::FromSimulator(sim, "catalog");
  ASSERT_EQ(graph.nodes().size(), 3u);
  EXPECT_EQ(graph.nodes()[0].kind, elab::NodeKind::kReg);
  EXPECT_EQ(graph.nodes()[0].name, "my_reg");
  EXPECT_EQ(graph.nodes()[1].kind, elab::NodeKind::kWire);
  EXPECT_EQ(graph.nodes()[2].kind, elab::NodeKind::kFifo);
  EXPECT_EQ(graph.nodes()[2].depth, 8u);
  EXPECT_FALSE(graph.nodes()[2].external);
}

TEST(ElabCatalog, DeclarationsResolveToNodes) {
  Simulator sim;
  Wire<int> wire(sim, "w", 0);
  SyncFifo<int> fifo(sim, "f", 4, 32);
  const usize p = sim.AddProcess(Idle(), "worker");
  elab::IoDecl(sim.catalog(), p).Reads(&wire).Pushes(&fifo);

  const auto graph = elab::ElabGraph::FromSimulator(sim, "decl");
  ASSERT_EQ(graph.processes().size(), 1u);
  EXPECT_TRUE(graph.processes()[0].declared);
  EXPECT_TRUE(graph.fully_declared());
  ASSERT_EQ(graph.processes()[0].reads.size(), 1u);
  EXPECT_EQ(graph.nodes()[graph.processes()[0].reads[0]].name, "w");
  ASSERT_EQ(graph.processes()[0].pushes.size(), 1u);
  EXPECT_EQ(graph.nodes()[graph.processes()[0].pushes[0]].name, "f");
}

TEST(ElabCatalog, UndeclaredReferenceCreatesImplicitNode) {
  Simulator sim;
  const usize p = sim.AddProcess(Idle(), "worker");
  elab::IoDecl(sim.catalog(), p).Reads(std::string("phantom"));

  const auto graph = elab::ElabGraph::FromSimulator(sim, "implicit");
  ASSERT_EQ(graph.nodes().size(), 1u);
  EXPECT_TRUE(graph.nodes()[0].implicit);
  EXPECT_EQ(graph.nodes()[0].name, "phantom");
}

// --- COMBLOOP: static Tarjan over declared wire dataflow ---------------------

TEST(ElabCheck, CombLoopDetected) {
  Simulator sim;
  Wire<int> a(sim, "wire_a", 0);
  Wire<int> b(sim, "wire_b", 0);
  const usize p0 = sim.AddProcess(Idle(), "a_to_b");
  const usize p1 = sim.AddProcess(Idle(), "b_to_a");
  elab::IoDecl(sim.catalog(), p0).Reads(&a).Writes(&b);
  elab::IoDecl(sim.catalog(), p1).Reads(&b).Writes(&a);

  std::vector<Finding> findings;
  elab::ElabGraph::FromSimulator(sim, "loop").CheckCombLoops(findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "COMBLOOP");
  EXPECT_NE(findings[0].message.find("wire_a"), std::string::npos);
  EXPECT_NE(findings[0].message.find("wire_b"), std::string::npos);
}

// Satellite: a process reading its own written wire is a blocking
// assignment, not a cycle — the self-edge must not be reported.
TEST(ElabCheck, SelfLoopIsNotACombLoop) {
  Simulator sim;
  Wire<int> w(sim, "self_wire", 0);
  const usize p = sim.AddProcess(Idle(), "self");
  elab::IoDecl(sim.catalog(), p).Reads(&w).Writes(&w);

  std::vector<Finding> findings;
  const auto graph = elab::ElabGraph::FromSimulator(sim, "self");
  graph.CheckCombLoops(findings);
  EXPECT_TRUE(findings.empty());
  EXPECT_TRUE(graph.StaticSchedule().ok);
}

// Satellite: two independent cycles are two findings, not one merged blob.
TEST(ElabCheck, DisjointCyclesReportSeparately) {
  Simulator sim;
  Wire<int> a(sim, "ring1_a", 0), b(sim, "ring1_b", 0);
  Wire<int> c(sim, "ring2_c", 0), d(sim, "ring2_d", 0);
  const usize p0 = sim.AddProcess(Idle(), "r1_fwd");
  const usize p1 = sim.AddProcess(Idle(), "r1_back");
  const usize p2 = sim.AddProcess(Idle(), "r2_fwd");
  const usize p3 = sim.AddProcess(Idle(), "r2_back");
  elab::IoDecl(sim.catalog(), p0).Reads(&a).Writes(&b);
  elab::IoDecl(sim.catalog(), p1).Reads(&b).Writes(&a);
  elab::IoDecl(sim.catalog(), p2).Reads(&c).Writes(&d);
  elab::IoDecl(sim.catalog(), p3).Reads(&d).Writes(&c);

  std::vector<Finding> findings;
  elab::ElabGraph::FromSimulator(sim, "rings").CheckCombLoops(findings);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].subject, findings[1].subject);
  EXPECT_NE(findings[0].message.find("ring1"), std::string::npos);
  EXPECT_NE(findings[1].message.find("ring2"), std::string::npos);
}

// Satellite: a cycle broken by a register is the canonical *correct* feedback
// shape (accumulators, FSMs) — Reg edges are clocked, not combinational.
TEST(ElabCheck, RegisterBreaksCombLoop) {
  Simulator sim;
  Wire<int> w(sim, "forward_wire", 0);
  Reg<int> r(sim, "state_reg", 0);
  const usize p0 = sim.AddProcess(Idle(), "producer");
  const usize p1 = sim.AddProcess(Idle(), "consumer");
  elab::IoDecl(sim.catalog(), p0).Reads(&r).Writes(&w);  // feedback via reg
  elab::IoDecl(sim.catalog(), p1).Reads(&w).Writes(&r);

  std::vector<Finding> findings;
  const auto graph = elab::ElabGraph::FromSimulator(sim, "feedback");
  graph.CheckCombLoops(findings);
  EXPECT_TRUE(findings.empty());
  EXPECT_TRUE(graph.StaticSchedule().ok);
}

// --- MULTIDRIVEN / COMBRACE: declared-edge checks -----------------------------

TEST(ElabCheck, MultiDrivenRegister) {
  Simulator sim;
  Reg<int> shared(sim, "shared_reg", 0);
  const usize p0 = sim.AddProcess(Idle(), "driver_a");
  const usize p1 = sim.AddProcess(Idle(), "driver_b");
  elab::IoDecl(sim.catalog(), p0).Writes(&shared);
  elab::IoDecl(sim.catalog(), p1).Writes(&shared);

  std::vector<Finding> findings;
  elab::ElabGraph::FromSimulator(sim, "md").CheckMultiDriven(findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "MULTIDRIVEN");
  EXPECT_EQ(findings[0].subject, "shared_reg");
}

TEST(ElabCheck, CombRaceWhenReaderRegisteredFirst) {
  Simulator sim;
  Wire<int> w(sim, "raced_wire", 0);
  const usize reader = sim.AddProcess(Idle(), "early_reader");
  const usize writer = sim.AddProcess(Idle(), "late_writer");
  elab::IoDecl(sim.catalog(), reader).Reads(&w);
  elab::IoDecl(sim.catalog(), writer).Writes(&w);

  std::vector<Finding> findings;
  elab::ElabGraph::FromSimulator(sim, "race").CheckCombRaces(findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "COMBRACE");
  EXPECT_EQ(findings[0].subject, "raced_wire");

  // Writer-before-reader is the valid order: no finding.
  Simulator clean;
  Wire<int> cw(clean, "ordered_wire", 0);
  const usize w2 = clean.AddProcess(Idle(), "writer");
  const usize r2 = clean.AddProcess(Idle(), "reader");
  elab::IoDecl(clean.catalog(), w2).Writes(&cw);
  elab::IoDecl(clean.catalog(), r2).Reads(&cw);
  std::vector<Finding> none;
  elab::ElabGraph::FromSimulator(clean, "ordered").CheckCombRaces(none);
  EXPECT_TRUE(none.empty());
}

// --- DEADSIGNAL / DEADPROCESS / FIFODEADLOCK: completeness checks -------------

TEST(ElabCheck, DeadSignalOnFullyDeclaredDesign) {
  Simulator sim;
  SyncFifo<int> orphan(sim, "orphan_fifo", 4, 32);
  SyncFifo<int> live(sim, "live_fifo", 4, 32);
  const usize p0 = sim.AddProcess(Idle(), "producer");
  const usize p1 = sim.AddProcess(Idle(), "consumer");
  elab::IoDecl(sim.catalog(), p0).Pushes(&orphan).Pushes(&live);
  elab::IoDecl(sim.catalog(), p1).Pops(&live);

  std::vector<Finding> findings;
  elab::ElabGraph::FromSimulator(sim, "dead").CheckDeadSignals(findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "DEADSIGNAL");
  EXPECT_EQ(findings[0].subject, "orphan_fifo");
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
}

TEST(ElabCheck, DeadSignalGatedOnPartialDeclaration) {
  Simulator sim;
  SyncFifo<int> orphan(sim, "orphan_fifo", 4, 32);
  const usize p0 = sim.AddProcess(Idle(), "declared");
  sim.AddProcess(Idle(), "mystery");  // undeclared: could touch anything
  elab::IoDecl(sim.catalog(), p0).Pushes(&orphan);

  std::vector<Finding> findings;
  elab::ElabGraph::FromSimulator(sim, "gated").CheckDeadSignals(findings);
  EXPECT_TRUE(findings.empty());
}

TEST(ElabCheck, ExternalMarkSilencesDeadSignal) {
  Simulator sim;
  SyncFifo<int> rx(sim, "host_rx", 4, 32);
  sim.catalog().MarkExternal(&rx);  // testbench pushes it from outside
  const usize p = sim.AddProcess(Idle(), "service");
  elab::IoDecl(sim.catalog(), p).Pops(&rx);

  std::vector<Finding> findings;
  elab::ElabGraph::FromSimulator(sim, "ext").CheckDeadSignals(findings);
  EXPECT_TRUE(findings.empty());
}

TEST(ElabCheck, DeadProcessWithUnproducedInputs) {
  Simulator sim;
  SyncFifo<int> silent(sim, "silent_fifo", 4, 32);
  const usize p = sim.AddProcess(Idle(), "starved");
  elab::IoDecl(sim.catalog(), p).Pops(&silent);

  std::vector<Finding> findings;
  elab::ElabGraph::FromSimulator(sim, "dp").CheckDeadProcesses(findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "DEADPROCESS");
  EXPECT_EQ(findings[0].subject, "starved");

  // Marking the FIFO external (fed by the testbench) clears the finding.
  sim.catalog().MarkExternal(&silent);
  std::vector<Finding> after;
  elab::ElabGraph::FromSimulator(sim, "dp").CheckDeadProcesses(after);
  EXPECT_TRUE(after.empty());
}

TEST(ElabCheck, FifoDeadlockRingWithNoDrain) {
  Simulator sim;
  SyncFifo<int> ab(sim, "ring_ab", 2, 32);
  SyncFifo<int> ba(sim, "ring_ba", 2, 32);
  const usize p0 = sim.AddProcess(Idle(), "stage_a");
  const usize p1 = sim.AddProcess(Idle(), "stage_b");
  elab::IoDecl(sim.catalog(), p0).Pops(&ba).Pushes(&ab);
  elab::IoDecl(sim.catalog(), p1).Pops(&ab).Pushes(&ba);

  std::vector<Finding> findings;
  elab::ElabGraph::FromSimulator(sim, "ring").CheckFifoDeadlocks(findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "FIFODEADLOCK");
  EXPECT_EQ(findings[0].severity, Severity::kError);
}

TEST(ElabCheck, FifoRingWithDrainIsClean) {
  Simulator sim;
  SyncFifo<int> ab(sim, "ring_ab", 2, 32);
  SyncFifo<int> ba(sim, "ring_ba", 2, 32);
  const usize p0 = sim.AddProcess(Idle(), "stage_a");
  const usize p1 = sim.AddProcess(Idle(), "stage_b");
  const usize p2 = sim.AddProcess(Idle(), "drain");
  elab::IoDecl(sim.catalog(), p0).Pops(&ba).Pushes(&ab);
  elab::IoDecl(sim.catalog(), p1).Pops(&ab).Pushes(&ba);
  elab::IoDecl(sim.catalog(), p2).Pops(&ab);  // pops the ring, pushes nothing

  std::vector<Finding> findings;
  elab::ElabGraph::FromSimulator(sim, "drained").CheckFifoDeadlocks(findings);
  EXPECT_TRUE(findings.empty());
}

// --- SHARDCUT / FAULTTARGET: cross-layer checks -------------------------------

TEST(ElabCheck, ShardCutFlagsZeroLookahead) {
  const std::vector<ShardCut> cuts = {{0, 1, 7, 0}, {1, 0, 8, 500'000}};
  std::vector<Finding> findings;
  elab::CheckShardCuts(cuts, "sharded", findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "SHARDCUT");
  EXPECT_NE(findings[0].subject.find("0 -> 1"), std::string::npos);
}

TEST(ElabCheck, FaultTargetFlagsUnmatchedPattern) {
  FaultRegistry registry(3);
  registry.Register("nat.flows", FaultClass::kTableExhaustion);
  const auto plan = ParseFaultPlan("nat.* bernoulli 0.5\ndns.cache oneshot 10");
  ASSERT_TRUE(plan.ok());

  std::vector<Finding> findings;
  elab::CheckFaultPlanTargets(*plan, registry, "faults", findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "FAULTTARGET");
  EXPECT_EQ(findings[0].subject, "dns.cache");
}

// --- StaticSchedule: inference and adoption -----------------------------------

TEST(StaticSchedule, IdentityWhenRegistrationOrderValid) {
  Simulator sim;
  Wire<int> w(sim, "pipe_wire", 0);
  const usize writer = sim.AddProcess(Idle(), "writer");
  const usize reader = sim.AddProcess(Idle(), "reader");
  elab::IoDecl(sim.catalog(), writer).Writes(&w);
  elab::IoDecl(sim.catalog(), reader).Reads(&w);

  const auto schedule = elab::ElabGraph::FromSimulator(sim, "id").StaticSchedule();
  ASSERT_TRUE(schedule.ok);
  EXPECT_EQ(schedule.order, (std::vector<usize>{0, 1}));
}

TEST(StaticSchedule, ReordersDeclaredRace) {
  Simulator sim;
  Wire<int> w(sim, "raced", 0);
  const usize reader = sim.AddProcess(Idle(), "reader");
  const usize writer = sim.AddProcess(Idle(), "writer");
  elab::IoDecl(sim.catalog(), reader).Reads(&w);
  elab::IoDecl(sim.catalog(), writer).Writes(&w);

  const auto schedule = elab::ElabGraph::FromSimulator(sim, "reorder").StaticSchedule();
  ASSERT_TRUE(schedule.ok);
  EXPECT_EQ(schedule.order, (std::vector<usize>{1, 0}));
}

TEST(StaticSchedule, UndeclaredProcessesPinTheirSlots) {
  Simulator sim;
  Wire<int> w(sim, "raced", 0);
  const usize reader = sim.AddProcess(Idle(), "reader");
  sim.AddProcess(Idle(), "mystery");  // undeclared, slot 1
  const usize writer = sim.AddProcess(Idle(), "writer");
  elab::IoDecl(sim.catalog(), reader).Reads(&w);
  elab::IoDecl(sim.catalog(), writer).Writes(&w);

  // reader must follow writer, but neither may cross the undeclared slot —
  // the dependencies are unsatisfiable and the schedule must refuse.
  const auto schedule = elab::ElabGraph::FromSimulator(sim, "pin").StaticSchedule();
  EXPECT_FALSE(schedule.ok);
  EXPECT_NE(schedule.error.find("cycle"), std::string::npos);
}

TEST(StaticSchedule, FailsOnCombLoop) {
  Simulator sim;
  Wire<int> a(sim, "a", 0);
  Wire<int> b(sim, "b", 0);
  const usize p0 = sim.AddProcess(Idle(), "fwd");
  const usize p1 = sim.AddProcess(Idle(), "back");
  elab::IoDecl(sim.catalog(), p0).Reads(&a).Writes(&b);
  elab::IoDecl(sim.catalog(), p1).Reads(&b).Writes(&a);

  const auto schedule = elab::ElabGraph::FromSimulator(sim, "loop").StaticSchedule();
  EXPECT_FALSE(schedule.ok);
  EXPECT_TRUE(schedule.order.empty());
}

// Adopting a reordering schedule changes semantics exactly as the schedule
// promises: the reader observes its writer's same-cycle value.
HwProcess AccumulateWire(Wire<int>& w, Reg<int>& sum) {
  for (;;) {
    sum.Write(sum.Read() + w.Read());
    co_await Pause();
  }
}

HwProcess CountIntoWire(Wire<int>& w, Reg<int>& counter) {
  for (;;) {
    counter.Write(counter.Read() + 1);
    w.Write(counter.Read() + 1);
    co_await Pause();
  }
}

TEST(StaticSchedule, AdoptedScheduleFixesDeclaredRace) {
  const auto run = [](bool adopt) {
    Simulator sim;
    Wire<int> w(sim, "raced", 0);
    Reg<int> sum(sim, "sum", 0);
    Reg<int> counter(sim, "counter", 0);
    const usize reader = sim.AddProcess(AccumulateWire(w, sum), "reader");
    const usize writer = sim.AddProcess(CountIntoWire(w, counter), "writer");
    elab::IoDecl(sim.catalog(), reader).Reads(&w).Writes(&sum);
    elab::IoDecl(sim.catalog(), writer).Writes(&w).Writes(&counter);
    if (adopt) {
      const auto schedule = elab::ElabGraph::FromSimulator(sim, "fix").StaticSchedule();
      EXPECT_TRUE(schedule.ok);
      sim.AdoptSchedule(schedule.order);
      EXPECT_TRUE(sim.has_schedule());
    }
    sim.Run(4);
    return sum.Read();
  };
  // Registration order: the reader sees last cycle's wire (one cycle stale).
  // Inferred order runs the writer first: the reader sees this cycle's value.
  EXPECT_EQ(run(false), 1 + 2 + 3);      // cycle i reads value written at i-1
  EXPECT_EQ(run(true), 1 + 2 + 3 + 4);   // cycle i reads value written at i
}

// --- Schedule adoption on real designs: bit-exact by construction -------------

constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

struct EgressDigest {
  Cycle final_now = 0;
  usize frames = 0;
  u64 digest = kFnvOffset;

  void Capture(FpgaTarget& target) {
    final_now = target.sim().now();
    for (const EgressFrame& entry : target.TakeEgress()) {
      ++frames;
      digest = (digest ^ entry.port) * kFnvPrime;
      for (u8 byte : entry.frame.bytes()) {
        digest = (digest ^ byte) * kFnvPrime;
      }
    }
  }

  bool operator==(const EgressDigest&) const = default;
};

// Adopts the statically-inferred schedule when `adopt` is set; the inferred
// order on these clean designs must also BE registration order (that is the
// minimal-lexicographic guarantee), which makes bit-exactness structural.
void MaybeAdopt(Simulator& sim, const std::string& design, bool adopt) {
  const auto schedule = elab::ElabGraph::FromSimulator(sim, design).StaticSchedule();
  ASSERT_TRUE(schedule.ok) << schedule.error;
  std::vector<usize> identity(schedule.order.size());
  for (usize i = 0; i < identity.size(); ++i) {
    identity[i] = i;
  }
  EXPECT_EQ(schedule.order, identity) << design << ": clean design should keep its order";
  if (adopt) {
    sim.AdoptSchedule(schedule.order);
  }
}

EgressDigest RunSwitchWorkload(bool adopt) {
  LearningSwitch service;
  FpgaTarget target(service);
  MaybeAdopt(target.sim(), "switch", adopt);
  const MacAddress a = MacAddress::FromU48(0x02'00'00'00'00'0a);
  const MacAddress b = MacAddress::FromU48(0x02'00'00'00'00'0b);
  for (usize i = 0; i < 6; ++i) {
    target.Inject(i % 2 ? 2 : 0,
                  MakeUdpPacket({i % 2 ? a : b, i % 2 ? b : a, Ipv4Address(10, 0, 0, 1),
                                 Ipv4Address(10, 0, 0, 2), 4000, 9},
                                std::vector<u8>{static_cast<u8>(i)}));
    target.Run(30'000);
  }
  EgressDigest digest;
  digest.Capture(target);
  return digest;
}

TEST(StaticSchedule, SwitchBitExactUnderAdoptedSchedule) {
  const EgressDigest scheduled = RunSwitchWorkload(true);
  const EgressDigest registration = RunSwitchWorkload(false);
  ASSERT_GT(scheduled.frames, 0u);
  EXPECT_EQ(scheduled, registration);
}

EgressDigest RunNatWorkload(bool adopt) {
  NatConfig config;
  NatService service(config);
  FpgaTarget target(service);
  MaybeAdopt(target.sim(), "nat", adopt);
  const MacAddress host_mac = MacAddress::FromU48(0x02'00'00'00'11'10);
  for (usize i = 0; i < 12; ++i) {
    Packet frame = MakeUdpPacket(
        {config.internal_mac, host_mac, Ipv4Address(192, 168, 1, static_cast<u8>(2 + i % 4)),
         Ipv4Address(8, 8, 8, 8), static_cast<u16>(5000 + i), 53},
        std::vector<u8>{'q', static_cast<u8>(i)});
    frame.set_src_port(1);
    target.Inject(1, std::move(frame));
    target.Run(i % 3 == 0 ? 25'000 : 700);
  }
  target.Run(80'000);
  EgressDigest digest;
  digest.Capture(target);
  return digest;
}

TEST(StaticSchedule, NatBitExactUnderAdoptedSchedule) {
  const EgressDigest scheduled = RunNatWorkload(true);
  const EgressDigest registration = RunNatWorkload(false);
  ASSERT_GT(scheduled.frames, 0u);
  EXPECT_EQ(scheduled, registration);
}

EgressDigest RunMemcachedWorkload(bool adopt) {
  MemcachedConfig config;
  config.cores = 4;
  MemcachedService service(config);
  FpgaTarget target(service);
  MaybeAdopt(target.sim(), "memcached", adopt);
  MemaslapConfig workload;
  workload.server_mac = config.mac;
  workload.server_ip = config.ip;
  workload.key_space = 24;
  MemaslapLoadgen loadgen(workload);
  for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
    target.Inject(0, loadgen.PrewarmFrame(i));
    target.Run(2'500);
  }
  for (usize i = 0; i < 32; ++i) {
    target.Inject(static_cast<u8>(i % 4), loadgen.WorkloadFrame(i));
    target.Run(i % 5 == 0 ? 15'000 : 400);
  }
  target.Run(80'000);
  EgressDigest digest;
  digest.Capture(target);
  return digest;
}

TEST(StaticSchedule, MemcachedBitExactUnderAdoptedSchedule) {
  const EgressDigest scheduled = RunMemcachedWorkload(true);
  const EgressDigest registration = RunMemcachedWorkload(false);
  ASSERT_GT(scheduled.frames, 0u);
  EXPECT_EQ(scheduled, registration);
}

// --- Pre-flight elaboration hook ----------------------------------------------

TEST(Elaboration, PreFlightRunsOnceAtFirstStep) {
  Simulator sim;
  elab::Elaboration lint("preflight");
  lint.SetEcho(false);
  sim.AttachElaboration(&lint);
  Reg<int> reg(sim, "r", 0);
  sim.AddProcess(Idle(), "worker");

  EXPECT_FALSE(lint.ran());
  sim.Step();
  EXPECT_TRUE(lint.ran());
  EXPECT_TRUE(lint.findings().empty());
  EXPECT_EQ(lint.graph().processes().size(), 1u);
}

TEST(Elaboration, PreFlightReportsBrokenDesign) {
  Simulator sim;
  elab::Elaboration lint("broken");
  lint.SetEcho(false);
  sim.AttachElaboration(&lint);
  Wire<int> a(sim, "a", 0);
  Wire<int> b(sim, "b", 0);
  const usize p0 = sim.AddProcess(Idle(), "fwd");
  const usize p1 = sim.AddProcess(Idle(), "back");
  elab::IoDecl(sim.catalog(), p0).Reads(&a).Writes(&b);
  elab::IoDecl(sim.catalog(), p1).Reads(&b).Writes(&a);

  sim.Run(3);
  EXPECT_TRUE(lint.ran());
  EXPECT_EQ(CountCheck(lint.findings(), "COMBLOOP"), 1u);
}

TEST(Elaboration, SuppressionsApplyDuringPreFlight) {
  Simulator sim;
  elab::Elaboration lint("suppressed");
  lint.SetEcho(false);
  // The loop yields COMBLOOP plus the backward edge's COMBRACE on 'a';
  // suppress both so the pre-flight comes back clean.
  lint.SetSuppressions(ParseSuppressions("COMBLOOP, COMBRACE:a"));
  sim.AttachElaboration(&lint);
  Wire<int> a(sim, "a", 0);
  Wire<int> b(sim, "b", 0);
  const usize p0 = sim.AddProcess(Idle(), "fwd");
  const usize p1 = sim.AddProcess(Idle(), "back");
  elab::IoDecl(sim.catalog(), p0).Reads(&a).Writes(&b);
  elab::IoDecl(sim.catalog(), p1).Reads(&b).Writes(&a);

  sim.Step();
  EXPECT_TRUE(lint.findings().empty());
  EXPECT_EQ(lint.suppressed(), 2u);
}

// --- Shared finding layer: suppressions, formatting, exit codes ----------------

TEST(FindingLayer, SuppressionSyntax) {
  const auto list = ParseSuppressions(
      "COMBLOOP, DEADSIGNAL:dbg_*  # tooling signals\nFAULTTARGET:nat.flows");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].check, "COMBLOOP");
  EXPECT_TRUE(list[0].subject_pattern.empty());
  EXPECT_EQ(list[1].check, "DEADSIGNAL");
  EXPECT_EQ(list[1].subject_pattern, "dbg_*");
  EXPECT_EQ(list[2].subject_pattern, "nat.flows");

  const Finding dbg{"DEADSIGNAL", Severity::kWarning, "d", "dbg_probe", "m"};
  const Finding live{"DEADSIGNAL", Severity::kWarning, "d", "core_fifo", "m"};
  EXPECT_TRUE(SuppressionMatches(list[1], dbg));
  EXPECT_FALSE(SuppressionMatches(list[1], live));

  usize suppressed = 0;
  const auto kept = ApplySuppressions({dbg, live}, list, &suppressed);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].subject, "core_fifo");
  EXPECT_EQ(suppressed, 1u);
}

TEST(FindingLayer, ExitCodeContract) {
  EXPECT_EQ(LintExitCode({}), kLintExitClean);
  const Finding warning{"DEADSIGNAL", Severity::kWarning, "d", "s", "m"};
  const Finding error{"COMBLOOP", Severity::kError, "d", "s", "m"};
  EXPECT_EQ(LintExitCode({warning}), kLintExitClean);  // warnings never fail
  EXPECT_EQ(LintExitCode({warning, error}), kLintExitFindings);
  EXPECT_EQ(CountErrors({warning, error}), 1u);
  // The three-way contract itself.
  EXPECT_EQ(kLintExitClean, 0);
  EXPECT_EQ(kLintExitFindings, 1);
  EXPECT_EQ(kLintExitUsage, 2);
}

TEST(FindingLayer, JsonFormatterEscapes) {
  const Finding f{"COMBLOOP", Severity::kError, "d", "a\"b", "line1\nline2\ttab"};
  std::ostringstream out;
  FormatFindingsJson(out, {f});
  const std::string json = out.str();
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\ttab"), std::string::npos);
  EXPECT_EQ(json.find('\t'), std::string::npos);
}

TEST(FindingLayer, CheckRegistryCoversBothPasses) {
  usize static_checks = 0, dynamic_checks = 0;
  for (const CheckInfo& info : CheckRegistry()) {
    static_checks += info.static_pass;
    dynamic_checks += info.dynamic_pass;
    EXPECT_TRUE(info.static_pass || info.dynamic_pass) << info.name;
  }
  EXPECT_EQ(static_checks, 8u);   // MULTIDRIVEN COMBRACE COMBLOOP + 5 static-only
  EXPECT_EQ(dynamic_checks, 7u);  // the original dynamic taxonomy
}

// --- FAULTTARGET over topology-scoped events (emu-gossip) ---------------------

namespace topo_lint {

const std::vector<std::string> kHosts = {"h0", "h1", "h2", "h3"};

std::vector<Finding> Lint(const std::string& plan_text) {
  const auto plan = ParseFaultPlan(plan_text);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  std::vector<Finding> findings;
  elab::CheckTopoFaults(*plan, kHosts, "gossip", findings);
  return findings;
}

TEST(TopoFaultLint, CleanCampaignHasNoFindings) {
  const auto findings = Lint(
      "crash host=h1 at=5ms; restart host=h1 at=30ms; "
      "partition {h0}|{h2,h3} from=40ms to=50ms");
  EXPECT_TRUE(findings.empty()) << findings[0].ToString();
}

TEST(TopoFaultLint, UnknownHostIsAnError) {
  const auto findings = Lint("crash host=h9 at=5ms");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "FAULTTARGET");
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].subject, "h9");
  EXPECT_NE(findings[0].message.find("plan line 1"), std::string::npos)
      << findings[0].message;
}

TEST(TopoFaultLint, UnknownHostInPartitionGroupIsAnError) {
  const auto findings = Lint("partition {h0,hx}|{h1} from=1ms to=2ms");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].subject, "hx");
}

TEST(TopoFaultLint, RestartWithoutCrashWarnsAsPowerCycle) {
  const auto findings = Lint("restart host=h2 at=10ms");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].subject, "h2");
  EXPECT_NE(findings[0].message.find("power-cycle"), std::string::npos)
      << findings[0].message;
}

TEST(TopoFaultLint, DoubleCrashWithoutRestartWarns) {
  // Plan order is not time order — the check must sort by event time.
  const auto findings = Lint("crash host=h1 at=20ms; crash host=h1 at=5ms");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_NE(findings[0].message.find("no-op"), std::string::npos) << findings[0].message;
  // With a restart between the crashes the sequence is legal.
  EXPECT_TRUE(Lint("crash host=h1 at=5ms; restart host=h1 at=10ms; "
                   "crash host=h1 at=20ms")
                  .empty());
}

TEST(TopoFaultLint, CrashInsidePartitionWindowNamingThatHostWarns) {
  const auto findings =
      Lint("partition {h0}|{h1} from=5ms to=15ms; crash host=h0 at=10ms");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].subject, "h0");
  EXPECT_NE(findings[0].message.find("conflates"), std::string::npos)
      << findings[0].message;
  // A crash of a host the window does NOT name is fine.
  EXPECT_TRUE(Lint("partition {h0}|{h1} from=5ms to=15ms; crash host=h2 at=10ms").empty());
  // A crash outside the window is fine too.
  EXPECT_TRUE(Lint("partition {h0}|{h1} from=5ms to=15ms; crash host=h0 at=20ms").empty());
}

}  // namespace topo_lint

}  // namespace
}  // namespace emu
