// MetricsRegistry: the canonical counter surface (src/core/metrics.h), its
// service registrations, and the CASP debug-controller bridge.
#include <gtest/gtest.h>

#include "src/core/metrics.h"
#include "src/core/targets.h"
#include "src/debug/controller.h"
#include "src/net/icmp.h"
#include "src/services/icmp_echo_service.h"
#include "src/services/nat_service.h"

namespace emu {
namespace {

TEST(MetricsRegistryTest, RegisterAndRead) {
  MetricsRegistry registry;
  u64 counter = 0;
  registry.Register("svc.count", &counter);
  registry.Register("svc.derived", [&counter] { return counter * 2; });

  EXPECT_TRUE(registry.Has("svc.count"));
  EXPECT_FALSE(registry.Has("svc.other"));
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Get("svc.count"), 0u);

  counter = 21;  // reads are live, not snapshots at registration time
  EXPECT_EQ(registry.Get("svc.count"), 21u);
  EXPECT_EQ(registry.Get("svc.derived"), 42u);
  EXPECT_EQ(registry.Get("svc.unknown"), 0u);  // unknown reads as never-incremented
}

TEST(MetricsRegistryTest, ReRegisterReplacesSource) {
  MetricsRegistry registry;
  u64 first = 1;
  u64 second = 2;
  registry.Register("svc.count", &first);
  registry.Register("svc.count", &second);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Get("svc.count"), 2u);
}

TEST(MetricsRegistryTest, SnapshotAndFormatPreserveRegistrationOrder) {
  MetricsRegistry registry;
  u64 b = 2;
  u64 a = 1;
  registry.Register("z.second", &b);
  registry.Register("a.first", &a);

  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].first, "z.second");
  EXPECT_EQ(snapshot[1].first, "a.first");
  EXPECT_EQ(registry.Format(), "z.second=2\na.first=1\n");
}

TEST(MetricsRegistryTest, ServiceCountersTrackTheLegacyGetters) {
  IcmpEchoConfig config;
  IcmpEchoService service(config);
  FpgaTarget target(service);
  MetricsRegistry registry;
  service.RegisterMetrics(registry);

  const MacAddress client = MacAddress::FromU48(0x02'00'00'00'cc'01);
  auto reply = target.SendAndCollect(
      0, MakeIcmpEchoRequest({config.mac, client, Ipv4Address(10, 0, 0, 9), config.ip, 1, 0}, {}));
  ASSERT_TRUE(reply.ok());

  EXPECT_EQ(registry.Get("icmp.echoes"), 1u);
  EXPECT_EQ(registry.Get("icmp.echoes"), service.echoes());  // wrapper == registry
  EXPECT_EQ(registry.Get("icmp.dropped"), service.dropped());
}

TEST(MetricsRegistryTest, NatRegistersItsFullCounterSet) {
  NatConfig config;
  NatService service(config);
  MetricsRegistry registry;
  service.RegisterMetrics(registry);
  for (const char* name :
       {"nat.translated_out", "nat.translated_in", "nat.dropped",
        "nat.exhaustion_rejects", "nat.exhaustion_evictions"}) {
    EXPECT_TRUE(registry.Has(name)) << name;
  }
}

TEST(MetricsRegistryTest, ControllerBridgeExposesMetricsAsCaspVariables) {
  MetricsRegistry registry;
  u64 counter = 7;
  registry.Register("svc.count", &counter);

  DirectionController controller;
  controller.AttachMetrics(&registry);
  EXPECT_TRUE(controller.machine().HasVariable("svc.count"));
  const auto value = controller.machine().ReadVariable("svc.count");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 7u);

  counter = 9;  // bridge reads through the registry, so updates are live
  EXPECT_EQ(*controller.machine().ReadVariable("svc.count"), 9u);
}

}  // namespace
}  // namespace emu
