// Flat-scheduled busy-path equivalence suite (emu-speed).
//
// EnableFlatSchedule() pre-elaborates a fully-declared pipeline into the
// flat scheduled edge loop (RunFlatSpan): routed wakes, the dirty commit
// queue, and the pre-baked process order replace per-edge rediscovery. Like
// the quiescence fast path it is an optimization shortcut, not a semantics
// change — these tests run saturated workloads (small inter-frame gaps, so
// the busy path dominates and fast-forward windows are rare) in three modes:
//
//   exact    SetFastPath(false): every cycle executes, every predicate is
//            evaluated per edge — the reference semantics;
//   dynamic  the default fast path with per-edge dynamic dispatch;
//   flat     EnableFlatSchedule() + fast path — the shipping busy-path
//            kernel;
//
// and require bit-exact agreement on everything observable. A fourth run
// drives the flat kernel through RunOptions{threads = 4} (accepted for API
// uniformity on a single clock domain, executed on the serial kernel) to pin
// that thread-count requests cannot perturb a pipeline's results.
//
// The suite also pins the fallback contract: attaching an EdgeObserver
// mid-run must drop the kernel back to gapless per-edge dispatch (the
// observer sees every cycle) without changing any digest.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/targets.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fault_registry.h"
#include "src/net/udp.h"
#include "src/services/learning_switch.h"
#include "src/services/memcached_service.h"
#include "src/services/nat_service.h"
#include "src/sim/memaslap.h"

namespace emu {
namespace {

constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

u64 DigestEgress(const std::vector<EgressFrame>& egress) {
  u64 h = kFnvOffset;
  for (const EgressFrame& entry : egress) {
    h = (h ^ entry.port) * kFnvPrime;
    for (u8 byte : entry.frame.bytes()) {
      h = (h ^ byte) * kFnvPrime;
    }
  }
  return h;
}

enum class Mode {
  kExact,        // SetFastPath(false)
  kDynamic,      // default fast path, dynamic dispatch
  kFlat,         // EnableFlatSchedule + fast path
  kFlatThreads4  // flat, driven with RunOptions{threads = 4}
};

struct RunDigest {
  Cycle final_now = 0;
  usize egress_count = 0;
  u64 egress_digest = 0;
  std::vector<std::pair<std::string, u64>> metrics;
  u64 resumes_total = 0;
  u64 edges_run = 0;
  u64 cycles_fast_forwarded = 0;

  void Capture(FpgaTarget& target, MetricsRegistry& registry) {
    final_now = target.sim().now();
    const auto egress = target.TakeEgress();
    egress_count = egress.size();
    egress_digest = DigestEgress(egress);
    metrics = registry.Snapshot();
    const SimProfile profile = target.sim().ProfileReport();
    edges_run = profile.edges_run;
    cycles_fast_forwarded = profile.cycles_fast_forwarded;
    for (const ProcessProfile& process : profile.processes) {
      resumes_total += process.resumes;
    }
  }
};

void ExpectEquivalent(const char* label, const RunDigest& got, const RunDigest& exact) {
  SCOPED_TRACE(label);
  EXPECT_EQ(got.final_now, exact.final_now);
  EXPECT_EQ(got.egress_count, exact.egress_count);
  EXPECT_EQ(got.egress_digest, exact.egress_digest);
  EXPECT_EQ(got.metrics, exact.metrics);
  EXPECT_EQ(got.resumes_total, exact.resumes_total);
  EXPECT_EQ(got.edges_run + got.cycles_fast_forwarded, exact.edges_run);
  EXPECT_EQ(exact.cycles_fast_forwarded, 0u);
}

void Configure(FpgaTarget& target, Mode mode) {
  switch (mode) {
    case Mode::kExact:
      target.sim().SetFastPath(false);
      break;
    case Mode::kDynamic:
      break;
    case Mode::kFlat:
    case Mode::kFlatThreads4:
      // Every stock service pipeline declares its IO; flat elaboration must
      // succeed, not silently fall back, or this suite measures nothing.
      ASSERT_TRUE(target.EnableFlatSchedule());
      ASSERT_TRUE(target.sim().flat_schedule());
      break;
  }
}

// Drives `target.Run(cycles)` except in kFlatThreads4, which advances
// through RunUntil — the done-predicate entry point the RunOptions overloads
// (RunUntilEgress({.threads = 4, ...})) funnel into. The predicate never
// holds, so the call runs exactly `cycles` edges while evaluating the
// predicate on the flat span's per-edge exit path.
void Advance(FpgaTarget& target, Mode mode, Cycle cycles) {
  if (mode == Mode::kFlatThreads4) {
    const Cycle deadline = target.sim().now() + cycles;
    target.RunUntil([] { return false; }, cycles);
    EXPECT_EQ(target.sim().now(), deadline);
  } else {
    target.Run(cycles);
  }
}

// --- Workloads (saturated: small gaps, busy path dominates) ----------------------

const MacAddress kHostMacs[4] = {
    MacAddress::FromU48(0x02'00'00'00'00'01), MacAddress::FromU48(0x02'00'00'00'00'02),
    MacAddress::FromU48(0x02'00'00'00'00'03), MacAddress::FromU48(0x02'00'00'00'00'04)};
const Ipv4Address kHostIps[4] = {Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                 Ipv4Address(10, 0, 0, 3), Ipv4Address(10, 0, 0, 4)};

RunDigest RunLearningSwitchSaturated(Mode mode) {
  LearningSwitch service;
  FpgaTarget target(service);
  Configure(target, mode);
  MetricsRegistry metrics;
  service.RegisterMetrics(metrics);

  for (u8 port = 0; port < 4; ++port) {
    target.Inject(port,
                  MakeUdpPacket({MacAddress::Broadcast(), kHostMacs[port], kHostIps[port],
                                 Ipv4Address(10, 0, 0, 99), 1, 2},
                                std::vector<u8>{port}));
    Advance(target, mode, 400);
  }
  // Back-to-back unicast: at most a handful of idle cycles between frames.
  for (usize i = 0; i < 120; ++i) {
    const u8 src = static_cast<u8>(i % 4);
    const u8 dst = static_cast<u8>((i + 1 + i / 4) % 4);
    target.Inject(src, MakeUdpPacket({kHostMacs[dst], kHostMacs[src], kHostIps[src],
                                      kHostIps[dst], 1000, 2000},
                                     std::vector<u8>(1 + i % 16, static_cast<u8>(i))));
    Advance(target, mode, i % 7 == 0 ? 600 : 90);
  }
  Advance(target, mode, 20'000);

  RunDigest digest;
  digest.Capture(target, metrics);
  return digest;
}

RunDigest RunNatSaturated(Mode mode) {
  NatConfig config;
  NatService service(config);
  FpgaTarget target(service);
  Configure(target, mode);
  MetricsRegistry metrics;
  service.RegisterMetrics(metrics);

  const MacAddress host_mac = MacAddress::FromU48(0x02'00'00'00'11'10);
  for (usize i = 0; i < 80; ++i) {
    Packet frame = MakeUdpPacket(
        {config.internal_mac, host_mac, Ipv4Address(192, 168, 1, static_cast<u8>(2 + i % 8)),
         Ipv4Address(8, 8, 8, 8), static_cast<u16>(5000 + i), 53},
        std::vector<u8>{'q', static_cast<u8>(i)});
    frame.set_src_port(1);
    target.Inject(1, std::move(frame));
    Advance(target, mode, i % 9 == 0 ? 800 : 110);  // back-pressure most frames
  }
  Advance(target, mode, 20'000);

  RunDigest digest;
  digest.Capture(target, metrics);
  return digest;
}

RunDigest RunMemcachedSaturated(Mode mode) {
  MemcachedConfig config;
  config.cores = 4;
  MemcachedService service(config);
  FpgaTarget target(service);
  Configure(target, mode);
  MetricsRegistry metrics;
  service.RegisterMetrics(metrics);

  MemaslapConfig workload;
  workload.server_mac = config.mac;
  workload.server_ip = config.ip;
  workload.key_space = 40;
  MemaslapLoadgen loadgen(workload);
  for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
    target.Inject(0, loadgen.PrewarmFrame(i));
    Advance(target, mode, 250);
  }
  for (usize i = 0; i < 100; ++i) {
    target.Inject(static_cast<u8>(i % 4), loadgen.WorkloadFrame(i));
    Advance(target, mode, i % 11 == 0 ? 900 : 130);
  }
  Advance(target, mode, 20'000);

  RunDigest digest;
  digest.Capture(target, metrics);
  return digest;
}

struct FaultDigest {
  RunDigest run;
  u64 faults_fired = 0;
  u64 log_digest = 0;
};

FaultDigest RunNatUnderFaultsSaturated(Mode mode) {
  NatConfig config;
  config.max_mappings = 64;
  NatService service(config);
  FpgaTarget target(service);
  Configure(target, mode);
  MetricsRegistry metrics;
  service.RegisterMetrics(metrics);

  FaultRegistry registry(7);
  service.RegisterFaultPoints(registry);
  target.sim().AttachFaultRegistry(&registry);
  const auto plan =
      ParseFaultPlan("nat.table_full burst 2000 9000 0.5; nat.flows bernoulli 0.001");
  EXPECT_TRUE(plan.ok());
  registry.ArmPlan(*plan);

  const MacAddress host_mac = MacAddress::FromU48(0x02'00'00'00'11'10);
  for (usize i = 0; i < 70; ++i) {
    Packet frame = MakeUdpPacket(
        {config.internal_mac, host_mac,
         Ipv4Address(192, 168, 1, static_cast<u8>(2 + i % 100)), Ipv4Address(8, 8, 8, 8),
         static_cast<u16>(1024 + i), 53},
        std::vector<u8>{'p'});
    frame.set_src_port(1);
    target.Inject(1, std::move(frame));
    Advance(target, mode, i % 8 == 0 ? 700 : 120);
  }
  Advance(target, mode, 20'000);

  FaultDigest digest;
  digest.run.Capture(target, metrics);
  digest.faults_fired = registry.fired_total();
  digest.log_digest = registry.LogDigest();
  return digest;
}

// --- The suite -------------------------------------------------------------------

void RunAllModes(RunDigest (*workload)(Mode)) {
  const RunDigest exact = workload(Mode::kExact);
  const RunDigest dynamic = workload(Mode::kDynamic);
  const RunDigest flat = workload(Mode::kFlat);
  const RunDigest flat4 = workload(Mode::kFlatThreads4);
  ASSERT_GT(exact.egress_count, 0u);
  ExpectEquivalent("dynamic vs exact", dynamic, exact);
  ExpectEquivalent("flat vs exact", flat, exact);
  ExpectEquivalent("flat+threads4 vs exact", flat4, exact);
}

TEST(FlatSchedule, LearningSwitchSaturatedBitExact) {
  RunAllModes(RunLearningSwitchSaturated);
}

TEST(FlatSchedule, NatSaturatedBitExact) { RunAllModes(RunNatSaturated); }

TEST(FlatSchedule, MemcachedSaturatedBitExact) { RunAllModes(RunMemcachedSaturated); }

TEST(FlatSchedule, NatUnderFaultPlanSaturatedBitExact) {
  const FaultDigest exact = RunNatUnderFaultsSaturated(Mode::kExact);
  const FaultDigest dynamic = RunNatUnderFaultsSaturated(Mode::kDynamic);
  const FaultDigest flat = RunNatUnderFaultsSaturated(Mode::kFlat);
  const FaultDigest flat4 = RunNatUnderFaultsSaturated(Mode::kFlatThreads4);
  ASSERT_GT(exact.run.egress_count, 0u);
  ASSERT_GT(exact.faults_fired, 0u);
  ExpectEquivalent("dynamic vs exact", dynamic.run, exact.run);
  ExpectEquivalent("flat vs exact", flat.run, exact.run);
  ExpectEquivalent("flat+threads4 vs exact", flat4.run, exact.run);
  EXPECT_EQ(dynamic.faults_fired, exact.faults_fired);
  EXPECT_EQ(flat.faults_fired, exact.faults_fired);
  EXPECT_EQ(flat4.faults_fired, exact.faults_fired);
  EXPECT_EQ(dynamic.log_digest, exact.log_digest);
  EXPECT_EQ(flat.log_digest, exact.log_digest);
  EXPECT_EQ(flat4.log_digest, exact.log_digest);
}

// RunOptions{threads = N} on a single clock domain is accepted for API
// uniformity and executes on the serial kernel: any N must produce the
// identical exchange on a flat-scheduled pipeline.
TEST(FlatSchedule, RunOptionsThreadCountIsUniform) {
  auto exchange = [](usize threads) {
    LearningSwitch service;
    FpgaTarget target(service);
    EXPECT_TRUE(target.EnableFlatSchedule());
    target.Inject(0, MakeUdpPacket({MacAddress::Broadcast(), kHostMacs[0], kHostIps[0],
                                    Ipv4Address(10, 0, 0, 99), 1, 2},
                                   std::vector<u8>{42}));
    FpgaTarget::RunOptions opts;
    opts.threads = threads;
    opts.limit = 100'000;
    EXPECT_TRUE(target.RunUntilEgress(opts));
    const auto egress = target.TakeEgress();
    return std::make_pair(target.sim().now(), DigestEgress(egress));
  };
  const auto serial = exchange(1);
  const auto threaded = exchange(4);
  EXPECT_EQ(serial.first, threaded.first);
  EXPECT_EQ(serial.second, threaded.second);
}

// --- Fallback contract -----------------------------------------------------------

// Counts edges; the flat span must not run while one of these is attached,
// so the count must equal the full gapless cycle range it was attached for.
class EdgeCounter : public EdgeObserver {
 public:
  void OnEdge(Cycle now) override {
    if (count_ == 0) {
      first_ = now;
    }
    last_ = now;
    ++count_;
  }
  u64 count() const { return count_; }
  Cycle first() const { return first_; }
  Cycle last() const { return last_; }

 private:
  u64 count_ = 0;
  Cycle first_ = 0;
  Cycle last_ = 0;
};

// Attaching an EdgeObserver mid-run on a flat-scheduled simulator must fall
// back to gapless per-edge dispatch for the observed span, keep digests
// bit-exact, and resume the flat span after detach.
TEST(FlatSchedule, EdgeObserverMidRunFallsBackToDynamicDispatch) {
  auto run = [](bool observe_middle, EdgeCounter* counter) {
    LearningSwitch service;
    FpgaTarget target(service);
    EXPECT_TRUE(target.EnableFlatSchedule());
    MetricsRegistry metrics;
    service.RegisterMetrics(metrics);

    for (usize i = 0; i < 40; ++i) {
      const u8 src = static_cast<u8>(i % 4);
      target.Inject(src, MakeUdpPacket({MacAddress::Broadcast(), kHostMacs[src],
                                        kHostIps[src], Ipv4Address(10, 0, 0, 99), 1, 2},
                                       std::vector<u8>{static_cast<u8>(i)}));
      target.Run(150);
    }
    if (observe_middle && counter != nullptr) {
      target.sim().AttachEdgeObserver(counter);
    }
    for (usize i = 0; i < 40; ++i) {
      const u8 src = static_cast<u8>(i % 4);
      const u8 dst = static_cast<u8>((i + 1) % 4);
      target.Inject(src, MakeUdpPacket({kHostMacs[dst], kHostMacs[src], kHostIps[src],
                                        kHostIps[dst], 7, 9},
                                       std::vector<u8>{static_cast<u8>(i)}));
      target.Run(150);
    }
    if (observe_middle && counter != nullptr) {
      target.sim().DetachEdgeObserver(counter);
    }
    target.Run(30'000);

    RunDigest digest;
    digest.Capture(target, metrics);
    return digest;
  };

  EdgeCounter counter;
  const RunDigest observed = run(true, &counter);
  const RunDigest unobserved = run(false, nullptr);

  // The observer saw every single edge of its span: 40 injections * 150
  // cycles, gapless — proof the flat span and fast-forward both stood down.
  EXPECT_EQ(counter.count(), 40u * 150u);
  EXPECT_EQ(counter.last() - counter.first() + 1, counter.count());

  // And observation changed nothing observable.
  EXPECT_EQ(observed.final_now, unobserved.final_now);
  EXPECT_EQ(observed.egress_count, unobserved.egress_count);
  EXPECT_EQ(observed.egress_digest, unobserved.egress_digest);
  EXPECT_EQ(observed.metrics, unobserved.metrics);
  EXPECT_EQ(observed.resumes_total, unobserved.resumes_total);
  EXPECT_EQ(observed.edges_run + observed.cycles_fast_forwarded,
            unobserved.edges_run + unobserved.cycles_fast_forwarded);
}

}  // namespace
}  // namespace emu
