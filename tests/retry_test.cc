// Retry / timeout / backoff primitives (emu-gossip, src/core/retry.h).
//
// Deadline's contract is the subtle one: WaitUntil predicates must normally
// not read the clock because the quiescence fast path skips windows with no
// wake-tracked state changes — Deadline registers a forced wake so reading
// the clock against it is sound. The first test proves exactly that: a
// predicate that can never become true, in an otherwise dead simulation,
// still resumes at the deadline cycle.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/retry.h"
#include "src/hdl/process.h"
#include "src/hdl/signal.h"
#include "src/hdl/simulator.h"

namespace emu {
namespace {

// --- Deadline ----------------------------------------------------------------

HwProcess NeverTruePredicateWaiter(Simulator& sim, u64& woke_at, bool& expired) {
  Deadline deadline = Deadline::After(sim, 50);
  co_await UntilOrDeadline(deadline, [] { return false; });
  woke_at = sim.now();
  expired = deadline.expired();
}

TEST(Deadline, ForcesWakeThroughQuiescence) {
  Simulator sim;
  u64 woke_at = 0;
  bool expired = false;
  sim.AddProcess(NeverTruePredicateWaiter(sim, woke_at, expired), "waiter");
  // Nothing else runs: every window between cycle 0 and the deadline is
  // quiescent. Without the RequestWakeAt planted by the Deadline ctor the
  // fast path would sleep straight past cycle 50 and the waiter would park
  // until the run limit.
  sim.Run(200);
  EXPECT_EQ(woke_at, 50u);
  EXPECT_TRUE(expired);
}

HwProcess FlagWaiter(Simulator& sim, Reg<u64>& flag, u64& woke_at, bool& expired) {
  Deadline deadline = Deadline::After(sim, 100);
  co_await UntilOrDeadline(deadline, [&] { return flag.Read() == 1; });
  woke_at = sim.now();
  expired = deadline.expired();
}

HwProcess FlagSetter(Reg<u64>& flag, int after_cycles) {
  for (int i = 0; i < after_cycles; ++i) {
    co_await Pause();
  }
  flag.Write(1);
}

TEST(Deadline, PredicateWinsBeforeExpiry) {
  Simulator sim;
  Reg<u64> flag(sim, 0);
  u64 woke_at = 0;
  bool expired = true;
  sim.AddProcess(FlagWaiter(sim, flag, woke_at, expired), "waiter");
  sim.AddProcess(FlagSetter(flag, 10), "setter");
  sim.Run(200);
  // The write lands at cycle 10 and becomes visible at the next edge; either
  // way the waiter resumes long before the deadline at 100.
  EXPECT_GE(woke_at, 10u);
  EXPECT_LE(woke_at, 12u);
  EXPECT_FALSE(expired);
}

TEST(Deadline, ExposesAbsoluteCycleAndExpiry) {
  Simulator sim;
  Deadline deadline = Deadline::After(sim, 7);
  EXPECT_EQ(deadline.at(), 7u);
  EXPECT_FALSE(deadline.expired());
}

// --- RetryPolicy -------------------------------------------------------------

TEST(RetryPolicy, NominalDelayGrowsGeometrically) {
  RetryPolicy policy;
  policy.base = 64;
  policy.multiplier = 2.0;
  policy.cap = 0;
  EXPECT_EQ(policy.NominalDelay(0), 64u);
  EXPECT_EQ(policy.NominalDelay(1), 128u);
  EXPECT_EQ(policy.NominalDelay(2), 256u);
  EXPECT_EQ(policy.NominalDelay(5), 2048u);
}

TEST(RetryPolicy, NominalDelayHonorsCap) {
  RetryPolicy policy;
  policy.base = 100;
  policy.multiplier = 3.0;
  policy.cap = 500;
  EXPECT_EQ(policy.NominalDelay(0), 100u);
  EXPECT_EQ(policy.NominalDelay(1), 300u);
  EXPECT_EQ(policy.NominalDelay(2), 500u);  // 900 capped
  EXPECT_EQ(policy.NominalDelay(9), 500u);
}

TEST(RetryPolicy, NominalDelayNeverBelowOneTick) {
  RetryPolicy policy;
  policy.base = 0;
  EXPECT_EQ(policy.NominalDelay(0), 1u);
  policy.base = 10;
  policy.multiplier = 0.0;  // degenerate: every later attempt collapses to 0
  EXPECT_EQ(policy.NominalDelay(3), 1u);
}

TEST(RetryPolicy, NominalDelaySaturatesInsteadOfOverflowing) {
  RetryPolicy policy;
  policy.base = 1'000'000;
  policy.multiplier = 10.0;
  policy.cap = 0;
  // 10^6 * 10^60 blows far past 2^64; the double ceiling keeps the result a
  // sane (huge) u64 instead of wrapping.
  const u64 d = policy.NominalDelay(60);
  EXPECT_GT(d, u64{1} << 62);
}

// --- Retrier -----------------------------------------------------------------

TEST(Retrier, JitteredDelaysStayWithinBand) {
  RetryPolicy policy;
  policy.base = 1000;
  policy.multiplier = 2.0;
  policy.cap = 0;
  policy.max_attempts = 8;
  policy.jitter = 0.1;
  Retrier retrier(policy, 42);
  for (u32 attempt = 0; attempt < policy.max_attempts; ++attempt) {
    const u64 nominal = policy.NominalDelay(attempt);
    const u64 delay = retrier.NextDelay();
    EXPECT_GE(delay, static_cast<u64>(static_cast<double>(nominal) * 0.9) - 1)
        << "attempt " << attempt;
    EXPECT_LE(delay, static_cast<u64>(static_cast<double>(nominal) * 1.1) + 1)
        << "attempt " << attempt;
  }
}

TEST(Retrier, DelaySequenceIsSeedStable) {
  RetryPolicy policy;
  policy.base = 500;
  policy.jitter = 0.25;
  policy.max_attempts = 6;
  Retrier a(policy, 7);
  Retrier b(policy, 7);
  Retrier c(policy, 8);
  std::vector<u64> seq_a;
  std::vector<u64> seq_b;
  std::vector<u64> seq_c;
  for (u32 i = 0; i < policy.max_attempts; ++i) {
    seq_a.push_back(a.NextDelay());
    seq_b.push_back(b.NextDelay());
    seq_c.push_back(c.NextDelay());
  }
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_NE(seq_a, seq_c);  // different seed, different jitter stream
}

TEST(Retrier, DrawsExactlyOneJitterSamplePerCall) {
  // The contract that makes retry timing replayable: the Rng stream position
  // is a pure function of how many NextDelay calls happened, jitter or not.
  // Reproduce the delay sequence by hand from a parallel Rng with the same
  // seed, one NextDouble per call — any hidden extra (or skipped) draw would
  // desynchronize the two streams immediately.
  RetryPolicy policy;
  policy.base = 1000;
  policy.multiplier = 2.0;
  policy.max_attempts = 10;
  policy.jitter = 0.2;
  const u64 seed = 123;
  Retrier retrier(policy, seed);
  Rng shadow(seed);
  for (u32 attempt = 0; attempt < policy.max_attempts; ++attempt) {
    const double unit = shadow.NextDouble() * 2.0 - 1.0;
    const double jittered = static_cast<double>(policy.NominalDelay(attempt)) *
                            (1.0 + policy.jitter * unit);
    const u64 expect = jittered <= 1.0 ? 1 : static_cast<u64>(jittered);
    EXPECT_EQ(retrier.NextDelay(), expect) << "attempt " << attempt;
  }
}

TEST(Retrier, ZeroJitterStillAdvancesTheStream) {
  RetryPolicy policy;
  policy.base = 64;
  policy.jitter = 0.0;
  policy.max_attempts = 4;
  const u64 seed = 99;
  Retrier retrier(policy, seed);
  Rng shadow(seed);
  for (u32 i = 0; i < 3; ++i) {
    EXPECT_EQ(retrier.NextDelay(), policy.NominalDelay(i));
    shadow.NextDouble();  // the draw still happens at jitter == 0
  }
  // Same position check as above: the next jittered policy would read the
  // 4th draw. Compare against a fresh retrier fast-forwarded by hand.
  Retrier fresh(policy, seed);
  fresh.NextDelay();
  fresh.NextDelay();
  fresh.NextDelay();
  EXPECT_EQ(fresh.NextDelay(), retrier.NextDelay());
}

TEST(Retrier, ExhaustedAfterMaxAttemptsAndResetRearms) {
  RetryPolicy policy;
  policy.base = 10;
  policy.max_attempts = 3;
  policy.jitter = 0.0;
  Retrier retrier(policy, 1);
  EXPECT_FALSE(retrier.Exhausted());
  retrier.NextDelay();
  retrier.NextDelay();
  EXPECT_FALSE(retrier.Exhausted());
  retrier.NextDelay();
  EXPECT_TRUE(retrier.Exhausted());
  retrier.Reset();
  EXPECT_FALSE(retrier.Exhausted());
  EXPECT_EQ(retrier.attempt(), 0u);
}

TEST(Retrier, ResetRestartsBackoffWithoutRewindingRng) {
  RetryPolicy policy;
  policy.base = 1000;
  policy.multiplier = 4.0;
  policy.max_attempts = 8;
  policy.jitter = 0.3;
  const u64 seed = 77;
  Retrier retrier(policy, seed);
  Rng shadow(seed);
  const auto jittered = [&policy](u32 attempt, double draw) -> u64 {
    const double unit = draw * 2.0 - 1.0;
    const double d =
        static_cast<double>(policy.NominalDelay(attempt)) * (1.0 + policy.jitter * unit);
    return d <= 1.0 ? 1 : static_cast<u64>(d);
  };
  EXPECT_EQ(retrier.NextDelay(), jittered(0, shadow.NextDouble()));
  EXPECT_EQ(retrier.NextDelay(), jittered(1, shadow.NextDouble()));
  retrier.Reset();
  // Backoff restarts at attempt 0, but the jitter draw is the THIRD in the
  // stream — Reset must not rewind it, or two operations retried in sequence
  // would reuse jitter and correlate.
  EXPECT_EQ(retrier.NextDelay(), jittered(0, shadow.NextDouble()));
}

}  // namespace
}  // namespace emu
