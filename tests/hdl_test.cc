#include <gtest/gtest.h>

#include <vector>

#include "src/hdl/fifo.h"
#include "src/hdl/module.h"
#include "src/hdl/process.h"
#include "src/hdl/resource_model.h"
#include "src/hdl/signal.h"
#include "src/hdl/simulator.h"

namespace emu {
namespace {

// --- Simulator basics --------------------------------------------------------

TEST(Simulator, CyclePeriodMatchesClock) {
  Simulator sim(200'000'000);
  EXPECT_EQ(sim.cycle_period_ps(), 5000);  // 200 MHz -> 5 ns
  Simulator fast(250'000'000);
  EXPECT_EQ(fast.cycle_period_ps(), 4000);  // P4FPGA baseline clock
}

TEST(Simulator, NowAdvancesPerStep) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0u);
  sim.Step();
  EXPECT_EQ(sim.now(), 1u);
  sim.Run(9);
  EXPECT_EQ(sim.now(), 10u);
  EXPECT_EQ(sim.NowPs(), 10 * 5000);
}

HwProcess CountingProcess(Reg<u64>& counter) {
  for (;;) {
    counter.Write(counter.Read() + 1);
    co_await Pause();
  }
}

TEST(Simulator, ProcessRunsOncePerCycle) {
  Simulator sim;
  Reg<u64> counter(sim, 0);
  sim.AddProcess(CountingProcess(counter), "counter");
  sim.Run(5);
  EXPECT_EQ(counter.Read(), 5u);
}

HwProcess FiniteProcess(Reg<u64>& out, int steps) {
  for (int i = 0; i < steps; ++i) {
    out.Write(out.Read() + 1);
    co_await Pause();
  }
}

TEST(Simulator, FiniteProcessStopsAfterCompletion) {
  Simulator sim;
  Reg<u64> out(sim, 0);
  sim.AddProcess(FiniteProcess(out, 3), "finite");
  EXPECT_EQ(sim.live_process_count(), 1u);
  sim.Run(10);
  EXPECT_EQ(out.Read(), 3u);
  EXPECT_EQ(sim.live_process_count(), 0u);
}

TEST(Simulator, RunUntilStopsEarly) {
  Simulator sim;
  Reg<u64> counter(sim, 0);
  sim.AddProcess(CountingProcess(counter), "counter");
  EXPECT_TRUE(sim.RunUntil([&] { return counter.Read() >= 4; }, 100));
  EXPECT_EQ(counter.Read(), 4u);
  EXPECT_EQ(sim.now(), 4u);
}

TEST(Simulator, RunUntilReportsTimeout) {
  Simulator sim;
  EXPECT_FALSE(sim.RunUntil([] { return false; }, 10));
  EXPECT_EQ(sim.now(), 10u);
}

// --- Register semantics ------------------------------------------------------

TEST(Reg, WriteVisibleOnlyAfterCommit) {
  Simulator sim;
  Reg<int> reg(sim, 0);
  reg.Write(42);
  EXPECT_EQ(reg.Read(), 0);   // pre-edge
  EXPECT_EQ(reg.Pending(), 42);
  sim.Step();
  EXPECT_EQ(reg.Read(), 42);  // post-edge
}

// Two processes exchanging values through registers in the same cycle must
// both observe pre-edge state: a classic two-register swap works without an
// intermediate temp, exactly as in RTL.
HwProcess SwapHalf(Reg<int>& from, Reg<int>& to) {
  for (;;) {
    to.Write(from.Read());
    co_await Pause();
  }
}

TEST(Reg, NonBlockingSwap) {
  Simulator sim;
  Reg<int> a(sim, 1);
  Reg<int> b(sim, 2);
  sim.AddProcess(SwapHalf(a, b), "a_to_b");
  sim.AddProcess(SwapHalf(b, a), "b_to_a");
  sim.Step();
  EXPECT_EQ(a.Read(), 2);
  EXPECT_EQ(b.Read(), 1);
  sim.Step();
  EXPECT_EQ(a.Read(), 1);
  EXPECT_EQ(b.Read(), 2);
}

// --- PauseFor ----------------------------------------------------------------

HwProcess SleepyProcess(Reg<u64>& out) {
  out.Write(1);
  co_await PauseFor(3);
  out.Write(2);
  co_await Pause();
}

TEST(PauseFor, SleepsRequestedCycles) {
  Simulator sim;
  Reg<u64> out(sim, 0);
  sim.AddProcess(SleepyProcess(out), "sleepy");
  sim.Step();
  EXPECT_EQ(out.Read(), 1u);
  sim.Step();
  sim.Step();
  EXPECT_EQ(out.Read(), 1u);  // still sleeping
  sim.Step();
  EXPECT_EQ(out.Read(), 2u);
}

HwProcess ZeroPauseProcess(Reg<u64>& out) {
  co_await PauseFor(0);  // must be a no-op
  out.Write(7);
  co_await Pause();
}

TEST(PauseFor, ZeroCyclesIsNoOp) {
  Simulator sim;
  Reg<u64> out(sim, 0);
  sim.AddProcess(ZeroPauseProcess(out), "zero");
  sim.Step();
  EXPECT_EQ(out.Read(), 7u);
}

// --- Handshake between processes (Fig. 5 style) ------------------------------

struct Handshake {
  Reg<bool> ready;
  Reg<bool> enable;
  Reg<int> data;
  explicit Handshake(Simulator& sim) : ready(sim, false), enable(sim, false), data(sim, 0) {}
};

HwProcess HandshakeProducer(Handshake& hs, int payload) {
  while (!hs.ready.Read()) {
    co_await Pause();
  }
  hs.data.Write(payload);
  hs.enable.Write(true);
  co_await Pause();
  hs.enable.Write(false);
  co_await Pause();
}

HwProcess HandshakeConsumer(Handshake& hs, Reg<int>& received) {
  hs.ready.Write(true);
  co_await Pause();
  while (!hs.enable.Read()) {
    co_await Pause();
  }
  received.Write(hs.data.Read());
  hs.ready.Write(false);
  co_await Pause();
}

TEST(Handshake, ReadyEnableProtocolDeliversData) {
  Simulator sim;
  Handshake hs(sim);
  Reg<int> received(sim, 0);
  sim.AddProcess(HandshakeProducer(hs, 99), "producer");
  sim.AddProcess(HandshakeConsumer(hs, received), "consumer");
  ASSERT_TRUE(sim.RunUntil([&] { return received.Read() == 99; }, 20));
}

// --- SyncFifo ----------------------------------------------------------------

TEST(SyncFifo, PushVisibleAfterCommit) {
  Simulator sim;
  SyncFifo<int> fifo(sim, 4, 32);
  EXPECT_TRUE(fifo.Empty());
  EXPECT_TRUE(fifo.Push(1));
  EXPECT_TRUE(fifo.Empty());  // not yet committed
  sim.Step();
  EXPECT_EQ(fifo.Size(), 1u);
  EXPECT_EQ(fifo.Front(), 1);
}

TEST(SyncFifo, RespectsDepthIncludingPendingPushes) {
  Simulator sim;
  SyncFifo<int> fifo(sim, 2, 32);
  EXPECT_TRUE(fifo.Push(1));
  EXPECT_TRUE(fifo.Push(2));
  EXPECT_FALSE(fifo.Push(3));  // full counting pending
  sim.Step();
  EXPECT_EQ(fifo.Size(), 2u);
  EXPECT_FALSE(fifo.CanPush());
}

TEST(SyncFifo, PopFreesSpaceSameCycle) {
  Simulator sim;
  SyncFifo<int> fifo(sim, 2, 32);
  fifo.Push(1);
  fifo.Push(2);
  sim.Step();
  EXPECT_EQ(fifo.Pop(), 1);
  EXPECT_TRUE(fifo.CanPush());  // pop freed a slot for this edge
  EXPECT_TRUE(fifo.Push(3));
  sim.Step();
  EXPECT_EQ(fifo.Size(), 2u);
  EXPECT_EQ(fifo.Pop(), 2);
  EXPECT_EQ(fifo.Pop(), 3);
}

TEST(SyncFifo, OrderIsFifo) {
  Simulator sim;
  SyncFifo<int> fifo(sim, 8, 32);
  for (int i = 0; i < 5; ++i) {
    fifo.Push(i);
  }
  sim.Step();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fifo.Pop(), i);
  }
}

HwProcess FifoProducer(SyncFifo<int>& fifo, int count) {
  for (int i = 0; i < count;) {
    if (fifo.Push(i)) {
      ++i;
    }
    co_await Pause();
  }
}

HwProcess FifoConsumer(SyncFifo<int>& fifo, std::vector<int>& out, int count) {
  while (static_cast<int>(out.size()) < count) {
    if (!fifo.Empty()) {
      out.push_back(fifo.Pop());
    }
    co_await Pause();
  }
}

TEST(SyncFifo, ProducerConsumerAcrossBackpressure) {
  Simulator sim;
  SyncFifo<int> fifo(sim, 2, 32);  // tiny: forces backpressure
  std::vector<int> out;
  sim.AddProcess(FifoProducer(fifo, 20), "producer");
  sim.AddProcess(FifoConsumer(fifo, out, 20), "consumer");
  ASSERT_TRUE(sim.RunUntil([&] { return out.size() == 20; }, 200));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(out[static_cast<usize>(i)], i);
  }
}

// --- Resource model -----------------------------------------------------------

TEST(ResourceModel, CamIpMatchesCalibration) {
  // 256 x 48-bit CAM: the paper attributes ~85% of the Emu switch's 3509
  // LUTs to this block, i.e. ~2980.
  const ResourceUsage cam = CamIpResources(256, 48, 8);
  EXPECT_NEAR(static_cast<double>(cam.luts), 2980.0, 15.0);
  EXPECT_GT(cam.bram_units, 0u);
}

TEST(ResourceModel, LogicCamCostsMoreLutsNoBram) {
  const ResourceUsage ip = CamIpResources(256, 48, 8);
  const ResourceUsage logic = LogicCamResources(256, 48, 8);
  EXPECT_GT(logic.luts, ip.luts);
  EXPECT_EQ(logic.bram_units, 0u);
}

TEST(ResourceModel, HlsControlCostsMoreThanRtl) {
  const ResourceUsage hls = HlsControlResources(12, 256);
  const ResourceUsage rtl = RtlControlResources(12, 256);
  EXPECT_GT(hls.luts, rtl.luts);
  EXPECT_GT(hls.regs, rtl.regs);
}

TEST(ResourceModel, BramScalesWithBits) {
  EXPECT_EQ(BramResources(18432).bram_units, 1u);
  EXPECT_EQ(BramResources(18433).bram_units, 2u);
  EXPECT_EQ(BramResources(10 * 18432).bram_units, 10u);
}

TEST(ResourceModel, UsageAddition) {
  ResourceUsage a{10, 20, 1};
  ResourceUsage b{5, 6, 2};
  const ResourceUsage sum = a + b;
  EXPECT_EQ(sum.luts, 15u);
  EXPECT_EQ(sum.regs, 26u);
  EXPECT_EQ(sum.bram_units, 3u);
}

// --- Module / Design -----------------------------------------------------------

class TestModule : public Module {
 public:
  TestModule(Simulator& sim, std::string name, ResourceUsage usage)
      : Module(sim, std::move(name)) {
    AddResources(usage);
  }
};

TEST(Design, SumsModuleResources) {
  Simulator sim;
  TestModule a(sim, "a", ResourceUsage{100, 50, 1});
  TestModule b(sim, "b", ResourceUsage{200, 70, 2});
  Design design;
  design.Add(a);
  design.Add(b);
  const ResourceUsage total = design.TotalResources();
  EXPECT_EQ(total.luts, 300u);
  EXPECT_EQ(total.regs, 120u);
  EXPECT_EQ(total.bram_units, 3u);
  const auto per_module = design.PerModule();
  ASSERT_EQ(per_module.size(), 2u);
  EXPECT_EQ(per_module[0].first, "a");
}

}  // namespace
}  // namespace emu
