// The direction subsystem: CASP machine, command language, direction
// packets, and the Fig. 11 controller embedding — including the §5.5
// checksum-bug hunt re-enacted end to end.
#include <gtest/gtest.h>

#include "src/core/targets.h"
#include "src/debug/casp_machine.h"
#include "src/debug/command_compiler.h"
#include "src/debug/command_parser.h"
#include "src/debug/controller.h"
#include "src/debug/direction_packet.h"
#include "src/net/udp.h"
#include "src/services/dns_service.h"
#include "src/services/memcached_service.h"

namespace emu {
namespace {

// --- CaspMachine ---------------------------------------------------------------

TEST(CaspMachine, CountersDefaultZeroAndStore) {
  CaspMachine machine;
  EXPECT_EQ(machine.counter("x"), 0u);
  EXPECT_FALSE(machine.HasCounter("x"));
  machine.set_counter("x", 7);
  EXPECT_EQ(machine.counter("x"), 7u);
  EXPECT_TRUE(machine.HasCounter("x"));
}

TEST(CaspMachine, ProcedureArithmetic) {
  CaspMachine machine;
  const u16 out = machine.InternCounter("out");
  CaspProgram program = {
      {CaspOp::kPushConst, 20, 0},
      {CaspOp::kPushConst, 22, 0},
      {CaspOp::kAdd, 0, 0},
      {CaspOp::kStoreCounter, 0, out},
      {CaspOp::kHalt, 0, 0},
  };
  machine.InstallProcedure("p", "t", program);
  EXPECT_TRUE(machine.Activate("p"));
  EXPECT_EQ(machine.counter("out"), 42u);
}

TEST(CaspMachine, ReadsBoundVariables) {
  CaspMachine machine;
  u64 value = 5;
  machine.BindVariable({"v", [&] { return value; }, nullptr});
  const u16 out = machine.InternCounter("out");
  auto var = machine.VariableId("v");
  ASSERT_TRUE(var.ok());
  CaspProgram program = {
      {CaspOp::kPushVar, 0, *var},
      {CaspOp::kStoreCounter, 0, out},
  };
  machine.InstallProcedure("p", "t", program);
  machine.Activate("p");
  EXPECT_EQ(machine.counter("out"), 5u);
  value = 9;
  machine.Activate("p");
  EXPECT_EQ(machine.counter("out"), 9u);
}

TEST(CaspMachine, WritesVariablesWithSetter) {
  CaspMachine machine;
  u64 value = 0;
  machine.BindVariable({"v", [&] { return value; }, [&](u64 v) { value = v; }});
  auto var = machine.VariableId("v");
  CaspProgram program = {
      {CaspOp::kPushConst, 123, 0},
      {CaspOp::kStoreVar, 0, *var},
  };
  machine.InstallProcedure("p", "t", program);
  machine.Activate("p");
  EXPECT_EQ(value, 123u);
}

TEST(CaspMachine, BreakHaltsAndResume) {
  CaspMachine machine;
  CaspProgram program = {{CaspOp::kBreak, 0, 0}};
  machine.InstallProcedure("p", "t", program);
  EXPECT_FALSE(machine.Activate("p"));
  EXPECT_TRUE(machine.broken());
  machine.Resume();
  EXPECT_FALSE(machine.broken());
}

TEST(CaspMachine, TraceAppendImplementsFig7) {
  CaspMachine machine;
  const u16 array = machine.DeclareArray("buf", 2);
  CaspProgram program = {
      {CaspOp::kPushConst, 11, 0},
      {CaspOp::kTraceAppend, 0, array},
  };
  machine.InstallProcedure("p", "t", program);
  EXPECT_TRUE(machine.Activate("p"));   // logs 11
  EXPECT_TRUE(machine.Activate("p"));   // logs 11 again: buffer now full
  EXPECT_FALSE(machine.Activate("p"));  // Fig. 7: overflow -> break
  const TraceBuffer* buffer = machine.FindArray("buf");
  ASSERT_NE(buffer, nullptr);
  EXPECT_EQ(buffer->index, 2u);
  EXPECT_EQ(buffer->overflow, 1u);
  EXPECT_TRUE(buffer->Full());
}

TEST(CaspMachine, EmitCollectsOutput) {
  CaspMachine machine;
  const u16 label = machine.InternLabel("csum");
  CaspProgram program = {
      {CaspOp::kPushConst, 0xbeef, 0},
      {CaspOp::kEmit, 0, label},
  };
  machine.InstallProcedure("p", "t", program);
  machine.Activate("p");
  const auto output = machine.TakeOutput();
  ASSERT_EQ(output.size(), 1u);
  EXPECT_EQ(output[0], "csum=48879");
  EXPECT_TRUE(machine.TakeOutput().empty());
}

TEST(CaspMachine, JumpsAndConditionals) {
  CaspMachine machine;
  const u16 out = machine.InternCounter("out");
  // if (0) out = 1; else out = 2;
  CaspProgram program = {
      {CaspOp::kPushConst, 0, 0},
      {CaspOp::kJumpIfZero, 5, 0},
      {CaspOp::kPushConst, 1, 0},
      {CaspOp::kStoreCounter, 0, out},
      {CaspOp::kJump, 7, 0},
      {CaspOp::kPushConst, 2, 0},
      {CaspOp::kStoreCounter, 0, out},
      {CaspOp::kHalt, 0, 0},
  };
  machine.InstallProcedure("p", "t", program);
  machine.Activate("p");
  EXPECT_EQ(machine.counter("out"), 2u);
}

TEST(CaspMachine, StepBudgetStopsRunawayPrograms) {
  CaspMachine machine;
  CaspProgram program = {{CaspOp::kJump, 0, 0}};  // infinite loop
  machine.InstallProcedure("p", "t", program);
  EXPECT_TRUE(machine.Activate("p"));  // terminates via the budget
}

TEST(CaspMachine, RemoveProcedureByTag) {
  CaspMachine machine;
  machine.InstallProcedure("p", "a", {{CaspOp::kBreak, 0, 0}});
  machine.InstallProcedure("p", "b", {{CaspOp::kHalt, 0, 0}});
  EXPECT_EQ(machine.ProcedureCount("p"), 2u);
  machine.RemoveProcedure("p", "a");
  EXPECT_EQ(machine.ProcedureCount("p"), 1u);
  EXPECT_TRUE(machine.Activate("p"));  // break is gone
}

TEST(CaspMachine, BacktraceTracksCallStack) {
  CaspMachine machine;
  machine.EnterFunction("main");
  machine.EnterFunction("handle_query");
  EXPECT_EQ(machine.Backtrace(), (std::vector<std::string>{"main", "handle_query"}));
  machine.LeaveFunction();
  EXPECT_EQ(machine.Backtrace(), (std::vector<std::string>{"main"}));
}

// --- Command parser --------------------------------------------------------------

TEST(CommandParser, ParsesAllTable2Forms) {
  EXPECT_EQ(ParseDirectionCommand("print csum")->kind, DirectionKind::kPrint);
  EXPECT_EQ(ParseDirectionCommand("break main_loop")->kind, DirectionKind::kBreak);
  EXPECT_EQ(ParseDirectionCommand("unbreak main_loop")->kind, DirectionKind::kUnbreak);
  EXPECT_EQ(ParseDirectionCommand("backtrace")->kind, DirectionKind::kBacktrace);
  EXPECT_EQ(ParseDirectionCommand("watch csum")->kind, DirectionKind::kWatch);
  EXPECT_EQ(ParseDirectionCommand("unwatch csum")->kind, DirectionKind::kUnwatch);
  EXPECT_EQ(ParseDirectionCommand("count reads csum")->kind, DirectionKind::kCountReads);
  EXPECT_EQ(ParseDirectionCommand("count writes csum")->kind, DirectionKind::kCountWrites);
  EXPECT_EQ(ParseDirectionCommand("count calls handle")->kind, DirectionKind::kCountCalls);
  EXPECT_EQ(ParseDirectionCommand("trace start csum")->kind, DirectionKind::kTraceStart);
  EXPECT_EQ(ParseDirectionCommand("trace stop csum")->kind, DirectionKind::kTraceStop);
  EXPECT_EQ(ParseDirectionCommand("trace clear csum")->kind, DirectionKind::kTraceClear);
  EXPECT_EQ(ParseDirectionCommand("trace print csum")->kind, DirectionKind::kTracePrint);
  EXPECT_EQ(ParseDirectionCommand("trace full csum")->kind, DirectionKind::kTraceFull);
}

TEST(CommandParser, ParsesConditions) {
  auto command = ParseDirectionCommand("break main_loop if gets > 100");
  ASSERT_TRUE(command.ok());
  ASSERT_TRUE(command->condition.has_value());
  EXPECT_EQ(command->condition->variable, "gets");
  EXPECT_EQ(command->condition->op, ConditionOp::kGt);
  EXPECT_EQ(command->condition->constant, 100u);
}

TEST(CommandParser, ParsesTraceLength) {
  auto command = ParseDirectionCommand("trace start csum 64");
  ASSERT_TRUE(command.ok());
  EXPECT_EQ(command->length, 64u);
  auto with_cond = ParseDirectionCommand("trace start csum 8 if csum == 0");
  ASSERT_TRUE(with_cond.ok());
  EXPECT_EQ(with_cond->length, 8u);
  ASSERT_TRUE(with_cond->condition.has_value());
}

TEST(CommandParser, RejectsMalformed) {
  EXPECT_FALSE(ParseDirectionCommand("").ok());
  EXPECT_FALSE(ParseDirectionCommand("print").ok());
  EXPECT_FALSE(ParseDirectionCommand("count sideways x").ok());
  EXPECT_FALSE(ParseDirectionCommand("trace sideways x").ok());
  EXPECT_FALSE(ParseDirectionCommand("break L if x <>").ok());
  EXPECT_FALSE(ParseDirectionCommand("frobnicate x").ok());
  EXPECT_FALSE(ParseDirectionCommand("watch x if y ~= 3").ok());
}

TEST(CommandParser, FormatRoundTrips) {
  for (const char* text :
       {"print csum", "break main_loop if gets > 100", "trace start csum 64",
        "count writes csum", "backtrace"}) {
    auto command = ParseDirectionCommand(text);
    ASSERT_TRUE(command.ok()) << text;
    EXPECT_EQ(FormatDirectionCommand(*command), text);
  }
}

// --- Compiler + controller ---------------------------------------------------------

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : controller_("main_loop") {
    value_ = 0;
    controller_.machine().BindVariable(
        {"v", [this] { return value_; }, [this](u64 v) { value_ = v; }});
  }

  DirectionController controller_;
  u64 value_;
};

TEST_F(ControllerTest, PrintReadsVariableNow) {
  value_ = 77;
  EXPECT_EQ(controller_.HandleCommandText("print v"), "v=77");
}

TEST_F(ControllerTest, PrintUnknownVariableErrors) {
  EXPECT_NE(controller_.HandleCommandText("print nope").find("error"), std::string::npos);
}

TEST_F(ControllerTest, BreakFiresAtExtensionPoint) {
  controller_.HandleCommandText("break main_loop");
  EXPECT_FALSE(controller_.Activate("main_loop"));
  EXPECT_TRUE(controller_.broken());
  controller_.Resume();
  controller_.HandleCommandText("unbreak main_loop");
  EXPECT_TRUE(controller_.Activate("main_loop"));
}

TEST_F(ControllerTest, ConditionalBreakOnlyWhenConditionHolds) {
  controller_.HandleCommandText("break main_loop if v > 10");
  value_ = 5;
  EXPECT_TRUE(controller_.Activate("main_loop"));
  value_ = 11;
  EXPECT_FALSE(controller_.Activate("main_loop"));
}

TEST_F(ControllerTest, WatchBreaksOnChange) {
  controller_.HandleCommandText("watch v");
  value_ = 1;
  EXPECT_TRUE(controller_.Activate("main_loop"));  // arming pass
  EXPECT_TRUE(controller_.Activate("main_loop"));  // unchanged
  value_ = 2;
  EXPECT_FALSE(controller_.Activate("main_loop"));  // changed -> break
  controller_.Resume();
  EXPECT_TRUE(controller_.Activate("main_loop"));  // stable again
  controller_.HandleCommandText("unwatch v");
  value_ = 3;
  EXPECT_TRUE(controller_.Activate("main_loop"));
}

TEST_F(ControllerTest, WatchWithConditionFiltersChanges) {
  controller_.HandleCommandText("watch v if v == 9");
  value_ = 1;
  controller_.Activate("main_loop");  // arm
  value_ = 5;
  EXPECT_TRUE(controller_.Activate("main_loop"));  // changed but != 9
  value_ = 9;
  EXPECT_FALSE(controller_.Activate("main_loop"));
}

TEST_F(ControllerTest, TraceRecordsValuesUntilFull) {
  controller_.HandleCommandText("trace start v 3");
  for (u64 i = 1; i <= 3; ++i) {
    value_ = i * 10;
    EXPECT_TRUE(controller_.Activate("main_loop"));
  }
  EXPECT_EQ(controller_.HandleCommandText("trace print v"), "v: 10 20 30");
  EXPECT_EQ(controller_.HandleCommandText("trace full v"), "full");
  // Next activation overflows per Fig. 7: break.
  value_ = 40;
  EXPECT_FALSE(controller_.Activate("main_loop"));
  controller_.Resume();
  controller_.HandleCommandText("trace clear v");
  EXPECT_EQ(controller_.HandleCommandText("trace full v"), "not full");
  controller_.HandleCommandText("trace stop v");
  value_ = 50;
  EXPECT_TRUE(controller_.Activate("main_loop"));
}

TEST_F(ControllerTest, CountWritesViaHooks) {
  controller_.HandleCommandText("count writes v");
  controller_.NoteWrite("v");
  controller_.NoteWrite("v");
  controller_.NoteWrite("other");  // not counted: no command for it
  EXPECT_EQ(controller_.machine().counter(WriteCounterName("v")), 2u);
  EXPECT_EQ(controller_.machine().counter(WriteCounterName("other")), 0u);
}

TEST_F(ControllerTest, CountCallsViaHooks) {
  controller_.HandleCommandText("count calls handler");
  controller_.NoteCall("handler");
  controller_.NoteCall("handler");
  controller_.NoteCall("handler");
  EXPECT_EQ(controller_.machine().counter(CallCounterName("handler")), 3u);
}

TEST_F(ControllerTest, BacktraceReportsStack) {
  controller_.machine().EnterFunction("main");
  controller_.machine().EnterFunction("parse");
  const std::string out = controller_.HandleCommandText("backtrace");
  EXPECT_NE(out.find("#0 parse"), std::string::npos);
  EXPECT_NE(out.find("#1 main"), std::string::npos);
}

TEST_F(ControllerTest, FeatureResourceDeltasAreSmall) {
  // Table 5: utilization for +R/+W/+I stays within a few percent of the
  // artefact; here the controller's own deltas are tens to hundreds of LUTs.
  const u64 base = controller_.Resources().luts;
  DirectionController with_read;
  with_read.EnableFeature(ControllerFeature::kRead);
  DirectionController with_write;
  with_write.EnableFeature(ControllerFeature::kWrite);
  DirectionController with_inc;
  with_inc.EnableFeature(ControllerFeature::kIncrement);
  EXPECT_GT(with_read.Resources().luts, 0u);
  EXPECT_LT(with_read.Resources().luts, base + 500);
  EXPECT_GT(with_write.Resources().luts, with_read.Resources().luts);
  EXPECT_LT(with_inc.Resources().luts, base + 500);
}

// --- Direction packets ---------------------------------------------------------------

const MacAddress kDirectorMac = MacAddress::FromU48(0x02'00'00'00'd0'01);
const MacAddress kDutMac = MacAddress::FromU48(0x02'00'00'00'ee'04);

TEST(DirectionPacket, RoundTrip) {
  Packet packet =
      MakeDirectionPacket(kDutMac, kDirectorMac, DirectionPacketKind::kCommand, 7, "print v");
  EXPECT_TRUE(IsDirectionPacket(packet));
  auto payload = ParseDirectionPacket(packet);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->kind, DirectionPacketKind::kCommand);
  EXPECT_EQ(payload->sequence, 7);
  EXPECT_EQ(payload->text, "print v");
}

TEST(DirectionPacket, NormalFramesAreNotDirection) {
  Packet udp = MakeUdpPacket({kDutMac, kDirectorMac, Ipv4Address(1, 1, 1, 1),
                              Ipv4Address(2, 2, 2, 2), 1, 2},
                             std::vector<u8>{1});
  EXPECT_FALSE(IsDirectionPacket(udp));
}

TEST(DirectionPacket, BadMagicRejected) {
  Packet packet =
      MakeDirectionPacket(kDutMac, kDirectorMac, DirectionPacketKind::kCommand, 1, "x");
  packet[kEthernetHeaderSize] ^= 0xff;
  EXPECT_FALSE(IsDirectionPacket(packet));
  EXPECT_FALSE(ParseDirectionPacket(packet).ok());
}

TEST(DirectionPacket, ReplySwapsAddressesAndKeepsSequence) {
  Packet request =
      MakeDirectionPacket(kDutMac, kDirectorMac, DirectionPacketKind::kCommand, 42, "print v");
  Packet reply = MakeDirectionReply(request, "v=1");
  EthernetView eth(reply);
  EXPECT_EQ(eth.destination(), kDirectorMac);
  EXPECT_EQ(eth.source(), kDutMac);
  auto payload = ParseDirectionPacket(reply);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->kind, DirectionPacketKind::kReply);
  EXPECT_EQ(payload->sequence, 42);
  EXPECT_EQ(payload->text, "v=1");
}

// --- End-to-end: the §5.5 checksum hunt -----------------------------------------------

const Ipv4Address kClientIp(10, 0, 0, 9);
const MacAddress kClientMac = MacAddress::FromU48(0x02'00'00'00'cc'05);

class DirectedMemcachedTest : public ::testing::Test {
 protected:
  DirectedMemcachedTest()
      : controller_("main_loop"), directed_(service_, controller_), target_(directed_) {
    service_.AttachController(&controller_);
  }

  Packet McFrame(const McRequest& request) {
    McRequest copy = request;
    copy.protocol = config_.protocol;
    return MakeUdpPacket(
        {config_.mac, kClientMac, kClientIp, config_.ip, 31000, kMemcachedPort},
        BuildMcRequest(copy));
  }

  std::string SendCommand(const std::string& text, u16 sequence = 1) {
    Packet packet = MakeDirectionPacket(config_.mac, kDirectorMac,
                                        DirectionPacketKind::kCommand, sequence, text);
    auto reply = target_.SendAndCollect(0, std::move(packet));
    EXPECT_TRUE(reply.ok());
    if (!reply.ok()) {
      return "";
    }
    auto payload = ParseDirectionPacket(*reply);
    EXPECT_TRUE(payload.ok());
    return payload.ok() ? payload->text : "";
  }

  MemcachedConfig config_;
  MemcachedService service_{config_};
  DirectionController controller_;
  DirectedService directed_;
  FpgaTarget target_;
};

TEST_F(DirectedMemcachedTest, NormalTrafficUnaffectedByController) {
  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "k";
  set.value = "v";
  auto reply = target_.SendAndCollect(0, McFrame(set));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(service_.sets(), 1u);
  EXPECT_EQ(directed_.direction_packets(), 0u);
}

TEST_F(DirectedMemcachedTest, DirectionPacketsAnswered) {
  const std::string reply = SendCommand("print gets");
  EXPECT_EQ(reply, "gets=0");
  EXPECT_EQ(directed_.direction_packets(), 1u);
}

TEST_F(DirectedMemcachedTest, ChecksumHuntFindsInjectedBug) {
  service_.InjectChecksumBug(true);

  // Serve a long GET (carry-heavy checksum) with the bug present.
  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "bug";
  set.value = std::string(64, 'x');
  ASSERT_TRUE(target_.SendAndCollect(0, McFrame(set)).ok());
  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "bug";
  auto bad_reply = target_.SendAndCollect(0, McFrame(get));
  ASSERT_TRUE(bad_reply.ok());
  Ipv4View bad_ip(*bad_reply);
  UdpView bad_udp(*bad_reply, bad_ip.payload_offset());
  ASSERT_FALSE(bad_udp.ChecksumValid(bad_ip));  // the symptom

  // Direct the running program: report the checksum the hardware computed.
  const std::string reported = SendCommand("print checksum");
  ASSERT_EQ(reported.rfind("checksum=", 0), 0u);
  const u64 reported_value = std::stoull(reported.substr(9));
  EXPECT_EQ(reported_value, bad_udp.checksum());

  // The director compares against the expected software checksum, spots the
  // fold bug, and hot-fixes it by writing the bound variable.
  SendCommand("print inject_bug");
  Packet fix = MakeDirectionPacket(config_.mac, kDirectorMac,
                                   DirectionPacketKind::kCommand, 9, "print inject_bug");
  (void)fix;
  // Write through the bound variable via the controller's machine (the +W
  // feature): inject_bug = 0.
  controller_.machine();
  auto var = controller_.machine().VariableId("inject_bug");
  ASSERT_TRUE(var.ok());
  CaspProgram fix_program = {
      {CaspOp::kPushConst, 0, 0},
      {CaspOp::kStoreVar, 0, *var},
  };
  controller_.machine().InstallProcedure("main_loop", "fix", fix_program);

  auto fixed_reply = target_.SendAndCollect(0, McFrame(get));
  ASSERT_TRUE(fixed_reply.ok());
  Ipv4View ip(*fixed_reply);
  UdpView udp(*fixed_reply, ip.payload_offset());
  EXPECT_TRUE(udp.ChecksumValid(ip));  // bug gone
  EXPECT_FALSE(service_.checksum_bug_injected());
}

TEST_F(DirectedMemcachedTest, BreakpointStallsServiceUntilResume) {
  SendCommand("break main_loop");
  target_.TakeEgress();  // drop the direction reply
  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "k";
  // The GET hits the breakpoint: no reply while broken.
  target_.Inject(0, McFrame(get));
  target_.Run(100'000);
  EXPECT_TRUE(target_.TakeEgress().empty());
  EXPECT_TRUE(controller_.broken());

  // The director resumes; the stalled request drains.
  controller_.Resume();
  ASSERT_TRUE(target_.RunUntilEgressCount(1, 500'000));
  target_.TakeEgress();
  // And unbreak makes the next request flow without stalling.
  SendCommand("unbreak main_loop", 2);
  target_.TakeEgress();
  auto reply = target_.SendAndCollect(0, McFrame(get));
  EXPECT_TRUE(reply.ok());
}

TEST_F(DirectedMemcachedTest, CountCallsOverDirectionPackets) {
  SendCommand("count calls handle_request");
  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "nope";
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(target_.SendAndCollect(0, McFrame(get)).ok());
  }
  EXPECT_EQ(controller_.machine().counter(CallCounterName("handle_request")), 3u);
}

TEST_F(DirectedMemcachedTest, TraceChecksumOverRequests) {
  SendCommand("trace start checksum 8");
  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "a";
  set.value = "1";
  ASSERT_TRUE(target_.SendAndCollect(0, McFrame(set)).ok());
  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "a";
  ASSERT_TRUE(target_.SendAndCollect(0, McFrame(get)).ok());
  const std::string trace = SendCommand("trace print checksum", 3);
  // Two service requests ran after the trace install; the buffer holds the
  // checksum values observed at each main-loop activation.
  EXPECT_EQ(trace.rfind("checksum:", 0), 0u);
  EXPECT_NE(trace, "checksum:");
}

// Directed DNS — Table 5's other artefact.
TEST(DirectedDns, PrintAndWatchResolvedCounter) {
  DnsServiceConfig config;
  DnsService service(config);
  DirectionController controller("main_loop");
  service.AttachController(&controller);
  ASSERT_TRUE(service.AddRecord("svc.lab", Ipv4Address(10, 1, 1, 1)).ok());
  DirectedService directed(service, controller);
  FpgaTarget target(directed);

  Packet query = MakeUdpPacket({config.mac, kClientMac, kClientIp, config.ip, 5555, kDnsPort},
                               BuildDnsQuery(7, "svc.lab"));
  ASSERT_TRUE(target.SendAndCollect(0, std::move(query)).ok());

  Packet direction = MakeDirectionPacket(config.mac, kDirectorMac,
                                         DirectionPacketKind::kCommand, 1, "print resolved");
  auto reply = target.SendAndCollect(0, std::move(direction));
  ASSERT_TRUE(reply.ok());
  auto payload = ParseDirectionPacket(*reply);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->text, "resolved=1");

  Packet id_query = MakeDirectionPacket(config.mac, kDirectorMac,
                                        DirectionPacketKind::kCommand, 2, "print last_id");
  reply = target.SendAndCollect(0, std::move(id_query));
  ASSERT_TRUE(reply.ok());
  payload = ParseDirectionPacket(*reply);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->text, "last_id=7");
}

}  // namespace
}  // namespace emu
