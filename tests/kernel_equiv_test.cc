// Quiescence-kernel equivalence suite.
//
// The fast path (quiescence fast-forward + epoch-lazy WaitUntil evaluation,
// src/hdl/simulator.h) is an optimization shortcut, not a semantics change:
// with SetFastPath(false) every cycle executes and every parked predicate is
// evaluated per edge — the reference semantics. These tests run the same
// workload both ways and require bit-exact agreement on everything
// observable: cycle counts, egress frames (ports and bytes), service
// counters, fault logs, and resume counts. They also pin the WaitUntil wake
// contract: parked processes wake in registration order, on exactly the edge
// the predicate first holds.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/targets.h"
#include "src/debug/controller.h"
#include "src/fault/fault_registry.h"
#include "src/fault/frame_impairer.h"
#include "src/hdl/fifo.h"
#include "src/hdl/signal.h"
#include "src/hdl/vcd_tracer.h"
#include "src/ip/bram.h"
#include "src/ip/cam.h"
#include "src/ip/hash_cam.h"
#include "src/ip/logic_cam.h"
#include "src/net/udp.h"
#include "src/services/learning_switch.h"
#include "src/services/memcached_service.h"
#include "src/services/nat_service.h"
#include "src/sim/memaslap.h"

namespace emu {
namespace {

constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;

u64 DigestEgress(const std::vector<EgressFrame>& egress) {
  u64 h = kFnvOffset;
  for (const EgressFrame& entry : egress) {
    h = (h ^ entry.port) * kFnvPrime;
    for (u8 byte : entry.frame.bytes()) {
      h = (h ^ byte) * kFnvPrime;
    }
  }
  return h;
}

// Everything a run can disagree on.
struct RunDigest {
  Cycle final_now = 0;
  usize egress_count = 0;
  u64 egress_digest = 0;
  std::vector<std::pair<std::string, u64>> metrics;
  u64 resumes_total = 0;  // per-process resumes must match edge-for-edge
  u64 edges_run = 0;
  u64 cycles_fast_forwarded = 0;

  void CaptureProfile(const Simulator& sim) {
    const SimProfile profile = sim.ProfileReport();
    edges_run = profile.edges_run;
    cycles_fast_forwarded = profile.cycles_fast_forwarded;
    for (const ProcessProfile& process : profile.processes) {
      resumes_total += process.resumes;
    }
  }
};

void ExpectEquivalent(const RunDigest& fast, const RunDigest& exact) {
  EXPECT_EQ(fast.final_now, exact.final_now);
  EXPECT_EQ(fast.egress_count, exact.egress_count);
  EXPECT_EQ(fast.egress_digest, exact.egress_digest);
  EXPECT_EQ(fast.metrics, exact.metrics);
  EXPECT_EQ(fast.resumes_total, exact.resumes_total);
  // The exact run executed every cycle; the fast run must account for the
  // same span as executed edges plus fast-forwarded cycles.
  EXPECT_EQ(fast.edges_run + fast.cycles_fast_forwarded, exact.edges_run);
  EXPECT_EQ(exact.cycles_fast_forwarded, 0u);
}

// --- Service workloads, fast vs exact -------------------------------------------

const MacAddress kHostMacs[4] = {
    MacAddress::FromU48(0x02'00'00'00'00'01), MacAddress::FromU48(0x02'00'00'00'00'02),
    MacAddress::FromU48(0x02'00'00'00'00'03), MacAddress::FromU48(0x02'00'00'00'00'04)};
const Ipv4Address kHostIps[4] = {Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                 Ipv4Address(10, 0, 0, 3), Ipv4Address(10, 0, 0, 4)};

RunDigest RunLearningSwitch(bool fast_path) {
  LearningSwitch service;
  FpgaTarget target(service);
  target.sim().SetFastPath(fast_path);
  MetricsRegistry metrics;
  service.RegisterMetrics(metrics);

  // Teach all four MACs with broadcast frames, then unicast between them in
  // bursts with long idle gaps — the idle-heavy pattern the fast path eats.
  for (u8 port = 0; port < 4; ++port) {
    target.Inject(port,
                  MakeUdpPacket({MacAddress::Broadcast(), kHostMacs[port], kHostIps[port],
                                 Ipv4Address(10, 0, 0, 99), 1, 2},
                                std::vector<u8>{port}));
    target.Run(20'000);
  }
  for (usize burst = 0; burst < 5; ++burst) {
    for (usize i = 0; i < 8; ++i) {
      const u8 src = static_cast<u8>(i % 4);
      const u8 dst = static_cast<u8>((i + 1 + burst) % 4);
      target.Inject(src, MakeUdpPacket({kHostMacs[dst], kHostMacs[src], kHostIps[src],
                                        kHostIps[dst], 1000, 2000},
                                       std::vector<u8>(1 + i, static_cast<u8>(burst))));
    }
    target.Run(50'000);
  }

  RunDigest digest;
  digest.final_now = target.sim().now();
  const auto egress = target.TakeEgress();
  digest.egress_count = egress.size();
  digest.egress_digest = DigestEgress(egress);
  digest.metrics = metrics.Snapshot();
  digest.CaptureProfile(target.sim());
  return digest;
}

TEST(KernelEquivalence, LearningSwitchBitExact) {
  const RunDigest fast = RunLearningSwitch(true);
  const RunDigest exact = RunLearningSwitch(false);
  ASSERT_GT(fast.egress_count, 0u);
  ExpectEquivalent(fast, exact);
  // The workload is idle-heavy: the fast path must actually skip cycles.
  EXPECT_GT(fast.cycles_fast_forwarded, 0u);
}

RunDigest RunNat(bool fast_path) {
  NatConfig config;
  NatService service(config);
  FpgaTarget target(service);
  target.sim().SetFastPath(fast_path);
  MetricsRegistry metrics;
  service.RegisterMetrics(metrics);

  const MacAddress host_mac = MacAddress::FromU48(0x02'00'00'00'11'10);
  for (usize i = 0; i < 30; ++i) {
    Packet frame = MakeUdpPacket(
        {config.internal_mac, host_mac, Ipv4Address(192, 168, 1, static_cast<u8>(2 + i % 8)),
         Ipv4Address(8, 8, 8, 8), static_cast<u16>(5000 + i), 53},
        std::vector<u8>{'q', static_cast<u8>(i)});
    frame.set_src_port(1);
    target.Inject(1, std::move(frame));
    target.Run(i % 3 == 0 ? 30'000 : 500);  // mixed idle gaps and back-pressure
  }
  target.Run(100'000);

  RunDigest digest;
  digest.final_now = target.sim().now();
  const auto egress = target.TakeEgress();
  digest.egress_count = egress.size();
  digest.egress_digest = DigestEgress(egress);
  digest.metrics = metrics.Snapshot();
  digest.CaptureProfile(target.sim());
  return digest;
}

TEST(KernelEquivalence, NatBitExact) {
  const RunDigest fast = RunNat(true);
  const RunDigest exact = RunNat(false);
  ASSERT_GT(fast.egress_count, 0u);
  ExpectEquivalent(fast, exact);
  EXPECT_GT(fast.cycles_fast_forwarded, 0u);
}

RunDigest RunMemcached(bool fast_path) {
  MemcachedConfig config;
  config.cores = 4;
  MemcachedService service(config);
  FpgaTarget target(service);
  target.sim().SetFastPath(fast_path);
  MetricsRegistry metrics;
  service.RegisterMetrics(metrics);

  MemaslapConfig workload;
  workload.server_mac = config.mac;
  workload.server_ip = config.ip;
  workload.key_space = 40;
  MemaslapLoadgen loadgen(workload);
  for (usize i = 0; i < loadgen.prewarm_count(); ++i) {
    target.Inject(0, loadgen.PrewarmFrame(i));
    target.Run(2'000);
  }
  for (usize i = 0; i < 60; ++i) {
    target.Inject(static_cast<u8>(i % 4), loadgen.WorkloadFrame(i));
    target.Run(i % 5 == 0 ? 20'000 : 300);
  }
  target.Run(100'000);

  RunDigest digest;
  digest.final_now = target.sim().now();
  const auto egress = target.TakeEgress();
  digest.egress_count = egress.size();
  digest.egress_digest = DigestEgress(egress);
  digest.metrics = metrics.Snapshot();
  digest.CaptureProfile(target.sim());
  return digest;
}

TEST(KernelEquivalence, MemcachedBitExact) {
  const RunDigest fast = RunMemcached(true);
  const RunDigest exact = RunMemcached(false);
  ASSERT_GT(fast.egress_count, 0u);
  ExpectEquivalent(fast, exact);
  EXPECT_GT(fast.cycles_fast_forwarded, 0u);
}

// --- Fault plans, fast vs exact --------------------------------------------------
//
// An attached registry samples armed targets per tick; across a quiescent
// jump the skipped ticks are booked in bulk. The fault log (site, tick,
// detail) and every response byte must replay identically either way.

struct FaultDigest {
  RunDigest run;
  u64 faults_fired = 0;
  u64 log_digest = 0;
};

FaultDigest RunNatUnderFaults(bool fast_path) {
  NatConfig config;
  config.max_mappings = 64;
  NatService service(config);
  FpgaTarget target(service);
  target.sim().SetFastPath(fast_path);
  MetricsRegistry metrics;
  service.RegisterMetrics(metrics);

  FaultRegistry registry(7);
  service.RegisterFaultPoints(registry);
  target.sim().AttachFaultRegistry(&registry);
  const auto plan = ParseFaultPlan(
      "nat.table_full burst 20000 60000 0.5; nat.flows bernoulli 0.001");
  if (!plan.ok()) {
    ADD_FAILURE() << "bad fault plan: " << plan.status().ToString();
    return FaultDigest{};
  }
  registry.ArmPlan(*plan);

  const MacAddress host_mac = MacAddress::FromU48(0x02'00'00'00'11'10);
  for (usize i = 0; i < 40; ++i) {
    Packet frame = MakeUdpPacket(
        {config.internal_mac, host_mac, Ipv4Address(192, 168, 1, static_cast<u8>(2 + i % 100)),
         Ipv4Address(8, 8, 8, 8), static_cast<u16>(1024 + i), 53},
        std::vector<u8>{'p'});
    frame.set_src_port(1);
    target.Inject(1, std::move(frame));
    target.Run(4'000);
  }
  registry.DisarmAll();
  target.Run(150'000);  // drain fast-forwards once disarmed

  FaultDigest digest;
  digest.run.final_now = target.sim().now();
  const auto egress = target.TakeEgress();
  digest.run.egress_count = egress.size();
  digest.run.egress_digest = DigestEgress(egress);
  digest.run.metrics = metrics.Snapshot();
  digest.run.CaptureProfile(target.sim());
  digest.faults_fired = registry.fired_total();
  digest.log_digest = registry.LogDigest();
  target.sim().AttachFaultRegistry(nullptr);
  return digest;
}

TEST(KernelEquivalence, FaultPlanReplayBitExact) {
  const FaultDigest fast = RunNatUnderFaults(true);
  const FaultDigest exact = RunNatUnderFaults(false);
  ExpectEquivalent(fast.run, exact.run);
  EXPECT_EQ(fast.faults_fired, exact.faults_fired);
  EXPECT_EQ(fast.log_digest, exact.log_digest);
  EXPECT_GT(fast.faults_fired, 0u);  // the plan actually fired
  EXPECT_GT(fast.run.cycles_fast_forwarded, 0u);  // the drain actually jumped
}

// --- VCD equivalence --------------------------------------------------------------
//
// An attached tracer pins the kernel per-edge, so its dump must be identical
// with the fast path nominally on or off.

std::string RenderSwitchVcd(bool fast_path) {
  LearningSwitch service;
  FpgaTarget target(service);
  target.sim().SetFastPath(fast_path);
  MetricsRegistry metrics;
  service.RegisterMetrics(metrics);

  VcdTracer tracer(target.sim());
  tracer.AddSignal("lookups", 16, [&] { return metrics.Get("switch.lookups"); });
  tracer.AddSignal("learned", 16, [&] { return metrics.Get("switch.learned"); });
  tracer.Sample();
  tracer.Attach();
  target.Inject(0, MakeUdpPacket({MacAddress::Broadcast(), kHostMacs[0], kHostIps[0],
                                  kHostIps[1], 1, 2},
                                 std::vector<u8>{1}));
  target.Run(5'000);
  tracer.Detach();
  return tracer.Render();
}

TEST(KernelEquivalence, AttachedVcdTraceIdentical) {
  const std::string fast = RenderSwitchVcd(true);
  const std::string exact = RenderSwitchVcd(false);
  EXPECT_EQ(fast, exact);
  EXPECT_NE(fast.find("$enddefinitions"), std::string::npos);
}

// --- WaitUntil wake semantics ----------------------------------------------------

HwProcess Consumer(SyncFifo<int>& fifo, std::vector<int>& log, int tag) {
  for (;;) {
    co_await WaitUntil([&fifo] { return !fifo.Empty(); });
    log.push_back(tag * 1000 + fifo.Pop());
    co_await Pause();
  }
}

// Two consumers parked on one FIFO: pushes wake them in registration order,
// and the loser of the race re-parks without observing anything.
void CheckWakeOrdering(bool fast_path) {
  Simulator sim;
  sim.SetFastPath(fast_path);
  SyncFifo<int> fifo(sim, "f", 8, 32);
  std::vector<int> log;
  sim.AddProcess(Consumer(fifo, log, 1), "first");
  sim.AddProcess(Consumer(fifo, log, 2), "second");
  sim.Run(10);  // both park
  EXPECT_TRUE(log.empty());

  fifo.Push(7);
  sim.Run(10);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 1007);  // the first-registered consumer wins

  fifo.Push(8);
  fifo.Push(9);
  sim.Run(10);
  // Both values land at one commit; first-registered pops first.
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[1], 1008);
  EXPECT_EQ(log[2], 2009);
}

TEST(WaitUntilTest, WakeOrderFollowsRegistrationOrderFast) { CheckWakeOrdering(true); }
TEST(WaitUntilTest, WakeOrderFollowsRegistrationOrderExact) { CheckWakeOrdering(false); }

// A predicate that is already true must not cost an edge: WaitUntil then
// continues within the same cycle, exactly like the `if (ready) work` shape
// it replaces.
HwProcess ImmediateWaiter(SyncFifo<int>& fifo, Reg<u64>& out) {
  co_await WaitUntil([&fifo] { return !fifo.Empty(); });
  out.Write(static_cast<u64>(fifo.Pop()));
  co_await Pause();
}

TEST(WaitUntilTest, TruePredicateContinuesSameCycle) {
  Simulator sim;
  SyncFifo<int> fifo(sim, "f", 4, 32);
  Reg<u64> out(sim, 0);
  fifo.Push(41);
  sim.Run(1);  // commit the push before the process first runs
  sim.AddProcess(ImmediateWaiter(fifo, out), "waiter");
  sim.Run(1);
  EXPECT_EQ(out.Read(), 41u);  // popped and written on its first edge
}

// A parked producer polling for space wakes on the same edge a
// later-registered consumer frees a slot (pop visibility is intra-cycle).
HwProcess BlockedProducer(SyncFifo<int>& fifo, int count, u64& pushes) {
  for (int i = 0; i < count; ++i) {
    co_await WaitUntil([&fifo] { return fifo.PollCanPush(); });
    fifo.Push(i);
    ++pushes;
    co_await Pause();
  }
}

HwProcess SlowDrain(SyncFifo<int>& fifo, Cycle period, u64& pops) {
  for (;;) {
    co_await PauseFor(period);
    if (!fifo.Empty()) {
      fifo.Pop();
      ++pops;
    }
  }
}

void CheckBackpressureWake(bool fast_path) {
  Simulator sim;
  sim.SetFastPath(fast_path);
  SyncFifo<int> fifo(sim, "f", 2, 32);
  u64 pushes = 0;
  u64 pops = 0;
  sim.AddProcess(BlockedProducer(fifo, 10, pushes), "producer");
  sim.AddProcess(SlowDrain(fifo, 50, pops), "drain");
  sim.Run(1'000);
  EXPECT_EQ(pushes, 10u);  // producer squeezed everything through depth 2
  EXPECT_GE(pops, 8u);
}

TEST(WaitUntilTest, BackpressuredProducerWakesOnPopFast) { CheckBackpressureWake(true); }
TEST(WaitUntilTest, BackpressuredProducerWakesOnPopExact) { CheckBackpressureWake(false); }

// A stalled FIFO un-stalls by the clock, not by any process action: the
// forced wake scheduled at stall expiry must un-park the consumer even
// though no producer bumps the epoch in between.
TEST(WaitUntilTest, StallExpiryWakesParkedConsumer) {
  Simulator sim;
  SyncFifo<int> fifo(sim, "f", 4, 32);
  std::vector<int> log;
  sim.AddProcess(Consumer(fifo, log, 1), "consumer");
  fifo.Push(5);
  sim.Run(2);  // commit, consumer pops... unless stalled first
  log.clear();
  fifo.Push(6);
  sim.Run(1);
  fifo.InjectStall(100);
  sim.Run(50);
  EXPECT_TRUE(log.empty());  // stalled: consumer sees empty
  sim.Run(100);
  ASSERT_EQ(log.size(), 1u);  // expiry wake fired with no producer activity
  EXPECT_EQ(log[0], 1006);
}

// --- Lost-wakeup regressions ------------------------------------------------------
//
// Every site that mutates state a WaitUntil predicate can observe must bump
// the wake epoch, or the fast path sleeps through the mutation while the
// exact path (which re-evaluates every parked predicate each edge) sees it.
// Each scenario below parks a watcher on one mutation site, fires the
// mutation from an otherwise-sleeping process, and requires the watcher to
// wake on the same edge with the fast path on and off.

// Runs `action` once after `at` cycles, then sleeps out of the way so the
// mutation site's own NotifyWake is the only thing that can un-park a
// watcher.
HwProcess DelayedAction(Cycle at, std::function<void()> action) {
  co_await PauseFor(at);
  action();
  co_await PauseFor(1'000'000);
}

struct WakeResult {
  bool woke = false;
  Cycle woke_at = 0;
  u64 fast_forwarded = 0;
};

HwProcess WakeWatcher(Simulator& sim, std::function<bool()> pred, WakeResult& result) {
  co_await WaitUntil([&pred] { return pred(); });
  result.woke = true;
  result.woke_at = sim.now();
  co_await PauseFor(1'000'000);
}

// A design factory builds the watched state into `sim` and returns the
// watcher predicate plus the mutation that should flip it. State is owned by
// the returned closures (shared_ptr captures) so it outlives the run.
using WakeDesign = std::function<
    std::pair<std::function<bool()>, std::function<void()>>(Simulator& sim)>;

WakeResult RunWakeScenario(bool fast_path, const WakeDesign& design) {
  Simulator sim;
  sim.SetFastPath(fast_path);
  auto [pred, mutate] = design(sim);
  WakeResult result;
  sim.AddProcess(WakeWatcher(sim, std::move(pred), result), "watcher");
  sim.AddProcess(DelayedAction(50, std::move(mutate)), "mutator");
  sim.Run(500);
  result.fast_forwarded = sim.ProfileReport().cycles_fast_forwarded;
  return result;
}

void CheckMutationWakes(const char* site, const WakeDesign& design) {
  const WakeResult exact = RunWakeScenario(false, design);
  const WakeResult fast = RunWakeScenario(true, design);
  ASSERT_TRUE(exact.woke) << site << ": scenario broken, exact mode never woke";
  EXPECT_TRUE(fast.woke) << site << ": fast path slept through the mutation (lost wakeup)";
  EXPECT_EQ(fast.woke_at, exact.woke_at) << site;
  // The run is idle-heavy by construction; a fast run that never jumped was
  // not exercising the epoch-lazy path at all.
  EXPECT_GT(fast.fast_forwarded, 0u) << site;
}

TEST(LostWakeupRegression, BramCommitWakesParkedReader) {
  CheckMutationWakes("bram.commit", [](Simulator& sim) {
    auto bram = std::make_shared<Bram>(sim, "b", 16, 32);
    return std::pair<std::function<bool()>, std::function<void()>>(
        [bram] { return bram->Read(3) == 42; }, [bram] { bram->Write(3, 42); });
  });
}

TEST(LostWakeupRegression, CamCommitWakesParkedReader) {
  CheckMutationWakes("cam.commit", [](Simulator& sim) {
    auto cam = std::make_shared<Cam>(sim, "c", 8, 16, 16);
    return std::pair<std::function<bool()>, std::function<void()>>(
        [cam] { return cam->Lookup(7).hit; }, [cam] { cam->Write(0, 7, 1); });
  });
}

TEST(LostWakeupRegression, LogicCamCommitWakesParkedReader) {
  CheckMutationWakes("logic_cam.commit", [](Simulator& sim) {
    auto cam = std::make_shared<LogicCam>(sim, "lc", 8, 16, 16);
    return std::pair<std::function<bool()>, std::function<void()>>(
        [cam] { return cam->Lookup(7).hit; }, [cam] { cam->Write(0, 7, 1); });
  });
}

TEST(LostWakeupRegression, HashCamWriteWakesParkedReader) {
  CheckMutationWakes("hash_cam.write", [](Simulator& sim) {
    auto hash = std::make_shared<HashCam>(sim, "h", 8);
    return std::pair<std::function<bool()>, std::function<void()>>(
        [hash] {
          hash->Read(7);
          return hash->matched();
        },
        [hash] { hash->Write(7, 1); });
  });
}

TEST(LostWakeupRegression, HashCamEraseWakesParkedReader) {
  CheckMutationWakes("hash_cam.erase", [](Simulator& sim) {
    auto hash = std::make_shared<HashCam>(sim, "h", 8);
    hash->Write(9, 1);  // pre-bound before any process parks
    return std::pair<std::function<bool()>, std::function<void()>>(
        [hash] {
          hash->Read(9);
          return !hash->matched();
        },
        [hash] { hash->Erase(9); });
  });
}

TEST(LostWakeupRegression, BramSeuFlipWakesParkedReader) {
  CheckMutationWakes("bram.seu", [](Simulator& sim) {
    auto bram = std::make_shared<Bram>(sim, "b", 16, 32);
    return std::pair<std::function<bool()>, std::function<void()>>(
        [bram] { return bram->Read(0) == 1; }, [bram] { bram->InjectBitFlip(0); });
  });
}

TEST(LostWakeupRegression, CamSeuFlipWakesParkedReader) {
  CheckMutationWakes("cam.seu", [](Simulator& sim) {
    auto cam = std::make_shared<Cam>(sim, "c", 8, 16, 16);
    // Bit 0 is slot 0's valid flag: the flip resurrects an all-zero entry,
    // so a parked Lookup(0) starts hitting.
    return std::pair<std::function<bool()>, std::function<void()>>(
        [cam] { return cam->Lookup(0).hit; }, [cam] { cam->InjectBitFlip(0); });
  });
}

TEST(LostWakeupRegression, CaspVariableWriteWakesParkedReader) {
  CheckMutationWakes("casp.store_var", [](Simulator& sim) {
    auto controller = std::make_shared<DirectionController>();
    controller->SetWakeHook([&sim] { sim.NotifyWake(); });
    auto value = std::make_shared<u64>(0);
    controller->machine().BindVariable(
        {"v", [value] { return *value; }, [value](u64 x) { *value = x; }});
    const auto var = controller->machine().VariableId("v");
    CaspProgram program = {{CaspOp::kPushConst, 42, 0}, {CaspOp::kStoreVar, 0, *var}};
    controller->machine().InstallProcedure("poke", "t", program);
    return std::pair<std::function<bool()>, std::function<void()>>(
        [value] { return *value == 42; }, [controller] { controller->Activate("poke"); });
  });
}

// Impairer-delayed deliveries land on the wire at a future cycle while the
// pipeline is otherwise quiescent; the port's Deliver must announce each
// arrival so the fast path replays the delayed schedule bit-exactly.
FaultDigest RunImpairedSwitch(bool fast_path) {
  LearningSwitch service;
  FpgaTarget target(service);
  target.sim().SetFastPath(fast_path);
  MetricsRegistry metrics;
  service.RegisterMetrics(metrics);

  FaultRegistry registry(23);
  FrameImpairer tap(registry, "ingress");
  target.sim().AttachFaultRegistry(&registry);
  const auto plan =
      ParseFaultPlan("ingress.delay bernoulli 0.4 30000; ingress.dup bernoulli 0.1");
  if (!plan.ok()) {
    ADD_FAILURE() << "bad fault plan: " << plan.status().ToString();
    return FaultDigest{};
  }
  registry.ArmPlan(*plan);

  for (u8 port = 0; port < 4; ++port) {
    target.Inject(port,
                  MakeUdpPacket({MacAddress::Broadcast(), kHostMacs[port], kHostIps[port],
                                 Ipv4Address(10, 0, 0, 99), 1, 2},
                                std::vector<u8>{port}));
    target.Run(20'000);
  }
  for (usize i = 0; i < 24; ++i) {
    const u8 src = static_cast<u8>(i % 4);
    const u8 dst = static_cast<u8>((i + 1) % 4);
    Packet frame = MakeUdpPacket(
        {kHostMacs[dst], kHostMacs[src], kHostIps[src], kHostIps[dst], 1000, 2000},
        std::vector<u8>(1 + i % 7, static_cast<u8>(i)));
    const Cycle now = target.sim().now();
    const FrameImpairer::Decision d = tap.Decide(now, frame.size());
    if (!d.drop) {
      // The tap runs on the cycle clock, so delay magnitudes are cycles.
      const Cycle at = now + static_cast<Cycle>(d.extra_delay_ps);
      if (d.duplicate) {
        target.Inject(src, frame, at);
      }
      target.Inject(src, std::move(frame), at);
    }
    target.Run(15'000);
  }
  registry.DisarmAll();
  target.Run(100'000);

  FaultDigest digest;
  digest.run.final_now = target.sim().now();
  const auto egress = target.TakeEgress();
  digest.run.egress_count = egress.size();
  digest.run.egress_digest = DigestEgress(egress);
  digest.run.metrics = metrics.Snapshot();
  digest.run.CaptureProfile(target.sim());
  digest.faults_fired = registry.fired_total();
  digest.log_digest = registry.LogDigest();
  digest.log_digest = digest.log_digest * kFnvPrime ^ tap.delayed();
  digest.log_digest = digest.log_digest * kFnvPrime ^ tap.duplicated();
  target.sim().AttachFaultRegistry(nullptr);
  return digest;
}

TEST(LostWakeupRegression, ImpairerDelayedDeliveryBitExact) {
  const FaultDigest fast = RunImpairedSwitch(true);
  const FaultDigest exact = RunImpairedSwitch(false);
  ExpectEquivalent(fast.run, exact.run);
  EXPECT_EQ(fast.faults_fired, exact.faults_fired);
  EXPECT_EQ(fast.log_digest, exact.log_digest);
  EXPECT_GT(fast.faults_fired, 0u);  // the delay plan actually rescheduled frames
  EXPECT_GT(fast.run.cycles_fast_forwarded, 0u);
}

// --- Forced wake inside a skipped quiescent window --------------------------------
//
// A stall expiry schedules a forced wake that lands in the middle of what
// would otherwise be one long quiescent window. The fast path must split the
// window at the wake, and the registry's per-point opportunity books (bulk
// NoteSkippedTicks for jumped spans + per-edge Tick for executed edges) must
// total exactly what per-edge sampling records.

HwProcess PopRecorder(SyncFifo<int>& fifo, Simulator& sim, std::vector<Cycle>& pops) {
  for (;;) {
    co_await WaitUntil([&fifo] { return !fifo.Empty(); });
    fifo.Pop();
    pops.push_back(sim.now());
    co_await Pause();
  }
}

// Arrives mid-stall, backpressures through it, and pushes the moment the
// stall expires — which only a consumed forced wake can announce.
HwProcess StalledProducer(SyncFifo<int>& fifo, Cycle at) {
  co_await PauseFor(at);
  co_await WaitUntil([&fifo] { return fifo.PollCanPush(); });
  fifo.Push(7);
  co_await PauseFor(1'000'000);
}

struct ForcedWakeDigest {
  std::vector<Cycle> pops;
  u64 faults_fired = 0;
  u64 log_digest = 0;
  std::vector<std::pair<std::string, u64>> opportunities;
  Cycle final_now = 0;
  u64 edges_run = 0;
  u64 cycles_fast_forwarded = 0;
};

ForcedWakeDigest RunForcedWakeMidQuiescence(bool fast_path) {
  Simulator sim;
  sim.SetFastPath(fast_path);
  SyncFifo<int> fifo(sim, "q", 4, 32);
  ForcedWakeDigest digest;
  sim.AddProcess(PopRecorder(fifo, sim, digest.pops), "consumer");
  // The producer arrives at ~450, inside the stall window [400, 700): both
  // processes then park, and the pop chain depends on the stall-expiry
  // forced wake at 700 — which the fault tick at 400 scheduled into the
  // middle of an otherwise-idle span.
  sim.AddProcess(StalledProducer(fifo, 450), "producer");

  FaultRegistry registry(11);
  registry.RegisterStallTarget("q.stall", [&fifo](u64 cycles) {
    fifo.InjectStall(static_cast<Cycle>(cycles));
  });
  sim.AttachFaultRegistry(&registry);
  const auto plan = ParseFaultPlan("q.stall oneshot 400 300");
  if (!plan.ok()) {
    ADD_FAILURE() << "bad fault plan: " << plan.status().ToString();
    return digest;
  }
  registry.ArmPlan(*plan);
  sim.Run(2'000);

  digest.faults_fired = registry.fired_total();
  digest.log_digest = registry.LogDigest();
  for (const auto& point : registry.points()) {
    digest.opportunities.emplace_back(point->name(), point->opportunities());
  }
  digest.final_now = sim.now();
  const SimProfile profile = sim.ProfileReport();
  digest.edges_run = profile.edges_run;
  digest.cycles_fast_forwarded = profile.cycles_fast_forwarded;
  sim.AttachFaultRegistry(nullptr);
  return digest;
}

TEST(KernelEquivalence, ForcedWakeMidQuiescentWindowBooksIdentically) {
  const ForcedWakeDigest fast = RunForcedWakeMidQuiescence(true);
  const ForcedWakeDigest exact = RunForcedWakeMidQuiescence(false);
  ASSERT_EQ(exact.faults_fired, 1u);  // the stall actually fired
  ASSERT_EQ(exact.pops.size(), 1u);   // and the pop waited for its expiry
  EXPECT_GT(exact.pops[0], 699u);     // the push waited out the stall
  EXPECT_EQ(fast.pops, exact.pops);
  EXPECT_EQ(fast.faults_fired, exact.faults_fired);
  EXPECT_EQ(fast.log_digest, exact.log_digest);
  // Injection-opportunity books must match per point: a fast-forward that
  // mis-books the span around the forced wake shows up here.
  EXPECT_EQ(fast.opportunities, exact.opportunities);
  EXPECT_EQ(fast.final_now, exact.final_now);
  EXPECT_EQ(fast.edges_run + fast.cycles_fast_forwarded, exact.edges_run);
  EXPECT_GT(fast.cycles_fast_forwarded, 0u);  // the idle spans actually jumped
}

// --- Profiling --------------------------------------------------------------------

TEST(ProfileReportTest, CountsResumesAndJumps) {
  Simulator sim;
  SyncFifo<int> fifo(sim, "f", 8, 32);
  std::vector<int> log;
  sim.AddProcess(Consumer(fifo, log, 1), "consumer");
  sim.EnableProfiling(true);
  fifo.Push(1);
  sim.Run(10'000);

  const SimProfile profile = sim.ProfileReport();
  ASSERT_EQ(profile.processes.size(), 1u);
  EXPECT_EQ(profile.processes[0].name, "consumer");
  EXPECT_GE(profile.processes[0].resumes, 1u);
  EXPECT_GT(profile.processes[0].wall_ns, 0u);
  EXPECT_GT(profile.cycles_fast_forwarded, 0u);  // parked consumer quiesces
  EXPECT_GT(profile.jumps, 0u);
  EXPECT_EQ(profile.edges_run + profile.cycles_fast_forwarded, 10'000u);
}

}  // namespace
}  // namespace emu
