// Memcached service and the Fig. 9 LRU cache block.
#include <gtest/gtest.h>

#include "src/core/targets.h"
#include "src/net/udp.h"
#include "src/services/lru_cache.h"
#include "src/services/memcached_service.h"

namespace emu {
namespace {

const MacAddress kClientMac = MacAddress::FromU48(0x02'00'00'00'cc'02);
const Ipv4Address kClientIp(10, 0, 0, 8);

// --- LruCacheBlock (Fig. 9) -----------------------------------------------------

TEST(LruCacheBlock, MissThenHit) {
  Simulator sim;
  LruCacheBlock cache(sim, "lru", 8);
  EXPECT_FALSE(cache.Lookup(0x11).matched);
  cache.Cache(0x11, 0xaa);
  const auto hit = cache.Lookup(0x11);
  ASSERT_TRUE(hit.matched);
  EXPECT_EQ(hit.result, 0xaau);
}

TEST(LruCacheBlock, EvictsLeastRecentlyUsed) {
  Simulator sim;
  LruCacheBlock cache(sim, "lru", 3);
  cache.Cache(1, 100);
  cache.Cache(2, 200);
  cache.Cache(3, 300);
  cache.Lookup(1);  // touch 1 -> 2 is now LRU
  cache.Cache(4, 400);
  EXPECT_TRUE(cache.Lookup(1).matched);
  EXPECT_FALSE(cache.Lookup(2).matched);  // evicted
  EXPECT_TRUE(cache.Lookup(3).matched);
  EXPECT_TRUE(cache.Lookup(4).matched);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheBlock, RecacheUpdatesValue) {
  Simulator sim;
  LruCacheBlock cache(sim, "lru", 4);
  cache.Cache(7, 1);
  cache.Cache(7, 2);
  const auto hit = cache.Lookup(7);
  ASSERT_TRUE(hit.matched);
  EXPECT_EQ(hit.result, 2u);
}

TEST(LruCacheBlock, EraseFreesSlotForReuse) {
  Simulator sim;
  LruCacheBlock cache(sim, "lru", 2);
  cache.Cache(1, 10);
  cache.Cache(2, 20);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Lookup(1).matched);
  // The erased slot is recycled before any live entry is evicted.
  cache.Cache(3, 30);
  EXPECT_TRUE(cache.Lookup(2).matched);
  EXPECT_TRUE(cache.Lookup(3).matched);
}

TEST(LruCacheBlock, EraseMissingReturnsFalse) {
  Simulator sim;
  LruCacheBlock cache(sim, "lru", 2);
  EXPECT_FALSE(cache.Erase(42));
}

TEST(LruCacheBlock, StressManyKeysStaysConsistent) {
  Simulator sim;
  LruCacheBlock cache(sim, "lru", 64);
  // Insert far more keys than capacity; the most recent ~capacity survive.
  for (u64 k = 1; k <= 1000; ++k) {
    cache.Cache(k, k * 2);
  }
  usize live = 0;
  for (u64 k = 1; k <= 1000; ++k) {
    const auto hit = cache.Lookup(k);
    if (hit.matched) {
      EXPECT_EQ(hit.result, k * 2);
      ++live;
    }
  }
  EXPECT_LE(live, 64u);
  EXPECT_GT(live, 16u);  // probe-window losses allowed, but most slots live
  EXPECT_TRUE(cache.Lookup(1000).matched);  // most recent key always present
}

// --- Memcached service ------------------------------------------------------------

class MemcachedTest : public ::testing::TestWithParam<McProtocol> {
 protected:
  MemcachedTest() {
    config_.protocol = GetParam();
    service_ = std::make_unique<MemcachedService>(config_);
    target_ = std::make_unique<FpgaTarget>(*service_);
  }

  Packet MakeRequestPacket(const McRequest& request, u16 client_port = 31000) {
    McRequest copy = request;
    copy.protocol = config_.protocol;
    return MakeUdpPacket(
        {config_.mac, kClientMac, kClientIp, config_.ip, client_port, kMemcachedPort},
        BuildMcRequest(copy));
  }

  Expected<McResponse> Exchange(const McRequest& request, u8 port = 0) {
    auto reply = target_->SendAndCollect(port, MakeRequestPacket(request));
    if (!reply.ok()) {
      return reply.status();
    }
    Ipv4View ip(*reply);
    UdpView udp(*reply, ip.payload_offset());
    if (!udp.Valid()) {
      return MalformedPacket("bad UDP reply");
    }
    return ParseMcResponse(udp.Payload(), config_.protocol);
  }

  MemcachedConfig config_;
  std::unique_ptr<MemcachedService> service_;
  std::unique_ptr<FpgaTarget> target_;
};

TEST_P(MemcachedTest, GetMissThenSetThenHit) {
  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "key001";

  auto miss = Exchange(get);
  ASSERT_TRUE(miss.ok()) << miss.status().ToString();
  EXPECT_EQ(miss->status, McStatus::kKeyNotFound);

  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "key001";
  set.value = "12345678";
  set.flags = 3;
  auto stored = Exchange(set);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->status, McStatus::kNoError);

  auto hit = Exchange(get);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->status, McStatus::kNoError);
  EXPECT_EQ(hit->value, "12345678");
  EXPECT_EQ(service_->get_hits(), 1u);
}

TEST_P(MemcachedTest, DeleteRemovesKey) {
  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "gone";
  set.value = "v";
  ASSERT_TRUE(Exchange(set).ok());

  McRequest del;
  del.op = McOpcode::kDelete;
  del.key = "gone";
  auto deleted = Exchange(del);
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted->status, McStatus::kNoError);

  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "gone";
  auto miss = Exchange(get);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->status, McStatus::kKeyNotFound);
}

TEST_P(MemcachedTest, DeleteMissingKeyReportsNotFound) {
  McRequest del;
  del.op = McOpcode::kDelete;
  del.key = "never";
  auto response = Exchange(del);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, McStatus::kKeyNotFound);
}

TEST_P(MemcachedTest, OverwriteUpdatesValue) {
  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "k";
  set.value = "old";
  ASSERT_TRUE(Exchange(set).ok());
  set.value = "new";
  ASSERT_TRUE(Exchange(set).ok());
  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "k";
  auto hit = Exchange(get);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->value, "new");
}

TEST_P(MemcachedTest, UdpChecksumOfRepliesIsValid) {
  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "csum";
  set.value = "abcdefgh";
  auto reply = target_->SendAndCollect(0, MakeRequestPacket(set));
  ASSERT_TRUE(reply.ok());
  Ipv4View ip(*reply);
  UdpView udp(*reply, ip.payload_offset());
  EXPECT_TRUE(udp.ChecksumValid(ip));
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, MemcachedTest,
                         ::testing::Values(McProtocol::kBinary, McProtocol::kAscii));

TEST(MemcachedChecksumBug, InjectedBugBreaksLongRepliesOnly) {
  // Reproduces the §5.5 hunt: short replies checksum fine, longer GET hits
  // produce invalid checksums when the fold bug is injected.
  MemcachedConfig config;
  config.protocol = McProtocol::kAscii;
  MemcachedService service(config);
  FpgaTarget target(service);
  service.InjectChecksumBug(true);

  auto send = [&](const McRequest& request) {
    McRequest copy = request;
    copy.protocol = config.protocol;
    Packet packet = MakeUdpPacket(
        {config.mac, kClientMac, kClientIp, config.ip, 31000, kMemcachedPort},
        BuildMcRequest(copy));
    return target.SendAndCollect(0, std::move(packet));
  };

  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "bug";
  set.value = std::string(64, 'x');  // long value -> carries in the checksum
  ASSERT_TRUE(send(set).ok());

  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "bug";
  auto reply = send(get);
  ASSERT_TRUE(reply.ok());
  Ipv4View ip(*reply);
  UdpView udp(*reply, ip.payload_offset());
  EXPECT_FALSE(udp.ChecksumValid(ip));  // the bug observable on the wire

  service.InjectChecksumBug(false);
  auto fixed = send(get);
  ASSERT_TRUE(fixed.ok());
  Ipv4View ip2(*fixed);
  UdpView udp2(*fixed, ip2.payload_offset());
  EXPECT_TRUE(udp2.ChecksumValid(ip2));
}

TEST(MemcachedMultiCore, SetsReplicateGetsPartition) {
  MemcachedConfig config;
  config.protocol = McProtocol::kAscii;
  config.cores = 4;
  MemcachedService service(config);
  FpgaTarget target(service);

  McRequest set;
  set.protocol = config.protocol;
  set.op = McOpcode::kSet;
  set.key = "shared";
  set.value = "v";
  Packet packet = MakeUdpPacket(
      {config.mac, kClientMac, kClientIp, config.ip, 31000, kMemcachedPort},
      BuildMcRequest(set));
  // One SET from port 2: exactly one STORED reply even though all cores
  // apply it.
  target.Inject(2, std::move(packet));
  ASSERT_TRUE(target.RunUntilEgressCount(1, 500'000));
  target.Run(20'000);
  EXPECT_EQ(target.egress().size(), 1u);
  target.TakeEgress();

  // GETs from every port hit their own core's replica.
  McRequest get;
  get.protocol = config.protocol;
  get.op = McOpcode::kGet;
  get.key = "shared";
  for (u8 port = 0; port < 4; ++port) {
    Packet query = MakeUdpPacket(
        {config.mac, kClientMac, kClientIp, config.ip, 31000, kMemcachedPort},
        BuildMcRequest(get));
    auto reply = target.SendAndCollect(port, std::move(query));
    ASSERT_TRUE(reply.ok()) << "port " << static_cast<int>(port);
    Ipv4View ip(*reply);
    UdpView udp(*reply, ip.payload_offset());
    auto response = ParseMcResponse(udp.Payload(), config.protocol);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, McStatus::kNoError) << "port " << static_cast<int>(port);
    EXPECT_EQ(response->value, "v");
  }
  EXPECT_EQ(service.get_hits(), 4u);
}

TEST(MemcachedDram, DramBackendStillCorrect) {
  MemcachedConfig config;
  config.protocol = McProtocol::kBinary;
  config.backend = McBackend::kDram;
  MemcachedService service(config);
  FpgaTarget target(service);

  McRequest set;
  set.protocol = config.protocol;
  set.op = McOpcode::kSet;
  set.key = "dram";
  set.value = "value123";
  Packet packet = MakeUdpPacket(
      {config.mac, kClientMac, kClientIp, config.ip, 31000, kMemcachedPort},
      BuildMcRequest(set));
  ASSERT_TRUE(target.SendAndCollect(0, std::move(packet)).ok());

  McRequest get;
  get.protocol = config.protocol;
  get.op = McOpcode::kGet;
  get.key = "dram";
  Packet query = MakeUdpPacket(
      {config.mac, kClientMac, kClientIp, config.ip, 31000, kMemcachedPort},
      BuildMcRequest(get));
  auto reply = target.SendAndCollect(0, std::move(query));
  ASSERT_TRUE(reply.ok());
  Ipv4View ip(*reply);
  UdpView udp(*reply, ip.payload_offset());
  auto response = ParseMcResponse(udp.Payload(), config.protocol);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->value, "value123");
}

TEST(MemcachedEviction, LruCapacityRespected) {
  MemcachedConfig config;
  config.protocol = McProtocol::kBinary;
  config.capacity = 8;
  MemcachedService service(config);
  FpgaTarget target(service);

  auto send = [&](const McRequest& request) {
    McRequest copy = request;
    copy.protocol = config.protocol;
    Packet packet = MakeUdpPacket(
        {config.mac, kClientMac, kClientIp, config.ip, 31000, kMemcachedPort},
        BuildMcRequest(copy));
    auto reply = target.SendAndCollect(0, std::move(packet));
    EXPECT_TRUE(reply.ok());
  };

  for (int i = 0; i < 20; ++i) {
    McRequest set;
    set.op = McOpcode::kSet;
    set.key = "key" + std::to_string(i);
    set.value = "v" + std::to_string(i);
    send(set);
  }
  // The most recent key must still be present; the oldest must be gone.
  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "key19";
  get.protocol = config.protocol;
  Packet query = MakeUdpPacket(
      {config.mac, kClientMac, kClientIp, config.ip, 31000, kMemcachedPort},
      BuildMcRequest(get));
  auto reply = target.SendAndCollect(0, std::move(query));
  ASSERT_TRUE(reply.ok());
  Ipv4View ip(*reply);
  UdpView udp(*reply, ip.payload_offset());
  auto response = ParseMcResponse(udp.Payload(), config.protocol);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, McStatus::kNoError);
  EXPECT_EQ(response->value, "v19");
}

}  // namespace
}  // namespace emu
