// Robustness: VLAN tagging, the pcap writer, parser fuzzing (no parser may
// crash or over-read on arbitrary bytes), and live backtraces of stalled
// services.
#include <gtest/gtest.h>

#include <fstream>

#include "src/common/rng.h"
#include "src/core/targets.h"
#include "src/fault/frame_impairer.h"
#include "src/debug/controller.h"
#include "src/debug/direction_packet.h"
#include "src/net/arp.h"
#include "src/net/dns.h"
#include "src/net/memcached.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/net/vlan.h"
#include "src/services/dns_service.h"
#include "src/services/iptables_cli.h"
#include "src/services/learning_switch.h"
#include "src/services/memcached_service.h"
#include "src/sim/trace_dump.h"

namespace emu {
namespace {

const MacAddress kMacA = MacAddress::FromU48(0x02'00'00'00'00'0a);
const MacAddress kMacB = MacAddress::FromU48(0x02'00'00'00'00'0b);

// --- VLAN -----------------------------------------------------------------------

TEST(Vlan, InsertAndReadTag) {
  Packet frame = MakeEthernetFrame(kMacB, kMacA, EtherType::kIpv4, std::vector<u8>{1, 2, 3});
  ASSERT_FALSE(VlanView(frame).Tagged());
  InsertVlanTag(frame, 42, 5);
  VlanView vlan(frame);
  ASSERT_TRUE(vlan.Tagged());
  EXPECT_EQ(vlan.vlan_id(), 42);
  EXPECT_EQ(vlan.priority(), 5);
  EXPECT_EQ(vlan.inner_ether_type(), static_cast<u16>(EtherType::kIpv4));
}

TEST(Vlan, StripRestoresOriginalBytes) {
  Packet frame = MakeEthernetFrame(kMacB, kMacA, EtherType::kIpv4, std::vector<u8>{9, 8, 7});
  const std::vector<u8> original(frame.bytes().begin(), frame.bytes().end());
  InsertVlanTag(frame, 100);
  ASSERT_TRUE(StripVlanTag(frame));
  const std::vector<u8> restored(frame.bytes().begin(), frame.bytes().end());
  EXPECT_EQ(restored, original);
  EXPECT_FALSE(StripVlanTag(frame));  // second strip: nothing to remove
}

TEST(Vlan, SettersRewriteTciFields) {
  Packet frame = MakeEthernetFrame(kMacB, kMacA, EtherType::kArp, {});
  InsertVlanTag(frame, 1, 0);
  VlanView vlan(frame);
  vlan.set_vlan_id(0xfff);
  vlan.set_priority(7);
  EXPECT_EQ(vlan.vlan_id(), 0xfff);
  EXPECT_EQ(vlan.priority(), 7);
  vlan.set_vlan_id(3);
  EXPECT_EQ(vlan.priority(), 7);  // priority untouched by VID write
}

TEST(Vlan, EffectiveEtherTypeSeesThroughTag) {
  Packet frame = MakeEthernetFrame(kMacB, kMacA, EtherType::kIpv4, {});
  EXPECT_EQ(EffectiveEtherType(frame), static_cast<u16>(EtherType::kIpv4));
  EXPECT_EQ(L3Offset(frame), kEthernetHeaderSize);
  InsertVlanTag(frame, 7);
  EXPECT_EQ(EffectiveEtherType(frame), static_cast<u16>(EtherType::kIpv4));
  EXPECT_EQ(L3Offset(frame), kEthernetHeaderSize + kVlanTagSize);
}

TEST(Vlan, SwitchForwardsTaggedFramesTransparently) {
  // The learning switch keys on MACs, which precede the tag: tagged traffic
  // switches identically and arrives with the tag intact.
  LearningSwitch service;
  FpgaTarget target(service);
  Packet teach = MakeEthernetFrame(MacAddress::Broadcast(), kMacB, EtherType::kIpv4, {});
  InsertVlanTag(teach, 10);
  target.Inject(1, std::move(teach));
  target.Run(50'000);
  target.TakeEgress();

  Packet frame = MakeEthernetFrame(kMacB, kMacA, EtherType::kIpv4, std::vector<u8>{5});
  InsertVlanTag(frame, 10, 3);
  auto out = target.SendAndCollect(0, std::move(frame));
  ASSERT_TRUE(out.ok());
  VlanView vlan(*out);
  ASSERT_TRUE(vlan.Tagged());
  EXPECT_EQ(vlan.vlan_id(), 10);
  EXPECT_EQ(vlan.priority(), 3);
}

// --- Pcap writer ------------------------------------------------------------------

TEST(Pcap, WritesValidHeaderAndRecords) {
  TraceDump dump;
  Packet a(64);
  a[0] = 0xaa;
  Packet b(128);
  dump.Capture(1 * kPicosPerMicro, "rx", a);
  dump.Capture(2'500'000 * kPicosPerMicro, "tx", b);  // 2.5 s
  const std::string path = "/tmp/emu_trace_test.pcap";
  ASSERT_TRUE(dump.WritePcap(path));

  std::ifstream file(path, std::ios::binary);
  ASSERT_TRUE(file.good());
  u32 magic = 0;
  file.read(reinterpret_cast<char*>(&magic), 4);
  EXPECT_EQ(magic, 0xa1b2c3d4u);
  file.seekg(20);
  u32 linktype = 0;
  file.read(reinterpret_cast<char*>(&linktype), 4);
  EXPECT_EQ(linktype, 1u);  // Ethernet
  // First record header.
  u32 ts_sec = 0;
  u32 ts_usec = 0;
  u32 incl = 0;
  u32 orig = 0;
  file.read(reinterpret_cast<char*>(&ts_sec), 4);
  file.read(reinterpret_cast<char*>(&ts_usec), 4);
  file.read(reinterpret_cast<char*>(&incl), 4);
  file.read(reinterpret_cast<char*>(&orig), 4);
  EXPECT_EQ(ts_sec, 0u);
  EXPECT_EQ(ts_usec, 1u);
  EXPECT_EQ(incl, 64u);
  EXPECT_EQ(orig, 64u);
  // Second record is 2.5 s in.
  file.seekg(24 + 16 + 64);
  file.read(reinterpret_cast<char*>(&ts_sec), 4);
  file.read(reinterpret_cast<char*>(&ts_usec), 4);
  EXPECT_EQ(ts_sec, 2u);
  EXPECT_EQ(ts_usec, 500'000u);
}

// --- Parser fuzzing ------------------------------------------------------------------

// Property: no wire-format parser crashes, loops, or asserts on arbitrary
// bytes — it either parses or returns an error.
class ParserFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(ParserFuzz, AllParsersSurviveRandomBytes) {
  Rng rng(GetParam());
  for (int round = 0; round < 400; ++round) {
    std::vector<u8> data(rng.NextBelow(200), 0);
    for (auto& b : data) {
      b = static_cast<u8>(rng.NextU64());
    }
    (void)ParseDnsQuery(data);
    (void)ParseDnsResponse(data);
    (void)ParseMcBinaryRequest(data);
    (void)ParseMcBinaryResponse(data);
    (void)ParseMcAsciiRequest(data);
    (void)ParseMcAsciiResponse(data);
    Packet frame{std::vector<u8>(data)};
    (void)IsDirectionPacket(frame);
    (void)ParseDirectionPacket(frame);
    (void)DescribePacket(frame);
  }
}

TEST_P(ParserFuzz, MutatedValidMessagesNeverCrashParsers) {
  Rng rng(GetParam() + 1);
  const std::vector<u8> dns = BuildDnsQuery(7, "svc.lab");
  McRequest request;
  request.op = McOpcode::kSet;
  request.key = "abc";
  request.value = "value";
  const std::vector<u8> binary = BuildMcBinaryRequest(request);
  for (int round = 0; round < 400; ++round) {
    std::vector<u8> mutated = (round % 2 == 0) ? dns : binary;
    // Flip a few random bytes and maybe truncate.
    for (int flips = 0; flips < 3; ++flips) {
      mutated[rng.NextBelow(mutated.size())] ^= static_cast<u8>(rng.NextU64());
    }
    if (rng.NextBool(0.3)) {
      mutated.resize(rng.NextBelow(mutated.size() + 1));
    }
    (void)ParseDnsQuery(mutated);
    (void)ParseMcBinaryRequest(mutated);
    (void)ParseMcAsciiRequest(mutated);
  }
}

TEST_P(ParserFuzz, IptablesParserSurvivesGarbage) {
  Rng rng(GetParam() + 2);
  const char charset[] = "-AFORWARDptcpudsj.0123456789:/ DROPACCEPT\t";
  for (int round = 0; round < 300; ++round) {
    std::string line;
    const usize len = rng.NextBelow(60);
    for (usize i = 0; i < len; ++i) {
      line += charset[rng.NextBelow(sizeof(charset) - 1)];
    }
    (void)ParseIptablesRule(line);
    (void)ParseIptablesScript(line + "\n" + line);
  }
}

TEST_P(ParserFuzz, ServicePipelineSurvivesGarbageFrames) {
  // End to end: random bytes through the whole FPGA pipeline into a service
  // must never crash or wedge the simulation.
  Rng rng(GetParam() + 3);
  MemcachedConfig config;
  MemcachedService service(config);
  FpgaTarget target(service);
  for (int round = 0; round < 60; ++round) {
    std::vector<u8> data(14 + rng.NextBelow(120), 0);
    for (auto& b : data) {
      b = static_cast<u8>(rng.NextU64());
    }
    target.Inject(static_cast<u8>(rng.NextBelow(4)), Packet(std::move(data)));
  }
  target.Run(300'000);  // must terminate; garbage is dropped
  EXPECT_EQ(target.egress().size(), 0u);
  EXPECT_GT(service.dropped(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(17u, 9001u));

// --- Fault-layer frame fuzzing (emu-fault) -----------------------------------------

// The chaos layer corrupts frames with FrameImpairer::FlipBit/Truncate, so
// "corrupted by a fault" means exactly these mechanics. Every parser must
// treat such frames as adversarial input: parse or return an error, never
// crash or read past the end — and identically for identical seeds.

u64 MixOutcome(u64 digest, u64 value) {
  return (digest ^ value) * 1099511628211ull;
}

// Parses one corrupted application payload through every payload parser and
// folds the outcomes into the digest.
u64 ProbePayload(u64 digest, std::span<const u8> data) {
  digest = MixOutcome(digest, ParseDnsQuery(data).ok());
  digest = MixOutcome(digest, ParseDnsResponse(data).ok());
  digest = MixOutcome(digest, ParseMcBinaryRequest(data).ok());
  digest = MixOutcome(digest, ParseMcAsciiRequest(data).ok());
  return digest;
}

// Walks a corrupted frame through the L2-L4 views, touching every accessor a
// service would read; guards follow each view's Valid() contract, so any
// over-read is the view's bug (and a sanitizer finding).
u64 ProbeFrameViews(u64 digest, Packet& frame) {
  ArpView arp(frame);
  if (arp.Valid()) {
    digest = MixOutcome(digest, arp.oper_raw());
    digest = MixOutcome(digest, arp.sender_ip().value());
    digest = MixOutcome(digest, arp.target_ip().value());
  }
  Ipv4View ip(frame);
  if (ip.Valid()) {
    digest = MixOutcome(digest, ip.ChecksumValid());
    if (ip.ProtocolIs(IpProtocol::kTcp)) {
      TcpView tcp(frame, ip.payload_offset());
      if (tcp.Valid()) {
        digest = MixOutcome(digest, tcp.source_port());
        digest = MixOutcome(digest, tcp.destination_port());
        digest = MixOutcome(digest, tcp.sequence());
      }
    } else if (ip.ProtocolIs(IpProtocol::kUdp)) {
      UdpView udp(frame, ip.payload_offset());
      if (udp.Valid()) {
        digest = MixOutcome(digest, udp.destination_port());
      }
    }
  }
  return digest;
}

std::vector<std::vector<u8>> FaultFuzzPayloads() {
  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "abc";
  set.value = "value";
  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "abc";
  get.protocol = McProtocol::kAscii;
  return {BuildDnsQuery(7, "svc.lab"), BuildMcBinaryRequest(set), BuildMcAsciiRequest(get)};
}

std::vector<Packet> FaultFuzzFrames() {
  std::vector<Packet> frames;
  frames.push_back(MakeArpRequest(kMacA, Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2)));
  TcpSegmentSpec tcp{kMacB, kMacA, Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                     40000, 80, 1, 0, TcpFlags::kSyn};
  frames.push_back(MakeTcpSegment(tcp));
  frames.push_back(MakeUdpPacket({kMacB, kMacA, Ipv4Address(10, 0, 0, 1),
                                  Ipv4Address(10, 0, 0, 2), 5353, kDnsPort},
                                 BuildDnsQuery(7, "svc.lab")));
  return frames;
}

u64 RunFaultLayerFuzz(u64 seed) {
  Rng rng(seed);
  u64 digest = 14695981039346656037ull;
  const auto payloads = FaultFuzzPayloads();
  const auto frames = FaultFuzzFrames();
  for (int round = 0; round < 300; ++round) {
    Packet payload{std::vector<u8>(payloads[static_cast<usize>(round) % payloads.size()])};
    const usize flips = 1 + rng.NextBelow(4);
    for (usize i = 0; i < flips; ++i) {
      FrameImpairer::FlipBit(payload, rng.NextU64());
    }
    digest = ProbePayload(digest, payload.bytes());

    Packet frame = frames[static_cast<usize>(round) % frames.size()];
    for (usize i = 0; i < flips; ++i) {
      FrameImpairer::FlipBit(frame, rng.NextU64());
    }
    digest = ProbeFrameViews(digest, frame);
  }
  return digest;
}

class FaultFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(FaultFuzz, BitFlippedFramesNeverCrashAndReplayPerSeed) {
  const u64 first = RunFaultLayerFuzz(GetParam());
  EXPECT_EQ(first, RunFaultLayerFuzz(GetParam()));
  EXPECT_NE(first, RunFaultLayerFuzz(GetParam() + 1));
}

TEST_P(FaultFuzz, TruncationAtEveryByteBoundarySurvives) {
  // Every prefix of every valid message, and every combination with one bit
  // flip near the cut: parsers and views must degrade to errors.
  Rng rng(GetParam());
  for (const std::vector<u8>& payload : FaultFuzzPayloads()) {
    for (usize cut = 0; cut <= payload.size(); ++cut) {
      Packet p{std::vector<u8>(payload)};
      FrameImpairer::Truncate(p, cut);
      ASSERT_EQ(p.size(), cut);
      (void)ProbePayload(0, p.bytes());
      if (cut > 0) {
        FrameImpairer::FlipBit(p, rng.NextU64());
        (void)ProbePayload(0, p.bytes());
      }
    }
  }
  for (const Packet& frame : FaultFuzzFrames()) {
    for (usize cut = 0; cut <= frame.size(); ++cut) {
      Packet p = frame;
      FrameImpairer::Truncate(p, cut);
      (void)ProbeFrameViews(0, p);
    }
  }
}

TEST_P(FaultFuzz, CorruptedFramesThroughServicesNeverCrash) {
  // Same corruption mechanics end to end: a DNS service fed bit-flipped and
  // truncated queries must drop or answer, never wedge or crash.
  Rng rng(GetParam());
  DnsServiceConfig config;
  DnsService service(config);
  service.AddRecord("svc.lab", Ipv4Address(10, 1, 0, 1));
  FpgaTarget target(service);
  for (int round = 0; round < 80; ++round) {
    Packet frame = MakeUdpPacket({config.mac, kMacA, Ipv4Address(10, 0, 0, 9), config.ip,
                                  static_cast<u16>(5000 + round), kDnsPort},
                                 BuildDnsQuery(static_cast<u16>(round), "svc.lab"));
    if (rng.NextBool(0.5)) {
      FrameImpairer::FlipBit(frame, rng.NextU64());
    } else {
      FrameImpairer::Truncate(frame, rng.NextBelow(frame.size() + 1));
    }
    if (frame.size() >= kEthernetHeaderSize) {
      target.Inject(0, std::move(frame));
    }
  }
  target.Run(500'000);  // must terminate: every frame answered or dropped
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz, ::testing::Values(23u, 4242u));

// --- Live backtrace of a stalled service -----------------------------------------------

TEST(LiveBacktrace, StalledRequestShowsHandlerFrame) {
  MemcachedConfig config;
  MemcachedService service(config);
  DirectionController controller("main_loop");
  service.AttachController(&controller);
  DirectedService directed(service, controller);
  FpgaTarget target(directed);

  // Install a breakpoint, then let a request stall inside the handler.
  controller.HandleCommandText("break main_loop");
  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "k";
  get.protocol = config.protocol;
  Packet frame = MakeUdpPacket({config.mac, kMacA, Ipv4Address(10, 0, 0, 9), config.ip,
                                31000, kMemcachedPort},
                               BuildMcRequest(get));
  target.Inject(0, std::move(frame));
  target.Run(100'000);
  ASSERT_TRUE(controller.broken());

  // Backtrace over a direction packet shows where the program is parked.
  Packet bt = MakeDirectionPacket(config.mac, kMacB, DirectionPacketKind::kCommand, 1,
                                  "backtrace");
  auto reply = target.SendAndCollect(0, std::move(bt));
  ASSERT_TRUE(reply.ok());
  auto payload = ParseDirectionPacket(*reply);
  ASSERT_TRUE(payload.ok());
  EXPECT_NE(payload->text.find("#0 handle_request"), std::string::npos);

  // After resume the frame pops and the stack is empty again.
  controller.Resume();
  controller.HandleCommandText("unbreak main_loop");
  target.Run(200'000);
  EXPECT_EQ(controller.HandleCommandText("backtrace"), "(empty stack)\n");
}

}  // namespace
}  // namespace emu
