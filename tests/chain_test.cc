// emu-chain: the declarative ScenarioSpec API and the composition runtime.
//
// Three layers under test. The spec layer: parser diagnostics carry verbatim
// line numbers, host lines inherit the auto-host convention, and chain shape
// violations (branches, cycles, disjoint segments, missing source) are
// rejected by LinearChainOrder/BuildScenario with the same line-anchored
// messages the CHAINSPEC lint re-reports as findings. The runtime layer: a
// spec-built chain sheds overload at the source (never mid-chain), a frame
// forced onto a full queue surfaces as a LOSTBACKPRESSURE finding, and the
// per-stage flow counters balance. The determinism layer: the chain counter
// digest and the exported Perfetto trace are byte-identical for threads=1,
// threads=4, and a same-seed replay, and the trace decomposes into a
// populated queue+service latency row for every stage (the Table 4 shape).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/chain/chain_lint.h"
#include "src/chain/chain_runtime.h"
#include "src/chain/scenario_build.h"
#include "src/chain/scenario_spec.h"
#include "src/chain/stage_factory.h"
#include "src/common/status.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fault_registry.h"
#include "src/net/ethernet.h"
#include "src/obs/decompose.h"
#include "src/obs/trace.h"
#include "src/sim/memaslap.h"
#include "src/sim/sim_host.h"

namespace emu {
namespace {

// The chain_soak pipeline, shrunk for tests: cache capacity 8 against a
// 32-key space guarantees L1 misses, so the pool stage sees traffic.
constexpr char kFourStageSpec[] =
    "topology hub link_delay=2us\n"
    "host client mac=0x020000000c01 ip=192.168.1.10\n"
    "host h1\nhost h2\nhost h3\nhost h4\n"
    "stage filter kind=filter    host=h1 target=fpga queue=16\n"
    "stage nat    kind=nat       host=h2 target=cpu  queue=16\n"
    "stage cache  kind=l1cache   host=h3 target=cpu  queue=32 capacity=8\n"
    "stage pool   kind=memcached host=h4 target=cpu  queue=32\n"
    "chain client -> filter -> nat -> cache -> pool\n";

// The smallest legal chain (two stages — one stage has no edges) with
// two-slot ingress queues: the world where the source's credit window
// visibly closes.
constexpr char kTwoStageSpec[] =
    "topology hub link_delay=1us\n"
    "host client mac=0x020000000c01 ip=192.168.1.10\n"
    "host h1\nhost h2\n"
    "stage nat  kind=nat       host=h1 target=cpu queue=2\n"
    "stage pool kind=memcached host=h2 target=cpu queue=2\n"
    "chain client -> nat -> pool\n";

MemaslapLoadgen TestLoadgen(u64 seed, usize key_space) {
  MemaslapConfig mc;
  const MemcachedConfig server = CanonicalMemcachedConfig();
  mc.server_mac = server.mac;
  mc.server_ip = server.ip;
  mc.client_ip = Ipv4Address(192, 168, 1, 10);  // inside the NAT's subnet
  mc.key_space = key_space;
  mc.seed = seed;
  return MemaslapLoadgen(mc);
}

// --- ScenarioSpec parsing ----------------------------------------------------

TEST(ScenarioSpecTest, ParsesTheChainSoakShape) {
  const Expected<ScenarioSpec> spec = ParseScenarioSpec(kFourStageSpec);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->topology, SpecTopology::kHub);
  EXPECT_EQ(spec->link_delay, 2 * kPicosPerMicro);
  ASSERT_EQ(spec->hosts.size(), 5u);
  ASSERT_EQ(spec->stages.size(), 4u);
  ASSERT_EQ(spec->edges.size(), 3u);
  EXPECT_EQ(spec->source_host, "client");
  EXPECT_EQ(spec->edges[0].from, "filter");
  EXPECT_EQ(spec->edges[2].to, "pool");
  const usize cache = spec->FindStage("cache");
  ASSERT_LT(cache, spec->stages.size());
  EXPECT_EQ(spec->stages[cache].kind, "l1cache");
  EXPECT_EQ(spec->stages[cache].queue, 32u);
  ASSERT_EQ(spec->stages[cache].attrs.size(), 1u);
  EXPECT_EQ(spec->stages[cache].attrs[0].first, "capacity");
  EXPECT_EQ(spec->Downstream(spec->FindStage("nat")), cache);
  EXPECT_EQ(spec->Upstream(cache), spec->FindStage("nat"));
}

TEST(ScenarioSpecTest, HostDefaultsFollowTheAutoHostConvention) {
  const Expected<ScenarioSpec> spec =
      ParseScenarioSpec("topology hub hosts=2\nhost extra\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec->hosts.size(), 3u);
  EXPECT_EQ(spec->hosts[0].name, "h0");
  EXPECT_EQ(spec->hosts[1].name, "h1");
  EXPECT_EQ(spec->hosts[1].mac, AutoHost(1).mac);
  EXPECT_EQ(spec->hosts[1].ip, AutoHost(1).ip);
  // An explicit host at index 2 keeps its name but inherits slot-2 defaults.
  EXPECT_EQ(spec->hosts[2].name, "extra");
  EXPECT_EQ(spec->hosts[2].mac, AutoHost(2).mac);
}

TEST(ScenarioSpecTest, CommentsRunToEndOfLine) {
  // The ';' inside the comment must not start a phantom entry.
  const Expected<ScenarioSpec> spec = ParseScenarioSpec(
      "# soak topology; eight hosts around a hub\n"
      "topology hub hosts=8  # 50us links; SWIM timescale\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->hosts.size(), 8u);
}

TEST(ScenarioSpecTest, DiagnosticsCarryTheLineNumberVerbatim) {
  const Expected<ScenarioSpec> spec = ParseScenarioSpec(
      "topology hub hosts=2\n"
      "host extra\n"
      "frobnicate now\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().message(),
            "scenario spec line 3: unknown keyword 'frobnicate': frobnicate now");
}

TEST(ScenarioSpecTest, RejectsAStageOnAnUnknownHost) {
  const Expected<ScenarioSpec> spec = ParseScenarioSpec(
      "topology hub hosts=2\n"
      "stage s kind=nat host=nope queue=4\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().message(),
            "scenario spec line 2: stage 's' placed on unknown host 'nope': s");
}

TEST(ScenarioSpecTest, RejectsADanglingChainArrow) {
  const Expected<ScenarioSpec> spec = ParseScenarioSpec(
      "topology hub hosts=2\n"
      "stage s kind=nat host=h0 queue=4\n"
      "chain h1 -> s ->\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().message(),
            "scenario spec line 3: chain ends with a dangling '->': chain h1 -> s ->");
}

TEST(ScenarioSpecTest, RejectsDuplicateHostsWithTheirLine) {
  const Expected<ScenarioSpec> spec =
      ParseScenarioSpec("topology hub hosts=2\nhost h1\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().message(),
            "scenario spec line 2: duplicate host 'h1': host h1");
}

// --- Chain shape (LinearChainOrder / BuildScenario) --------------------------

TEST(ChainShapeTest, RejectsABranchingChain) {
  const Expected<ScenarioSpec> spec = ParseScenarioSpec(
      "topology hub hosts=4\n"
      "stage a kind=nat host=h0 queue=4\n"
      "stage b kind=nat host=h1 queue=4\n"
      "stage c kind=nat host=h2 queue=4\n"
      "chain h3 -> a -> b\n"
      "chain a -> c\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const Expected<std::vector<usize>> order = LinearChainOrder(*spec);
  ASSERT_FALSE(order.ok());
  EXPECT_EQ(order.status().message(),
            "scenario spec line 6: stage 'a' has multiple downstream edges");
}

TEST(ChainShapeTest, RejectsACycle) {
  const Expected<ScenarioSpec> spec = ParseScenarioSpec(
      "topology hub hosts=3\n"
      "stage a kind=nat host=h0 queue=4\n"
      "stage b kind=nat host=h1 queue=4\n"
      "chain h2 -> a -> b\n"
      "chain b -> a\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const Expected<std::vector<usize>> order = LinearChainOrder(*spec);
  ASSERT_FALSE(order.ok());
  EXPECT_EQ(order.status().message(), "scenario spec: chain edges form a cycle");
}

TEST(ChainShapeTest, RejectsDisjointChains) {
  const Expected<ScenarioSpec> spec = ParseScenarioSpec(
      "topology hub hosts=5\n"
      "stage a kind=nat host=h0 queue=4\n"
      "stage b kind=nat host=h1 queue=4\n"
      "stage c kind=nat host=h2 queue=4\n"
      "stage d kind=nat host=h3 queue=4\n"
      "chain h4 -> a -> b\n"
      "chain c -> d\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const Expected<std::vector<usize>> order = LinearChainOrder(*spec);
  ASSERT_FALSE(order.ok());
  EXPECT_EQ(order.status().message(),
            "scenario spec: disjoint chains (both 'a' and 'c' are chain heads)");
}

TEST(ChainShapeTest, RejectsAChainWithNoSourceHost) {
  const Expected<ScenarioSpec> spec = ParseScenarioSpec(
      "topology hub hosts=2\n"
      "stage a kind=nat host=h0 queue=4\n"
      "stage b kind=nat host=h1 queue=4\n"
      "chain a -> b\n");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const Expected<std::vector<usize>> order = LinearChainOrder(*spec);
  ASSERT_FALSE(order.ok());
  EXPECT_EQ(order.status().message(),
            "scenario spec: chain has no source host (start the chain line with a host name)");
}

TEST(ChainShapeTest, BuildRejectsAChainOffTheHubTopology) {
  const Expected<std::unique_ptr<Scenario>> built = BuildScenarioFromText(
      "topology star hosts=2\n"
      "stage a kind=nat queue=4\n"
      "stage b kind=nat queue=4\n"
      "chain h0 -> a -> b\n");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().message(),
            "scenario spec: chain lines require topology hub, not star");
}

TEST(ChainShapeTest, BuildRejectsAChainedStageWithNoQueue) {
  const Expected<std::unique_ptr<Scenario>> built = BuildScenarioFromText(
      "topology hub hosts=3\n"
      "stage a kind=nat host=h0 queue=4\n"
      "stage b kind=nat host=h1 queue=0\n"
      "chain h2 -> a -> b\n");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().message(),
            "scenario spec line 3: chained stage 'b' has queue=0 and admits no traffic");
}

TEST(ChainShapeTest, BuildRejectsTwoChainedStagesOnOneHost) {
  const Expected<std::unique_ptr<Scenario>> built = BuildScenarioFromText(
      "topology hub hosts=2\n"
      "stage a kind=nat host=h0 queue=4\n"
      "stage b kind=nat host=h0 queue=4\n"
      "chain h1 -> a -> b\n");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().message(),
            "scenario spec line 3: stages 'a' and 'b' share host 'h0'");
}

TEST(ChainShapeTest, BuildEnforcesTheStarAndClusterShapes) {
  const Expected<std::unique_ptr<Scenario>> star = BuildScenarioFromText(
      "topology star hosts=2\n"
      "stage a kind=nat queue=4\n"
      "stage b kind=nat queue=4\n");
  ASSERT_FALSE(star.ok());
  EXPECT_EQ(star.status().message(),
            "scenario spec: topology star wants exactly 1 stage, got 2");
  const Expected<std::unique_ptr<Scenario>> cluster = BuildScenarioFromText(
      "topology cluster hosts=2\n"
      "stage a kind=nat host=h0 queue=4\n");
  ASSERT_FALSE(cluster.ok());
  EXPECT_EQ(cluster.status().message(),
            "scenario spec: topology cluster wants one stage per host "
            "(1 stages, 2 hosts)");
}

TEST(ChainShapeTest, BuildRequiresARegistryWhenTheSpecImpairsLinks) {
  const Expected<std::unique_ptr<Scenario>> built =
      BuildScenarioFromText("topology hub hosts=2 impair=link\n");
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().message(),
            "scenario spec sets impair=link but no FaultRegistry was provided");
}

TEST(ChainShapeTest, BuildPlacesHostsAndStagesPerTheSpec) {
  const Expected<std::unique_ptr<Scenario>> built = BuildScenarioFromText(kTwoStageSpec);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Scenario& scenario = **built;
  ASSERT_TRUE(scenario.has_chain);
  EXPECT_EQ(scenario.topology.host_count(), 3u);
  EXPECT_EQ(scenario.topology.host(scenario.source_host).name(), "client");
  ASSERT_EQ(scenario.chain.stage_count(), 2u);
  EXPECT_EQ(scenario.chain.stage(0).name(), "nat");
  EXPECT_EQ(scenario.chain.stage(0).host().name(), "h1");
  EXPECT_EQ(scenario.chain.stage(1).name(), "pool");
  EXPECT_EQ(scenario.chain.stage(1).host().name(), "h2");
}

// --- CHAINSPEC lint ----------------------------------------------------------

TEST(ChainLintTest, CleanSpecHasNoFindings) {
  EXPECT_TRUE(CheckChainSpecText(kFourStageSpec, "spec").empty());
}

TEST(ChainLintTest, ReportsUnknownStageKinds) {
  const std::vector<Finding> findings = CheckChainSpecText(
      "topology hub hosts=2\n"
      "stage s kind=bogus host=h0 queue=4\n"
      "chain h1 -> s\n",
      "spec");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "CHAINSPEC");
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].subject, "s");
  EXPECT_EQ(findings[0].message, "line 2: unknown stage kind 'bogus'");
}

TEST(ChainLintTest, ReportsParseFailuresVerbatim) {
  const std::vector<Finding> findings =
      CheckChainSpecText("nonsense\n", "spec");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].subject, "parse");
  EXPECT_EQ(findings[0].message,
            "scenario spec line 1: unknown keyword 'nonsense': nonsense");
}

TEST(ChainLintTest, WarnsOnAStageOffEveryChainEdge) {
  const std::vector<Finding> findings = CheckChainSpecText(
      "topology hub hosts=4\n"
      "stage a kind=nat host=h0 queue=4\n"
      "stage b kind=nat host=h1 queue=4\n"
      "stage dead kind=nat host=h2 queue=4\n"
      "chain h3 -> a -> b\n",
      "spec");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].subject, "dead");
  EXPECT_EQ(findings[0].message,
            "line 4: stage is on no chain edge (dead configuration)");
}

TEST(ChainLintTest, FlagsAChainedStageTheFaultPlanCrashesForGood) {
  constexpr char kSpec[] =
      "topology hub hosts=4\n"
      "stage a kind=nat host=h1 queue=4\n"
      "stage b kind=memcached host=h2 queue=4\n"
      "chain h0 -> a -> b\n";
  const auto crash_only = ParseFaultPlan("crash host=h1 at=20ms");
  ASSERT_TRUE(crash_only.ok());
  std::vector<Finding> findings = CheckChainSpecText(kSpec, "spec", &*crash_only);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].subject, "a");
  EXPECT_EQ(findings[0].message,
            "line 2: host 'h1' is crashed by the fault plan at 20000000000ps "
            "and never restarted; the chain goes dark");

  // A restart after the crash clears the finding.
  const auto recovered = ParseFaultPlan("crash host=h1 at=20ms; restart host=h1 at=30ms");
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(CheckChainSpecText(kSpec, "spec", &*recovered).empty());

  // Crashing the source host is survivable (the workload just stops) — a
  // warning, not an error.
  const auto source_crash = ParseFaultPlan("crash host=h0 at=10ms");
  ASSERT_TRUE(source_crash.ok());
  findings = CheckChainSpecText(kSpec, "spec", &*source_crash);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_EQ(findings[0].subject, "h0");
}

// --- ChainStageIo ------------------------------------------------------------

TEST(ChainIoTest, MemcachedTailVersusL1Tier) {
  MemcachedService plain(CanonicalMemcachedConfig());
  const ChainStageIo tail = plain.ChainIo();
  EXPECT_EQ(tail.downstream_mask, 0u);  // a plain server ends the chain
  EXPECT_FALSE(tail.reply_to_upstream);

  const MemcachedConfig l1_config = CanonicalL1CacheConfig();
  MemcachedService l1(l1_config);
  const ChainStageIo io = l1.ChainIo();
  EXPECT_EQ(io.forward_in_port, 1u);
  EXPECT_EQ(io.reply_in_port, l1_config.host_port);
  EXPECT_EQ(io.downstream_mask, static_cast<u8>(1u << l1_config.host_port));
  // Host replies are routed by the client CAM, which learned the upstream
  // neighbor's hop-by-hop MAC — the ingress rewrite must restore it.
  EXPECT_TRUE(io.reply_to_upstream);
}

// --- Runtime: backpressure ---------------------------------------------------

TEST(ChainRuntimeTest, OverloadShedsAtTheSourceNeverMidChain) {
  const Expected<std::unique_ptr<Scenario>> built = BuildScenarioFromText(kTwoStageSpec);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Scenario& scenario = **built;
  ASSERT_TRUE(scenario.has_chain);
  ChainRuntime& chain = scenario.chain;

  // 2us between sends against a 10us service time and a 2-deep queue: the
  // source's credit window must close.
  MemaslapLoadgen gen = TestLoadgen(/*seed=*/5, /*key_space=*/8);
  EventScheduler& clock = scenario.topology.host(scenario.source_host).scheduler();
  constexpr usize kRequests = 12;
  for (usize i = 0; i < kRequests; ++i) {
    clock.At(static_cast<Picoseconds>(i + 1) * 2 * kPicosPerMicro,
             [&chain, frame = gen.WorkloadFrame(i)]() mutable {
               chain.SourceSend(std::move(frame));
             });
  }
  scenario.Run();

  EXPECT_GT(chain.source_shed(), 0u);
  EXPECT_EQ(chain.source_replies(), kRequests - chain.source_shed());
  EXPECT_EQ(chain.stage(0).serviced_forward(), kRequests - chain.source_shed());
  EXPECT_EQ(chain.stage(0).lost_backpressure(), 0u);
  EXPECT_EQ(chain.stage(1).lost_backpressure(), 0u);
  std::vector<Finding> findings;
  chain.CollectFindings(findings);
  EXPECT_TRUE(findings.empty());
}

TEST(ChainRuntimeTest, FullQueueArrivalSurfacesAsLostBackpressure) {
  const Expected<std::unique_ptr<Scenario>> built = BuildScenarioFromText(kTwoStageSpec);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Scenario& scenario = **built;
  ASSERT_TRUE(scenario.has_chain);
  SimHost& client = scenario.topology.host(scenario.source_host);
  const MacAddress head_mac = scenario.chain.stage(0).host().mac();

  // Bypass SourceSend's credit window: hand-addressed frames sent straight
  // from the source host model a duplicating/credit-eating link. Eight
  // arrivals a microsecond apart against a 2-deep queue and a 10us service
  // time must overflow.
  MemaslapLoadgen gen = TestLoadgen(/*seed=*/3, /*key_space=*/8);
  EventScheduler& clock = client.scheduler();
  for (usize i = 0; i < 8; ++i) {
    Packet frame = gen.WorkloadFrame(i);
    EthernetView ev(frame);
    ev.set_source(client.mac());
    ev.set_destination(head_mac);
    clock.At(static_cast<Picoseconds>(i + 1) * kPicosPerMicro,
             [&client, frame = std::move(frame)]() mutable {
               client.Send(std::move(frame));
             });
  }
  scenario.Run();

  EXPECT_GT(scenario.chain.stage(0).lost_backpressure(), 0u);
  std::vector<Finding> findings;
  scenario.chain.CollectFindings(findings);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].check, "LOSTBACKPRESSURE");
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_EQ(findings[0].subject, "nat");
}

// --- Determinism and decomposition -------------------------------------------

struct ChainRun {
  u64 chain_digest = 0;
  u64 log_digest = 0;
  u64 attempts = 0;
  u64 shed = 0;
  u64 replies = 0;
  u64 head_forward = 0;
  std::vector<Finding> findings;
  std::string trace_json;
  std::vector<obs::StageDecomposition> rows;
};

// One chain_soak-shaped run: prewarm + 90/10 workload through the four-stage
// pipeline, traced, at the given thread count.
ChainRun RunFourStageChain(u64 seed, usize threads) {
  ChainRun out;
  FaultRegistry registry(seed);
  Expected<std::unique_ptr<Scenario>> built =
      BuildScenarioFromText(kFourStageSpec, &registry);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  if (!built.ok()) {
    return out;
  }
  Scenario& scenario = **built;
  ChainRuntime& chain = scenario.chain;

  obs::TraceSession trace;
  trace.Install();

  MemaslapLoadgen gen = TestLoadgen(seed, /*key_space=*/32);
  std::vector<Packet> frames;
  for (usize i = 0; i < gen.prewarm_count(); ++i) {
    frames.push_back(gen.PrewarmFrame(i));
  }
  for (usize i = 0; i < 60; ++i) {
    frames.push_back(gen.WorkloadFrame(i));
  }
  out.attempts = frames.size();
  EventScheduler& clock = scenario.topology.host(scenario.source_host).scheduler();
  for (usize i = 0; i < frames.size(); ++i) {
    clock.At(static_cast<Picoseconds>(i + 1) * 25 * kPicosPerMicro,
             [&chain, frame = std::move(frames[i])]() mutable {
               chain.SourceSend(std::move(frame));
             });
  }

  ParallelRunOptions opts;
  opts.threads = threads;
  scenario.Run(opts);

  out.chain_digest = chain.Digest();
  out.log_digest = registry.LogDigest();
  out.shed = chain.source_shed();
  out.replies = chain.source_replies();
  out.head_forward = chain.stage(0).serviced_forward();
  chain.CollectFindings(out.findings);
  out.trace_json = trace.ExportChromeJson();
  std::vector<std::string> stage_order;
  for (usize i = 0; i < chain.stage_count(); ++i) {
    stage_order.push_back(chain.stage(i).name());
  }
  out.rows = obs::DecomposeChainLatency(trace.MergedEvents(), stage_order);
  obs::TraceSession::Detach();
  return out;
}

TEST(ChainDeterminismTest, DigestAndTraceAreBitExactAcrossThreadsAndReplay) {
  const ChainRun serial = RunFourStageChain(/*seed=*/7, /*threads=*/1);
  const ChainRun parallel = RunFourStageChain(/*seed=*/7, /*threads=*/4);
  const ChainRun replay = RunFourStageChain(/*seed=*/7, /*threads=*/4);

  // Flow integrity on the parallel run: every admitted request reached the
  // head stage and produced exactly one reply at the source.
  EXPECT_TRUE(parallel.findings.empty());
  EXPECT_EQ(parallel.replies, parallel.attempts - parallel.shed);
  EXPECT_EQ(parallel.head_forward, parallel.attempts - parallel.shed);

  EXPECT_EQ(serial.chain_digest, parallel.chain_digest);
  EXPECT_EQ(serial.log_digest, parallel.log_digest);
  EXPECT_EQ(replay.chain_digest, parallel.chain_digest);
  ASSERT_FALSE(parallel.trace_json.empty());
  EXPECT_EQ(serial.trace_json, parallel.trace_json);
  EXPECT_EQ(replay.trace_json, parallel.trace_json);
}

TEST(ChainDeterminismTest, TraceDecomposesIntoPerStageLatencyRows) {
  const ChainRun run = RunFourStageChain(/*seed=*/11, /*threads=*/2);
  ASSERT_EQ(run.rows.size(), 4u);
  EXPECT_EQ(run.rows[0].stage, "filter");
  EXPECT_EQ(run.rows[3].stage, "pool");
  for (const obs::StageDecomposition& row : run.rows) {
    // Every stage on the chain saw traffic: both the queue-wait and the
    // service span populated (the Table 4 decomposition shape).
    EXPECT_GT(row.queue.count, 0u) << row.stage;
    EXPECT_GT(row.service.count, 0u) << row.stage;
    EXPECT_GE(row.service.total, row.service.count)  // nonzero mean service time
        << row.stage;
  }
}

}  // namespace
}  // namespace emu
