#include <gtest/gtest.h>

#include <array>
#include <set>
#include <string>
#include <vector>

#include "src/ip/bram.h"
#include "src/ip/cam.h"
#include "src/ip/checksum_unit.h"
#include "src/ip/dram_model.h"
#include "src/ip/hash_cam.h"
#include "src/ip/logic_cam.h"
#include "src/ip/naughty_q.h"
#include "src/ip/pearson_hash.h"

namespace emu {
namespace {

// --- Cam ----------------------------------------------------------------------

TEST(Cam, MissOnEmpty) {
  Simulator sim;
  Cam cam(sim, "cam", 16, 48, 8);
  EXPECT_FALSE(cam.Lookup(0x1234).hit);
}

TEST(Cam, WriteVisibleAfterEdge) {
  Simulator sim;
  Cam cam(sim, "cam", 16, 48, 8);
  cam.Write(3, 0xaabbccddee, 7);
  EXPECT_FALSE(cam.Lookup(0xaabbccddee).hit);  // pre-edge
  sim.Step();
  const CamLookupResult hit = cam.Lookup(0xaabbccddee);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.value, 7u);
  EXPECT_EQ(hit.index, 3u);
}

TEST(Cam, KeyIsMaskedToKeyWidth) {
  Simulator sim;
  Cam cam(sim, "cam", 8, 16, 8);
  cam.Write(0, 0xdeadbeef, 1);  // only 0xbeef survives the 16-bit mask
  sim.Step();
  EXPECT_TRUE(cam.Lookup(0xbeef).hit);
  EXPECT_TRUE(cam.Lookup(0xffffbeef).hit);  // same masked key
}

TEST(Cam, LowestIndexWinsOnDuplicateKeys) {
  Simulator sim;
  Cam cam(sim, "cam", 8, 48, 8);
  cam.Write(5, 0x42, 50);
  cam.Write(2, 0x42, 20);
  sim.Step();
  const CamLookupResult hit = cam.Lookup(0x42);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.index, 2u);  // priority encoder picks the lowest index
  EXPECT_EQ(hit.value, 20u);
}

TEST(Cam, InvalidateRemovesEntry) {
  Simulator sim;
  Cam cam(sim, "cam", 8, 48, 8);
  cam.Write(1, 0x42, 9);
  sim.Step();
  ASSERT_TRUE(cam.Lookup(0x42).hit);
  cam.Invalidate(1);
  EXPECT_TRUE(cam.Lookup(0x42).hit);  // still visible pre-edge
  sim.Step();
  EXPECT_FALSE(cam.Lookup(0x42).hit);
}

TEST(Cam, OverwriteSameIndexReplacesKey) {
  Simulator sim;
  Cam cam(sim, "cam", 8, 48, 8);
  cam.Write(0, 0x11, 1);
  sim.Step();
  cam.Write(0, 0x22, 2);
  sim.Step();
  EXPECT_FALSE(cam.Lookup(0x11).hit);
  EXPECT_TRUE(cam.Lookup(0x22).hit);
}

TEST(Cam, SingleCycleLookupLatency) {
  Simulator sim;
  Cam cam(sim, "cam", 8, 48, 8);
  EXPECT_EQ(cam.lookup_latency(), 1u);
}

// --- LogicCam: same behaviour, different cost profile ---------------------------

TEST(LogicCam, BehavesLikeIpCam) {
  Simulator sim;
  LogicCam cam(sim, "logic_cam", 16, 48, 8);
  cam.Write(4, 0xcafe, 11);
  sim.Step();
  const CamLookupResult hit = cam.Lookup(0xcafe);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(hit.value, 11u);
  cam.Invalidate(4);
  sim.Step();
  EXPECT_FALSE(cam.Lookup(0xcafe).hit);
}

TEST(LogicCam, SlowerAndLargerThanIp) {
  Simulator sim;
  Cam ip(sim, "ip", 256, 48, 8);
  LogicCam logic(sim, "logic", 256, 48, 8);
  EXPECT_GT(logic.lookup_latency(), ip.lookup_latency());
  EXPECT_GT(logic.resources().luts, ip.resources().luts);
  EXPECT_EQ(logic.resources().bram_units, 0u);
}

// Both CAM variants through the common interface.
class CamVariant : public ::testing::TestWithParam<bool> {
 protected:
  Simulator sim_;
};

TEST_P(CamVariant, FillAllEntriesThenLookupEach) {
  Cam ip(sim_, "ip", 32, 48, 16);
  LogicCam logic(sim_, "logic", 32, 48, 16);
  CamInterface& cam = GetParam() ? static_cast<CamInterface&>(ip) : logic;
  for (usize i = 0; i < cam.entries(); ++i) {
    cam.Write(i, 0x1000 + i, i * 3);
  }
  sim_.Step();
  for (usize i = 0; i < cam.entries(); ++i) {
    const CamLookupResult hit = cam.Lookup(0x1000 + i);
    ASSERT_TRUE(hit.hit) << "entry " << i;
    EXPECT_EQ(hit.value, i * 3);
    EXPECT_EQ(hit.index, i);
  }
  EXPECT_FALSE(cam.Lookup(0x2000).hit);
}

INSTANTIATE_TEST_SUITE_P(IpAndLogic, CamVariant, ::testing::Bool());

// --- Bram -----------------------------------------------------------------------

TEST(Bram, ReadsZeroInitially) {
  Simulator sim;
  Bram ram(sim, "ram", 64, 32);
  EXPECT_EQ(ram.Read(13), 0u);
}

TEST(Bram, WriteCommitsOnEdge) {
  Simulator sim;
  Bram ram(sim, "ram", 64, 32);
  ram.Write(5, 0xabcd);
  EXPECT_EQ(ram.Read(5), 0u);
  sim.Step();
  EXPECT_EQ(ram.Read(5), 0xabcdu);
}

TEST(Bram, WordWidthMasksValue) {
  Simulator sim;
  Bram ram(sim, "ram", 8, 8);
  ram.Write(0, 0x1ff);
  sim.Step();
  EXPECT_EQ(ram.Read(0), 0xffu);
}

TEST(Bram, ResourcesScaleWithCapacity) {
  Simulator sim;
  Bram small(sim, "small", 64, 32);
  Bram big(sim, "big", 65536, 64);
  EXPECT_GT(big.resources().bram_units, small.resources().bram_units);
}

// --- DramModel --------------------------------------------------------------------

TEST(Dram, RowHitFasterThanRowMiss) {
  Simulator sim;
  DramModel dram(sim, "dram", 1 << 20);
  // Issue outside any refresh window (cycle 100).
  const Cycle first = dram.AccessLatency(0, 100);    // row miss (cold)
  const Cycle second = dram.AccessLatency(8, 101);   // same row: hit
  EXPECT_GT(first, second);
}

TEST(Dram, RefreshWindowAddsStall) {
  Simulator sim;
  DramTiming timing;
  DramModel dram(sim, "dram", 1 << 20, timing);
  dram.AccessLatency(0, 100);  // open the row
  const Cycle quiet = dram.AccessLatency(8, 200);
  // Refresh starts at multiples of refresh_interval; probe right inside one.
  const Cycle stalled = dram.AccessLatency(16, timing.refresh_interval + 1);
  EXPECT_GT(stalled, quiet);
}

TEST(Dram, LatencyVariesAcrossTime) {
  Simulator sim;
  DramModel dram(sim, "dram", 1 << 20);
  std::set<Cycle> latencies;
  for (Cycle t = 0; t < 4000; t += 37) {
    latencies.insert(dram.AccessLatency((t * 64) % (1 << 20), t));
  }
  // The §5.4 point: DRAM latency is *variable*.
  EXPECT_GT(latencies.size(), 2u);
}

TEST(Dram, ReadBackWrittenValue) {
  Simulator sim;
  DramModel dram(sim, "dram", 1 << 16);
  dram.Write(1024, 0x1122334455667788ULL);
  EXPECT_EQ(dram.Read(1024), 0x1122334455667788ULL);
  EXPECT_EQ(dram.Read(2048), 0u);
}

// --- PearsonHash ---------------------------------------------------------------

TEST(PearsonHash, TableIsAPermutation) {
  std::array<bool, 256> seen{};
  for (u8 v : PearsonTable()) {
    EXPECT_FALSE(seen[v]) << "duplicate value " << static_cast<int>(v);
    seen[v] = true;
  }
}

TEST(PearsonHash, DeterministicAndInputSensitive) {
  const std::string a = "hello";
  const std::string b = "hellp";
  const auto bytes = [](const std::string& s) {
    return std::span<const u8>(reinterpret_cast<const u8*>(s.data()), s.size());
  };
  EXPECT_EQ(PearsonHash64(bytes(a)), PearsonHash64(bytes(a)));
  EXPECT_NE(PearsonHash64(bytes(a)), PearsonHash64(bytes(b)));
}

TEST(PearsonHash, EmptyInputHashesToZero) {
  EXPECT_EQ(PearsonHash64(std::span<const u8>{}), 0u);
}

TEST(PearsonHash, KeyOverloadMatchesByteOverload) {
  const u64 key = 0x0102030405060708ULL;
  u8 bytes[8];
  for (usize i = 0; i < 8; ++i) {
    bytes[i] = static_cast<u8>(key >> (8 * i));
  }
  EXPECT_EQ(PearsonHash64(key), PearsonHash64(std::span<const u8>(bytes, 8)));
}

TEST(PearsonHash, DistributesAcrossBuckets) {
  std::set<u64> buckets;
  for (u64 k = 0; k < 256; ++k) {
    buckets.insert(PearsonHash64(k) % 64);
  }
  EXPECT_GT(buckets.size(), 48u);  // most of 64 buckets touched
}

HwProcess SeedAll(PearsonHashIp& core, std::span<const u8> data, Reg<bool>& done) {
  for (u8 byte : data) {
    // Inline the client handshake (coroutines cannot call sub-coroutines
    // without an awaitable wrapper; services do the same).
    while (!core.init_hash_ready().Read()) {
      co_await Pause();
    }
    core.data_in().Write(byte);
    core.init_hash_enable().Write(true);
    co_await Pause();
    core.init_hash_enable().Write(false);
    co_await Pause();
  }
  done.Write(true);
  co_await Pause();
}

TEST(PearsonHashIp, HardwareMatchesSoftware) {
  Simulator sim;
  PearsonHashIp core(sim, "pearson");
  Reg<bool> done(sim, false);
  const std::array<u8, 5> data = {'e', 'm', 'u', '1', '7'};
  sim.AddProcess(core.MakeProcess(), "core");
  sim.AddProcess(SeedAll(core, data, done), "client");
  ASSERT_TRUE(sim.RunUntil([&] { return done.Read(); }, 200));
  // Let the final absorb commit.
  sim.Run(2);
  EXPECT_EQ(core.hash_out().Read(), PearsonHash64(data));
}

// --- NaughtyQ -------------------------------------------------------------------

TEST(NaughtyQ, EnlistReadRoundTrip) {
  Simulator sim;
  NaughtyQ q(sim, "q", 4);
  const auto r = q.Enlist(0xaa);
  EXPECT_FALSE(r.evicted);
  EXPECT_EQ(q.Read(r.index), 0xaau);
  EXPECT_EQ(q.size(), 1u);
}

TEST(NaughtyQ, EvictsLeastRecentlyUsedWhenFull) {
  Simulator sim;
  NaughtyQ q(sim, "q", 3);
  const auto a = q.Enlist(1);
  q.Enlist(2);
  q.Enlist(3);
  EXPECT_TRUE(q.Full());
  const auto d = q.Enlist(4);
  EXPECT_TRUE(d.evicted);
  EXPECT_EQ(d.evicted_value, 1u);  // oldest
  EXPECT_EQ(d.index, a.index);     // slot reused
}

TEST(NaughtyQ, BackOfQProtectsFromEviction) {
  Simulator sim;
  NaughtyQ q(sim, "q", 3);
  const auto a = q.Enlist(1);
  q.Enlist(2);
  q.Enlist(3);
  q.BackOfQ(a.index);  // touch 1: now 2 is the LRU
  const auto d = q.Enlist(4);
  EXPECT_TRUE(d.evicted);
  EXPECT_EQ(d.evicted_value, 2u);
}

TEST(NaughtyQ, FrontIndexTracksLru) {
  Simulator sim;
  NaughtyQ q(sim, "q", 3);
  const auto a = q.Enlist(1);
  const auto b = q.Enlist(2);
  EXPECT_EQ(q.FrontIndex(), a.index);
  q.BackOfQ(a.index);
  EXPECT_EQ(q.FrontIndex(), b.index);
}

TEST(NaughtyQ, SequentialEvictionOrderIsFifoWithoutTouches) {
  Simulator sim;
  NaughtyQ q(sim, "q", 4);
  for (u64 v = 0; v < 4; ++v) {
    q.Enlist(v);
  }
  for (u64 v = 4; v < 12; ++v) {
    const auto r = q.Enlist(v);
    ASSERT_TRUE(r.evicted);
    EXPECT_EQ(r.evicted_value, v - 4);
  }
}

// --- HashCam --------------------------------------------------------------------

TEST(HashCam, MissWhenEmpty) {
  Simulator sim;
  HashCam cam(sim, "hc", 64);
  cam.Read(0x1234);
  EXPECT_FALSE(cam.matched());
}

TEST(HashCam, WriteThenReadMatches) {
  Simulator sim;
  HashCam cam(sim, "hc", 64);
  ASSERT_TRUE(cam.Write(0xfeed, 17));
  const u64 idx = cam.Read(0xfeed);
  EXPECT_TRUE(cam.matched());
  EXPECT_EQ(idx, 17u);
}

TEST(HashCam, WriteUpdatesExistingKey) {
  Simulator sim;
  HashCam cam(sim, "hc", 64);
  ASSERT_TRUE(cam.Write(0xfeed, 1));
  ASSERT_TRUE(cam.Write(0xfeed, 2));
  EXPECT_EQ(cam.Read(0xfeed), 2u);
}

TEST(HashCam, EraseRemovesBinding) {
  Simulator sim;
  HashCam cam(sim, "hc", 64);
  ASSERT_TRUE(cam.Write(0xfeed, 1));
  cam.Erase(0xfeed);
  cam.Read(0xfeed);
  EXPECT_FALSE(cam.matched());
}

TEST(HashCam, EraseMidChainDoesNotOrphanLaterKeys) {
  Simulator sim;
  HashCam cam(sim, "hc", 16);
  // Load enough keys that probe chains form, then erase some and verify the
  // rest stay reachable (Read scans the whole probe window, so no tombstones
  // are needed).
  std::vector<u64> keys;
  for (u64 k = 0; k < 200 && keys.size() < 12; ++k) {
    if (cam.Write(k, k * 10)) {
      keys.push_back(k);
    }
  }
  ASSERT_GE(keys.size(), 8u);
  cam.Erase(keys[0]);
  cam.Erase(keys[2]);
  for (usize i = 0; i < keys.size(); ++i) {
    const u64 idx = cam.Read(keys[i]);
    if (i == 0 || i == 2) {
      EXPECT_FALSE(cam.matched());
    } else {
      EXPECT_TRUE(cam.matched()) << "key " << keys[i];
      EXPECT_EQ(idx, keys[i] * 10);
    }
  }
}

TEST(HashCam, WriteFailsWhenProbeWindowFull) {
  Simulator sim;
  HashCam cam(sim, "hc", 8);  // tiny: 8 buckets, window 8
  usize installed = 0;
  for (u64 k = 0; k < 64; ++k) {
    if (cam.Write(k, k)) {
      ++installed;
    }
  }
  EXPECT_LE(installed, 8u);
  EXPECT_LT(installed, 64u);
}

// --- ChecksumUnit ---------------------------------------------------------------

TEST(Checksum, Rfc1071ReferenceVector) {
  // Classic example: 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 ->
  // fold -> 0xddf2, complement -> 0x220d.
  Simulator sim;
  ChecksumUnit unit(sim, "csum");
  unit.Add16(0x0001);
  unit.Add16(0xf203);
  unit.Add16(0xf4f5);
  unit.Add16(0xf6f7);
  EXPECT_EQ(unit.Result(), 0x220d);
}

TEST(Checksum, OddByteCountPadsLow) {
  Simulator sim;
  ChecksumUnit unit(sim, "csum");
  const std::array<u8, 3> data = {0x01, 0x02, 0x03};
  unit.AddBytes(data);
  // Sum = 0x0102 + 0x0300 = 0x0402 -> ~ = 0xfbfd.
  EXPECT_EQ(unit.Result(), 0xfbfd);
}

TEST(Checksum, ResetClearsState) {
  Simulator sim;
  ChecksumUnit unit(sim, "csum");
  unit.Add16(0x1234);
  unit.Reset();
  unit.Add16(0x0001);
  EXPECT_EQ(unit.Result(), static_cast<u16>(~0x0001 & 0xffff));
}

TEST(Checksum, InjectedFoldBugOnlyShowsOnCarry) {
  Simulator sim;
  ChecksumUnit good(sim, "good");
  ChecksumUnit bad(sim, "bad");
  bad.InjectFoldBug(true);

  // Small sum, no carry out of 16 bits: the bug is invisible (why the
  // paper's simulation missed it).
  good.Add16(0x0102);
  bad.Add16(0x0102);
  EXPECT_EQ(good.Result(), bad.Result());

  // Large sum with carries: results diverge.
  good.Reset();
  bad.Reset();
  for (int i = 0; i < 10; ++i) {
    good.Add16(0xffff);
    bad.Add16(0xffff);
  }
  EXPECT_NE(good.Result(), bad.Result());
}

TEST(Checksum, VerifyPropertySumWithChecksumIsZero) {
  // Property: appending the computed checksum makes the folded sum 0xffff
  // (i.e. verification yields 0) for arbitrary payloads.
  Simulator sim;
  for (u64 seed = 1; seed <= 5; ++seed) {
    ChecksumUnit unit(sim, "csum");
    std::vector<u8> payload;
    for (usize i = 0; i < 40 + seed * 7; ++i) {
      payload.push_back(static_cast<u8>(seed * 37 + i * 11));
    }
    unit.AddBytes(payload);
    const u16 checksum = unit.Result();

    ChecksumUnit verify(sim, "verify");
    std::vector<u8> with_sum = payload;
    if (with_sum.size() % 2 != 0) {
      with_sum.push_back(0);
    }
    with_sum.push_back(static_cast<u8>(checksum >> 8));
    with_sum.push_back(static_cast<u8>(checksum));
    verify.AddBytes(with_sum);
    EXPECT_EQ(verify.Result(), 0u) << "seed " << seed;
  }
}

TEST(Checksum, CycleCostModel) {
  Simulator sim;
  ChecksumUnit unit(sim, "csum");
  EXPECT_EQ(unit.CyclesForBytes(0), 1u);
  EXPECT_EQ(unit.CyclesForBytes(64), 9u);
}

}  // namespace
}  // namespace emu
