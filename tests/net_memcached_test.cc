#include <gtest/gtest.h>

#include "src/net/memcached.h"

namespace emu {
namespace {

// --- Binary protocol ------------------------------------------------------------

TEST(McBinary, GetRequestRoundTrip) {
  McRequest request;
  request.protocol = McProtocol::kBinary;
  request.op = McOpcode::kGet;
  request.key = "abc123";  // the paper's initial 6-byte keys
  request.opaque = 0xdeadbeef;
  const std::vector<u8> wire = BuildMcBinaryRequest(request);
  EXPECT_EQ(wire.size(), kMcBinaryHeaderSize + 6);
  auto parsed = ParseMcBinaryRequest(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->op, McOpcode::kGet);
  EXPECT_EQ(parsed->key, "abc123");
  EXPECT_EQ(parsed->opaque, 0xdeadbeefu);
  EXPECT_TRUE(parsed->value.empty());
}

TEST(McBinary, SetRequestRoundTrip) {
  McRequest request;
  request.protocol = McProtocol::kBinary;
  request.op = McOpcode::kSet;
  request.key = "key001";
  request.value = "12345678";  // 8-byte value
  request.flags = 42;
  request.expiry = 3600;
  const std::vector<u8> wire = BuildMcBinaryRequest(request);
  auto parsed = ParseMcBinaryRequest(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->op, McOpcode::kSet);
  EXPECT_EQ(parsed->key, "key001");
  EXPECT_EQ(parsed->value, "12345678");
  EXPECT_EQ(parsed->flags, 42u);
  EXPECT_EQ(parsed->expiry, 3600u);
}

TEST(McBinary, DeleteRequestRoundTrip) {
  McRequest request;
  request.op = McOpcode::kDelete;
  request.key = "gone";
  auto parsed = ParseMcBinaryRequest(BuildMcBinaryRequest(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->op, McOpcode::kDelete);
  EXPECT_EQ(parsed->key, "gone");
}

TEST(McBinary, GetHitResponseRoundTrip) {
  McResponse response;
  response.protocol = McProtocol::kBinary;
  response.op = McOpcode::kGet;
  response.status = McStatus::kNoError;
  response.value = "payload!";
  response.flags = 7;
  response.opaque = 99;
  auto parsed = ParseMcBinaryResponse(BuildMcBinaryResponse(response));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, McStatus::kNoError);
  EXPECT_EQ(parsed->value, "payload!");
  EXPECT_EQ(parsed->flags, 7u);
  EXPECT_EQ(parsed->opaque, 99u);
}

TEST(McBinary, MissResponseCarriesStatus) {
  McResponse response;
  response.op = McOpcode::kGet;
  response.status = McStatus::kKeyNotFound;
  auto parsed = ParseMcBinaryResponse(BuildMcBinaryResponse(response));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, McStatus::kKeyNotFound);
  EXPECT_TRUE(parsed->value.empty());
}

TEST(McBinary, RejectsBadMagic) {
  McRequest request;
  request.op = McOpcode::kGet;
  request.key = "k";
  std::vector<u8> wire = BuildMcBinaryRequest(request);
  wire[0] = 0x42;
  EXPECT_FALSE(ParseMcBinaryRequest(wire).ok());
}

TEST(McBinary, RejectsTruncatedBody) {
  McRequest request;
  request.op = McOpcode::kSet;
  request.key = "key";
  request.value = "value";
  std::vector<u8> wire = BuildMcBinaryRequest(request);
  wire.resize(wire.size() - 2);
  EXPECT_FALSE(ParseMcBinaryRequest(wire).ok());
}

TEST(McBinary, RejectsUnsupportedOpcode) {
  McRequest request;
  request.op = McOpcode::kGet;
  request.key = "k";
  std::vector<u8> wire = BuildMcBinaryRequest(request);
  wire[1] = 0x1d;  // some opcode we do not speak
  EXPECT_FALSE(ParseMcBinaryRequest(wire).ok());
}

TEST(McBinary, ResponseParserRejectsRequestMagic) {
  McRequest request;
  request.op = McOpcode::kGet;
  request.key = "k";
  EXPECT_FALSE(ParseMcBinaryResponse(BuildMcBinaryRequest(request)).ok());
}

// --- ASCII protocol --------------------------------------------------------------

TEST(McAscii, GetRequestRoundTrip) {
  McRequest request;
  request.protocol = McProtocol::kAscii;
  request.op = McOpcode::kGet;
  request.key = "user:42";
  const std::vector<u8> wire = BuildMcAsciiRequest(request);
  EXPECT_EQ(std::string(wire.begin(), wire.end()), "get user:42\r\n");
  auto parsed = ParseMcAsciiRequest(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->op, McOpcode::kGet);
  EXPECT_EQ(parsed->key, "user:42");
}

TEST(McAscii, SetRequestRoundTrip) {
  McRequest request;
  request.protocol = McProtocol::kAscii;
  request.op = McOpcode::kSet;
  request.key = "k1";
  request.value = "hello world";
  request.flags = 5;
  request.expiry = 100;
  auto parsed = ParseMcAsciiRequest(BuildMcAsciiRequest(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->op, McOpcode::kSet);
  EXPECT_EQ(parsed->key, "k1");
  EXPECT_EQ(parsed->value, "hello world");
  EXPECT_EQ(parsed->flags, 5u);
  EXPECT_EQ(parsed->expiry, 100u);
}

TEST(McAscii, SetValueMayContainSpaces) {
  McRequest request;
  request.protocol = McProtocol::kAscii;
  request.op = McOpcode::kSet;
  request.key = "k";
  request.value = "a b\r\nc";  // binary-ish payload, length-delimited
  auto parsed = ParseMcAsciiRequest(BuildMcAsciiRequest(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->value, "a b\r\nc");
}

TEST(McAscii, DeleteRequestRoundTrip) {
  McRequest request;
  request.protocol = McProtocol::kAscii;
  request.op = McOpcode::kDelete;
  request.key = "dead";
  auto parsed = ParseMcAsciiRequest(BuildMcAsciiRequest(request));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->op, McOpcode::kDelete);
  EXPECT_EQ(parsed->key, "dead");
}

TEST(McAscii, GetHitResponseRoundTrip) {
  McResponse response;
  response.protocol = McProtocol::kAscii;
  response.op = McOpcode::kGet;
  response.status = McStatus::kNoError;
  response.key = "user:42";
  response.value = "data";
  response.flags = 3;
  const std::vector<u8> wire = BuildMcAsciiResponse(response);
  const std::string text(wire.begin(), wire.end());
  EXPECT_EQ(text, "VALUE user:42 3 4\r\ndata\r\nEND\r\n");
  auto parsed = ParseMcAsciiResponse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, McStatus::kNoError);
  EXPECT_EQ(parsed->value, "data");
}

TEST(McAscii, GetMissIsEnd) {
  McResponse response;
  response.protocol = McProtocol::kAscii;
  response.op = McOpcode::kGet;
  response.status = McStatus::kKeyNotFound;
  const std::vector<u8> wire = BuildMcAsciiResponse(response);
  EXPECT_EQ(std::string(wire.begin(), wire.end()), "END\r\n");
  auto parsed = ParseMcAsciiResponse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, McStatus::kKeyNotFound);
}

TEST(McAscii, StoredAndDeletedResponses) {
  McResponse stored;
  stored.protocol = McProtocol::kAscii;
  stored.op = McOpcode::kSet;
  auto parsed = ParseMcAsciiResponse(BuildMcAsciiResponse(stored));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status, McStatus::kNoError);

  McResponse missing;
  missing.protocol = McProtocol::kAscii;
  missing.op = McOpcode::kDelete;
  missing.status = McStatus::kKeyNotFound;
  parsed = ParseMcAsciiResponse(BuildMcAsciiResponse(missing));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->op, McOpcode::kDelete);
  EXPECT_EQ(parsed->status, McStatus::kKeyNotFound);
}

TEST(McAscii, RejectsUnknownCommand) {
  const std::string wire = "incr foo 1\r\n";
  EXPECT_FALSE(
      ParseMcAsciiRequest(std::span<const u8>(reinterpret_cast<const u8*>(wire.data()),
                                              wire.size()))
          .ok());
}

TEST(McAscii, RejectsMissingCrlf) {
  const std::string wire = "get key";
  EXPECT_FALSE(
      ParseMcAsciiRequest(std::span<const u8>(reinterpret_cast<const u8*>(wire.data()),
                                              wire.size()))
          .ok());
}

TEST(McAscii, RejectsTruncatedSetData) {
  const std::string wire = "set k 0 0 10\r\nshort\r\n";
  EXPECT_FALSE(
      ParseMcAsciiRequest(std::span<const u8>(reinterpret_cast<const u8*>(wire.data()),
                                              wire.size()))
          .ok());
}

// --- Dispatch helpers --------------------------------------------------------------

class McProtocolParam : public ::testing::TestWithParam<McProtocol> {};

TEST_P(McProtocolParam, DispatchRoundTripsAllOps) {
  for (McOpcode op : {McOpcode::kGet, McOpcode::kSet, McOpcode::kDelete}) {
    McRequest request;
    request.protocol = GetParam();
    request.op = op;
    request.key = "key42";
    if (op == McOpcode::kSet) {
      request.value = "value";
    }
    auto parsed = ParseMcRequest(BuildMcRequest(request), GetParam());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->op, op);
    EXPECT_EQ(parsed->key, "key42");
    EXPECT_EQ(parsed->protocol, GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(BothProtocols, McProtocolParam,
                         ::testing::Values(McProtocol::kBinary, McProtocol::kAscii));

}  // namespace
}  // namespace emu
