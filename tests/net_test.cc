#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/net/arp.h"
#include "src/net/checksum.h"
#include "src/net/ethernet.h"
#include "src/net/icmp.h"
#include "src/net/ipv4.h"
#include "src/net/mac_address.h"
#include "src/net/packet.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"

namespace emu {
namespace {

const MacAddress kMacA = MacAddress::FromU48(0x02aabbccdd01);
const MacAddress kMacB = MacAddress::FromU48(0x02aabbccdd02);
const Ipv4Address kIpA(10, 0, 0, 1);
const Ipv4Address kIpB(10, 0, 0, 2);

// --- MacAddress / Ipv4Address -------------------------------------------------

TEST(MacAddress, U48RoundTrip) {
  const MacAddress mac = MacAddress::FromU48(0x0123456789ab);
  EXPECT_EQ(mac.ToU48(), 0x0123456789abULL);
  EXPECT_EQ(mac.ToString(), "01:23:45:67:89:ab");
}

TEST(MacAddress, ParseValid) {
  auto mac = MacAddress::Parse("de:ad:be:ef:00:01");
  ASSERT_TRUE(mac.ok());
  EXPECT_EQ(mac->ToU48(), 0xdeadbeef0001ULL);
}

TEST(MacAddress, ParseRejectsGarbage) {
  EXPECT_FALSE(MacAddress::Parse("de:ad:be:ef:00").ok());
  EXPECT_FALSE(MacAddress::Parse("de:ad:be:ef:00:zz").ok());
  EXPECT_FALSE(MacAddress::Parse("de:ad:be:ef:00:01:02").ok());
  EXPECT_FALSE(MacAddress::Parse("").ok());
}

TEST(MacAddress, BroadcastAndMulticast) {
  EXPECT_TRUE(MacAddress::Broadcast().IsBroadcast());
  EXPECT_TRUE(MacAddress::Broadcast().IsMulticast());
  EXPECT_TRUE(MacAddress::FromU48(0x010000000000).IsMulticast());
  EXPECT_FALSE(kMacA.IsMulticast());
  EXPECT_FALSE(kMacA.IsBroadcast());
}

TEST(Ipv4Address, ParseAndFormat) {
  auto ip = Ipv4Address::Parse("192.168.1.200");
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->value(), 0xc0a801c8u);
  EXPECT_EQ(ip->ToString(), "192.168.1.200");
}

TEST(Ipv4Address, ParseRejectsGarbage) {
  EXPECT_FALSE(Ipv4Address::Parse("192.168.1").ok());
  EXPECT_FALSE(Ipv4Address::Parse("192.168.1.256").ok());
  EXPECT_FALSE(Ipv4Address::Parse("a.b.c.d").ok());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4.5").ok());
}

TEST(Ipv4Address, SubnetMatch) {
  const Ipv4Address net(192, 168, 1, 0);
  EXPECT_TRUE(Ipv4Address(192, 168, 1, 77).InSubnet(net, 24));
  EXPECT_FALSE(Ipv4Address(192, 168, 2, 77).InSubnet(net, 24));
  EXPECT_TRUE(Ipv4Address(8, 8, 8, 8).InSubnet(net, 0));
}

// --- Ethernet -----------------------------------------------------------------

TEST(Ethernet, BuildAndParseFrame) {
  const std::vector<u8> payload = {1, 2, 3, 4};
  Packet frame = MakeEthernetFrame(kMacB, kMacA, EtherType::kIpv4, payload);
  EXPECT_EQ(frame.size(), kEthernetMinFrame);  // padded
  EthernetView eth(frame);
  ASSERT_TRUE(eth.Valid());
  EXPECT_EQ(eth.destination(), kMacB);
  EXPECT_EQ(eth.source(), kMacA);
  EXPECT_TRUE(eth.EtherTypeIs(EtherType::kIpv4));
  EXPECT_EQ(eth.Payload()[0], 1);
}

TEST(Ethernet, LargePayloadNotPadded) {
  std::vector<u8> payload(500, 0xab);
  Packet frame = MakeEthernetFrame(kMacB, kMacA, EtherType::kArp, payload);
  EXPECT_EQ(frame.size(), kEthernetHeaderSize + 500);
}

TEST(Ethernet, SettersRewriteHeader) {
  Packet frame = MakeEthernetFrame(kMacB, kMacA, EtherType::kIpv4, {});
  EthernetView eth(frame);
  eth.set_destination(kMacA);
  eth.set_source(kMacB);
  eth.set_ether_type(EtherType::kArp);
  EXPECT_EQ(eth.destination(), kMacA);
  EXPECT_EQ(eth.source(), kMacB);
  EXPECT_TRUE(eth.EtherTypeIs(EtherType::kArp));
}

// --- IPv4 ----------------------------------------------------------------------

TEST(Ipv4, BuildProducesValidHeader) {
  const std::vector<u8> l4(8, 0x11);
  Ipv4PacketSpec spec{kMacB, kMacA, kIpA, kIpB, IpProtocol::kUdp, 64, 7};
  Packet frame = MakeIpv4Packet(spec, l4);
  Ipv4View ip(frame);
  ASSERT_TRUE(ip.Valid());
  EXPECT_EQ(ip.version(), 4);
  EXPECT_EQ(ip.ihl(), 5);
  EXPECT_EQ(ip.total_length(), kIpv4MinHeaderSize + 8);
  EXPECT_EQ(ip.identification(), 7);
  EXPECT_EQ(ip.ttl(), 64);
  EXPECT_TRUE(ip.ProtocolIs(IpProtocol::kUdp));
  EXPECT_EQ(ip.source(), kIpA);
  EXPECT_EQ(ip.destination(), kIpB);
  EXPECT_TRUE(ip.ChecksumValid());
}

TEST(Ipv4, ChecksumDetectsCorruption) {
  Ipv4PacketSpec spec{kMacB, kMacA, kIpA, kIpB, IpProtocol::kUdp, 64, 0};
  Packet frame = MakeIpv4Packet(spec, std::vector<u8>(4, 0));
  Ipv4View ip(frame);
  ASSERT_TRUE(ip.ChecksumValid());
  frame[kEthernetHeaderSize + 8] ^= 0xff;  // flip TTL
  EXPECT_FALSE(ip.ChecksumValid());
}

TEST(Ipv4, RewriteAddressThenUpdateChecksum) {
  Ipv4PacketSpec spec{kMacB, kMacA, kIpA, kIpB, IpProtocol::kUdp, 64, 0};
  Packet frame = MakeIpv4Packet(spec, std::vector<u8>(4, 0));
  Ipv4View ip(frame);
  ip.set_source(Ipv4Address(172, 16, 0, 1));  // what the NAT does
  EXPECT_FALSE(ip.ChecksumValid());
  ip.UpdateChecksum();
  EXPECT_TRUE(ip.ChecksumValid());
  EXPECT_EQ(ip.source(), Ipv4Address(172, 16, 0, 1));
}

TEST(Ipv4, InvalidWhenTruncated) {
  Packet frame(kEthernetHeaderSize + 10);
  Ipv4View ip(frame);
  EXPECT_FALSE(ip.Valid());
}

TEST(Ipv4, InvalidWhenVersionWrong) {
  Ipv4PacketSpec spec{kMacB, kMacA, kIpA, kIpB, IpProtocol::kUdp, 64, 0};
  Packet frame = MakeIpv4Packet(spec, std::vector<u8>(4, 0));
  Ipv4View ip(frame);
  ip.SetVersionIhl(6, 5);
  EXPECT_FALSE(ip.Valid());
}

TEST(Ipv4, PayloadSpansDeclaredLength) {
  const std::vector<u8> l4 = {9, 8, 7};
  Ipv4PacketSpec spec{kMacB, kMacA, kIpA, kIpB, IpProtocol::kUdp, 64, 0};
  Packet frame = MakeIpv4Packet(spec, l4);
  Ipv4View ip(frame);
  ASSERT_TRUE(ip.Valid());
  const auto payload = ip.Payload();
  ASSERT_EQ(payload.size(), 3u);  // ignores Ethernet padding
  EXPECT_EQ(payload[0], 9);
}

// --- Checksum software vs reference ------------------------------------------

TEST(ChecksumSw, Rfc1071Vector) {
  const std::array<u8, 8> data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum(data), 0x220d);
}

TEST(ChecksumSw, VerifyingWithChecksumYieldsZero) {
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    std::vector<u8> data(2 * (10 + rng.NextBelow(50)), 0);
    for (auto& b : data) {
      b = static_cast<u8>(rng.NextU64());
    }
    const u16 checksum = InternetChecksum(data);
    data.push_back(static_cast<u8>(checksum >> 8));
    data.push_back(static_cast<u8>(checksum));
    EXPECT_EQ(InternetChecksum(data), 0u);
  }
}

// --- ARP -----------------------------------------------------------------------

TEST(Arp, RequestWellFormed) {
  Packet frame = MakeArpRequest(kMacA, kIpA, kIpB);
  EthernetView eth(frame);
  EXPECT_TRUE(eth.destination().IsBroadcast());
  EXPECT_TRUE(eth.EtherTypeIs(EtherType::kArp));
  ArpView arp(frame);
  ASSERT_TRUE(arp.Valid());
  EXPECT_TRUE(arp.OperIs(ArpOper::kRequest));
  EXPECT_EQ(arp.sender_mac(), kMacA);
  EXPECT_EQ(arp.sender_ip(), kIpA);
  EXPECT_EQ(arp.target_ip(), kIpB);
}

TEST(Arp, ReplyAnswersRequest) {
  Packet frame = MakeArpReply(kMacB, kIpB, kMacA, kIpA);
  ArpView arp(frame);
  ASSERT_TRUE(arp.Valid());
  EXPECT_TRUE(arp.OperIs(ArpOper::kReply));
  EXPECT_EQ(arp.sender_mac(), kMacB);
  EXPECT_EQ(arp.target_mac(), kMacA);
  EthernetView eth(frame);
  EXPECT_EQ(eth.destination(), kMacA);  // unicast reply
}

// --- ICMP -----------------------------------------------------------------------

TEST(Icmp, EchoRequestWellFormed) {
  const std::vector<u8> payload = {'p', 'i', 'n', 'g'};
  Packet frame = MakeIcmpEchoRequest({kMacB, kMacA, kIpA, kIpB, 0x1234, 7}, payload);
  Ipv4View ip(frame);
  ASSERT_TRUE(ip.Valid());
  EXPECT_TRUE(ip.ProtocolIs(IpProtocol::kIcmp));
  IcmpView icmp(frame, ip.payload_offset());
  ASSERT_TRUE(icmp.Valid());
  EXPECT_TRUE(icmp.TypeIs(IcmpType::kEchoRequest));
  EXPECT_EQ(icmp.identifier(), 0x1234);
  EXPECT_EQ(icmp.sequence(), 7);
  EXPECT_TRUE(icmp.ChecksumValid(kIcmpHeaderSize + payload.size()));
}

TEST(Icmp, ChecksumCoversPayload) {
  const std::vector<u8> payload = {'p', 'i', 'n', 'g'};
  Packet frame = MakeIcmpEchoRequest({kMacB, kMacA, kIpA, kIpB, 1, 1}, payload);
  Ipv4View ip(frame);
  IcmpView icmp(frame, ip.payload_offset());
  frame[ip.payload_offset() + kIcmpHeaderSize] ^= 0x5a;  // corrupt payload
  EXPECT_FALSE(icmp.ChecksumValid(kIcmpHeaderSize + payload.size()));
}

// --- UDP ------------------------------------------------------------------------

TEST(Udp, BuildAndParse) {
  const std::vector<u8> payload = {'d', 'n', 's'};
  Packet frame = MakeUdpPacket({kMacB, kMacA, kIpA, kIpB, 5353, 53}, payload);
  Ipv4View ip(frame);
  ASSERT_TRUE(ip.Valid());
  UdpView udp(frame, ip.payload_offset());
  ASSERT_TRUE(udp.Valid());
  EXPECT_EQ(udp.source_port(), 5353);
  EXPECT_EQ(udp.destination_port(), 53);
  EXPECT_EQ(udp.length(), kUdpHeaderSize + 3);
  EXPECT_TRUE(udp.ChecksumValid(ip));
  EXPECT_EQ(udp.Payload()[0], 'd');
}

TEST(Udp, ChecksumDetectsPayloadCorruption) {
  Packet frame = MakeUdpPacket({kMacB, kMacA, kIpA, kIpB, 1, 2}, std::vector<u8>{1, 2, 3, 4});
  Ipv4View ip(frame);
  UdpView udp(frame, ip.payload_offset());
  ASSERT_TRUE(udp.ChecksumValid(ip));
  frame[ip.payload_offset() + kUdpHeaderSize] ^= 0xff;
  EXPECT_FALSE(udp.ChecksumValid(ip));
}

TEST(Udp, ZeroChecksumMeansUnchecked) {
  Packet frame = MakeUdpPacket({kMacB, kMacA, kIpA, kIpB, 1, 2}, std::vector<u8>{1});
  Ipv4View ip(frame);
  UdpView udp(frame, ip.payload_offset());
  udp.set_checksum(0);
  EXPECT_TRUE(udp.ChecksumValid(ip));
}

// --- TCP ------------------------------------------------------------------------

TEST(Tcp, SynSegmentWellFormed) {
  TcpSegmentSpec spec{kMacB, kMacA, kIpA, kIpB, 40000, 80, 1000, 0, TcpFlags::kSyn, 65535};
  Packet frame = MakeTcpSegment(spec);
  Ipv4View ip(frame);
  ASSERT_TRUE(ip.Valid());
  EXPECT_TRUE(ip.ProtocolIs(IpProtocol::kTcp));
  TcpView tcp(frame, ip.payload_offset());
  ASSERT_TRUE(tcp.Valid());
  EXPECT_EQ(tcp.source_port(), 40000);
  EXPECT_EQ(tcp.destination_port(), 80);
  EXPECT_EQ(tcp.sequence(), 1000u);
  EXPECT_TRUE(tcp.HasFlag(TcpFlags::kSyn));
  EXPECT_FALSE(tcp.HasFlag(TcpFlags::kAck));
  EXPECT_TRUE(tcp.ChecksumValid(ip, kTcpMinHeaderSize));
}

TEST(Tcp, SynAckCarriesBothFlags) {
  TcpSegmentSpec spec{kMacA, kMacB, kIpB, kIpA, 80,    40000,
                      9999,  1001,  TcpFlags::kSyn | TcpFlags::kAck};
  Packet frame = MakeTcpSegment(spec);
  Ipv4View ip(frame);
  TcpView tcp(frame, ip.payload_offset());
  EXPECT_TRUE(tcp.HasFlag(TcpFlags::kSyn));
  EXPECT_TRUE(tcp.HasFlag(TcpFlags::kAck));
  EXPECT_EQ(tcp.ack_number(), 1001u);
}

TEST(Tcp, ChecksumCoversPseudoHeader) {
  TcpSegmentSpec spec{kMacB, kMacA, kIpA, kIpB, 1, 2, 0, 0, TcpFlags::kSyn};
  Packet frame = MakeTcpSegment(spec);
  Ipv4View ip(frame);
  TcpView tcp(frame, ip.payload_offset());
  ASSERT_TRUE(tcp.ChecksumValid(ip, kTcpMinHeaderSize));
  // NAT-style rewrite of the source IP invalidates the TCP checksum too.
  ip.set_source(Ipv4Address(1, 2, 3, 4));
  EXPECT_FALSE(tcp.ChecksumValid(ip, kTcpMinHeaderSize));
  tcp.UpdateChecksum(ip, kTcpMinHeaderSize);
  EXPECT_TRUE(tcp.ChecksumValid(ip, kTcpMinHeaderSize));
}

TEST(Tcp, PayloadRoundTrip) {
  const std::vector<u8> payload = {'h', 't', 't', 'p'};
  TcpSegmentSpec spec{kMacB, kMacA, kIpA, kIpB, 1, 2, 5, 6, TcpFlags::kPsh | TcpFlags::kAck};
  Packet frame = MakeTcpSegment(spec, payload);
  Ipv4View ip(frame);
  TcpView tcp(frame, ip.payload_offset());
  ASSERT_TRUE(tcp.Valid());
  EXPECT_TRUE(tcp.ChecksumValid(ip, kTcpMinHeaderSize + payload.size()));
  EXPECT_EQ(ip.Payload().size(), kTcpMinHeaderSize + payload.size());
}

// --- Packet metadata ---------------------------------------------------------------

TEST(Packet, MetadataRoundTrip) {
  Packet packet(64);
  packet.set_src_port(2);
  packet.set_dst_port_mask(0x0b);
  packet.set_ingress_time(12345);
  EXPECT_EQ(packet.src_port(), 2);
  EXPECT_EQ(packet.dst_port_mask(), 0x0b);
  EXPECT_EQ(packet.ingress_time(), 12345);
}

TEST(Packet, ToStringMentionsSizeAndPorts) {
  Packet packet(4);
  packet.set_src_port(1);
  const std::string str = packet.ToString();
  EXPECT_NE(str.find("4 bytes"), std::string::npos);
  EXPECT_NE(str.find("src_port=1"), std::string::npos);
}

// Round-trip property over random UDP payload sizes.
class UdpRoundTrip : public ::testing::TestWithParam<usize> {};

TEST_P(UdpRoundTrip, BuildParsePreservesPayload) {
  Rng rng(GetParam());
  std::vector<u8> payload(GetParam(), 0);
  for (auto& b : payload) {
    b = static_cast<u8>(rng.NextU64());
  }
  Packet frame = MakeUdpPacket({kMacB, kMacA, kIpA, kIpB, 7, 9}, payload);
  Ipv4View ip(frame);
  ASSERT_TRUE(ip.Valid());
  UdpView udp(frame, ip.payload_offset());
  ASSERT_TRUE(udp.Valid());
  EXPECT_TRUE(udp.ChecksumValid(ip));
  const auto got = udp.Payload();
  ASSERT_EQ(got.size(), payload.size());
  for (usize i = 0; i < payload.size(); ++i) {
    ASSERT_EQ(got[i], payload[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, UdpRoundTrip,
                         ::testing::Values(0u, 1u, 13u, 64u, 512u, 1400u));

}  // namespace
}  // namespace emu
