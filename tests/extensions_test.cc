// Extension features beyond the paper's prototype limits: DNS over IPv6
// (AAAA, the §4.3 relaxation), NAT flow expiry, pcap round trips, and
// large-key/value Memcached.
#include <gtest/gtest.h>

#include <fstream>

#include "src/core/targets.h"
#include "src/services/learning_switch.h"
#include "src/net/dns.h"
#include "src/net/udp.h"
#include "src/services/dns_service.h"
#include "src/services/memcached_service.h"
#include "src/services/nat_service.h"
#include "src/sim/trace_dump.h"

namespace emu {
namespace {

const MacAddress kClientMac = MacAddress::FromU48(0x02'00'00'00'cc'88);
const Ipv4Address kClientIp(10, 0, 0, 9);

Ipv6Address TestV6() {
  Ipv6Address address;
  const u8 bytes[16] = {0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0x42};
  return Ipv6Address::FromBytes(bytes);
}

// --- DNS AAAA ---------------------------------------------------------------------

TEST(DnsAaaa, CodecRoundTrip) {
  const std::vector<u8> qwire = BuildDnsQuery(9, "v6.lab", kDnsTypeAaaa);
  auto query = ParseDnsQuery(qwire);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->question.qtype, kDnsTypeAaaa);
  const std::vector<u8> rwire = BuildDnsResponseAaaa(*query, TestV6(), 120);
  auto response = ParseDnsResponse(rwire);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(response->answers[0].rtype, kDnsTypeAaaa);
  EXPECT_EQ(response->answers[0].address6, TestV6());
  EXPECT_EQ(response->answers[0].ttl, 120u);
}

TEST(DnsAaaa, Ipv6ToString) {
  EXPECT_EQ(TestV6().ToString(), "2001:0db8:0000:0000:0000:0000:0000:0042");
}

class DnsAaaaServiceTest : public ::testing::Test {
 protected:
  DnsAaaaServiceTest() {
    EXPECT_TRUE(service_.AddRecord("dual.lab", Ipv4Address(10, 1, 1, 1)).ok());
    EXPECT_TRUE(service_.AddRecordAaaa("dual.lab", TestV6()).ok());
    EXPECT_TRUE(service_.AddRecordAaaa("v6only.lab", TestV6()).ok());
  }

  Expected<DnsParsedResponse> Query(const std::string& name, u16 qtype) {
    Packet packet =
        MakeUdpPacket({config_.mac, kClientMac, kClientIp, config_.ip, 5555, kDnsPort},
                      BuildDnsQuery(1, name, qtype));
    auto reply = target_.SendAndCollect(0, std::move(packet));
    if (!reply.ok()) {
      return reply.status();
    }
    Ipv4View ip(*reply);
    UdpView udp(*reply, ip.payload_offset());
    return ParseDnsResponse(udp.Payload());
  }

  DnsServiceConfig config_;
  DnsService service_{config_};
  FpgaTarget target_{service_};
};

TEST_F(DnsAaaaServiceTest, ResolvesAaaaRecords) {
  auto response = Query("dual.lab", kDnsTypeAaaa);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(response->answers[0].address6, TestV6());
}

TEST_F(DnsAaaaServiceTest, ARecordsStillWorkOnDualStackNames) {
  auto response = Query("dual.lab", kDnsTypeA);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(response->answers[0].address, Ipv4Address(10, 1, 1, 1));
}

TEST_F(DnsAaaaServiceTest, V6OnlyNameNxdomainsForA) {
  auto response = Query("v6only.lab", kDnsTypeA);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->header.rcode, DnsRcode::kNxDomain);
  auto v6 = Query("v6only.lab", kDnsTypeAaaa);
  ASSERT_TRUE(v6.ok());
  ASSERT_EQ(v6->answers.size(), 1u);
}

// --- NAT expiry -------------------------------------------------------------------

class NatExpiryTest : public ::testing::Test {
 protected:
  NatExpiryTest() {
    config_.mapping_timeout_cycles = 10'000;  // 50 us at 200 MHz, for testing
    service_ = std::make_unique<NatService>(config_);
    target_ = std::make_unique<FpgaTarget>(*service_);
  }

  Packet Outbound(u16 sport) {
    return MakeUdpPacket({config_.internal_mac, MacAddress::FromU48(0x02'00'00'00'11'10),
                          Ipv4Address(192, 168, 1, 10), Ipv4Address(8, 8, 8, 8), sport, 53},
                         std::vector<u8>{'x'});
  }

  u16 ExternalPortOf(const Packet& frame) {
    Packet copy = frame;
    Ipv4View ip(copy);
    UdpView udp(copy, ip.payload_offset());
    return udp.source_port();
  }

  NatConfig config_;
  std::unique_ptr<NatService> service_;
  std::unique_ptr<FpgaTarget> target_;
};

TEST_F(NatExpiryTest, ExpiredSlotsReclaimedWhenTableFull) {
  // Fill a 4-mapping table completely.
  NatConfig config = config_;
  config.max_mappings = 4;
  NatService service(config);
  FpgaTarget target(service);
  const auto outbound = [&](u16 sport) {
    return MakeUdpPacket({config.internal_mac, MacAddress::FromU48(0x02'00'00'00'11'10),
                          Ipv4Address(192, 168, 1, 10), Ipv4Address(8, 8, 8, 8), sport, 53},
                         std::vector<u8>{'x'});
  };
  for (u16 sport = 5000; sport < 5004; ++sport) {
    ASSERT_TRUE(target.SendAndCollect(1, outbound(sport)).ok());
  }
  EXPECT_EQ(service.active_mappings(), 4u);

  // Everything goes idle past the timeout; four NEW flows must all succeed
  // by reclaiming the expired slots (without expiry this would exhaust).
  target.Run(20'000);
  for (u16 sport = 6000; sport < 6004; ++sport) {
    ASSERT_TRUE(target.SendAndCollect(1, outbound(sport)).ok()) << sport;
  }
  EXPECT_LE(service.active_mappings(), 4u);
}

TEST_F(NatExpiryTest, SameFlowReallocatedAfterExpiry) {
  auto first = target_->SendAndCollect(1, Outbound(5000));
  ASSERT_TRUE(first.ok());
  target_->Run(20'000);  // idle past the timeout
  // The SAME flow reappearing gets a fresh (valid) mapping, not the stale one.
  auto second = target_->SendAndCollect(1, Outbound(5000));
  ASSERT_TRUE(second.ok());
  EXPECT_GE(ExternalPortOf(*second), config_.port_base);
}

TEST_F(NatExpiryTest, ActiveFlowIsRefreshedNotExpired) {
  u16 port = 0;
  for (int i = 0; i < 5; ++i) {
    auto out = target_->SendAndCollect(1, Outbound(5000));
    ASSERT_TRUE(out.ok());
    if (i == 0) {
      port = ExternalPortOf(*out);
    } else {
      EXPECT_EQ(ExternalPortOf(*out), port);  // mapping stable while active
    }
    target_->Run(6'000);  // under the timeout between packets
  }
  EXPECT_EQ(service_->active_mappings(), 1u);
}

TEST_F(NatExpiryTest, InboundToExpiredMappingDropped) {
  auto out = target_->SendAndCollect(1, Outbound(5000));
  ASSERT_TRUE(out.ok());
  const u16 ext_port = ExternalPortOf(*out);
  target_->TakeEgress();
  target_->Run(20'000);  // expire

  Packet in = MakeUdpPacket({config_.external_mac, MacAddress::FromU48(0x02ffffffff02),
                             Ipv4Address(8, 8, 8, 8), config_.external_ip, 53, ext_port},
                            std::vector<u8>{'y'});
  target_->Inject(0, std::move(in));
  target_->Run(100'000);
  EXPECT_TRUE(target_->TakeEgress().empty());
}

TEST(NatNoExpiry, DisabledTimeoutKeepsMappingsForever) {
  NatConfig config;  // timeout 0 = disabled
  NatService service(config);
  FpgaTarget target(service);
  Packet out = MakeUdpPacket({config.internal_mac, MacAddress::FromU48(0x02'00'00'00'11'10),
                              Ipv4Address(192, 168, 1, 10), Ipv4Address(8, 8, 8, 8), 5000, 53},
                             std::vector<u8>{'x'});
  ASSERT_TRUE(target.SendAndCollect(1, std::move(out)).ok());
  target.Run(1'000'000);
  EXPECT_EQ(service.active_mappings(), 1u);
}

// --- pcap round trip -----------------------------------------------------------------

TEST(PcapRoundTrip, WriteThenReadPreservesBytesAndTimes) {
  TraceDump dump;
  Packet a = MakeUdpPacket({kClientMac, MacAddress::FromU48(7), kClientIp,
                            Ipv4Address(10, 0, 0, 2), 1, 2},
                           std::vector<u8>{1, 2, 3});
  Packet b(130);
  for (usize i = 0; i < b.size(); ++i) {
    b[i] = static_cast<u8>(i);
  }
  dump.Capture(250 * kPicosPerMicro, "a", a);
  dump.Capture(1'750'000 * kPicosPerMicro, "b", b);
  const std::string path = "/tmp/emu_roundtrip.pcap";
  ASSERT_TRUE(dump.WritePcap(path));

  auto packets = ReadPcap(path);
  ASSERT_TRUE(packets.ok()) << packets.status().ToString();
  ASSERT_EQ(packets->size(), 2u);
  EXPECT_EQ((*packets)[0].ingress_time(), 250 * kPicosPerMicro);
  EXPECT_EQ((*packets)[1].ingress_time(), 1'750'000 * kPicosPerMicro);
  ASSERT_EQ((*packets)[0].size(), a.size());
  for (usize i = 0; i < a.size(); ++i) {
    ASSERT_EQ((*packets)[0][i], a[i]);
  }
  ASSERT_EQ((*packets)[1].size(), 130u);
  EXPECT_EQ((*packets)[1][129], 129);
}

TEST(PcapRoundTrip, RejectsGarbageFiles) {
  const std::string path = "/tmp/emu_notpcap.pcap";
  std::ofstream(path) << "this is not a capture";
  EXPECT_FALSE(ReadPcap(path).ok());
  EXPECT_FALSE(ReadPcap("/tmp/definitely_missing_file.pcap").ok());
}

TEST(PcapRoundTrip, ReplayThroughSwitch) {
  // Capture switch egress, then replay the capture as new ingress — the
  // OSNT trace-replay loop (§5.2) in miniature.
  LearningSwitch service;
  FpgaTarget target(service);
  const MacAddress a = MacAddress::FromU48(0x020000000001);
  const MacAddress b = MacAddress::FromU48(0x020000000002);
  target.Inject(1, MakeEthernetFrame(MacAddress::Broadcast(), b, EtherType::kIpv4, {}));
  target.Run(50'000);
  target.TakeEgress();

  TraceDump dump;
  auto out = target.SendAndCollect(0, MakeEthernetFrame(b, a, EtherType::kIpv4,
                                                        std::vector<u8>{9, 9}));
  ASSERT_TRUE(out.ok());
  dump.Capture(out->egress_time(), "egress", *out);
  const std::string path = "/tmp/emu_replay.pcap";
  ASSERT_TRUE(dump.WritePcap(path));

  auto replay = ReadPcap(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->size(), 1u);
  auto again = target.SendAndCollect(0, std::move((*replay)[0]));
  ASSERT_TRUE(again.ok());  // replayed frame switches like the original
}

// --- Large keys/values (the relaxed Memcached limits) ------------------------------------

TEST(MemcachedLarge, MaxSizedKeyAndValueRoundTrip) {
  MemcachedConfig config;  // defaults: 250 B keys, 1024 B values
  MemcachedService service(config);
  FpgaTarget target(service);

  McRequest set;
  set.protocol = config.protocol;
  set.op = McOpcode::kSet;
  set.key = std::string(250, 'k');
  set.value = std::string(1024, 'v');
  Packet frame = MakeUdpPacket(
      {config.mac, kClientMac, kClientIp, config.ip, 31000, kMemcachedPort},
      BuildMcRequest(set));
  auto reply = target.SendAndCollect(0, std::move(frame), 5'000'000);
  ASSERT_TRUE(reply.ok());

  McRequest get;
  get.protocol = config.protocol;
  get.op = McOpcode::kGet;
  get.key = set.key;
  Packet query = MakeUdpPacket(
      {config.mac, kClientMac, kClientIp, config.ip, 31000, kMemcachedPort},
      BuildMcRequest(get));
  reply = target.SendAndCollect(0, std::move(query), 5'000'000);
  ASSERT_TRUE(reply.ok());
  Packet copy = *reply;
  Ipv4View ip(copy);
  UdpView udp(copy, ip.payload_offset());
  ASSERT_TRUE(udp.ChecksumValid(ip));
  auto response = ParseMcResponse(udp.Payload(), config.protocol);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, McStatus::kNoError);
  EXPECT_EQ(response->value, set.value);
}

TEST(MemcachedLarge, OversizedKeyRejected) {
  MemcachedConfig config;
  MemcachedService service(config);
  FpgaTarget target(service);
  McRequest set;
  set.protocol = config.protocol;
  set.op = McOpcode::kSet;
  set.key = std::string(251, 'k');  // one past the limit
  set.value = "v";
  Packet frame = MakeUdpPacket(
      {config.mac, kClientMac, kClientIp, config.ip, 31000, kMemcachedPort},
      BuildMcRequest(set));
  auto reply = target.SendAndCollect(0, std::move(frame), 5'000'000);
  ASSERT_TRUE(reply.ok());
  Packet copy = *reply;
  Ipv4View ip(copy);
  UdpView udp(copy, ip.payload_offset());
  auto response = ParseMcResponse(udp.Payload(), config.protocol);
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->status, McStatus::kNoError);
}

}  // namespace
}  // namespace emu
