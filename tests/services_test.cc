// Tests for the request/response services (ICMP echo, TCP ping, DNS) on both
// the FPGA and CPU targets.
#include <gtest/gtest.h>

#include "src/core/targets.h"
#include "src/net/arp.h"
#include "src/net/dns.h"
#include "src/net/icmp.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/services/dns_service.h"
#include "src/services/icmp_echo_service.h"
#include "src/services/tcp_ping_service.h"

namespace emu {
namespace {

const MacAddress kClientMac = MacAddress::FromU48(0x02'00'00'00'cc'01);
const Ipv4Address kClientIp(10, 0, 0, 9);

// --- ICMP echo -----------------------------------------------------------------

class IcmpEchoTest : public ::testing::Test {
 protected:
  IcmpEchoConfig config_;
  IcmpEchoService service_{config_};
  FpgaTarget target_{service_};
};

TEST_F(IcmpEchoTest, RepliesToEchoRequest) {
  const std::vector<u8> payload = {'a', 'b', 'c', 'd'};
  Packet request =
      MakeIcmpEchoRequest({config_.mac, kClientMac, kClientIp, config_.ip, 0x42, 7}, payload);
  auto reply = target_.SendAndCollect(2, std::move(request));
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();

  Ipv4View ip(*reply);
  ASSERT_TRUE(ip.Valid());
  EXPECT_EQ(ip.source(), config_.ip);
  EXPECT_EQ(ip.destination(), kClientIp);
  EXPECT_TRUE(ip.ChecksumValid());

  IcmpView icmp(*reply, ip.payload_offset());
  EXPECT_TRUE(icmp.TypeIs(IcmpType::kEchoReply));
  EXPECT_EQ(icmp.identifier(), 0x42);
  EXPECT_EQ(icmp.sequence(), 7);
  EXPECT_TRUE(icmp.ChecksumValid(kIcmpHeaderSize + payload.size()));
  EXPECT_EQ(service_.echoes(), 1u);
}

TEST_F(IcmpEchoTest, ReplyGoesBackToSourcePort) {
  Packet request = MakeIcmpEchoRequest({config_.mac, kClientMac, kClientIp, config_.ip, 1, 1}, {});
  target_.Inject(3, std::move(request));
  ASSERT_TRUE(target_.RunUntilEgressCount(1, 200'000));
  EXPECT_EQ(target_.egress()[0].port, 3);
}

TEST_F(IcmpEchoTest, AnswersArpForItsAddress) {
  Packet request = MakeArpRequest(kClientMac, kClientIp, config_.ip);
  auto reply = target_.SendAndCollect(0, std::move(request));
  ASSERT_TRUE(reply.ok());
  ArpView arp(*reply);
  ASSERT_TRUE(arp.Valid());
  EXPECT_TRUE(arp.OperIs(ArpOper::kReply));
  EXPECT_EQ(arp.sender_mac(), config_.mac);
  EXPECT_EQ(arp.sender_ip(), config_.ip);
  EXPECT_EQ(arp.target_mac(), kClientMac);
  EXPECT_EQ(service_.arp_replies(), 1u);
}

TEST_F(IcmpEchoTest, IgnoresOtherAddresses) {
  Packet request = MakeIcmpEchoRequest(
      {config_.mac, kClientMac, kClientIp, Ipv4Address(10, 0, 0, 250), 1, 1}, {});
  target_.Inject(0, std::move(request));
  target_.Run(50'000);
  EXPECT_TRUE(target_.egress().empty());
  EXPECT_EQ(service_.dropped(), 1u);
}

TEST_F(IcmpEchoTest, DropsCorruptChecksum) {
  Packet request = MakeIcmpEchoRequest({config_.mac, kClientMac, kClientIp, config_.ip, 1, 1},
                                       std::vector<u8>{1, 2, 3, 4});
  Ipv4View ip(request);
  request[ip.payload_offset() + kIcmpHeaderSize] ^= 0xff;  // corrupt payload
  target_.Inject(0, std::move(request));
  target_.Run(50'000);
  EXPECT_TRUE(target_.egress().empty());
}

TEST_F(IcmpEchoTest, RoundTripLatencyNearPaper) {
  // Paper Table 4: ICMP echo on Emu averages 1.09 us with a tight tail.
  Packet request = MakeIcmpEchoRequest({config_.mac, kClientMac, kClientIp, config_.ip, 1, 1},
                                       std::vector<u8>(32, 0));
  auto reply = target_.SendAndCollect(0, std::move(request));
  ASSERT_TRUE(reply.ok());
  const double rtt_us = ToMicroseconds(reply->egress_time() - reply->ingress_time());
  EXPECT_GT(rtt_us, 0.5);
  EXPECT_LT(rtt_us, 2.0);
}

TEST(IcmpEchoCpuTest, SameSourceRunsOnCpuTarget) {
  IcmpEchoConfig config;
  IcmpEchoService service(config);
  CpuTarget target(service);
  Packet request = MakeIcmpEchoRequest({config.mac, kClientMac, kClientIp, config.ip, 5, 6},
                                       std::vector<u8>{'x'});
  request.set_src_port(1);
  const auto out = target.Deliver(std::move(request));
  ASSERT_EQ(out.size(), 1u);
  Packet reply = out[0];
  Ipv4View ip(reply);
  IcmpView icmp(reply, ip.payload_offset());
  EXPECT_TRUE(icmp.TypeIs(IcmpType::kEchoReply));
  EXPECT_EQ(icmp.identifier(), 5);
}

// --- TCP ping -------------------------------------------------------------------

class TcpPingTest : public ::testing::Test {
 protected:
  TcpPingConfig config_;
  TcpPingService service_{config_};
  FpgaTarget target_{service_};

  Packet MakeSyn(u16 dst_port, u32 seq = 1000) {
    TcpSegmentSpec spec{config_.mac, kClientMac, kClientIp, config_.ip,
                        52000,       dst_port,   seq,       0,
                        TcpFlags::kSyn};
    return MakeTcpSegment(spec);
  }
};

TEST_F(TcpPingTest, SynToOpenPortGetsSynAck) {
  auto reply = target_.SendAndCollect(1, MakeSyn(80, 777));
  ASSERT_TRUE(reply.ok());
  Ipv4View ip(*reply);
  ASSERT_TRUE(ip.Valid());
  TcpView tcp(*reply, ip.payload_offset());
  ASSERT_TRUE(tcp.Valid());
  EXPECT_TRUE(tcp.HasFlag(TcpFlags::kSyn));
  EXPECT_TRUE(tcp.HasFlag(TcpFlags::kAck));
  EXPECT_EQ(tcp.ack_number(), 778u);  // seq + 1
  EXPECT_EQ(tcp.source_port(), 80);
  EXPECT_EQ(tcp.destination_port(), 52000);
  EXPECT_TRUE(tcp.ChecksumValid(ip, kTcpMinHeaderSize));
  EXPECT_EQ(service_.syn_acks(), 1u);
}

TEST_F(TcpPingTest, SynToClosedPortGetsRst) {
  auto reply = target_.SendAndCollect(1, MakeSyn(8080));
  ASSERT_TRUE(reply.ok());
  Ipv4View ip(*reply);
  TcpView tcp(*reply, ip.payload_offset());
  EXPECT_TRUE(tcp.HasFlag(TcpFlags::kRst));
  EXPECT_FALSE(tcp.HasFlag(TcpFlags::kSyn));
  EXPECT_EQ(service_.resets(), 1u);
}

TEST_F(TcpPingTest, IgnoresNonSynSegments) {
  TcpSegmentSpec spec{config_.mac, kClientMac, kClientIp, config_.ip,
                      52000,       80,         2000,      1,
                      TcpFlags::kAck};
  target_.Inject(0, MakeTcpSegment(spec));
  target_.Run(50'000);
  EXPECT_TRUE(target_.egress().empty());
  EXPECT_EQ(service_.dropped(), 1u);
}

TEST_F(TcpPingTest, AnswersArp) {
  auto reply = target_.SendAndCollect(0, MakeArpRequest(kClientMac, kClientIp, config_.ip));
  ASSERT_TRUE(reply.ok());
  ArpView arp(*reply);
  EXPECT_TRUE(arp.OperIs(ArpOper::kReply));
  EXPECT_EQ(arp.sender_mac(), config_.mac);
}

TEST_F(TcpPingTest, RttSlightlyAboveIcmpEcho) {
  // Paper: TCP ping 1.27 us vs ICMP echo 1.09 us — a more complex parse.
  auto reply = target_.SendAndCollect(0, MakeSyn(80));
  ASSERT_TRUE(reply.ok());
  const double rtt_us = ToMicroseconds(reply->egress_time() - reply->ingress_time());
  EXPECT_GT(rtt_us, 0.5);
  EXPECT_LT(rtt_us, 2.5);
}

// --- DNS -------------------------------------------------------------------------

class DnsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(service_.AddRecord("svc.lab", Ipv4Address(10, 1, 1, 1)).ok());
    ASSERT_TRUE(service_.AddRecord("db.lab", Ipv4Address(10, 1, 1, 2)).ok());
  }

  Packet MakeQuery(const std::string& name, u16 id = 0x1234) {
    const std::vector<u8> payload = BuildDnsQuery(id, name);
    return MakeUdpPacket({config_.mac, kClientMac, kClientIp, config_.ip, 5555, kDnsPort},
                         payload);
  }

  DnsServiceConfig config_;
  DnsService service_{config_};
  FpgaTarget target_{service_};
};

TEST_F(DnsTest, ResolvesKnownName) {
  auto reply = target_.SendAndCollect(0, MakeQuery("svc.lab"));
  ASSERT_TRUE(reply.ok());
  Ipv4View ip(*reply);
  ASSERT_TRUE(ip.Valid());
  UdpView udp(*reply, ip.payload_offset());
  ASSERT_TRUE(udp.Valid());
  EXPECT_EQ(udp.source_port(), kDnsPort);
  EXPECT_EQ(udp.destination_port(), 5555);
  EXPECT_TRUE(udp.ChecksumValid(ip));
  auto response = ParseDnsResponse(udp.Payload());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->header.id, 0x1234);
  EXPECT_EQ(response->header.rcode, DnsRcode::kNoError);
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(response->answers[0].address, Ipv4Address(10, 1, 1, 1));
  EXPECT_EQ(service_.resolved(), 1u);
}

TEST_F(DnsTest, UnknownNameGetsNxDomain) {
  auto reply = target_.SendAndCollect(0, MakeQuery("nope.lab"));
  ASSERT_TRUE(reply.ok());
  Ipv4View ip(*reply);
  UdpView udp(*reply, ip.payload_offset());
  auto response = ParseDnsResponse(udp.Payload());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->header.rcode, DnsRcode::kNxDomain);
  EXPECT_TRUE(response->answers.empty());
  EXPECT_EQ(service_.nxdomain(), 1u);
}

TEST_F(DnsTest, RejectsOverlongNames) {
  // 27 bytes exceeds the paper prototype's 26-byte limit.
  auto reply = target_.SendAndCollect(0, MakeQuery("abcdefghij.klmnopqrst.uvwxy"));
  ASSERT_TRUE(reply.ok());
  Ipv4View ip(*reply);
  UdpView udp(*reply, ip.payload_offset());
  auto response = ParseDnsResponse(udp.Payload());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->header.rcode, DnsRcode::kNotImp);
}

TEST_F(DnsTest, LimitCanBeRelaxedByConfig) {
  DnsServiceConfig config;
  config.max_name_bytes = 63;
  DnsService service(config);
  ASSERT_TRUE(
      service.AddRecord("a-much-longer-name-than-the-prototype.lab", Ipv4Address(1, 2, 3, 4))
          .ok());
}

TEST_F(DnsTest, AddRecordRejectsOverlongName) {
  EXPECT_FALSE(service_.AddRecord("abcdefghij.klmnopqrst.uvwxy", Ipv4Address(1, 1, 1, 1)).ok());
}

TEST_F(DnsTest, AddRecordUpdatesExisting) {
  ASSERT_TRUE(service_.AddRecord("svc.lab", Ipv4Address(10, 9, 9, 9)).ok());
  auto reply = target_.SendAndCollect(0, MakeQuery("svc.lab"));
  ASSERT_TRUE(reply.ok());
  Ipv4View ip(*reply);
  UdpView udp(*reply, ip.payload_offset());
  auto response = ParseDnsResponse(udp.Payload());
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(response->answers[0].address, Ipv4Address(10, 9, 9, 9));
}

TEST_F(DnsTest, IgnoresNonDnsTraffic) {
  Packet not_dns = MakeUdpPacket({config_.mac, kClientMac, kClientIp, config_.ip, 5555, 9999},
                                 std::vector<u8>{1, 2, 3});
  target_.Inject(0, std::move(not_dns));
  target_.Run(50'000);
  EXPECT_TRUE(target_.egress().empty());
  EXPECT_EQ(service_.dropped(), 1u);
}

TEST_F(DnsTest, ServesManyQueriesBackToBack) {
  for (int i = 0; i < 50; ++i) {
    target_.Inject(static_cast<u8>(i % 4), MakeQuery(i % 2 == 0 ? "svc.lab" : "db.lab",
                                                     static_cast<u16>(i)));
  }
  ASSERT_TRUE(target_.RunUntilEgressCount(50, 2'000'000));
  EXPECT_EQ(service_.resolved(), 50u);
  EXPECT_EQ(target_.pipeline().rx_drops(), 0u);
}

TEST(DnsCpuTest, ResolvesOnCpuTarget) {
  DnsServiceConfig config;
  DnsService service(config);
  ASSERT_TRUE(service.AddRecord("x.lab", Ipv4Address(9, 9, 9, 9)).ok());
  CpuTarget target(service);
  Packet query = MakeUdpPacket({config.mac, kClientMac, kClientIp, config.ip, 7, kDnsPort},
                               BuildDnsQuery(3, "x.lab"));
  query.set_src_port(2);
  const auto out = target.Deliver(std::move(query));
  ASSERT_EQ(out.size(), 1u);
  Packet reply = out[0];
  Ipv4View ip(reply);
  UdpView udp(reply, ip.payload_offset());
  auto response = ParseDnsResponse(udp.Payload());
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->answers.size(), 1u);
  EXPECT_EQ(response->answers[0].address, Ipv4Address(9, 9, 9, 9));
}

}  // namespace
}  // namespace emu
