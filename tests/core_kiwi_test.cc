// Direct tests for the Kiwi schedulers, protocol wrappers, execution
// targets, and the VCD tracer.
#include <gtest/gtest.h>

#include "src/core/protocol_wrappers.h"
#include "src/core/targets.h"
#include "src/hdl/signal.h"
#include "src/hdl/vcd_tracer.h"
#include "src/kiwi/hw_scheduler.h"
#include "src/kiwi/sw_scheduler.h"
#include "src/net/icmp.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/services/icmp_echo_service.h"
#include "src/services/learning_switch.h"

namespace emu {
namespace {

const MacAddress kMacA = MacAddress::FromU48(0x02'00'00'00'00'0a);
const MacAddress kMacB = MacAddress::FromU48(0x02'00'00'00'00'0b);
const Ipv4Address kIpA(10, 0, 0, 1);
const Ipv4Address kIpB(10, 0, 0, 2);

// --- Schedulers ------------------------------------------------------------------

TEST(HwSchedulerTest, CycleTimeConversions) {
  HwScheduler scheduler;  // 200 MHz
  EXPECT_EQ(scheduler.CyclesToPs(1), 5'000);
  EXPECT_EQ(scheduler.CyclesToPs(200'000'000), kPicosPerSecond);
  EXPECT_EQ(scheduler.PsToCycles(5'000), 1u);
  EXPECT_EQ(scheduler.PsToCycles(5'001), 2u);  // rounds up
  EXPECT_EQ(scheduler.PsToCycles(1), 1u);
}

TEST(HwSchedulerTest, NonDefaultClock) {
  HwScheduler scheduler(250'000'000);
  EXPECT_EQ(scheduler.CyclesToPs(1), 4'000);
}

HwProcess FiniteCounter(Reg<u64>& reg, int n) {
  for (int i = 0; i < n; ++i) {
    reg.Write(reg.Read() + 1);
    co_await Pause();
  }
}

TEST(SwSchedulerTest, RunToCompletionDrainsFiniteProcesses) {
  SwScheduler scheduler;
  Reg<u64> counter(scheduler.sim(), 0);
  scheduler.sim().AddProcess(FiniteCounter(counter, 7), "finite");
  scheduler.RunToCompletion(1000);
  EXPECT_EQ(counter.Read(), 7u);
  EXPECT_EQ(scheduler.sim().live_process_count(), 0u);
}

TEST(SwSchedulerTest, RunUntilPredicate) {
  SwScheduler scheduler;
  Reg<u64> counter(scheduler.sim(), 0);
  scheduler.sim().AddProcess(FiniteCounter(counter, 1000), "counter");
  EXPECT_TRUE(scheduler.RunUntil([&] { return counter.Read() >= 5; }, 100));
  EXPECT_EQ(counter.Read(), 5u);
}

// --- Protocol wrappers (Fig. 3 style) ------------------------------------------------

TEST(Wrappers, EthernetWrapperOverDataplane) {
  NetFpgaData dataplane;
  dataplane.tdata = MakeEthernetFrame(kMacB, kMacA, EtherType::kArp, {});
  EthernetWrapper eth(dataplane);
  EXPECT_TRUE(eth.Valid());
  EXPECT_EQ(eth.destination(), kMacB);
  EXPECT_TRUE(eth.EtherTypeIs(EtherType::kArp));
}

TEST(Wrappers, Ipv4WrapperReachability) {
  NetFpgaData ip_frame;
  ip_frame.tdata = MakeUdpPacket({kMacB, kMacA, kIpA, kIpB, 1, 2}, std::vector<u8>{1});
  EXPECT_TRUE(Ipv4Wrapper(ip_frame).Reachable());

  NetFpgaData arp_frame;
  arp_frame.tdata = MakeEthernetFrame(kMacB, kMacA, EtherType::kArp, std::vector<u8>(46, 0));
  EXPECT_FALSE(Ipv4Wrapper(arp_frame).Reachable());
}

TEST(Wrappers, L4WrappersSelectByProtocol) {
  NetFpgaData udp_frame;
  udp_frame.tdata = MakeUdpPacket({kMacB, kMacA, kIpA, kIpB, 7, 9}, std::vector<u8>{1});
  EXPECT_TRUE(UdpWrapper(udp_frame).Reachable());
  EXPECT_FALSE(TcpWrapper(udp_frame).Reachable());
  EXPECT_FALSE(IcmpWrapper(udp_frame).Reachable());

  NetFpgaData tcp_frame;
  tcp_frame.tdata =
      MakeTcpSegment({kMacB, kMacA, kIpA, kIpB, 1, 2, 3, 0, TcpFlags::kSyn});
  EXPECT_TRUE(TcpWrapper(tcp_frame).Reachable());
  EXPECT_FALSE(UdpWrapper(tcp_frame).Reachable());
  EXPECT_EQ(TcpWrapper(tcp_frame).SegmentLength(), kTcpMinHeaderSize);
}

TEST(Wrappers, IcmpWrapperMessageLength) {
  NetFpgaData frame;
  frame.tdata = MakeIcmpEchoRequest({kMacB, kMacA, kIpA, kIpB, 1, 2}, std::vector<u8>(10, 0));
  IcmpWrapper icmp(frame);
  ASSERT_TRUE(icmp.Reachable());
  EXPECT_EQ(icmp.MessageLength(), kIcmpHeaderSize + 10);
}

TEST(Wrappers, ShortFrameIsUnreachableEverywhere) {
  NetFpgaData frame;
  frame.tdata = Packet(6);  // shorter than an Ethernet header
  EXPECT_FALSE(Ipv4Wrapper(frame).Reachable());
  EXPECT_FALSE(TcpWrapper(frame).Reachable());
  EXPECT_FALSE(UdpWrapper(frame).Reachable());
  EXPECT_FALSE(IcmpWrapper(frame).Reachable());
  EXPECT_FALSE(ArpWrapper(frame).Reachable());
}

// --- Targets -----------------------------------------------------------------------

TEST(Targets, TakeEgressClearsTheLog) {
  IcmpEchoConfig config;
  IcmpEchoService service(config);
  FpgaTarget target(service);
  target.Inject(0, MakeIcmpEchoRequest({config.mac, kMacA, kIpA, config.ip, 1, 1}, {}));
  ASSERT_TRUE(target.RunUntilEgressCount(1, 300'000));
  EXPECT_EQ(target.TakeEgress().size(), 1u);
  EXPECT_TRUE(target.egress().empty());
}

TEST(Targets, CpuTargetCollectsMultipleOutputs) {
  // A broadcast through the switch yields one frame with a multi-port mask
  // on the CPU target (the OS layer would fan out).
  LearningSwitch service;
  CpuTarget target(service);
  Packet frame = MakeEthernetFrame(MacAddress::Broadcast(), kMacA, EtherType::kIpv4, {});
  frame.set_src_port(2);
  const auto out = target.Deliver(std::move(frame));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst_port_mask(), 0b1011);
}

TEST(Targets, PipelineTotalExceedsCoreResources) {
  LearningSwitch service;
  FpgaTarget target(service);
  const ResourceUsage core = target.pipeline().CoreResources();
  const ResourceUsage total = target.pipeline().TotalResources();
  EXPECT_GT(total.luts, core.luts);  // ports/arbiter/queues are extra
}

// --- VCD tracer -----------------------------------------------------------------------

HwProcess TogglerProcess(Reg<bool>& flag, Reg<u64>& counter) {
  for (;;) {
    flag.Write(!flag.Read());
    counter.Write(counter.Read() + 3);
    co_await Pause();
  }
}

TEST(VcdTracer, RecordsChangesAndRendersValidVcd) {
  Simulator sim;
  Reg<bool> flag(sim, false);
  Reg<u64> counter(sim, 0);
  sim.AddProcess(TogglerProcess(flag, counter), "toggler");

  VcdTracer tracer(sim);
  tracer.AddFlag("flag", [&] { return flag.Read(); });
  tracer.AddSignal("counter", 16, [&] { return counter.Read(); });
  tracer.Sample();  // initial values
  tracer.RunAndSample(4);

  const std::string vcd = tracer.Render();
  EXPECT_NE(vcd.find("$timescale 5000 ps $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! flag $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 16 \" counter $end"), std::string::npos);
  EXPECT_NE(vcd.find("#0\n"), std::string::npos);
  EXPECT_NE(vcd.find("1!"), std::string::npos);                      // flag rose
  EXPECT_NE(vcd.find("b0000000000000011 \""), std::string::npos);    // counter = 3
  // The flag toggles every cycle: 1 initial + 4 changes; counter likewise.
  EXPECT_EQ(tracer.change_count(), 10u);
}

TEST(VcdTracer, OnlyChangesAreLogged) {
  Simulator sim;
  Reg<u64> constant(sim, 42);
  VcdTracer tracer(sim);
  tracer.AddSignal("constant", 8, [&] { return constant.Read(); });
  tracer.Sample();
  tracer.RunAndSample(10);
  EXPECT_EQ(tracer.change_count(), 1u);  // just the initial value
}

TEST(VcdTracer, WritesFile) {
  Simulator sim;
  Reg<bool> flag(sim, true);
  VcdTracer tracer(sim);
  tracer.AddFlag("f", [&] { return flag.Read(); });
  tracer.Sample();
  EXPECT_TRUE(tracer.WriteToFile("/tmp/emu_trace.vcd"));
}

TEST(VcdTracer, TracesLiveServiceState) {
  // Trace a service counter through the pipeline — "hardware" waveforms of
  // application state.
  LearningSwitch service;
  FpgaTarget target(service);
  VcdTracer tracer(target.sim());
  tracer.AddSignal("learned", 8, [&] { return service.learned(); });
  tracer.Sample();
  target.Inject(0, MakeEthernetFrame(MacAddress::Broadcast(), kMacA, EtherType::kIpv4, {}));
  tracer.RunAndSample(50'000);
  EXPECT_GE(tracer.change_count(), 2u);  // 0 -> 1 transition captured
  EXPECT_NE(tracer.Render().find("b00000001"), std::string::npos);
}

}  // namespace
}  // namespace emu
