// emu-check analysis layer: one deliberately-buggy micro-design per hazard
// class, each asserting the monitor reports it — plus clean designs asserting
// it stays silent, registry/metadata checks, and the DOT dump.
#include <gtest/gtest.h>

#include <sstream>

#include "src/analysis/hazard.h"
#include "src/analysis/hazard_monitor.h"
#include "src/hdl/fifo.h"
#include "src/hdl/process.h"
#include "src/hdl/signal.h"
#include "src/hdl/simulator.h"

namespace emu {
namespace {

// --- Registry metadata (independent of whether hooks are compiled) ---

TEST(AnalysisRegistry, HasOneEntryPerHazardKind) {
  const auto& registry = CheckRegistry();
  ASSERT_EQ(registry.size(), kHazardKindCount);
  for (usize i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(static_cast<usize>(registry[i].kind), i);
    EXPECT_STRNE(registry[i].name, "");
    EXPECT_STRNE(registry[i].description, "");
    EXPECT_STREQ(registry[i].name, HazardKindName(registry[i].kind));
  }
}

TEST(AnalysisRegistry, ReportFormatting) {
  HazardReport report;
  report.kind = HazardKind::kMultiDriver;
  report.severity = Severity::kError;
  report.cycle = 42;
  report.signal = "shared_reg";
  report.process = "writer_b";
  report.message = "boom";
  const std::string text = report.ToString();
  EXPECT_NE(text.find("MULTIDRIVEN"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("shared_reg"), std::string::npos);
  EXPECT_NE(text.find("writer_b"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

TEST(AnalysisRegistry, ChecksToggle) {
  Simulator sim;
  HazardMonitor monitor(sim);
  EXPECT_TRUE(monitor.CheckEnabled(HazardKind::kMultiDriver));
  monitor.EnableCheck(HazardKind::kMultiDriver, false);
  EXPECT_FALSE(monitor.CheckEnabled(HazardKind::kMultiDriver));
  EXPECT_TRUE(monitor.CheckEnabled(HazardKind::kCombRace));
}

TEST(AnalysisMonitor, AttachDetach) {
  Simulator sim;
  EXPECT_EQ(sim.monitor(), nullptr);
  {
    HazardMonitor monitor(sim);
    EXPECT_EQ(sim.monitor(), &monitor);
  }
  EXPECT_EQ(sim.monitor(), nullptr);
}

#ifndef EMU_ANALYSIS

TEST(AnalysisHooks, SkippedWithoutAnalysisBuild) {
  GTEST_SKIP() << "library built with EMU_ANALYSIS=OFF; kernel hooks compiled out";
}

#else  // EMU_ANALYSIS

// --- Hazard class 1: multi-driven register ---

HwProcess WriteForever(Reg<int>& reg, int value) {
  for (;;) {
    reg.Write(value);
    co_await Pause();
  }
}

TEST(AnalysisHooks, DetectsMultiDriver) {
  Simulator sim;
  HazardMonitor monitor(sim);
  Reg<int> shared(sim, "shared_reg", 0);
  sim.AddProcess(WriteForever(shared, 1), "writer_a");
  sim.AddProcess(WriteForever(shared, 2), "writer_b");
  sim.Run(4);
  EXPECT_EQ(monitor.CountOf(HazardKind::kMultiDriver), 1u);  // deduplicated
  ASSERT_TRUE(monitor.HasFindings());
  EXPECT_EQ(monitor.reports()[0].signal, "shared_reg");
}

TEST(AnalysisHooks, SingleDriverIsClean) {
  Simulator sim;
  HazardMonitor monitor(sim);
  Reg<int> owned(sim, "owned_reg", 0);
  sim.AddProcess(WriteForever(owned, 1), "only_writer");
  sim.Run(4);
  EXPECT_FALSE(monitor.HasFindings());
}

TEST(AnalysisHooks, TestbenchWriteDoesNotCountAsDriver) {
  Simulator sim;
  HazardMonitor monitor(sim);
  Reg<int> poked(sim, "poked_reg", 0);
  sim.AddProcess(WriteForever(poked, 1), "hw_writer");
  for (int i = 0; i < 4; ++i) {
    poked.Write(99);  // harness poke between edges, like every testbench does
    sim.Step();
  }
  EXPECT_EQ(monitor.CountOf(HazardKind::kMultiDriver), 0u);
}

TEST(AnalysisHooks, DisabledCheckStaysSilent) {
  Simulator sim;
  HazardMonitor monitor(sim);
  monitor.EnableCheck(HazardKind::kMultiDriver, false);
  Reg<int> shared(sim, "shared_reg", 0);
  sim.AddProcess(WriteForever(shared, 1), "writer_a");
  sim.AddProcess(WriteForever(shared, 2), "writer_b");
  sim.Run(4);
  EXPECT_FALSE(monitor.HasFindings());
}

// --- Hazard class 2: combinational (wire registration-order) race ---

HwProcess ReadWireForever(Wire<int>& wire, int& sink) {
  for (;;) {
    sink = wire.Read();
    co_await Pause();
  }
}

HwProcess WriteWireForever(Wire<int>& wire) {
  for (int i = 0;; ++i) {
    wire.Write(i);
    co_await Pause();
  }
}

TEST(AnalysisHooks, DetectsWireOrderRace) {
  Simulator sim;
  HazardMonitor monitor(sim);
  Wire<int> wire(sim, "race_wire", 0);
  int sink = 0;
  sim.AddProcess(ReadWireForever(wire, sink), "early_reader");  // registered first
  sim.AddProcess(WriteWireForever(wire), "late_writer");        // writes after the read
  sim.Run(4);
  EXPECT_EQ(monitor.CountOf(HazardKind::kCombRace), 1u);
  bool found = false;
  for (const auto& report : monitor.reports()) {
    if (report.kind == HazardKind::kCombRace) {
      EXPECT_EQ(report.signal, "race_wire");
      EXPECT_EQ(report.process, "early_reader");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AnalysisHooks, WriterBeforeReaderIsClean) {
  Simulator sim;
  HazardMonitor monitor(sim);
  Wire<int> wire(sim, "ok_wire", 0);
  int sink = 0;
  sim.AddProcess(WriteWireForever(wire), "early_writer");
  sim.AddProcess(ReadWireForever(wire, sink), "late_reader");
  sim.Run(4);
  EXPECT_FALSE(monitor.HasFindings());
}

// --- Hazard class 3: read of an uninitialized (no-default) element ---

HwProcess ReadRegOnce(Reg<int>& reg, int& sink) {
  sink = reg.Read();
  co_await Pause();
}

TEST(AnalysisHooks, DetectsUninitRead) {
  Simulator sim;
  HazardMonitor monitor(sim);
  Reg<int> undriven(sim, "undriven_reg", no_init);
  int sink = 0;
  sim.AddProcess(ReadRegOnce(undriven, sink), "reader");
  sim.Run(1);
  EXPECT_EQ(monitor.CountOf(HazardKind::kUninitRead), 1u);
}

TEST(AnalysisHooks, InitializedRegIsClean) {
  Simulator sim;
  HazardMonitor monitor(sim);
  Reg<int> driven(sim, "driven_reg", 7);  // has a declared reset value
  int sink = 0;
  sim.AddProcess(ReadRegOnce(driven, sink), "reader");
  sim.Run(1);
  EXPECT_FALSE(monitor.HasFindings());
}

TEST(AnalysisHooks, NoInitRegCleanOnceWritten) {
  Simulator sim;
  HazardMonitor monitor(sim);
  Reg<int> reg(sim, "written_first", no_init);
  reg.Write(5);
  int sink = 0;
  sim.AddProcess(ReadRegOnce(reg, sink), "reader");
  sim.Run(1);
  EXPECT_FALSE(monitor.HasFindings());
}

// --- Hazard class 4: lost backpressure (unchecked dropped push) ---

HwProcess BlindPusher(SyncFifo<int>& fifo) {
  for (int i = 0;; ++i) {
    fifo.Push(i);  // never checks CanPush, never looks at the result
    co_await Pause();
  }
}

HwProcess PolitePusher(SyncFifo<int>& fifo) {
  for (int i = 0;; ++i) {
    if (fifo.CanPush()) {
      fifo.Push(i);
    }
    co_await Pause();
  }
}

TEST(AnalysisHooks, DetectsLostBackpressure) {
  Simulator sim;
  HazardMonitor monitor(sim);
  SyncFifo<int> fifo(sim, "tiny_fifo", 1, 32);  // fills after one push
  sim.AddProcess(BlindPusher(fifo), "blind_pusher");
  sim.Run(4);  // second push hits a full FIFO with no CanPush that cycle
  EXPECT_EQ(monitor.CountOf(HazardKind::kLostBackpressure), 1u);
}

TEST(AnalysisHooks, CheckedDropIsClean) {
  Simulator sim;
  HazardMonitor monitor(sim);
  SyncFifo<int> fifo(sim, "tiny_fifo", 1, 32);
  sim.AddProcess(PolitePusher(fifo), "polite_pusher");
  sim.Run(4);  // FIFO is full from cycle 1 on, but every drop is observed
  EXPECT_FALSE(monitor.HasFindings());
}

// --- Hazard class 5: runaway process (Pause starvation / livelock) ---

HwProcess HotLoop(Reg<int>& reg, int writes_per_resume) {
  for (;;) {
    for (int i = 0; i < writes_per_resume; ++i) {
      reg.Write(i);
    }
    co_await Pause();
  }
}

TEST(AnalysisHooks, DetectsRunawayProcess) {
  Simulator sim;
  HazardMonitor monitor(sim);
  monitor.set_runaway_budget(64);
  Reg<int> reg(sim, "spin_reg", 0);
  sim.AddProcess(HotLoop(reg, 1000), "spinner");
  sim.Run(2);
  EXPECT_EQ(monitor.CountOf(HazardKind::kRunawayProcess), 1u);
  bool found = false;
  for (const auto& report : monitor.reports()) {
    if (report.kind == HazardKind::kRunawayProcess) {
      EXPECT_EQ(report.process, "spinner");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(AnalysisHooks, BudgetedProcessIsClean) {
  Simulator sim;
  HazardMonitor monitor(sim);
  monitor.set_runaway_budget(64);
  Reg<int> reg(sim, "calm_reg", 0);
  sim.AddProcess(HotLoop(reg, 8), "calm");
  sim.Run(16);
  EXPECT_FALSE(monitor.HasFindings());
}

// --- Hazard class 6: post-mortem Step() (lifetime rule violation) ---

TEST(AnalysisHooks, DetectsPostMortemStep) {
  Simulator sim;
  HazardMonitor monitor(sim);
  {
    Reg<int> doomed(sim, "doomed_reg", 0);
    sim.Step();
  }
  sim.Step();  // would be a use-after-free without the tombstone
  sim.Step();
  EXPECT_EQ(monitor.CountOf(HazardKind::kPostMortemStep), 1u);
}

TEST(AnalysisHooks, UnregisteredElementDeathIsClean) {
  Simulator sim;
  HazardMonitor monitor(sim);
  {
    Reg<int> transient(sim, "transient_reg", 0);
    sim.Step();
    sim.UnregisterClocked(&transient);  // dynamic reconfiguration path
  }
  sim.Step();
  EXPECT_FALSE(monitor.HasFindings());
}

// --- Hazard class 7: combinational dependency cycle (static half) ---

HwProcess RelayWire(Wire<int>& in, Wire<int>& out) {
  for (;;) {
    out.Write(in.Read() + 1);
    co_await Pause();
  }
}

TEST(AnalysisHooks, DetectsCombinationalLoop) {
  Simulator sim;
  HazardMonitor monitor(sim);
  monitor.EnableCheck(HazardKind::kCombRace, false);  // isolate the graph check
  Wire<int> a(sim, "wire_a", 0);
  Wire<int> b(sim, "wire_b", 0);
  sim.AddProcess(RelayWire(a, b), "a_to_b");
  sim.AddProcess(RelayWire(b, a), "b_to_a");
  sim.Run(4);
  EXPECT_EQ(monitor.AnalyzeCombinationalGraph(), 1u);
  EXPECT_EQ(monitor.CountOf(HazardKind::kCombLoop), 1u);
  // Idempotent: re-analysis does not duplicate the finding.
  EXPECT_EQ(monitor.AnalyzeCombinationalGraph(), 0u);
  EXPECT_EQ(monitor.CountOf(HazardKind::kCombLoop), 1u);
}

TEST(AnalysisHooks, AcyclicWirePipelineHasNoLoop) {
  Simulator sim;
  HazardMonitor monitor(sim);
  Wire<int> a(sim, "wire_a", 0);
  Wire<int> b(sim, "wire_b", 0);
  int sink = 0;
  sim.AddProcess(WriteWireForever(a), "source");
  sim.AddProcess(RelayWire(a, b), "relay");
  sim.AddProcess(ReadWireForever(b, sink), "sink");
  sim.Run(4);
  EXPECT_EQ(monitor.AnalyzeCombinationalGraph(), 0u);
  EXPECT_FALSE(monitor.HasFindings());
}

// A process reading the wire it writes is a blocking assignment inside one
// process, not a dependency cycle: the SCC is a singleton and must not fire.
HwProcess SelfRelay(Wire<int>& w) {
  for (;;) {
    w.Write(w.Read() + 1);
    co_await Pause();
  }
}

TEST(AnalysisHooks, SelfLoopIsNotACombLoop) {
  Simulator sim;
  HazardMonitor monitor(sim);
  monitor.EnableCheck(HazardKind::kCombRace, false);
  Wire<int> w(sim, "self_wire", 0);
  sim.AddProcess(SelfRelay(w), "self");
  sim.Run(4);
  EXPECT_EQ(monitor.AnalyzeCombinationalGraph(), 0u);
  EXPECT_EQ(monitor.CountOf(HazardKind::kCombLoop), 0u);
}

TEST(AnalysisHooks, DisjointCombCyclesReportSeparately) {
  Simulator sim;
  HazardMonitor monitor(sim);
  monitor.EnableCheck(HazardKind::kCombRace, false);
  Wire<int> a(sim, "ring1_a", 0), b(sim, "ring1_b", 0);
  Wire<int> c(sim, "ring2_c", 0), d(sim, "ring2_d", 0);
  sim.AddProcess(RelayWire(a, b), "r1_fwd");
  sim.AddProcess(RelayWire(b, a), "r1_back");
  sim.AddProcess(RelayWire(c, d), "r2_fwd");
  sim.AddProcess(RelayWire(d, c), "r2_back");
  sim.Run(4);
  EXPECT_EQ(monitor.AnalyzeCombinationalGraph(), 2u);
  EXPECT_EQ(monitor.CountOf(HazardKind::kCombLoop), 2u);
}

// Feedback routed through a register is the canonical correct shape: the reg
// edge is clocked, so the comb graph stays acyclic.
HwProcess RegToWire(Reg<int>& r, Wire<int>& w) {
  for (;;) {
    w.Write(r.Read() + 1);
    co_await Pause();
  }
}

HwProcess WireToReg(Wire<int>& w, Reg<int>& r) {
  for (;;) {
    r.Write(w.Read());
    co_await Pause();
  }
}

TEST(AnalysisHooks, RegisterBreaksCombLoop) {
  Simulator sim;
  HazardMonitor monitor(sim);
  monitor.EnableCheck(HazardKind::kCombRace, false);
  Wire<int> w(sim, "forward_wire", 0);
  Reg<int> r(sim, "state_reg", 0);
  sim.AddProcess(RegToWire(r, w), "producer");
  sim.AddProcess(WireToReg(w, r), "consumer");
  sim.Run(4);
  EXPECT_EQ(monitor.AnalyzeCombinationalGraph(), 0u);
  EXPECT_EQ(monitor.CountOf(HazardKind::kCombLoop), 0u);
}

// --- A fully clean multi-element design stays silent end to end ---

HwProcess CleanProducer(SyncFifo<int>& fifo) {
  for (int i = 0;; ++i) {
    if (fifo.CanPush()) {
      fifo.Push(i);
    }
    co_await Pause();
  }
}

HwProcess CleanConsumer(SyncFifo<int>& fifo, Reg<int>& total) {
  for (;;) {
    if (!fifo.Empty()) {
      total.Write(total.Read() + fifo.Pop());
    }
    co_await Pause();
  }
}

TEST(AnalysisHooks, CleanDesignReportsNothing) {
  Simulator sim;
  HazardMonitor monitor(sim);
  SyncFifo<int> fifo(sim, "pipe", 4, 32);
  Reg<int> total(sim, "total", 0);
  sim.AddProcess(CleanProducer(fifo), "producer");
  sim.AddProcess(CleanConsumer(fifo, total), "consumer");
  sim.Run(100);
  EXPECT_EQ(monitor.AnalyzeCombinationalGraph(), 0u);
  EXPECT_FALSE(monitor.HasFindings());
  EXPECT_NE(monitor.Summary().find("clean"), std::string::npos);
  EXPECT_GT(total.Read(), 0);
}

// --- Dependency graph dump ---

TEST(AnalysisHooks, DotDumpNamesProcessesAndSignals) {
  Simulator sim;
  HazardMonitor monitor(sim);
  SyncFifo<int> fifo(sim, "pipe", 4, 32);
  Reg<int> total(sim, "total", 0);
  sim.AddProcess(CleanProducer(fifo), "producer");
  sim.AddProcess(CleanConsumer(fifo, total), "consumer");
  sim.Run(10);
  std::ostringstream os;
  sim.DumpDependencyGraph(os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("producer"), std::string::npos);
  EXPECT_NE(dot.find("consumer"), std::string::npos);
  EXPECT_NE(dot.find("pipe"), std::string::npos);
  EXPECT_NE(dot.find("total"), std::string::npos);
}

TEST(AnalysisHooks, SummaryCountsFindings) {
  Simulator sim;
  HazardMonitor monitor(sim);
  Reg<int> shared(sim, "shared_reg", 0);
  sim.AddProcess(WriteForever(shared, 1), "writer_a");
  sim.AddProcess(WriteForever(shared, 2), "writer_b");
  sim.Run(4);
  const std::string summary = monitor.Summary();
  EXPECT_NE(summary.find("1 finding(s)"), std::string::npos);
  EXPECT_NE(summary.find("MULTIDRIVEN"), std::string::npos);
  monitor.Clear();
  EXPECT_FALSE(monitor.HasFindings());
}

#endif  // EMU_ANALYSIS

}  // namespace
}  // namespace emu
