// bench/bench_json.h unit tests.
//
// The helpers replaced two buggy generations of bench JSON I/O: an
// iostream/strtod pair whose decimal separator followed the global locale,
// and a section scanner that treated the first '}' after a section opened as
// its close — truncating any section with a nested object. These tests pin
// the round-trip exactness, the full JSON number grammar, the brace-depth
// section scan, and locale independence.
#include <gtest/gtest.h>

#include <clocale>
#include <string>

#include "bench/bench_json.h"

namespace emu::bench {
namespace {

TEST(BenchJson, FormatParseRoundTripIsBitExact) {
  const double values[] = {0.0,
                           1.0,
                           -1.0,
                           0.5,
                           -0.25,
                           1.4290489433241595,     // a measured speedup ratio
                           8532055.20871092,       // a measured cycles/sec
                           0.033498352,            // a wall-seconds sample
                           1e-9,
                           -1e-9,
                           1e21,                   // forces exponent notation
                           4.9406564584124654e-324 /* min subnormal */};
  for (const double v : values) {
    const std::string text = FormatJsonNumber(v);
    double back = 0;
    ASSERT_TRUE(ParseJsonNumberAt(text, 0, &back)) << text;
    EXPECT_EQ(back, v) << text;
  }
}

TEST(BenchJson, ParseAcceptsFullJsonNumberGrammar) {
  double v = 0;
  ASSERT_TRUE(ParseJsonNumberAt("42", 0, &v));
  EXPECT_EQ(v, 42.0);
  ASSERT_TRUE(ParseJsonNumberAt("-7.5", 0, &v));
  EXPECT_EQ(v, -7.5);
  ASSERT_TRUE(ParseJsonNumberAt("1.25e3", 0, &v));
  EXPECT_EQ(v, 1250.0);
  ASSERT_TRUE(ParseJsonNumberAt("5E-2", 0, &v));
  EXPECT_EQ(v, 0.05);
  ASSERT_TRUE(ParseJsonNumberAt("  \t\n 3.5", 0, &v));  // leading whitespace
  EXPECT_EQ(v, 3.5);
  EXPECT_FALSE(ParseJsonNumberAt("", 0, &v));
  EXPECT_FALSE(ParseJsonNumberAt("null", 0, &v));
  EXPECT_FALSE(ParseJsonNumberAt("\"9\"", 0, &v));
}

TEST(BenchJson, ExtractJsonNumberFindsKeyedValues) {
  const std::string doc = R"({"a": 1.5, "b": -2e3, "count": 7})";
  double v = 0;
  ASSERT_TRUE(ExtractJsonNumber(doc, "a", &v));
  EXPECT_EQ(v, 1.5);
  ASSERT_TRUE(ExtractJsonNumber(doc, "b", &v));
  EXPECT_EQ(v, -2000.0);
  ASSERT_TRUE(ExtractJsonNumber(doc, "count", &v));
  EXPECT_EQ(v, 7.0);
  EXPECT_FALSE(ExtractJsonNumber(doc, "missing", &v));
}

// The regression that motivated the brace-depth scanner: a section whose
// FIRST child is a nested object. The old first-'}' logic truncated the
// section at the inner close brace, so keys after the nested object were
// never found.
TEST(BenchJson, SectionScanIsBraceDepthAware) {
  const std::string doc = R"({
    "saturated": {
      "workload": {"service": "learning_switch", "cycles": 200000},
      "exact": {"cycles_per_sec": 100.0},
      "flat": {"cycles_per_sec": 250.0},
      "speedup": 2.5
    },
    "speedup": 99.0
  })";
  double v = 0;
  // A key that sits after a nested object inside the section...
  ASSERT_TRUE(ExtractJsonNumberInSection(doc, "saturated", "speedup", &v));
  // ...must resolve to the section's value, not the document-level one.
  EXPECT_EQ(v, 2.5);
  // Disambiguation between same-named keys in sibling nested sections.
  ASSERT_TRUE(ExtractJsonNumberInSection(doc, "exact", "cycles_per_sec", &v));
  EXPECT_EQ(v, 100.0);
  ASSERT_TRUE(ExtractJsonNumberInSection(doc, "flat", "cycles_per_sec", &v));
  EXPECT_EQ(v, 250.0);
  EXPECT_FALSE(ExtractJsonNumberInSection(doc, "absent", "speedup", &v));
  EXPECT_FALSE(ExtractJsonNumberInSection(doc, "saturated", "absent", &v));
  // Malformed (unclosed) section yields nothing rather than a torn view.
  EXPECT_TRUE(ExtractJsonSection(R"("bad": { "x": 1)", "bad").empty());
  EXPECT_FALSE(ExtractJsonNumberInSection(R"("bad": { "x": 1)", "bad", "x", &v));
}

// Writer and reader must ignore the global C locale. If a comma-decimal
// locale is installed on the host, run the round trip under it; otherwise
// the test still passes (std::to_chars/from_chars are locale-independent by
// specification, so there is nothing to exercise).
TEST(BenchJson, LocaleIndependentRoundTrip) {
  const char* previous = std::setlocale(LC_ALL, nullptr);
  const std::string saved = previous != nullptr ? previous : "C";
  const bool have_comma_locale = std::setlocale(LC_ALL, "de_DE.UTF-8") != nullptr ||
                                 std::setlocale(LC_ALL, "fr_FR.UTF-8") != nullptr;
  const std::string text = FormatJsonNumber(3.14159);
  EXPECT_EQ(text.find(','), std::string::npos) << text;
  double back = 0;
  ASSERT_TRUE(ParseJsonNumberAt(text, 0, &back));
  EXPECT_EQ(back, 3.14159);
  std::setlocale(LC_ALL, saved.c_str());
  (void)have_comma_locale;
}

}  // namespace
}  // namespace emu::bench
