// L3-L4 filter, the iptables-style CLI, and the NAT gateway.
#include <gtest/gtest.h>

#include "src/core/targets.h"
#include "src/net/arp.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/services/iptables_cli.h"
#include "src/services/l3l4_filter.h"
#include "src/services/nat_service.h"

namespace emu {
namespace {

const MacAddress kMacA = MacAddress::FromU48(0x02'00'00'00'dd'01);
const MacAddress kMacB = MacAddress::FromU48(0x02'00'00'00'dd'02);
const Ipv4Address kIpA(10, 0, 0, 1);
const Ipv4Address kIpB(10, 0, 0, 2);

// --- iptables CLI ----------------------------------------------------------------

TEST(IptablesCli, ParsesDropTcpDportRange) {
  auto rule = ParseIptablesRule("-A FORWARD -p tcp --dport 80:443 -j DROP");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->action, FilterRule::Action::kDrop);
  ASSERT_TRUE(rule->protocol.has_value());
  EXPECT_EQ(*rule->protocol, IpProtocol::kTcp);
  EXPECT_EQ(rule->dst_ports.lo, 80);
  EXPECT_EQ(rule->dst_ports.hi, 443);
  EXPECT_TRUE(rule->src_ports.IsAny());
}

TEST(IptablesCli, ParsesSourceSubnet) {
  auto rule = ParseIptablesRule("-A FORWARD -s 192.168.1.0/24 -j DROP");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->src_base, Ipv4Address(192, 168, 1, 0));
  EXPECT_EQ(rule->src_prefix, 24u);
  EXPECT_FALSE(rule->protocol.has_value());
}

TEST(IptablesCli, BareAddressIsSlash32) {
  auto rule = ParseIptablesRule("-s 10.0.0.7 -j ACCEPT");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->src_prefix, 32u);
  EXPECT_EQ(rule->action, FilterRule::Action::kAccept);
}

TEST(IptablesCli, SinglePortBecomesDegenerateRange) {
  auto rule = ParseIptablesRule("-p udp --dport 53 -j ACCEPT");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->dst_ports.lo, 53);
  EXPECT_EQ(rule->dst_ports.hi, 53);
}

TEST(IptablesCli, ToleratesLeadingIptablesWord) {
  EXPECT_TRUE(ParseIptablesRule("iptables -A FORWARD -p icmp -j DROP").ok());
}

TEST(IptablesCli, RejectsPortsWithoutProtocol) {
  EXPECT_FALSE(ParseIptablesRule("--dport 80 -j DROP").ok());
  EXPECT_FALSE(ParseIptablesRule("-p icmp --dport 80 -j DROP").ok());
}

TEST(IptablesCli, RejectsMalformedInput) {
  EXPECT_FALSE(ParseIptablesRule("-p tcp").ok());            // no action
  EXPECT_FALSE(ParseIptablesRule("-p quic -j DROP").ok());   // bad proto
  EXPECT_FALSE(ParseIptablesRule("-s 1.2.3.4/40 -j DROP").ok());
  EXPECT_FALSE(ParseIptablesRule("-p tcp --dport 99999 -j DROP").ok());
  EXPECT_FALSE(ParseIptablesRule("-p tcp --dport 443:80 -j DROP").ok());
  EXPECT_FALSE(ParseIptablesRule("-x foo -j DROP").ok());
  EXPECT_FALSE(ParseIptablesRule("-j NFQUEUE").ok());
}

TEST(IptablesCli, ParsesScriptWithPolicyAndComments) {
  const std::string script =
      "# block web traffic from the lab subnet\n"
      "-P FORWARD ACCEPT\n"
      "-A FORWARD -p tcp -s 10.0.0.0/24 --dport 80:443 -j DROP\n"
      "\n"
      "-A FORWARD -p icmp -j ACCEPT\n";
  auto ruleset = ParseIptablesScript(script);
  ASSERT_TRUE(ruleset.ok()) << ruleset.status().ToString();
  EXPECT_EQ(ruleset->default_action, FilterRule::Action::kAccept);
  ASSERT_EQ(ruleset->rules.size(), 2u);
  EXPECT_EQ(ruleset->rules[0].action, FilterRule::Action::kDrop);
}

TEST(IptablesCli, ScriptErrorPropagates) {
  EXPECT_FALSE(ParseIptablesScript("-A FORWARD -p tcp\n").ok());
}

// --- L3L4 filter on the FPGA target ------------------------------------------------

Packet MakeUdpFlow(Ipv4Address src, Ipv4Address dst, u16 sport, u16 dport) {
  return MakeUdpPacket({kMacB, kMacA, src, dst, sport, dport}, std::vector<u8>{1, 2, 3});
}

Packet MakeTcpFlow(Ipv4Address src, Ipv4Address dst, u16 sport, u16 dport) {
  TcpSegmentSpec spec{kMacB, kMacA, src, dst, sport, dport, 1, 0, TcpFlags::kSyn};
  return MakeTcpSegment(spec);
}

TEST(L3L4FilterTest, DropsMatchingTcpPortRange) {
  auto ruleset = ParseIptablesScript("-A FORWARD -p tcp --dport 80:443 -j DROP\n");
  ASSERT_TRUE(ruleset.ok());
  L3L4FilterConfig config;
  config.rules = ruleset->rules;
  L3L4Filter service(config);
  FpgaTarget target(service);

  target.Inject(0, MakeTcpFlow(kIpA, kIpB, 50000, 80));     // dropped
  target.Inject(0, MakeTcpFlow(kIpA, kIpB, 50000, 22));     // passes
  target.Run(100'000);
  EXPECT_EQ(service.filtered(), 1u);
  EXPECT_EQ(service.accepted(), 1u);
  // Only the port-22 flow was flooded by the embedded switch.
  for (const auto& frame : target.egress()) {
    Packet copy = frame.frame;
    Ipv4View ip(copy);
    TcpView tcp(copy, ip.payload_offset());
    EXPECT_EQ(tcp.destination_port(), 22);
  }
}

TEST(L3L4FilterTest, SubnetDropRule) {
  auto ruleset = ParseIptablesScript("-A FORWARD -s 10.0.0.0/24 -j DROP\n");
  ASSERT_TRUE(ruleset.ok());
  L3L4FilterConfig config;
  config.rules = ruleset->rules;
  L3L4Filter service(config);
  FpgaTarget target(service);

  target.Inject(0, MakeUdpFlow(Ipv4Address(10, 0, 0, 5), kIpB, 1, 2));   // in subnet: drop
  target.Inject(0, MakeUdpFlow(Ipv4Address(10, 0, 1, 5), kIpB, 1, 2));   // outside: pass
  target.Run(100'000);
  EXPECT_EQ(service.filtered(), 1u);
  EXPECT_EQ(service.accepted(), 1u);
}

TEST(L3L4FilterTest, FirstMatchWins) {
  auto ruleset = ParseIptablesScript(
      "-A FORWARD -p udp --dport 53 -j ACCEPT\n"
      "-A FORWARD -p udp -j DROP\n");
  ASSERT_TRUE(ruleset.ok());
  L3L4FilterConfig config;
  config.rules = ruleset->rules;
  L3L4Filter service(config);
  FpgaTarget target(service);

  target.Inject(0, MakeUdpFlow(kIpA, kIpB, 9, 53));   // rule 1: accept
  target.Inject(0, MakeUdpFlow(kIpA, kIpB, 9, 123));  // rule 2: drop
  target.Run(100'000);
  EXPECT_EQ(service.accepted(), 1u);
  EXPECT_EQ(service.filtered(), 1u);
}

TEST(L3L4FilterTest, DefaultDropPolicy) {
  L3L4FilterConfig config;
  config.default_action = FilterRule::Action::kDrop;
  auto rule = ParseIptablesRule("-p icmp -j ACCEPT");
  ASSERT_TRUE(rule.ok());
  config.rules.push_back(*rule);
  L3L4Filter service(config);
  FpgaTarget target(service);

  target.Inject(0, MakeUdpFlow(kIpA, kIpB, 1, 2));  // no match -> default drop
  target.Run(100'000);
  EXPECT_EQ(service.filtered(), 1u);
  EXPECT_EQ(service.accepted(), 0u);
}

TEST(L3L4FilterTest, NonIpTrafficPassesToSwitch) {
  auto ruleset = ParseIptablesScript("-A FORWARD -p udp -j DROP\n");
  ASSERT_TRUE(ruleset.ok());
  L3L4FilterConfig config;
  config.rules = ruleset->rules;
  L3L4Filter service(config);
  FpgaTarget target(service);

  // An ARP frame matches no IPv4 rule and must still be switched.
  Packet arp = MakeArpRequest(kMacA, kIpA, kIpB);
  target.Inject(0, std::move(arp));
  target.Run(100'000);
  EXPECT_EQ(service.accepted(), 1u);
  EXPECT_EQ(target.egress().size(), 3u);  // broadcast flood
}

TEST(L3L4FilterTest, EmbeddedSwitchStillLearns) {
  L3L4Filter service;
  FpgaTarget target(service);
  target.Inject(1, MakeUdpFlow(kIpB, kIpA, 5, 6));
  target.Run(100'000);
  EXPECT_GT(service.embedded_switch().learned(), 0u);
}

// --- NAT -----------------------------------------------------------------------------

class NatTest : public ::testing::Test {
 protected:
  NatConfig config_;
  NatService service_{config_};
  FpgaTarget target_{service_};

  static constexpr u8 kExternalPort = 0;
  static constexpr u8 kInternalPort = 1;

  const Ipv4Address kInternalHost{192, 168, 1, 10};
  const MacAddress kInternalHostMac = MacAddress::FromU48(0x02'00'00'00'11'10);
  const Ipv4Address kRemoteHost{8, 8, 8, 8};
  const MacAddress kRemoteMac = MacAddress::FromU48(0x02'00'00'00'99'99);

  Packet OutboundUdp(u16 sport, u16 dport) {
    return MakeUdpPacket({config_.internal_mac, kInternalHostMac, kInternalHost, kRemoteHost,
                          sport, dport},
                         std::vector<u8>{'h', 'i'});
  }
};

TEST_F(NatTest, OutboundUdpIsTranslated) {
  auto out = target_.SendAndCollect(kInternalPort, OutboundUdp(5000, 53));
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  Ipv4View ip(*out);
  ASSERT_TRUE(ip.Valid());
  EXPECT_EQ(ip.source(), config_.external_ip);       // SNAT applied
  EXPECT_EQ(ip.destination(), kRemoteHost);
  EXPECT_TRUE(ip.ChecksumValid());

  UdpView udp(*out, ip.payload_offset());
  EXPECT_GE(udp.source_port(), config_.port_base);
  EXPECT_EQ(udp.destination_port(), 53);
  EXPECT_TRUE(udp.ChecksumValid(ip));

  EthernetView eth(*out);
  EXPECT_EQ(eth.source(), config_.external_mac);
  EXPECT_EQ(eth.destination(), config_.external_gateway_mac);
  EXPECT_EQ(service_.translated_out(), 1u);
  EXPECT_EQ(service_.active_mappings(), 1u);
}

TEST_F(NatTest, InboundReplyIsReverseTranslated) {
  auto out = target_.SendAndCollect(kInternalPort, OutboundUdp(5000, 53));
  ASSERT_TRUE(out.ok());
  Ipv4View out_ip(*out);
  UdpView out_udp(*out, out_ip.payload_offset());
  const u16 ext_port = out_udp.source_port();
  target_.TakeEgress();

  // Remote host replies to (external_ip, ext_port).
  Packet reply = MakeUdpPacket({config_.external_mac, kRemoteMac, kRemoteHost,
                                config_.external_ip, 53, ext_port},
                               std::vector<u8>{'o', 'k'});
  target_.Inject(kExternalPort, std::move(reply));
  ASSERT_TRUE(target_.RunUntilEgressCount(1, 500'000));
  const auto egress = target_.TakeEgress();
  ASSERT_EQ(egress.size(), 1u);
  EXPECT_EQ(egress[0].port, kInternalPort);  // back to the recorded FPGA port

  Packet in = egress[0].frame;
  Ipv4View ip(in);
  EXPECT_EQ(ip.destination(), kInternalHost);  // DNAT back
  EXPECT_TRUE(ip.ChecksumValid());
  UdpView udp(in, ip.payload_offset());
  EXPECT_EQ(udp.destination_port(), 5000);
  EXPECT_TRUE(udp.ChecksumValid(ip));
  EthernetView eth(in);
  EXPECT_EQ(eth.destination(), kInternalHostMac);
  EXPECT_EQ(service_.translated_in(), 1u);
}

TEST_F(NatTest, SameFlowReusesMapping) {
  auto first = target_.SendAndCollect(kInternalPort, OutboundUdp(5000, 53));
  auto second = target_.SendAndCollect(kInternalPort, OutboundUdp(5000, 53));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  Ipv4View ip1(*first);
  Ipv4View ip2(*second);
  UdpView udp1(*first, ip1.payload_offset());
  UdpView udp2(*second, ip2.payload_offset());
  EXPECT_EQ(udp1.source_port(), udp2.source_port());
  EXPECT_EQ(service_.active_mappings(), 1u);
}

TEST_F(NatTest, DistinctFlowsGetDistinctPorts) {
  auto first = target_.SendAndCollect(kInternalPort, OutboundUdp(5000, 53));
  auto second = target_.SendAndCollect(kInternalPort, OutboundUdp(5001, 53));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  Ipv4View ip1(*first);
  Ipv4View ip2(*second);
  UdpView udp1(*first, ip1.payload_offset());
  UdpView udp2(*second, ip2.payload_offset());
  EXPECT_NE(udp1.source_port(), udp2.source_port());
  EXPECT_EQ(service_.active_mappings(), 2u);
}

TEST_F(NatTest, TcpFlowsAreTranslatedWithValidChecksum) {
  TcpSegmentSpec spec{config_.internal_mac, kInternalHostMac, kInternalHost, kRemoteHost,
                      43210, 80, 100, 0, TcpFlags::kSyn};
  auto out = target_.SendAndCollect(kInternalPort, MakeTcpSegment(spec));
  ASSERT_TRUE(out.ok());
  Ipv4View ip(*out);
  EXPECT_EQ(ip.source(), config_.external_ip);
  TcpView tcp(*out, ip.payload_offset());
  EXPECT_GE(tcp.source_port(), config_.port_base);
  EXPECT_TRUE(tcp.ChecksumValid(ip, kTcpMinHeaderSize));
}

TEST_F(NatTest, InboundToUnmappedPortIsDropped) {
  Packet stray = MakeUdpPacket({config_.external_mac, kRemoteMac, kRemoteHost,
                                config_.external_ip, 53, 49999},
                               std::vector<u8>{'x'});
  target_.Inject(kExternalPort, std::move(stray));
  target_.Run(100'000);
  EXPECT_TRUE(target_.egress().empty());
  EXPECT_GT(service_.dropped(), 0u);
}

TEST_F(NatTest, UdpAndTcpMappingsAreSeparate) {
  auto udp_out = target_.SendAndCollect(kInternalPort, OutboundUdp(7000, 9));
  ASSERT_TRUE(udp_out.ok());
  Ipv4View uip(*udp_out);
  UdpView udp(*udp_out, uip.payload_offset());
  const u16 udp_ext = udp.source_port();
  target_.TakeEgress();

  // A TCP reply to the UDP mapping's port must not traverse.
  TcpSegmentSpec spec{config_.external_mac, kRemoteMac, kRemoteHost, config_.external_ip,
                      9, udp_ext, 1, 0, TcpFlags::kSyn};
  target_.Inject(kExternalPort, MakeTcpSegment(spec));
  target_.Run(100'000);
  EXPECT_TRUE(target_.egress().empty());
}

TEST_F(NatTest, AnswersArpOnBothSides) {
  auto external = target_.SendAndCollect(
      kExternalPort, MakeArpRequest(kRemoteMac, kRemoteHost, config_.external_ip));
  ASSERT_TRUE(external.ok());
  ArpView ext_arp(*external);
  EXPECT_EQ(ext_arp.sender_mac(), config_.external_mac);

  auto internal = target_.SendAndCollect(
      kInternalPort, MakeArpRequest(kInternalHostMac, kInternalHost, config_.internal_ip));
  ASSERT_TRUE(internal.ok());
  ArpView int_arp(*internal);
  EXPECT_EQ(int_arp.sender_mac(), config_.internal_mac);
}

TEST_F(NatTest, TtlDecrementedOnForward) {
  auto out = target_.SendAndCollect(kInternalPort, OutboundUdp(5000, 53));
  ASSERT_TRUE(out.ok());
  Ipv4View ip(*out);
  EXPECT_EQ(ip.ttl(), 63);  // 64 - 1
}

// NAT on the CPU target: the §4.4 "same code, multiple platforms" claim.
TEST(NatCpuTest, TranslatesOnCpuTarget) {
  NatConfig config;
  NatService service(config);
  CpuTarget target(service);
  Packet out = MakeUdpPacket({config.internal_mac, MacAddress::FromU48(0x020000001110),
                              Ipv4Address(192, 168, 1, 10), Ipv4Address(8, 8, 8, 8), 5000, 53},
                             std::vector<u8>{'h', 'i'});
  out.set_src_port(1);
  const auto frames = target.Deliver(std::move(out));
  ASSERT_EQ(frames.size(), 1u);
  Packet frame = frames[0];
  Ipv4View ip(frame);
  EXPECT_EQ(ip.source(), config.external_ip);
}

}  // namespace
}  // namespace emu
