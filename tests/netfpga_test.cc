#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/targets.h"
#include "src/net/ethernet.h"
#include "src/netfpga/axis.h"
#include "src/netfpga/dataplane.h"
#include "src/netfpga/pipeline.h"
#include "src/services/learning_switch.h"

namespace emu {
namespace {

const MacAddress kHostMac[4] = {
    MacAddress::FromU48(0x020000000001), MacAddress::FromU48(0x020000000002),
    MacAddress::FromU48(0x020000000003), MacAddress::FromU48(0x020000000004)};

Packet MakeTestFrame(MacAddress dst, MacAddress src, usize size = 64) {
  std::vector<u8> payload(size > kEthernetHeaderSize ? size - kEthernetHeaderSize : 0, 0xaa);
  Packet frame = MakeEthernetFrame(dst, src, EtherType::kIpv4, payload);
  frame.Resize(size);
  return frame;
}

// --- AXIS framing ------------------------------------------------------------

TEST(Axis, WordsForBytesRoundsUp) {
  EXPECT_EQ(WordsForBytes(64, 32), 2u);
  EXPECT_EQ(WordsForBytes(65, 32), 3u);
  EXPECT_EQ(WordsForBytes(1, 32), 1u);
  EXPECT_EQ(WordsForBytes(0, 32), 1u);
  EXPECT_EQ(WordsForBytes(64, 8), 8u);
}

TEST(Axis, PacketRoundTrips256BitBus) {
  Rng rng(5);
  for (usize size : {usize{1}, usize{31}, usize{32}, usize{33}, usize{64}, usize{1514}}) {
    Packet packet(size);
    for (usize i = 0; i < size; ++i) {
      packet[i] = static_cast<u8>(rng.NextU64());
    }
    const auto words = PacketToAxis(packet);
    EXPECT_EQ(words.size(), WordsForBytes(size, 32));
    EXPECT_TRUE(words.back().tlast);
    auto back = AxisToPacket(words);
    ASSERT_TRUE(back.ok()) << "size " << size;
    ASSERT_EQ(back->size(), size);
    for (usize i = 0; i < size; ++i) {
      ASSERT_EQ((*back)[i], packet[i]);
    }
  }
}

TEST(Axis, NarrowBusRoundTrip) {
  Packet packet(100);
  for (usize i = 0; i < 100; ++i) {
    packet[i] = static_cast<u8>(i);
  }
  const auto words = PacketToAxis(packet, 8);
  EXPECT_EQ(words.size(), 13u);
  auto back = AxisToPacket(words, 8);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 100u);
}

TEST(Axis, RejectsMissingTlast) {
  Packet packet(40);
  auto words = PacketToAxis(packet);
  words.back().tlast = false;
  EXPECT_FALSE(AxisToPacket(words).ok());
}

TEST(Axis, RejectsWordsAfterTlast) {
  Packet packet(40);
  auto words = PacketToAxis(packet);
  words.push_back(words.back());
  words.front().tlast = true;
  EXPECT_FALSE(AxisToPacket(words).ok());
}

TEST(Axis, RejectsHoleInTkeep) {
  Packet packet(10);
  auto words = PacketToAxis(packet);
  words[0].tkeep = 0b1011;  // hole at byte 2
  EXPECT_FALSE(AxisToPacket(words).ok());
}

// --- NetFpga utility API (Fig. 6) ---------------------------------------------

TEST(NetFpgaApi, GetSetFrameRoundTrip) {
  NetFpgaData dataplane;
  const std::vector<u8> src = {1, 2, 3, 4, 5};
  NetFpga::SetFrame(src, dataplane);
  std::vector<u8> dst;
  NetFpga::GetFrame(dataplane, dst);
  EXPECT_EQ(dst, src);
}

TEST(NetFpgaApi, SetOutputPortSetsOneHotMask) {
  NetFpgaData dataplane;
  NetFpga::SetOutputPort(dataplane, 2);
  EXPECT_EQ(dataplane.tdata.dst_port_mask(), 0b0100);
  EXPECT_TRUE(dataplane.output_valid);
}

TEST(NetFpgaApi, BroadcastExcludesInputPort) {
  NetFpgaData dataplane;
  dataplane.tdata.set_src_port(1);
  NetFpga::Broadcast(dataplane);
  EXPECT_EQ(dataplane.tdata.dst_port_mask(), 0b1101);
}

TEST(NetFpgaApi, SendBackToSource) {
  NetFpgaData dataplane;
  dataplane.tdata.set_src_port(3);
  NetFpga::SendBackToSource(dataplane);
  EXPECT_EQ(dataplane.tdata.dst_port_mask(), 0b1000);
}

TEST(NetFpgaApi, ReadInputPort) {
  NetFpgaData dataplane;
  dataplane.tdata.set_src_port(2);
  EXPECT_EQ(NetFpga::ReadInputPort(dataplane), 2u);
}

// --- Serialization timing ------------------------------------------------------

TEST(PortTiming, SixtyFourBytePacketAtLineRate) {
  // 64B (incl. FCS) + 20B preamble/IFG = 672 bits -> 67.2 ns -> 14.88 Mpps
  // per 10G port, i.e. 59.52 Mpps across the four ports (Table 3).
  EXPECT_EQ(SerializationPs(64), 67'200);
  Simulator sim;  // 200 MHz
  EXPECT_EQ(SerializationCycles(64, sim), 14u);  // ceil(67.2ns / 5ns)
}

TEST(PortTiming, PortEnforcesLineRateSpacing) {
  Simulator sim;
  TenGigPort port(sim, "p0", 0, 64);
  const Cycle first = port.Deliver(MakeTestFrame(kHostMac[1], kHostMac[0]), 0);
  const Cycle second = port.Deliver(MakeTestFrame(kHostMac[1], kHostMac[0]), 0);
  // Back-to-back frames are spaced by exact serialization time (67.2 ns ->
  // 13-14 fabric cycles).
  EXPECT_GE(second - first, 13u);
  EXPECT_LE(second - first, 14u);
}

// --- Learning switch on the FPGA target ----------------------------------------

TEST(LearningSwitchFpga, UnknownDestinationIsBroadcast) {
  LearningSwitch service;
  FpgaTarget target(service);
  target.Inject(0, MakeTestFrame(kHostMac[1], kHostMac[0]));
  ASSERT_TRUE(target.RunUntilEgressCount(3, 100'000));
  target.Run(2000);  // no extra copies appear later
  const auto egress = target.egress();
  ASSERT_EQ(egress.size(), 3u);  // flooded to ports 1,2,3 but not 0
  for (const auto& frame : egress) {
    EXPECT_NE(frame.port, 0);
  }
}

TEST(LearningSwitchFpga, LearnedDestinationIsUnicast) {
  LearningSwitch service;
  FpgaTarget target(service);
  // Teach the switch where host B lives (port 1).
  target.Inject(1, MakeTestFrame(kHostMac[0], kHostMac[1]));
  ASSERT_TRUE(target.RunUntilEgressCount(3, 100'000));
  target.TakeEgress();

  // Now traffic to B goes only to port 1.
  target.Inject(0, MakeTestFrame(kHostMac[1], kHostMac[0]));
  ASSERT_TRUE(target.RunUntilEgressCount(1, 100'000));
  target.Run(2000);
  const auto egress = target.TakeEgress();
  ASSERT_EQ(egress.size(), 1u);
  EXPECT_EQ(egress[0].port, 1);
  EXPECT_GT(service.hits(), 0u);
}

TEST(LearningSwitchFpga, LearnsSourceMacs) {
  LearningSwitch service;
  FpgaTarget target(service);
  for (u8 port = 0; port < 4; ++port) {
    target.Inject(port, MakeTestFrame(MacAddress::Broadcast(), kHostMac[port]));
  }
  target.Run(50'000);
  EXPECT_EQ(service.learned(), 4u);
  for (u8 port = 0; port < 4; ++port) {
    const CamLookupResult hit = service.table().Lookup(kHostMac[port].ToU48());
    ASSERT_TRUE(hit.hit) << "port " << static_cast<int>(port);
    EXPECT_EQ(hit.value, port);
  }
}

TEST(LearningSwitchFpga, StationMoveRebinds) {
  LearningSwitch service;
  FpgaTarget target(service);
  target.Inject(0, MakeTestFrame(MacAddress::Broadcast(), kHostMac[0]));
  target.Run(20'000);
  ASSERT_EQ(service.table().Lookup(kHostMac[0].ToU48()).value, 0u);
  // Same MAC appears on port 3.
  target.Inject(3, MakeTestFrame(MacAddress::Broadcast(), kHostMac[0]));
  target.Run(20'000);
  EXPECT_EQ(service.table().Lookup(kHostMac[0].ToU48()).value, 3u);
}

TEST(LearningSwitchFpga, DoesNotLearnBroadcastSource) {
  LearningSwitch service;
  FpgaTarget target(service);
  target.Inject(0, MakeTestFrame(kHostMac[1], MacAddress::Broadcast()));
  target.Run(20'000);
  EXPECT_EQ(service.learned(), 0u);
}

TEST(LearningSwitchFpga, CoreLatencyNearPaperValue) {
  LearningSwitch service;
  FpgaTarget target(service);
  // Warm the table so the second frame takes the unicast path.
  target.Inject(1, MakeTestFrame(kHostMac[0], kHostMac[1]));
  target.Run(30'000);
  target.TakeEgress();

  target.Inject(0, MakeTestFrame(kHostMac[1], kHostMac[0], 64));
  ASSERT_TRUE(target.RunUntilEgressCount(1, 100'000));
  const auto egress = target.TakeEgress();
  ASSERT_EQ(egress.size(), 1u);
  const Cycle core_cycles =
      egress[0].frame.core_egress_cycle() - egress[0].frame.core_ingress_cycle();
  // Paper Table 3: Emu switch module latency 8 cycles.
  EXPECT_GE(core_cycles, 6u);
  EXPECT_LE(core_cycles, 10u);
}

TEST(LearningSwitchFpga, LogicCamVariantStillSwitches) {
  LearningSwitch service(LearningSwitchConfig{CamKind::kLogic, 64, 32});
  FpgaTarget target(service);
  target.Inject(1, MakeTestFrame(kHostMac[0], kHostMac[1]));
  target.Run(30'000);
  target.TakeEgress();
  target.Inject(0, MakeTestFrame(kHostMac[1], kHostMac[0]));
  ASSERT_TRUE(target.RunUntilEgressCount(1, 100'000));
  EXPECT_EQ(target.egress()[0].port, 1);
}

TEST(LearningSwitchFpga, TableWrapsWhenFull) {
  LearningSwitch service(LearningSwitchConfig{CamKind::kIpBlock, 4, 32});
  FpgaTarget target(service);
  for (u64 i = 0; i < 6; ++i) {
    target.Inject(static_cast<u8>(i % 4),
                  MakeTestFrame(MacAddress::Broadcast(), MacAddress::FromU48(0x100 + i)));
    target.Run(5'000);
  }
  EXPECT_EQ(service.learned(), 6u);  // wrapped: oldest entries overwritten
  EXPECT_TRUE(service.table().Lookup(0x105).hit);
  EXPECT_FALSE(service.table().Lookup(0x100).hit);  // evicted by wrap
}

// --- Resource accounting ---------------------------------------------------------

TEST(LearningSwitchResources, NearPaperTable3) {
  LearningSwitch service;
  FpgaTarget target(service);
  const ResourceUsage core = target.pipeline().CoreResources();
  // Paper: Emu switch logic 3509 (85% CAM), memory 118.
  EXPECT_NEAR(static_cast<double>(core.luts), 3509.0, 350.0);
  const double cam_share =
      static_cast<double>(CamIpResources(256, 48, 8).luts) / static_cast<double>(core.luts);
  EXPECT_GT(cam_share, 0.75);
  EXPECT_LT(cam_share, 0.95);
}

TEST(LearningSwitchResources, LogicCamCostsMoreLuts) {
  LearningSwitch ip_switch(LearningSwitchConfig{CamKind::kIpBlock, 256, 32});
  LearningSwitch logic_switch(LearningSwitchConfig{CamKind::kLogic, 256, 32});
  FpgaTarget ip_target(ip_switch);
  FpgaTarget logic_target(logic_switch);
  EXPECT_GT(logic_target.pipeline().CoreResources().luts,
            ip_target.pipeline().CoreResources().luts);
}

// --- CPU target: same service source, software semantics --------------------------

TEST(LearningSwitchCpu, BroadcastsUnknownDestination) {
  LearningSwitch service;
  CpuTarget target(service);
  Packet frame = MakeTestFrame(kHostMac[1], kHostMac[0]);
  frame.set_src_port(0);
  const auto out = target.Deliver(std::move(frame));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst_port_mask(), 0b1110);  // flood mask, fanned out by the OS layer
}

TEST(LearningSwitchCpu, LearnsAcrossDeliveries) {
  LearningSwitch service;
  CpuTarget target(service);
  Packet teach = MakeTestFrame(kHostMac[0], kHostMac[1]);
  teach.set_src_port(1);
  target.Deliver(std::move(teach));

  Packet query = MakeTestFrame(kHostMac[1], kHostMac[0]);
  query.set_src_port(0);
  const auto out = target.Deliver(std::move(query));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dst_port_mask(), 0b0010);  // unicast to port 1
}

// --- Throughput sanity at line rate ------------------------------------------------

TEST(LearningSwitchFpga, SustainsBackToBack64BytePackets) {
  LearningSwitch service;
  FpgaTarget target(service);
  // Teach MACs first so everything unicasts.
  for (u8 port = 0; port < 4; ++port) {
    target.Inject(port, MakeTestFrame(MacAddress::Broadcast(), kHostMac[port]));
  }
  target.Run(50'000);
  target.TakeEgress();

  // 200 frames per port at line rate, all to learned unicast destinations.
  const usize frames_per_port = 200;
  for (usize i = 0; i < frames_per_port; ++i) {
    for (u8 port = 0; port < 4; ++port) {
      target.Inject(port, MakeTestFrame(kHostMac[(port + 1) % 4], kHostMac[port], 64));
    }
  }
  ASSERT_TRUE(target.RunUntilEgressCount(4 * frames_per_port, 2'000'000));
  EXPECT_EQ(target.pipeline().rx_drops(), 0u);  // line rate sustained, no loss
  EXPECT_EQ(target.pipeline().tx_drops(), 0u);
}

}  // namespace
}  // namespace emu
