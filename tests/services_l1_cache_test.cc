// The §5.4 scaling extension: the Emu Memcached as an L1 cache tier whose
// misses go to a host memcached behind the FPGA.
#include <gtest/gtest.h>

#include "src/core/targets.h"
#include "src/hostnet/host_services.h"
#include "src/net/udp.h"
#include "src/services/memcached_service.h"

namespace emu {
namespace {

const MacAddress kClientMac = MacAddress::FromU48(0x02'00'00'00'cc'10);
const Ipv4Address kClientIp(10, 0, 0, 9);
constexpr u8 kHostPort = 0;
constexpr u8 kClientPort = 2;

class L1CacheTest : public ::testing::Test {
 protected:
  L1CacheTest() {
    config_.l1_cache_mode = true;
    config_.host_port = kHostPort;
    service_ = std::make_unique<MemcachedService>(config_);
    target_ = std::make_unique<FpgaTarget>(*service_);
    host_ = std::make_unique<HostMemcached>(config_.mac, config_.ip, config_.protocol, 1024);
  }

  Packet McFrame(const McRequest& request) {
    McRequest copy = request;
    copy.protocol = config_.protocol;
    return MakeUdpPacket(
        {config_.mac, kClientMac, kClientIp, config_.ip, 31000, kMemcachedPort},
        BuildMcRequest(copy));
  }

  // Runs the host tier over everything egressing on the host port and
  // injects its replies back; returns frames that egressed toward clients.
  std::vector<EgressFrame> PumpOnce(Packet request) {
    target_->Inject(kClientPort, std::move(request));
    target_->Run(200'000);
    std::vector<EgressFrame> client_frames;
    for (auto& frame : target_->TakeEgress()) {
      if (frame.port == kHostPort) {
        auto reply = host_->HandleRequest(frame.frame);
        if (reply.has_value()) {
          target_->Inject(kHostPort, std::move(*reply));
        }
      } else {
        client_frames.push_back(std::move(frame));
      }
    }
    target_->Run(200'000);
    for (auto& frame : target_->TakeEgress()) {
      client_frames.push_back(std::move(frame));
    }
    return client_frames;
  }

  Expected<McResponse> ParseReply(const EgressFrame& frame) {
    Packet copy = frame.frame;
    Ipv4View ip(copy);
    UdpView udp(copy, ip.payload_offset());
    if (!udp.Valid()) {
      return MalformedPacket("bad reply");
    }
    return ParseMcResponse(udp.Payload(), config_.protocol);
  }

  MemcachedConfig config_;
  std::unique_ptr<MemcachedService> service_;
  std::unique_ptr<FpgaTarget> target_;
  std::unique_ptr<HostMemcached> host_;
};

TEST_F(L1CacheTest, MissForwardsOriginalRequestToHostPort) {
  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "absent";
  target_->Inject(kClientPort, McFrame(get));
  target_->Run(200'000);
  const auto egress = target_->TakeEgress();
  ASSERT_EQ(egress.size(), 1u);
  EXPECT_EQ(egress[0].port, kHostPort);
  // The forwarded frame is the original request, byte for byte.
  Packet copy = egress[0].frame;
  Ipv4View ip(copy);
  UdpView udp(copy, ip.payload_offset());
  auto request = ParseMcRequest(udp.Payload(), config_.protocol);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->op, McOpcode::kGet);
  EXPECT_EQ(request->key, "absent");
  EXPECT_EQ(service_->misses_forwarded(), 1u);
}

TEST_F(L1CacheTest, HostReplyReachesClientAndFillsCache) {
  // Seed the host tier only.
  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "warm";
  set.value = "fromhost";
  set.protocol = config_.protocol;
  Packet host_set = MakeUdpPacket(
      {config_.mac, kClientMac, kClientIp, config_.ip, 31000, kMemcachedPort},
      BuildMcRequest(set));
  ASSERT_TRUE(host_->HandleRequest(host_set).has_value());

  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "warm";

  // First GET: miss in the cache tier, served by the host through the FPGA.
  auto frames = PumpOnce(McFrame(get));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].port, kClientPort);  // routed back to the client
  auto response = ParseReply(frames[0]);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, McStatus::kNoError);
  EXPECT_EQ(response->value, "fromhost");
  EXPECT_EQ(service_->misses_forwarded(), 1u);
  EXPECT_EQ(service_->host_replies_forwarded(), 1u);
  EXPECT_EQ(service_->cache_fills(), 1u);

  // Second GET: now an L1 hit — answered locally, nothing sent to the host.
  frames = PumpOnce(McFrame(get));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].port, kClientPort);
  response = ParseReply(frames[0]);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->value, "fromhost");
  EXPECT_EQ(service_->misses_forwarded(), 1u);  // unchanged
  EXPECT_EQ(service_->get_hits(), 1u);
}

TEST_F(L1CacheTest, SetsAreServedByTheCacheTier) {
  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "local";
  set.value = "v1";
  const auto frames = PumpOnce(McFrame(set));
  ASSERT_EQ(frames.size(), 1u);
  auto response = ParseReply(frames[0]);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, McStatus::kNoError);
  EXPECT_EQ(service_->misses_forwarded(), 0u);

  // And the subsequent GET is a pure L1 hit.
  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "local";
  const auto hit_frames = PumpOnce(McFrame(get));
  ASSERT_EQ(hit_frames.size(), 1u);
  auto hit = ParseReply(hit_frames[0]);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->value, "v1");
  EXPECT_EQ(service_->misses_forwarded(), 0u);
}

TEST_F(L1CacheTest, HostMissStillAnsweredThroughTheCache) {
  // Neither tier knows the key: the host's miss reply ("END") must still
  // reach the client.
  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "nowhere";
  const auto frames = PumpOnce(McFrame(get));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].port, kClientPort);
  auto response = ParseReply(frames[0]);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, McStatus::kKeyNotFound);
  EXPECT_EQ(service_->cache_fills(), 0u);  // nothing to fill from a miss
}

TEST_F(L1CacheTest, MultipleClientsRoutedIndependently) {
  McRequest set;
  set.op = McOpcode::kSet;
  set.key = "k";
  set.value = "v";
  set.protocol = config_.protocol;
  Packet host_set = MakeUdpPacket(
      {config_.mac, kClientMac, kClientIp, config_.ip, 31000, kMemcachedPort},
      BuildMcRequest(set));
  ASSERT_TRUE(host_->HandleRequest(host_set).has_value());

  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "k";
  get.protocol = config_.protocol;

  // Two different clients on two different ports miss concurrently.
  const MacAddress other_mac = MacAddress::FromU48(0x02'00'00'00'cc'11);
  Packet from_a = McFrame(get);
  Packet from_b = MakeUdpPacket(
      {config_.mac, other_mac, Ipv4Address(10, 0, 0, 10), config_.ip, 31001, kMemcachedPort},
      BuildMcRequest(get));
  target_->Inject(kClientPort, std::move(from_a));
  target_->Inject(3, std::move(from_b));
  target_->Run(300'000);
  for (auto& frame : target_->TakeEgress()) {
    ASSERT_EQ(frame.port, kHostPort);
    auto reply = host_->HandleRequest(frame.frame);
    ASSERT_TRUE(reply.has_value());
    target_->Inject(kHostPort, std::move(*reply));
  }
  target_->Run(300'000);
  const auto frames = target_->TakeEgress();
  ASSERT_EQ(frames.size(), 2u);
  std::set<u8> ports;
  for (const auto& frame : frames) {
    ports.insert(frame.port);
  }
  EXPECT_EQ(ports, (std::set<u8>{kClientPort, 3}));
}

TEST_F(L1CacheTest, DisabledModeBehavesAsPlainServer) {
  MemcachedConfig config;  // l1_cache_mode off
  MemcachedService service(config);
  FpgaTarget target(service);
  McRequest get;
  get.op = McOpcode::kGet;
  get.key = "absent";
  get.protocol = config.protocol;
  Packet frame = MakeUdpPacket(
      {config.mac, kClientMac, kClientIp, config.ip, 31000, kMemcachedPort},
      BuildMcRequest(get));
  auto reply = target.SendAndCollect(kClientPort, std::move(frame));
  ASSERT_TRUE(reply.ok());
  Packet copy = *reply;
  Ipv4View ip(copy);
  UdpView udp(copy, ip.payload_offset());
  auto response = ParseMcResponse(udp.Payload(), config.protocol);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, McStatus::kKeyNotFound);  // local miss reply
  EXPECT_EQ(service.misses_forwarded(), 0u);
}

}  // namespace
}  // namespace emu
