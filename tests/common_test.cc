#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <vector>

#include "src/common/bit_util.h"
#include "src/common/hexdump.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/wide_word.h"

namespace emu {
namespace {

// --- WideUInt ---------------------------------------------------------------

TEST(WideWord, DefaultIsZero) {
  Word256 w;
  EXPECT_TRUE(w.IsZero());
  EXPECT_EQ(w.ToU64(), 0u);
}

TEST(WideWord, LowWordConstruction) {
  Word256 w(0xdeadbeefULL);
  EXPECT_EQ(w.ToU64(), 0xdeadbeefULL);
  EXPECT_FALSE(w.IsZero());
}

TEST(WideWord, AdditionCarriesAcrossLimbs) {
  Word128 a;
  a.SetLimb(0, ~u64{0});
  Word128 b(1);
  Word128 sum = a + b;
  EXPECT_EQ(sum.Limb(0), 0u);
  EXPECT_EQ(sum.Limb(1), 1u);
}

TEST(WideWord, SubtractionBorrowsAcrossLimbs) {
  Word128 a;
  a.SetLimb(1, 1);  // 2^64
  Word128 b(1);
  Word128 diff = a - b;
  EXPECT_EQ(diff.Limb(0), ~u64{0});
  EXPECT_EQ(diff.Limb(1), 0u);
}

TEST(WideWord, SubtractionWrapsLikeHardware) {
  Word128 zero;
  Word128 one(1);
  Word128 wrapped = zero - one;
  EXPECT_EQ(wrapped, Word128::Max());
}

TEST(WideWord, ShiftLeftMovesAcrossLimbBoundary) {
  Word128 w(1);
  Word128 shifted = w << 64;
  EXPECT_EQ(shifted.Limb(0), 0u);
  EXPECT_EQ(shifted.Limb(1), 1u);
}

TEST(WideWord, ShiftLeftNonMultipleOf64) {
  Word128 w(0x8000000000000000ULL);
  Word128 shifted = w << 1;
  EXPECT_EQ(shifted.Limb(0), 0u);
  EXPECT_EQ(shifted.Limb(1), 1u);
}

TEST(WideWord, ShiftRightMirrorsShiftLeft) {
  Word256 w(0xabcdef12345ULL);
  EXPECT_EQ((w << 100) >> 100, w);
}

TEST(WideWord, ShiftByWidthOrMoreIsZero) {
  Word128 w = Word128::Max();
  EXPECT_TRUE((w << 128).IsZero());
  EXPECT_TRUE((w >> 128).IsZero());
  EXPECT_TRUE((w << 200).IsZero());
}

TEST(WideWord, ShiftByZeroIsIdentity) {
  Word128 w(0x1234);
  EXPECT_EQ(w << 0, w);
  EXPECT_EQ(w >> 0, w);
}

TEST(WideWord, BitwiseOperators) {
  Word128 a(0xf0f0);
  Word128 b(0x0ff0);
  EXPECT_EQ((a & b).ToU64(), 0x00f0u);
  EXPECT_EQ((a | b).ToU64(), 0xfff0u);
  EXPECT_EQ((a ^ b).ToU64(), 0xff00u);
}

TEST(WideWord, NotIsMaxOfZero) {
  Word256 zero;
  EXPECT_EQ(~zero, Word256::Max());
}

TEST(WideWord, ComparisonOrdersByHighLimbFirst) {
  Word128 small(0xffffffffffffffffULL);
  Word128 big;
  big.SetLimb(1, 1);
  EXPECT_LT(small, big);
  EXPECT_GT(big, small);
  EXPECT_EQ(small, small);
}

TEST(WideWord, ByteAccessors) {
  Word256 w;
  w.SetByte(0, 0xaa);
  w.SetByte(8, 0xbb);
  w.SetByte(31, 0xcc);
  EXPECT_EQ(w.Byte(0), 0xaa);
  EXPECT_EQ(w.Byte(8), 0xbb);
  EXPECT_EQ(w.Byte(31), 0xcc);
  EXPECT_EQ(w.Limb(0) & 0xff, 0xaau);
  EXPECT_EQ(w.Limb(1) & 0xff, 0xbbu);
}

TEST(WideWord, ExtractDeposit) {
  Word256 w;
  w.Deposit(60, 16, 0xbeef);  // straddles the limb 0/1 boundary
  EXPECT_EQ(w.Extract(60, 16), 0xbeefu);
  EXPECT_EQ(w.Extract(0, 60), 0u);
}

TEST(WideWord, BitSetAndGet) {
  Word512 w;
  w.SetBit(511, true);
  EXPECT_TRUE(w.Bit(511));
  EXPECT_EQ(w.CountLeadingZeros(), 0u);
  w.SetBit(511, false);
  EXPECT_TRUE(w.IsZero());
  EXPECT_EQ(w.CountLeadingZeros(), 512u);
}

TEST(WideWord, PopCount) {
  Word128 w;
  w.SetLimb(0, 0xff);
  w.SetLimb(1, 0xf);
  EXPECT_EQ(w.PopCount(), 12u);
}

TEST(WideWord, ToHex) {
  Word128 w(0xabcULL);
  EXPECT_EQ(w.ToHex(), "0x00000000000000000000000000000abc");
}

// Property sweep: (a + b) - b == a for assorted word widths and patterns.
class WideWordRoundTrip : public ::testing::TestWithParam<u64> {};

TEST_P(WideWordRoundTrip, AddThenSubtractIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Word256 a;
    Word256 b;
    for (usize limb = 0; limb < Word256::kLimbs; ++limb) {
      a.SetLimb(limb, rng.NextU64());
      b.SetLimb(limb, rng.NextU64());
    }
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a ^ b) ^ b, a);
    const usize shift = rng.NextBelow(255) + 1;
    EXPECT_EQ((a >> shift) << shift, (a >> shift) << shift);  // no crash, deterministic
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideWordRoundTrip, ::testing::Values(1u, 42u, 0xfeedu));

// --- BitUtil ----------------------------------------------------------------

TEST(BitUtil, RoundTrip16) {
  std::array<u8, 8> buf{};
  BitUtil::Set16(buf, 2, 0xbeef);
  EXPECT_EQ(BitUtil::Get16(buf, 2), 0xbeef);
  EXPECT_EQ(buf[2], 0xbe);  // network byte order
  EXPECT_EQ(buf[3], 0xef);
}

TEST(BitUtil, RoundTrip32) {
  std::array<u8, 8> buf{};
  BitUtil::Set32(buf, 0, 0xc0a80101);  // 192.168.1.1
  EXPECT_EQ(BitUtil::Get32(buf, 0), 0xc0a80101u);
  EXPECT_EQ(buf[0], 0xc0);
}

TEST(BitUtil, RoundTrip48) {
  std::array<u8, 8> buf{};
  BitUtil::Set48(buf, 1, 0x0123456789abULL);
  EXPECT_EQ(BitUtil::Get48(buf, 1), 0x0123456789abULL);
}

TEST(BitUtil, RoundTrip64) {
  std::array<u8, 16> buf{};
  BitUtil::Set64(buf, 5, 0x0123456789abcdefULL);
  EXPECT_EQ(BitUtil::Get64(buf, 5), 0x0123456789abcdefULL);
}

TEST(BitUtil, GetBitsReadsMsbFirst) {
  std::array<u8, 2> buf = {0x45, 0x00};  // IPv4 version=4, IHL=5
  EXPECT_EQ(BitUtil::GetBits(buf, 0, 0, 4), 4u);
  EXPECT_EQ(BitUtil::GetBits(buf, 0, 4, 4), 5u);
}

TEST(BitUtil, SetBitsWritesMsbFirst) {
  std::array<u8, 2> buf{};
  BitUtil::SetBits(buf, 0, 0, 4, 4);
  BitUtil::SetBits(buf, 0, 4, 4, 5);
  EXPECT_EQ(buf[0], 0x45);
}

TEST(BitUtil, SetBitsAcrossByteBoundary) {
  std::array<u8, 3> buf{};
  BitUtil::SetBits(buf, 0, 4, 12, 0xabc);
  EXPECT_EQ(BitUtil::GetBits(buf, 0, 4, 12), 0xabcu);
  EXPECT_EQ(buf[0], 0x0a);
  EXPECT_EQ(buf[1], 0xbc);
}

TEST(BitUtil, SetBitsClearsExistingBits) {
  std::array<u8, 1> buf = {0xff};
  BitUtil::SetBits(buf, 0, 2, 4, 0);
  EXPECT_EQ(buf[0], 0xc3);
}

// --- Status / Expected ------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = MalformedPacket("short header");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kMalformedPacket);
  EXPECT_EQ(s.ToString(), "MALFORMED_PACKET: short header");
}

TEST(Expected, HoldsValue) {
  Expected<int> e = 42;
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*e, 42);
  EXPECT_EQ(e.value_or(7), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e = NotFound("no entry");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(e.value_or(7), 7);
}

// --- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const u64 v = rng.NextInRange(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanRoughlyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Rng, LognormalIsPositiveAndSkewed) {
  Rng rng(13);
  double sum = 0;
  double max = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextLognormal(0.0, 1.0);
    EXPECT_GT(v, 0.0);
    sum += v;
    max = std::max(max, v);
  }
  const double mean = sum / n;
  EXPECT_GT(max, mean * 5);  // right tail present
}

// --- Hexdump ----------------------------------------------------------------

TEST(Hexdump, FormatsOffsetHexAscii) {
  std::vector<u8> data = {'H', 'i', 0x00, 0xff};
  const std::string dump = Hexdump(data);
  EXPECT_NE(dump.find("000000"), std::string::npos);
  EXPECT_NE(dump.find("48 69 00 ff"), std::string::npos);
  EXPECT_NE(dump.find("|Hi..|"), std::string::npos);
}

TEST(Hexdump, HexJoinUsesSeparator) {
  std::vector<u8> data = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(HexJoin(data), "de:ad:be:ef");
  EXPECT_EQ(HexJoin(data, '-'), "de-ad-be-ef");
}

// --- rng::Shuffle / rng::PickK (seed-stable sequence helpers) ----------------

TEST(RngSequence, ShuffleIsAPermutationAndSeedStable) {
  std::vector<int> items(32);
  std::iota(items.begin(), items.end(), 0);
  std::vector<int> a = items;
  std::vector<int> b = items;
  std::vector<int> c = items;
  Rng rng_a(7);
  Rng rng_b(7);
  Rng rng_c(8);
  rng::Shuffle(rng_a, a);
  rng::Shuffle(rng_b, b);
  rng::Shuffle(rng_c, c);
  EXPECT_EQ(a, b);  // same seed, same permutation
  EXPECT_NE(a, c);  // different seed moves it
  EXPECT_NE(a, items);  // 32! leaves identity vanishingly unlikely
  std::vector<int> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);  // still a permutation
}

TEST(RngSequence, ShuffleDrawCountIsFixed) {
  // The documented contract: Shuffle consumes exactly size()-1 draws, so a
  // protocol's stream position is a pure function of the calls made. Two
  // streams that diverge only in what happens AFTER the shuffle must agree
  // on the next draw.
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  Rng rng_a(42);
  Rng rng_b(42);
  std::vector<int> copy = items;
  rng::Shuffle(rng_a, items);
  for (usize i = 0; i + 1 < copy.size(); ++i) {
    rng_b.NextBelow(copy.size() - i);  // mirror the 6 Fisher-Yates draws
  }
  EXPECT_EQ(rng_a.NextU64(), rng_b.NextU64());
}

TEST(RngSequence, PickKReturnsDistinctElementsFromSource) {
  std::vector<u16> items = {10, 20, 30, 40, 50, 60, 70, 80};
  Rng rng(3);
  const std::vector<u16> picked = rng::PickK(rng, items, 3);
  ASSERT_EQ(picked.size(), 3u);
  std::set<u16> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 3u);
  for (u16 value : picked) {
    EXPECT_NE(std::find(items.begin(), items.end(), value), items.end());
  }
}

TEST(RngSequence, PickKClampsToSourceSize) {
  std::vector<u16> items = {1, 2, 3};
  Rng rng(5);
  const std::vector<u16> picked = rng::PickK(rng, items, 10);
  ASSERT_EQ(picked.size(), 3u);
  std::set<u16> unique(picked.begin(), picked.end());
  EXPECT_EQ(unique.size(), 3u);  // clamped pick is the whole set, shuffled
}

TEST(RngSequence, PickKIsSeedStableWithFixedDrawCount) {
  std::vector<u16> items = {1, 2, 3, 4, 5, 6};
  Rng rng_a(11);
  Rng rng_b(11);
  EXPECT_EQ(rng::PickK(rng_a, items, 2), rng::PickK(rng_b, items, 2));
  // min(k, size) = 2 draws each; both streams sit at the same position.
  EXPECT_EQ(rng_a.NextU64(), rng_b.NextU64());
}

TEST(RngSequence, PickKCoversAllSubsetsOverManyDraws) {
  // Sanity (not a distribution test): over many trials every element of a
  // 5-element set shows up in some 2-subset, i.e. the pick is not stuck on a
  // prefix.
  std::vector<u16> items = {0, 1, 2, 3, 4};
  Rng rng(17);
  std::set<u16> seen;
  for (int trial = 0; trial < 200; ++trial) {
    for (u16 value : rng::PickK(rng, items, 2)) {
      seen.insert(value);
    }
  }
  EXPECT_EQ(seen.size(), items.size());
}

}  // namespace
}  // namespace emu
