// emu-scope unit tests: the log2 histogram, the extended MetricsRegistry
// (gauges, histograms, TryGet, Prometheus exposition + lint), the trace
// session (ring bounds, JSON schema validation, packet-flight pairing), the
// TraceDump capture cap, and the MetricsSampler.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/histogram.h"
#include "src/core/metrics.h"
#include "src/net/ethernet.h"
#include "src/net/udp.h"
#include "src/obs/sampler.h"
#include "src/obs/trace.h"
#include "src/services/learning_switch.h"
#include "src/sim/event_scheduler.h"
#include "src/sim/latency_probe.h"
#include "src/sim/topology.h"
#include "src/sim/trace_dump.h"

namespace emu {
namespace {

// --- Histogram -----------------------------------------------------------------------

TEST(Histogram, BucketBoundaries) {
  // Bucket 0 holds exactly 0; bucket k holds [2^(k-1), 2^k - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(~0ull), Histogram::kBucketCount - 1);

  for (usize k = 1; k + 1 < Histogram::kBucketCount; ++k) {
    const u64 lo = Histogram::BucketLowerBound(k);
    const u64 hi = Histogram::BucketUpperBound(k);
    EXPECT_EQ(lo, u64{1} << (k - 1)) << "bucket " << k;
    EXPECT_EQ(hi, (u64{1} << k) - 1) << "bucket " << k;
    EXPECT_EQ(Histogram::BucketIndex(lo), k);
    EXPECT_EQ(Histogram::BucketIndex(hi), k);
  }
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBucketCount - 1), ~0ull);
}

TEST(Histogram, ObserveAccumulatesCountAndSum) {
  Histogram h;
  h.Observe(0);
  h.Observe(5);
  h.Observe(5);
  h.Observe(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(5)), 2u);
  EXPECT_EQ(h.bucket(Histogram::BucketIndex(1000)), 1u);
}

TEST(Histogram, MergeIsElementwise) {
  Histogram a;
  Histogram b;
  a.Observe(3);
  a.Observe(100);
  b.Observe(3);
  b.Observe(70000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 3u + 100 + 3 + 70000);
  EXPECT_EQ(a.bucket(Histogram::BucketIndex(3)), 2u);
  EXPECT_EQ(a.bucket(Histogram::BucketIndex(100)), 1u);
  EXPECT_EQ(a.bucket(Histogram::BucketIndex(70000)), 1u);
}

// The estimator's contract: within one bucket width (a factor-of-two band)
// of the exact nearest-rank percentile LatencyStats computes.
TEST(Histogram, PercentileWithinOneBucketOfExact) {
  Histogram h;
  LatencyStats exact;
  u64 x = 0x2545f4914f6cdd1dull;  // deterministic xorshift samples
  for (usize i = 0; i < 5000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const u64 sample = 1 + (x % 1'000'000);
    h.Observe(sample);
    exact.Add(static_cast<Picoseconds>(sample));
  }
  for (double p : {50.0, 90.0, 99.0}) {
    const u64 estimate = h.PercentileEstimate(p);
    const u64 exact_ps = static_cast<u64>(exact.PercentileUs(p) * kPicosPerMicro);
    const usize exact_bucket = Histogram::BucketIndex(exact_ps);
    EXPECT_GE(estimate, Histogram::BucketLowerBound(exact_bucket)) << "p" << p;
    EXPECT_LE(estimate, Histogram::BucketUpperBound(exact_bucket)) << "p" << p;
  }
}

TEST(Histogram, PercentileEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.PercentileEstimate(50.0), 0u);  // empty
  h.Observe(42);
  EXPECT_EQ(Histogram::BucketIndex(h.PercentileEstimate(0.0)),
            Histogram::BucketIndex(42));
  EXPECT_EQ(Histogram::BucketIndex(h.PercentileEstimate(100.0)),
            Histogram::BucketIndex(42));
}

// --- MetricsRegistry extensions ------------------------------------------------------

TEST(MetricsRegistry, TryGetDistinguishesAbsentFromZero) {
  MetricsRegistry registry;
  u64 zero = 0;
  registry.Register("present.zero", &zero);
  EXPECT_EQ(registry.TryGet("present.zero"), std::optional<u64>(0));
  EXPECT_EQ(registry.TryGet("absent"), std::nullopt);
  EXPECT_EQ(registry.Get("absent"), 0u);  // legacy behavior preserved
  EXPECT_FALSE(registry.Has("absent"));
}

TEST(MetricsRegistry, GaugeKindIsTracked) {
  MetricsRegistry registry;
  u64 depth = 7;
  registry.RegisterGauge("queue.depth", &depth);
  EXPECT_EQ(registry.Kind("queue.depth"), std::optional<MetricKind>(MetricKind::kGauge));
  EXPECT_EQ(registry.Get("queue.depth"), 7u);
  depth = 3;  // gauges go down
  EXPECT_EQ(registry.Get("queue.depth"), 3u);
}

TEST(MetricsRegistry, HistogramExposesDerivedScalarViews) {
  MetricsRegistry registry;
  Histogram h;
  h.Observe(10);
  h.Observe(20);
  h.Observe(30);
  registry.RegisterHistogram("svc.latency", &h);

  EXPECT_EQ(registry.GetHistogram("svc.latency"), &h);
  EXPECT_EQ(registry.TryGet("svc.latency.count"), std::optional<u64>(3));
  EXPECT_EQ(registry.TryGet("svc.latency.sum"), std::optional<u64>(60));
  EXPECT_TRUE(registry.TryGet("svc.latency.p50").has_value());
  EXPECT_TRUE(registry.TryGet("svc.latency.p99").has_value());

  // Snapshot expands the views, so scalar consumers (the CASP bridge) see
  // distribution stats with no histogram-specific code.
  std::set<std::string> names;
  for (const auto& [name, value] : registry.Snapshot()) {
    names.insert(name);
  }
  EXPECT_TRUE(names.count("svc.latency.count"));
  EXPECT_TRUE(names.count("svc.latency.sum"));
  EXPECT_TRUE(names.count("svc.latency.p50"));
  EXPECT_TRUE(names.count("svc.latency.p99"));
}

TEST(MetricsRegistry, PrometheusTextPassesLint) {
  MetricsRegistry registry;
  u64 counter = 12;
  u64 gauge = 5;
  Histogram h;
  h.Observe(3);
  h.Observe(900);
  h.Observe(900000);
  registry.Register("nat.translated_out", &counter);
  registry.RegisterGauge("kernel.live_processes", &gauge);
  registry.RegisterHistogram("rtt_ps", &h);

  const std::string text = registry.PrometheusText();
  std::string error;
  EXPECT_TRUE(PrometheusLint(text, &error)) << error << "\n" << text;
  EXPECT_NE(text.find("# TYPE nat_translated_out counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE kernel_live_processes gauge"), std::string::npos);
  EXPECT_NE(text.find("rtt_ps_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("rtt_ps_count 3"), std::string::npos);
}

TEST(PrometheusLintRejects, MalformedExpositions) {
  std::string error;
  // Invalid metric name (leading digit).
  EXPECT_FALSE(PrometheusLint("# TYPE 9bad counter\n9bad 1\n", &error));
  // Non-numeric value.
  EXPECT_FALSE(PrometheusLint("# TYPE m counter\nm notanumber\n", &error));
  // Duplicate TYPE.
  EXPECT_FALSE(PrometheusLint("# TYPE m counter\n# TYPE m counter\nm 1\n", &error));
  // TYPE after samples.
  EXPECT_FALSE(PrometheusLint("m 1\n# TYPE m counter\n", &error));
  // Histogram with non-increasing le bounds.
  EXPECT_FALSE(PrometheusLint(
      "# TYPE h histogram\nh_bucket{le=\"4\"} 1\nh_bucket{le=\"2\"} 2\n"
      "h_bucket{le=\"+Inf\"} 2\nh_sum 5\nh_count 2\n",
      &error));
  // Histogram with non-cumulative buckets.
  EXPECT_FALSE(PrometheusLint(
      "# TYPE h histogram\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"4\"} 1\n"
      "h_bucket{le=\"+Inf\"} 3\nh_sum 5\nh_count 3\n",
      &error));
  // Histogram missing the +Inf bucket.
  EXPECT_FALSE(PrometheusLint(
      "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_sum 2\nh_count 1\n", &error));
  // +Inf bucket disagreeing with _count.
  EXPECT_FALSE(PrometheusLint(
      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 2\nh_count 3\n", &error));
  // Histogram missing _sum.
  EXPECT_FALSE(PrometheusLint(
      "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n", &error));
}

// The lint is a full sweep, not a first-error bail: one exposition with
// several independent violations yields one finding per violation, each
// carrying the check id, subject, and line number of its defect.
TEST(PrometheusLintFindings, CollectsEveryViolation) {
  const std::string text =
      "# TYPE 9bad counter\n"       // line 1: METRICSFMT (name in TYPE)
      "m 1\n"                       // line 2: clean sample, arms the DUP check
      "m2 notanumber\n"             // line 3: METRICSFMT (value)
      "# TYPE m counter\n"          // line 4: METRICSDUP (TYPE after samples)
      "# TYPE h histogram\n"
      "h_bucket{le=\"+Inf\"} 2\n"
      "h_sum 5\n"
      "h_count 3\n";                // end: METRICSHIST (_count != +Inf)
  const std::vector<Finding> findings = PrometheusLintFindings(text);
  ASSERT_EQ(findings.size(), 4u);

  EXPECT_EQ(findings[0].check, "METRICSFMT");
  EXPECT_EQ(findings[0].subject, "9bad");
  EXPECT_NE(findings[0].message.find("line 1"), std::string::npos);

  EXPECT_EQ(findings[1].check, "METRICSFMT");
  EXPECT_EQ(findings[1].subject, "m2");
  EXPECT_NE(findings[1].message.find("line 3"), std::string::npos);
  EXPECT_NE(findings[1].message.find("notanumber"), std::string::npos);

  EXPECT_EQ(findings[2].check, "METRICSDUP");
  EXPECT_EQ(findings[2].subject, "m");
  EXPECT_NE(findings[2].message.find("line 4"), std::string::npos);

  EXPECT_EQ(findings[3].check, "METRICSHIST");
  EXPECT_EQ(findings[3].subject, "h");
  EXPECT_NE(findings[3].message.find("_count != +Inf"), std::string::npos);

  for (const Finding& f : findings) {
    EXPECT_EQ(f.severity, Severity::kError);
    EXPECT_EQ(f.design, "metrics");
  }

  // The boolean wrapper reports the first finding's message verbatim.
  std::string error;
  EXPECT_FALSE(PrometheusLint(text, &error));
  EXPECT_EQ(error, findings.front().message);

  // Findings route through the shared JSON formatter like any other check.
  std::ostringstream os;
  FormatFindingsJson(os, findings);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"check\": \"METRICSDUP\""), std::string::npos);
  EXPECT_NE(json.find("\"design\": \"metrics\""), std::string::npos);

  EXPECT_TRUE(PrometheusLintFindings("# TYPE ok counter\nok 1\n").empty());
}

TEST(LatencyStats, FeedsHistogramAndRegistersMetrics) {
  LatencyStats stats;
  stats.Add(100);
  stats.Add(200);
  stats.AddLoss(3);
  EXPECT_EQ(stats.histogram().count(), 2u);
  EXPECT_EQ(stats.histogram().sum(), 300u);

  MetricsRegistry registry;
  stats.RegisterMetrics(registry, "rtt");
  EXPECT_EQ(registry.TryGet("rtt_ps.count"), std::optional<u64>(2));
  EXPECT_EQ(registry.TryGet("rtt.lost"), std::optional<u64>(3));
}

// --- TraceSession --------------------------------------------------------------------

TEST(TraceSession, RingIsBoundedAndCountsDrops) {
  obs::TraceSession::Config config;
  config.shard_capacity = 4;
  obs::TraceSession session(config);
  obs::TraceBuffer* buffer = session.shard(0);
  ASSERT_NE(buffer, nullptr);
  for (int i = 0; i < 10; ++i) {
    obs::EmitInstant(buffer, "tick", i * 100);
  }
  EXPECT_EQ(buffer->size(), 4u);
  EXPECT_EQ(buffer->total_pushed(), 10u);
  EXPECT_EQ(buffer->dropped(), 6u);
  EXPECT_EQ(session.dropped(), 6u);
  // The ring keeps the most recent window, oldest-first.
  const std::vector<obs::TraceEvent> events = buffer->Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().ts, 600);
  EXPECT_EQ(events.back().ts, 900);
}

TEST(TraceSession, ExportValidatesAndMergesDeterministically) {
  obs::TraceSession session;
  session.EnsureShards(2);
  // Same timestamp on both shards: shard index breaks the tie.
  obs::EmitInstant(session.shard(1), "b_event", 500);
  obs::EmitInstant(session.shard(0), "a_event", 500);
  obs::EmitComplete(session.shard(0), "span", 100, 250);
  obs::EmitAsyncBegin(session.shard(1), "pkt.flight", 50, 0x1234);
  obs::EmitAsyncEnd(session.shard(1), "pkt.flight", 800, 0x1234);

  const auto merged = session.MergedEvents();
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_EQ(merged[0].name, "pkt.flight");
  EXPECT_EQ(merged[1].name, "span");
  EXPECT_EQ(merged[2].name, "a_event");  // ts tie: shard 0 before shard 1
  EXPECT_EQ(merged[3].name, "b_event");

  const std::string json = session.ExportChromeJson();
  std::string error;
  EXPECT_TRUE(obs::ValidateChromeTraceJson(json, &error)) << error;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"0x1234\""), std::string::npos);
}

TEST(ValidateChromeTraceJson, RejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(obs::ValidateChromeTraceJson("", &error));
  EXPECT_FALSE(obs::ValidateChromeTraceJson("{", &error));
  EXPECT_FALSE(obs::ValidateChromeTraceJson("{}", &error));  // no traceEvents
  EXPECT_FALSE(obs::ValidateChromeTraceJson("{\"traceEvents\":[{}]}", &error));  // no ph
  EXPECT_FALSE(obs::ValidateChromeTraceJson(
      "{\"traceEvents\":[{\"ph\":\"i\",\"ts\":1}]}", &error));  // no name
  EXPECT_FALSE(obs::ValidateChromeTraceJson(
      "{\"traceEvents\":[{\"ph\":\"i\",\"name\":\"x\"}]}", &error));  // no ts
  EXPECT_FALSE(obs::ValidateChromeTraceJson(
      "{\"traceEvents\":[]} trailing", &error));
  EXPECT_TRUE(obs::ValidateChromeTraceJson(
      "{\"traceEvents\":[{\"ph\":\"M\",\"pid\":0}]}", &error))
      << error;  // metadata needs no name/ts
}

#ifdef EMU_TRACE
// End-to-end flight pairing: every frame a host sends opens exactly one
// "pkt.flight" async begin, and every arrival closes one.
TEST(TraceSession, PacketFlightsPairAcrossATopologyRun) {
  obs::TraceSession session;
  session.Install();

  LearningSwitch service;
  std::vector<HostSpec> specs = {
      {"h0", MacAddress::FromU48(0x020000000001), Ipv4Address(10, 0, 0, 1)},
      {"h1", MacAddress::FromU48(0x020000000002), Ipv4Address(10, 0, 0, 2)}};
  StarTopology topo(service, specs);
  for (usize i = 0; i < specs.size(); ++i) {
    topo.host(i).SetApp([](SimHost&, Packet) {});
  }
  topo.scheduler().At(10 * kPicosPerMicro, [&topo] {
    topo.host(0).Send(MakeEthernetFrame(MacAddress::Broadcast(), topo.host(0).mac(),
                                        EtherType::kIpv4, std::vector<u8>{1}));
  });
  topo.scheduler().At(50 * kPicosPerMicro, [&topo, &specs] {
    topo.host(1).Send(MakeUdpPacket({specs[0].mac, specs[1].mac,
                                     Ipv4Address(10, 0, 0, 2), Ipv4Address(10, 0, 0, 1),
                                     5000, 6000},
                                    std::vector<u8>{2}));
  });
  topo.Run();
  obs::TraceSession::Detach();

  usize begins = 0;
  usize ends = 0;
  std::set<u64> begin_ids;
  usize link_spans = 0;
  usize service_spans = 0;
  for (const obs::MergedEvent& e : session.MergedEvents()) {
    if (e.name == "pkt.flight") {
      if (e.phase == obs::Phase::kAsyncBegin) {
        ++begins;
        EXPECT_TRUE(begin_ids.insert(e.id).second) << "duplicate flight id";
      } else if (e.phase == obs::Phase::kAsyncEnd) {
        ++ends;
        EXPECT_TRUE(begin_ids.count(e.id)) << "end without begin";
      }
    } else if (e.name == "link.transit") {
      ++link_spans;
    } else if (e.name == "node.service") {
      ++service_spans;
    }
  }
  EXPECT_EQ(begins, 2u);   // two sends, one flight id each
  EXPECT_EQ(ends, 2u);     // broadcast reaches h1, unicast reaches h0
  EXPECT_GE(link_spans, 4u);  // b+e per traversed link direction
  EXPECT_EQ(service_spans, 2u);
}
#endif  // EMU_TRACE

// --- TraceDump capture cap -----------------------------------------------------------

TEST(TraceDump, CaptureIsCappedAndReportsDrops) {
  TraceDump dump;
  dump.set_capacity(2);
  Packet frame = MakeEthernetFrame(MacAddress::Broadcast(),
                                   MacAddress::FromU48(0x020000000001),
                                   EtherType::kIpv4, std::vector<u8>{1});
  for (int i = 0; i < 5; ++i) {
    dump.Capture(i * kPicosPerMicro, "tap", frame);
  }
  EXPECT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump.dropped(), 3u);
  const std::string summary = dump.Summary();
  EXPECT_NE(summary.find("3 packets dropped at capacity 2"), std::string::npos);
  dump.Clear();
  EXPECT_EQ(dump.dropped(), 0u);
  EXPECT_EQ(dump.Summary().find("dropped"), std::string::npos);
}

// --- MetricsSampler ------------------------------------------------------------------

TEST(MetricsSampler, BoundedPeriodicSampling) {
  MetricsRegistry registry;
  u64 counter = 0;
  registry.Register("work.done", &counter);

  EventScheduler scheduler;
  MetricsSampler sampler(registry, 10 * kPicosPerMicro);
  sampler.SchedulePeriodic(scheduler, 50 * kPicosPerMicro);
  // Counter advances between samples.
  for (int i = 1; i <= 5; ++i) {
    scheduler.At((i * 10 - 1) * kPicosPerMicro, [&counter] { counter += 2; });
  }
  scheduler.Run();

  ASSERT_EQ(sampler.rows().size(), 5u);
  EXPECT_EQ(sampler.rows()[0].ts, 10 * kPicosPerMicro);
  EXPECT_EQ(sampler.rows()[0].values[0].second, 2u);
  EXPECT_EQ(sampler.rows()[4].values[0].second, 10u);
  const std::string csv = sampler.Csv();
  EXPECT_NE(csv.find("work.done"), std::string::npos);
}

}  // namespace
}  // namespace emu
