// emu-gossip: SWIM membership over a HubTopology under node-level chaos.
//
// Each test builds a small cluster (one SwimPeer per SimHost around a
// HubNode), optionally applies a topology-scoped fault plan through a
// ChaosDirector, runs the ParallelRunner to quiescence, and asserts on the
// peers' membership-event logs: detection of real crashes within the
// SwimDetectionBound, refutation of partition-induced false positives,
// rejoin after restart, and bit-exact digests across thread counts and
// replays.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/metrics.h"
#include "src/fault/fault_plan.h"
#include "src/fault/fault_registry.h"
#include "src/services/swim_service.h"
#include "src/sim/chaos.h"
#include "src/sim/topology.h"

namespace emu {
namespace {

constexpr u64 kFnvOffset = 14695981039346656037ull;
constexpr u64 kFnvPrime = 1099511628211ull;
constexpr Picoseconds kBootDelay = 5 * kPicosPerMilli;

std::vector<SwimMember> ClusterMembers(usize hosts) {
  std::vector<SwimMember> members;
  for (usize i = 0; i < hosts; ++i) {
    members.push_back(SwimMember{"h" + std::to_string(i),
                                 MacAddress::FromU48(0x02'00'00'00'b0'00ull + i),
                                 Ipv4Address(10, 0, 0, static_cast<u8>(1 + i))});
  }
  return members;
}

SwimConfig TestSwimConfig(u64 run_ms) {
  SwimConfig config;
  config.run_until = static_cast<Picoseconds>(run_ms) * kPicosPerMilli;
  return config;
}

// A cluster under test: topology, chaos wiring, and one peer per host.
struct Cluster {
  std::unique_ptr<HubTopology> topo;
  std::unique_ptr<FaultRegistry> registry;
  std::unique_ptr<ChaosDirector> director;
  std::vector<std::unique_ptr<SwimPeer>> peers;
  Status apply_status;
  SwimConfig config;
  u64 events_executed = 0;

  u64 Run(usize threads) {
    ParallelRunOptions opts;
    opts.threads = threads;
    events_executed = topo->Run(opts);
    return events_executed;
  }

  u64 SwimDigest() const {
    u64 combined = kFnvOffset;
    for (const auto& peer : peers) {
      combined = (combined ^ peer->EventsDigest()) * kFnvPrime;
    }
    return combined;
  }
};

Cluster MakeCluster(usize hosts, u64 seed, u64 run_ms, const std::string& plan_text) {
  Cluster c;
  c.config = TestSwimConfig(run_ms);
  const std::vector<SwimMember> members = ClusterMembers(hosts);
  std::vector<HostSpec> specs;
  for (const SwimMember& m : members) {
    specs.push_back(HostSpec{m.name, m.mac, m.ip});
  }
  StarTopologyConfig net;
  net.link_delay = 50 * kPicosPerMicro;  // SWIM runs at ms scale; fat lookahead
  c.topo = std::make_unique<HubTopology>(specs, net);
  c.registry = std::make_unique<FaultRegistry>(seed);
  c.director = std::make_unique<ChaosDirector>(*c.topo, c.registry.get());
  c.director->set_boot_delay(kBootDelay);
  if (!plan_text.empty()) {
    const Expected<FaultPlan> plan = ParseFaultPlan(plan_text);
    c.apply_status = plan.ok() ? c.director->Apply(*plan) : plan.status();
  }
  for (usize i = 0; i < hosts; ++i) {
    c.peers.push_back(std::make_unique<SwimPeer>(
        c.topo->host(i), static_cast<u16>(i), members, c.config,
        seed ^ (0x9E37'79B9'7F4A'7C15ull * (i + 1))));
    c.peers.back()->Start();
  }
  return c;
}

// --- Steady state ------------------------------------------------------------

TEST(Swim, SteadyStateKeepsEveryoneAlive) {
  Cluster c = MakeCluster(4, 11, 30, "");
  c.Run(1);
  for (const auto& peer : c.peers) {
    EXPECT_GT(peer->acks_received(), 0u) << "peer " << peer->id();
    EXPECT_EQ(peer->suspects_declared(), 0u) << "peer " << peer->id();
    EXPECT_EQ(peer->deads_declared(), 0u) << "peer " << peer->id();
    EXPECT_EQ(peer->malformed(), 0u) << "peer " << peer->id();
    for (usize m = 0; m < c.peers.size(); ++m) {
      EXPECT_EQ(peer->StateOf(static_cast<u16>(m)), SwimState::kAlive)
          << "peer " << peer->id() << " about h" << m;
    }
  }
  // run_until gates new probe rounds, so the run reaches quiescence on its
  // own instead of exhausting the event budget.
  EXPECT_LT(c.events_executed, 1'000'000u);
}

// --- Crash detection ---------------------------------------------------------

TEST(Swim, CrashDetectedByEveryPeerWithinBound) {
  constexpr usize kHosts = 5;
  constexpr Picoseconds kCrashAt = 5 * kPicosPerMilli;
  Cluster c = MakeCluster(kHosts, 21, 60, "crash host=h1 at=5ms");
  ASSERT_TRUE(c.apply_status.ok()) << c.apply_status.ToString();
  c.Run(1);
  const Picoseconds bound = SwimDetectionBound(c.config, kHosts);
  for (const auto& peer : c.peers) {
    if (peer->id() == 1) {
      continue;
    }
    EXPECT_EQ(peer->StateOf(1), SwimState::kDead) << "peer " << peer->id();
    Picoseconds declared_at = 0;
    for (const SwimEvent& event : peer->events()) {
      if (event.subject == 1 && event.state == SwimState::kDead) {
        declared_at = event.at;
        break;
      }
    }
    ASSERT_GT(declared_at, 0u) << "peer " << peer->id() << " never declared h1 dead";
    EXPECT_GE(declared_at, kCrashAt);
    EXPECT_LE(declared_at, kCrashAt + bound)
        << "peer " << peer->id() << " took " << (declared_at - kCrashAt) << " ps";
  }
  EXPECT_EQ(c.topo->host(1).crashes(), 1u);
  EXPECT_FALSE(c.topo->host(1).up());
}

// --- Restart / rejoin --------------------------------------------------------

TEST(Swim, RestartRejoinsWithBumpedIncarnation) {
  Cluster c = MakeCluster(5, 31, 100, "crash host=h1 at=5ms; restart host=h1 at=30ms");
  ASSERT_TRUE(c.apply_status.ok()) << c.apply_status.ToString();
  c.Run(1);
  EXPECT_EQ(c.topo->host(1).crashes(), 1u);
  EXPECT_EQ(c.topo->host(1).restarts(), 1u);
  EXPECT_TRUE(c.topo->host(1).up());
  // The incarnation counter models stable storage: the reboot bumps it past
  // anything that circulated while the host was down.
  EXPECT_GE(c.peers[1]->incarnation(), 1u);
  EXPECT_GT(c.peers[1]->joins_sent(), 0u);
  for (const auto& peer : c.peers) {
    EXPECT_EQ(peer->StateOf(1), SwimState::kAlive)
        << "peer " << peer->id() << " still thinks h1 is "
        << SwimStateName(peer->StateOf(1));
    EXPECT_GE(peer->IncarnationOf(1), 1u) << "peer " << peer->id();
  }
}

// --- Partition false positives heal ------------------------------------------

TEST(Swim, PartitionFalsePositivesHealAfterWindowCloses) {
  // Two sides cut off from each other for 25 ms, with h2 and h5 outside the
  // partition as witnesses. Cross-side probes fail often enough to declare
  // deaths (indirect probes only mask the cut when a straddling proxy is
  // drawn), and after the window closes the witnesses carry the stale Dead
  // assertions back to their subjects, who refute with a bumped incarnation.
  // A TOTAL partition would not heal — dead members are never probed, so no
  // message would ever cross the former cut again; the witnessed shape is
  // the one the protocol guarantees convergence for (and what gossip_soak
  // runs).
  Cluster c = MakeCluster(6, 41, 120, "partition {h0,h1}|{h3,h4} from=5ms to=30ms");
  ASSERT_TRUE(c.apply_status.ok()) << c.apply_status.ToString();
  c.Run(1);
  u64 total_dead = 0;
  u64 total_refutations = 0;
  for (const auto& peer : c.peers) {
    total_dead += peer->deads_declared();
    total_refutations += peer->refutations();
  }
  // The false positives must actually have happened for the heal to mean
  // anything, and healing works by refutation, so both counters are live.
  EXPECT_GT(total_dead, 0u);
  EXPECT_GT(total_refutations, 0u);
  EXPECT_GT(c.topo->hub().partition_dropped(), 0u);
  for (const auto& peer : c.peers) {
    for (usize m = 0; m < c.peers.size(); ++m) {
      EXPECT_EQ(peer->StateOf(static_cast<u16>(m)), SwimState::kAlive)
          << "peer " << peer->id() << " about h" << m << " after heal";
    }
  }
  // No host ever crashed; every death the protocol saw was partition-induced.
  for (usize i = 0; i < c.peers.size(); ++i) {
    EXPECT_EQ(c.topo->host(i).crashes(), 0u);
  }
}

// --- Determinism -------------------------------------------------------------

TEST(Swim, DigestsBitExactAcrossThreadCountsAndReplay) {
  const std::string plan =
      "crash host=h2 at=10ms; restart host=h2 at=50ms; "
      "partition {h0,h1}|{h3,h4} from=20ms to=35ms";
  constexpr u64 kSeed = 51;
  Cluster serial = MakeCluster(6, kSeed, 80, plan);
  ASSERT_TRUE(serial.apply_status.ok()) << serial.apply_status.ToString();
  serial.Run(1);
  Cluster parallel = MakeCluster(6, kSeed, 80, plan);
  parallel.Run(4);
  Cluster replay = MakeCluster(6, kSeed, 80, plan);
  replay.Run(4);

  EXPECT_EQ(serial.SwimDigest(), parallel.SwimDigest());
  EXPECT_EQ(parallel.SwimDigest(), replay.SwimDigest());
  EXPECT_EQ(serial.registry->LogDigest(), parallel.registry->LogDigest());
  EXPECT_EQ(parallel.registry->LogDigest(), replay.registry->LogDigest());
  EXPECT_EQ(serial.events_executed, parallel.events_executed);
  EXPECT_EQ(parallel.events_executed, replay.events_executed);

  // A different seed reshuffles probe orders and jitter, so the membership
  // history (and its digest) must move.
  Cluster other = MakeCluster(6, kSeed + 1, 80, plan);
  other.Run(4);
  EXPECT_NE(parallel.SwimDigest(), other.SwimDigest());
}

// --- Chaos campaign logging --------------------------------------------------

TEST(Swim, ChaosCampaignIsLoggedUpfrontInTimeOrder) {
  Cluster c = MakeCluster(4, 61, 40,
                          "partition {h0}|{h2} from=8ms to=12ms; "
                          "crash host=h3 at=4ms; restart host=h3 at=20ms");
  ASSERT_TRUE(c.apply_status.ok()) << c.apply_status.ToString();
  // Apply() logs the whole campaign before any shard runs, sorted by time.
  const std::vector<FaultEvent>& log = c.registry->log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].cls, FaultClass::kHostCrash);
  EXPECT_EQ(log[1].cls, FaultClass::kPartition);
  EXPECT_EQ(log[2].cls, FaultClass::kHostRestart);
  EXPECT_LE(log[0].tick, log[1].tick);
  EXPECT_LE(log[1].tick, log[2].tick);
  const u64 digest_before = c.registry->LogDigest();
  c.Run(2);
  EXPECT_EQ(c.registry->LogDigest(), digest_before)
      << "running the campaign must not append to the injection log";
}

TEST(Swim, ChaosApplyRejectsUnknownHostAndSchedulesNothing) {
  Cluster c = MakeCluster(3, 71, 20, "crash host=h9 at=1ms");
  EXPECT_FALSE(c.apply_status.ok());
  EXPECT_NE(c.apply_status.ToString().find("h9"), std::string::npos)
      << c.apply_status.ToString();
  EXPECT_EQ(c.director->scheduled(), 0u);
  EXPECT_TRUE(c.registry->log().empty());
  // The cluster itself is healthy: the rejected plan changed nothing.
  c.Run(1);
  for (const auto& peer : c.peers) {
    EXPECT_EQ(peer->deads_declared(), 0u);
  }
}

// --- Metrics -----------------------------------------------------------------

TEST(Swim, MetricsExportUnderPrefix) {
  Cluster c = MakeCluster(3, 81, 20, "");
  c.Run(1);
  MetricsRegistry metrics;
  for (const auto& peer : c.peers) {
    peer->RegisterMetrics(metrics, "swim.h" + std::to_string(peer->id()));
  }
  c.topo->hub().RegisterMetrics(metrics, "hub");
  const std::optional<u64> pings = metrics.TryGet("swim.h0.pings_sent");
  ASSERT_TRUE(pings.has_value());
  EXPECT_GT(*pings, 0u);
  const std::optional<u64> forwarded = metrics.TryGet("hub.forwarded");
  ASSERT_TRUE(forwarded.has_value());
  EXPECT_GT(*forwarded, 0u);
  const std::string prom = metrics.PrometheusText();
  EXPECT_NE(prom.find("swim_h0_pings_sent"), std::string::npos) << prom;
  EXPECT_NE(prom.find("swim_h1_gossip_fanout"), std::string::npos) << prom;
}

// --- Detection bound ---------------------------------------------------------

TEST(Swim, DetectionBoundFormulaAndMonotonicity) {
  SwimConfig config;  // defaults: 1 ms period, 3 suspicion periods, 600 us
  const Picoseconds bound8 = SwimDetectionBound(config, 8);
  const Picoseconds expect8 = static_cast<Picoseconds>(2 * 8 + 3 + 4) *
                                  config.protocol_period +
                              config.indirect_timeout;
  EXPECT_EQ(bound8, expect8);
  EXPECT_LT(SwimDetectionBound(config, 4), SwimDetectionBound(config, 16));
}

}  // namespace
}  // namespace emu
