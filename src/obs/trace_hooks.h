// Lightweight trace hook surface (emu-scope).
//
// This header is what hot paths include: it exposes exactly one question —
// "is a trace buffer attached to this thread?" — and out-of-line emitters
// that are only reached when the answer is yes. With EMU_TRACE compiled in
// the cost of a detached hook is one thread-local load plus a predicted
// branch; with EMU_TRACE off, ActiveBuffer() is a constexpr nullptr and every
// guarded call site folds away entirely (same philosophy as the EMU_ANALYSIS
// hazard hooks, but without macros at the call sites).
//
// Shard safety: each shard of a parallel run owns its own TraceBuffer, and
// the runner binds the buffer to whichever worker thread executes the shard's
// epoch. Events therefore never cross threads, and the deterministic merge
// happens only at export time (see trace.h).
#ifndef SRC_OBS_TRACE_HOOKS_H_
#define SRC_OBS_TRACE_HOOKS_H_

#include <string_view>

#include "src/common/types.h"

namespace emu::obs {

class TraceBuffer;

#ifdef EMU_TRACE
// The buffer bound to this thread, or nullptr when tracing is detached.
// Bound by TraceSession::Install() (main thread -> shard 0) and by the
// parallel runner around each shard epoch.
extern thread_local TraceBuffer* tls_trace_buffer;

inline TraceBuffer* ActiveBuffer() { return tls_trace_buffer; }
#else
inline constexpr TraceBuffer* ActiveBuffer() { return nullptr; }
#endif

// Emitters, defined out of line so that hot headers stay light. `ts` / `dur`
// are absolute picoseconds; names are interned per shard and written back as
// strings at export, so shard-local intern order never leaks into output.
void EmitAsyncBegin(TraceBuffer* buffer, std::string_view name, Picoseconds ts, u64 id);
void EmitAsyncEnd(TraceBuffer* buffer, std::string_view name, Picoseconds ts, u64 id);
void EmitInstant(TraceBuffer* buffer, std::string_view name, Picoseconds ts);
void EmitComplete(TraceBuffer* buffer, std::string_view name, Picoseconds ts, Picoseconds dur);
void EmitCounter(TraceBuffer* buffer, std::string_view name, Picoseconds ts, u64 value);

// Next packet flight id for the shard owning `buffer`. Ids encode the shard
// in the high bits so two shards can assign concurrently without ever
// colliding, and deterministically (each shard counts its own ingresses).
u64 NextFlightId(TraceBuffer* buffer);

// Trace id of a frame-like value, or 0 when the type carries none. Lets
// templated containers (SyncFifo<T>) hook packet flights without knowing
// about Packet.
template <typename T>
inline u64 FrameTraceId(const T& value) {
  if constexpr (requires { value.trace_id(); }) {
    return value.trace_id();
  } else {
    (void)value;
    return 0;
  }
}

}  // namespace emu::obs

#endif  // SRC_OBS_TRACE_HOOKS_H_
