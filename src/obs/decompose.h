// Latency decomposition over a captured trace (emu-scope / emu-chain).
//
// Aggregates complete ("X") spans by name into {count, total, min, max,
// mean} rows, then carves the chain runtime's span naming convention —
// "chain.<stage>.queue" (time waiting in the bounded ingress queue) and
// "chain.<stage>.service" (time inside the CPU/FPGA target) — into the
// Table-4-shape per-stage decomposition table: where each request's latency
// went, stage by stage, split into queueing and service.
#ifndef SRC_OBS_DECOMPOSE_H_
#define SRC_OBS_DECOMPOSE_H_

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/obs/trace.h"

namespace emu::obs {

// Aggregate statistics for one span name, all durations in picoseconds.
struct SpanStats {
  std::string name;
  u64 count = 0;
  Picoseconds total = 0;
  Picoseconds min = 0;
  Picoseconds max = 0;

  Picoseconds mean() const { return count == 0 ? 0 : total / count; }
};

// One chain stage's share of end-to-end latency.
struct StageDecomposition {
  std::string stage;
  SpanStats queue;    // "chain.<stage>.queue"
  SpanStats service;  // "chain.<stage>.service"
};

// Complete-span aggregation by name, sorted by name (stable across runs and
// thread counts, since MergedEvents() is canonical).
std::vector<SpanStats> AggregateCompleteSpans(const std::vector<MergedEvent>& events);

// Extracts the per-stage rows from the chain span naming convention.
// `stage_order` fixes the row order (chain order); stages without spans get
// zero rows, spans without a listed stage are dropped.
std::vector<StageDecomposition> DecomposeChainLatency(
    const std::vector<MergedEvent>& events, const std::vector<std::string>& stage_order);

// The human table: one row per stage, queue/service count + mean + max in
// microseconds (integer math, 3 decimal places), plus a totals row.
std::string FormatDecompositionTable(const std::vector<StageDecomposition>& rows);

}  // namespace emu::obs

#endif  // SRC_OBS_DECOMPOSE_H_
