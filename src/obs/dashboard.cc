#include "src/obs/dashboard.h"

#include <charconv>
#include <fstream>

namespace emu::obs {
namespace {

void AppendHtmlEscaped(std::string& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
}

void AppendJsString(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    // `</script>` inside a string literal would end the inline script block.
    if (c == '/') {
      out += '\\';
    }
    out += c;
  }
  out += '"';
}

void AppendDouble(std::string& out, double value) {
  char buf[64];
  const std::to_chars_result res = std::to_chars(buf, buf + sizeof(buf), value);
  if (res.ec != std::errc{}) {
    out += '0';
    return;
  }
  out.append(buf, res.ptr);
}

// Inline renderer: reads the embedded DATA object, draws one SVG line chart
// per chart spec. Pure DOM + SVG, no external code.
constexpr const char* kScript = R"JS(
(function () {
  'use strict';
  var W = 860, H = 220, PADL = 64, PADR = 150, PADT = 16, PADB = 28;
  var COLORS = ['#2563eb', '#dc2626', '#059669', '#d97706', '#7c3aed', '#0891b2', '#be185d'];
  var byName = {};
  DATA.series.forEach(function (s) { byName[s.name] = s.points; });

  function toRate(points) {
    var out = [];
    for (var i = 1; i < points.length; i++) {
      var dt = points[i][0] - points[i - 1][0];
      if (dt <= 0) continue;
      var dv = points[i][1] - points[i - 1][1];
      out.push([points[i][0], dv * 1e12 / dt]); // per second (ts in picoseconds)
    }
    return out;
  }

  function fmt(v) {
    if (!isFinite(v)) return '-';
    if (Math.abs(v) >= 1e6) return (v / 1e6).toFixed(2) + 'M';
    if (Math.abs(v) >= 1e3) return (v / 1e3).toFixed(2) + 'k';
    return (Math.round(v * 100) / 100).toString();
  }

  function el(tag, attrs) {
    var node = document.createElementNS('http://www.w3.org/2000/svg', tag);
    for (var k in attrs) node.setAttribute(k, attrs[k]);
    return node;
  }

  function drawChart(container, spec) {
    var series = [];
    spec.metrics.forEach(function (name) {
      var pts = byName[name];
      if (!pts || pts.length === 0) return;
      series.push({ name: name, points: spec.rate ? toRate(pts) : pts });
    });
    series = series.filter(function (s) { return s.points.length > 0; });
    var h2 = document.createElement('h2');
    h2.textContent = spec.title + (spec.unit ? ' (' + spec.unit + ')' : '');
    container.appendChild(h2);
    if (series.length === 0) {
      var p = document.createElement('p');
      p.className = 'empty';
      p.textContent = 'no data points for: ' + spec.metrics.join(', ');
      container.appendChild(p);
      return;
    }
    var tmin = Infinity, tmax = -Infinity, vmin = Infinity, vmax = -Infinity;
    series.forEach(function (s) {
      s.points.forEach(function (p) {
        tmin = Math.min(tmin, p[0]); tmax = Math.max(tmax, p[0]);
        vmin = Math.min(vmin, p[1]); vmax = Math.max(vmax, p[1]);
      });
    });
    if (vmin === vmax) { vmin -= 1; vmax += 1; }
    if (tmin === tmax) { tmax += 1; }
    var svg = el('svg', { width: W, height: H, viewBox: '0 0 ' + W + ' ' + H });
    var x = function (t) { return PADL + (t - tmin) / (tmax - tmin) * (W - PADL - PADR); };
    var y = function (v) { return H - PADB - (v - vmin) / (vmax - vmin) * (H - PADT - PADB); };
    [0, 0.5, 1].forEach(function (f) {
      var vy = y(vmin + f * (vmax - vmin));
      svg.appendChild(el('line', { x1: PADL, y1: vy, x2: W - PADR, y2: vy, stroke: '#e5e7eb' }));
      var label = el('text', { x: PADL - 6, y: vy + 4, 'text-anchor': 'end', 'font-size': 11, fill: '#6b7280' });
      label.textContent = fmt(vmin + f * (vmax - vmin));
      svg.appendChild(label);
    });
    var t0 = el('text', { x: PADL, y: H - 8, 'font-size': 11, fill: '#6b7280' });
    t0.textContent = (tmin / 1e6).toFixed(0) + 'us';
    svg.appendChild(t0);
    var t1 = el('text', { x: W - PADR, y: H - 8, 'text-anchor': 'end', 'font-size': 11, fill: '#6b7280' });
    t1.textContent = (tmax / 1e6).toFixed(0) + 'us';
    svg.appendChild(t1);
    series.forEach(function (s, idx) {
      var d = s.points.map(function (p, i) {
        return (i === 0 ? 'M' : 'L') + x(p[0]).toFixed(1) + ' ' + y(p[1]).toFixed(1);
      }).join(' ');
      svg.appendChild(el('path', { d: d, fill: 'none', stroke: COLORS[idx % COLORS.length], 'stroke-width': 1.5 }));
      var ly = PADT + 14 * idx + 10;
      svg.appendChild(el('line', { x1: W - PADR + 8, y1: ly - 4, x2: W - PADR + 24, y2: ly - 4, stroke: COLORS[idx % COLORS.length], 'stroke-width': 2 }));
      var legend = el('text', { x: W - PADR + 28, y: ly, 'font-size': 11, fill: '#374151' });
      legend.textContent = s.name;
      svg.appendChild(legend);
    });
    container.appendChild(svg);
  }

  var root = document.getElementById('charts');
  CHARTS.forEach(function (spec) { drawChart(root, spec); });
  var note = document.getElementById('sampling');
  note.textContent = 'series: ' + DATA.series.length + ', stride 1:' + DATA.stride +
    ', rows kept ' + (DATA.offered - DATA.dropped) + '/' + DATA.offered;
})();
)JS";

}  // namespace

std::string RenderSoakDashboardHtml(const DashboardOptions& options,
                                    const TimeSeriesRecorder& recorder,
                                    const std::vector<ChartSpec>& charts, const SloReport& slo) {
  std::string out;
  out +=
      "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n<title>";
  AppendHtmlEscaped(out, options.title);
  out += "</title>\n<style>\n";
  out +=
      "body{font-family:system-ui,sans-serif;margin:24px;color:#111827;max-width:960px}\n"
      "h1{font-size:20px;margin-bottom:2px}\n"
      ".sub{color:#6b7280;margin-top:0}\n"
      "h2{font-size:14px;margin:18px 0 4px}\n"
      "table{border-collapse:collapse;font-size:13px}\n"
      "td,th{border:1px solid #e5e7eb;padding:4px 10px;text-align:left}\n"
      ".pass{color:#059669;font-weight:600}\n"
      ".fail{color:#dc2626;font-weight:600}\n"
      ".empty{color:#9ca3af;font-size:12px}\n"
      "#sampling{color:#9ca3af;font-size:11px;margin-top:16px}\n";
  out += "</style></head>\n<body>\n<h1>";
  AppendHtmlEscaped(out, options.title);
  out += "</h1>\n<p class=\"sub\">";
  AppendHtmlEscaped(out, options.subtitle);
  out += "</p>\n";
  if (!slo.checks.empty()) {
    out += "<h2>SLO gates</h2>\n<table><tr><th>clause</th><th>observed</th><th>result</th></tr>\n";
    for (const SloCheck& check : slo.checks) {
      out += "<tr><td>";
      AppendHtmlEscaped(out, check.clause.text);
      out += "</td><td>";
      if (check.missing) {
        out += "metric missing";
      } else {
        AppendDouble(out, check.observed);
      }
      out += check.ok ? "</td><td class=\"pass\">PASS" : "</td><td class=\"fail\">FAIL";
      out += "</td></tr>\n";
    }
    out += "</table>\n";
  }
  out += "<div id=\"charts\"></div>\n<p id=\"sampling\"></p>\n<script>\nconst DATA = ";
  out += recorder.SeriesJson();
  out += ";\nconst CHARTS = [";
  for (usize i = 0; i < charts.size(); ++i) {
    const ChartSpec& spec = charts[i];
    if (i > 0) {
      out += ',';
    }
    out += "{title:";
    AppendJsString(out, spec.title);
    out += ",unit:";
    AppendJsString(out, spec.unit);
    out += ",rate:";
    out += spec.rate ? "true" : "false";
    out += ",metrics:[";
    for (usize m = 0; m < spec.metrics.size(); ++m) {
      if (m > 0) {
        out += ',';
      }
      AppendJsString(out, spec.metrics[m]);
    }
    out += "]}";
  }
  out += "];\n";
  out += kScript;
  out += "</script>\n</body></html>\n";
  return out;
}

bool WriteSoakDashboardHtml(const std::string& path, const DashboardOptions& options,
                            const TimeSeriesRecorder& recorder,
                            const std::vector<ChartSpec>& charts, const SloReport& slo) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return false;
  }
  const std::string html = RenderSoakDashboardHtml(options, recorder, charts, slo);
  file.write(html.data(), static_cast<std::streamsize>(html.size()));
  return static_cast<bool>(file);
}

}  // namespace emu::obs
