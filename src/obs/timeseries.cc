#include "src/obs/timeseries.h"

#include <fstream>

namespace emu::obs {

void TimeSeriesRecorder::Record(Picoseconds ts,
                                const std::vector<std::pair<std::string, u64>>& values) {
  const u64 index = offered_++;
  if (stride_ > 1 && index % stride_ != 0) {
    ++dropped_;
    return;
  }
  Row row;
  row.ts = ts;
  row.values = values;
  rows_.push_back(std::move(row));
  if (rows_.size() >= capacity_) {
    Compact();
  }
}

void TimeSeriesRecorder::Compact() {
  // Keep even positions: retained rows were offered at indices 0, s, 2s, ...
  // so the survivors sit at 0, 2s, 4s, ... — exactly the grid the doubled
  // stride accepts from here on.
  usize write = 0;
  for (usize read = 0; read < rows_.size(); read += 2) {
    if (write != read) {
      rows_[write] = std::move(rows_[read]);
    }
    ++write;
  }
  dropped_ += rows_.size() - write;
  rows_.resize(write);
  stride_ *= 2;
}

std::string TimeSeriesRecorder::SeriesJson() const {
  // Pivot rows into per-metric series, preserving first-seen metric order.
  std::vector<std::string> names;
  std::vector<std::vector<std::pair<Picoseconds, u64>>> series;
  for (const Row& row : rows_) {
    for (const auto& [name, value] : row.values) {
      usize slot = names.size();
      for (usize i = 0; i < names.size(); ++i) {
        if (names[i] == name) {
          slot = i;
          break;
        }
      }
      if (slot == names.size()) {
        names.push_back(name);
        series.emplace_back();
      }
      series[slot].emplace_back(row.ts, value);
    }
  }
  std::string out;
  out += "{\"stride\":";
  out += std::to_string(stride_);
  out += ",\"offered\":";
  out += std::to_string(offered_);
  out += ",\"dropped\":";
  out += std::to_string(dropped_);
  out += ",\"series\":[";
  for (usize i = 0; i < names.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += "{\"name\":\"";
    // Registry names are dotted identifiers; escape defensively anyway.
    for (char c : names[i]) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    out += "\",\"points\":[";
    for (usize p = 0; p < series[i].size(); ++p) {
      if (p > 0) {
        out += ',';
      }
      out += '[';
      out += std::to_string(series[i][p].first);
      out += ',';
      out += std::to_string(series[i][p].second);
      out += ']';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

bool TimeSeriesRecorder::WriteSeriesJson(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return false;
  }
  const std::string json = SeriesJson();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(file);
}

}  // namespace emu::obs
