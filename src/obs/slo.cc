#include "src/obs/slo.h"

#include <charconv>
#include <cstdio>

#include "src/core/metrics.h"

namespace emu::obs {
namespace {

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t' || text.front() == '\r')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

bool ValidMetricName(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '.' || c == '_' || c == ':';
    if (!ok) {
      return false;
    }
  }
  return true;
}

}  // namespace

SloParseResult ParseSloSpec(std::string_view spec) {
  SloParseResult result;
  usize ordinal = 0;
  usize pos = 0;
  while (pos <= spec.size()) {
    usize end = pos;
    while (end < spec.size() && spec[end] != ';' && spec[end] != '\n') {
      ++end;
    }
    const std::string_view raw = Trim(spec.substr(pos, end - pos));
    pos = end + 1;
    if (raw.empty()) {
      if (end >= spec.size()) {
        break;
      }
      continue;  // empty clause between separators: tolerated
    }
    ++ordinal;
    const auto fail = [&](const std::string& what) {
      result.ok = false;
      result.error = "slo clause " + std::to_string(ordinal) + ": " + what + " in \"" +
                     std::string(raw) + "\"";
    };
    usize op = raw.find("<=");
    bool less_equal = true;
    if (op == std::string_view::npos) {
      op = raw.find(">=");
      less_equal = false;
    }
    if (op == std::string_view::npos) {
      fail("expected \"<=\" or \">=\"");
      return result;
    }
    const std::string_view metric = Trim(raw.substr(0, op));
    if (!ValidMetricName(metric)) {
      fail("bad metric name");
      return result;
    }
    const std::string_view number = Trim(raw.substr(op + 2));
    double bound = 0.0;
    const std::from_chars_result parsed =
        std::from_chars(number.data(), number.data() + number.size(), bound);
    if (parsed.ec != std::errc{} || parsed.ptr != number.data() + number.size() ||
        number.empty()) {
      fail("bad bound");
      return result;
    }
    SloClause clause;
    clause.metric = std::string(metric);
    clause.less_equal = less_equal;
    clause.bound = bound;
    clause.text = std::string(raw);
    result.clauses.push_back(std::move(clause));
    if (end >= spec.size()) {
      break;
    }
  }
  return result;
}

SloReport EvaluateSlo(const std::vector<SloClause>& clauses, const SloLookup& lookup) {
  SloReport report;
  for (const SloClause& clause : clauses) {
    SloCheck check;
    check.clause = clause;
    const std::optional<double> value = lookup(clause.metric);
    if (!value.has_value()) {
      check.missing = true;
      check.ok = false;
    } else {
      check.observed = *value;
      check.ok = clause.less_equal ? *value <= clause.bound : *value >= clause.bound;
    }
    report.ok = report.ok && check.ok;
    report.checks.push_back(std::move(check));
  }
  return report;
}

SloLookup MakeRegistryLookup(const MetricsRegistry& registry) {
  return [&registry](const std::string& name) -> std::optional<double> {
    const std::optional<u64> value = registry.TryGet(name);
    if (!value.has_value()) {
      return std::nullopt;
    }
    return static_cast<double>(*value);
  };
}

std::string FormatSloReport(const SloReport& report) {
  std::string out;
  char line[256];
  for (const SloCheck& check : report.checks) {
    if (check.missing) {
      std::snprintf(line, sizeof(line), "  %s  %s  (metric missing)\n",
                    check.ok ? "PASS" : "FAIL", check.clause.text.c_str());
    } else {
      std::snprintf(line, sizeof(line), "  %s  %s  observed=%g\n", check.ok ? "PASS" : "FAIL",
                    check.clause.text.c_str(), check.observed);
    }
    out += line;
  }
  out += report.ok ? "slo: all clauses pass\n" : "slo: BREACH\n";
  return out;
}

}  // namespace emu::obs
