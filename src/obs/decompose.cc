#include "src/obs/decompose.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace emu::obs {
namespace {

void Accumulate(SpanStats& stats, Picoseconds dur) {
  if (stats.count == 0 || dur < stats.min) {
    stats.min = dur;
  }
  if (stats.count == 0 || dur > stats.max) {
    stats.max = dur;
  }
  ++stats.count;
  stats.total += dur;
}

// ps -> "NNN.mmm" microseconds without touching doubles (determinism rule).
std::string MicrosFixed(Picoseconds ps) {
  const u64 micros = ps / kPicosPerMicro;
  const u64 frac = (ps % kPicosPerMicro) / 1000;  // ns digits
  std::string out = std::to_string(micros) + ".";
  if (frac < 100) {
    out += frac < 10 ? "00" : "0";
  }
  return out + std::to_string(frac);
}

void Cell(std::ostringstream& os, const std::string& text, usize width) {
  os << text;
  for (usize i = text.size(); i < width; ++i) {
    os << ' ';
  }
}

}  // namespace

std::vector<SpanStats> AggregateCompleteSpans(const std::vector<MergedEvent>& events) {
  std::map<std::string, SpanStats> by_name;
  for (const MergedEvent& e : events) {
    if (e.phase != Phase::kComplete) {
      continue;
    }
    SpanStats& stats = by_name[std::string(e.name)];
    Accumulate(stats, e.dur);
  }
  std::vector<SpanStats> out;
  out.reserve(by_name.size());
  for (auto& [name, stats] : by_name) {
    stats.name = name;
    out.push_back(stats);
  }
  return out;
}

std::vector<StageDecomposition> DecomposeChainLatency(
    const std::vector<MergedEvent>& events, const std::vector<std::string>& stage_order) {
  std::vector<StageDecomposition> rows;
  rows.reserve(stage_order.size());
  for (const std::string& stage : stage_order) {
    StageDecomposition row;
    row.stage = stage;
    row.queue.name = "chain." + stage + ".queue";
    row.service.name = "chain." + stage + ".service";
    rows.push_back(row);
  }
  for (const MergedEvent& e : events) {
    if (e.phase != Phase::kComplete) {
      continue;
    }
    for (StageDecomposition& row : rows) {
      if (e.name == row.queue.name) {
        Accumulate(row.queue, e.dur);
      } else if (e.name == row.service.name) {
        Accumulate(row.service, e.dur);
      }
    }
  }
  return rows;
}

std::string FormatDecompositionTable(const std::vector<StageDecomposition>& rows) {
  usize stage_width = 5;  // "stage"
  for (const StageDecomposition& row : rows) {
    stage_width = std::max(stage_width, row.stage.size());
  }
  std::ostringstream os;
  Cell(os, "stage", stage_width + 2);
  Cell(os, "served", 8);
  Cell(os, "queue_mean_us", 15);
  Cell(os, "queue_max_us", 14);
  Cell(os, "svc_mean_us", 13);
  Cell(os, "svc_max_us", 12);
  os << "\n";
  Picoseconds total_queue = 0;
  Picoseconds total_service = 0;
  u64 total_served = 0;
  for (const StageDecomposition& row : rows) {
    Cell(os, row.stage, stage_width + 2);
    Cell(os, std::to_string(row.service.count), 8);
    Cell(os, MicrosFixed(row.queue.mean()), 15);
    Cell(os, MicrosFixed(row.queue.max), 14);
    Cell(os, MicrosFixed(row.service.mean()), 13);
    Cell(os, MicrosFixed(row.service.max), 12);
    os << "\n";
    total_queue += row.queue.total;
    total_service += row.service.total;
    total_served += row.service.count;
  }
  Cell(os, "total", stage_width + 2);
  Cell(os, std::to_string(total_served), 8);
  os << "queue_us=" << MicrosFixed(total_queue)
     << " service_us=" << MicrosFixed(total_service) << "\n";
  return os.str();
}

}  // namespace emu::obs
