#include "src/obs/sampler.h"

#include <sstream>

#include "src/core/metrics.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace_hooks.h"
#include "src/sim/event_scheduler.h"

namespace emu {

void MetricsSampler::Sample(Picoseconds now) {
  Row row;
  row.ts = now;
  row.values = registry_.Snapshot();
  if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
    for (const auto& [name, value] : row.values) {
      obs::EmitCounter(tb, name, now, value);
    }
  }
  if (recorder_ != nullptr) {
    recorder_->Record(now, row.values);
  }
  rows_.push_back(std::move(row));
}

void MetricsSampler::SchedulePeriodic(EventScheduler& scheduler, Picoseconds until) {
  if (interval_ <= 0) {
    return;
  }
  for (Picoseconds t = interval_; t <= until; t += interval_) {
    scheduler.At(t, [this, t] { Sample(t); });
  }
}

std::string MetricsSampler::Csv() const {
  std::ostringstream out;
  out << "ts_ps,name,value\n";
  for (const Row& row : rows_) {
    for (const auto& [name, value] : row.values) {
      out << row.ts << "," << name << "," << value << "\n";
    }
  }
  return out.str();
}

}  // namespace emu
