// Declarative end-of-run SLO gates (emu-pulse).
//
// A soak harness accepts a clause set on the command line, e.g.
//
//   --slo "chain.source.rtt_us.p99 <= 400; chain.loss_rate <= 0.02"
//
// parses it once up front (bad specs fail fast, before the run), evaluates
// every clause against the final metrics at end of run, and exits nonzero on
// any breach — the CI contract. Clause grammar, one per ';' or newline:
//
//   <metric> <= <number>   |   <metric> >= <number>
//
// where <metric> is a dotted registry name (histogram derived views like
// `.p99` work because MetricsRegistry::TryGet resolves them) or any
// harness-provided derived value (loss_rate, detection_time_us, ...). A
// clause naming a metric the lookup cannot resolve FAILS — a gate that
// silently passes because its metric was renamed is the failure mode this
// rule exists to prevent.
#ifndef SRC_OBS_SLO_H_
#define SRC_OBS_SLO_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.h"

namespace emu {

class MetricsRegistry;

namespace obs {

struct SloClause {
  std::string metric;
  bool less_equal = true;  // false = ">="
  double bound = 0.0;
  std::string text;  // the original clause, for reports
};

struct SloParseResult {
  bool ok = true;
  std::string error;  // first problem, with the 1-based clause ordinal
  std::vector<SloClause> clauses;
};

SloParseResult ParseSloSpec(std::string_view spec);

struct SloCheck {
  SloClause clause;
  bool ok = false;
  bool missing = false;  // lookup had no such metric (counts as a breach)
  double observed = 0.0;
};

struct SloReport {
  bool ok = true;
  std::vector<SloCheck> checks;
};

// Resolves metric names to observed values; nullopt = unknown metric.
using SloLookup = std::function<std::optional<double>(const std::string&)>;

SloReport EvaluateSlo(const std::vector<SloClause>& clauses, const SloLookup& lookup);

// Lookup over a MetricsRegistry (TryGet, so histogram `.p50`/`.p99` views
// resolve). Compose with harness-derived values by trying those first.
SloLookup MakeRegistryLookup(const MetricsRegistry& registry);

// One line per clause: "PASS|FAIL <clause>  observed=<v>" (or "missing").
std::string FormatSloReport(const SloReport& report);

}  // namespace obs
}  // namespace emu

#endif  // SRC_OBS_SLO_H_
