// emu-pulse: host-performance (wall-clock) observability, kept strictly
// apart from the deterministic trace (src/obs/trace.h).
//
// The deterministic trace answers "what did the emulated system do, at which
// emulated picosecond" — it is byte-compared across thread counts and
// replays, so nothing wall-clock may ever leak into it. emu-pulse answers
// the orthogonal question "where did the HOST spend its time running the
// emulation": kernel phase attribution (Simulator::ProfileReport), and
// per-shard/per-epoch records from the conservative parallel runner
// (planned horizon, events executed, barrier-wait wall ns, null-message
// relaxation counts — the data the emu-par v2 barrier fix aims at).
//
// Everything here exports to SEPARATE artifacts (a summary JSON and a
// wall-clock Chrome trace), which is what keeps the byte-compare guarantee
// intact by construction: the deterministic exporters never see this data.
#ifndef SRC_OBS_PULSE_H_
#define SRC_OBS_PULSE_H_

#include <chrono>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/hdl/simulator.h"

namespace emu::obs {

// --- Kernel phase profile export -------------------------------------------

// JSON export of a SimProfile: scalar counters, the five kernel phases
// (calls / timed_calls / wall_ns / estimated_total_ns), and the per-process
// table. `profiling_enabled` is always present so a consumer can tell an
// all-zero report from a disabled one.
std::string SimProfileJson(const SimProfile& profile);

// Human-readable phase + per-process table (emu_scope prints this when the
// report is populated()). Empty string when the profile carries no wall
// data — callers need not re-check populated().
std::string FormatSimProfileTable(const SimProfile& profile);

// --- Parallel-runner epoch observability ------------------------------------

// One PlanEpoch execution (coordinator, single-threaded between barriers).
struct PlanRecord {
  u64 epoch = 0;           // 1-based epoch ordinal within this run
  u64 begin_ns = 0;        // wall offset from BeginRun
  u64 wall_ns = 0;         // time inside PlanEpoch (drain + relax + horizons)
  u64 relax_sweeps = 0;    // fixpoint sweeps over the cut edges
  u64 relaxations = 0;     // lower-bound relaxations applied (batched null messages)
  u64 frames_drained = 0;  // cross-shard frames delivered out of the inboxes
};

// One shard's slice of one epoch. barrier_wait_ns is the wall time between
// the shard's work finishing and the epoch closing at the done barrier —
// under threads=1 it measures sequential skew (time spent running the shards
// after this one), under threads=N it is the idle time the emu-par v2 fix
// wants to shrink.
struct ShardEpochRecord {
  u64 epoch = 0;
  u32 shard = 0;
  Picoseconds horizon_ps = -1;  // planned conservative horizon; -1 = unbounded
  u64 executed = 0;     // events the shard ran this epoch
  u64 work_begin_ns = 0;
  u64 work_end_ns = 0;
  u64 barrier_wait_ns = 0;
};

// Whole-run plan totals (never dropped, even when the per-epoch ring caps
// out — the same exactness rule ShardAggregate follows).
struct PlanAggregate {
  u64 wall_ns = 0;
  u64 relax_sweeps = 0;
  u64 relaxations = 0;
  u64 frames_drained = 0;
};

// Whole-run totals per shard (never dropped, even when the per-epoch ring
// caps out).
struct ShardAggregate {
  u64 epochs = 0;
  u64 executed = 0;
  u64 work_ns = 0;
  u64 barrier_wait_ns = 0;
  u64 max_barrier_wait_ns = 0;
};

// Collects wall-clock epoch records from a ParallelRunner (AttachPulse).
// Recording discipline: BeginRun / RecordPlan / RecordShardEpoch / EndRun
// are coordinator-only calls (the single-threaded sections between epoch
// barriers); NowNs() is safe from worker threads (it only reads the base
// stamp set in BeginRun).
//
// Detail records are bounded: past `max_records` per-epoch entries the
// recorder keeps the prefix and counts the rest in dropped_records(), while
// the per-shard aggregates keep accumulating — totals are always exact.
class RunnerPulse {
 public:
  explicit RunnerPulse(usize max_records = 1u << 14) : max_records_(max_records) {}

  void BeginRun(usize shard_count, usize threads);
  void EndRun(u64 total_events);
  u64 NowNs() const {
    return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - base_)
                                .count());
  }

  void RecordPlan(const PlanRecord& record);
  void RecordShardEpoch(const ShardEpochRecord& record);

  usize shard_count() const { return shard_count_; }
  usize threads() const { return threads_; }
  u64 epochs() const { return epochs_; }
  u64 total_events() const { return total_events_; }
  u64 run_wall_ns() const { return run_wall_ns_; }
  u64 dropped_records() const { return dropped_records_; }
  const std::vector<PlanRecord>& plans() const { return plans_; }
  const PlanAggregate& plan_aggregate() const { return plan_aggregate_; }
  const std::vector<ShardEpochRecord>& shard_epochs() const { return shard_epochs_; }
  const std::vector<ShardAggregate>& shard_aggregates() const { return aggregates_; }

  // Summary JSON: run-level totals, per-shard aggregates (executed, work,
  // barrier wait, max wait), plan totals (sweeps, relaxations, drained), and
  // the bounded per-epoch detail arrays.
  std::string SummaryJson() const;

  // Wall-clock Chrome trace: per-shard rows of "shard.work" + "barrier.wait"
  // complete spans and a coordinator row of "epoch.plan" spans, timestamped
  // in HOST time. A separate artifact by design — never merged into the
  // deterministic trace, so the byte-compare never sees it.
  std::string WallClockTraceJson() const;

  bool WriteSummaryJson(const std::string& path) const;
  bool WriteWallClockTraceJson(const std::string& path) const;

 private:
  usize max_records_;
  usize shard_count_ = 0;
  usize threads_ = 0;
  u64 epochs_ = 0;
  u64 total_events_ = 0;
  u64 run_wall_ns_ = 0;
  u64 dropped_records_ = 0;
  std::chrono::steady_clock::time_point base_{};
  PlanAggregate plan_aggregate_;
  std::vector<PlanRecord> plans_;
  std::vector<ShardEpochRecord> shard_epochs_;
  std::vector<ShardAggregate> aggregates_;
};

}  // namespace emu::obs

#endif  // SRC_OBS_PULSE_H_
