#include "src/obs/pulse.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>

namespace emu::obs {
namespace {

void AppendU64(std::string& out, u64 value) { out += std::to_string(value); }

void AppendI64(std::string& out, Picoseconds value) { out += std::to_string(value); }

// Locale-independent shortest round-trip double (same contract as
// bench::FormatJsonNumber, duplicated here so src/ does not reach into
// bench/).
void AppendDouble(std::string& out, double value) {
  char buf[64];
  const std::to_chars_result res = std::to_chars(buf, buf + sizeof(buf), value);
  if (res.ec != std::errc{}) {
    out += '0';
    return;
  }
  out.append(buf, res.ptr);
}

void AppendJsonString(std::string& out, const std::string& text) {
  out += '"';
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendPhase(std::string& out, const char* name, const PhaseProfile& phase) {
  out += '"';
  out += name;
  out += "\":{\"calls\":";
  AppendU64(out, phase.calls);
  out += ",\"timed_calls\":";
  AppendU64(out, phase.timed_calls);
  out += ",\"wall_ns\":";
  AppendU64(out, phase.wall_ns);
  out += ",\"estimated_total_ns\":";
  AppendDouble(out, phase.EstimatedTotalNs());
  out += '}';
}

const char* ModeName(ProfilingMode mode) {
  switch (mode) {
    case ProfilingMode::kOff:
      return "off";
    case ProfilingMode::kSampled:
      return "sampled";
    case ProfilingMode::kFull:
      return "full";
  }
  return "off";
}

// Wall-clock Chrome trace timestamps are in microseconds; keep three
// fractional digits so sub-microsecond spans stay visible.
void AppendNsAsMicros(std::string& out, u64 ns) {
  AppendU64(out, ns / 1000);
  out += '.';
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%03u", static_cast<unsigned>(ns % 1000));
  out += buf;
}

bool WriteFile(const std::string& path, const std::string& text) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return false;
  }
  file.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(file);
}

}  // namespace

std::string SimProfileJson(const SimProfile& profile) {
  std::string out;
  out += "{\"profiling_enabled\":";
  out += profile.profiling_enabled ? "true" : "false";
  out += ",\"mode\":\"";
  out += ModeName(profile.mode);
  out += "\",\"sample_stride\":";
  AppendU64(out, profile.sample_stride);
  out += ",\"edges_run\":";
  AppendU64(out, profile.edges_run);
  out += ",\"cycles_fast_forwarded\":";
  AppendU64(out, profile.cycles_fast_forwarded);
  out += ",\"jumps\":";
  AppendU64(out, profile.jumps);
  out += ",\"edges_timed\":";
  AppendU64(out, profile.edges_timed);
  out += ",\"phases\":{";
  AppendPhase(out, "resume_dispatch", profile.resume_dispatch);
  out += ',';
  AppendPhase(out, "commit_sweep", profile.commit_sweep);
  out += ',';
  AppendPhase(out, "quiescence_scan", profile.quiescence_scan);
  out += ',';
  AppendPhase(out, "fast_forward", profile.fast_forward);
  out += ',';
  AppendPhase(out, "flat_span", profile.flat_span);
  out += "},\"processes\":[";
  u64 total_resumes = 0;
  u64 total_polls = 0;
  u64 total_wall_ns = 0;
  bool first = true;
  for (const ProcessProfile& process : profile.processes) {
    total_resumes += process.resumes;
    total_polls += process.polls;
    total_wall_ns += process.wall_ns;
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":";
    AppendJsonString(out, process.name);
    out += ",\"resumes\":";
    AppendU64(out, process.resumes);
    out += ",\"cycles_awake\":";
    AppendU64(out, process.cycles_awake);
    out += ",\"polls\":";
    AppendU64(out, process.polls);
    out += ",\"wall_ns\":";
    AppendU64(out, process.wall_ns);
    out += '}';
  }
  out += "],\"totals\":{\"resumes\":";
  AppendU64(out, total_resumes);
  out += ",\"polls\":";
  AppendU64(out, total_polls);
  out += ",\"resume_wall_ns\":";
  AppendU64(out, total_wall_ns);
  out += "}}";
  return out;
}

std::string FormatSimProfileTable(const SimProfile& profile) {
  if (!profile.populated()) {
    return {};
  }
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "kernel phases (mode=%s stride=%llu, %llu/%llu edges timed)\n",
                ModeName(profile.mode), static_cast<unsigned long long>(profile.sample_stride),
                static_cast<unsigned long long>(profile.edges_timed),
                static_cast<unsigned long long>(profile.edges_run));
  out += line;
  std::snprintf(line, sizeof(line), "  %-18s %12s %12s %14s %16s\n", "phase", "calls", "timed",
                "wall_us", "est_total_us");
  out += line;
  const auto row = [&](const char* name, const PhaseProfile& phase) {
    std::snprintf(line, sizeof(line), "  %-18s %12llu %12llu %14.1f %16.1f\n", name,
                  static_cast<unsigned long long>(phase.calls),
                  static_cast<unsigned long long>(phase.timed_calls),
                  static_cast<double>(phase.wall_ns) / 1e3, phase.EstimatedTotalNs() / 1e3);
    out += line;
  };
  row("resume_dispatch", profile.resume_dispatch);
  row("commit_sweep", profile.commit_sweep);
  row("quiescence_scan", profile.quiescence_scan);
  row("fast_forward", profile.fast_forward);
  row("flat_span", profile.flat_span);
  // Per-process rows, hottest first; skip processes that never resumed.
  std::vector<const ProcessProfile*> hot;
  hot.reserve(profile.processes.size());
  for (const ProcessProfile& process : profile.processes) {
    if (process.resumes > 0 || process.polls > 0) {
      hot.push_back(&process);
    }
  }
  std::sort(hot.begin(), hot.end(), [](const ProcessProfile* a, const ProcessProfile* b) {
    return a->wall_ns != b->wall_ns ? a->wall_ns > b->wall_ns : a->resumes > b->resumes;
  });
  std::snprintf(line, sizeof(line), "  %-28s %12s %12s %14s\n", "process", "resumes", "polls",
                "wall_us");
  out += line;
  for (const ProcessProfile* process : hot) {
    std::snprintf(line, sizeof(line), "  %-28s %12llu %12llu %14.1f\n", process->name.c_str(),
                  static_cast<unsigned long long>(process->resumes),
                  static_cast<unsigned long long>(process->polls),
                  static_cast<double>(process->wall_ns) / 1e3);
    out += line;
  }
  return out;
}

void RunnerPulse::BeginRun(usize shard_count, usize threads) {
  shard_count_ = shard_count;
  threads_ = threads;
  epochs_ = 0;
  total_events_ = 0;
  run_wall_ns_ = 0;
  dropped_records_ = 0;
  plan_aggregate_ = PlanAggregate{};
  plans_.clear();
  shard_epochs_.clear();
  aggregates_.assign(shard_count, ShardAggregate{});
  base_ = std::chrono::steady_clock::now();
}

void RunnerPulse::EndRun(u64 total_events) {
  total_events_ = total_events;
  run_wall_ns_ = NowNs();
}

void RunnerPulse::RecordPlan(const PlanRecord& record) {
  epochs_ = record.epoch;
  plan_aggregate_.wall_ns += record.wall_ns;
  plan_aggregate_.relax_sweeps += record.relax_sweeps;
  plan_aggregate_.relaxations += record.relaxations;
  plan_aggregate_.frames_drained += record.frames_drained;
  if (plans_.size() >= max_records_) {
    ++dropped_records_;
    return;
  }
  plans_.push_back(record);
}

void RunnerPulse::RecordShardEpoch(const ShardEpochRecord& record) {
  if (record.shard < aggregates_.size()) {
    ShardAggregate& agg = aggregates_[record.shard];
    ++agg.epochs;
    agg.executed += record.executed;
    agg.work_ns += record.work_end_ns - record.work_begin_ns;
    agg.barrier_wait_ns += record.barrier_wait_ns;
    agg.max_barrier_wait_ns = std::max(agg.max_barrier_wait_ns, record.barrier_wait_ns);
  }
  if (shard_epochs_.size() >= max_records_) {
    ++dropped_records_;
    return;
  }
  shard_epochs_.push_back(record);
}

std::string RunnerPulse::SummaryJson() const {
  std::string out;
  out += "{\"shards\":";
  AppendU64(out, shard_count_);
  out += ",\"threads\":";
  AppendU64(out, threads_);
  out += ",\"epochs\":";
  AppendU64(out, epochs_);
  out += ",\"total_events\":";
  AppendU64(out, total_events_);
  out += ",\"run_wall_ns\":";
  AppendU64(out, run_wall_ns_);
  out += ",\"dropped_records\":";
  AppendU64(out, dropped_records_);
  // Exact whole-run totals, accumulated in RecordPlan — NOT re-summed from
  // the bounded plans_ ring, which loses epochs past the cap.
  out += ",\"plan\":{\"wall_ns\":";
  AppendU64(out, plan_aggregate_.wall_ns);
  out += ",\"relax_sweeps\":";
  AppendU64(out, plan_aggregate_.relax_sweeps);
  out += ",\"null_message_relaxations\":";
  AppendU64(out, plan_aggregate_.relaxations);
  out += ",\"frames_drained\":";
  AppendU64(out, plan_aggregate_.frames_drained);
  out += "},\"shard_summary\":[";
  for (usize i = 0; i < aggregates_.size(); ++i) {
    const ShardAggregate& agg = aggregates_[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"shard\":";
    AppendU64(out, i);
    out += ",\"epochs\":";
    AppendU64(out, agg.epochs);
    out += ",\"executed\":";
    AppendU64(out, agg.executed);
    out += ",\"work_ns\":";
    AppendU64(out, agg.work_ns);
    out += ",\"barrier_wait_ns\":";
    AppendU64(out, agg.barrier_wait_ns);
    out += ",\"max_barrier_wait_ns\":";
    AppendU64(out, agg.max_barrier_wait_ns);
    out += '}';
  }
  out += "],\"plan_epochs\":[";
  for (usize i = 0; i < plans_.size(); ++i) {
    const PlanRecord& plan = plans_[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"epoch\":";
    AppendU64(out, plan.epoch);
    out += ",\"begin_ns\":";
    AppendU64(out, plan.begin_ns);
    out += ",\"wall_ns\":";
    AppendU64(out, plan.wall_ns);
    out += ",\"relax_sweeps\":";
    AppendU64(out, plan.relax_sweeps);
    out += ",\"null_message_relaxations\":";
    AppendU64(out, plan.relaxations);
    out += ",\"frames_drained\":";
    AppendU64(out, plan.frames_drained);
    out += '}';
  }
  out += "],\"shard_epochs\":[";
  for (usize i = 0; i < shard_epochs_.size(); ++i) {
    const ShardEpochRecord& rec = shard_epochs_[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"epoch\":";
    AppendU64(out, rec.epoch);
    out += ",\"shard\":";
    AppendU64(out, rec.shard);
    out += ",\"horizon_ps\":";
    AppendI64(out, rec.horizon_ps);
    out += ",\"executed\":";
    AppendU64(out, rec.executed);
    out += ",\"work_ns\":";
    AppendU64(out, rec.work_end_ns - rec.work_begin_ns);
    out += ",\"barrier_wait_ns\":";
    AppendU64(out, rec.barrier_wait_ns);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string RunnerPulse::WallClockTraceJson() const {
  std::string out;
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) {
      out += ",\n";
    }
    first = false;
  };
  // Row names. pid 1 distinguishes the wall-clock process from the
  // deterministic trace's pid 0, should anyone load both side by side.
  comma();
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"emu-pulse wallclock (excluded from byte-compare)\"}}";
  for (usize i = 0; i < shard_count_; ++i) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
    AppendU64(out, i);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"shard";
    AppendU64(out, i);
    out += " (wall)\"}}";
  }
  comma();
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":";
  AppendU64(out, shard_count_);
  out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"coordinator (wall)\"}}";
  for (const PlanRecord& plan : plans_) {
    comma();
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    AppendU64(out, shard_count_);
    out += ",\"ts\":";
    AppendNsAsMicros(out, plan.begin_ns);
    out += ",\"dur\":";
    AppendNsAsMicros(out, plan.wall_ns);
    out += ",\"name\":\"epoch.plan\",\"args\":{\"epoch\":";
    AppendU64(out, plan.epoch);
    out += ",\"relaxations\":";
    AppendU64(out, plan.relaxations);
    out += "}}";
  }
  for (const ShardEpochRecord& rec : shard_epochs_) {
    comma();
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    AppendU64(out, rec.shard);
    out += ",\"ts\":";
    AppendNsAsMicros(out, rec.work_begin_ns);
    out += ",\"dur\":";
    AppendNsAsMicros(out, rec.work_end_ns - rec.work_begin_ns);
    out += ",\"name\":\"shard.work\",\"args\":{\"epoch\":";
    AppendU64(out, rec.epoch);
    out += ",\"executed\":";
    AppendU64(out, rec.executed);
    out += "}}";
    if (rec.barrier_wait_ns > 0) {
      comma();
      out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
      AppendU64(out, rec.shard);
      out += ",\"ts\":";
      AppendNsAsMicros(out, rec.work_end_ns);
      out += ",\"dur\":";
      AppendNsAsMicros(out, rec.barrier_wait_ns);
      out += ",\"name\":\"barrier.wait\",\"args\":{\"epoch\":";
      AppendU64(out, rec.epoch);
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

bool RunnerPulse::WriteSummaryJson(const std::string& path) const {
  return WriteFile(path, SummaryJson());
}

bool RunnerPulse::WriteWallClockTraceJson(const std::string& path) const {
  return WriteFile(path, WallClockTraceJson());
}

}  // namespace emu::obs
