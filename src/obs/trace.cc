#include "src/obs/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <tuple>

namespace emu::obs {

#ifdef EMU_TRACE
thread_local TraceBuffer* tls_trace_buffer = nullptr;
#endif

namespace {

TraceSession* g_current_session = nullptr;

// ts/dur in the trace_event schema are microseconds; we render picoseconds
// as integer-us "." 6-digit-ps so the text never goes through a double and
// two runs producing the same event stream produce the same bytes.
void AppendMicros(std::string& out, Picoseconds ps) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%06lld",
                static_cast<long long>(ps / 1'000'000),
                static_cast<long long>(ps % 1'000'000));
  out += buf;
}

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

TraceBuffer::TraceBuffer(usize shard, usize capacity)
    : shard_(shard), capacity_(std::max<usize>(1, capacity)) {
  ring_.reserve(std::min<usize>(capacity_, 4096));
}

u32 TraceBuffer::Intern(std::string_view name) {
  auto it = intern_.find(std::string(name));
  if (it != intern_.end()) {
    return it->second;
  }
  const u32 id = static_cast<u32>(names_.size());
  names_.emplace_back(name);
  intern_.emplace(names_.back(), id);
  return id;
}

void TraceBuffer::Push(Phase phase, Picoseconds ts, Picoseconds dur, u32 name, u64 id) {
  TraceEvent event;
  event.ts = ts;
  event.dur = dur;
  event.id = id;
  event.seq = seq_++;
  event.name = name;
  event.phase = phase;
  ++total_pushed_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  // Full: overwrite the oldest (the ring keeps the most recent window, which
  // is what a long soak wants — the tail leading up to the interesting end).
  ring_[head_] = event;
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out.assign(ring_.begin(), ring_.end());
    return out;
  }
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_), ring_.end());
  out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

void EmitAsyncBegin(TraceBuffer* buffer, std::string_view name, Picoseconds ts, u64 id) {
  buffer->Push(Phase::kAsyncBegin, ts, 0, buffer->Intern(name), id);
}

void EmitAsyncEnd(TraceBuffer* buffer, std::string_view name, Picoseconds ts, u64 id) {
  buffer->Push(Phase::kAsyncEnd, ts, 0, buffer->Intern(name), id);
}

void EmitInstant(TraceBuffer* buffer, std::string_view name, Picoseconds ts) {
  buffer->Push(Phase::kInstant, ts, 0, buffer->Intern(name), 0);
}

void EmitComplete(TraceBuffer* buffer, std::string_view name, Picoseconds ts, Picoseconds dur) {
  buffer->Push(Phase::kComplete, ts, dur, buffer->Intern(name), 0);
}

void EmitCounter(TraceBuffer* buffer, std::string_view name, Picoseconds ts, u64 value) {
  buffer->Push(Phase::kCounter, ts, 0, buffer->Intern(name), value);
}

u64 NextFlightId(TraceBuffer* buffer) { return buffer->NextFlightId(); }

TraceSession::TraceSession(Config config) : config_(config) { EnsureShards(1); }

TraceSession::~TraceSession() {
  if (g_current_session == this) {
    Detach();
  }
}

TraceSession* TraceSession::Current() { return g_current_session; }

void TraceSession::Install() {
  g_current_session = this;
  BindThreadToShard(this, 0);
}

void TraceSession::Detach() {
  g_current_session = nullptr;
  BindThreadToShard(nullptr, 0);
}

void TraceSession::EnsureShards(usize n) {
  while (shards_.size() < n) {
    shards_.push_back(std::make_unique<TraceBuffer>(shards_.size(), config_.shard_capacity));
  }
}

u64 TraceSession::dropped() const {
  u64 total = 0;
  for (const auto& shard : shards_) {
    total += shard->dropped();
  }
  return total;
}

void BindThreadToShard(TraceSession* session, usize shard) {
#ifdef EMU_TRACE
  tls_trace_buffer = session != nullptr ? session->shard(shard) : nullptr;
#else
  (void)session;
  (void)shard;
#endif
}

void BindThreadToBuffer(TraceBuffer* buffer) {
#ifdef EMU_TRACE
  tls_trace_buffer = buffer;
#else
  (void)buffer;
#endif
}

std::vector<MergedEvent> TraceSession::MergedEvents() const {
  std::vector<MergedEvent> merged;
  for (const auto& shard : shards_) {
    for (const TraceEvent& event : shard->Events()) {
      MergedEvent out;
      out.ts = event.ts;
      out.dur = event.dur;
      out.id = event.id;
      out.seq = event.seq;
      out.shard = shard->shard();
      out.name = shard->Name(event.name);
      out.phase = event.phase;
      merged.push_back(out);
    }
  }
  std::sort(merged.begin(), merged.end(), [](const MergedEvent& a, const MergedEvent& b) {
    return std::tie(a.ts, a.shard, a.seq) < std::tie(b.ts, b.shard, b.seq);
  });
  return merged;
}

std::string TraceSession::ExportChromeJson() const {
  std::string out;
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  const auto comma = [&] {
    if (!first) {
      out += ",\n";
    }
    first = false;
  };
  for (usize i = 0; i < shards_.size(); ++i) {
    comma();
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":0,\"tid\":%llu,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"shard%llu\"}}",
                  static_cast<unsigned long long>(i), static_cast<unsigned long long>(i));
    out += buf;
  }
  for (const MergedEvent& event : MergedEvents()) {
    comma();
    char buf[48];
    switch (event.phase) {
      case Phase::kComplete:
        out += "{\"ph\":\"X\",\"pid\":0,\"tid\":";
        out += std::to_string(event.shard);
        out += ",\"ts\":";
        AppendMicros(out, event.ts);
        out += ",\"dur\":";
        AppendMicros(out, event.dur);
        out += ",\"name\":";
        AppendJsonString(out, event.name);
        out += '}';
        break;
      case Phase::kAsyncBegin:
      case Phase::kAsyncEnd:
        out += event.phase == Phase::kAsyncBegin ? "{\"ph\":\"b\"" : "{\"ph\":\"e\"";
        out += ",\"cat\":\"pkt\",\"id\":\"0x";
        std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(event.id));
        out += buf;
        out += "\",\"pid\":0,\"tid\":";
        out += std::to_string(event.shard);
        out += ",\"ts\":";
        AppendMicros(out, event.ts);
        out += ",\"name\":";
        AppendJsonString(out, event.name);
        out += '}';
        break;
      case Phase::kInstant:
        out += "{\"ph\":\"i\",\"pid\":0,\"tid\":";
        out += std::to_string(event.shard);
        out += ",\"ts\":";
        AppendMicros(out, event.ts);
        out += ",\"s\":\"t\",\"name\":";
        AppendJsonString(out, event.name);
        out += '}';
        break;
      case Phase::kCounter:
        out += "{\"ph\":\"C\",\"pid\":0,\"tid\":";
        out += std::to_string(event.shard);
        out += ",\"ts\":";
        AppendMicros(out, event.ts);
        out += ",\"name\":";
        AppendJsonString(out, event.name);
        out += ",\"args\":{\"value\":";
        out += std::to_string(event.id);
        out += "}}";
        break;
    }
  }
  out += "\n]}\n";
  return out;
}

bool TraceSession::WriteChromeJson(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    return false;
  }
  const std::string json = ExportChromeJson();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(file);
}

// ---------------------------------------------------------------------------
// Minimal JSON parser + structural checks for the exported trace.

namespace {

class JsonCursor {
 public:
  JsonCursor(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool Fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

  bool Peek(char& c) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    c = text_[pos_];
    return true;
  }

  bool Consume(char expected) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != expected) {
      return Fail(std::string("expected '") + expected + "'");
    }
    ++pos_;
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Fail("dangling escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            if (out != nullptr) out->push_back(esc);
            break;
          case 'u':
            if (pos_ + 4 > text_.size()) {
              return Fail("short \\u escape");
            }
            pos_ += 4;
            break;
          default:
            return Fail("bad escape");
        }
        continue;
      }
      if (out != nullptr) {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber() {
    SkipWs();
    const usize start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (text_[start] == '-' && pos_ == start + 1)) {
      return Fail("expected number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const usize frac = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == frac) {
        return Fail("empty fraction");
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const usize exp = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == exp) {
        return Fail("empty exponent");
      }
    }
    return true;
  }

  // Parses any value. When `event_keys` is non-null and the value is an
  // object, records which of ph/name/ts/dur it contained.
  struct EventShape {
    std::string ph;
    bool has_name = false;
    bool has_ts = false;
  };

  bool ParseValue(EventShape* shape) {
    char c = 0;
    if (!Peek(c)) {
      return Fail("unexpected end of input");
    }
    switch (c) {
      case '{':
        return ParseObject(shape);
      case '[':
        return ParseArray(nullptr);
      case '"':
        return ParseString(nullptr);
      case 't':
        return ConsumeWord("true");
      case 'f':
        return ConsumeWord("false");
      case 'n':
        return ConsumeWord("null");
      default:
        return ParseNumber();
    }
  }

  bool ParseObject(EventShape* shape) {
    if (!Consume('{')) {
      return false;
    }
    char c = 0;
    if (Peek(c) && c == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      if (!ParseString(&key) || !Consume(':')) {
        return false;
      }
      if (shape != nullptr && key == "ph") {
        std::string ph;
        if (!ParseString(&ph)) {
          return Fail("\"ph\" must be a string");
        }
        shape->ph = ph;
      } else if (shape != nullptr && key == "name") {
        if (!ParseString(nullptr)) {
          return Fail("\"name\" must be a string");
        }
        shape->has_name = true;
      } else if (shape != nullptr && (key == "ts" || key == "dur")) {
        if (!ParseNumber()) {
          return Fail("\"" + key + "\" must be a number");
        }
        if (key == "ts") {
          shape->has_ts = true;
        }
      } else {
        if (!ParseValue(nullptr)) {
          return false;
        }
      }
      if (!Peek(c)) {
        return Fail("unterminated object");
      }
      if (c == ',') {
        ++pos_;
        continue;
      }
      return Consume('}');
    }
  }

  // Parses an array; when `events` is true, each element must be an object
  // that passes the trace_event shape check.
  bool ParseArray(bool* events) {
    if (!Consume('[')) {
      return false;
    }
    char c = 0;
    if (Peek(c) && c == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (events != nullptr) {
        EventShape shape;
        if (!ParseObject(&shape)) {
          return false;
        }
        if (shape.ph.empty()) {
          return Fail("trace event missing \"ph\"");
        }
        if (shape.ph != "M") {
          if (!shape.has_name) {
            return Fail("trace event missing \"name\"");
          }
          if (!shape.has_ts) {
            return Fail("trace event missing \"ts\"");
          }
        }
      } else if (!ParseValue(nullptr)) {
        return false;
      }
      if (!Peek(c)) {
        return Fail("unterminated array");
      }
      if (c == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  bool ConsumeWord(const char* word) {
    SkipWs();
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail(std::string("expected '") + word + "'");
      }
      ++pos_;
    }
    return true;
  }

 private:
  const std::string& text_;
  std::string* error_;
  usize pos_ = 0;
};

}  // namespace

bool ValidateChromeTraceJson(const std::string& text, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  JsonCursor cursor(text, error);
  if (!cursor.Consume('{')) {
    return false;
  }
  bool saw_events = false;
  char c = 0;
  if (cursor.Peek(c) && c == '}') {
    return cursor.Fail("top-level object has no \"traceEvents\"");
  }
  for (;;) {
    std::string key;
    if (!cursor.ParseString(&key) || !cursor.Consume(':')) {
      return false;
    }
    if (key == "traceEvents") {
      bool want_events = true;
      if (!cursor.ParseArray(&want_events)) {
        return false;
      }
      saw_events = true;
    } else if (!cursor.ParseValue(nullptr)) {
      return false;
    }
    if (!cursor.Peek(c)) {
      return cursor.Fail("unterminated top-level object");
    }
    if (c == ',') {
      cursor.Consume(',');
      continue;
    }
    break;
  }
  if (!cursor.Consume('}')) {
    return false;
  }
  if (!cursor.AtEnd()) {
    return cursor.Fail("trailing content after top-level object");
  }
  if (!saw_events) {
    return cursor.Fail("missing \"traceEvents\" array");
  }
  return true;
}

}  // namespace emu::obs
