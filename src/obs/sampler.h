// MetricsSampler (emu-scope): periodic snapshots of a MetricsRegistry as an
// in-run timeseries.
//
// Each Sample(now) records the registry's full snapshot (histograms expand
// to their scalar views) and, when a trace buffer is bound to the calling
// thread, emits one counter ("C") trace event per metric so the series plots
// directly under the Perfetto timeline.
//
// Scheduling is bounded up front: SchedulePeriodic places fixed-time sample
// events from `interval` through `until` on the event scheduler, rather than
// self-rescheduling (EventScheduler::Run drains until empty, so an
// open-ended periodic event would never let the run terminate).
#ifndef SRC_OBS_SAMPLER_H_
#define SRC_OBS_SAMPLER_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace emu {

class EventScheduler;
class MetricsRegistry;

namespace obs {
class TimeSeriesRecorder;
}  // namespace obs

class MetricsSampler {
 public:
  struct Row {
    Picoseconds ts = 0;
    std::vector<std::pair<std::string, u64>> values;
  };

  MetricsSampler(const MetricsRegistry& registry, Picoseconds interval)
      : registry_(registry), interval_(interval) {}

  Picoseconds interval() const { return interval_; }

  // Snapshots the registry at `now` and traces each value as a counter
  // event when tracing is attached.
  void Sample(Picoseconds now);

  // Schedules Sample at interval, 2*interval, ... up to and including
  // `until` (absolute time).
  void SchedulePeriodic(EventScheduler& scheduler, Picoseconds until);

  const std::vector<Row>& rows() const { return rows_; }

  // Feeds every Sample into a bounded recorder (emu-pulse; nullptr
  // detaches). The recorder must outlive the attachment; it downsamples
  // independently, so the sampler's own unbounded rows() are unaffected.
  void AttachRecorder(obs::TimeSeriesRecorder* recorder) { recorder_ = recorder; }

  // "ts_ps,name,value" lines, one per sampled metric.
  std::string Csv() const;

 private:
  const MetricsRegistry& registry_;
  Picoseconds interval_;
  std::vector<Row> rows_;
  obs::TimeSeriesRecorder* recorder_ = nullptr;
};

}  // namespace emu

#endif  // SRC_OBS_SAMPLER_H_
