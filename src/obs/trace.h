// TraceSession (emu-scope): bounded, shard-safe, cycle-timestamped event
// capture exported as Chrome/Perfetto `trace_event` JSON.
//
// Event model
//   - complete spans ("X"): a named interval on a shard track (quiescent
//     fast-forward jumps, cpu.deliver service work, ...).
//   - async spans ("b"/"e", cat "pkt"): packet flight segments, grouped by
//     the frame's trace id so Perfetto renders a per-packet waterfall across
//     link transit, FIFO residency and service stages.
//   - instants ("i"): point events (fault firings, CASP direction packets).
//   - counters ("C"): MetricsSampler snapshots as in-run timeseries.
//
// Determinism rules
//   - one TraceBuffer per shard; a buffer is only ever touched by the thread
//     currently executing that shard (enforced by TLS binding, see
//     trace_hooks.h). Each buffer keeps its own intern table, sequence
//     counter and flight-id counter.
//   - export merges all shards ordered by (ts, shard, seq). Within a shard,
//     seq is push order, which conservative-PDES makes identical for any
//     thread count; across shards the (ts, shard) pair is a total order. The
//     result: threads=N produces a byte-identical trace to threads=1.
//   - timestamps are formatted by integer math only (ps split into integer
//     microseconds + 6-digit fraction), never through doubles.
//
// Overhead budget: a detached hook is one TLS load + branch; an attached push
// is an intern-map lookup plus a 48-byte ring store. The ring keeps the most
// recent `shard_capacity` events and counts what it overwrote.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/types.h"
#include "src/obs/trace_hooks.h"

namespace emu::obs {

enum class Phase : u8 {
  kAsyncBegin,  // "b"
  kAsyncEnd,    // "e"
  kInstant,     // "i"
  kComplete,    // "X"
  kCounter,     // "C"
};

struct TraceEvent {
  Picoseconds ts = 0;
  Picoseconds dur = 0;  // kComplete only
  u64 id = 0;           // flight id (async) or sampled value (counter)
  u64 seq = 0;          // per-shard push order
  u32 name = 0;         // shard-local intern index
  Phase phase = Phase::kInstant;
};

// Per-shard bounded ring of events. Never touched concurrently: the thread
// running the shard's epoch is the only writer, and export runs after the
// simulation quiesces.
class TraceBuffer {
 public:
  TraceBuffer(usize shard, usize capacity);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  usize shard() const { return shard_; }
  usize capacity() const { return capacity_; }

  u32 Intern(std::string_view name);
  std::string_view Name(u32 id) const { return names_[id]; }

  void Push(Phase phase, Picoseconds ts, Picoseconds dur, u32 name, u64 id);

  u64 NextFlightId() { return (static_cast<u64>(shard_ + 1) << 40) | ++flight_counter_; }

  usize size() const { return ring_.size(); }
  u64 total_pushed() const { return total_pushed_; }
  // Events overwritten because the ring was full.
  u64 dropped() const { return total_pushed_ - ring_.size(); }

  // Retained events, oldest first (push order).
  std::vector<TraceEvent> Events() const;

 private:
  usize shard_;
  usize capacity_;
  std::vector<TraceEvent> ring_;
  usize head_ = 0;  // next overwrite position once the ring is full
  u64 total_pushed_ = 0;
  u64 seq_ = 0;
  u64 flight_counter_ = 0;
  std::vector<std::string> names_;
  std::unordered_map<std::string, u32> intern_;
};

// A shard event resolved against its intern table, in merged order.
struct MergedEvent {
  Picoseconds ts = 0;
  Picoseconds dur = 0;
  u64 id = 0;
  u64 seq = 0;
  usize shard = 0;
  std::string_view name;
  Phase phase = Phase::kInstant;
};

class TraceSession {
 public:
  struct Config {
    usize shard_capacity = usize{1} << 18;
  };

  TraceSession() : TraceSession(Config{}) {}
  explicit TraceSession(Config config);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // The installed session, or nullptr when tracing is detached.
  static TraceSession* Current();

  // Makes this the current session and binds the calling thread to shard 0
  // (single-simulator runs trace onto shard 0 without further setup).
  void Install();

  // Clears the current session and the calling thread's buffer binding.
  static void Detach();

  // Grows the shard set to at least `n` buffers. Single-threaded by
  // contract: the parallel runner calls it before workers start.
  void EnsureShards(usize n);

  usize shard_count() const { return shards_.size(); }
  TraceBuffer* shard(usize i) { return i < shards_.size() ? shards_[i].get() : nullptr; }
  const TraceBuffer* shard(usize i) const {
    return i < shards_.size() ? shards_[i].get() : nullptr;
  }

  // Total events overwritten across all shards.
  u64 dropped() const;

  // All retained events merged by (ts, shard, seq) — the canonical order.
  std::vector<MergedEvent> MergedEvents() const;

  // Chrome trace_event JSON object ({"traceEvents": [...]}); opens directly
  // in ui.perfetto.dev. Byte-identical for identical event streams.
  std::string ExportChromeJson() const;

  // Writes ExportChromeJson() to `path`; false on I/O failure.
  bool WriteChromeJson(const std::string& path) const;

 private:
  Config config_;
  std::vector<std::unique_ptr<TraceBuffer>> shards_;
};

// Binds `shard` of `session` to the calling thread (nullptr session unbinds).
// The parallel runner wraps each shard epoch in a bind/restore pair.
void BindThreadToShard(TraceSession* session, usize shard);

// Raw rebind, for restoring a saved ActiveBuffer() after a scoped bind.
void BindThreadToBuffer(TraceBuffer* buffer);

// Minimal structural validator for the exported JSON: checks that the text
// is well-formed JSON, the top level is an object with a "traceEvents"
// array, and every event is an object with a string "ph", a string "name"
// (or metadata "M"), and a numeric "ts" where required. Serves as the
// schema check the tests gate on.
bool ValidateChromeTraceJson(const std::string& text, std::string* error);

}  // namespace emu::obs

#endif  // SRC_OBS_TRACE_H_
