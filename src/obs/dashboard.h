// Soak dashboard (emu-pulse): a self-contained, single-file HTML report.
//
// No external dependencies by design — no CDN scripts, no fonts, no fetch:
// the series JSON is embedded in the page and a small inline script renders
// SVG polyline charts, so the artifact opens anywhere (CI artifact viewer,
// file:// on a laptop) and never goes stale when a CDN does.
//
// Chart selection is caller-driven: each ChartSpec names the registry
// metrics it plots (exact names, including histogram derived views like
// "chain.source.rtt_us.p99"). `rate` charts plot the per-second derivative
// of cumulative counters (throughput from a monotone counter series).
#ifndef SRC_OBS_DASHBOARD_H_
#define SRC_OBS_DASHBOARD_H_

#include <string>
#include <vector>

#include "src/obs/slo.h"
#include "src/obs/timeseries.h"

namespace emu::obs {

struct ChartSpec {
  std::string title;
  std::string unit;                  // y-axis label, e.g. "us", "frames/s"
  std::vector<std::string> metrics;  // exact series names to plot
  bool rate = false;                 // plot d(value)/dt per second instead of raw
};

struct DashboardOptions {
  std::string title = "emu soak dashboard";
  std::string subtitle;  // e.g. "chain_soak seed=1 threads=4"
};

// Renders the dashboard: header, SLO result table (omitted when `slo` has
// no checks), one SVG chart per spec (specs whose metrics have no points
// render an empty-state note instead of a blank chart).
std::string RenderSoakDashboardHtml(const DashboardOptions& options,
                                    const TimeSeriesRecorder& recorder,
                                    const std::vector<ChartSpec>& charts, const SloReport& slo);

bool WriteSoakDashboardHtml(const std::string& path, const DashboardOptions& options,
                            const TimeSeriesRecorder& recorder,
                            const std::vector<ChartSpec>& charts, const SloReport& slo);

}  // namespace emu::obs

#endif  // SRC_OBS_DASHBOARD_H_
