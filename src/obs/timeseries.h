// TimeSeriesRecorder (emu-pulse): a bounded store of MetricsSampler
// snapshot rows with uniform downsampling.
//
// A soak run can sample for millions of emulated microseconds; an unbounded
// row vector would grow without limit and the dashboard does not need more
// than a few thousand points per series anyway. The recorder keeps at most
// `capacity` rows: when full it compacts by dropping every other retained
// row and doubling its acceptance stride, so the retained rows always form
// a uniform 1-in-stride grid over the offered samples — the classic
// "halve and double" bounded-timeseries scheme. Totals are not lost: each
// retained row is a full registry snapshot (counters are cumulative), so
// rates computed between retained rows stay exact.
//
// Timestamps are emulated picoseconds (deterministic). The recorder itself
// holds no wall-clock data; it is "pulse" because its artifacts (series
// JSON, dashboard HTML) are separate from the deterministic trace stream.
#ifndef SRC_OBS_TIMESERIES_H_
#define SRC_OBS_TIMESERIES_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace emu::obs {

class TimeSeriesRecorder {
 public:
  struct Row {
    Picoseconds ts = 0;
    std::vector<std::pair<std::string, u64>> values;
  };

  explicit TimeSeriesRecorder(usize capacity = 4096)
      : capacity_(capacity < 8 ? 8 : capacity) {}

  // Offers one snapshot row; accepted when it falls on the current stride.
  void Record(Picoseconds ts, const std::vector<std::pair<std::string, u64>>& values);

  const std::vector<Row>& rows() const { return rows_; }
  usize capacity() const { return capacity_; }
  usize stride() const { return stride_; }  // 1 until the first compaction
  u64 offered() const { return offered_; }
  u64 dropped() const { return dropped_; }

  // {"stride":s,"offered":n,"dropped":d,"series":[{"name":...,
  //  "points":[[ts_ps,value],...]},...]} — per-metric series pivoted from
  //  the retained rows, in first-seen order.
  std::string SeriesJson() const;

  bool WriteSeriesJson(const std::string& path) const;

 private:
  void Compact();

  usize capacity_;
  usize stride_ = 1;
  u64 offered_ = 0;
  u64 dropped_ = 0;
  std::vector<Row> rows_;
};

}  // namespace emu::obs

#endif  // SRC_OBS_TIMESERIES_H_
