// Input arbiter: round-robin merge of the four port rx FIFOs onto the single
// datapath feeding the main logical core (Fig. 10). Transferring a frame
// occupies the arbiter for one bus word per cycle, so the bus width bounds
// aggregate throughput (the §3.6/§5.3 "wider I/O bus" point and its
// ablation).
#ifndef SRC_NETFPGA_INPUT_ARBITER_H_
#define SRC_NETFPGA_INPUT_ARBITER_H_

#include <vector>

#include "src/hdl/fifo.h"
#include "src/hdl/module.h"
#include "src/net/packet.h"
#include "src/netfpga/axis.h"

namespace emu {

class InputArbiter : public Module {
 public:
  InputArbiter(Simulator& sim, std::string name, std::vector<SyncFifo<Packet>*> inputs,
               SyncFifo<Packet>& output, usize bus_bytes);

  u64 forwarded() const { return forwarded_; }

  HwProcess MakeProcess();

  // Declares the arbiter process's IO (emu-lint): pops every port rx FIFO,
  // pushes the core datapath.
  void DeclareIo(usize process_index) {
    elab::IoDecl decl(sim().catalog(), process_index);
    for (SyncFifo<Packet>* input : inputs_) {
      decl.Pops(input);
    }
    decl.Pushes(&output_);
  }

 private:
  std::vector<SyncFifo<Packet>*> inputs_;
  SyncFifo<Packet>& output_;
  usize bus_bytes_;
  usize next_input_ = 0;
  u64 forwarded_ = 0;
};

}  // namespace emu

#endif  // SRC_NETFPGA_INPUT_ARBITER_H_
