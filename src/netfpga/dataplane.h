// NetFpgaData and the NetFPGA utility API (Fig. 6).
//
// Services see packets as NetFpgaData records: the frame (tdata) plus the
// tuser metadata the pipeline carries. The static NetFpga functions mirror
// the paper's utility API verbatim (Get_Frame / Set_Frame / Read_Input_Port /
// Set_Output_Port plus Broadcast, Fig. 2 line 6/8) so service code reads like
// the paper's C#.
#ifndef SRC_NETFPGA_DATAPLANE_H_
#define SRC_NETFPGA_DATAPLANE_H_

#include <vector>

#include "src/net/packet.h"

namespace emu {

struct NetFpgaData {
  Packet tdata;
  // True once the service chose an output (dropping is expressed by never
  // setting an output port, as the Fig. 2 comment explains).
  bool output_valid = false;
};

class NetFpga {
 public:
  NetFpga() = delete;

  // Extracts the frame from NetFpgaData into a byte array (Fig. 6).
  static void GetFrame(const NetFpgaData& src, std::vector<u8>& dst);

  // Moves the contents of a byte array into the frame field (Fig. 6).
  static void SetFrame(const std::vector<u8>& src, NetFpgaData& dst);

  // Reads the port on which the frame was received (Fig. 6).
  static u32 ReadInputPort(const NetFpgaData& dataplane);

  // Sets the output port to a specific value (Fig. 6).
  static void SetOutputPort(NetFpgaData& dataplane, u64 port);

  // Sets the output mask to all ports except the input (Fig. 2 line 8).
  static void Broadcast(NetFpgaData& dataplane);

  // Raw one-hot mask variant, for services that multicast.
  static void SetOutputMask(NetFpgaData& dataplane, u8 mask);

  // Send back out of the port the frame arrived on (request/response
  // services: ICMP echo, DNS, Memcached).
  static void SendBackToSource(NetFpgaData& dataplane);
};

}  // namespace emu

#endif  // SRC_NETFPGA_DATAPLANE_H_
