#include "src/netfpga/port.h"

#include "src/obs/trace_hooks.h"

namespace emu {

Cycle SerializationCycles(usize frame_bytes, const Simulator& sim) {
  const Picoseconds ps = SerializationPs(frame_bytes);
  return static_cast<Cycle>((ps + sim.cycle_period_ps() - 1) / sim.cycle_period_ps());
}

Picoseconds SerializationPs(usize frame_bytes) {
  const u64 bits = static_cast<u64>(frame_bytes + kWireOverheadBytes) * 8;
  return static_cast<Picoseconds>(bits * kPicosPerSecond / kTenGigBitsPerSecond);
}

TenGigPort::TenGigPort(Simulator& sim, std::string name, u8 index, usize rx_fifo_depth)
    : Module(sim, std::move(name)),
      index_(index),
      rx_fifo_(sim, this->name() + ".rx_fifo", rx_fifo_depth, 256) {
  // 10G MAC + attachment logic; shared infrastructure outside the "main
  // logical core" the tables report, but tracked for completeness.
  AddResources(ResourceUsage{950, 1200, 2});
}

Cycle TenGigPort::Deliver(Packet frame, Cycle earliest) {
  const Picoseconds cycle_ps = sim().cycle_period_ps();
  const Picoseconds earliest_ps = static_cast<Picoseconds>(earliest) * cycle_ps;
  const Picoseconds start_ps = std::max({earliest_ps, wire_busy_ps_, sim().NowPs()});
  const Picoseconds wire_done_ps = start_ps + SerializationPs(frame.size());
  wire_busy_ps_ = wire_done_ps;  // back-to-back frames respect exact line rate
  // The frame reaches the fabric only after the MAC/PHY pipeline.
  const Picoseconds fabric_ps = wire_done_ps + kMacPhyLatencyPs;
  const Cycle complete = static_cast<Cycle>((fabric_ps + cycle_ps - 1) / cycle_ps);
  frame.set_src_port(index_);
  frame.set_ingress_time(start_ps);
  // Flight recorder ingress point: the port is where a frame enters the
  // traced world, so it assigns the flight id (unless an upstream stage —
  // a loadgen or link — already did) and opens the whole-flight span.
  if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
    if (frame.trace_id() == 0) {
      frame.set_trace_id(obs::NextFlightId(tb));
    }
    obs::EmitAsyncBegin(tb, "pkt.flight", start_ps, frame.trace_id());
  }
  wire_.push_back(WireFrame{std::move(frame), complete});
  // The wire deque is not a SyncFifo, so announce the mutation ourselves: a
  // parked ingress process must re-evaluate its wait.
  sim().NotifyWake();
  return complete;
}

HwProcess TenGigPort::MakeIngressProcess() {
  for (;;) {
    // Park until something is on the wire, then sleep out its serialization
    // time; completion times are monotonic per port, so the front frame is
    // always the next to land.
    co_await WaitUntil([this] { return !wire_.empty(); });
    if (wire_.front().complete_at > sim().now()) {
      co_await PauseFor(wire_.front().complete_at - sim().now());
    }
    while (!wire_.empty() && wire_.front().complete_at <= sim().now()) {
      ++rx_frames_;
      // Tail-drop point: a full rx FIFO loses the frame, and the drop is
      // deliberate — consult CanPush so emu-check sees observed backpressure.
      if (rx_fifo_.CanPush()) {
        rx_fifo_.Push(std::move(wire_.front().frame));
      } else {
        ++rx_drops_;
      }
      wire_.pop_front();
    }
    co_await Pause();
  }
}

}  // namespace emu
