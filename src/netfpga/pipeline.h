// The NetFPGA SUME reference pipeline (Fig. 10), with a Service plugged into
// the main-logical-core slot.
//
// Emu "capitalizes on this generic NetFPGA design: we target only the main
// logical core and build upon all other components" (§5.1) — accordingly, the
// pipeline here is fixed infrastructure (ports, input arbiter, output
// queues) and the Service supplies only the core.
#ifndef SRC_NETFPGA_PIPELINE_H_
#define SRC_NETFPGA_PIPELINE_H_

#include <memory>
#include <vector>

#include "src/core/service.h"
#include "src/netfpga/input_arbiter.h"
#include "src/netfpga/output_queues.h"
#include "src/netfpga/port.h"

namespace emu {

struct PipelineConfig {
  usize bus_bytes = kDefaultBusBytes;  // 256-bit SUME datapath
  usize rx_fifo_depth = 64;
  usize core_fifo_depth = 64;
  usize tx_fifo_depth = 512;
};

class NetFpgaPipeline {
 public:
  NetFpgaPipeline(Simulator& sim, Service& service, PipelineConfig config = {});

  NetFpgaPipeline(const NetFpgaPipeline&) = delete;
  NetFpgaPipeline& operator=(const NetFpgaPipeline&) = delete;

  Simulator& sim() { return sim_; }
  Service& service() { return service_; }
  const PipelineConfig& config() const { return config_; }

  // Schedules a frame's wire arrival on `port` no earlier than `earliest`;
  // returns the cycle it is fully in the fabric.
  Cycle InjectFrame(u8 port, Packet frame, Cycle earliest = 0);

  void SetEgressSink(OutputQueues::EgressSink sink) { output_queues_->SetSink(std::move(sink)); }

  // --- Statistics ---
  u64 injected() const { return injected_; }
  u64 rx_drops() const;
  u64 egressed() const { return output_queues_->total_tx_frames(); }
  u64 tx_drops() const { return output_queues_->tx_drops(); }

  // Resource bill of the main logical core only (service + core FIFOs),
  // which is what Table 3/5 report.
  ResourceUsage CoreResources() const;
  // Resource bill including the shared pipeline infrastructure.
  ResourceUsage TotalResources() const;

  TenGigPort& port(u8 index) { return *ports_[index]; }

 private:
  Simulator& sim_;
  Service& service_;
  PipelineConfig config_;
  std::vector<std::unique_ptr<TenGigPort>> ports_;
  std::unique_ptr<SyncFifo<Packet>> core_in_;
  std::unique_ptr<SyncFifo<Packet>> core_out_;
  std::unique_ptr<InputArbiter> arbiter_;
  std::unique_ptr<OutputQueues> output_queues_;
  u64 injected_ = 0;
};

}  // namespace emu

#endif  // SRC_NETFPGA_PIPELINE_H_
