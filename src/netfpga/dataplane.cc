#include "src/netfpga/dataplane.h"

#include <cassert>

namespace emu {

void NetFpga::GetFrame(const NetFpgaData& src, std::vector<u8>& dst) {
  const auto bytes = src.tdata.bytes();
  dst.assign(bytes.begin(), bytes.end());
}

void NetFpga::SetFrame(const std::vector<u8>& src, NetFpgaData& dst) {
  dst.tdata.Resize(src.size());
  auto out = dst.tdata.bytes();
  for (usize i = 0; i < src.size(); ++i) {
    out[i] = src[i];
  }
}

u32 NetFpga::ReadInputPort(const NetFpgaData& dataplane) { return dataplane.tdata.src_port(); }

void NetFpga::SetOutputPort(NetFpgaData& dataplane, u64 port) {
  assert(port < kNetFpgaPortCount);
  dataplane.tdata.set_dst_port_mask(static_cast<u8>(1u << port));
  dataplane.output_valid = true;
}

void NetFpga::Broadcast(NetFpgaData& dataplane) {
  const u8 in = dataplane.tdata.src_port();
  dataplane.tdata.set_dst_port_mask(kAllPortsMask & static_cast<u8>(~(1u << in)));
  dataplane.output_valid = true;
}

void NetFpga::SetOutputMask(NetFpgaData& dataplane, u8 mask) {
  dataplane.tdata.set_dst_port_mask(mask & kAllPortsMask);
  dataplane.output_valid = mask != 0;
}

void NetFpga::SendBackToSource(NetFpgaData& dataplane) {
  SetOutputPort(dataplane, dataplane.tdata.src_port());
}

}  // namespace emu
