#include "src/netfpga/output_queues.h"

#include <algorithm>

#include "src/netfpga/axis.h"

namespace emu {

OutputQueues::OutputQueues(Simulator& sim, std::string name, SyncFifo<Packet>& core_out,
                           usize tx_fifo_depth, usize bus_bytes)
    : Module(sim, std::move(name)),
      core_out_(core_out),
      bus_bytes_(bus_bytes),
      tx_frames_(kNetFpgaPortCount, 0) {
  for (usize port = 0; port < kNetFpgaPortCount; ++port) {
    tx_fifos_.push_back(std::make_unique<SyncFifo<Packet>>(
        sim, this->name() + ".tx_fifo" + std::to_string(port), tx_fifo_depth, bus_bytes * 8));
    AddResources(tx_fifos_.back()->resources());
  }
  AddResources(ResourceUsage{520, 410, 0});  // mask decode + per-port muxing
}

u64 OutputQueues::total_tx_frames() const {
  u64 total = 0;
  for (u64 count : tx_frames_) {
    total += count;
  }
  return total;
}

HwProcess OutputQueues::MakeFanoutProcess() {
  for (;;) {
    co_await WaitUntil([this] { return !core_out_.Empty(); });
    Packet frame = core_out_.Pop();
    frame.set_core_egress_cycle(sim().now());
    const usize words = WordsForBytes(frame.size(), bus_bytes_);
    const u8 mask = frame.dst_port_mask();
    for (u8 port = 0; port < kNetFpgaPortCount; ++port) {
      if ((mask >> port) & 1u) {
        // Deliberate tail-drop: check CanPush so the drop is observed
        // backpressure, not an emu-check LOSTBACKPRESSURE hazard.
        if (tx_fifos_[port]->CanPush()) {
          tx_fifos_[port]->Push(frame);
        } else {
          ++tx_drops_;
        }
      }
    }
    co_await PauseFor(words);
  }
}

HwProcess OutputQueues::MakeDrainProcess(u8 port) {
  SyncFifo<Packet>& fifo = *tx_fifos_[port];
  // Egress wire occupancy in picoseconds: pacing at the exact 10G rate
  // rather than whole fabric cycles (which would shave ~4% off line rate).
  Picoseconds wire_busy_ps = 0;
  const Picoseconds cycle_ps = sim().cycle_period_ps();
  for (;;) {
    co_await WaitUntil([&fifo] { return !fifo.Empty(); });
    Packet frame = fifo.Pop();
    wire_busy_ps = std::max(wire_busy_ps, sim().NowPs()) + SerializationPs(frame.size());
    const Picoseconds wait_ps = wire_busy_ps - sim().NowPs();
    co_await PauseFor(static_cast<Cycle>(wait_ps > 0 ? wait_ps / cycle_ps : 0));
    frame.set_egress_time(wire_busy_ps + kMacPhyLatencyPs);
    ++tx_frames_[port];
    if (sink_) {
      sink_(port, std::move(frame));
    }
  }
}

}  // namespace emu
