#include "src/netfpga/pipeline.h"

namespace emu {

NetFpgaPipeline::NetFpgaPipeline(Simulator& sim, Service& service, PipelineConfig config)
    : sim_(sim), service_(service), config_(config) {
  // Pack every coroutine frame created while building the pipeline (port
  // ingress, arbiter, service stages, output queues) into the simulator's
  // bump arena: contiguous frames for the per-edge sweep, freed wholesale
  // when the simulator dies.
  CoroFrameArenaScope frame_scope(sim.frame_arena());
  std::vector<SyncFifo<Packet>*> rx_fifos;
  for (usize i = 0; i < kNetFpgaPortCount; ++i) {
    ports_.push_back(std::make_unique<TenGigPort>(
        sim, "port" + std::to_string(i), static_cast<u8>(i), config.rx_fifo_depth));
    rx_fifos.push_back(&ports_.back()->rx_fifo());
    const usize ingress =
        sim.AddProcess(ports_.back()->MakeIngressProcess(), "port" + std::to_string(i) + "_rx");
    ports_.back()->DeclareIngressIo(ingress);
  }

  core_in_ = std::make_unique<SyncFifo<Packet>>(sim, "core_in", config.core_fifo_depth,
                                                config.bus_bytes * 8);
  core_out_ = std::make_unique<SyncFifo<Packet>>(sim, "core_out", config.core_fifo_depth,
                                                 config.bus_bytes * 8);

  arbiter_ = std::make_unique<InputArbiter>(sim, "input_arbiter", std::move(rx_fifos),
                                            *core_in_, config.bus_bytes);
  arbiter_->DeclareIo(sim.AddProcess(arbiter_->MakeProcess(), "input_arbiter"));

  service_.Instantiate(sim, Dataplane{core_in_.get(), core_out_.get()});

  output_queues_ = std::make_unique<OutputQueues>(sim, "output_queues", *core_out_,
                                                  config.tx_fifo_depth, config.bus_bytes);
  output_queues_->DeclareFanoutIo(
      sim.AddProcess(output_queues_->MakeFanoutProcess(), "oq_fanout"));
  for (u8 port = 0; port < kNetFpgaPortCount; ++port) {
    output_queues_->DeclareDrainIo(
        port, sim.AddProcess(output_queues_->MakeDrainProcess(port),
                             "oq_drain" + std::to_string(port)));
  }
}

Cycle NetFpgaPipeline::InjectFrame(u8 port, Packet frame, Cycle earliest) {
  ++injected_;
  return ports_[port]->Deliver(std::move(frame), earliest);
}

u64 NetFpgaPipeline::rx_drops() const {
  u64 drops = 0;
  for (const auto& port : ports_) {
    drops += port->rx_drops();
  }
  return drops;
}

ResourceUsage NetFpgaPipeline::CoreResources() const {
  ResourceUsage usage = service_.Resources();
  usage += core_in_->resources();
  usage += core_out_->resources();
  return usage;
}

ResourceUsage NetFpgaPipeline::TotalResources() const {
  ResourceUsage usage = CoreResources();
  for (const auto& port : ports_) {
    usage += port->resources();
  }
  usage += arbiter_->resources();
  usage += output_queues_->resources();
  return usage;
}

}  // namespace emu
