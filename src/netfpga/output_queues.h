// Output queues: fan frames from the main logical core out to per-port tx
// FIFOs (honouring the one-hot destination mask, duplicating for multicast)
// and drain each tx FIFO at the port's 10G line rate (Fig. 10).
//
// Egress frames are handed to a sink callback with their egress timestamp
// already set (wire completion + MAC/PHY latency), which is the measurement
// point a DAG capture card would record.
#ifndef SRC_NETFPGA_OUTPUT_QUEUES_H_
#define SRC_NETFPGA_OUTPUT_QUEUES_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/hdl/fifo.h"
#include "src/hdl/module.h"
#include "src/net/packet.h"
#include "src/netfpga/port.h"

namespace emu {

class OutputQueues : public Module {
 public:
  using EgressSink = std::function<void(u8 port, Packet frame)>;

  OutputQueues(Simulator& sim, std::string name, SyncFifo<Packet>& core_out,
               usize tx_fifo_depth, usize bus_bytes);

  void SetSink(EgressSink sink) { sink_ = std::move(sink); }

  u64 tx_frames(u8 port) const { return tx_frames_[port]; }
  u64 tx_drops() const { return tx_drops_; }
  u64 total_tx_frames() const;

  // The fan-out process plus one drain process per port.
  HwProcess MakeFanoutProcess();
  HwProcess MakeDrainProcess(u8 port);

  // Static IO (emu-lint): fan-out pops the core datapath and pushes every tx
  // FIFO; a drain pops its tx FIFO and hands frames to the egress sink (a
  // testbench edge outside the process graph).
  void DeclareFanoutIo(usize process_index) {
    elab::IoDecl decl(sim().catalog(), process_index);
    decl.Pops(&core_out_);
    for (const auto& fifo : tx_fifos_) {
      decl.Pushes(fifo.get());
    }
  }
  void DeclareDrainIo(u8 port, usize process_index) {
    elab::IoDecl(sim().catalog(), process_index).Pops(tx_fifos_[port].get());
  }

 private:
  SyncFifo<Packet>& core_out_;
  usize bus_bytes_;
  std::vector<std::unique_ptr<SyncFifo<Packet>>> tx_fifos_;
  EgressSink sink_;
  std::vector<u64> tx_frames_;
  u64 tx_drops_ = 0;
};

}  // namespace emu

#endif  // SRC_NETFPGA_OUTPUT_QUEUES_H_
