#include "src/netfpga/axis.h"

#include <cassert>

namespace emu {

std::vector<AxisWord> PacketToAxis(const Packet& packet, usize bus_bytes) {
  assert(bus_bytes > 0 && bus_bytes <= 32);
  const auto bytes = packet.bytes();
  std::vector<AxisWord> words;
  words.reserve(WordsForBytes(bytes.size(), bus_bytes));
  usize pos = 0;
  do {
    AxisWord word;
    const usize n = std::min(bus_bytes, bytes.size() - pos);
    for (usize i = 0; i < n; ++i) {
      word.tdata.SetByte(i, bytes[pos + i]);
      word.tkeep |= u32{1} << i;
    }
    pos += n;
    word.tlast = pos >= bytes.size();
    words.push_back(word);
  } while (pos < bytes.size());
  return words;
}

Expected<Packet> AxisToPacket(std::span<const AxisWord> words, usize bus_bytes) {
  assert(bus_bytes > 0 && bus_bytes <= 32);
  if (words.empty()) {
    return MalformedPacket("empty AXIS burst");
  }
  Packet packet;
  for (usize w = 0; w < words.size(); ++w) {
    const AxisWord& word = words[w];
    if (w + 1 < words.size()) {
      if (word.tlast) {
        return MalformedPacket("words after tlast");
      }
      // Every non-final word must have all bus bytes valid.
      const u32 full = bus_bytes >= 32 ? ~u32{0} : (u32{1} << bus_bytes) - 1;
      if (word.tkeep != full) {
        return MalformedPacket("non-contiguous tkeep mid-frame");
      }
    } else if (!word.tlast) {
      return MalformedPacket("missing tlast");
    }
    bool ended = false;
    for (usize i = 0; i < bus_bytes; ++i) {
      const bool valid = (word.tkeep >> i) & 1u;
      if (valid) {
        if (ended) {
          return MalformedPacket("hole in tkeep");
        }
        packet.AppendByte(word.tdata.Byte(i));
      } else {
        ended = true;
      }
    }
  }
  return packet;
}

}  // namespace emu
