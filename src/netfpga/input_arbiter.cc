#include "src/netfpga/input_arbiter.h"

namespace emu {

InputArbiter::InputArbiter(Simulator& sim, std::string name,
                           std::vector<SyncFifo<Packet>*> inputs, SyncFifo<Packet>& output,
                           usize bus_bytes)
    : Module(sim, std::move(name)),
      inputs_(std::move(inputs)),
      output_(output),
      bus_bytes_(bus_bytes) {
  // Round-robin select + word mux across the inputs.
  AddResources(ResourceUsage{420 + 40 * static_cast<u64>(inputs_.size()), 380, 1});
}

HwProcess InputArbiter::MakeProcess() {
  for (;;) {
    // Park until a grant is possible: some input has a frame and the core
    // FIFO has space. The body re-checks with the hooked CanPush() on the
    // cycle it actually pushes.
    co_await WaitUntil([this] {
      if (!output_.PollCanPush()) {
        return false;
      }
      for (const SyncFifo<Packet>* input : inputs_) {
        if (!input->Empty()) {
          return true;
        }
      }
      return false;
    });
    bool moved = false;
    for (usize scan = 0; scan < inputs_.size(); ++scan) {
      const usize i = (next_input_ + scan) % inputs_.size();
      if (!inputs_[i]->Empty() && output_.CanPush()) {
        Packet frame = inputs_[i]->Pop();
        const usize words = WordsForBytes(frame.size(), bus_bytes_);
        frame.set_core_ingress_cycle(sim().now());
        output_.Push(std::move(frame));
        ++forwarded_;
        next_input_ = i + 1;
        moved = true;
        // The transfer occupies the bus for `words` cycles.
        co_await PauseFor(words);
        break;
      }
    }
    if (!moved) {
      co_await Pause();
    }
  }
}

}  // namespace emu
