// AXI-Stream word framing for the NetFPGA datapath.
//
// The SUME reference pipeline moves frames as a stream of bus-width words
// (natively 256-bit) with a byte-valid mask (tkeep) and an end-of-frame
// marker (tlast). The pipeline model carries whole Packet objects for
// robustness, but all cycle costs are derived from this framing, and the
// conversion functions here prove the framing round-trips — they are also
// what the wide-word user types of §3.2 (extension iv) exist for.
#ifndef SRC_NETFPGA_AXIS_H_
#define SRC_NETFPGA_AXIS_H_

#include <vector>

#include "src/common/status.h"
#include "src/common/wide_word.h"
#include "src/net/packet.h"

namespace emu {

// Native SUME datapath: 256 bits.
inline constexpr usize kDefaultBusBytes = 32;

struct AxisWord {
  Word256 tdata;   // up to 256 bits used, low bytes first
  u32 tkeep = 0;   // bit i: byte i of tdata valid
  bool tlast = false;
};

// Number of bus words a frame of `bytes` occupies on a `bus_bytes`-wide bus.
constexpr usize WordsForBytes(usize bytes, usize bus_bytes) {
  return bytes == 0 ? 1 : (bytes + bus_bytes - 1) / bus_bytes;
}

// Slices the frame into bus words (bus_bytes <= 32).
std::vector<AxisWord> PacketToAxis(const Packet& packet, usize bus_bytes = kDefaultBusBytes);

// Reassembles a frame; fails on missing tlast, non-contiguous tkeep, or
// words after tlast.
Expected<Packet> AxisToPacket(std::span<const AxisWord> words,
                              usize bus_bytes = kDefaultBusBytes);

}  // namespace emu

#endif  // SRC_NETFPGA_AXIS_H_
