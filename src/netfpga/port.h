// 10GbE port model: line-rate pacing in, line-rate pacing out.
//
// Ingress: frames handed to Deliver() are serialized at 10 Gb/s (including
// preamble + inter-frame gap) before landing in the port's rx FIFO; a full
// FIFO drops the frame (counted). Egress: the output-queue drain obeys the
// same serialization time. A constant MAC+PHY latency is added on both
// directions so end-to-end numbers line up with what a DAG card would see on
// the wire.
#ifndef SRC_NETFPGA_PORT_H_
#define SRC_NETFPGA_PORT_H_

#include <deque>

#include "src/hdl/fifo.h"
#include "src/hdl/module.h"
#include "src/net/packet.h"

namespace emu {

// 10 Gb/s line, 200 MHz fabric: 50 bits per fabric cycle.
inline constexpr u64 kTenGigBitsPerSecond = 10'000'000'000ULL;
// Preamble (8) + inter-frame gap (12); frame sizes already include the FCS
// (64 B minimum frames -> 84 B on the wire -> 14.88 Mpps at 10G).
inline constexpr usize kWireOverheadBytes = 20;
// One-way MAC + PHY + SerDes latency (ps); calibrated so a minimal
// Emu request/response RTT lands near Table 4's ~1.1 us.
inline constexpr Picoseconds kMacPhyLatencyPs = 430'000;

// Serialization time of a frame on the 10G wire, in fabric cycles (rounded
// up) and in picoseconds.
Cycle SerializationCycles(usize frame_bytes, const Simulator& sim);
Picoseconds SerializationPs(usize frame_bytes);

class TenGigPort : public Module {
 public:
  TenGigPort(Simulator& sim, std::string name, u8 index, usize rx_fifo_depth);

  u8 index() const { return index_; }

  SyncFifo<Packet>& rx_fifo() { return rx_fifo_; }

  // Schedules a frame's arrival on the wire no earlier than `earliest`
  // (fabric cycles); back-to-back deliveries are spaced by serialization
  // time, i.e. a port can never exceed line rate. Returns the cycle at which
  // the frame is fully received.
  Cycle Deliver(Packet frame, Cycle earliest);

  u64 rx_frames() const { return rx_frames_; }
  u64 rx_drops() const { return rx_drops_; }

  // The port's ingress process; the pipeline registers it.
  HwProcess MakeIngressProcess();

  // Declares the ingress process's IO (emu-lint): frames arrive from the
  // wire (outside the process graph — Deliver() is the testbench edge), so
  // the process is a pure source pushing the rx FIFO.
  void DeclareIngressIo(usize process_index) {
    elab::IoDecl(sim().catalog(), process_index).Pushes(&rx_fifo_);
  }

 private:
  struct WireFrame {
    Packet frame;
    Cycle complete_at;
  };

  u8 index_;
  SyncFifo<Packet> rx_fifo_;
  std::deque<WireFrame> wire_;
  // Wire occupancy tracked in picoseconds so back-to-back frames pace at the
  // exact line rate instead of quantizing to whole fabric cycles.
  Picoseconds wire_busy_ps_ = 0;
  u64 rx_frames_ = 0;
  u64 rx_drops_ = 0;
};

}  // namespace emu

#endif  // SRC_NETFPGA_PORT_H_
