#include "src/debug/casp_machine.h"

#include <algorithm>

namespace emu {

u64 CaspMachine::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CaspMachine::set_counter(const std::string& name, u64 value) { counters_[name] = value; }

u16 CaspMachine::DeclareArray(const std::string& name, usize capacity) {
  for (usize i = 0; i < arrays_.size(); ++i) {
    if (arrays_[i].name == name) {
      return static_cast<u16>(i);
    }
  }
  TraceBuffer buffer;
  buffer.name = name;
  buffer.slots.resize(capacity, 0);
  arrays_.push_back(std::move(buffer));
  return static_cast<u16>(arrays_.size() - 1);
}

const TraceBuffer* CaspMachine::FindArray(const std::string& name) const {
  for (const TraceBuffer& buffer : arrays_) {
    if (buffer.name == name) {
      return &buffer;
    }
  }
  return nullptr;
}

TraceBuffer* CaspMachine::FindArray(const std::string& name) {
  return const_cast<TraceBuffer*>(static_cast<const CaspMachine*>(this)->FindArray(name));
}

u16 CaspMachine::BindVariable(VariableBinding binding) {
  for (usize i = 0; i < variables_.size(); ++i) {
    if (variables_[i].name == binding.name) {
      variables_[i] = std::move(binding);
      return static_cast<u16>(i);
    }
  }
  variables_.push_back(std::move(binding));
  return static_cast<u16>(variables_.size() - 1);
}

bool CaspMachine::HasVariable(const std::string& name) const {
  for (const VariableBinding& binding : variables_) {
    if (binding.name == name) {
      return true;
    }
  }
  return false;
}

Expected<u16> CaspMachine::VariableId(const std::string& name) const {
  for (usize i = 0; i < variables_.size(); ++i) {
    if (variables_[i].name == name) {
      return static_cast<u16>(i);
    }
  }
  return NotFound("no variable named " + name);
}

Expected<u64> CaspMachine::ReadVariable(const std::string& name) const {
  auto id = VariableId(name);
  if (!id.ok()) {
    return id.status();
  }
  return variables_[*id].get();
}

u16 CaspMachine::InternLabel(std::string label) {
  for (usize i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) {
      return static_cast<u16>(i);
    }
  }
  labels_.push_back(std::move(label));
  return static_cast<u16>(labels_.size() - 1);
}

u16 CaspMachine::InternCounter(const std::string& name) {
  for (usize i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) {
      return static_cast<u16>(i);
    }
  }
  counter_names_.push_back(name);
  counters_.try_emplace(name, 0);
  return static_cast<u16>(counter_names_.size() - 1);
}

void CaspMachine::InstallProcedure(const std::string& point, std::string tag,
                                   CaspProgram program) {
  RemoveProcedure(point, tag);  // re-installing replaces
  points_[point].push_back(Procedure{std::move(tag), std::move(program)});
}

void CaspMachine::RemoveProcedure(const std::string& point, const std::string& tag) {
  auto it = points_.find(point);
  if (it == points_.end()) {
    return;
  }
  auto& procedures = it->second;
  procedures.erase(std::remove_if(procedures.begin(), procedures.end(),
                                  [&](const Procedure& p) { return p.tag == tag; }),
                   procedures.end());
}

usize CaspMachine::ProcedureCount(const std::string& point) const {
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.size();
}

bool CaspMachine::Activate(const std::string& point) {
  const auto it = points_.find(point);
  if (it == points_.end()) {
    return true;
  }
  bool keep_running = true;
  for (const Procedure& procedure : it->second) {
    if (!RunProgram(procedure.program)) {
      keep_running = false;
    }
  }
  return keep_running;
}

bool CaspMachine::RunProgram(const CaspProgram& program) {
  u64 stack[kStackDepth];
  usize sp = 0;
  usize pc = 0;
  usize steps = 0;

  const auto push = [&](u64 v) {
    if (sp < kStackDepth) {
      stack[sp++] = v;
    }
  };
  const auto pop = [&]() -> u64 { return sp > 0 ? stack[--sp] : 0; };

  while (pc < program.size() && steps++ < kMaxStepsPerActivation) {
    const CaspInstruction& ins = program[pc];
    ++pc;
    switch (ins.op) {
      case CaspOp::kPushConst:
        push(ins.imm);
        break;
      case CaspOp::kPushVar:
        push(ins.arg < variables_.size() ? variables_[ins.arg].get() : 0);
        break;
      case CaspOp::kPushCounter:
        push(ins.arg < counter_names_.size() ? counters_[counter_names_[ins.arg]] : 0);
        break;
      case CaspOp::kStoreCounter:
        if (ins.arg < counter_names_.size()) {
          counters_[counter_names_[ins.arg]] = pop();
        }
        break;
      case CaspOp::kAddCounter:
        if (ins.arg < counter_names_.size()) {
          counters_[counter_names_[ins.arg]] += pop();
        }
        break;
      case CaspOp::kIncCounter:
        if (ins.arg < counter_names_.size()) {
          ++counters_[counter_names_[ins.arg]];
        }
        break;
      case CaspOp::kStoreVar:
        if (ins.arg < variables_.size() && variables_[ins.arg].set) {
          variables_[ins.arg].set(pop());
        } else {
          pop();
        }
        break;
      case CaspOp::kDup: {
        const u64 v = pop();
        push(v);
        push(v);
        break;
      }
      case CaspOp::kDrop:
        pop();
        break;
      case CaspOp::kAdd: {
        const u64 b = pop();
        push(pop() + b);
        break;
      }
      case CaspOp::kSub: {
        const u64 b = pop();
        push(pop() - b);
        break;
      }
      case CaspOp::kEq: {
        const u64 b = pop();
        push(pop() == b ? 1 : 0);
        break;
      }
      case CaspOp::kNe: {
        const u64 b = pop();
        push(pop() != b ? 1 : 0);
        break;
      }
      case CaspOp::kLt: {
        const u64 b = pop();
        push(pop() < b ? 1 : 0);
        break;
      }
      case CaspOp::kGt: {
        const u64 b = pop();
        push(pop() > b ? 1 : 0);
        break;
      }
      case CaspOp::kLe: {
        const u64 b = pop();
        push(pop() <= b ? 1 : 0);
        break;
      }
      case CaspOp::kGe: {
        const u64 b = pop();
        push(pop() >= b ? 1 : 0);
        break;
      }
      case CaspOp::kAnd: {
        const u64 b = pop();
        push((pop() != 0 && b != 0) ? 1 : 0);
        break;
      }
      case CaspOp::kOr: {
        const u64 b = pop();
        push((pop() != 0 || b != 0) ? 1 : 0);
        break;
      }
      case CaspOp::kNot:
        push(pop() == 0 ? 1 : 0);
        break;
      case CaspOp::kJumpIfZero:
        if (pop() == 0) {
          pc = static_cast<usize>(ins.imm);
        }
        break;
      case CaspOp::kJump:
        pc = static_cast<usize>(ins.imm);
        break;
      case CaspOp::kTraceAppend: {
        const u64 value = pop();
        if (ins.arg < arrays_.size()) {
          TraceBuffer& buffer = arrays_[ins.arg];
          if (!buffer.Full()) {
            // Fig. 7: log the value, bump the index, return control.
            buffer.slots[buffer.index++] = value;
          } else {
            // Fig. 7: signal buffer depletion and break the program.
            ++buffer.overflow;
            broken_ = true;
            return false;
          }
        }
        break;
      }
      case CaspOp::kEmit: {
        const u64 value = pop();
        const std::string label = ins.arg < labels_.size() ? labels_[ins.arg] : "?";
        output_.push_back(label + "=" + std::to_string(value));
        break;
      }
      case CaspOp::kEmitLabel:
        output_.push_back(ins.arg < labels_.size() ? labels_[ins.arg] : "?");
        break;
      case CaspOp::kBreak:
        broken_ = true;
        return false;
      case CaspOp::kHalt:
        return true;
    }
  }
  return true;
}

std::vector<std::string> CaspMachine::TakeOutput() {
  std::vector<std::string> out = std::move(output_);
  output_.clear();
  return out;
}

void CaspMachine::EnterFunction(const std::string& name) { call_stack_.push_back(name); }

void CaspMachine::LeaveFunction() {
  if (!call_stack_.empty()) {
    call_stack_.pop_back();
  }
}

}  // namespace emu
