// Direction-command language (Table 2).
//
// Text commands in the grammar the paper lists:
//   print X
//   break L [if X OP N]        unbreak L
//   backtrace
//   watch X [if X OP N]        unwatch X
//   count reads X | count writes X | count calls F
//   trace start X [LEN] [if X OP N] | trace stop X | trace clear X |
//   trace print X | trace full X
// are parsed into DirectionCommand records; the compiler lowers them to CASP
// programs.
#ifndef SRC_DEBUG_COMMAND_PARSER_H_
#define SRC_DEBUG_COMMAND_PARSER_H_

#include <optional>
#include <string>

#include "src/common/status.h"
#include "src/common/types.h"

namespace emu {

enum class DirectionKind {
  kPrint,
  kBreak,
  kUnbreak,
  kBacktrace,
  kWatch,
  kUnwatch,
  kCountReads,
  kCountWrites,
  kCountCalls,
  kTraceStart,
  kTraceStop,
  kTraceClear,
  kTracePrint,
  kTraceFull,
};

enum class ConditionOp { kEq, kNe, kLt, kGt, kLe, kGe };

struct Condition {
  std::string variable;
  ConditionOp op = ConditionOp::kEq;
  u64 constant = 0;
};

struct DirectionCommand {
  DirectionKind kind = DirectionKind::kPrint;
  std::string target;  // variable, label, or function name
  std::optional<Condition> condition;
  usize length = 0;  // trace buffer length (0 = default)
};

Expected<DirectionCommand> ParseDirectionCommand(std::string_view text);

// Human-readable form, for controller status replies.
std::string FormatDirectionCommand(const DirectionCommand& command);

}  // namespace emu

#endif  // SRC_DEBUG_COMMAND_PARSER_H_
