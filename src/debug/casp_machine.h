// CASP machine: the controller that hosts Emu's debugging features (§3.5).
//
// "We model the controller as a counters, arrays, and stored procedures
// (CASP) machine, which refers to the constituents of the machine's memory."
// Programs are a computationally weak stack language (bounded loops via
// bounded step budget, no recursion, no allocation) installed at named
// extension points; when a service's control flow reaches a point, the
// machine runs the procedures installed there with access to the program
// variables the service has bound (the enumerated-type scheme of §5.5).
#ifndef SRC_DEBUG_CASP_MACHINE_H_
#define SRC_DEBUG_CASP_MACHINE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace emu {

enum class CaspOp : u8 {
  kPushConst,    // push imm
  kPushVar,      // push value of bound variable arg
  kPushCounter,  // push counter arg
  kStoreCounter,  // counter[arg] = pop
  kAddCounter,    // counter[arg] += pop
  kIncCounter,    // counter[arg] += 1
  kStoreVar,      // bound variable arg = pop (requires a setter)
  kDup,
  kDrop,
  kAdd,
  kSub,
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kAnd,
  kOr,
  kNot,
  kJumpIfZero,  // if pop == 0, jump to imm
  kJump,        // jump to imm
  // Fig. 7 in one op: if the trace buffer has room, append pop and continue;
  // otherwise bump the overflow counter and break the host program.
  kTraceAppend,  // arg = array id
  kEmit,         // emit "label=value" with label table entry arg, value = pop
  kEmitLabel,    // emit the bare label arg
  kBreak,        // breakpoint hit: halt the host program
  kHalt,         // end of procedure; control returns to the program (Fig. 7 "continue")
};

struct CaspInstruction {
  CaspOp op = CaspOp::kHalt;
  u64 imm = 0;
  u16 arg = 0;
};

using CaspProgram = std::vector<CaspInstruction>;

// A bound program variable: how the controller reads (and optionally writes)
// service state.
struct VariableBinding {
  std::string name;
  std::function<u64()> get;
  std::function<void(u64)> set;  // may be empty (read-only variable)
};

// A trace array with Fig. 7's index/overflow bookkeeping.
struct TraceBuffer {
  std::string name;
  std::vector<u64> slots;
  usize index = 0;
  u64 overflow = 0;

  bool Full() const { return index >= slots.size(); }
};

class CaspMachine {
 public:
  // Budget per activation: the language is computationally weak by design.
  static constexpr usize kMaxStepsPerActivation = 4096;
  static constexpr usize kStackDepth = 32;

  // --- Memory: counters, arrays, variables ---
  u64 counter(const std::string& name) const;
  void set_counter(const std::string& name, u64 value);
  bool HasCounter(const std::string& name) const { return counters_.count(name) != 0; }

  // Creates (or returns) an array of `capacity` slots.
  u16 DeclareArray(const std::string& name, usize capacity);
  const TraceBuffer* FindArray(const std::string& name) const;
  TraceBuffer* FindArray(const std::string& name);

  u16 BindVariable(VariableBinding binding);
  bool HasVariable(const std::string& name) const;
  Expected<u16> VariableId(const std::string& name) const;
  Expected<u64> ReadVariable(const std::string& name) const;

  u16 InternLabel(std::string label);
  u16 InternCounter(const std::string& name);

  // --- Stored procedures at extension points ---
  // Procedures at a point run in installation order; `tag` identifies the
  // installing command so it can be removed (unbreak/unwatch/trace stop).
  void InstallProcedure(const std::string& point, std::string tag, CaspProgram program);
  void RemoveProcedure(const std::string& point, const std::string& tag);
  usize ProcedureCount(const std::string& point) const;

  // --- Execution ---
  // Runs every procedure installed at `point`. Returns false if a kBreak
  // executed (the host program must halt).
  bool Activate(const std::string& point);

  bool broken() const { return broken_; }
  void Resume() { broken_ = false; }

  // Messages emitted by kEmit since the last take.
  std::vector<std::string> TakeOutput();

  // Call-stack modelling for `backtrace` (services push/pop function labels).
  void EnterFunction(const std::string& name);
  void LeaveFunction();
  std::vector<std::string> Backtrace() const { return call_stack_; }

 private:
  struct Procedure {
    std::string tag;
    CaspProgram program;
  };

  bool RunProgram(const CaspProgram& program);

  std::map<std::string, u64> counters_;
  std::vector<std::string> counter_names_;  // id -> name for compiled access
  std::vector<TraceBuffer> arrays_;
  std::vector<VariableBinding> variables_;
  std::vector<std::string> labels_;
  std::map<std::string, std::vector<Procedure>> points_;
  std::vector<std::string> output_;
  std::vector<std::string> call_stack_;
  bool broken_ = false;
};

}  // namespace emu

#endif  // SRC_DEBUG_CASP_MACHINE_H_
