// DirectionController and the Fig. 11 program transformation.
//
// DirectionController owns a CASP machine, receives command text (locally or
// via direction packets), compiles and installs procedures, and accounts for
// the utilization/performance overhead of the enabled features (Table 5:
// read/write/increment controller instructions).
//
// DirectedService is Fig. 11's transformation as a Service decorator: normal
// frames pass to the wrapped service unchanged; direction packets are routed
// to the controller, which sends status replies back to the director. The
// wrapped service binds its variables and activates the main-loop extension
// point through the controller.
#ifndef SRC_DEBUG_CONTROLLER_H_
#define SRC_DEBUG_CONTROLLER_H_

#include <functional>
#include <memory>
#include <string>

#include "src/core/service.h"
#include "src/debug/casp_machine.h"
#include "src/debug/command_compiler.h"
#include "src/debug/direction_packet.h"

namespace emu {

class FaultRegistry;
class MetricsRegistry;

// Controller instruction-set features whose cost Table 5 profiles.
enum class ControllerFeature : u8 {
  kRead = 1 << 0,       // +R: read a program variable
  kWrite = 1 << 1,      // +W: write a program variable
  kIncrement = 1 << 2,  // +I: increment a program variable
};

class DirectionController {
 public:
  // `main_point` is the extension point inside the directed program's main
  // loop (§5.5) where variable-targeted procedures are installed.
  explicit DirectionController(std::string main_point = "main_loop");

  CaspMachine& machine() { return machine_; }
  const std::string& main_point() const { return main_point_; }

  void EnableFeature(ControllerFeature feature) { features_ |= static_cast<u8>(feature); }
  bool FeatureEnabled(ControllerFeature feature) const {
    return (features_ & static_cast<u8>(feature)) != 0;
  }

  // emu-fault: binds `faults_fired` and `fault_seed` so a director can read
  // the injection state over direction packets (the §3.5 machinery observing
  // chaos live). The registry must outlive the controller.
  void AttachFaultRegistry(FaultRegistry* registry);

  // Metrics bridge: binds every metric currently in `metrics` as a read-only
  // CASP variable under its dotted name ("nat.translated_out", ...), so a
  // director can watch/break on service counters over direction packets.
  // Reads go through the registry, so re-registered sources are followed.
  // The registry must outlive the controller.
  void AttachMetrics(const MetricsRegistry* metrics);

  // Wake-epoch bridge: CASP `write`/`increment` commands mutate program
  // variables through their setters, which can flip a WaitUntil predicate a
  // hardware process is parked on. The hook (typically Simulator::NotifyWake)
  // is invoked after any command or procedure that may have written state, so
  // the quiescence fast path re-evaluates parked predicates instead of
  // sleeping through the mutation. DirectedService wires this automatically.
  void SetWakeHook(std::function<void()> hook) { wake_hook_ = std::move(hook); }

  // Parses + compiles + applies a command; returns the reply text.
  std::string HandleCommandText(const std::string& text);

  // Full direction-packet path: parse, execute, build the reply frame.
  Packet HandleDirectionPacket(const Packet& request);

  // Bookkeeping hooks inserted where the program reads/writes variables or
  // enters functions (the `count` commands observe these).
  void NoteRead(const std::string& variable);
  void NoteWrite(const std::string& variable);
  void NoteCall(const std::string& function);

  // Activates an extension point; false means a breakpoint fired and the
  // host program should stall until Resume().
  bool Activate(const std::string& point) {
    const bool proceed = machine_.Activate(point);
    // Installed procedures may have written variables.
    if (wake_hook_) {
      wake_hook_();
    }
    return proceed;
  }
  bool broken() const { return machine_.broken(); }
  void Resume() {
    machine_.Resume();
    if (wake_hook_) {
      wake_hook_();
    }
  }

  // The controller's own hardware bill: base logic plus per-feature cost and
  // a deterministic place-and-route perturbation (Table 5 shows utilization
  // occasionally *improving* when features are added; §5.5 attributes this
  // to the optimizer finding more efficient allocations).
  ResourceUsage Resources() const;

  u64 packets_handled() const { return packets_handled_; }

 private:
  std::string main_point_;
  CaspMachine machine_;
  u8 features_ = 0;
  u64 packets_handled_ = 0;
  std::function<void()> wake_hook_;
};

// RAII frame for the controller's call-stack model: services bracket their
// request handlers with one of these so `backtrace` (Table 2) shows where a
// stalled program is. Null-controller safe; scope-exit (including coroutine
// `continue` paths) pops the frame.
class DirectedCallScope {
 public:
  DirectedCallScope(DirectionController* controller, const char* function)
      : controller_(controller) {
    if (controller_ != nullptr) {
      controller_->machine().EnterFunction(function);
      controller_->NoteCall(function);
    }
  }

  DirectedCallScope(const DirectedCallScope&) = delete;
  DirectedCallScope& operator=(const DirectedCallScope&) = delete;

  ~DirectedCallScope() {
    if (controller_ != nullptr) {
      controller_->machine().LeaveFunction();
    }
  }

 private:
  DirectionController* controller_;
};

class DirectedService : public Service {
 public:
  DirectedService(Service& inner, DirectionController& controller);

  std::string_view name() const override { return "directed_service"; }
  void Instantiate(Simulator& sim, Dataplane dp) override;
  ResourceUsage Resources() const override;
  Cycle ModuleLatency() const override { return inner_.ModuleLatency(); }
  Cycle InitiationInterval() const override { return inner_.InitiationInterval(); }

  u64 direction_packets() const { return direction_packets_; }

 private:
  HwProcess FilterProcess();

  Service& inner_;
  DirectionController& controller_;
  Simulator* sim_ = nullptr;
  Dataplane dp_;
  std::unique_ptr<SyncFifo<Packet>> inner_rx_;
  u64 direction_packets_ = 0;
};

}  // namespace emu

#endif  // SRC_DEBUG_CONTROLLER_H_
