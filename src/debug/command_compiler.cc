#include "src/debug/command_compiler.h"

namespace emu {
namespace {

CaspOp OpFor(ConditionOp op) {
  switch (op) {
    case ConditionOp::kEq:
      return CaspOp::kEq;
    case ConditionOp::kNe:
      return CaspOp::kNe;
    case ConditionOp::kLt:
      return CaspOp::kLt;
    case ConditionOp::kGt:
      return CaspOp::kGt;
    case ConditionOp::kLe:
      return CaspOp::kLe;
    case ConditionOp::kGe:
      return CaspOp::kGe;
  }
  return CaspOp::kEq;
}

}  // namespace

Expected<CaspProgram> CompileCondition(CaspMachine& machine,
                                       const std::optional<Condition>& condition) {
  CaspProgram program;
  if (!condition.has_value()) {
    program.push_back({CaspOp::kPushConst, 1, 0});
    return program;
  }
  auto var = machine.VariableId(condition->variable);
  if (!var.ok()) {
    return var.status();
  }
  program.push_back({CaspOp::kPushVar, 0, *var});
  program.push_back({CaspOp::kPushConst, condition->constant, 0});
  program.push_back({OpFor(condition->op), 0, 0});
  return program;
}

std::string ReadCounterName(const std::string& variable) { return "reads:" + variable; }
std::string WriteCounterName(const std::string& variable) { return "writes:" + variable; }
std::string CallCounterName(const std::string& function) { return "calls:" + function; }

Expected<std::string> ApplyDirectionCommand(CaspMachine& machine,
                                            const DirectionCommand& command,
                                            const std::string& variable_point) {
  switch (command.kind) {
    case DirectionKind::kPrint: {
      auto var = machine.VariableId(command.target);
      if (!var.ok()) {
        return var.status();
      }
      // Immediate query: read the variable now.
      return command.target + "=" + std::to_string(machine.ReadVariable(command.target).value());
    }

    case DirectionKind::kBreak: {
      auto guard = CompileCondition(machine, command.condition);
      if (!guard.ok()) {
        return guard.status();
      }
      CaspProgram program = *guard;
      const u64 skip_to = static_cast<u64>(program.size()) + 2;
      program.push_back({CaspOp::kJumpIfZero, skip_to, 0});
      program.push_back({CaspOp::kBreak, 0, 0});
      program.push_back({CaspOp::kHalt, 0, 0});
      machine.InstallProcedure(command.target, "break:" + command.target,
                               std::move(program));
      return std::string("break installed at " + command.target);
    }

    case DirectionKind::kUnbreak:
      machine.RemoveProcedure(command.target, "break:" + command.target);
      return std::string("break removed at " + command.target);

    case DirectionKind::kBacktrace: {
      std::string out;
      const auto stack = machine.Backtrace();
      for (usize i = stack.size(); i-- > 0;) {
        out += "#" + std::to_string(stack.size() - 1 - i) + " " + stack[i] + "\n";
      }
      if (out.empty()) {
        out = "(empty stack)\n";
      }
      return out;
    }

    case DirectionKind::kWatch: {
      auto var = machine.VariableId(command.target);
      if (!var.ok()) {
        return var.status();
      }
      // Break when X is updated (value changed since the last activation)
      // and the optional condition holds.
      const u16 last = machine.InternCounter("watch_last:" + command.target);
      const u16 armed = machine.InternCounter("watch_armed:" + command.target);
      machine.set_counter("watch_armed:" + command.target, 0);
      auto guard = CompileCondition(machine, command.condition);
      if (!guard.ok()) {
        return guard.status();
      }
      // Layout:
      //   if (!armed) goto INIT
      //   changed = (X != last); last = X
      //   if (!(changed && guard)) goto END
      //   break
      //   INIT: last = X; armed = 1
      //   END:  halt
      const u64 guard_size = static_cast<u64>(guard->size());
      const u64 init_index = 2 + 5 + guard_size + 3;  // after header+body
      const u64 end_index = init_index + 4;
      CaspProgram program;
      program.push_back({CaspOp::kPushCounter, 0, armed});
      program.push_back({CaspOp::kJumpIfZero, init_index, 0});
      program.push_back({CaspOp::kPushVar, 0, *var});
      program.push_back({CaspOp::kPushCounter, 0, last});
      program.push_back({CaspOp::kNe, 0, 0});  // changed on stack
      program.push_back({CaspOp::kPushVar, 0, *var});
      program.push_back({CaspOp::kStoreCounter, 0, last});
      for (const auto& ins : *guard) {
        program.push_back(ins);
      }
      program.push_back({CaspOp::kAnd, 0, 0});
      program.push_back({CaspOp::kJumpIfZero, end_index, 0});
      program.push_back({CaspOp::kBreak, 0, 0});
      // INIT:
      program.push_back({CaspOp::kPushVar, 0, *var});
      program.push_back({CaspOp::kStoreCounter, 0, last});
      program.push_back({CaspOp::kPushConst, 1, 0});
      program.push_back({CaspOp::kStoreCounter, 0, armed});
      // END:
      program.push_back({CaspOp::kHalt, 0, 0});
      machine.InstallProcedure(variable_point, "watch:" + command.target, std::move(program));
      return std::string("watch installed on " + command.target);
    }

    case DirectionKind::kUnwatch:
      machine.RemoveProcedure(variable_point, "watch:" + command.target);
      return std::string("watch removed on " + command.target);

    case DirectionKind::kCountReads:
      machine.InternCounter(ReadCounterName(command.target));
      return std::string("counting reads of " + command.target);
    case DirectionKind::kCountWrites:
      machine.InternCounter(WriteCounterName(command.target));
      return std::string("counting writes of " + command.target);
    case DirectionKind::kCountCalls:
      machine.InternCounter(CallCounterName(command.target));
      return std::string("counting calls of " + command.target);

    case DirectionKind::kTraceStart: {
      auto var = machine.VariableId(command.target);
      if (!var.ok()) {
        return var.status();
      }
      const usize length = command.length == 0 ? kDefaultTraceLength : command.length;
      const u16 array = machine.DeclareArray("trace:" + command.target, length);
      auto guard = CompileCondition(machine, command.condition);
      if (!guard.ok()) {
        return guard.status();
      }
      // Fig. 7: guarded "traceX max_trace_idx".
      CaspProgram program = *guard;
      const u64 end = static_cast<u64>(program.size()) + 3;
      program.push_back({CaspOp::kJumpIfZero, end, 0});
      program.push_back({CaspOp::kPushVar, 0, *var});
      program.push_back({CaspOp::kTraceAppend, 0, array});
      program.push_back({CaspOp::kHalt, 0, 0});
      machine.InstallProcedure(variable_point, "trace:" + command.target, std::move(program));
      return std::string("trace started on " + command.target);
    }

    case DirectionKind::kTraceStop:
      machine.RemoveProcedure(variable_point, "trace:" + command.target);
      return std::string("trace stopped on " + command.target);

    case DirectionKind::kTraceClear: {
      TraceBuffer* buffer = machine.FindArray("trace:" + command.target);
      if (buffer == nullptr) {
        return NotFound("no trace buffer for " + command.target);
      }
      buffer->index = 0;
      buffer->overflow = 0;
      return std::string("trace cleared on " + command.target);
    }

    case DirectionKind::kTracePrint: {
      const TraceBuffer* buffer = machine.FindArray("trace:" + command.target);
      if (buffer == nullptr) {
        return NotFound("no trace buffer for " + command.target);
      }
      std::string out = command.target + ":";
      for (usize i = 0; i < buffer->index; ++i) {
        out += " " + std::to_string(buffer->slots[i]);
      }
      return out;
    }

    case DirectionKind::kTraceFull: {
      const TraceBuffer* buffer = machine.FindArray("trace:" + command.target);
      if (buffer == nullptr) {
        return NotFound("no trace buffer for " + command.target);
      }
      return std::string(buffer->Full() ? "full" : "not full");
    }
  }
  return Unimplemented("unhandled direction command");
}

}  // namespace emu
