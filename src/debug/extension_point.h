// ExtensionPoint: the named, runtime-reprogrammable hook a directed program
// carries (§3.5). A service constructs one per site; Activate() is free when
// no controller is attached (the program was extended with "the precise set
// of required debugging or profiling features" — none), and otherwise runs
// whatever procedures the director installed.
#ifndef SRC_DEBUG_EXTENSION_POINT_H_
#define SRC_DEBUG_EXTENSION_POINT_H_

#include <string>
#include <utility>

#include "src/debug/controller.h"

namespace emu {

class ExtensionPoint {
 public:
  ExtensionPoint() = default;
  ExtensionPoint(DirectionController* controller, std::string name)
      : controller_(controller), name_(std::move(name)) {}

  bool attached() const { return controller_ != nullptr; }
  const std::string& point_name() const { return name_; }

  // Returns false when a breakpoint fired (the caller should stall).
  bool Activate() {
    if (controller_ == nullptr) {
      return true;
    }
    return controller_->Activate(name_);
  }

 private:
  DirectionController* controller_ = nullptr;
  std::string name_;
};

}  // namespace emu

#endif  // SRC_DEBUG_EXTENSION_POINT_H_
