// Lowers direction commands (Table 2) to CASP stored procedures and installs
// them at extension points — "commands are translated into programs that
// execute on a simple controller embedded in the program" (§3.5).
//
// Attachment rules:
//   - break/unbreak L: the procedure lives at extension point L;
//   - print/watch/trace on variable X: at the extension point the service
//     named when binding X (the main-loop point in the §5.5 use cases);
//   - count reads/writes/calls: implemented with counters updated by the
//     NoteRead/NoteWrite/NoteCall bookkeeping hooks the extension adds, so
//     compilation just declares the counter;
//   - trace print/full/clear and backtrace are immediate queries answered
//     from CASP memory, not installed procedures.
#ifndef SRC_DEBUG_COMMAND_COMPILER_H_
#define SRC_DEBUG_COMMAND_COMPILER_H_

#include <string>

#include "src/debug/casp_machine.h"
#include "src/debug/command_parser.h"

namespace emu {

inline constexpr usize kDefaultTraceLength = 16;

// Compiles just the condition prefix: leaves 1 on the stack when the
// condition holds (or unconditionally when absent). Returns the program; the
// caller appends the guarded body after a kJumpIfZero placeholder.
Expected<CaspProgram> CompileCondition(CaspMachine& machine,
                                       const std::optional<Condition>& condition);

// Applies a parsed command to the machine. `variable_point` maps a variable
// to the extension point where its procedures run (services declare this
// when binding). Returns the textual result for query commands (print
// installs a procedure and returns ""; trace print returns the buffer
// contents; backtrace returns the stack).
Expected<std::string> ApplyDirectionCommand(CaspMachine& machine,
                                            const DirectionCommand& command,
                                            const std::string& variable_point);

// Counter names used by the count bookkeeping hooks.
std::string ReadCounterName(const std::string& variable);
std::string WriteCounterName(const std::string& variable);
std::string CallCounterName(const std::string& function);

}  // namespace emu

#endif  // SRC_DEBUG_COMMAND_COMPILER_H_
