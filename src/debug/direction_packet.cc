#include "src/debug/direction_packet.h"

#include "src/common/bit_util.h"

namespace emu {
namespace {

constexpr usize kHeaderSize = 7;  // magic(2) kind(1) seq(2) len(2)

}  // namespace

bool IsDirectionPacket(const Packet& frame) {
  Packet copy = frame;
  EthernetView eth(copy);
  if (!eth.Valid() || eth.ether_type_raw() != kDirectionEtherType) {
    return false;
  }
  const auto payload = eth.Payload();
  return payload.size() >= kHeaderSize && BitUtil::Get16(payload, 0) == kDirectionMagic;
}

Packet MakeDirectionPacket(MacAddress dst, MacAddress src, DirectionPacketKind kind,
                           u16 sequence, const std::string& text) {
  std::vector<u8> payload(kHeaderSize + text.size(), 0);
  BitUtil::Set16(payload, 0, kDirectionMagic);
  payload[2] = static_cast<u8>(kind);
  BitUtil::Set16(payload, 3, sequence);
  BitUtil::Set16(payload, 5, static_cast<u16>(text.size()));
  for (usize i = 0; i < text.size(); ++i) {
    payload[kHeaderSize + i] = static_cast<u8>(text[i]);
  }
  return MakeEthernetFrame(dst, src, static_cast<EtherType>(kDirectionEtherType), payload);
}

Expected<DirectionPayload> ParseDirectionPacket(const Packet& frame) {
  Packet copy = frame;
  EthernetView eth(copy);
  if (!eth.Valid() || eth.ether_type_raw() != kDirectionEtherType) {
    return MalformedPacket("not a direction packet");
  }
  const auto payload = eth.Payload();
  if (payload.size() < kHeaderSize || BitUtil::Get16(payload, 0) != kDirectionMagic) {
    return MalformedPacket("bad direction magic");
  }
  DirectionPayload out;
  const u8 kind = payload[2];
  if (kind != static_cast<u8>(DirectionPacketKind::kCommand) &&
      kind != static_cast<u8>(DirectionPacketKind::kReply)) {
    return MalformedPacket("bad direction kind");
  }
  out.kind = static_cast<DirectionPacketKind>(kind);
  out.sequence = BitUtil::Get16(payload, 3);
  const u16 length = BitUtil::Get16(payload, 5);
  if (payload.size() < kHeaderSize + length) {
    return MalformedPacket("direction payload truncated");
  }
  out.text.assign(reinterpret_cast<const char*>(payload.data()) + kHeaderSize, length);
  return out;
}

Packet MakeDirectionReply(const Packet& request, const std::string& text) {
  Packet copy = request;
  EthernetView eth(copy);
  auto parsed = ParseDirectionPacket(request);
  const u16 sequence = parsed.ok() ? parsed->sequence : 0;
  Packet reply = MakeDirectionPacket(eth.source(), eth.destination(),
                                     DirectionPacketKind::kReply, sequence, text);
  reply.set_src_port(request.src_port());
  return reply;
}

}  // namespace emu
