// ExtensionPoint is header-only; see extension_point.h.
#include "src/debug/extension_point.h"
