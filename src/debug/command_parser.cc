#include "src/debug/command_parser.h"

#include <vector>

namespace emu {
namespace {

std::vector<std::string_view> Tokenize(std::string_view text) {
  std::vector<std::string_view> tokens;
  usize pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) {
      ++pos;
    }
    const usize start = pos;
    while (pos < text.size() && text[pos] != ' ' && text[pos] != '\t') {
      ++pos;
    }
    if (pos > start) {
      tokens.push_back(text.substr(start, pos - start));
    }
  }
  return tokens;
}

Expected<u64> ParseNumber(std::string_view text) {
  if (text.empty()) {
    return InvalidArgument("empty number");
  }
  u64 value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return InvalidArgument("non-digit in number");
    }
    value = value * 10 + static_cast<u64>(c - '0');
  }
  return value;
}

Expected<ConditionOp> ParseOp(std::string_view text) {
  if (text == "==") {
    return ConditionOp::kEq;
  }
  if (text == "!=") {
    return ConditionOp::kNe;
  }
  if (text == "<") {
    return ConditionOp::kLt;
  }
  if (text == ">") {
    return ConditionOp::kGt;
  }
  if (text == "<=") {
    return ConditionOp::kLe;
  }
  if (text == ">=") {
    return ConditionOp::kGe;
  }
  return InvalidArgument("unknown comparison operator");
}

// Parses "if VAR OP NUM" from tokens[i..]; on success fills `out`.
Status ParseCondition(const std::vector<std::string_view>& tokens, usize i, Condition* out) {
  if (i + 4 != tokens.size() || tokens[i] != "if") {
    return InvalidArgument("expected: if VAR OP NUM");
  }
  auto op = ParseOp(tokens[i + 2]);
  if (!op.ok()) {
    return op.status();
  }
  auto constant = ParseNumber(tokens[i + 3]);
  if (!constant.ok()) {
    return constant.status();
  }
  out->variable = std::string(tokens[i + 1]);
  out->op = *op;
  out->constant = *constant;
  return Status::Ok();
}

}  // namespace

Expected<DirectionCommand> ParseDirectionCommand(std::string_view text) {
  const auto tokens = Tokenize(text);
  if (tokens.empty()) {
    return InvalidArgument("empty command");
  }
  DirectionCommand command;

  const auto parse_optional_condition = [&](usize from) -> Status {
    if (from >= tokens.size()) {
      return Status::Ok();
    }
    Condition condition;
    const Status status = ParseCondition(tokens, from, &condition);
    if (!status.ok()) {
      return status;
    }
    command.condition = condition;
    return Status::Ok();
  };

  if (tokens[0] == "print") {
    if (tokens.size() != 2) {
      return InvalidArgument("print expects a variable");
    }
    command.kind = DirectionKind::kPrint;
    command.target = std::string(tokens[1]);
    return command;
  }
  if (tokens[0] == "break" || tokens[0] == "unbreak") {
    if (tokens.size() < 2) {
      return InvalidArgument("break expects a label");
    }
    command.kind = tokens[0] == "break" ? DirectionKind::kBreak : DirectionKind::kUnbreak;
    command.target = std::string(tokens[1]);
    if (command.kind == DirectionKind::kUnbreak && tokens.size() != 2) {
      return InvalidArgument("unbreak takes only a label");
    }
    const Status status = parse_optional_condition(2);
    if (!status.ok()) {
      return status;
    }
    return command;
  }
  if (tokens[0] == "backtrace") {
    if (tokens.size() != 1) {
      return InvalidArgument("backtrace takes no arguments");
    }
    command.kind = DirectionKind::kBacktrace;
    return command;
  }
  if (tokens[0] == "watch" || tokens[0] == "unwatch") {
    if (tokens.size() < 2) {
      return InvalidArgument("watch expects a variable");
    }
    command.kind = tokens[0] == "watch" ? DirectionKind::kWatch : DirectionKind::kUnwatch;
    command.target = std::string(tokens[1]);
    if (command.kind == DirectionKind::kUnwatch && tokens.size() != 2) {
      return InvalidArgument("unwatch takes only a variable");
    }
    const Status status = parse_optional_condition(2);
    if (!status.ok()) {
      return status;
    }
    return command;
  }
  if (tokens[0] == "count") {
    if (tokens.size() != 3) {
      return InvalidArgument("count expects: count reads|writes|calls TARGET");
    }
    if (tokens[1] == "reads") {
      command.kind = DirectionKind::kCountReads;
    } else if (tokens[1] == "writes") {
      command.kind = DirectionKind::kCountWrites;
    } else if (tokens[1] == "calls") {
      command.kind = DirectionKind::kCountCalls;
    } else {
      return InvalidArgument("count subcommand must be reads/writes/calls");
    }
    command.target = std::string(tokens[2]);
    return command;
  }
  if (tokens[0] == "trace") {
    if (tokens.size() < 3) {
      return InvalidArgument("trace expects: trace SUBCMD VAR");
    }
    command.target = std::string(tokens[2]);
    if (tokens[1] == "start") {
      command.kind = DirectionKind::kTraceStart;
      usize next = 3;
      if (next < tokens.size()) {
        auto length = ParseNumber(tokens[next]);
        if (length.ok()) {
          command.length = static_cast<usize>(*length);
          ++next;
        }
      }
      const Status status = parse_optional_condition(next);
      if (!status.ok()) {
        return status;
      }
      return command;
    }
    if (tokens.size() != 3) {
      return InvalidArgument("trace subcommand takes only a variable");
    }
    if (tokens[1] == "stop") {
      command.kind = DirectionKind::kTraceStop;
    } else if (tokens[1] == "clear") {
      command.kind = DirectionKind::kTraceClear;
    } else if (tokens[1] == "print") {
      command.kind = DirectionKind::kTracePrint;
    } else if (tokens[1] == "full") {
      command.kind = DirectionKind::kTraceFull;
    } else {
      return InvalidArgument("trace subcommand must be start/stop/clear/print/full");
    }
    return command;
  }
  return InvalidArgument("unknown direction command: " + std::string(tokens[0]));
}

std::string FormatDirectionCommand(const DirectionCommand& command) {
  std::string out;
  switch (command.kind) {
    case DirectionKind::kPrint:
      out = "print";
      break;
    case DirectionKind::kBreak:
      out = "break";
      break;
    case DirectionKind::kUnbreak:
      out = "unbreak";
      break;
    case DirectionKind::kBacktrace:
      out = "backtrace";
      break;
    case DirectionKind::kWatch:
      out = "watch";
      break;
    case DirectionKind::kUnwatch:
      out = "unwatch";
      break;
    case DirectionKind::kCountReads:
      out = "count reads";
      break;
    case DirectionKind::kCountWrites:
      out = "count writes";
      break;
    case DirectionKind::kCountCalls:
      out = "count calls";
      break;
    case DirectionKind::kTraceStart:
      out = "trace start";
      break;
    case DirectionKind::kTraceStop:
      out = "trace stop";
      break;
    case DirectionKind::kTraceClear:
      out = "trace clear";
      break;
    case DirectionKind::kTracePrint:
      out = "trace print";
      break;
    case DirectionKind::kTraceFull:
      out = "trace full";
      break;
  }
  if (!command.target.empty()) {
    out += " " + command.target;
  }
  if (command.length != 0) {
    out += " " + std::to_string(command.length);
  }
  if (command.condition.has_value()) {
    out += " if " + command.condition->variable;
    switch (command.condition->op) {
      case ConditionOp::kEq:
        out += " ==";
        break;
      case ConditionOp::kNe:
        out += " !=";
        break;
      case ConditionOp::kLt:
        out += " <";
        break;
      case ConditionOp::kGt:
        out += " >";
        break;
      case ConditionOp::kLe:
        out += " <=";
        break;
      case ConditionOp::kGe:
        out += " >=";
        break;
    }
    out += " " + std::to_string(command.condition->constant);
  }
  return out;
}

}  // namespace emu
