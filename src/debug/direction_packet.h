// Direction packets (§3.5): "network packets in a custom and simple packet
// format, whose payload consists of code to be executed by the controller or
// status replies from the controller to the director" — gdb's remote serial
// protocol, for hardware.
//
// Format: Ethernet frame, experimental EtherType 0x88B5, payload =
//   magic(2) | kind(1) | sequence(2) | length(2) | text[length]
// with `text` a direction command (kind=command) or reply body (kind=reply).
#ifndef SRC_DEBUG_DIRECTION_PACKET_H_
#define SRC_DEBUG_DIRECTION_PACKET_H_

#include <string>

#include "src/common/status.h"
#include "src/net/ethernet.h"
#include "src/net/packet.h"

namespace emu {

inline constexpr u16 kDirectionEtherType = 0x88b5;
inline constexpr u16 kDirectionMagic = 0xd1ec;

enum class DirectionPacketKind : u8 {
  kCommand = 1,
  kReply = 2,
};

struct DirectionPayload {
  DirectionPacketKind kind = DirectionPacketKind::kCommand;
  u16 sequence = 0;
  std::string text;
};

// True when the frame is a direction packet (the Fig. 11 check every
// directed program performs on each ingress frame).
bool IsDirectionPacket(const Packet& frame);

Packet MakeDirectionPacket(MacAddress dst, MacAddress src, DirectionPacketKind kind,
                           u16 sequence, const std::string& text);

Expected<DirectionPayload> ParseDirectionPacket(const Packet& frame);

// Builds the reply frame for `request` (addresses swapped, same sequence).
Packet MakeDirectionReply(const Packet& request, const std::string& text);

}  // namespace emu

#endif  // SRC_DEBUG_DIRECTION_PACKET_H_
