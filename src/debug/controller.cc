#include "src/debug/controller.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "src/core/metrics.h"
#include "src/fault/fault_registry.h"
#include "src/netfpga/dataplane.h"
#include "src/obs/trace_hooks.h"

namespace emu {
namespace {

using i64 = std::int64_t;

// Deterministic "place-and-route" perturbation: a small signed LUT delta
// derived from the feature mask and the artefact it is embedded in,
// mimicking the optimizer noise of Table 5 ("occasionally this results in
// more utilization-efficient allocations", §5.5).
i64 PlacementNoise(u8 features, u64 salt) {
  u64 x = 0x9e3779b97f4a7c15ULL ^ (static_cast<u64>(features) * 0x100000001b3ULL) ^
          (salt * 0xc2b2ae3d27d4eb4fULL);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<i64>(x % 181) - 90;  // [-90, +90] LUTs
}

}  // namespace

DirectionController::DirectionController(std::string main_point)
    : main_point_(std::move(main_point)) {}

void DirectionController::AttachFaultRegistry(FaultRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  machine_.BindVariable(
      {"faults_fired", [registry] { return registry->fired_total(); }, nullptr});
  machine_.BindVariable({"fault_seed", [registry] { return registry->seed(); }, nullptr});
}

void DirectionController::AttachMetrics(const MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    return;
  }
  for (const auto& [name, value] : metrics->Snapshot()) {
    (void)value;
    // TryGet keeps the binding honest across re-registration: if a source is
    // dropped later, the variable reads 0 instead of touching stale state.
    machine_.BindVariable(
        {name, [metrics, name = name] { return metrics->TryGet(name).value_or(0); },
         nullptr});
  }
}

std::string DirectionController::HandleCommandText(const std::string& text) {
  auto command = ParseDirectionCommand(text);
  if (!command.ok()) {
    return "error: " + command.status().ToString();
  }
  auto result = ApplyDirectionCommand(machine_, *command, main_point_);
  if (!result.ok()) {
    return "error: " + result.status().ToString();
  }
  // write/increment (and procedure installs that fire immediately) mutate
  // CASP-bound variables; announce the mutation to the wake-epoch protocol.
  if (wake_hook_) {
    wake_hook_();
  }
  return *result;
}

Packet DirectionController::HandleDirectionPacket(const Packet& request) {
  ++packets_handled_;
  auto payload = ParseDirectionPacket(request);
  if (!payload.ok()) {
    return MakeDirectionReply(request, "error: " + payload.status().ToString());
  }
  std::string reply = HandleCommandText(payload->text);
  // Append anything the installed procedures emitted since the last packet.
  for (const std::string& line : machine_.TakeOutput()) {
    reply += "\n" + line;
  }
  return MakeDirectionReply(request, reply);
}

void DirectionController::NoteRead(const std::string& variable) {
  // Counting is active only once the matching count command interned the
  // counter; otherwise the hook is dead logic that costs nothing.
  const std::string name = ReadCounterName(variable);
  if (machine_.HasCounter(name)) {
    machine_.set_counter(name, machine_.counter(name) + 1);
  }
}

void DirectionController::NoteWrite(const std::string& variable) {
  const std::string name = WriteCounterName(variable);
  if (machine_.HasCounter(name)) {
    machine_.set_counter(name, machine_.counter(name) + 1);
  }
}

void DirectionController::NoteCall(const std::string& function) {
  const std::string name = CallCounterName(function);
  if (machine_.HasCounter(name)) {
    machine_.set_counter(name, machine_.counter(name) + 1);
  }
}

ResourceUsage DirectionController::Resources() const {
  // Minimal CASP controller: the program is extended with only "the precise
  // set of required features" (§3.5), so the base is just the packet decode
  // and a small counter file; each instruction family adds its datapath.
  // Deltas calibrated to Table 5 (+R ~3%, +W ~15%, +I ~10% of the DNS core).
  ResourceUsage usage{40, 70, 0};
  if (FeatureEnabled(ControllerFeature::kRead)) {
    usage.luts += 25;  // variable read mux into the controller datapath
    usage.regs += 40;
  }
  if (FeatureEnabled(ControllerFeature::kWrite)) {
    usage.luts += 310;  // write-back path with enables per bound variable
    usage.regs += 130;
  }
  if (FeatureEnabled(ControllerFeature::kIncrement)) {
    usage.luts += 205;  // read-modify-write adder
    usage.regs += 70;
  }
  return usage;
}

DirectedService::DirectedService(Service& inner, DirectionController& controller)
    : inner_(inner), controller_(controller) {}

void DirectedService::Instantiate(Simulator& sim, Dataplane dp) {
  assert(dp.rx != nullptr && dp.tx != nullptr);
  sim_ = &sim;
  dp_ = dp;
  controller_.SetWakeHook([&sim] { sim.NotifyWake(); });
  inner_rx_ = std::make_unique<SyncFifo<Packet>>(sim, "directed_inner_rx", 64, 256);
  const usize filter = sim.AddProcess(FilterProcess(), "direction_filter");
  // Direction packets turn around onto dp.tx; everything else forwards into
  // the inner service's rx.
  elab::IoDecl(sim.catalog(), filter).Pops(dp_.rx).Pushes(inner_rx_.get()).Pushes(dp_.tx);
  inner_.Instantiate(sim, Dataplane{inner_rx_.get(), dp.tx});
}

ResourceUsage DirectedService::Resources() const {
  // The frame-kind check is a couple of comparators on the first bus beat;
  // the placement perturbation depends on the artefact being re-routed.
  ResourceUsage usage =
      inner_.Resources() + controller_.Resources() + ResourceUsage{24, 16, 0};
  u8 features = 0;
  for (ControllerFeature f :
       {ControllerFeature::kRead, ControllerFeature::kWrite, ControllerFeature::kIncrement}) {
    if (controller_.FeatureEnabled(f)) {
      features |= static_cast<u8>(f);
    }
  }
  const i64 noise = PlacementNoise(features, inner_.Resources().luts);
  usage.luts = static_cast<u64>(std::max<i64>(1, static_cast<i64>(usage.luts) + noise));
  return usage;
}

HwProcess DirectedService::FilterProcess() {
  for (;;) {
    co_await WaitUntil([this] { return !dp_.rx->Empty(); });
    // Stall the whole program while a breakpoint holds it (the director
    // resumes via Resume(); direction packets still get through so the
    // director can poke state).
    Packet frame = dp_.rx->Front();
    const bool is_direction = IsDirectionPacket(frame);
    if (controller_.broken() && !is_direction) {
      co_await Pause();
      continue;
    }
    dp_.rx->Pop();
    if (is_direction && dp_.tx->CanPush()) {
      ++direction_packets_;
      if (obs::TraceBuffer* tb = obs::ActiveBuffer()) {
        obs::EmitInstant(tb, "casp.direction", sim_->NowPs());
      }
      Packet reply = controller_.HandleDirectionPacket(frame);
      reply.set_core_ingress_cycle(frame.core_ingress_cycle());
      NetFpgaData out;
      out.tdata = std::move(reply);
      NetFpga::SendBackToSource(out);
      co_await PauseFor(2);  // controller turnaround
      dp_.tx->Push(std::move(out.tdata));
      co_await Pause();
      continue;
    }
    inner_rx_->Push(std::move(frame));
    co_await Pause();
  }
}

}  // namespace emu
