// Latency statistics — the Endace DAG capture substitute.
//
// The paper measures DUT latency by capturing all traffic on a DAG card and
// subtracting the rig's own latency; here packets carry ingress/egress
// timestamps directly and LatencyStats aggregates them into the avg/99th
// numbers Table 4 reports.
#ifndef SRC_SIM_LATENCY_PROBE_H_
#define SRC_SIM_LATENCY_PROBE_H_

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/core/histogram.h"
#include "src/net/packet.h"

namespace emu {

class MetricsRegistry;

class LatencyStats {
 public:
  void Add(Picoseconds sample);
  void AddPacket(const Packet& packet);

  // Loss accounting: packets known lost to impairment or drops never produce
  // a latency sample; callers record them here so loss shows up next to the
  // latency numbers instead of silently shrinking the sample set.
  void AddLoss(u64 packets) { lost_ += packets; }
  u64 lost() const { return lost_; }
  // lost / (lost + measured); 0 when nothing was seen.
  double LossRate() const {
    const double total = static_cast<double>(lost_ + samples_.size());
    return total > 0.0 ? static_cast<double>(lost_) / total : 0.0;
  }

  usize count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double MeanUs() const;
  double MinUs() const;
  double MaxUs() const;
  double StdDevUs() const;
  // p in [0, 100]; nearest-rank (index ceil(p/100 * N), 1-based) on the
  // sorted samples. p=0 is the minimum, p=100 the maximum — no off-the-end
  // read for small N. All accessors are genuinely const (no lazy sort flag),
  // so concurrent readers are safe once writers have quiesced.
  double PercentileUs(double p) const;
  double MedianUs() const { return PercentileUs(50.0); }
  double TailToAverage() const;  // 99th / mean, the paper's tail metric

  // Log-bucketed mirror of the sample set (emu-scope). Fed on every Add, so
  // the registry/Prometheus view needs no extra bookkeeping from callers.
  const Histogram& histogram() const { return histogram_; }

  // Publishes "<prefix>_ps" (histogram, picoseconds) and "<prefix>.lost"
  // into the registry. This object must outlive the registry bindings.
  void RegisterMetrics(MetricsRegistry& registry, const std::string& prefix) const;

  void Clear();

 private:
  std::vector<Picoseconds> samples_;
  Histogram histogram_;
  u64 lost_ = 0;
};

}  // namespace emu

#endif  // SRC_SIM_LATENCY_PROBE_H_
