// Conservative parallel execution of a sharded topology (emu-par).
//
// A topology is partitioned into shards — one EventScheduler (and the hosts
// or service nodes it drives) per shard. Shards share no simulation state;
// the only coupling is the inter-shard links, whose minimum transit time
// (serialization floor + propagation delay) is a hard lower bound on how
// soon one shard's actions can become visible to another. That bound is the
// classic conservative-PDES lookahead: in each epoch every shard may run all
// events strictly before its inbound horizon
//
//   lb(r)      = next_event_time(r), then relaxed through every cut edge
//                lb(to) = min(lb(to), lb(from) + min_transit(from->to))
//                to a fixpoint (batched Chandy-Misra null messages)
//   horizon(s) = min over inbound links l from shard r of
//                lb(r) + min_transit(l)
//
// without ever receiving a frame "from the past". The relaxation step is
// what makes an IDLE shard safe: a shard with an empty queue is not silent
// for the epoch — a frame arriving mid-epoch can wake it and make it send
// (a hub between chatty hosts is the canonical case) — so its earliest
// possible action is bounded through its own inbound edges, not assumed
// infinite. Positive lookaheads guarantee both convergence of the fixpoint
// (<= |shards| sweeps) and forward progress of at least the minimum
// lookahead per epoch. Cross-shard frames travel
// through per-shard inbox queues (mutex-guarded; contention is one push per
// frame), stamped with their absolute arrival time, the routed direction's
// id, and a per-direction FIFO sequence assigned by the sender. Between
// epochs the runner drains each inbox in (arrival, link, seq) order — a
// canonical order independent of thread interleaving — so the receiving
// scheduler assigns the same tie-break sequence numbers every run.
//
// Determinism: a shard's epoch depends only on its own queue, its horizon,
// and its drained inbox, all of which are fixed at the epoch barrier. Worker
// threads therefore cannot affect results — Run(threads=N) is bit-exact
// against Run(threads=1), which executes the identical epoch schedule
// inline. Each ServiceNode's embedded Simulator keeps its quiescence
// fast-forward: idle stretches inside a shard are jumped, not stepped.
#ifndef SRC_SIM_PARALLEL_RUNNER_H_
#define SRC_SIM_PARALLEL_RUNNER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/sim/event_scheduler.h"
#include "src/sim/link.h"

namespace emu {

namespace obs {
class RunnerPulse;
}  // namespace obs

struct ParallelRunOptions {
  // Worker threads; 1 runs the same epoch schedule inline (the bit-exact
  // serial reference). Clamped to the shard count.
  usize threads = 1;
  // Global event budget; checked at epoch barriers, so a run may overshoot
  // by at most one epoch.
  usize max_events = 10'000'000;
};

// One registered cross-shard link direction: the shard boundary it crosses
// and its conservative lookahead. Recorded by ConnectDirection for the
// static SHARDCUT check (src/analysis/elab) — the in-function assert on a
// positive transit floor compiles out under NDEBUG, but a zero-lookahead cut
// still makes the epoch horizon degenerate, so lint must see it.
struct ShardCut {
  usize from = 0;
  usize to = 0;
  u64 link_id = 0;
  Picoseconds lookahead = 0;
};

class ParallelRunner {
 public:
  ParallelRunner() = default;
  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  // Registers a shard around `scheduler` (which must outlive the runner) and
  // returns its shard id.
  usize AddShard(EventScheduler& scheduler);

  // Routes `link`'s `to_b` direction across the shard boundary from `from`
  // (where the sender lives) into `to` (where the receiving end's callbacks
  // run). The link must not carry a shared impairer (per-direction
  // impairment composes — see Link::EnableImpairment(to_b, ...)), and its
  // transit floor must be positive — zero lookahead admits no conservative
  // window.
  void ConnectDirection(Link& link, bool to_b, usize from, usize to);

  // Runs all shards to quiescence (or the event budget); returns the number
  // of events executed. Identical results for any `threads` value.
  u64 Run(const ParallelRunOptions& opts = {});

  usize shard_count() const { return shards_.size(); }
  // Epoch barriers crossed over this runner's lifetime (for tests/bench).
  u64 epochs() const { return epochs_; }
  // Every registered cross-shard link direction, for static validation.
  const std::vector<ShardCut>& cuts() const { return cuts_; }

  // Attaches a wall-clock epoch recorder (emu-pulse; nullptr detaches). The
  // pulse must outlive the attachment. Recording is pure observation of HOST
  // time: it never touches simulation state, so attached or not, results —
  // including the deterministic trace — are bit-identical.
  void AttachPulse(obs::RunnerPulse* pulse) { pulse_ = pulse; }
  obs::RunnerPulse* pulse() const { return pulse_; }

  // Cumulative conservative-plan statistics (maintained with or without a
  // pulse attached; deterministic functions of the workload).
  u64 relax_sweeps() const { return relax_sweeps_; }
  u64 null_message_relaxations() const { return null_message_relaxations_; }
  u64 frames_drained() const { return frames_drained_; }

 private:
  struct PendingDelivery {
    Picoseconds arrival = 0;
    u64 link_id = 0;
    u64 seq = 0;
    Link* link = nullptr;
    bool to_b = true;
    Packet frame;
  };
  struct InboundEdge {
    usize from = 0;
    Picoseconds lookahead = 0;
  };
  struct Shard {
    usize index = 0;
    EventScheduler* scheduler = nullptr;
    std::vector<InboundEdge> inbound;
    std::mutex inbox_mu;
    std::vector<PendingDelivery> inbox;
    // Per-epoch plan (written at the barrier, read by one worker).
    Picoseconds horizon = 0;
    usize budget = 0;
    usize epoch_executed = 0;
    // Wall stamps of this shard's epoch work (ns since RunnerPulse base);
    // written by the worker that ran the epoch, read by the coordinator
    // after the done barrier. Only maintained while a pulse is attached.
    u64 work_begin_ns = 0;
    u64 work_end_ns = 0;
  };

  // Drains inboxes, snapshots next-event times, computes horizons and
  // budgets. Returns false when every shard is quiescent.
  bool PlanEpoch(usize budget);
  void RunShardEpoch(Shard& shard);

  // Stamps per-shard epoch records into the pulse after an epoch closes
  // (coordinator only; `epoch_end_ns` is the done-barrier wall stamp).
  void FlushEpochRecords(u64 epoch_end_ns);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<ShardCut> cuts_;
  u64 next_link_id_ = 0;
  u64 epochs_ = 0;
  u64 relax_sweeps_ = 0;
  u64 null_message_relaxations_ = 0;
  u64 frames_drained_ = 0;
  obs::RunnerPulse* pulse_ = nullptr;
};

}  // namespace emu

#endif  // SRC_SIM_PARALLEL_RUNNER_H_
