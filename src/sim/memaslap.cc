#include "src/sim/memaslap.h"

#include <cassert>
#include <cstdio>

#include "src/net/udp.h"

namespace emu {

MemaslapLoadgen::MemaslapLoadgen(MemaslapConfig config)
    : config_(config), rng_(config.seed) {
  assert(config_.key_bytes >= 4);
}

std::string MemaslapLoadgen::KeyName(usize key) const {
  // Fixed-width keys ("k0042") padded to key_bytes.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "k%0*zu", static_cast<int>(config_.key_bytes - 1), key);
  return std::string(buf).substr(0, config_.key_bytes);
}

std::string MemaslapLoadgen::ValueFor(usize key) const {
  std::string value(config_.value_bytes, 'v');
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu", key);
  for (usize i = 0; i < value.size() && buf[i] != '\0'; ++i) {
    value[i] = buf[i];
  }
  return value;
}

Packet MemaslapLoadgen::MakeFrame(const McRequest& request) {
  return MakeUdpPacket({config_.server_mac, config_.client_mac, config_.client_ip,
                        config_.server_ip, 31337, kMemcachedPort},
                       BuildMcRequest(request));
}

Packet MemaslapLoadgen::PrewarmFrame(usize index) {
  McRequest request;
  request.protocol = config_.protocol;
  request.op = McOpcode::kSet;
  request.key = KeyName(index % config_.key_space);
  request.value = ValueFor(index % config_.key_space);
  return MakeFrame(request);
}

Packet MemaslapLoadgen::WorkloadFrame(usize) {
  const usize key = rng_.NextBelow(config_.key_space);
  McRequest request;
  request.protocol = config_.protocol;
  request.key = KeyName(key);
  ++total_;
  if (rng_.NextBool(config_.get_fraction)) {
    request.op = McOpcode::kGet;
    ++gets_;
  } else {
    request.op = McOpcode::kSet;
    request.value = ValueFor(key);
  }
  return MakeFrame(request);
}

double MemaslapLoadgen::ObservedGetFraction() const {
  return total_ == 0 ? 0.0 : static_cast<double>(gets_) / static_cast<double>(total_);
}

}  // namespace emu
