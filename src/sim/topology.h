// Topology builder for the event-driven simulator.
//
// StarTopology is the common shape: up to four hosts, each on its own 10G
// link, around one ServiceNode running an Emu service — functionally the
// Mininet setups the paper uses to test the NAT and other services before
// synthesizing them.
#ifndef SRC_SIM_TOPOLOGY_H_
#define SRC_SIM_TOPOLOGY_H_

#include <memory>
#include <vector>

#include "src/sim/sim_host.h"

namespace emu {

struct HostSpec {
  std::string name;
  MacAddress mac;
  Ipv4Address ip;
};

struct StarTopologyConfig {
  u64 link_bits_per_second = 10'000'000'000ULL;
  Picoseconds link_delay = 500'000;  // 500 ns of cable + switch PHY
};

class StarTopology {
 public:
  StarTopology(Service& service, std::vector<HostSpec> hosts,
               StarTopologyConfig config = StarTopologyConfig());

  EventScheduler& scheduler() { return scheduler_; }
  SimHost& host(usize i) { return *hosts_[i]; }
  usize host_count() const { return hosts_.size(); }
  ServiceNode& service_node() { return *node_; }

  // Convenience: run the event loop until quiescent.
  void Run(usize max_events = 1'000'000) { scheduler_.Run(max_events); }

 private:
  EventScheduler scheduler_;
  std::unique_ptr<ServiceNode> node_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
};

}  // namespace emu

#endif  // SRC_SIM_TOPOLOGY_H_
