// Topology builders for the event-driven simulator.
//
// StarTopology is the common shape: up to four hosts, each on its own 10G
// link, around one ServiceNode running an Emu service — functionally the
// Mininet setups the paper uses to test the NAT and other services before
// synthesizing them.
//
// ShardedTopology builds the same shapes partitioned for the parallel
// runner (emu-par, src/sim/parallel_runner.h): every host and every service
// node gets its own EventScheduler (a shard), and each link direction that
// crosses a shard boundary is routed through the runner's inboxes with the
// link's minimum transit time as conservative lookahead. Run(threads=N) is
// bit-exact against Run(threads=1).
#ifndef SRC_SIM_TOPOLOGY_H_
#define SRC_SIM_TOPOLOGY_H_

#include <memory>
#include <vector>

#include "src/sim/hub.h"
#include "src/sim/parallel_runner.h"
#include "src/sim/sim_host.h"

namespace emu {

struct HostSpec {
  std::string name;
  MacAddress mac;
  Ipv4Address ip;
};

struct StarTopologyConfig {
  u64 link_bits_per_second = 10'000'000'000ULL;
  Picoseconds link_delay = 500'000;  // 500 ns of cable + switch PHY
};

class StarTopology {
 public:
  StarTopology(Service& service, std::vector<HostSpec> hosts,
               StarTopologyConfig config = StarTopologyConfig());

  EventScheduler& scheduler() { return scheduler_; }
  SimHost& host(usize i) { return *hosts_[i]; }
  usize host_count() const { return hosts_.size(); }
  ServiceNode& service_node() { return *node_; }

  // Convenience: run the event loop until quiescent.
  void Run(usize max_events = 1'000'000) { scheduler_.Run(max_events); }

 private:
  EventScheduler scheduler_;
  std::unique_ptr<ServiceNode> node_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
};

// A topology partitioned for parallel execution. Two shapes:
//
//  - Star: all hosts around ONE service node (the StarTopology shape).
//    Shards: the node, plus one per host.
//  - Cluster: one service node PER host (services side by side, as in the
//    Table 4 service-comparison setups). Shards: one per node, one per host.
//
// In both, every host-node link crosses a shard boundary in both
// directions, so each ServiceNode's software-semantics work (its embedded
// Simulator, with quiescence fast-forward) runs on its shard's worker
// thread while the hosts' traffic generation runs on theirs.
class ShardedTopology {
 public:
  // Star shape around `service`.
  ShardedTopology(Service& service, std::vector<HostSpec> hosts,
                  StarTopologyConfig config = StarTopologyConfig());

  // Cluster shape: `services[i]` is paired with `hosts[i]`; sizes must match.
  ShardedTopology(const std::vector<Service*>& services, std::vector<HostSpec> hosts,
                  StarTopologyConfig config = StarTopologyConfig());

  SimHost& host(usize i) { return *hosts_[i]; }
  usize host_count() const { return hosts_.size(); }
  ServiceNode& node(usize i = 0) { return *nodes_[i]; }
  usize node_count() const { return nodes_.size(); }
  ParallelRunner& runner() { return runner_; }

  // Runs all shards to quiescence; returns events executed. Bit-exact for
  // any opts.threads.
  u64 Run(const ParallelRunOptions& opts = {}) { return runner_.Run(opts); }

 private:
  // Builds host i, its link, and the cross-shard routes to `node_shard`
  // (whose ServiceNode takes the link on port `port`).
  void AttachHostGroup(const HostSpec& spec, const StarTopologyConfig& config,
                       usize node_shard, ServiceNode& node, u8 port);

  ParallelRunner runner_;
  std::vector<std::unique_ptr<EventScheduler>> schedulers_;
  std::vector<std::unique_ptr<ServiceNode>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
};

// N hosts around a HubNode learning switch (emu-gossip): the shape for
// host-to-host protocols like SWIM membership, where every host talks to
// every other and N exceeds kNetFpgaPortCount. Sharding: the hub is shard 0,
// each host its own shard; every link crosses shards in both directions, so
// Run(threads=N) is bit-exact against Run(threads=1). Host i sits on hub
// port i — ChaosDirector uses that mapping to translate partition groups
// into the hub's port-pair block matrix.
class HubTopology {
 public:
  explicit HubTopology(std::vector<HostSpec> hosts,
                       StarTopologyConfig config = StarTopologyConfig());

  SimHost& host(usize i) { return *hosts_[i]; }
  usize host_count() const { return hosts_.size(); }
  HubNode& hub() { return *hub_; }
  ParallelRunner& runner() { return runner_; }

  // Host index by name, or host_count() when absent.
  usize FindHost(const std::string& name) const;

  // Runs all shards to quiescence; returns events executed. Bit-exact for
  // any opts.threads.
  u64 Run(const ParallelRunOptions& opts = {}) { return runner_.Run(opts); }

 private:
  ParallelRunner runner_;
  std::vector<std::unique_ptr<EventScheduler>> schedulers_;
  std::unique_ptr<HubNode> hub_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
};

}  // namespace emu

#endif  // SRC_SIM_TOPOLOGY_H_
