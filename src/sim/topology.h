// Topology construction for the event-driven simulator.
//
// TopologyBuilder is the one way topologies get wired (emu-chain API
// redesign): it owns the schedulers, hosts, nodes, hub, and links, creates a
// shard per element in sharded mode, and routes every boundary-crossing link
// direction through the ParallelRunner with the link's minimum transit time
// as conservative lookahead. The classic shapes — StarTopology,
// ShardedTopology, HubTopology — are thin wrappers that keep their historic
// APIs but delegate all wiring to a builder, and ScenarioSpec
// (src/chain/scenario_spec.h) targets the builder directly, making
// star/cluster/hub spec keywords rather than three divergent C++ entry
// points.
//
// StarTopology is the common serial shape: up to four hosts, each on its own
// 10G link, around one ServiceNode running an Emu service — functionally the
// Mininet setups the paper uses to test the NAT and other services before
// synthesizing them. The sharded shapes run bit-exact for any thread count
// (emu-par, src/sim/parallel_runner.h).
#ifndef SRC_SIM_TOPOLOGY_H_
#define SRC_SIM_TOPOLOGY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sim/hub.h"
#include "src/sim/parallel_runner.h"
#include "src/sim/sim_host.h"

namespace emu {

class FaultRegistry;

struct HostSpec {
  std::string name;
  MacAddress mac;
  Ipv4Address ip;
};

struct StarTopologyConfig {
  u64 link_bits_per_second = 10'000'000'000ULL;
  Picoseconds link_delay = 500'000;  // 500 ns of cable + switch PHY
};

// Owns and wires a topology. kFlat puts every element on one EventScheduler
// (the serial StarTopology shape); kSharded gives every element its own
// scheduler registered as a ParallelRunner shard and routes each link
// direction across the boundary it crosses.
class TopologyBuilder {
 public:
  enum class Mode : u8 { kFlat = 0, kSharded };

  explicit TopologyBuilder(Mode mode = Mode::kSharded);
  TopologyBuilder(const TopologyBuilder&) = delete;
  TopologyBuilder& operator=(const TopologyBuilder&) = delete;

  Mode mode() const { return mode_; }

  // --- Elements (sharded mode: each call creates that element's shard) ---
  ServiceNode& AddServiceNode(Service& service);
  HubNode& AddHub(usize ports);
  SimHost& AddHost(const HostSpec& spec);

  // --- Wiring (host on end A — the StarTopology convention). The link is
  // created on the host's scheduler and becomes the host's uplink; in
  // sharded mode both directions are routed across the shard cut. ---
  Link& LinkHostToNode(SimHost& host, ServiceNode& node, u8 port,
                       const StarTopologyConfig& config);
  Link& LinkHostToHub(SimHost& host, HubNode& hub, usize port,
                      const StarTopologyConfig& config);

  // Registers per-direction impairment points for `link` — `<prefix>.up.*`
  // for the host→peer direction, `<prefix>.down.*` for peer→host. Safe on
  // routed links: each direction's points are sampled on its sending shard
  // (the Link per-direction impairment contract).
  void EnableLinkImpairment(Link& link, FaultRegistry& registry, const std::string& prefix);

  // Registers per-direction impairment for every host uplink, named
  // `<prefix>.<host>.up.*` / `<prefix>.<host>.down.*` (e.g. the soak plans
  // arm `link.h0.up.drop`). Returns the number of links impaired. Points are
  // inert until a plan arms them, so registration never perturbs a run.
  usize EnableAllUplinkImpairment(FaultRegistry& registry, const std::string& prefix = "link");

  // Runs to quiescence (or the event budget); returns events executed.
  // Sharded: bit-exact for any opts.threads. Flat: opts.threads is ignored
  // (one scheduler) and opts.max_events bounds the run.
  u64 Run(const ParallelRunOptions& opts = {});

  // Flat-mode scheduler (asserts kFlat).
  EventScheduler& scheduler();
  ParallelRunner& runner() { return runner_; }

  // --- Accessors ---
  SimHost& host(usize i) { return *hosts_[i]; }
  usize host_count() const { return hosts_.size(); }
  // Host index by name, or host_count() when absent.
  usize FindHost(const std::string& name) const;
  ServiceNode& node(usize i = 0) { return *nodes_[i]; }
  usize node_count() const { return nodes_.size(); }
  bool has_hub() const { return hub_ != nullptr; }
  HubNode& hub() { return *hub_; }
  // The uplink created for host i by LinkHostTo*, or null when unlinked.
  Link* uplink(usize i) { return i < uplinks_.size() ? uplinks_[i] : nullptr; }
  usize ShardOfHost(usize i) const { return host_shards_[i]; }

 private:
  EventScheduler& NewScheduler(usize& shard_out);
  Link& MakeUplink(SimHost& host, const StarTopologyConfig& config);
  void RouteBothWays(Link& link, usize host_shard, usize peer_shard);
  usize HostIndex(const SimHost& host) const;

  Mode mode_;
  ParallelRunner runner_;
  std::unique_ptr<EventScheduler> flat_scheduler_;
  std::vector<std::unique_ptr<EventScheduler>> schedulers_;
  std::vector<std::unique_ptr<ServiceNode>> nodes_;
  std::unique_ptr<HubNode> hub_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::vector<usize> host_shards_;
  std::vector<usize> node_shards_;
  usize hub_shard_ = 0;
  std::vector<Link*> uplinks_;  // parallel to hosts_
};

// Up to four hosts around one ServiceNode on a single scheduler.
class StarTopology {
 public:
  StarTopology(Service& service, std::vector<HostSpec> hosts,
               StarTopologyConfig config = StarTopologyConfig());

  EventScheduler& scheduler() { return builder_.scheduler(); }
  SimHost& host(usize i) { return builder_.host(i); }
  usize host_count() const { return builder_.host_count(); }
  ServiceNode& service_node() { return builder_.node(); }

  // Convenience: run the event loop until quiescent.
  void Run(usize max_events = 1'000'000);

 private:
  TopologyBuilder builder_;
};

// A topology partitioned for parallel execution. Two shapes:
//
//  - Star: all hosts around ONE service node (the StarTopology shape).
//    Shards: the node, plus one per host.
//  - Cluster: one service node PER host (services side by side, as in the
//    Table 4 service-comparison setups). Shards: one per node, one per host.
//
// In both, every host-node link crosses a shard boundary in both
// directions, so each ServiceNode's software-semantics work (its embedded
// Simulator, with quiescence fast-forward) runs on its shard's worker
// thread while the hosts' traffic generation runs on theirs.
class ShardedTopology {
 public:
  // Star shape around `service`.
  ShardedTopology(Service& service, std::vector<HostSpec> hosts,
                  StarTopologyConfig config = StarTopologyConfig());

  // Cluster shape: `services[i]` is paired with `hosts[i]`; sizes must match.
  ShardedTopology(const std::vector<Service*>& services, std::vector<HostSpec> hosts,
                  StarTopologyConfig config = StarTopologyConfig());

  SimHost& host(usize i) { return builder_.host(i); }
  usize host_count() const { return builder_.host_count(); }
  ServiceNode& node(usize i = 0) { return builder_.node(i); }
  usize node_count() const { return builder_.node_count(); }
  ParallelRunner& runner() { return builder_.runner(); }

  // Runs all shards to quiescence; returns events executed. Bit-exact for
  // any opts.threads.
  u64 Run(const ParallelRunOptions& opts = {}) { return builder_.Run(opts); }

 private:
  TopologyBuilder builder_;
};

// N hosts around a HubNode learning switch (emu-gossip): the shape for
// host-to-host protocols like SWIM membership, where every host talks to
// every other and N exceeds kNetFpgaPortCount. Sharding: the hub is shard 0,
// each host its own shard; every link crosses shards in both directions, so
// Run(threads=N) is bit-exact against Run(threads=1). Host i sits on hub
// port i — ChaosDirector uses that mapping to translate partition groups
// into the hub's port-pair block matrix.
class HubTopology {
 public:
  explicit HubTopology(std::vector<HostSpec> hosts,
                       StarTopologyConfig config = StarTopologyConfig());

  SimHost& host(usize i) { return builder_.host(i); }
  usize host_count() const { return builder_.host_count(); }
  HubNode& hub() { return builder_.hub(); }
  ParallelRunner& runner() { return builder_.runner(); }
  TopologyBuilder& builder() { return builder_; }

  // Host index by name, or host_count() when absent.
  usize FindHost(const std::string& name) const { return builder_.FindHost(name); }

  // Per-direction impairment on every hub uplink (`<prefix>.<host>.up/.down`).
  // Composes with the hub's cross-shard routing: each direction's points are
  // sampled on its own sending shard, so threads=N stays bit-exact.
  usize EnableImpairment(FaultRegistry& registry, const std::string& prefix = "link") {
    return builder_.EnableAllUplinkImpairment(registry, prefix);
  }

  // Runs all shards to quiescence; returns events executed. Bit-exact for
  // any opts.threads.
  u64 Run(const ParallelRunOptions& opts = {}) { return builder_.Run(opts); }

 private:
  TopologyBuilder builder_;
};

}  // namespace emu

#endif  // SRC_SIM_TOPOLOGY_H_
