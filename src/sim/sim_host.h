// Hosts for the event-driven network simulator, including the adapter that
// runs an Emu Service inside it (the Mininet target of §3.3/§4.4).
#ifndef SRC_SIM_SIM_HOST_H_
#define SRC_SIM_SIM_HOST_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/targets.h"
#include "src/net/mac_address.h"
#include "src/sim/event_scheduler.h"
#include "src/sim/link.h"

namespace emu {

class MetricsRegistry;

// Node-level lifecycle (emu-gossip). A host is kUp until a chaos event
// crashes it; while kCrashed every in-flight frame addressed to it is
// disposed on arrival and Send() is inert. Restart() models the boot window
// as kRestarting (still deaf) and completes after `boot_delay`, firing the
// OnRestart hook so the application can reset its state and rejoin.
enum class HostLifecycle : u8 { kUp = 0, kCrashed, kRestarting };

const char* HostLifecycleName(HostLifecycle state);

// An end host: receives frames, can send out its single interface, and hands
// received frames to an application callback.
class SimHost {
 public:
  using App = std::function<void(SimHost&, Packet)>;

  SimHost(EventScheduler& scheduler, std::string name, MacAddress mac, Ipv4Address ip);

  const std::string& name() const { return name_; }
  MacAddress mac() const { return mac_; }
  Ipv4Address ip() const { return ip_; }
  EventScheduler& scheduler() { return scheduler_; }

  // Wire the host to a link end; Topology does this.
  void AttachUplink(Link* link, bool is_end_a);

  void SetApp(App app) { app_ = std::move(app); }

  void Send(Packet frame);
  void Receive(Packet frame);

  // --- Lifecycle (must be called from this host's shard: chaos events are
  // scheduled on the host's own EventScheduler, so the state machine never
  // races the frame path). ---
  HostLifecycle lifecycle() const { return lifecycle_; }
  bool up() const { return lifecycle_ == HostLifecycle::kUp; }

  // Kills the host: application state is gone (the app's OnRestart hook is
  // what re-creates it), frames in flight toward the host are dropped on
  // arrival, and Send() drops until a restart completes. Idempotent.
  void Crash();

  // Begins rebooting a crashed host; after `boot_delay` the host is kUp and
  // `on_restart` (SetOnRestart) fires. A restart of an up host is a
  // power-cycle: crash semantics apply for the boot window.
  void Restart(Picoseconds boot_delay = 0);

  // Hook invoked when a restart completes, on the host's shard. The app uses
  // it to reset protocol state and rejoin (SWIM re-joins with a fresh
  // incarnation here).
  void SetOnRestart(std::function<void()> on_restart) { on_restart_ = std::move(on_restart); }

  u64 sent() const { return sent_; }
  u64 received() const { return received_; }
  // Frames disposed because they arrived while the host was not up, and
  // sends swallowed for the same reason.
  u64 lifecycle_dropped() const { return lifecycle_dropped_; }
  u64 crashes() const { return crashes_; }
  u64 restarts() const { return restarts_; }

  // Registers sent/received/lifecycle_dropped/crashes/restarts under
  // `prefix` (e.g. "host.h0").
  void RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const;

 private:
  EventScheduler& scheduler_;
  std::string name_;
  MacAddress mac_;
  Ipv4Address ip_;
  Link* uplink_ = nullptr;
  bool uplink_end_a_ = true;
  App app_;
  HostLifecycle lifecycle_ = HostLifecycle::kUp;
  // Distinguishes overlapping restarts: only the boot-completion event of
  // the most recent Restart() call may bring the host up.
  u64 boot_epoch_ = 0;
  std::function<void()> on_restart_;
  u64 sent_ = 0;
  u64 received_ = 0;
  u64 lifecycle_dropped_ = 0;
  u64 crashes_ = 0;
  u64 restarts_ = 0;
};

// Runs a Service inside the event simulator: frames arriving on any attached
// link are delivered to the service (software semantics, same source as the
// FPGA target) and its output frames are forwarded onto the addressed ports.
// This is the third execution target ("SimTarget").
class ServiceNode {
 public:
  ServiceNode(EventScheduler& scheduler, Service& service);

  // Attaches a link as NetFPGA-style port `port` (end A or B of the link).
  void AttachPort(u8 port, Link* link, bool is_end_a);

  // Delivers a frame as if received on `port`.
  void Receive(u8 port, Packet frame);

  // Per-frame processing delay charged inside the node (default: one
  // software scheduling quantum of 10 us, like a userspace process).
  void set_processing_delay(Picoseconds delay) { processing_delay_ = delay; }

  // The node's software execution target; tests attach metrics and fault
  // registries to target().sim(). The embedded Simulator belongs to this
  // node's shard in a parallel run — never touch it from another thread.
  CpuTarget& target() { return target_; }

  u64 forwarded() const { return forwarded_; }

 private:
  struct PortAttachment {
    Link* link = nullptr;
    bool is_end_a = true;
  };

  void Emit(Packet frame);

  EventScheduler& scheduler_;
  CpuTarget target_;
  std::vector<PortAttachment> ports_;
  Picoseconds processing_delay_ = 10 * kPicosPerMicro;
  u64 forwarded_ = 0;
};

}  // namespace emu

#endif  // SRC_SIM_SIM_HOST_H_
