#include "src/sim/topology.h"

#include <cassert>

namespace emu {

StarTopology::StarTopology(Service& service, std::vector<HostSpec> specs,
                           StarTopologyConfig config) {
  assert(specs.size() <= kNetFpgaPortCount);
  node_ = std::make_unique<ServiceNode>(scheduler_, service);
  for (usize i = 0; i < specs.size(); ++i) {
    links_.push_back(
        std::make_unique<Link>(scheduler_, config.link_bits_per_second, config.link_delay));
    hosts_.push_back(std::make_unique<SimHost>(scheduler_, specs[i].name, specs[i].mac,
                                               specs[i].ip));
    // Host on end A, service node port i on end B.
    hosts_.back()->AttachUplink(links_.back().get(), /*is_end_a=*/true);
    node_->AttachPort(static_cast<u8>(i), links_.back().get(), /*is_end_a=*/false);
  }
}

}  // namespace emu
