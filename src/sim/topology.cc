#include "src/sim/topology.h"

#include <cassert>

#include "src/fault/fault_registry.h"

namespace emu {

TopologyBuilder::TopologyBuilder(Mode mode) : mode_(mode) {
  if (mode_ == Mode::kFlat) {
    flat_scheduler_ = std::make_unique<EventScheduler>();
  }
}

EventScheduler& TopologyBuilder::NewScheduler(usize& shard_out) {
  if (mode_ == Mode::kFlat) {
    shard_out = 0;
    return *flat_scheduler_;
  }
  schedulers_.push_back(std::make_unique<EventScheduler>());
  shard_out = runner_.AddShard(*schedulers_.back());
  return *schedulers_.back();
}

ServiceNode& TopologyBuilder::AddServiceNode(Service& service) {
  usize shard = 0;
  EventScheduler& scheduler = NewScheduler(shard);
  nodes_.push_back(std::make_unique<ServiceNode>(scheduler, service));
  node_shards_.push_back(shard);
  return *nodes_.back();
}

HubNode& TopologyBuilder::AddHub(usize ports) {
  assert(hub_ == nullptr && "one hub per topology");
  EventScheduler& scheduler = NewScheduler(hub_shard_);
  hub_ = std::make_unique<HubNode>(scheduler, ports);
  return *hub_;
}

SimHost& TopologyBuilder::AddHost(const HostSpec& spec) {
  usize shard = 0;
  EventScheduler& scheduler = NewScheduler(shard);
  hosts_.push_back(std::make_unique<SimHost>(scheduler, spec.name, spec.mac, spec.ip));
  host_shards_.push_back(shard);
  uplinks_.push_back(nullptr);
  return *hosts_.back();
}

usize TopologyBuilder::HostIndex(const SimHost& host) const {
  for (usize i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i].get() == &host) {
      return i;
    }
  }
  assert(false && "host not owned by this builder");
  return hosts_.size();
}

Link& TopologyBuilder::MakeUplink(SimHost& host, const StarTopologyConfig& config) {
  // The link lives on the host's scheduler, host on end A — the StarTopology
  // convention every shape (and ChaosDirector's gate scheduling) relies on.
  links_.push_back(std::make_unique<Link>(host.scheduler(), config.link_bits_per_second,
                                          config.link_delay));
  Link& link = *links_.back();
  host.AttachUplink(&link, /*is_end_a=*/true);
  uplinks_[HostIndex(host)] = &link;
  return link;
}

void TopologyBuilder::RouteBothWays(Link& link, usize host_shard, usize peer_shard) {
  if (mode_ == Mode::kFlat) {
    return;
  }
  runner_.ConnectDirection(link, /*to_b=*/true, host_shard, peer_shard);
  runner_.ConnectDirection(link, /*to_b=*/false, peer_shard, host_shard);
}

Link& TopologyBuilder::LinkHostToNode(SimHost& host, ServiceNode& node, u8 port,
                                      const StarTopologyConfig& config) {
  const usize host_index = HostIndex(host);
  Link& link = MakeUplink(host, config);
  node.AttachPort(port, &link, /*is_end_a=*/false);
  usize node_index = 0;
  for (; node_index < nodes_.size(); ++node_index) {
    if (nodes_[node_index].get() == &node) {
      break;
    }
  }
  assert(node_index < nodes_.size() && "node not owned by this builder");
  RouteBothWays(link, host_shards_[host_index], node_shards_[node_index]);
  return link;
}

Link& TopologyBuilder::LinkHostToHub(SimHost& host, HubNode& hub, usize port,
                                     const StarTopologyConfig& config) {
  assert(&hub == hub_.get() && "hub not owned by this builder");
  const usize host_index = HostIndex(host);
  Link& link = MakeUplink(host, config);
  hub.AttachPort(port, &link, /*is_end_a=*/false);
  RouteBothWays(link, host_shards_[host_index], hub_shard_);
  return link;
}

void TopologyBuilder::EnableLinkImpairment(Link& link, FaultRegistry& registry,
                                           const std::string& prefix) {
  // Distinct per-direction prefixes: each direction's points are sampled on
  // its own sending shard, which is what lets impairment compose with
  // cross-shard routing (the shared form would race two sender shards).
  link.EnableImpairment(/*to_b=*/true, registry, prefix + ".up");
  link.EnableImpairment(/*to_b=*/false, registry, prefix + ".down");
}

usize TopologyBuilder::EnableAllUplinkImpairment(FaultRegistry& registry,
                                                 const std::string& prefix) {
  usize enabled = 0;
  for (usize i = 0; i < hosts_.size(); ++i) {
    if (uplinks_[i] == nullptr) {
      continue;
    }
    EnableLinkImpairment(*uplinks_[i], registry, prefix + "." + hosts_[i]->name());
    ++enabled;
  }
  return enabled;
}

u64 TopologyBuilder::Run(const ParallelRunOptions& opts) {
  if (mode_ == Mode::kFlat) {
    const u64 before = flat_scheduler_->executed();
    flat_scheduler_->Run(opts.max_events);
    return flat_scheduler_->executed() - before;
  }
  return runner_.Run(opts);
}

EventScheduler& TopologyBuilder::scheduler() {
  assert(mode_ == Mode::kFlat && "sharded topologies have one scheduler per shard");
  return *flat_scheduler_;
}

usize TopologyBuilder::FindHost(const std::string& name) const {
  for (usize i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i]->name() == name) {
      return i;
    }
  }
  return hosts_.size();
}

StarTopology::StarTopology(Service& service, std::vector<HostSpec> specs,
                           StarTopologyConfig config)
    : builder_(TopologyBuilder::Mode::kFlat) {
  assert(specs.size() <= kNetFpgaPortCount);
  ServiceNode& node = builder_.AddServiceNode(service);
  for (usize i = 0; i < specs.size(); ++i) {
    SimHost& host = builder_.AddHost(specs[i]);
    builder_.LinkHostToNode(host, node, static_cast<u8>(i), config);
  }
}

void StarTopology::Run(usize max_events) {
  ParallelRunOptions opts;
  opts.max_events = max_events;
  builder_.Run(opts);
}

ShardedTopology::ShardedTopology(Service& service, std::vector<HostSpec> specs,
                                 StarTopologyConfig config)
    : builder_(TopologyBuilder::Mode::kSharded) {
  assert(specs.size() <= kNetFpgaPortCount);
  ServiceNode& node = builder_.AddServiceNode(service);
  for (usize i = 0; i < specs.size(); ++i) {
    SimHost& host = builder_.AddHost(specs[i]);
    builder_.LinkHostToNode(host, node, static_cast<u8>(i), config);
  }
}

ShardedTopology::ShardedTopology(const std::vector<Service*>& services,
                                 std::vector<HostSpec> specs, StarTopologyConfig config)
    : builder_(TopologyBuilder::Mode::kSharded) {
  assert(services.size() == specs.size());
  for (usize i = 0; i < specs.size(); ++i) {
    assert(services[i] != nullptr);
    ServiceNode& node = builder_.AddServiceNode(*services[i]);
    SimHost& host = builder_.AddHost(specs[i]);
    builder_.LinkHostToNode(host, node, /*port=*/0, config);
  }
}

HubTopology::HubTopology(std::vector<HostSpec> specs, StarTopologyConfig config)
    : builder_(TopologyBuilder::Mode::kSharded) {
  HubNode& hub = builder_.AddHub(specs.size());
  for (usize i = 0; i < specs.size(); ++i) {
    SimHost& host = builder_.AddHost(specs[i]);
    builder_.LinkHostToHub(host, hub, i, config);
  }
}

}  // namespace emu
