#include "src/sim/topology.h"

#include <cassert>

namespace emu {

StarTopology::StarTopology(Service& service, std::vector<HostSpec> specs,
                           StarTopologyConfig config) {
  assert(specs.size() <= kNetFpgaPortCount);
  node_ = std::make_unique<ServiceNode>(scheduler_, service);
  for (usize i = 0; i < specs.size(); ++i) {
    links_.push_back(
        std::make_unique<Link>(scheduler_, config.link_bits_per_second, config.link_delay));
    hosts_.push_back(std::make_unique<SimHost>(scheduler_, specs[i].name, specs[i].mac,
                                               specs[i].ip));
    // Host on end A, service node port i on end B.
    hosts_.back()->AttachUplink(links_.back().get(), /*is_end_a=*/true);
    node_->AttachPort(static_cast<u8>(i), links_.back().get(), /*is_end_a=*/false);
  }
}

void ShardedTopology::AttachHostGroup(const HostSpec& spec, const StarTopologyConfig& config,
                                      usize node_shard, ServiceNode& node, u8 port) {
  schedulers_.push_back(std::make_unique<EventScheduler>());
  EventScheduler& host_scheduler = *schedulers_.back();
  const usize host_shard = runner_.AddShard(host_scheduler);
  links_.push_back(std::make_unique<Link>(host_scheduler, config.link_bits_per_second,
                                          config.link_delay));
  Link& link = *links_.back();
  hosts_.push_back(std::make_unique<SimHost>(host_scheduler, spec.name, spec.mac, spec.ip));
  // Host on end A, service node on end B — the StarTopology convention.
  hosts_.back()->AttachUplink(&link, /*is_end_a=*/true);
  node.AttachPort(port, &link, /*is_end_a=*/false);
  runner_.ConnectDirection(link, /*to_b=*/true, host_shard, node_shard);
  runner_.ConnectDirection(link, /*to_b=*/false, node_shard, host_shard);
}

ShardedTopology::ShardedTopology(Service& service, std::vector<HostSpec> specs,
                                 StarTopologyConfig config) {
  assert(specs.size() <= kNetFpgaPortCount);
  schedulers_.push_back(std::make_unique<EventScheduler>());
  EventScheduler& node_scheduler = *schedulers_.back();
  const usize node_shard = runner_.AddShard(node_scheduler);
  nodes_.push_back(std::make_unique<ServiceNode>(node_scheduler, service));
  for (usize i = 0; i < specs.size(); ++i) {
    AttachHostGroup(specs[i], config, node_shard, *nodes_.back(), static_cast<u8>(i));
  }
}

ShardedTopology::ShardedTopology(const std::vector<Service*>& services,
                                 std::vector<HostSpec> specs, StarTopologyConfig config) {
  assert(services.size() == specs.size());
  for (usize i = 0; i < specs.size(); ++i) {
    assert(services[i] != nullptr);
    schedulers_.push_back(std::make_unique<EventScheduler>());
    EventScheduler& node_scheduler = *schedulers_.back();
    const usize node_shard = runner_.AddShard(node_scheduler);
    nodes_.push_back(std::make_unique<ServiceNode>(node_scheduler, *services[i]));
    AttachHostGroup(specs[i], config, node_shard, *nodes_.back(), /*port=*/0);
  }
}

HubTopology::HubTopology(std::vector<HostSpec> specs, StarTopologyConfig config) {
  schedulers_.push_back(std::make_unique<EventScheduler>());
  EventScheduler& hub_scheduler = *schedulers_.back();
  const usize hub_shard = runner_.AddShard(hub_scheduler);
  hub_ = std::make_unique<HubNode>(hub_scheduler, specs.size());
  for (usize i = 0; i < specs.size(); ++i) {
    schedulers_.push_back(std::make_unique<EventScheduler>());
    EventScheduler& host_scheduler = *schedulers_.back();
    const usize host_shard = runner_.AddShard(host_scheduler);
    links_.push_back(std::make_unique<Link>(host_scheduler, config.link_bits_per_second,
                                            config.link_delay));
    Link& link = *links_.back();
    hosts_.push_back(std::make_unique<SimHost>(host_scheduler, specs[i].name, specs[i].mac,
                                               specs[i].ip));
    // Host on end A, hub port i on end B — the StarTopology convention.
    hosts_.back()->AttachUplink(&link, /*is_end_a=*/true);
    hub_->AttachPort(i, &link, /*is_end_a=*/false);
    runner_.ConnectDirection(link, /*to_b=*/true, host_shard, hub_shard);
    runner_.ConnectDirection(link, /*to_b=*/false, hub_shard, host_shard);
  }
}

usize HubTopology::FindHost(const std::string& name) const {
  for (usize i = 0; i < hosts_.size(); ++i) {
    if (hosts_[i]->name() == name) {
      return i;
    }
  }
  return hosts_.size();
}

}  // namespace emu
