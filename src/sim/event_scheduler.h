// Discrete-event scheduler for the network simulator (Mininet substitute).
//
// Scheduled actions are stored type-erased in a RecyclingPool (size-class
// free lists over a bump arena): steady-state scheduling performs no heap
// allocation at all, and the pool rewinds whenever the queue drains — the
// per-shard epoch boundary, where an empty queue proves no closure is live.
// The queue itself holds only POD Event records (time, seq, context pointer,
// run/drop thunks), so heap churn from the old per-event std::function copy
// is gone from the hot path.
#ifndef SRC_SIM_EVENT_SCHEDULER_H_
#define SRC_SIM_EVENT_SCHEDULER_H_

#include <functional>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/core/arena.h"

namespace emu {

class EventScheduler {
 public:
  using Action = std::function<void()>;

  EventScheduler() = default;
  EventScheduler(const EventScheduler&) = delete;
  EventScheduler& operator=(const EventScheduler&) = delete;

  // Unfired events still own pooled closures; destroy them properly.
  ~EventScheduler() {
    while (!queue_.empty()) {
      Event event = queue_.top();
      queue_.pop();
      event.drop(*this, event.ctx);
    }
  }

  Picoseconds now() const { return now_; }

  // Schedules `action` (any void() callable) at absolute time `when`
  // (clamped to now). The callable is moved into pooled storage owned by the
  // scheduler until the event fires or the scheduler dies.
  template <typename F>
  void At(Picoseconds when, F action) {
    using Fn = std::decay_t<F>;
    void* ctx = pool_.Allocate(sizeof(Fn));
    new (ctx) Fn(std::move(action));
    Event event;
    event.when = when < now_ ? now_ : when;
    event.seq = next_seq_++;
    event.ctx = ctx;
    // Move the closure out before freeing its slot and running it: the body
    // may schedule more events (reusing the slot) — same reason the old
    // std::function implementation copied the event off the queue first.
    event.run = [](EventScheduler& self, void* c) {
      Fn* fn = static_cast<Fn*>(c);
      Fn local(std::move(*fn));
      fn->~Fn();
      self.pool_.Free(c, sizeof(Fn));
      local();
    };
    event.drop = [](EventScheduler& self, void* c) {
      Fn* fn = static_cast<Fn*>(c);
      fn->~Fn();
      self.pool_.Free(c, sizeof(Fn));
    };
    queue_.push(event);
  }

  template <typename F>
  void After(Picoseconds delay, F action) {
    At(now_ + delay, std::move(action));
  }

  bool Empty() const { return queue_.empty(); }
  usize pending() const { return queue_.size(); }

  // Absolute time of the earliest pending event; only valid when !Empty().
  // The quiescence-aware Simulator (Simulator::AttachEventScheduler) uses
  // this to avoid fast-forwarding past a pending event's fabric cycle.
  Picoseconds NextEventTime() const { return queue_.top().when; }

  // Runs a single event; returns false when the queue is empty.
  bool Step();

  // Runs until the queue drains or `max_events` fire.
  void Run(usize max_events = 10'000'000);

  // Runs events with time <= deadline.
  void RunUntil(Picoseconds deadline);

  // Conservative-window execution for the parallel runner: runs events with
  // time strictly BEFORE `bound` (at most `max_events` of them) and returns
  // how many ran. Unlike RunUntil, now() is left at the last executed event,
  // not advanced to the bound — later cross-shard arrivals carry absolute
  // timestamps and must not be clamped forward.
  usize RunWhileBefore(Picoseconds bound, usize max_events);

  // Events executed over this scheduler's lifetime.
  u64 executed() const { return executed_; }

 private:
  struct Event {
    Picoseconds when;
    u64 seq;  // FIFO tiebreak for simultaneous events
    void* ctx;
    void (*run)(EventScheduler&, void*);   // invoke + destroy + free
    void (*drop)(EventScheduler&, void*);  // destroy + free (teardown)
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  Picoseconds now_ = 0;
  u64 next_seq_ = 0;
  u64 executed_ = 0;
  RecyclingPool pool_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace emu

#endif  // SRC_SIM_EVENT_SCHEDULER_H_
