// Discrete-event scheduler for the network simulator (Mininet substitute).
#ifndef SRC_SIM_EVENT_SCHEDULER_H_
#define SRC_SIM_EVENT_SCHEDULER_H_

#include <functional>
#include <queue>
#include <vector>

#include "src/common/types.h"

namespace emu {

class EventScheduler {
 public:
  using Action = std::function<void()>;

  Picoseconds now() const { return now_; }

  // Schedules `action` at absolute time `when` (clamped to now).
  void At(Picoseconds when, Action action);
  void After(Picoseconds delay, Action action) { At(now_ + delay, std::move(action)); }

  bool Empty() const { return queue_.empty(); }
  usize pending() const { return queue_.size(); }

  // Absolute time of the earliest pending event; only valid when !Empty().
  // The quiescence-aware Simulator (Simulator::AttachEventScheduler) uses
  // this to avoid fast-forwarding past a pending event's fabric cycle.
  Picoseconds NextEventTime() const { return queue_.top().when; }

  // Runs a single event; returns false when the queue is empty.
  bool Step();

  // Runs until the queue drains or `max_events` fire.
  void Run(usize max_events = 10'000'000);

  // Runs events with time <= deadline.
  void RunUntil(Picoseconds deadline);

  // Conservative-window execution for the parallel runner: runs events with
  // time strictly BEFORE `bound` (at most `max_events` of them) and returns
  // how many ran. Unlike RunUntil, now() is left at the last executed event,
  // not advanced to the bound — later cross-shard arrivals carry absolute
  // timestamps and must not be clamped forward.
  usize RunWhileBefore(Picoseconds bound, usize max_events);

  // Events executed over this scheduler's lifetime.
  u64 executed() const { return executed_; }

 private:
  struct Event {
    Picoseconds when;
    u64 seq;  // FIFO tiebreak for simultaneous events
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  Picoseconds now_ = 0;
  u64 next_seq_ = 0;
  u64 executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace emu

#endif  // SRC_SIM_EVENT_SCHEDULER_H_
