#include "src/sim/loadgen.h"

#include <algorithm>
#include <cassert>

#include "src/core/metrics.h"

namespace emu {

void LoadgenReport::RegisterMetrics(MetricsRegistry& registry,
                                    const std::string& prefix) const {
  registry.Register(prefix + ".injected", [this] { return static_cast<u64>(injected); });
  registry.Register(prefix + ".egressed", [this] { return static_cast<u64>(egressed); });
  registry.Register(prefix + ".accounted_drops", &accounted_drops);
  latency.RegisterMetrics(registry, prefix + ".latency");
}

LoadgenReport OsntLoadgen::RunFixedRate(FpgaTarget& target, const FrameFactory& factory,
                                        const FixedRateConfig& config) {
  assert(!config.ports.empty());
  LoadgenReport report;
  report.offered_mqps = config.offered_mqps;

  const double interval_ps = 1e6 / config.offered_mqps;  // Mqps -> ps/frame
  const Cycle start = target.sim().now();
  const Picoseconds cycle_ps = target.sim().cycle_period_ps();

  Picoseconds first_ingress = 0;
  for (usize i = 0; i < config.frames; ++i) {
    const u8 port = config.ports[i % config.ports.size()];
    const Cycle earliest =
        start + static_cast<Cycle>(interval_ps * static_cast<double>(i) / cycle_ps);
    if (i == 0) {
      first_ingress = static_cast<Picoseconds>(earliest) * cycle_ps;
    }
    target.Inject(port, factory(i, port), earliest);
    ++report.injected;
  }

  // Run until egress stalls (no growth for a grace window) or the limit.
  usize last_count = target.egress().size();
  Cycle stable_since = target.sim().now();
  while (target.sim().now() - start < config.drain_limit) {
    target.Run(512);
    const usize count = target.egress().size();
    if (count != last_count) {
      last_count = count;
      stable_since = target.sim().now();
    } else if (target.sim().now() - stable_since > 100'000) {
      break;  // drained
    }
    if (count >= config.frames) {
      break;
    }
  }

  const auto egress = target.TakeEgress();
  report.egressed = egress.size();
  Picoseconds last_egress = first_ingress;
  for (const auto& frame : egress) {
    report.latency.AddPacket(frame.frame);
    last_egress = std::max(last_egress, frame.frame.egress_time());
  }
  report.raw_loss_rate = report.injected == 0
                             ? 0.0
                             : 1.0 - static_cast<double>(report.egressed) /
                                         static_cast<double>(report.injected);
  if (config.accounted_drops) {
    // A drop counter can only ever explain frames that were injected; a
    // counter that double-books (or is sampled from an unrelated run) must
    // not drive loss_rate negative or the soak verdict out of [0, 1].
    report.accounted_drops =
        std::min(config.accounted_drops(), static_cast<u64>(report.injected));
    report.latency.AddLoss(report.accounted_drops);
  }
  assert(report.accounted_drops <= report.injected &&
         "accounted drops must be covered by injected frames");
  // Loss the counters do not explain. Accounted drops can exceed the raw gap
  // (e.g. duplicates egressing alongside drops); clamp at zero. The
  // zero-injected guard mirrors raw_loss_rate: no traffic means no loss.
  const usize explained =
      report.egressed + static_cast<usize>(report.accounted_drops);
  report.loss_rate =
      report.injected == 0 || explained >= report.injected
          ? 0.0
          : static_cast<double>(report.injected - explained) /
                static_cast<double>(report.injected);
  assert(report.loss_rate >= 0.0 && report.loss_rate <= 1.0);
  const double window_us = ToMicroseconds(last_egress - first_ingress);
  report.achieved_mqps =
      window_us > 0.0 ? static_cast<double>(report.egressed) / window_us : 0.0;
  return report;
}

LatencyStats OsntLoadgen::MeasureUnloadedRtt(FpgaTarget& target, const FrameFactory& factory,
                                             usize requests, u8 port,
                                             Cycle per_request_limit) {
  LatencyStats stats;
  for (usize i = 0; i < requests; ++i) {
    auto reply = target.SendAndCollect(port, factory(i, port), per_request_limit);
    if (reply.ok()) {
      stats.AddPacket(*reply);
    }
  }
  return stats;
}

double OsntLoadgen::FindMaxThroughputMqps(const TrialRunner& trial, double lo_mqps,
                                          double hi_mqps, double loss_threshold,
                                          int iterations) {
  double best = 0.0;
  double lo = lo_mqps;
  double hi = hi_mqps;
  for (int i = 0; i < iterations; ++i) {
    const double mid = (lo + hi) / 2.0;
    const LoadgenReport report = trial(mid);
    if (report.loss_rate <= loss_threshold && report.egressed > 0) {
      best = std::max(best, report.achieved_mqps);
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace emu
