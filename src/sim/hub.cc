#include "src/sim/hub.h"

#include <cassert>

#include "src/core/metrics.h"
#include "src/net/ethernet.h"

namespace emu {

HubNode::HubNode(EventScheduler& scheduler, usize port_count, Picoseconds forward_delay)
    : scheduler_(scheduler),
      ports_(port_count),
      block_counts_(port_count * port_count, 0),
      forward_delay_(forward_delay) {}

void HubNode::AttachPort(usize port, Link* link, bool is_end_a) {
  assert(port < ports_.size());
  ports_[port] = PortAttachment{link, is_end_a};
  const auto receiver = [this, port](Packet frame) { Receive(port, std::move(frame)); };
  if (is_end_a) {
    link->AttachA(receiver);
  } else {
    link->AttachB(receiver);
  }
}

void HubNode::SetBlocked(usize from_port, usize to_port, bool blocked) {
  assert(from_port < ports_.size() && to_port < ports_.size());
  u32& count = BlockCount(from_port, to_port);
  if (blocked) {
    ++count;
  } else {
    assert(count > 0 && "unbalanced partition unblock");
    --count;
  }
}

bool HubNode::Blocked(usize from_port, usize to_port) const {
  return block_counts_[from_port * ports_.size() + to_port] > 0;
}

void HubNode::Receive(usize port, Packet frame) {
  EthernetView eth(frame);
  if (!eth.Valid()) {
    return;  // runt frame: nothing to switch on
  }
  const MacAddress src = eth.source();
  if (!src.IsMulticast() && !src.IsZero()) {
    mac_table_[src.ToU48()] = port;
  }
  // Switch fabric latency, then emit. Everything the hub needs is captured
  // by value; the block matrix is consulted at emit time so a partition
  // window opening during the fabric delay still applies.
  scheduler_.At(scheduler_.now() + forward_delay_,
                [this, port, frame = std::move(frame)]() mutable {
                  Emit(port, std::move(frame));
                });
}

void HubNode::Emit(usize in_port, Packet frame) {
  EthernetView eth(frame);
  const MacAddress dst = eth.destination();
  usize out_port = ports_.size();  // sentinel: flood
  if (!dst.IsBroadcast() && !dst.IsMulticast()) {
    const auto it = mac_table_.find(dst.ToU48());
    if (it != mac_table_.end()) {
      out_port = it->second;
    }
  }
  const auto send_on = [this, in_port](usize port, Packet out) {
    if (Blocked(in_port, port)) {
      ++partition_dropped_;
      return;
    }
    PortAttachment& attachment = ports_[port];
    ++forwarded_;
    if (attachment.is_end_a) {
      attachment.link->SendToB(std::move(out));
    } else {
      attachment.link->SendToA(std::move(out));
    }
  };
  if (out_port < ports_.size()) {
    if (out_port != in_port && ports_[out_port].link != nullptr) {
      send_on(out_port, std::move(frame));
    }
    return;
  }
  ++flooded_;
  for (usize port = 0; port < ports_.size(); ++port) {
    if (port == in_port || ports_[port].link == nullptr) {
      continue;
    }
    send_on(port, frame);
  }
}

void HubNode::RegisterMetrics(MetricsRegistry& metrics, const std::string& prefix) const {
  metrics.Register(prefix + ".forwarded", &forwarded_);
  metrics.Register(prefix + ".flooded", &flooded_);
  metrics.Register(prefix + ".partition_dropped", &partition_dropped_);
}

}  // namespace emu
